package probprune_test

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"probprune"
)

// TestSessionFacade drives the incremental API end to end through the
// public surface.
func TestSessionFacade(t *testing.T) {
	db, err := probprune.Synthetic(probprune.SyntheticConfig{
		N: 200, Samples: 16, MaxExtent: 0.05, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := probprune.Queries(db, 1, 8, probprune.L2, 32)
	s := probprune.NewSession(db, qs[0].Target, qs[0].Reference, probprune.Options{Adaptive: true})
	prev := s.Result().Uncertainty()
	steps := 0
	for s.Step() && steps < 8 {
		steps++
		u := s.Result().Uncertainty()
		if u > prev+1e-9 {
			t.Fatalf("uncertainty rose: %g -> %g", prev, u)
		}
		prev = u
	}
	if steps == 0 && !s.Done() {
		t.Fatal("session neither stepped nor finished")
	}
	si := probprune.NewSessionIndexed(probprune.NewIndex(db), qs[0].Target, qs[0].Reference, probprune.Options{})
	if si.Result().CompleteDominators != s.Result().CompleteDominators {
		t.Fatal("indexed session filter disagrees")
	}
}

// TestTopKNNFacade checks the top-m probable kNN query through the
// public surface, on every backend (frozen Engine, Store, ShardedStore).
func TestTopKNNFacade(t *testing.T) {
	db, err := probprune.Synthetic(probprune.SyntheticConfig{
		N: 150, Samples: 16, MaxExtent: 0.05, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, be := range queryBackends(t, db, probprune.Options{MaxIterations: 6}) {
		t.Run(be.name, func(t *testing.T) {
			q := probprune.PointObject(-1, probprune.Point{0.5, 0.5})
			top := be.eng.TopKNN(q, 3, 5)
			if len(top) != 5 {
				t.Fatalf("TopKNN returned %d matches", len(top))
			}
			for i := 1; i < len(top); i++ {
				mi := top[i-1].Prob.LB + top[i-1].Prob.UB
				mj := top[i].Prob.LB + top[i].Prob.UB
				if mj > mi+1e-9 {
					t.Fatal("TopKNN not ordered by probability")
				}
			}
		})
	}
}

// TestUKRanksFacade checks the U-kRanks query through the public
// surface against the deterministic certain-data case, on every
// backend.
func TestUKRanksFacade(t *testing.T) {
	db := probprune.Database{
		probprune.PointObject(0, probprune.Point{2, 0}),
		probprune.PointObject(1, probprune.Point{1, 0}),
	}
	for _, be := range queryBackends(t, db, probprune.Options{MaxIterations: 3}) {
		t.Run(be.name, func(t *testing.T) {
			q := probprune.PointObject(-1, probprune.Point{0, 0})
			winners := be.eng.UKRanks(q, 2)
			if len(winners) != 2 || winners[0].Object.ID != 1 || winners[1].Object.ID != 0 {
				t.Fatalf("UKRanks winners wrong: %+v", winners)
			}
			if ids := be.eng.GlobalTopK(q, 2); len(ids) != 2 {
				t.Fatalf("GlobalTopK returned %d objects", len(ids))
			}
		})
	}
}

// TestDurableReopenOracle is the root-level durability matrix: for the
// 20 oracle seeds, a mutation trace is written through a durable store,
// the store is closed and reopened, and the recovered store must answer
// KNN and RKNN exactly like an in-memory Store that applied the same
// trace — the public-API face of the crash-recovery equivalence suite.
func TestDurableReopenOracle(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			db, err := probprune.Synthetic(probprune.SyntheticConfig{
				N: 10 + int(seed%7), Samples: 4, MaxExtent: 0.2, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			opts := probprune.Options{MaxIterations: 1 + 2*int(seed%3)}
			popts := probprune.PersistOptions{
				Dir:             filepath.Join(t.TempDir(), "db"),
				CheckpointEvery: 4,
			}
			durable, err := probprune.BootstrapStore(db, popts, opts)
			if err != nil {
				t.Fatal(err)
			}
			mirror, err := probprune.NewStore(db, opts)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed * 271))
			next := len(db)
			for i := 0; i < 12; i++ {
				pts := []probprune.Point{
					{rng.Float64(), rng.Float64()},
					{rng.Float64(), rng.Float64()},
				}
				var o *probprune.Object
				switch rng.Intn(3) {
				case 0:
					o, err = probprune.NewObject(next, pts)
					next++
					if err == nil {
						err = durable.Insert(o)
						if err == nil {
							err = mirror.Insert(o)
						}
					}
				case 1:
					o, err = probprune.NewObject(db[rng.Intn(len(db))].ID, pts)
					if err == nil {
						if _, live := mirror.Get(o.ID); live {
							err = durable.Update(o)
							if err == nil {
								err = mirror.Update(o)
							}
						}
					}
				default:
					victim := db[rng.Intn(len(db))].ID
					if durable.Delete(victim) != mirror.Delete(victim) {
						t.Fatal("delete outcome diverged")
					}
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			if err := durable.Close(); err != nil {
				t.Fatal(err)
			}
			reopened, err := probprune.OpenStore(popts, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer reopened.Close()
			if reopened.Version() != mirror.Version() {
				t.Fatalf("version %d, want %d", reopened.Version(), mirror.Version())
			}
			q := probprune.PointObject(-1, probprune.Point{0.5, 0.5})
			wantKNN := mirror.KNN(q, 3, 0.4)
			gotKNN := reopened.KNN(q, 3, 0.4)
			wantRKNN := mirror.RKNN(q, 2, 0.3)
			gotRKNN := reopened.RKNN(q, 2, 0.3)
			for _, pair := range []struct {
				kind      string
				got, want []probprune.Match
			}{{"KNN", gotKNN, wantKNN}, {"RKNN", gotRKNN, wantRKNN}} {
				if len(pair.got) != len(pair.want) {
					t.Fatalf("%s: %d matches, want %d", pair.kind, len(pair.got), len(pair.want))
				}
				for i := range pair.got {
					g, w := pair.got[i], pair.want[i]
					if g.Object.ID != w.Object.ID || g.Prob != w.Prob ||
						g.IsResult != w.IsResult || g.Decided != w.Decided || g.Iterations != w.Iterations {
						t.Fatalf("%s match %d: %+v, want %+v", pair.kind, i, g, w)
					}
				}
			}
		})
	}
}

// TestExistentialFacade exercises existential uncertainty end to end.
func TestExistentialFacade(t *testing.T) {
	ref := probprune.PointObject(10, probprune.Point{0, 0})
	target := probprune.PointObject(0, probprune.Point{5, 0})
	maybe := probprune.PointObject(1, probprune.Point{1, 0})
	if err := maybe.SetExistence(0.4); err != nil {
		t.Fatal(err)
	}
	db := probprune.Database{target, maybe}
	res := probprune.Run(db, target, ref, probprune.Options{MaxIterations: 3})
	iv := res.Bound(1)
	if iv.LB < 0.4-1e-9 || iv.UB > 0.4+1e-9 {
		t.Fatalf("existential bound %+v, want [0.4, 0.4]", iv)
	}
}

package probprune_test

import (
	"testing"

	"probprune"
)

// TestSessionFacade drives the incremental API end to end through the
// public surface.
func TestSessionFacade(t *testing.T) {
	db, err := probprune.Synthetic(probprune.SyntheticConfig{
		N: 200, Samples: 16, MaxExtent: 0.05, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := probprune.Queries(db, 1, 8, probprune.L2, 32)
	s := probprune.NewSession(db, qs[0].Target, qs[0].Reference, probprune.Options{Adaptive: true})
	prev := s.Result().Uncertainty()
	steps := 0
	for s.Step() && steps < 8 {
		steps++
		u := s.Result().Uncertainty()
		if u > prev+1e-9 {
			t.Fatalf("uncertainty rose: %g -> %g", prev, u)
		}
		prev = u
	}
	if steps == 0 && !s.Done() {
		t.Fatal("session neither stepped nor finished")
	}
	si := probprune.NewSessionIndexed(probprune.NewIndex(db), qs[0].Target, qs[0].Reference, probprune.Options{})
	if si.Result().CompleteDominators != s.Result().CompleteDominators {
		t.Fatal("indexed session filter disagrees")
	}
}

// TestTopKNNFacade checks the top-m probable kNN query through the
// public surface, on every backend (frozen Engine, Store, ShardedStore).
func TestTopKNNFacade(t *testing.T) {
	db, err := probprune.Synthetic(probprune.SyntheticConfig{
		N: 150, Samples: 16, MaxExtent: 0.05, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, be := range queryBackends(t, db, probprune.Options{MaxIterations: 6}) {
		t.Run(be.name, func(t *testing.T) {
			q := probprune.PointObject(-1, probprune.Point{0.5, 0.5})
			top := be.eng.TopKNN(q, 3, 5)
			if len(top) != 5 {
				t.Fatalf("TopKNN returned %d matches", len(top))
			}
			for i := 1; i < len(top); i++ {
				mi := top[i-1].Prob.LB + top[i-1].Prob.UB
				mj := top[i].Prob.LB + top[i].Prob.UB
				if mj > mi+1e-9 {
					t.Fatal("TopKNN not ordered by probability")
				}
			}
		})
	}
}

// TestUKRanksFacade checks the U-kRanks query through the public
// surface against the deterministic certain-data case, on every
// backend.
func TestUKRanksFacade(t *testing.T) {
	db := probprune.Database{
		probprune.PointObject(0, probprune.Point{2, 0}),
		probprune.PointObject(1, probprune.Point{1, 0}),
	}
	for _, be := range queryBackends(t, db, probprune.Options{MaxIterations: 3}) {
		t.Run(be.name, func(t *testing.T) {
			q := probprune.PointObject(-1, probprune.Point{0, 0})
			winners := be.eng.UKRanks(q, 2)
			if len(winners) != 2 || winners[0].Object.ID != 1 || winners[1].Object.ID != 0 {
				t.Fatalf("UKRanks winners wrong: %+v", winners)
			}
			if ids := be.eng.GlobalTopK(q, 2); len(ids) != 2 {
				t.Fatalf("GlobalTopK returned %d objects", len(ids))
			}
		})
	}
}

// TestExistentialFacade exercises existential uncertainty end to end.
func TestExistentialFacade(t *testing.T) {
	ref := probprune.PointObject(10, probprune.Point{0, 0})
	target := probprune.PointObject(0, probprune.Point{5, 0})
	maybe := probprune.PointObject(1, probprune.Point{1, 0})
	if err := maybe.SetExistence(0.4); err != nil {
		t.Fatal(err)
	}
	db := probprune.Database{target, maybe}
	res := probprune.Run(db, target, ref, probprune.Options{MaxIterations: 3})
	iv := res.Bound(1)
	if iv.LB < 0.4-1e-9 || iv.UB > 0.4+1e-9 {
		t.Fatalf("existential bound %+v, want [0.4, 0.4]", iv)
	}
}

// Benchmarks regenerating every exhibit of the paper's evaluation
// (Figures 5-9; the evaluation section contains no numbered tables)
// plus the ablation studies listed in DESIGN.md. Each benchmark runs
// the corresponding experiment end to end on a scaled-down
// configuration (see internal/exp: Default vs PaperScale) and reports a
// headline metric of the figure via b.ReportMetric. Run a single figure
// at paper scale with cmd/experiments -paper instead; these benchmarks
// exist so `go test -bench=.` exercises every experiment path.
package probprune_test

import (
	"testing"

	"probprune/internal/exp"
)

// benchConfig is small enough for the full -bench=. suite to finish in
// minutes while still producing non-degenerate curves.
func benchConfig() exp.Config {
	return exp.Config{
		SyntheticN:    600,
		IcebergN:      400,
		Samples:       32,
		Queries:       2,
		TargetRank:    8,
		MaxExtent:     0.01,
		MaxIterations: 3,
		Seed:          1,
	}
}

func lastY(s exp.Series) float64 {
	return s.Points[len(s.Points)-1].Y
}

func BenchmarkFig5_MCSampleSize(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := exp.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastY(fig.Series[0]), "sec/query@maxS")
	}
}

func BenchmarkFig6a_SpatialPruning(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := exp.Fig6a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		opt, mm := lastY(fig.Series[0]), lastY(fig.Series[1])
		b.ReportMetric(opt, "optimal-candidates")
		b.ReportMetric(mm, "minmax-candidates")
	}
}

func BenchmarkFig6b_UncertaintyPerIteration(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := exp.Fig6b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastY(fig.Series[0]), "final-uncertainty-optimal")
		b.ReportMetric(lastY(fig.Series[1]), "final-uncertainty-minmax")
	}
}

func BenchmarkFig7a_IDCAvsMC_Synthetic(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := exp.Fig7(cfg, "synthetic")
		if err != nil {
			b.Fatal(err)
		}
		// Runtime fraction of MC at the last iteration, largest S.
		last := fig.Series[len(fig.Series)-1]
		b.ReportMetric(last.Points[len(last.Points)-1].X, "runtime-fraction-of-MC")
	}
}

func BenchmarkFig7b_IDCAvsMC_Iceberg(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := exp.Fig7(cfg, "iceberg")
		if err != nil {
			b.Fatal(err)
		}
		last := fig.Series[len(fig.Series)-1]
		b.ReportMetric(last.Points[len(last.Points)-1].X, "runtime-fraction-of-MC")
	}
}

func BenchmarkFig8_PredicateQueries(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := exp.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// IDCA at tau=0.5, k=max vs the flat MC line.
		b.ReportMetric(lastY(fig.Series[1]), "idca-sec@tau0.5")
		b.ReportMetric(lastY(fig.Series[3]), "mc-sec")
	}
}

func BenchmarkFig9a_InfluenceObjects(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := exp.Fig9a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := fig.Series[len(fig.Series)-1]
		b.ReportMetric(lastY(last), "sec-last-iter-max-influence")
	}
}

func BenchmarkFig9b_DatabaseSize(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := exp.Fig9b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := fig.Series[len(fig.Series)-1]
		b.ReportMetric(lastY(last), "sec-last-iter-max-db")
	}
}

func BenchmarkAblation_UGFvsCDFBounds(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := exp.AblationUGF(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Average width advantage of the UGF across counts.
		var ugf, two float64
		for j := range fig.Series[0].Points {
			ugf += fig.Series[0].Points[j].Y
			two += fig.Series[1].Points[j].Y
		}
		b.ReportMetric(ugf, "ugf-total-width")
		b.ReportMetric(two, "two-gf-total-width")
	}
}

func BenchmarkAblation_TruncatedUGF(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := exp.AblationTruncation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Series[0].Points[0].Y, "sec-truncated-k1")
		b.ReportMetric(lastY(fig.Series[1]), "sec-full")
	}
}

func BenchmarkAblation_AdaptiveRefinement(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := exp.AblationAdaptive(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Last-iteration cost of each variant ("uniform sec" is series
		// 0, "adaptive sec" is series 2).
		b.ReportMetric(lastY(fig.Series[0]), "sec-uniform-last-iter")
		b.ReportMetric(lastY(fig.Series[2]), "sec-adaptive-last-iter")
	}
}

func BenchmarkAblation_Dimensionality(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := exp.AblationDimensionality(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastY(fig.Series[0]), "influence-at-5d")
		b.ReportMetric(fig.Series[0].Points[0].Y, "influence-at-2d")
	}
}

func BenchmarkAblation_RTreeFilter(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := exp.AblationIndexFilter(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastY(fig.Series[0]), "sec-linear-max-db")
		b.ReportMetric(lastY(fig.Series[1]), "sec-rtree-max-db")
	}
}

package probprune_test

import (
	"math/rand"
	"path/filepath"
	"testing"

	"probprune"
)

// backend is one of the four public query backends — frozen Engine,
// live Store, sharded ShardedStore, and a durable Store written to
// disk, closed and reopened — exposed through the common Engine
// surface, so every root-level API test body runs unchanged (and must
// pass identically) against each.
type backend struct {
	name string
	eng  *probprune.Engine
}

// byID resolves the backend's own instance of a database object —
// backends recovered from disk hold decoded copies, not db's pointers.
func (be backend) byID(t *testing.T, id int) *probprune.Object {
	t.Helper()
	for _, o := range be.eng.DB {
		if o.ID == id {
			return o
		}
	}
	t.Fatalf("object %d not in backend %s", id, be.name)
	return nil
}

// queryBackends builds identically-configured engines from all four
// backends over the same database.
func queryBackends(t *testing.T, db probprune.Database, opts probprune.Options) []backend {
	t.Helper()
	store, err := probprune.NewStore(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := probprune.NewShardedStore(db, probprune.ShardedOptions{Shards: 4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return []backend{
		{"engine", probprune.NewEngine(db, opts)},
		{"store", store.Snapshot().Engine()},
		{"sharded", sharded.Snapshot().Engine()},
		{"durable", durableReopen(t, db, opts).Snapshot().Engine()},
	}
}

// durableReopen round-trips db through a journal: bootstrap on disk,
// close, reopen. Queries on the reopened store must match the
// in-memory backends bit for bit.
func durableReopen(t *testing.T, db probprune.Database, opts probprune.Options) *probprune.Store {
	t.Helper()
	popts := probprune.PersistOptions{Dir: filepath.Join(t.TempDir(), "db")}
	s, err := probprune.BootstrapStore(db, popts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := probprune.OpenStore(popts, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reopened.Close() })
	return reopened
}

// TestEndToEndKNN is the integration test of the public API: build a
// database, pose a threshold kNN query through every backend, and
// cross-check every verdict against the exact computation.
func TestEndToEndKNN(t *testing.T) {
	db, err := probprune.Synthetic(probprune.SyntheticConfig{
		N: 300, Samples: 24, MaxExtent: 0.05, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, be := range queryBackends(t, db, probprune.Options{MaxIterations: 8}) {
		t.Run(be.name, func(t *testing.T) {
			q := probprune.PointObject(-1, probprune.Point{0.5, 0.5})
			const k, tau = 5, 0.5
			matches := be.eng.KNN(q, k, tau)
			if len(matches) != len(db) {
				t.Fatalf("%d matches for %d objects", len(matches), len(db))
			}
			results := 0
			for _, m := range matches {
				if !m.IsResult {
					continue
				}
				results++
				// Exclude the candidate by ID, not pointer: the durable
				// backend's objects are decoded copies of db's.
				var cands []*probprune.Object
				for _, o := range db {
					if o.ID != m.Object.ID {
						cands = append(cands, o)
					}
				}
				pdf := probprune.ExactDomCountPDF(probprune.L2, cands, m.Object, q, k)
				exact := 0.0
				for _, p := range pdf {
					exact += p
				}
				if exact < tau-1e-9 {
					t.Errorf("object %d reported as result but exact P = %g < %g", m.Object.ID, exact, tau)
				}
			}
			if results == 0 {
				t.Error("threshold kNN query returned no results at all")
			}
			if results > 3*k {
				t.Errorf("implausibly many results: %d", results)
			}
		})
	}
}

// TestEndToEndInverseRanking exercises the inverse ranking query on the
// iceberg simulation through the public API, on every backend.
func TestEndToEndInverseRanking(t *testing.T) {
	db, err := probprune.IcebergSim(probprune.IcebergConfig{N: 150, Samples: 16, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, be := range queryBackends(t, db, probprune.Options{MaxIterations: 6}) {
		t.Run(be.name, func(t *testing.T) {
			// Resolve the operands from the backend's own database: the
			// durable backend holds decoded copies, and the engine
			// identifies the target among the candidates by instance.
			rd := be.eng.InverseRank(be.byID(t, db[3].ID), be.byID(t, db[77].ID))
			if rd.MinRank < 1 {
				t.Fatalf("MinRank = %d", rd.MinRank)
			}
			mass := 0.0
			for i := rd.MinRank; i < rd.MinRank+len(rd.Ranks); i++ {
				iv := rd.Bound(i)
				if iv.LB < -1e-9 || iv.UB > 1+1e-9 || iv.LB > iv.UB+1e-9 {
					t.Fatalf("rank %d has invalid interval %+v", i, iv)
				}
				mass += iv.LB
			}
			if mass > 1+1e-9 {
				t.Fatalf("definite mass %g exceeds 1", mass)
			}
		})
	}
}

// TestDominationFacade sanity-checks the exported geometry.
func TestDominationFacade(t *testing.T) {
	a := probprune.Rect{Min: probprune.Point{0, 0}, Max: probprune.Point{1, 1}}
	b := probprune.Rect{Min: probprune.Point{9, 9}, Max: probprune.Point{10, 10}}
	r := probprune.Rect{Min: probprune.Point{1, 1}, Max: probprune.Point{2, 2}}
	if !probprune.Dominates(probprune.L2, a, b, r) {
		t.Error("Dominates missed a clear case")
	}
	if !probprune.DominatesMinMax(probprune.L2, a, b, r) {
		t.Error("DominatesMinMax missed a clear case")
	}
	if probprune.Dominates(probprune.L2, b, a, r) {
		t.Error("Dominates inverted")
	}
}

// TestRunAndIndexedRunFacade checks Run/RunIndexed/NewIndex plumbing.
func TestRunAndIndexedRunFacade(t *testing.T) {
	db, err := probprune.Synthetic(probprune.SyntheticConfig{
		N: 120, Samples: 16, MaxExtent: 0.05, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := probprune.Queries(db, 1, 10, probprune.L2, 14)
	q := qs[0]
	lin := probprune.Run(db, q.Target, q.Reference, probprune.Options{MaxIterations: 3})
	idx := probprune.RunIndexed(probprune.NewIndex(db), q.Target, q.Reference, probprune.Options{MaxIterations: 3})
	if lin.CompleteDominators != idx.CompleteDominators || len(lin.Influence) != len(idx.Influence) {
		t.Fatal("indexed facade diverges from linear facade")
	}
	exact := probprune.ExactPDom(probprune.L2, db[1], db[2], db[3])
	if exact < 0 || exact > 1 {
		t.Fatalf("ExactPDom out of range: %g", exact)
	}
	lo, hi := probprune.ExpectedRankBounds(lin)
	if lo > hi || lo < 1 {
		t.Fatalf("expected rank bounds [%g, %g] invalid", lo, hi)
	}
}

// TestSaveLoadFacade round-trips a dataset through the public API.
func TestSaveLoadFacade(t *testing.T) {
	db, err := probprune.Synthetic(probprune.SyntheticConfig{N: 25, Samples: 8, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.gob.gz")
	if err := probprune.SaveFile(path, db); err != nil {
		t.Fatal(err)
	}
	got, err := probprune.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(db) {
		t.Fatalf("round trip: %d vs %d objects", len(got), len(db))
	}
}

// TestObjectConstructors exercises the exported constructors.
func TestObjectConstructors(t *testing.T) {
	o, err := probprune.NewObject(1, []probprune.Point{{0, 0}, {1, 1}})
	if err != nil || o.NumSamples() != 2 {
		t.Fatalf("NewObject: %v", err)
	}
	w, err := probprune.NewWeightedObject(2, []probprune.Point{{0, 0}, {1, 1}}, []float64{3, 1})
	if err != nil || w.Weight(0) != 0.75 {
		t.Fatalf("NewWeightedObject: %v", err)
	}
	rng := rand.New(rand.NewSource(16))
	g, err := probprune.Realize(3, probprune.UniformBox{Rect: o.MBR}, 50, rng)
	if err != nil || g.NumSamples() != 50 {
		t.Fatalf("Realize: %v", err)
	}
	stop := probprune.ThresholdStop(3, 0.5)
	if stop == nil {
		t.Fatal("ThresholdStop returned nil")
	}
}

// Benchmarks for the durability layer, wrapping the shared
// internal/benchscen scenario bodies (cmd/bench writes the same
// measurements to the committed BENCH_PR5.json): journaled update
// throughput, and recovery cost cold (whole database replayed from the
// log) versus from a checkpoint plus empty tail.
package probprune_test

import (
	"testing"

	"probprune/internal/benchscen"
)

func BenchmarkWALIngest(b *testing.B) {
	benchscen.WALIngest(b, benchscen.MustDB(1000))
}

func BenchmarkRecoveryCold(b *testing.B) {
	benchscen.RecoveryCold(b, benchscen.MustDB(1000))
}

func BenchmarkRecoveryCheckpoint(b *testing.B) {
	benchscen.RecoveryCheckpoint(b, benchscen.MustDB(1000))
}

// Benchmarks for the durability layer, wrapping the shared
// internal/benchscen scenario bodies (cmd/bench writes the same
// measurements to the committed BENCH_PR*.json): journaled update
// throughput, recovery cost cold (whole database replayed from the
// log) versus from a checkpoint plus empty tail, SyncAlways ingest
// with and without group commit, and commit latency while background
// checkpoints run.
package probprune_test

import (
	"testing"

	"probprune/internal/benchscen"
)

func BenchmarkWALIngest(b *testing.B) {
	benchscen.WALIngest(b, benchscen.MustDB(1000))
}

func BenchmarkRecoveryCold(b *testing.B) {
	benchscen.RecoveryCold(b, benchscen.MustDB(1000))
}

func BenchmarkRecoveryCheckpoint(b *testing.B) {
	benchscen.RecoveryCheckpoint(b, benchscen.MustDB(1000))
}

func BenchmarkDurableIngestSerial(b *testing.B) {
	benchscen.DurableIngestSerial(b, benchscen.MustDB(1000))
}

func BenchmarkDurableIngestGroupCommit(b *testing.B) {
	benchscen.DurableIngestGroupCommit(b, benchscen.MustDB(1000))
}

func BenchmarkCheckpointUnderLoad(b *testing.B) {
	benchscen.CheckpointUnderLoad(b, benchscen.MustDB(1000))
}

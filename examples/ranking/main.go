// Fleet dispatch: rank uncertain moving objects by expected proximity.
// Taxi positions are known only up to GPS noise plus dead-reckoning
// drift since the last ping (moving-object databases are the classic
// motivation for uncertain data, cf. Wolfson et al.). A dispatcher
// needs the cabs ordered by how close they are to a pickup point — an
// expected-rank ranking query (Corollary 6), with bounds that quantify
// how confident the ordering is.
//
//	go run ./examples/ranking
package main

import (
	"fmt"
	"log"
	"math/rand"

	"probprune"
)

func main() {
	rng := rand.New(rand.NewSource(5))

	// 250 cabs on a 10km × 10km grid (coordinates in km). Position
	// uncertainty grows with seconds since the last GPS ping.
	db := make(probprune.Database, 0, 250)
	for i := 0; i < 250; i++ {
		pos := probprune.Point{rng.Float64() * 10, rng.Float64() * 10}
		sincePing := rng.Float64() * 30 // seconds
		drift := 0.01 + 0.004*sincePing // km
		region := probprune.Rect{
			Min: probprune.Point{pos[0] - drift, pos[1] - drift},
			Max: probprune.Point{pos[0] + drift, pos[1] + drift},
		}
		cab, err := probprune.Realize(i, probprune.UniformBox{Rect: region}, 60, rng)
		if err != nil {
			log.Fatal(err)
		}
		db = append(db, cab)
	}

	pickup := probprune.PointObject(-1, probprune.Point{5.0, 5.0})
	engine := probprune.NewEngine(db, probprune.Options{MaxIterations: 6})

	ranked := engine.RankByExpectedRank(pickup)
	fmt.Println("cabs by expected proximity rank to the pickup at (5.0, 5.0):")
	for i, r := range ranked[:8] {
		c := r.Object.Centroid()
		certainty := "tight"
		if r.ExpectedRankUB-r.ExpectedRankLB > 0.5 {
			certainty = "uncertain"
		}
		fmt.Printf("  %d. cab %3d near (%.2f, %.2f): E[rank] in [%.2f, %.2f] (%s)\n",
			i+1, r.Object.ID, c[0], c[1], r.ExpectedRankLB, r.ExpectedRankUB, certainty)
	}

	// Dispatch decision: does the front-runner beat the runner-up in
	// every consistent assignment of the bounds?
	if len(ranked) >= 2 && ranked[0].ExpectedRankUB < ranked[1].ExpectedRankLB {
		fmt.Println("dispatch is unambiguous: the top cab wins under any resolution of the bounds")
	} else {
		fmt.Println("dispatch is ambiguous: refine further or ping the top cabs for fresh positions")
	}
}

// Iceberg monitoring: the paper's real-world scenario. Iceberg
// sightings drift after they are reported, so each berg's position is
// uncertain — the longer since the sighting, the larger the
// uncertainty region. A ship at an (uncertain) projected waypoint asks:
// "where does berg X rank among all bergs by proximity to me?" — a
// probabilistic inverse ranking query (Corollary 3 of the paper).
//
//	go run ./examples/iceberg
package main

import (
	"fmt"
	"log"
	"math/rand"

	"probprune"
)

func main() {
	// Simulated IIP iceberg sightings (see DESIGN.md on the
	// substitution for the real NSIDC dataset).
	db, err := probprune.IcebergSim(probprune.IcebergConfig{
		N:       2000,
		Samples: 100,
		Seed:    3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The ship's projected position one hour out is itself uncertain:
	// a Gaussian around the dead-reckoning estimate inside the corridor.
	rng := rand.New(rand.NewSource(99))
	estimate := probprune.Point{0.45, 0.55}
	region := probprune.Rect{
		Min: probprune.Point{0.445, 0.545},
		Max: probprune.Point{0.455, 0.555},
	}
	ship, err := probprune.Realize(-1, probprune.TruncatedGaussian{
		Mean:   estimate,
		Sigma:  []float64{0.002, 0.002},
		Region: region,
	}, 100, rng)
	if err != nil {
		log.Fatal(err)
	}

	engine := probprune.NewEngine(db, probprune.Options{MaxIterations: 6})

	// Rank the nearest few bergs: for each, the distribution of its
	// proximity rank relative to the ship.
	for rank := 1; rank <= 3; rank++ {
		berg := nthNearest(db, ship, rank)
		rd := engine.InverseRank(berg, ship)
		fmt.Printf("berg %d (MinDist rank %d): proximity rank distribution\n", berg.ID, rank)
		printed := 0
		for i := rd.MinRank; printed < 5 && i < rd.MinRank+len(rd.Ranks); i++ {
			iv := rd.Bound(i)
			if iv.UB < 1e-6 {
				continue
			}
			fmt.Printf("  P(rank = %2d) in [%.3f, %.3f]\n", i, iv.LB, iv.UB)
			printed++
		}
		lo, hi := probprune.ExpectedRankBounds(rd.Result)
		fmt.Printf("  expected rank in [%.2f, %.2f]\n", lo, hi)
	}
}

// nthNearest picks the database object with the n-th smallest MinDist
// to the reference.
func nthNearest(db probprune.Database, ref *probprune.Object, n int) *probprune.Object {
	type cand struct {
		o *probprune.Object
		d float64
	}
	best := make([]cand, 0, n)
	for _, o := range db {
		d := o.MBR.MinDistRect(probprune.L2, ref.MBR)
		best = append(best, cand{o: o, d: d})
	}
	for i := 0; i < n; i++ {
		min := i
		for j := i + 1; j < len(best); j++ {
			if best[j].d < best[min].d {
				min = j
			}
		}
		best[i], best[min] = best[min], best[i]
	}
	return best[n-1].o
}

// Command server demonstrates the network serving layer end to end: it
// starts an in-process udbserver over a synthetic store on a loopback
// listener, then drives it through the Go client — one-shot
// probabilistic queries, a live durable subscription watching a kNN
// neighborhood, a mutation whose push arrives over the wire, and a
// disconnect/RESUME cycle that picks the stream back up at the exact
// watermark without losing or duplicating an event.
//
//	go run ./examples/server
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"

	"probprune/internal/core"
	"probprune/internal/query"
	"probprune/internal/server"
	"probprune/internal/server/client"
	"probprune/internal/uncertain"
	"probprune/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "probprune-server-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := workload.Synthetic(workload.SyntheticConfig{
		N: 500, Samples: 8, MaxExtent: 0.02, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	store, err := query.NewStore(db, core.Options{MaxIterations: 3})
	if err != nil {
		log.Fatal(err)
	}

	// The server: any Backend works (Store or ShardedStore); a cursor
	// path enables named (durable) subscriptions.
	srv := server.New(store, server.Options{CursorPath: filepath.Join(dir, "cursor")})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()
	fmt.Println("serving on", addr)

	// One-shot queries over the wire.
	cl, err := client.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	q := uncertain.PointObject(-1, []float64{0.5, 0.5})
	ms, err := cl.KNN(q, 5, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KNN(k=5, tau=0.3): %d candidates\n", len(ms))
	var member *uncertain.Object
	results := 0
	for _, m := range ms {
		if m.IsResult {
			results++
			fmt.Printf("  result: object %d  P(kNN) ∈ [%.3f, %.3f]\n", m.ID, m.LB, m.UB)
			if member == nil {
				member, _, _ = cl.Get(m.ID)
			}
		}
	}

	// A durable subscription on the same neighborhood.
	sub, err := cl.Subscribe(client.SubOptions{
		Kind: "KNN", K: 5, Tau: 0.3, Q: q, Name: "demo",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subscribed (mode=%s); initial result set:\n", sub.Mode)
	var wmV uint64
	var wmID int
	for i := 0; i < results; i++ { // initial events: one per current result
		ev := <-sub.Events
		fmt.Printf("  %s object %d @v%d\n", ev.Kind, ev.Object.ID, ev.Version)
		wmV, wmID = ev.Version, ev.Object.ID
	}

	// A mutation pushes live over the wire.
	if _, err := cl.Delete(member.ID); err != nil {
		log.Fatal(err)
	}
	ev := <-sub.Events
	fmt.Printf("push: %s object %d @v%d\n", ev.Kind, ev.Object.ID, ev.Version)
	wmV, wmID = ev.Version, ev.Object.ID

	// Drop the connection: the named session parks server-side. A new
	// connection resumes at the watermark — the reinsert below happened
	// while nobody was attached, yet nothing is lost.
	cl.Close()
	cl2, err := client.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer cl2.Close()
	if err := cl2.Insert(member); err != nil {
		log.Fatal(err)
	}
	sub2, err := cl2.Resume("demo", wmV, wmID, client.SubOptions{
		Kind: "KNN", K: 5, Tau: 0.3, Q: q, Name: "demo",
	})
	if err != nil {
		log.Fatal(err)
	}
	ev = <-sub2.Events
	fmt.Printf("resumed (mode=%s, lost=%d); replayed push: %s object %d @v%d\n",
		sub2.Mode, sub2.Lost, ev.Kind, ev.Object.ID, ev.Version)

	if err := cl2.Unsubscribe(sub2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("done")
}

// Sensor monitoring: a classic uncertain-database scenario (the paper's
// introduction cites sensor databases as a motivating application).
// Each sensor reports a (temperature, humidity) reading with known
// measurement noise, so its true state is an uncertain 2-D attribute
// vector. When a new calibration probe is installed, operators want the
// sensors for which the probe is among their k most similar peers — a
// probabilistic reverse kNN query (Corollary 5): those are the sensors
// whose readings the probe can cross-validate.
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"log"
	"math/rand"

	"probprune"
)

func main() {
	rng := rand.New(rand.NewSource(21))

	// 400 sensors: true states clustered in three operating regimes;
	// per-sensor noise depends on its hardware revision.
	regimes := []struct{ t, h float64 }{
		{22, 40}, // office floors
		{17, 60}, // cold aisle
		{30, 30}, // rooftop
	}
	db := make(probprune.Database, 0, 400)
	for i := 0; i < 400; i++ {
		reg := regimes[rng.Intn(len(regimes))]
		mean := probprune.Point{
			reg.t + rng.NormFloat64()*2.0,
			reg.h + rng.NormFloat64()*5.0,
		}
		noise := 0.2 + rng.Float64()*0.6 // hardware-dependent σ
		region := probprune.Rect{
			Min: probprune.Point{mean[0] - 3*noise, mean[1] - 3*noise},
			Max: probprune.Point{mean[0] + 3*noise, mean[1] + 3*noise},
		}
		sensor, err := probprune.Realize(i, probprune.TruncatedGaussian{
			Mean:   mean,
			Sigma:  []float64{noise, noise},
			Region: region,
		}, 80, rng)
		if err != nil {
			log.Fatal(err)
		}
		db = append(db, sensor)
	}

	// The probe sits in the office regime; its own reading is uncertain
	// too (it has not been calibrated yet — that is the point).
	probe, err := probprune.Realize(-1, probprune.TruncatedGaussian{
		Mean:   probprune.Point{22.5, 41},
		Sigma:  []float64{0.4, 0.4},
		Region: probprune.Rect{Min: probprune.Point{21.3, 39.8}, Max: probprune.Point{23.7, 42.2}},
	}, 80, rng)
	if err != nil {
		log.Fatal(err)
	}

	engine := probprune.NewEngine(db, probprune.Options{MaxIterations: 6})

	// Which sensors have the probe among their 3 most similar peers
	// with probability at least 25%?
	const k, tau = 3, 0.25
	matches := engine.RKNN(probe, k, tau)

	fmt.Printf("sensors that can use the probe for cross-validation (R%dNN, τ=%.0f%%):\n", k, tau*100)
	count := 0
	for _, m := range matches {
		if !m.Decided || !m.IsResult {
			continue
		}
		count++
		c := m.Object.Centroid()
		fmt.Printf("  sensor %3d at (%.1f°C, %.0f%%RH): P in [%.3f, %.3f]\n",
			m.Object.ID, c[0], c[1], m.Prob.LB, m.Prob.UB)
	}
	fmt.Printf("%d of %d sensors qualify\n", count, len(db))
}

// Sharded serving: a city-wide sensor grid is partitioned into spatial
// stripes — eight independent shards, each with its own R-tree and
// decomposition cache — behind a scatter-gather router. Queries merge
// per-shard filter bounds canonically before any refinement runs, so
// the answers are bit-identical to an unsharded store (the example
// checks this on every query); mutations pay the copy-on-write detach
// of their home shard only; a standing subscription consumes the merged
// multi-shard change stream; and an online rebalance re-homes sensors
// that drifted across stripe borders without disturbing any of it.
//
//	go run ./examples/sharded
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"reflect"

	"probprune"
)

const (
	sensors = 400
	shards  = 8
	k       = 4
	tau     = 0.5
)

func sensor(rng *rand.Rand, id int, cx, cy float64) *probprune.Object {
	pts := make([]probprune.Point, 8)
	for i := range pts {
		pts[i] = probprune.Point{cx + rng.NormFloat64()*0.01, cy + rng.NormFloat64()*0.01}
	}
	o, err := probprune.NewObject(id, pts)
	if err != nil {
		log.Fatal(err)
	}
	return o
}

func main() {
	rng := rand.New(rand.NewSource(7))

	pos := make([][2]float64, sensors)
	db := make(probprune.Database, sensors)
	for i := range db {
		pos[i] = [2]float64{rng.Float64(), rng.Float64()}
		db[i] = sensor(rng, i, pos[i][0], pos[i][1])
	}
	opts := probprune.Options{MaxIterations: 4}

	sharded, err := probprune.NewShardedStore(db,
		probprune.ShardedOptions{Shards: shards, Partition: probprune.StripeShards(0, 0, 1)}, opts)
	if err != nil {
		log.Fatal(err)
	}
	// The unsharded reference store — only here to demonstrate
	// bit-identity; a real deployment runs one or the other.
	reference, err := probprune.NewStore(db, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d sensors across %d spatial shards: %v\n\n", sharded.Len(), shards, sharded.ShardSizes())

	monitor := probprune.NewMonitor(sharded, probprune.MonitorOptions{Buffer: 1024})
	defer monitor.Close()
	hub := probprune.PointObject(-1, probprune.Point{0.5, 0.5})
	sub, err := monitor.SubscribeKNN(hub, k, tau)
	if err != nil {
		log.Fatal(err)
	}

	queryBoth := func(round int) {
		got := sharded.KNN(hub, k, tau)
		want := reference.KNN(hub, k, tau)
		results := 0
		for _, m := range got {
			if m.IsResult {
				results++
			}
		}
		fmt.Printf("round %d: %d results near the hub, scatter-gather bit-identical to unsharded: %v\n",
			round, results, reflect.DeepEqual(got, want))
	}
	queryBoth(0)

	for round := 1; round <= 3; round++ {
		// Sensors drift east; updates commit through the router, each
		// detaching only its home shard.
		for i := 0; i < 60; i++ {
			j := rng.Intn(sensors)
			pos[j][0] += rng.Float64() * 0.1
			if pos[j][0] > 1 {
				pos[j][0] -= 1
			}
			o := sensor(rng, j, pos[j][0], pos[j][1])
			if err := sharded.Update(o); err != nil {
				log.Fatal(err)
			}
			if err := reference.Update(o); err != nil {
				log.Fatal(err)
			}
		}
		// Online rebalance: re-home the stripe-crossers. No version
		// changes, no events, no result changes.
		before := sharded.Version()
		moved := sharded.Rebalance()
		fmt.Printf("round %d: rebalanced %d drifted sensors (version %d -> %d)\n",
			round, moved, before, sharded.Version())
		queryBoth(round)
	}

	if err := monitor.Sync(context.Background()); err != nil {
		log.Fatal(err)
	}
	events := 0
	for {
		select {
		case <-sub.Events():
			events++
			continue
		default:
		}
		break
	}
	fmt.Printf("\nstanding subscription consumed the merged stream: %d events, monitor cursor %v\n",
		events, monitor.VersionVector())
}

// Progressive refinement: drive IDCA step by step with the Session API.
// An interactive application (or one under a latency budget) does not
// want to commit to a fixed iteration count: it refines while the
// deadline allows, rendering the tightening probability bounds as they
// improve, and stops as soon as the answer is good enough — exactly the
// anytime behaviour the paper's filter-refinement design enables.
//
//	go run ./examples/progressive
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"probprune"
)

func main() {
	db, err := probprune.Synthetic(probprune.SyntheticConfig{
		N:         3000,
		MaxExtent: 0.01,
		Samples:   200,
		Seed:      17,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pick a reference object and the 12th-closest target: close enough
	// that several neighbors genuinely compete with it.
	qs := probprune.Queries(db, 1, 12, probprune.L2, 18)
	target, ref := qs[0].Target, qs[0].Reference

	// Refine until either the expected-rank bounds pin the rank to
	// within ±0.5 or a 100 ms budget runs out.
	session := probprune.NewSessionIndexed(probprune.NewIndex(db), target, ref, probprune.Options{
		Adaptive: true, // skip candidates that are already resolved
	})
	res := session.Result()
	fmt.Printf("target %d vs reference %d: %d influence objects after the filter (%d complete dominators)\n",
		target.ID, ref.ID, len(res.Influence), res.CompleteDominators)

	deadline := time.Now().Add(100 * time.Millisecond)
	for {
		lo, hi := probprune.ExpectedRankBounds(res)
		bar := strings.Repeat("█", int(res.Uncertainty()*4)+1)
		fmt.Printf("  level %d: E[rank] in [%6.2f, %6.2f], uncertainty %.3f %s\n",
			session.Level(), lo, hi, res.Uncertainty(), bar)
		if hi-lo <= 1.0 {
			fmt.Println("bounds are tight enough — stopping early")
			break
		}
		if time.Now().After(deadline) {
			fmt.Println("latency budget exhausted — reporting the current bounds as confidence")
			break
		}
		if !session.Step() {
			fmt.Println("bounds converged to the exact distribution")
			break
		}
	}

	lo, hi := probprune.ExpectedRankBounds(res)
	fmt.Printf("final answer: object %d ranks between %.1f and %.1f w.r.t. object %d\n",
		target.ID, lo, hi, ref.ID)
}

// Live monitoring: a dispatch center tracks a courier fleet whose GPS
// fixes are uncertain (urban-canyon noise), and keeps a standing
// question open — "which couriers are, with at least 60% probability,
// among the 3 nearest to the depot?" Instead of re-running the
// probabilistic kNN query on every position report, a continuous-query
// subscription maintains the answer incrementally: position updates
// stream through the store, only the subscription's influence region is
// consulted, and the dispatcher receives ordered enter/leave/bounds
// events with exact probability bounds.
//
//	go run ./examples/monitor
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"probprune"
)

const (
	fleet = 120
	k     = 3
	tau   = 0.6
)

func courier(rng *rand.Rand, id int, cx, cy float64) *probprune.Object {
	// A GPS fix with position-dependent noise: 12 weighted alternative
	// positions around the reported location.
	noise := 0.004 + rng.Float64()*0.012
	pts := make([]probprune.Point, 12)
	for i := range pts {
		pts[i] = probprune.Point{cx + rng.NormFloat64()*noise, cy + rng.NormFloat64()*noise}
	}
	o, err := probprune.NewObject(id, pts)
	if err != nil {
		log.Fatal(err)
	}
	return o
}

func main() {
	rng := rand.New(rand.NewSource(42))

	// The fleet starts scattered across the city (unit square).
	pos := make([][2]float64, fleet)
	db := make(probprune.Database, fleet)
	for i := range db {
		pos[i] = [2]float64{rng.Float64(), rng.Float64()}
		db[i] = courier(rng, i, pos[i][0], pos[i][1])
	}
	store, err := probprune.NewStore(db, probprune.Options{MaxIterations: 4})
	if err != nil {
		log.Fatal(err)
	}

	monitor := probprune.NewMonitor(store, probprune.MonitorOptions{Buffer: 256})
	defer monitor.Close()

	depot := probprune.PointObject(-1, probprune.Point{0.5, 0.5})
	sub, err := monitor.SubscribeKNN(depot, k, tau)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standing query: %d nearest couriers to the depot with P >= %.0f%%\n\n", k, tau*100)

	// The dispatcher's board, kept current purely from the event stream.
	board := map[int]probprune.Interval{}
	drain := func() {
		for {
			select {
			case ev, ok := <-sub.Events():
				if !ok {
					log.Fatalf("subscription ended: %v", sub.Err())
				}
				switch ev.Kind {
				case probprune.ObjectEntered:
					board[ev.Object.ID] = ev.Match.Prob
					fmt.Printf("  v%-3d + courier %-3d entered   P ∈ [%.3f, %.3f]\n",
						ev.Version, ev.Object.ID, ev.Match.Prob.LB, ev.Match.Prob.UB)
				case probprune.ObjectLeft:
					delete(board, ev.Object.ID)
					fmt.Printf("  v%-3d - courier %-3d left\n", ev.Version, ev.Object.ID)
				case probprune.BoundsChanged:
					board[ev.Object.ID] = ev.Match.Prob
					fmt.Printf("  v%-3d ~ courier %-3d bounds    P ∈ [%.3f, %.3f]\n",
						ev.Version, ev.Object.ID, ev.Match.Prob.LB, ev.Match.Prob.UB)
				}
			default:
				return
			}
		}
	}
	drain()

	// Six rounds of position reports: every courier drifts, couriers
	// near the depot drift toward or away from it. Each round is a burst
	// of live Updates; the monitor wakes the subscription only when a
	// report lands inside its influence region.
	for round := 1; round <= 6; round++ {
		fmt.Printf("round %d: fleet reports positions\n", round)
		for i := range pos {
			pos[i][0] += rng.NormFloat64() * 0.05
			pos[i][1] += rng.NormFloat64() * 0.05
			if pos[i][0] < 0 {
				pos[i][0] = -pos[i][0]
			}
			if pos[i][1] < 0 {
				pos[i][1] = -pos[i][1]
			}
			if err := store.Update(courier(rng, i, pos[i][0], pos[i][1])); err != nil {
				log.Fatal(err)
			}
		}
		if err := monitor.Sync(context.Background()); err != nil {
			log.Fatal(err)
		}
		drain()
	}

	fmt.Printf("\nfinal board (%d couriers):\n", len(board))
	for id, p := range board {
		fmt.Printf("  courier %-3d P ∈ [%.3f, %.3f]\n", id, p.LB, p.UB)
	}
	st := monitor.Stats()
	fmt.Printf("\nmaintenance: %d changes processed, %d wake-ups, %d IDCA runs (vs %d couriers x %d rounds re-queried)\n",
		st.Changes, st.Woken, st.Runs, fleet, 6)
}

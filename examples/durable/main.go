// Command durable demonstrates the durability layer end to end: a
// store is bootstrapped on disk, serves journaled commits and standing
// subscriptions, checkpoints, and is then "killed" and reopened — the
// recovered store picks up at the exact pre-crash state (same version,
// same answers, decompositions already materialized), and a monitor
// with a durable cursor resumes its subscription with only the delta
// since its last save.
//
//	go run ./examples/durable
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"probprune"
)

// drain consumes every buffered event (the monitor is idle between the
// example's phases, so the buffer is complete).
func drain(sub *probprune.Subscription) int {
	n := 0
	for {
		select {
		case <-sub.Events():
			n++
		default:
			return n
		}
	}
}

func main() {
	dir, err := os.MkdirTemp("", "probprune-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := probprune.Synthetic(probprune.SyntheticConfig{
		N: 500, Samples: 64, MaxExtent: 0.03, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Bootstrap: the initial database becomes the first checkpoint;
	// every later commit is journaled before it applies. SyncBackground
	// fsyncs once a second (the everysec trade); CheckpointEvery
	// compacts the log automatically.
	popts := probprune.PersistOptions{
		Dir:             filepath.Join(dir, "db"),
		Sync:            probprune.SyncBackground,
		CheckpointEvery: 256,
	}
	store, err := probprune.BootstrapStore(db, popts, probprune.Options{MaxIterations: 5})
	if err != nil {
		log.Fatal(err)
	}

	// A standing query with a durable identity: its result set rides
	// the monitor's cursor file.
	cursor := filepath.Join(dir, "cursor")
	monitor := probprune.NewMonitor(store, probprune.MonitorOptions{
		Buffer:     4096,
		CursorPath: cursor,
	})
	q := probprune.PointObject(-1, probprune.Point{0.5, 0.5})
	sub, err := monitor.SubscribeKNNDurable("dashboard", q, 5, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standing query starts with %d results\n", drain(sub))

	// Serve: journaled live commits, streamed to the subscription.
	for i := 0; i < 100; i++ {
		o := probprune.PointObject(10000+i, probprune.Point{0.48 + float64(i)*0.0005, 0.5})
		if err := store.Insert(o); err != nil {
			log.Fatal(err)
		}
	}
	if err := monitor.Sync(context.Background()); err != nil { // catch up
		log.Fatal(err)
	}
	fmt.Printf("serving 100 commits streamed %d events\n", drain(sub))
	if err := monitor.Close(); err != nil { // saves the cursor at head
		log.Fatal(err)
	}
	before := store.KNN(q, 5, 0.5)
	version := store.Version()
	if err := store.Close(); err != nil { // "crash": the journal stays behind
		log.Fatal(err)
	}

	// Recovery: checkpoint + log tail replay, bit-identical state.
	reopened, err := probprune.OpenStore(popts, probprune.Options{MaxIterations: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	fmt.Printf("reopened at version %d (pre-crash %d)\n", reopened.Version(), version)
	after := reopened.KNN(q, 5, 0.5)
	same := len(before) == len(after)
	for i := 0; same && i < len(before); i++ {
		same = before[i].Object.ID == after[i].Object.ID && before[i].Prob == after[i].Prob
	}
	fmt.Printf("recovered answers bit-identical: %v\n", same)

	// The resumed monitor: same cursor, same name — nothing to replay,
	// because the cursor was saved at the head.
	monitor2 := probprune.NewMonitor(reopened, probprune.MonitorOptions{
		Buffer:     4096,
		CursorPath: cursor,
	})
	defer monitor2.Close()
	sub2, err := monitor2.SubscribeKNNDurable("dashboard", q, 5, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed subscription replays %d events (cursor was current)\n", drain(sub2))

	// Commits after the resume stream as usual.
	if err := reopened.Insert(probprune.PointObject(20000, probprune.Point{0.5, 0.5})); err != nil {
		log.Fatal(err)
	}
	ev := <-sub2.Events()
	fmt.Printf("post-resume event: %v object %d at version %d\n", ev.Kind, ev.Object.ID, ev.Version)
}

// Quickstart: build a small uncertain database, pose a probabilistic
// threshold kNN query against it, and inspect the probability bounds
// the pruning framework derives.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"probprune"
)

func main() {
	// A synthetic uncertain database: 1,000 objects in the unit square,
	// each an axis-aligned rectangle of side up to 0.02 carrying a
	// uniform density, discretized to 100 samples (the paper's model).
	db, err := probprune.Synthetic(probprune.SyntheticConfig{
		N:         1000,
		MaxExtent: 0.02,
		Samples:   100,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The engine indexes the objects' uncertainty regions in an R-tree
	// and runs iterative domination count approximation per candidate.
	engine := probprune.NewEngine(db, probprune.Options{MaxIterations: 6})

	// "Which objects are among the 5 nearest neighbors of (0.5, 0.5)
	// with probability at least 50%?"
	queryPoint := probprune.PointObject(-1, probprune.Point{0.5, 0.5})
	const k, tau = 5, 0.5
	matches := engine.KNN(queryPoint, k, tau)

	fmt.Printf("probabilistic %d-NN of (0.5, 0.5) with threshold %.0f%%:\n", k, tau*100)
	results, undecided, iterations := 0, 0, 0
	for _, m := range matches {
		iterations += m.Iterations
		if !m.Decided {
			undecided++
			continue
		}
		if m.IsResult {
			results++
			fmt.Printf("  object %4d: P(kNN) in [%.3f, %.3f]\n",
				m.Object.ID, m.Prob.LB, m.Prob.UB)
		}
	}
	fmt.Printf("%d results, %d undecided candidates\n", results, undecided)
	fmt.Printf("refinement iterations across all %d candidates: %d "+
		"(the filter step decides almost every candidate geometrically)\n",
		len(matches), iterations)
}

package probprune_test

import (
	"fmt"
	"os"

	"probprune"
)

// The tight domination criterion decides "is A closer to R than B in
// every possible world?" on whole uncertainty regions, without touching
// any probability density.
func ExampleDominates() {
	// A and B sit on the x-axis with a tall reference strip between
	// them: for every fixed location of R, A is closer — the tight
	// criterion sees it, the min/max approximation does not.
	a := probprune.Rect{Min: probprune.Point{0, 0}, Max: probprune.Point{0.1, 0}}
	b := probprune.Rect{Min: probprune.Point{3, 0}, Max: probprune.Point{3.1, 0}}
	r := probprune.Rect{Min: probprune.Point{1, 0}, Max: probprune.Point{1.2, 5}}

	fmt.Println(probprune.Dominates(probprune.L2, a, b, r))
	fmt.Println(probprune.DominatesMinMax(probprune.L2, a, b, r))
	// Output:
	// true
	// false
}

// Run bounds the domination count PDF of a target object: how many
// database objects are closer to the reference than the target is.
func ExampleRun() {
	// Certain points make the count deterministic: two objects are
	// closer to the reference than the target, one is farther.
	ref := probprune.PointObject(10, probprune.Point{0, 0})
	target := probprune.PointObject(0, probprune.Point{3, 0})
	db := probprune.Database{
		target,
		probprune.PointObject(1, probprune.Point{1, 0}),
		probprune.PointObject(2, probprune.Point{0, 2}),
		probprune.PointObject(3, probprune.Point{9, 9}),
	}

	res := probprune.Run(db, target, ref, probprune.Options{})
	fmt.Println("complete dominators:", res.CompleteDominators)
	fmt.Println("pruned:", res.Pruned)
	iv := res.Bound(2)
	fmt.Printf("P(count = 2) in [%.0f, %.0f]\n", iv.LB, iv.UB)
	// Output:
	// complete dominators: 2
	// pruned: 1
	// P(count = 2) in [1, 1]
}

// ExpectedRankBounds turns a domination-count result into bounds on the
// object's expected similarity rank.
func ExampleExpectedRankBounds() {
	ref := probprune.PointObject(10, probprune.Point{0, 0})
	target := probprune.PointObject(0, probprune.Point{2, 0})
	db := probprune.Database{
		target,
		probprune.PointObject(1, probprune.Point{1, 0}),
		probprune.PointObject(2, probprune.Point{5, 0}),
	}
	res := probprune.Run(db, target, ref, probprune.Options{})
	lo, hi := probprune.ExpectedRankBounds(res)
	fmt.Printf("E[rank] in [%.0f, %.0f]\n", lo, hi)
	// Output:
	// E[rank] in [2, 2]
}

// OpenStore recovers a durable store from its journal directory:
// bootstrap once, commit (each mutation journaled before it applies),
// close — then reopen and find the exact same database.
func ExampleOpenStore() {
	dir, _ := os.MkdirTemp("", "probprune-example-*")
	defer os.RemoveAll(dir)
	popts := probprune.PersistOptions{Dir: dir}

	db := probprune.Database{
		probprune.PointObject(0, probprune.Point{1, 0}),
		probprune.PointObject(1, probprune.Point{2, 0}),
	}
	store, _ := probprune.BootstrapStore(db, popts, probprune.Options{})
	store.Insert(probprune.PointObject(2, probprune.Point{3, 0}))
	store.Delete(0)
	store.Close()

	reopened, _ := probprune.OpenStore(popts, probprune.Options{})
	defer reopened.Close()
	fmt.Println("objects:", reopened.Len(), "version:", reopened.Version())
	q := probprune.PointObject(-1, probprune.Point{0, 0})
	for _, m := range reopened.KNN(q, 1, 0.5) {
		if m.IsResult {
			fmt.Println("nearest neighbor:", m.Object.ID)
		}
	}
	// Output:
	// objects: 2 version: 2
	// nearest neighbor: 1
}

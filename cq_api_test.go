package probprune_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"probprune"
)

// TestContinuousQueryAPI exercises the continuous-query surface through
// the root package: watch a live store through a standing subscription
// and through the raw Store.Watch hook, end-to-end.
func TestContinuousQueryAPI(t *testing.T) {
	db, err := probprune.Synthetic(probprune.SyntheticConfig{N: 80, Samples: 4, MaxExtent: 0.02, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	store, err := probprune.NewStore(db, probprune.Options{MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Raw change hook.
	var changes []probprune.Change
	snap, stop := store.Watch(func(ch probprune.Change) { changes = append(changes, ch) })
	if snap.Version() != store.Version() {
		t.Fatalf("watch snapshot version %d, store %d", snap.Version(), store.Version())
	}
	defer stop()

	monitor := probprune.NewMonitor(store, probprune.MonitorOptions{Buffer: 1024})
	defer monitor.Close()

	q := probprune.PointObject(-1, probprune.Point{0.5, 0.5})
	sub, err := monitor.SubscribeKNN(q, 3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Kind() != probprune.KNNSubscription {
		t.Fatalf("kind %v, want KNN", sub.Kind())
	}

	// A burst of mutations near the query point must produce events.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5; i++ {
		pts := []probprune.Point{
			{0.5 + rng.Float64()*0.01, 0.5 + rng.Float64()*0.01},
			{0.5 + rng.Float64()*0.01, 0.5 + rng.Float64()*0.01},
		}
		o, err := probprune.NewObject(1000+i, pts)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := monitor.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if len(changes) != 5 {
		t.Fatalf("watch saw %d changes, want 5", len(changes))
	}
	for i, ch := range changes {
		if ch.Kind != probprune.ChangeInsert {
			t.Fatalf("change %d kind %v, want insert", i, ch.Kind)
		}
	}
	entered := 0
	for {
		select {
		case ev := <-sub.Events():
			if ev.Kind == probprune.ObjectEntered && ev.Object.ID >= 1000 {
				entered++
			}
			continue
		default:
		}
		break
	}
	if entered == 0 {
		t.Fatal("no ObjectEntered events for objects inserted on top of the query")
	}

	sub.Cancel()
	for range sub.Events() {
	}
	if !errors.Is(sub.Err(), probprune.ErrUnsubscribed) {
		t.Fatalf("Err = %v, want ErrUnsubscribed", sub.Err())
	}

	// BatchCtx through the root alias.
	if err := store.BatchCtx(ctx, func(ctx context.Context, e *probprune.Engine) error {
		_, err := e.KNNCtx(ctx, q, 3, 0.4)
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

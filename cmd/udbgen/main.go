// Command udbgen generates uncertain databases and writes them in the
// repository's dataset format — or, with -format ckpt, as a durable
// checkpoint snapshot (the write-ahead-log layer's format), which
// udbquery loads directly and a durable store recovers from.
//
// Usage:
//
//	udbgen -kind synthetic -n 10000 -samples 1000 -maxextent 0.004 -o synth.udb
//	udbgen -kind iceberg   -n 6216  -samples 1000 -o iceberg.udb
//	udbgen -kind synthetic -n 1000 -format ckpt -o synth.ckpt
package main

import (
	"flag"
	"fmt"
	"os"

	"probprune/internal/uncertain"
	"probprune/internal/wal"
	"probprune/internal/workload"
)

func main() {
	var (
		kind      = flag.String("kind", "synthetic", "dataset family: synthetic or iceberg")
		n         = flag.Int("n", 0, "number of objects (0 = family default)")
		samples   = flag.Int("samples", 0, "samples per object (0 = family default)")
		maxExtent = flag.Float64("maxextent", 0, "maximum object extent (0 = family default)")
		seed      = flag.Int64("seed", 1, "random seed")
		format    = flag.String("format", "udb", "output format: udb (gob dataset) or ckpt (checkpoint snapshot)")
		out       = flag.String("o", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "udbgen: -o is required")
		flag.Usage()
		os.Exit(2)
	}
	if *format != "udb" && *format != "ckpt" {
		fmt.Fprintf(os.Stderr, "udbgen: unknown -format %q\n", *format)
		os.Exit(2)
	}

	var (
		db  uncertain.Database
		err error
	)
	switch *kind {
	case "synthetic":
		db, err = workload.Synthetic(workload.SyntheticConfig{
			N: *n, Samples: *samples, MaxExtent: *maxExtent, Seed: *seed,
		})
	case "iceberg":
		db, err = workload.IcebergSim(workload.IcebergConfig{
			N: *n, Samples: *samples, MaxExtent: *maxExtent, Seed: *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "udbgen: unknown -kind %q\n", *kind)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "udbgen: %v\n", err)
		os.Exit(1)
	}
	switch *format {
	case "udb":
		err = workload.SaveFile(*out, db)
	case "ckpt":
		err = wal.SaveCheckpointFile(*out, &wal.Checkpoint{Objects: db})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "udbgen: writing %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d objects (%d samples each) to %s (%s)\n", len(db), db[0].NumSamples(), *out, *format)
}

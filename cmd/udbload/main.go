// Command udbload measures the serving layer under subscription
// fan-out load: it starts an in-process udbserver on loopback, attaches
// a fleet of concurrent durable subscribers (1000 for the committed
// report), and paces delete+reinsert mutations through the store while
// every mutation fans a push out to every subscriber. It records the
// p50/p99/max push latency (mutation issued → push decoded client-side)
// and concurrent one-shot query latency into a machine-readable JSON
// report (BENCH_PR7.json by default).
//
//	go run ./cmd/udbload                  # full size: 1000 subscribers
//	go run ./cmd/udbload -quick           # CI smoke: 50 subscribers
//	go run ./cmd/udbload -o load.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"probprune/internal/benchscen"
)

type report struct {
	PR     int                        `json:"pr"`
	Go     string                     `json:"go"`
	NumCPU int                        `json:"num_cpu"`
	Quick  bool                       `json:"quick"`
	Load   benchscen.ServerLoadResult `json:"server_load"`
}

func main() {
	var (
		out   = flag.String("o", "BENCH_PR7.json", "output report path")
		quick = flag.Bool("quick", false, "CI smoke mode: small fleet, few mutations")
		subs  = flag.Int("subscribers", 0, "override subscriber count (0: 1000, or 50 with -quick)")
		pairs = flag.Int("pairs", 0, "override mutation pair count (0: 100, or 20 with -quick)")
		gap   = flag.Duration("gap", 0, "override writer pacing (0: 5ms; scaled up for big fleets on few cores)")
		trace = flag.Bool("trace", false, "issue a TRACE-flagged KNN after the drain and report its anatomy")
	)
	flag.Parse()

	cfg := benchscen.ServerLoadConfig{Subscribers: *subs, Pairs: *pairs, WriteGap: *gap, Trace: *trace}
	if *quick {
		if cfg.Subscribers == 0 {
			cfg.Subscribers = 50
		}
		if cfg.Pairs == 0 {
			cfg.Pairs = 20
		}
		cfg.DBSize = 200
	}
	log.Printf("udbload: starting (subscribers=%d pairs=%d quick=%v)", cfg.Subscribers, cfg.Pairs, *quick)
	res, err := benchscen.ServerLoad(cfg)
	if err != nil {
		log.Fatalf("udbload: %v", err)
	}
	rep := report{PR: 7, Go: runtime.Version(), NumCPU: runtime.NumCPU(), Quick: *quick, Load: res}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("udbload: %d subscribers, %d events in %.1fs — push p50 %.3fms p99 %.3fms max %.3fms; query p50 %.3fms p99 %.3fms (%s)\n",
		res.Subscribers, res.Events, res.DurationSec,
		res.PushP50Ms, res.PushP99Ms, res.PushMaxMs, res.QueryP50Ms, res.QueryP99Ms, *out)
	st := res.ServerStats
	fmt.Printf("udbload: server stats — pushed=%d shed=%d cq runs=%d saved=%d, knn served=%d (p99 %.3fms)\n",
		st["server.pushed"], st["server.shed"], st["cq.runs"], st["cq.saved"],
		st["server.cmd.knn.calls"], float64(st["server.cmd.knn.latency.p99_ns"])/1e6)
	fmt.Printf("udbload: server identity — %s gomaxprocs=%d uptime=%ds\n",
		res.GoVersion, res.GoMaxProcs, res.UptimeSeconds)
	if res.Trace != nil {
		t := res.Trace
		fmt.Printf("udbload: traced knn — candidates=%d preselected=%d refined=%d iterations=%d cache=%d/%d prepare=%v eval=%v queue=%v\n",
			t.Candidates, t.Preselected, t.Refined, t.Iterations, t.CacheHits, t.CacheHits+t.CacheMisses, t.Prepare, t.Eval, t.Queue)
	}
}

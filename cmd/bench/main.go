// Command bench runs the repository's key performance scenarios and
// writes the numbers to a machine-readable JSON file (BENCH_PR10.json
// by default), so the performance trajectory of the project is tracked
// in data rather than prose. It measures the hot serving paths —
// one-shot engine queries, warm store queries (plain, with the flight
// recorder armed, and with a TRACE-flagged query), batched queries,
// index build —
// the continuous-query maintenance pair (incremental maintenance vs.
// re-running every standing query per mutation), the sharded serving
// pair (write-interleaved BatchKNN mix and store build at 1 vs 8
// shards), and the durability scenarios: journaled update throughput
// (WALIngest), recovery cold vs from a checkpoint, the SyncAlways
// ingest pair (one committer paying a full fsync per commit vs
// concurrent committers sharing group-commit fsyncs), and commit
// latency while background checkpoints run.
//
// The report carries assertions: group-commit ingest must beat the
// per-commit-fsync baseline by >= 3x, and the p99 commit latency under
// checkpoint load must stay far below a synchronous full-database
// encode. A failed assertion fails the run.
//
// Every scenario is measured twice: a serial pass pinned to
// GOMAXPROCS=1 (the apples-to-apples baseline against earlier reports,
// which were recorded at gomaxprocs 1) and a parallel pass at
// GOMAXPROCS=NumCPU, which lets the query executor fan candidate runs
// out across cores. The derived parallel_speedup_* ratios quantify what
// the worker pool buys on the current hardware.
//
// The scenario bodies live in internal/benchscen and are shared with
// the `go test -bench` wrappers, so this report and the in-tree
// benchmarks measure the same code.
//
//	go run ./cmd/bench                 # full size, ~1s per benchmark
//	go run ./cmd/bench -quick          # smoke mode on a small database
//	go run ./cmd/bench -o bench.json
//	go run ./cmd/bench -cpuprofile cpu.pb -memprofile mem.pb
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"

	"probprune"
	"probprune/internal/benchscen"
)

type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	PR int    `json:"pr"`
	Go string `json:"go"`
	// GOMAXPROCS is the setting of the serial pass (always 1); NumCPU is
	// what the parallel pass ran at.
	GOMAXPROCS int  `json:"gomaxprocs"`
	NumCPU     int  `json:"num_cpu"`
	DBSize     int  `json:"db_size"`
	Quick      bool `json:"quick"`
	// Benchmarks is the serial (GOMAXPROCS=1) pass — comparable with the
	// BENCH_PR*.json history; Parallel is the same scenario set at
	// GOMAXPROCS=NumCPU.
	Benchmarks []benchResult      `json:"benchmarks"`
	Parallel   []benchResult      `json:"parallel"`
	Derived    map[string]float64 `json:"derived"`
}

// scenario pairs a report row name with its benchscen body.
type scenario struct {
	name string
	fn   func(b *testing.B, db probprune.Database)
}

func scenarios() []scenario {
	return []scenario{
		{"EngineKNN", benchscen.EngineKNN},
		{"StoreWarmKNN", benchscen.StoreWarmKNN},
		{"StoreWarmKNNRecorderArmed", benchscen.StoreWarmKNNRecorderArmed},
		{"StoreWarmKNNTraced", benchscen.StoreWarmKNNTraced},
		{"StoreBatchKNN16", benchscen.StoreBatchKNN16},
		{"IndexBulkLoad", benchscen.IndexBulkLoad},
		{"CQMaintain", benchscen.CQMaintain},
		{"CQRequery", benchscen.CQRequery},
		{"ShardedBatchKNN1", benchscen.ShardedBatchKNN(1)},
		{"ShardedBatchKNN8", benchscen.ShardedBatchKNN(8)},
		{"ShardedBuild1", benchscen.ShardedBuild(1)},
		{"ShardedBuild8", benchscen.ShardedBuild(8)},
		{"WALIngest", benchscen.WALIngest},
		{"RecoveryCold", benchscen.RecoveryCold},
		{"RecoveryCheckpoint", benchscen.RecoveryCheckpoint},
		{"DurableIngestSerial", benchscen.DurableIngestSerial},
		{"DurableIngestGroupCommit", benchscen.DurableIngestGroupCommit},
		{"CheckpointUnderLoad", benchscen.CheckpointUnderLoad},
	}
}

// runPass measures every scenario at the current GOMAXPROCS setting.
func runPass(label string, db probprune.Database) []benchResult {
	out := make([]benchResult, 0, len(scenarios()))
	for _, s := range scenarios() {
		res := testing.Benchmark(func(b *testing.B) { s.fn(b, db) })
		br := benchResult{
			Name:        s.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if len(res.Extra) > 0 {
			br.Metrics = map[string]float64{}
			for k, v := range res.Extra {
				br.Metrics[k] = v
			}
		}
		out = append(out, br)
		fmt.Printf("%-8s %-20s %12.0f ns/op %8d allocs/op  %v\n",
			label, s.name, br.NsPerOp, br.AllocsPerOp, br.Metrics)
	}
	return out
}

func find(rs []benchResult, name string) benchResult {
	for _, r := range rs {
		if r.Name == name {
			return r
		}
	}
	return benchResult{}
}

func main() {
	out := flag.String("o", "BENCH_PR10.json", "output file")
	quick := flag.Bool("quick", false, "smoke mode: small database, cheap CI run (numbers not comparable with full runs)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering both benchmark passes to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the passes to this file")
	flag.Parse()
	dbSize := 1000
	if *quick {
		dbSize = 150
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	db := benchscen.MustDB(dbSize)
	rep := report{
		PR:         10,
		Go:         runtime.Version(),
		GOMAXPROCS: 1,
		NumCPU:     runtime.NumCPU(),
		DBSize:     dbSize,
		Quick:      *quick,
		Derived:    map[string]float64{},
	}

	// Serial pass: pinned to one CPU so numbers line up with the
	// BENCH_PR*.json history.
	prev := runtime.GOMAXPROCS(1)
	rep.Benchmarks = runPass("serial", db)
	runtime.GOMAXPROCS(prev)

	// Parallel pass: all cores; the executor's candidate fan-out and the
	// sharded scatter-gather get to use them.
	runtime.GOMAXPROCS(runtime.NumCPU())
	rep.Parallel = runPass("parallel", db)
	runtime.GOMAXPROCS(prev)

	maintain := find(rep.Benchmarks, "CQMaintain")
	requery := find(rep.Benchmarks, "CQRequery")
	sharded1 := find(rep.Benchmarks, "ShardedBatchKNN1")
	sharded8 := find(rep.Benchmarks, "ShardedBatchKNN8")
	build1 := find(rep.Benchmarks, "ShardedBuild1")
	build8 := find(rep.Benchmarks, "ShardedBuild8")
	cold := find(rep.Benchmarks, "RecoveryCold")
	ckpt := find(rep.Benchmarks, "RecoveryCheckpoint")

	if m, r := maintain.Metrics["idca-runs/op"], requery.Metrics["idca-runs/op"]; m > 0 {
		rep.Derived["cq_idca_run_ratio"] = r / m
	}
	if maintain.NsPerOp > 0 {
		rep.Derived["cq_wall_speedup"] = requery.NsPerOp / maintain.NsPerOp
	}
	if sharded8.NsPerOp > 0 {
		rep.Derived["sharded_batchknn_speedup_8x"] = sharded1.NsPerOp / sharded8.NsPerOp
	}
	if build8.NsPerOp > 0 {
		rep.Derived["sharded_build_speedup_8x"] = build1.NsPerOp / build8.NsPerOp
	}
	if ckpt.NsPerOp > 0 {
		rep.Derived["recovery_checkpoint_speedup"] = cold.NsPerOp / ckpt.NsPerOp
	}
	serialFsync := find(rep.Benchmarks, "DurableIngestSerial")
	groupCommit := find(rep.Benchmarks, "DurableIngestGroupCommit")
	ckLoad := find(rep.Benchmarks, "CheckpointUnderLoad")
	if groupCommit.NsPerOp > 0 {
		rep.Derived["group_commit_speedup"] = serialFsync.NsPerOp / groupCommit.NsPerOp
	}
	rep.Derived["checkpoint_load_p99_commit_ns"] = ckLoad.Metrics["p99-commit-ns"]
	rep.Derived["checkpoint_load_max_commit_ns"] = ckLoad.Metrics["max-commit-ns"]
	warm := find(rep.Benchmarks, "StoreWarmKNN")
	armed := find(rep.Benchmarks, "StoreWarmKNNRecorderArmed")
	traced := find(rep.Benchmarks, "StoreWarmKNNTraced")
	if warm.NsPerOp > 0 {
		rep.Derived["recorder_armed_overhead"] = armed.NsPerOp / warm.NsPerOp
		rep.Derived["trace_on_overhead"] = traced.NsPerOp / warm.NsPerOp
	}
	// Serial-vs-parallel speedup per scenario (same binary, same data,
	// only GOMAXPROCS differs).
	for _, s := range rep.Benchmarks {
		if p := find(rep.Parallel, s.Name); p.NsPerOp > 0 {
			rep.Derived["parallel_speedup_"+s.Name] = s.NsPerOp / p.NsPerOp
		}
	}
	fmt.Printf("derived: %v\n", rep.Derived)

	// Report assertions: the durability work must actually be off the
	// write path, not just present.
	failed := false
	assert := func(name string, ok bool, detail string) {
		status := "PASS"
		if !ok {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("assert %-44s %s  (%s)\n", name, status, detail)
	}
	assert("group_commit_speedup >= 3",
		rep.Derived["group_commit_speedup"] >= 3,
		fmt.Sprintf("serial %.0f ns/op, grouped %.0f ns/op, speedup %.2fx",
			serialFsync.NsPerOp, groupCommit.NsPerOp, rep.Derived["group_commit_speedup"]))
	// A synchronous checkpoint at CheckpointEvery=64 would put a full
	// database encode (milliseconds) inside >1% of commits; with the
	// install off the write path the p99 stays in commit territory.
	assert("checkpoint_load_p99_commit_ns < 2ms",
		rep.Derived["checkpoint_load_p99_commit_ns"] > 0 &&
			rep.Derived["checkpoint_load_p99_commit_ns"] < 2e6,
		fmt.Sprintf("p99 %.0f ns, max %.0f ns",
			rep.Derived["checkpoint_load_p99_commit_ns"], rep.Derived["checkpoint_load_max_commit_ns"]))
	// The flight recorder must be free when dormant: serving with the
	// recorder installed but no TRACE flag stays within measurement noise
	// of the plain warm-store path.
	assert("recorder_armed_overhead < 1.5",
		rep.Derived["recorder_armed_overhead"] > 0 &&
			rep.Derived["recorder_armed_overhead"] < 1.5,
		fmt.Sprintf("plain %.0f ns/op, recorder armed %.0f ns/op, ratio %.2fx",
			warm.NsPerOp, armed.NsPerOp, rep.Derived["recorder_armed_overhead"]))

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	if failed {
		log.Fatal("bench-report assertions failed")
	}
}

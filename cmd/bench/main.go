// Command bench runs the repository's key performance scenarios and
// writes the numbers to a machine-readable JSON file (BENCH_PR5.json by
// default), so the performance trajectory of the project is tracked in
// data rather than prose. It measures the hot serving paths — one-shot
// engine queries, warm store queries, batched queries, index build —
// the continuous-query maintenance pair (incremental maintenance vs.
// re-running every standing query per mutation), the sharded serving
// pair (write-interleaved BatchKNN mix and store build at 1 vs 8
// shards), and the durability trio: journaled update throughput
// (WALIngest) and recovery cold vs from a checkpoint, whose ratio
// (recovery_checkpoint_speedup) is the headline number of the
// durability PR.
//
// The scenario bodies live in internal/benchscen and are shared with
// the `go test -bench` wrappers, so this report and the in-tree
// benchmarks measure the same code.
//
//	go run ./cmd/bench                 # full size, ~1s per benchmark
//	go run ./cmd/bench -quick          # smoke mode on a small database
//	go run ./cmd/bench -o bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"

	"probprune"
	"probprune/internal/benchscen"
)

type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	PR         int                `json:"pr"`
	Go         string             `json:"go"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	DBSize     int                `json:"db_size"`
	Quick      bool               `json:"quick"`
	Benchmarks []benchResult      `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived"`
}

func main() {
	out := flag.String("o", "BENCH_PR5.json", "output file")
	quick := flag.Bool("quick", false, "smoke mode: small database, cheap CI run (numbers not comparable with full runs)")
	flag.Parse()
	dbSize := 1000
	if *quick {
		dbSize = 150
	}

	db := benchscen.MustDB(dbSize)
	rep := report{
		PR:         5,
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		DBSize:     dbSize,
		Quick:      *quick,
		Derived:    map[string]float64{},
	}

	add := func(name string, fn func(b *testing.B, db probprune.Database)) benchResult {
		res := testing.Benchmark(func(b *testing.B) { fn(b, db) })
		br := benchResult{
			Name:        name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if len(res.Extra) > 0 {
			br.Metrics = map[string]float64{}
			for k, v := range res.Extra {
				br.Metrics[k] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, br)
		fmt.Printf("%-24s %12.0f ns/op  %v\n", name, br.NsPerOp, br.Metrics)
		return br
	}

	add("EngineKNN", benchscen.EngineKNN)
	add("StoreWarmKNN", benchscen.StoreWarmKNN)
	add("StoreBatchKNN16", benchscen.StoreBatchKNN16)
	add("IndexBulkLoad", benchscen.IndexBulkLoad)
	maintain := add("CQMaintain", benchscen.CQMaintain)
	requery := add("CQRequery", benchscen.CQRequery)
	sharded1 := add("ShardedBatchKNN1", benchscen.ShardedBatchKNN(1))
	sharded8 := add("ShardedBatchKNN8", benchscen.ShardedBatchKNN(8))
	build1 := add("ShardedBuild1", benchscen.ShardedBuild(1))
	build8 := add("ShardedBuild8", benchscen.ShardedBuild(8))
	add("WALIngest", benchscen.WALIngest)
	cold := add("RecoveryCold", benchscen.RecoveryCold)
	ckpt := add("RecoveryCheckpoint", benchscen.RecoveryCheckpoint)

	if m, r := maintain.Metrics["idca-runs/op"], requery.Metrics["idca-runs/op"]; m > 0 {
		rep.Derived["cq_idca_run_ratio"] = r / m
	}
	if maintain.NsPerOp > 0 {
		rep.Derived["cq_wall_speedup"] = requery.NsPerOp / maintain.NsPerOp
	}
	if sharded8.NsPerOp > 0 {
		rep.Derived["sharded_batchknn_speedup_8x"] = sharded1.NsPerOp / sharded8.NsPerOp
	}
	if build8.NsPerOp > 0 {
		rep.Derived["sharded_build_speedup_8x"] = build1.NsPerOp / build8.NsPerOp
	}
	if ckpt.NsPerOp > 0 {
		rep.Derived["recovery_checkpoint_speedup"] = cold.NsPerOp / ckpt.NsPerOp
	}
	fmt.Printf("derived: %v\n", rep.Derived)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// Command udbquery runs probabilistic similarity queries against a
// dataset written by udbgen — either format: the gob dataset (.udb) or
// a checkpoint snapshot (-format ckpt), sniffed by magic bytes.
//
// Usage:
//
//	udbquery -db synth.udb -query knn  -k 5 -tau 0.5 -at 0.5,0.5
//	udbquery -db synth.udb -query rknn -k 3 -tau 0.25 -target 42
//	udbquery -db synth.udb -query irank -target 42 -ref 7
//	udbquery -db synth.udb -query rank  -at 0.1,0.9 -top 10
//
// The query point (-at x,y) is used as a certain query object; -target
// and -ref select database objects by ID.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/obs"
	"probprune/internal/query"
	"probprune/internal/uncertain"
	"probprune/internal/wal"
	"probprune/internal/workload"
)

func main() {
	var (
		dbPath     = flag.String("db", "", "dataset file written by udbgen (required)")
		queryKind  = flag.String("query", "knn", "query type: knn, rknn, irank, rank")
		k          = flag.Int("k", 5, "k parameter for knn/rknn")
		tau        = flag.Float64("tau", 0.5, "probability threshold for knn/rknn")
		at         = flag.String("at", "", "certain query point, comma-separated coordinates")
		targetID   = flag.Int("target", -1, "target object ID (irank; or query object for rknn)")
		refID      = flag.Int("ref", -1, "reference object ID (irank)")
		top        = flag.Int("top", 10, "number of entries to print for rank queries")
		iterations = flag.Int("iterations", 6, "max refinement iterations")
		trace      = flag.Bool("trace", false, "print the query's trace anatomy (candidates, prune economy, phase timings)")
	)
	flag.Parse()
	if *dbPath == "" {
		fmt.Fprintln(os.Stderr, "udbquery: -db is required")
		flag.Usage()
		os.Exit(2)
	}
	var (
		db  uncertain.Database
		err error
	)
	if wal.IsCheckpointFile(*dbPath) {
		var ck *wal.Checkpoint
		if ck, err = wal.LoadCheckpointFile(*dbPath); err == nil {
			db = ck.Objects
		}
	} else {
		db, err = workload.LoadFile(*dbPath)
	}
	if err != nil {
		fail("loading %s: %v", *dbPath, err)
	}
	engine := query.NewEngine(db, core.Options{MaxIterations: *iterations})

	// With -trace, thread an obs.Trace through the query context and
	// print its anatomy afterwards — the same snapshot the server ships
	// for a TRACE-flagged wire command.
	ctx := context.Background()
	var tr *obs.Trace
	if *trace {
		tr = &obs.Trace{}
		ctx = obs.WithTrace(ctx, tr)
	}

	switch *queryKind {
	case "knn":
		q := queryObject(db, *at, *targetID)
		matches, err := engine.KNNCtx(ctx, q, *k, *tau)
		if err != nil {
			fail("knn: %v", err)
		}
		printMatches(matches, *tau)
	case "rknn":
		q := queryObject(db, *at, *targetID)
		matches, err := engine.RKNNCtx(ctx, q, *k, *tau)
		if err != nil {
			fail("rknn: %v", err)
		}
		printMatches(matches, *tau)
	case "irank":
		target := byID(db, *targetID)
		ref := byID(db, *refID)
		rd := engine.InverseRank(target, ref)
		fmt.Printf("inverse ranking of object %d w.r.t. object %d:\n", target.ID, ref.ID)
		for i := rd.MinRank; i < rd.MinRank+len(rd.Ranks); i++ {
			iv := rd.Bound(i)
			if iv.UB == 0 {
				continue
			}
			fmt.Printf("  P(rank = %3d) in [%.4f, %.4f]\n", i, iv.LB, iv.UB)
		}
	case "rank":
		q := queryObject(db, *at, *targetID)
		ranked := engine.RankByExpectedRank(q)
		if *top < len(ranked) {
			ranked = ranked[:*top]
		}
		fmt.Println("objects by expected rank:")
		for i, r := range ranked {
			fmt.Printf("  %2d. object %4d  E[rank] in [%.3f, %.3f]\n",
				i+1, r.Object.ID, r.ExpectedRankLB, r.ExpectedRankUB)
		}
	default:
		fail("unknown -query %q", *queryKind)
	}
	if tr != nil {
		fmt.Printf("trace: %v\n", tr.Snapshot())
	}
}

func queryObject(db uncertain.Database, at string, targetID int) *uncertain.Object {
	if at != "" {
		parts := strings.Split(at, ",")
		p := make(geom.Point, len(parts))
		for i, s := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fail("parsing -at: %v", err)
			}
			p[i] = v
		}
		return uncertain.PointObject(-1, p)
	}
	if targetID >= 0 {
		return byID(db, targetID)
	}
	fail("provide -at or -target to identify the query object")
	return nil
}

func byID(db uncertain.Database, id int) *uncertain.Object {
	for _, o := range db {
		if o.ID == id {
			return o
		}
	}
	fail("object %d not found", id)
	return nil
}

func printMatches(matches []query.Match, tau float64) {
	results := matches[:0:0]
	for _, m := range matches {
		if m.IsResult || !m.Decided {
			results = append(results, m)
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Prob.LB > results[j].Prob.LB })
	fmt.Printf("%d qualifying objects (threshold %.2f):\n", len(results), tau)
	for _, m := range results {
		state := "result"
		if !m.Decided {
			state = "undecided"
		}
		fmt.Printf("  object %4d  P in [%.4f, %.4f]  %s (%d iterations)\n",
			m.Object.ID, m.Prob.LB, m.Prob.UB, state, m.Iterations)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "udbquery: "+format+"\n", args...)
	os.Exit(1)
}

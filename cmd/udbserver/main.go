// Command udbserver serves a live uncertain-object store over TCP,
// speaking the pipelined RESP-style protocol documented in
// docs/PROTOCOL.md: one-shot probabilistic queries (KNN, RKNN, TOPKNN,
// INVRANK, BATCH), ingest (INSERT/UPDATE/DELETE) and durable
// continuous-query push channels (SUBSCRIBE/RESUME).
//
// Usage:
//
//	udbserver -addr :7654                          # volatile in-memory store
//	udbserver -addr :7654 -synthetic 10000         # preloaded synthetic data
//	udbserver -addr :7654 -dir /var/lib/udb        # durable store (WAL + checkpoints)
//	udbserver -addr :7654 -dir /var/lib/udb -shards 8 -sync background
//
// With -dir the store journals every commit and recovers
// bit-identically on restart; the subscription cursor lives at
// dir/cursor, so named subscriptions survive restarts too (RESUME
// returns a coalesced delta against the durable cursor). Without -dir
// everything is in memory and named subscriptions are refused.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// subscription sessions drain their retained tails, every client gets
// a terminal `>... end closed` push, and the store (if durable) is
// checkpointed on close.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"probprune/internal/core"
	"probprune/internal/query"
	"probprune/internal/server"
	"probprune/internal/uncertain"
	"probprune/internal/wal"
	"probprune/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", ":7654", "TCP listen address")
		dir        = flag.String("dir", "", "durable store directory (empty: volatile in-memory store)")
		shards     = flag.Int("shards", 1, "shard count (>1 selects a ShardedStore)")
		sync       = flag.String("sync", "os", "fsync policy for durable commits: os, always, background")
		ckptEvery  = flag.Int("checkpoint-every", 4096, "auto-checkpoint after this many journal records (durable only)")
		synthetic  = flag.Int("synthetic", 0, "preload N synthetic objects (volatile or fresh durable store)")
		dataset    = flag.String("db", "", "preload a udbgen dataset file (volatile or fresh durable store)")
		iterations = flag.Int("iterations", 3, "max refinement iterations per query")
		retain     = flag.Int("retain", 0, "per-subscription retained-event ring (resume window); 0: default 8192")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics (JSON or ?format=prom), /events and /debug/pprof on this address (empty: off)")
		logLevel   = flag.String("log-level", "info", "structured log level: debug, info, warn, error, off")
		slowQuery  = flag.Duration("slow-query", 0, "flight-recorder slow-query capture threshold (0: off)")
		events     = flag.Int("events", 0, "flight-recorder ring capacity; 0: default 1024")
	)
	flag.Parse()
	if err := run(*addr, *dir, *shards, *sync, *ckptEvery, *synthetic, *dataset, *iterations, *retain, *debugAddr, *logLevel, *slowQuery, *events); err != nil {
		fmt.Fprintln(os.Stderr, "udbserver:", err)
		os.Exit(1)
	}
}

// newLogger builds the server's structured logger from -log-level.
func newLogger(level string) (*slog.Logger, error) {
	if level == "off" {
		return slog.New(slog.DiscardHandler), nil
	}
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn, error or off)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

func run(addr, dir string, shards int, sync string, ckptEvery, synthetic int, dataset string, iterations, retain int, debugAddr, logLevel string, slowQuery time.Duration, events int) error {
	logger, err := newLogger(logLevel)
	if err != nil {
		return err
	}
	opts := core.Options{MaxIterations: iterations}
	db, err := seedDatabase(synthetic, dataset)
	if err != nil {
		return err
	}

	var (
		backend server.Backend
		closeFn func() error
		cursor  string
	)
	switch {
	case dir == "" && shards > 1:
		s, err := query.NewShardedStore(db, query.ShardedOptions{Shards: shards}, opts)
		if err != nil {
			return err
		}
		backend, closeFn = s, s.Close
	case dir == "":
		s, err := query.NewStore(db, opts)
		if err != nil {
			return err
		}
		backend, closeFn = s, s.Close
	default:
		popts := query.PersistOptions{Dir: dir, CheckpointEvery: ckptEvery}
		switch sync {
		case "os":
			popts.Sync = wal.SyncOS
		case "always":
			popts.Sync = wal.SyncAlways
		case "background":
			popts.Sync = wal.SyncBackground
		default:
			return fmt.Errorf("unknown -sync policy %q (want os, always or background)", sync)
		}
		cursor = filepath.Join(dir, "cursor")
		fresh := !journalExists(dir)
		if shards > 1 {
			var s *query.ShardedStore
			if fresh {
				s, err = query.BootstrapShardedStore(db, popts, query.ShardedOptions{Shards: shards}, opts)
			} else {
				s, err = query.OpenShardedStore(popts, query.ShardedOptions{Shards: shards}, opts)
			}
			if err != nil {
				return err
			}
			backend, closeFn = s, s.Close
		} else {
			var s *query.Store
			if fresh {
				s, err = query.BootstrapStore(db, popts, opts)
			} else {
				s, err = query.OpenStore(popts, opts)
			}
			if err != nil {
				return err
			}
			backend, closeFn = s, s.Close
		}
	}

	srv := server.New(backend, server.Options{
		CursorPath:   cursor,
		Retain:       retain,
		SlowQuery:    slowQuery,
		RecorderSize: events,
		Logf:         log.Printf,
		Logger:       logger,
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("udbserver: listening on %s (%d objects, shards=%d, durable=%v)",
		ln.Addr(), backend.Len(), shards, dir != "")

	var debugSrv *http.Server
	if debugAddr != "" {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		debugSrv = &http.Server{Handler: srv.DebugHandler()}
		log.Printf("udbserver: debug endpoint on http://%s/metrics (pprof under /debug/pprof/)", dln.Addr())
		go func() {
			if err := debugSrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				log.Printf("udbserver: debug server: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case s := <-sig:
		log.Printf("udbserver: %v — draining subscriptions and shutting down", s)
	case err := <-serveErr:
		return err
	}
	if debugSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		debugSrv.Shutdown(ctx)
		cancel()
	}
	if err := srv.Close(); err != nil {
		return err
	}
	return closeFn()
}

// seedDatabase builds the initial database from -synthetic / -db (both
// empty: an empty store, populated over the wire).
func seedDatabase(synthetic int, dataset string) (uncertain.Database, error) {
	switch {
	case synthetic > 0 && dataset != "":
		return nil, fmt.Errorf("-synthetic and -db are mutually exclusive")
	case synthetic > 0:
		return workload.Synthetic(workload.SyntheticConfig{N: synthetic, Samples: 8, MaxExtent: 0.02, Seed: 99})
	case dataset != "":
		return workload.LoadFile(dataset)
	default:
		return uncertain.Database{}, nil
	}
}

// journalExists reports whether dir already holds a store (single
// journal segments or a sharded manifest).
func journalExists(dir string) bool {
	for _, name := range []string{"MANIFEST", "shard-0"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return true
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	return len(ents) > 0
}

// Command experiments regenerates the paper's evaluation exhibits
// (Figures 5-9) and the repository's ablation studies, printing each as
// a text table.
//
// Usage:
//
//	experiments [-fig all|5|6a|6b|7a|7b|8|9a|9b|ablations] [-paper]
//	            [-n N] [-samples S] [-queries Q] [-iterations I] [-seed SEED]
//
// Without -paper a scaled-down configuration is used (see EXPERIMENTS.md
// for the scaling rationale); -paper restores the paper's full
// parameters (expect very long runtimes for the MC-involved figures).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"probprune/internal/exp"
)

func main() {
	var (
		figFlag    = flag.String("fig", "all", "which exhibit to run: all, 5, 6a, 6b, 7a, 7b, 8, 9a, 9b, ablations")
		paper      = flag.Bool("paper", false, "use the paper's full-scale parameters")
		n          = flag.Int("n", 0, "override synthetic database size")
		samples    = flag.Int("samples", 0, "override per-object sample count")
		queries    = flag.Int("queries", 0, "override number of queries per data point")
		iterations = flag.Int("iterations", 0, "override refinement iteration count")
		seed       = flag.Int64("seed", 0, "override random seed")
		chart      = flag.Bool("chart", false, "render ASCII charts in addition to the tables")
	)
	flag.Parse()
	renderChart = *chart

	cfg := exp.Default()
	if *paper {
		cfg = exp.PaperScale()
	}
	if *n > 0 {
		cfg.SyntheticN = *n
	}
	if *samples > 0 {
		cfg.Samples = *samples
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *iterations > 0 {
		cfg.MaxIterations = *iterations
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	type runner struct {
		key string
		run func(exp.Config) (*exp.Figure, error)
	}
	runners := []runner{
		{"5", exp.Fig5},
		{"6a", exp.Fig6a},
		{"6b", exp.Fig6b},
		{"7a", func(c exp.Config) (*exp.Figure, error) { return exp.Fig7(c, "synthetic") }},
		{"7b", func(c exp.Config) (*exp.Figure, error) { return exp.Fig7(c, "iceberg") }},
		{"8", exp.Fig8},
		{"9a", exp.Fig9a},
		{"9b", exp.Fig9b},
		{"ablations", nil}, // expanded below
	}
	ablations := []runner{
		{"ablation-ugf", exp.AblationUGF},
		{"ablation-truncation", exp.AblationTruncation},
		{"ablation-index", exp.AblationIndexFilter},
		{"ablation-adaptive", exp.AblationAdaptive},
		{"ablation-dimensionality", exp.AblationDimensionality},
	}

	selected := map[string]bool{}
	switch *figFlag {
	case "all":
		for _, r := range runners {
			selected[r.key] = true
		}
	default:
		selected[*figFlag] = true
	}

	ran := false
	for _, r := range runners {
		if !selected[r.key] {
			continue
		}
		if r.key == "ablations" {
			for _, a := range ablations {
				runOne(a.key, a.run, cfg)
			}
			ran = true
			continue
		}
		runOne(r.key, r.run, cfg)
		ran = true
	}
	// Individual ablations are addressable by their own key too.
	for _, a := range ablations {
		if selected[a.key] {
			runOne(a.key, a.run, cfg)
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown -fig %q\n", *figFlag)
		flag.Usage()
		os.Exit(2)
	}
}

// renderChart is set from the -chart flag.
var renderChart bool

func runOne(key string, run func(exp.Config) (*exp.Figure, error), cfg exp.Config) {
	start := time.Now()
	fig, err := run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", key, err)
		os.Exit(1)
	}
	fmt.Println(fig.String())
	if renderChart {
		fmt.Println(fig.Chart(64, 16))
	}
	fmt.Printf("(%s completed in %v)\n\n", fig.ID, time.Since(start).Round(time.Millisecond))
}

package probprune_test

import (
	"context"
	"reflect"
	"testing"

	"probprune"
)

// TestStoreFacade drives the live store end to end through the public
// surface: ingest, snapshot-isolated queries, batch execution and the
// bit-identical guarantee against a fresh Engine.
func TestStoreFacade(t *testing.T) {
	db, err := probprune.Synthetic(probprune.SyntheticConfig{
		N: 60, Samples: 8, MaxExtent: 0.05, Seed: 71,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := probprune.Options{MaxIterations: 4}
	store, err := probprune.NewStore(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	q := probprune.PointObject(-1, probprune.Point{0.5, 0.5})

	// Live ingest: replace one object, remove one, add one.
	moved, err := probprune.NewObject(0, []probprune.Point{{0.5, 0.5}, {0.51, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Update(moved); err != nil {
		t.Fatal(err)
	}
	if !store.Delete(1) {
		t.Fatal("delete of object 1 failed")
	}
	added, err := probprune.NewObject(1000, []probprune.Point{{0.49, 0.5}, {0.5, 0.49}})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Insert(added); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 60 {
		t.Fatalf("Len = %d, want 60", store.Len())
	}

	// Snapshot queries must be bit-identical to a fresh engine over the
	// same state.
	snap := store.Snapshot()
	fresh := probprune.NewEngine(snap.DB(), opts)
	got := store.KNN(q, 5, 0.5)
	want := fresh.KNN(q, 5, 0.5)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("store KNN differs from fresh engine on the same state")
	}
	if len(got) != 60 {
		t.Fatalf("KNN returned %d matches, want 60", len(got))
	}
	resHit := false
	for _, m := range got {
		if m.IsResult && m.Object.ID == 0 {
			resHit = true
		}
	}
	if !resHit {
		t.Fatal("updated object 0 (moved onto q) not a kNN result")
	}

	// Batch execution on one snapshot.
	reqs := []probprune.KNNRequest{
		{Q: q, K: 5, Tau: 0.5},
		{Q: probprune.PointObject(-2, probprune.Point{0.2, 0.8}), K: 3, Tau: 0.3},
	}
	batch, err := store.BatchKNN(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 {
		t.Fatalf("batch returned %d results", len(batch))
	}
	if !reflect.DeepEqual(batch[0], want) {
		t.Fatal("batch result differs from single-query result")
	}

	// Mixed batch through the generic entry point.
	var topk []probprune.Match
	store.Batch(func(e *probprune.Engine) {
		topk = e.TopKNN(q, 5, 3)
	})
	if len(topk) != 3 {
		t.Fatalf("TopKNN in Batch returned %d matches", len(topk))
	}

	// A held snapshot survives later mutations untouched.
	if !store.Delete(1000) {
		t.Fatal("delete of object 1000 failed")
	}
	if snap.Len() != 60 || store.Len() != 59 {
		t.Fatalf("snapshot/store lengths: %d/%d", snap.Len(), store.Len())
	}
	again, err := snap.Engine().KNNCtx(context.Background(), q, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatal("held snapshot changed answers after a mutation")
	}
}

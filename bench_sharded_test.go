// Benchmarks for the sharded serving path, wrapping the shared
// internal/benchscen scenario bodies (cmd/bench writes the same
// measurements to the committed BENCH_PR4.json): the write-interleaved
// BatchKNN serving mix at 1 vs 8 shards — identical query work, but the
// per-commit copy-on-write detach clones O(n/N) instead of O(n) — and
// the sharded store build.
package probprune_test

import (
	"testing"

	"probprune/internal/benchscen"
)

func BenchmarkShardedBatchKNN(b *testing.B) {
	db := benchscen.MustDB(1000)
	b.Run("shards=1", func(b *testing.B) { benchscen.ShardedBatchKNN(1)(b, db) })
	b.Run("shards=8", func(b *testing.B) { benchscen.ShardedBatchKNN(8)(b, db) })
}

func BenchmarkShardedBuild(b *testing.B) {
	db := benchscen.MustDB(1000)
	b.Run("shards=1", func(b *testing.B) { benchscen.ShardedBuild(1)(b, db) })
	b.Run("shards=8", func(b *testing.B) { benchscen.ShardedBuild(8)(b, db) })
}

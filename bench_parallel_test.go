// Benchmarks for the parallel query executor and the shared reference
// decomposition: BenchmarkKNNParallel measures the end-to-end threshold
// kNN query at 1, 4 and GOMAXPROCS workers on the synthetic N=1000
// workload, and BenchmarkRefDecomp isolates the shared-vs-per-candidate
// decomposition saving at the core layer. Together with bench_test.go
// they make the executor speedup visible in the bench trajectory.
package probprune_test

import (
	"fmt"
	"runtime"
	"testing"

	"probprune"
)

func knnBenchWorkload(b *testing.B) (probprune.Database, *probprune.Object) {
	b.Helper()
	// MaxExtent 0.15 leaves a few dozen candidates alive after
	// preselection — enough per-candidate IDCA work for worker scaling
	// to dominate the fixed per-query cost.
	db, err := probprune.Synthetic(probprune.SyntheticConfig{N: 1000, Samples: 64, MaxExtent: 0.15, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	return db, probprune.PointObject(-1, probprune.Point{0.5, 0.5})
}

func BenchmarkKNNParallel(b *testing.B) {
	db, q := knnBenchWorkload(b)
	workers := []int{1, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 {
		workers = append(workers, g)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng := probprune.NewEngine(db, probprune.Options{MaxIterations: 3, Parallelism: w})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.KNN(q, 5, 0.5)
			}
		})
	}
}

func BenchmarkRKNNParallel(b *testing.B) {
	db, q := knnBenchWorkload(b)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng := probprune.NewEngine(db, probprune.Options{MaxIterations: 3, Parallelism: w})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.RKNN(q, 5, 0.5)
			}
		})
	}
}

// BenchmarkRefDecomp compares many IDCA runs against one reference with
// per-run private decompositions (the pre-executor behavior) and with a
// query-wide DecompCache sharing every decomposition — reference and
// influence objects alike — across runs, the saving the query executor
// banks for every multi-candidate query.
func BenchmarkRefDecomp(b *testing.B) {
	db, err := probprune.Synthetic(probprune.SyntheticConfig{N: 1000, Samples: 64, MaxExtent: 0.05, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	q := db[0]
	cands := db[1:101]
	opts := probprune.Options{MaxIterations: 3, KMax: 5}
	b.Run("per-candidate-decomp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, c := range cands {
				probprune.Run(db, c, q, opts)
			}
		}
	})
	b.Run("shared-decomp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			shared := opts
			shared.SharedDecomps = probprune.NewDecompCache(0)
			for _, c := range cands {
				probprune.Run(db, c, q, shared)
			}
		}
	})
}

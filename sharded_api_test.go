package probprune_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"probprune"
)

// A ShardedStore partitions the database across independent shards and
// answers every query by scatter-gather with canonical bound merging —
// bit-identical to an unsharded Store over the same state.
func ExampleNewShardedStore() {
	db := probprune.Database{
		probprune.PointObject(1, probprune.Point{1, 0}),
		probprune.PointObject(2, probprune.Point{2, 0}),
		probprune.PointObject(3, probprune.Point{3, 0}),
		probprune.PointObject(4, probprune.Point{8, 8}),
	}
	sharded, _ := probprune.NewShardedStore(db, probprune.ShardedOptions{Shards: 2}, probprune.Options{})
	store, _ := probprune.NewStore(db, probprune.Options{})

	q := probprune.PointObject(-1, probprune.Point{0, 0})
	for _, m := range sharded.KNN(q, 2, 0.5) {
		if m.IsResult {
			fmt.Println("result:", m.Object.ID)
		}
	}
	fmt.Println("bit-identical to Store:", reflect.DeepEqual(sharded.KNN(q, 2, 0.5), store.KNN(q, 2, 0.5)))
	// Output:
	// result: 1
	// result: 2
	// bit-identical to Store: true
}

// Rebalance re-homes objects whose spatial stripe drifted under
// updates, online and without changing any query result.
func ExampleShardedStore_Rebalance() {
	db := probprune.Database{
		probprune.PointObject(1, probprune.Point{1, 0}),
		probprune.PointObject(2, probprune.Point{2, 0}),
		probprune.PointObject(3, probprune.Point{8, 0}),
		probprune.PointObject(4, probprune.Point{9, 0}),
	}
	s, _ := probprune.NewShardedStore(db,
		probprune.ShardedOptions{Shards: 2, Partition: probprune.StripeShards(0, 0, 10)},
		probprune.Options{})
	fmt.Println("sizes:", s.ShardSizes())

	// Updates drift two objects into the first stripe; their home shard
	// stays put until a rebalance migrates them.
	s.Update(probprune.PointObject(3, probprune.Point{1.5, 0}))
	s.Update(probprune.PointObject(4, probprune.Point{2.5, 0}))
	fmt.Println("sizes after drift:", s.ShardSizes())
	fmt.Println("moved:", s.Rebalance())
	fmt.Println("sizes after rebalance:", s.ShardSizes())
	// Output:
	// sizes: [2 2]
	// sizes after drift: [2 2]
	// moved: 2
	// sizes after rebalance: [4 0]
}

// TestShardedStoreFacade drives the sharded serving path end to end
// through the public surface: live ingest, scatter-gather queries,
// batches, the merged Watch stream with its version vector, and a
// Monitor with a standing subscription over the sharded source.
func TestShardedStoreFacade(t *testing.T) {
	db, err := probprune.Synthetic(probprune.SyntheticConfig{N: 60, Samples: 8, MaxExtent: 0.03, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	opts := probprune.Options{MaxIterations: 3}
	sharded, err := probprune.NewShardedStore(db, probprune.ShardedOptions{Shards: 3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	store, err := probprune.NewStore(db, opts)
	if err != nil {
		t.Fatal(err)
	}

	var changes []probprune.Change
	snap, stop := sharded.Watch(func(ch probprune.Change) { changes = append(changes, ch) })
	defer stop()
	if snap.Version() != sharded.Version() {
		t.Fatalf("watch snapshot at version %d, store at %d", snap.Version(), sharded.Version())
	}

	monitor := probprune.NewMonitor(sharded, probprune.MonitorOptions{Buffer: 4096})
	defer monitor.Close()
	q := probprune.PointObject(-1, probprune.Point{0.5, 0.5})
	sub, err := monitor.SubscribeKNN(q, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}

	// Mirror a small mutation burst into both backends.
	for i := 0; i < 5; i++ {
		o := probprune.PointObject(1000+i, probprune.Point{0.45 + float64(i)*0.02, 0.5})
		if err := sharded.Insert(o); err != nil {
			t.Fatal(err)
		}
		if err := store.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if !sharded.Delete(db[0].ID) || !store.Delete(db[0].ID) {
		t.Fatal("delete failed")
	}
	if len(changes) != 6 {
		t.Fatalf("watch delivered %d changes, want 6", len(changes))
	}
	for i, ch := range changes {
		ss, ok := ch.Snap.(*probprune.ShardedSnapshot)
		if !ok {
			t.Fatalf("change %d snapshot is %T, want *ShardedSnapshot", i, ch.Snap)
		}
		if got := ss.VersionVector(); len(got) != 3 {
			t.Fatalf("change %d version vector has %d entries", i, len(got))
		}
	}

	// Scatter-gather results stay bit-identical to the unsharded store.
	if want, got := store.KNN(q, 3, 0.3), sharded.KNN(q, 3, 0.3); !reflect.DeepEqual(want, got) {
		t.Fatal("sharded KNN diverges from Store after mutations")
	}
	reqs := []probprune.KNNRequest{{Q: q, K: 3, Tau: 0.3}, {Q: db[5], K: 2, Tau: 0.5}}
	want, err := store.BatchKNN(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.BatchKNN(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("sharded BatchKNN diverges from Store")
	}

	// The monitor consumed the merged stream through the current version
	// and exposes the per-shard cursor.
	if err := monitor.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if vv := monitor.VersionVector(); len(vv) != 3 {
		t.Fatalf("monitor version vector has %d entries, want 3", len(vv))
	}
	drained := 0
	for {
		select {
		case <-sub.Events():
			drained++
			continue
		default:
		}
		break
	}
	if drained == 0 {
		t.Fatal("standing subscription over the sharded source delivered no events")
	}
}

//go:build !race

// Hard allocation ceilings for the hot query paths, enforced in plain
// test runs and in CI (the race detector instruments allocations, so
// the ceilings only hold — and only run — without -race). The numbers
// bound the regression budget for the flat-node R-tree + per-query
// arena work: a kNN query at db=1000 used to cost ~7,800 allocations;
// the ceilings pin it below 1,000 cold and 900 warm, with measured
// steady state several times lower still.

package probprune_test

import (
	"time"

	"probprune/internal/obs"
	"testing"

	"probprune"
	"probprune/internal/benchscen"
)

const allocDBSize = 1000

// TestEngineKNNAllocCeiling: a threshold kNN query on a frozen engine
// (persistent pinned decomposition cache, pooled run arenas) stays
// under 1,000 allocations.
func TestEngineKNNAllocCeiling(t *testing.T) {
	db := benchscen.MustDB(allocDBSize)
	e := probprune.NewEngine(db, probprune.Options{MaxIterations: 3})
	q := probprune.PointObject(-1, probprune.Point{0.5, 0.5})
	e.KNN(q, benchscen.K, benchscen.Tau) // warm pools and decomposition cache
	allocs := testing.AllocsPerRun(5, func() {
		e.KNN(q, benchscen.K, benchscen.Tau)
	})
	if allocs > 1000 {
		t.Fatalf("EngineKNN allocated %.0f times per query, ceiling 1000", allocs)
	}
	t.Logf("EngineKNN: %.0f allocs per query (ceiling 1000)", allocs)
}

// TestStoreWarmKNNAllocCeiling: the same query served warm from a live
// Store snapshot stays under 900 allocations.
func TestStoreWarmKNNAllocCeiling(t *testing.T) {
	db := benchscen.MustDB(allocDBSize)
	s, err := probprune.NewStore(db, probprune.Options{MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := probprune.PointObject(-1, probprune.Point{0.5, 0.5})
	s.KNN(q, benchscen.K, benchscen.Tau) // warm the persistent cache
	allocs := testing.AllocsPerRun(5, func() {
		s.KNN(q, benchscen.K, benchscen.Tau)
	})
	if allocs > 900 {
		t.Fatalf("StoreWarmKNN allocated %.0f times per query, ceiling 900", allocs)
	}
	t.Logf("StoreWarmKNN: %.0f allocs per query (ceiling 900)", allocs)
}

// TestStoreWarmKNNAllocCeilingRecorderArmed: the PR 10 observability
// work must not erode the audited hot path. The same warm-store query
// with the flight recorder installed and a slow-query threshold armed
// (the production shape of `udbserver -events -slow-query`) holds the
// same 900-allocation ceiling: the trace-off path records nothing and
// allocates nothing extra.
func TestStoreWarmKNNAllocCeilingRecorderArmed(t *testing.T) {
	db := benchscen.MustDB(allocDBSize)
	s, err := probprune.NewStore(db, probprune.Options{MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.SetRecorder(obs.NewRecorder(1024))
	s.SetSlowQueryThreshold(time.Hour) // armed, never fires here
	q := probprune.PointObject(-1, probprune.Point{0.5, 0.5})
	s.KNN(q, benchscen.K, benchscen.Tau) // warm the persistent cache
	allocs := testing.AllocsPerRun(5, func() {
		s.KNN(q, benchscen.K, benchscen.Tau)
	})
	if allocs > 900 {
		t.Fatalf("StoreWarmKNN with recorder armed allocated %.0f times per query, ceiling 900", allocs)
	}
	t.Logf("StoreWarmKNN recorder armed: %.0f allocs per query (ceiling 900)", allocs)
}

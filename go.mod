module probprune

go 1.24

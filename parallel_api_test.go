package probprune_test

import (
	"context"
	"reflect"
	"testing"

	"probprune"
)

// TestRootParallelAPI exercises the re-exported parallel/context entry
// points end to end: context variants return what the plain wrappers
// return, worker count does not change results, and a shared RefDecomp
// plugged into a direct core run reproduces the private-decomposition
// bounds.
func TestRootParallelAPI(t *testing.T) {
	db, err := probprune.Synthetic(probprune.SyntheticConfig{N: 60, Samples: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	q := probprune.PointObject(-1, probprune.Point{0.5, 0.5})

	seq := probprune.NewEngine(db, probprune.Options{MaxIterations: 4, Parallelism: 1})
	par := probprune.NewEngine(db, probprune.Options{MaxIterations: 4, Parallelism: 4})
	a := seq.KNN(q, 5, 0.5)
	b, err := par.KNNCtx(context.Background(), q, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("KNNCtx on 4 workers differs from sequential KNN")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if m, err := par.KNNCtx(ctx, q, 5, 0.5); err == nil || m != nil {
		t.Fatalf("cancelled KNNCtx returned matches=%v err=%v", m, err)
	}

	ref := probprune.NewRefDecomp(q, 0)
	private := probprune.Run(db, db[0], q, probprune.Options{MaxIterations: 4})
	shared := probprune.Run(db, db[0], q, probprune.Options{MaxIterations: 4, SharedReference: ref})
	if !reflect.DeepEqual(private.Bounds, shared.Bounds) {
		t.Fatal("shared-decomposition run differs from private run")
	}
}

// Package probprune is a Go implementation of the probabilistic pruning
// framework of Bernecker, Emrich, Kriegel, Mamoulis, Renz and Züfle,
// "A Novel Probabilistic Pruning Approach to Speed Up Similarity
// Queries in Uncertain Databases" (ICDE 2011).
//
// The library answers probabilistic similarity queries — threshold
// k-nearest-neighbor, threshold reverse kNN, probabilistic inverse
// ranking and expected-rank ranking — over databases of uncertain
// objects, i.e. objects whose position is a bounded random variable.
// Instead of integrating probability densities, it computes
// conservative and progressive bounds on the probabilistic domination
// count of an object (how many database objects are closer to an
// uncertain reference than it is) and refines those bounds iteratively
// until the query predicate is decided. The bounds are correct under
// possible-world semantics at every step.
//
// The three ingredients, each usable on its own:
//
//   - a tight geometric domination criterion on rectangular uncertainty
//     regions (Dominates), stronger than min/max distance pruning;
//   - uncertain generating functions that turn per-candidate
//     probability intervals into domination count bounds;
//   - the IDCA refinement loop (Run/RunIndexed) combining both with
//     kd-tree object decomposition.
//
// # Quick start
//
//	db, _ := probprune.Synthetic(probprune.SyntheticConfig{N: 1000, Samples: 100, Seed: 1})
//	engine := probprune.NewEngine(db, probprune.Options{MaxIterations: 6})
//	q := probprune.PointObject(-1, probprune.Point{0.5, 0.5})
//	for _, m := range engine.KNN(q, 5, 0.5) {
//	    if m.IsResult {
//	        fmt.Println(m.Object.ID, m.Prob)
//	    }
//	}
//
// # Parallel execution and cancellation
//
// Engine queries evaluate their candidates concurrently on
// Options.Parallelism worker goroutines (the zero value selects
// GOMAXPROCS; set 1 to force sequential evaluation). All candidate
// runs share one decomposition cache (DecompCache), built once per
// query, so the query object and every influence object are kd-split
// at most once per query instead of once per candidate run — and
// results stay identical, bit for bit, to the sequential path
// regardless of worker count. Every query has a context-accepting
// variant for cancellation and deadlines:
//
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//	matches, err := engine.KNNCtx(ctx, q, 5, 0.5)   // also RKNNCtx,
//	// RankByExpectedRankCtx, TopKNNCtx, UKRanksCtx
//
// The plain methods (KNN, RKNN, ...) are thin wrappers over the context
// variants with context.Background(). Callers driving core.Run directly
// can share decomposition work themselves: NewRefDecomp with
// Options.SharedTarget/SharedReference shares one operand across runs,
// NewDecompCache with Options.SharedDecomps shares every decomposition
// (operands and influence objects) across the runs handed the cache.
//
// # Live stores and batch queries
//
// Engine evaluates a frozen Database. Store is the serving-path
// counterpart: a concurrent, mutable store with Insert/Delete/Update
// live ingest, copy-on-write snapshot isolation (a query never observes
// a half-applied update) and a persistent decomposition cache that
// survives across queries and is invalidated per object on update.
// BatchKNN pours many queries into one worker pool over one snapshot:
//
//	store, _ := probprune.NewStore(db, probprune.Options{})
//	store.Insert(obj)                        // live ingest
//	matches := store.KNN(q, 5, 0.5)          // snapshot-isolated
//	results, _ := store.BatchKNN(ctx, reqs)  // amortized batch
//
// Store results are bit-identical to a fresh Engine built from the same
// state, at any Parallelism.
//
// # Sharding
//
// ShardedStore partitions a live store across N independent shards
// behind a scatter-gather router. The paper's filter bounds merge
// exactly across partitions (dominator counts sum, influence sets
// concatenate in canonical order), so sharded results are bit-identical
// to an unsharded Store at any shard count, while each mutation pays
// only its home shard's copy-on-write detach and Move/Rebalance migrate
// objects online without disturbing queries or change streams:
//
//	sharded, _ := probprune.NewShardedStore(db,
//	    probprune.ShardedOptions{Shards: 8}, probprune.Options{})
//	sharded.Insert(obj)                   // routed to its home shard
//	matches := sharded.KNN(q, 5, 0.5)     // scatter-gather, bit-identical
//	moved := sharded.Rebalance()          // online, result-invariant
//
// # Durability
//
// Stores opened with BootstrapStore/OpenStore (and their sharded
// twins) journal every commit to a segmented, CRC-framed write-ahead
// log before it applies, and compact the log into checkpoint snapshots
// persisting the database and the decomposition cache. Reopening after
// a crash recovers bit-identically, stopping cleanly at the last
// intact record:
//
//	popts := probprune.PersistOptions{Dir: "data/db", CheckpointEvery: 4096}
//	store, _ := probprune.BootstrapStore(db, popts, probprune.Options{})
//	store.Insert(obj)                     // journaled, then applied
//	store.Close()
//	store, _ = probprune.OpenStore(popts, probprune.Options{})
//
// # Continuous queries
//
// A Monitor turns one-shot queries into standing subscriptions: clients
// register KNN/RkNN predicates and receive an ordered event stream
// (ObjectEntered, ObjectLeft, BoundsChanged, each tagged with the store
// version it is valid at) as mutations commit. Maintenance is
// incremental and pruning-aware — subscriptions wake only for mutations
// inside their influence region, and only candidates whose influence
// set could contain the mutated object re-run IDCA — yet the cumulative
// stream stays bit-identical to re-running the query at every version:
//
//	monitor := probprune.NewMonitor(store, probprune.MonitorOptions{})
//	sub, _ := monitor.SubscribeKNN(q, 5, 0.5)
//	go func() {
//	    for ev := range sub.Events() {
//	        fmt.Println(ev.Kind, ev.Object.ID, ev.Match.Prob)
//	    }
//	}()
//	store.Update(obj) // affected subscriptions stream events
//
// The examples/ directory contains runnable end-to-end scenarios and
// cmd/experiments regenerates the paper's evaluation figures.
package probprune

import (
	"math/rand"

	"probprune/internal/core"
	"probprune/internal/cq"
	"probprune/internal/geom"
	"probprune/internal/gf"
	"probprune/internal/mc"
	"probprune/internal/query"
	"probprune/internal/rtree"
	"probprune/internal/uncertain"
	"probprune/internal/wal"
	"probprune/internal/workload"
)

// Geometry primitives.
type (
	// Point is a location in d-dimensional space.
	Point = geom.Point
	// Rect is an axis-aligned uncertainty region.
	Rect = geom.Rect
	// Norm is an Lp norm; the zero value is invalid, use L1/L2/LInf.
	Norm = geom.Norm
	// Criterion selects the complete-domination decision procedure.
	Criterion = geom.Criterion
)

// The standard norms and criteria.
var (
	L1   = geom.L1
	L2   = geom.L2
	LInf = geom.LInf
)

// Domination criteria: Optimal is the paper's tight criterion, MinMax
// the classical baseline.
const (
	Optimal = geom.Optimal
	MinMax  = geom.MinMax
)

// Uncertain data model.
type (
	// Object is an uncertain database object (discrete sample model).
	Object = uncertain.Object
	// Database is an ordered collection of uncertain objects.
	Database = uncertain.Database
	// PDF is a bounded continuous density usable with Realize.
	PDF = uncertain.PDF
	// UniformBox is the uniform density over a rectangle.
	UniformBox = uncertain.UniformBox
	// TruncatedGaussian is a Gaussian truncated to a region.
	TruncatedGaussian = uncertain.TruncatedGaussian
	// Mixture is a finite mixture of densities.
	Mixture = uncertain.Mixture
	// PointMass is the degenerate density of a certain object.
	PointMass = uncertain.PointMass
)

// NewObject builds an uncertain object from equally likely alternative
// positions.
func NewObject(id int, samples []Point) (*Object, error) {
	return uncertain.NewObject(id, samples)
}

// NewWeightedObject builds an uncertain object from weighted
// alternative positions.
func NewWeightedObject(id int, samples []Point, weights []float64) (*Object, error) {
	return uncertain.NewWeightedObject(id, samples, weights)
}

// PointObject builds a certain (degenerate) object at p.
func PointObject(id int, p Point) *Object {
	return uncertain.PointObject(id, p)
}

// Realize materializes a continuous density into an n-sample object.
func Realize(id int, pdf PDF, n int, rng *rand.Rand) (*Object, error) {
	return uncertain.Realize(id, pdf, n, rng)
}

// Domination and bounds.
type (
	// Interval is a [lower, upper] probability bound pair.
	Interval = gf.Interval
	// Options configures IDCA runs; see the field documentation in
	// internal/core for the paper sections each knob maps to.
	Options = core.Options
	// Result is the state of an IDCA computation: domination-count
	// bounds, filter statistics and per-iteration progress.
	Result = core.Result
	// Session is an incremental IDCA computation stepped by the caller.
	Session = core.Session
	// Index is an R-tree over object MBRs accelerating the filter step.
	Index = rtree.Tree[*uncertain.Object]
	// RefDecomp is a concurrency-safe object decomposition shared across
	// many IDCA runs (see Options.SharedTarget/SharedReference).
	RefDecomp = core.RefDecomp
	// DecompCache shares every object decomposition — operands and
	// influence objects — across the runs of one query (see
	// Options.SharedDecomps).
	DecompCache = core.DecompCache
)

// NewRefDecomp builds a shared decomposition of obj for reuse across
// runs; maxHeight <= 0 selects the default decomposition height.
func NewRefDecomp(obj *Object, maxHeight int) *RefDecomp {
	return core.NewRefDecomp(obj, maxHeight)
}

// NewDecompCache builds an empty decomposition cache for
// Options.SharedDecomps; maxHeight <= 0 selects the default height.
func NewDecompCache(maxHeight int) *DecompCache {
	return core.NewDecompCache(maxHeight)
}

// Dominates reports whether uncertainty region a completely dominates b
// w.r.t. reference region r under norm n — the tight criterion of the
// paper (Corollary 1, after Emrich et al. SIGMOD'10).
func Dominates(n Norm, a, b, r Rect) bool {
	return geom.Dominates(n, a, b, r)
}

// DominatesMinMax is the classical min/max-distance criterion, provided
// as the comparison baseline.
func DominatesMinMax(n Norm, a, b, r Rect) bool {
	return geom.DominatesMinMax(n, a, b, r)
}

// Run executes the iterative domination count approximation for target
// w.r.t. reference over db. See Options for stop criteria.
func Run(db Database, target, reference *Object, opts Options) *Result {
	return core.Run(db, target, reference, opts)
}

// RunIndexed is Run with the complete-domination filter pushed into an
// R-tree index.
func RunIndexed(index *Index, target, reference *Object, opts Options) *Result {
	return core.RunIndexed(index, target, reference, opts)
}

// NewIndex builds an R-tree over the database objects' MBRs with an
// STR bulk load (O(n log n), better-clustered nodes than repeated
// inserts).
func NewIndex(db Database) *Index {
	items := make([]rtree.BulkItem[*uncertain.Object], len(db))
	for i, o := range db {
		items[i] = rtree.BulkItem[*uncertain.Object]{Rect: o.MBR, Value: o}
	}
	return rtree.Bulk(items)
}

// NewSession prepares an incremental IDCA computation: the filter runs
// immediately, refinement happens on explicit Step calls.
func NewSession(db Database, target, reference *Object, opts Options) *Session {
	return core.NewSession(db, target, reference, opts)
}

// NewSessionIndexed is NewSession with the filter pushed into an
// R-tree index.
func NewSessionIndexed(index *Index, target, reference *Object, opts Options) *Session {
	return core.NewSessionIndexed(index, target, reference, opts)
}

// Queries.
type (
	// Engine evaluates probabilistic similarity queries.
	Engine = query.Engine
	// Match is one candidate's outcome in a threshold query.
	Match = query.Match
	// RankDistribution is a probabilistic inverse ranking result.
	RankDistribution = query.RankDistribution
	// Ranked is one object in an expected-rank ranking.
	Ranked = query.Ranked
)

// NewEngine builds a query engine with an R-tree index over db.
func NewEngine(db Database, opts Options) *Engine {
	return query.NewEngine(db, opts)
}

// Live store: a concurrent, mutable database serving snapshot-isolated
// queries (see internal/query.Store).
type (
	// Store is a concurrent uncertain-object store with live ingest
	// (Insert/Delete/Update), snapshot-isolated queries and cross-query
	// decomposition reuse. Its snapshot queries are bit-identical to a
	// fresh Engine over the same state, at any Parallelism.
	Store = query.Store
	// StoreSnapshot is one immutable database state published by a
	// Store; all queries on it observe exactly the same objects.
	StoreSnapshot = query.Snapshot
	// KNNRequest is one query of a Store.BatchKNN batch.
	KNNRequest = query.KNNRequest
)

// NewStore builds a live store over db (unique object IDs required; the
// index is STR bulk-loaded). Opts configures every query the store
// serves; Opts.SharedDecomps must be left unset.
func NewStore(db Database, opts Options) (*Store, error) {
	return query.NewStore(db, opts)
}

// Durability: stores opened with OpenStore/OpenShardedStore journal
// every commit to a segmented, CRC-framed write-ahead log before the
// copy-on-write publish, and periodically compact the log into
// checkpoint snapshots that persist the object database AND the
// decomposition cache. Reopening recovers bit-identically — same
// versions, same database order, same query answers — stopping cleanly
// at the last intact record after a torn tail write. See the README's
// "Durability" section.
type (
	// PersistOptions configures the journal directory, fsync policy and
	// checkpoint cadence of a durable store.
	PersistOptions = query.PersistOptions
	// SyncPolicy selects when journaled commits are fsynced.
	SyncPolicy = wal.SyncPolicy
)

// Fsync policies for PersistOptions.Sync.
const (
	// SyncOS (default): no explicit fsync; the OS flushes on its own.
	SyncOS = wal.SyncOS
	// SyncAlways: fsync after every commit.
	SyncAlways = wal.SyncAlways
	// SyncBackground: fsync every PersistOptions.SyncEvery (default 1s).
	SyncBackground = wal.SyncBackground
)

// OpenStore opens (or initializes) a durable store rooted at
// popts.Dir, recovering the newest checkpoint plus the journal tail.
func OpenStore(popts PersistOptions, opts Options) (*Store, error) {
	return query.OpenStore(popts, opts)
}

// BootstrapStore creates a new durable store over db at popts.Dir,
// writing the initial database as the first checkpoint. It refuses a
// directory that already holds a journal (use OpenStore).
func BootstrapStore(db Database, popts PersistOptions, opts Options) (*Store, error) {
	return query.BootstrapStore(db, popts, opts)
}

// OpenShardedStore opens (or initializes) a durable sharded store: one
// journal per shard plus a manifest with the version vector; shards
// recover in parallel and the router merges their logical records to
// rebuild the exact global order. sopts.Partition must be the
// partitioner the store was created with.
func OpenShardedStore(popts PersistOptions, sopts ShardedOptions, opts Options) (*ShardedStore, error) {
	return query.OpenShardedStore(popts, sopts, opts)
}

// BootstrapShardedStore creates a new durable sharded store over db at
// popts.Dir. It refuses a directory that already holds a manifest (use
// OpenShardedStore).
func BootstrapShardedStore(db Database, popts PersistOptions, sopts ShardedOptions, opts Options) (*ShardedStore, error) {
	return query.BootstrapShardedStore(db, popts, sopts, opts)
}

// Sharded store: N independent Store shards behind a scatter-gather
// router (see internal/query.ShardedStore and the README's "Sharding"
// section for the bound-merge argument).
type (
	// ShardedStore partitions a live store across N shards, each a full
	// Store with its own R-tree, decomposition cache and copy-on-write
	// snapshots. Queries scatter the paper's filter bounds per shard,
	// merge them canonically and refine once per surviving candidate —
	// results are bit-identical to an unsharded Store at any shard
	// count. Mutations pay the O(n/N) detach of their home shard only;
	// Move/Rebalance migrate objects online.
	ShardedStore = query.ShardedStore
	// ShardedSnapshot is one immutable, consistent cut across all
	// shards of a ShardedStore, with a per-shard version vector.
	ShardedSnapshot = query.ShardedSnapshot
	// ShardedOptions configures shard count and the partitioner of a
	// ShardedStore.
	ShardedOptions = query.ShardedOptions
	// ShardFunc deterministically routes an object to one of n shards.
	ShardFunc = query.ShardFunc
	// SnapshotView is the read side every snapshot publisher exposes;
	// *StoreSnapshot and *ShardedSnapshot both implement it.
	SnapshotView = query.SnapshotView
)

// NewShardedStore builds a sharded live store over db (unique object
// IDs required; shards are STR bulk-loaded concurrently). The zero
// ShardedOptions selects one shard and hash partitioning.
func NewShardedStore(db Database, sopts ShardedOptions, opts Options) (*ShardedStore, error) {
	return query.NewShardedStore(db, sopts, opts)
}

// HashShards is the default shard router: FNV-1a over the object ID.
func HashShards(o *Object, n int) int {
	return query.HashShards(o, n)
}

// StripeShards returns a spatial shard router binning the MBR center
// along dimension dim into n equal stripes of [lo, hi].
func StripeShards(dim int, lo, hi float64) ShardFunc {
	return query.StripeShards(dim, lo, hi)
}

// Continuous queries: standing KNN/RkNN subscriptions over a Store,
// maintained incrementally as mutations commit (see internal/cq).
type (
	// Monitor maintains standing subscriptions over one Store: it
	// consumes the store's committed change stream and keeps every
	// subscription's result set current with incremental, pruning-aware
	// maintenance — only subscriptions whose influence region a mutation
	// intersects wake, and within one only affected candidates re-run.
	Monitor = cq.Monitor
	// MonitorOptions configures event buffering and the slow-consumer
	// policy of a Monitor.
	MonitorOptions = cq.Options
	// Subscription is one standing KNN/RkNN query; consume its ordered
	// event stream via Events().
	Subscription = cq.Subscription
	// Event is one result-set transition of a subscription, valid at a
	// specific store version.
	Event = cq.Event
	// EventKind distinguishes ObjectEntered, ObjectLeft, BoundsChanged.
	EventKind = cq.EventKind
	// SubscriptionKind distinguishes standing KNN from RkNN queries.
	SubscriptionKind = cq.Kind
	// SlowConsumerPolicy selects what happens when a subscriber stops
	// draining its bounded event buffer.
	SlowConsumerPolicy = cq.Policy
	// Change is one committed Store mutation, delivered to Store.Watch
	// callbacks together with the snapshot of its version.
	Change = query.Change
	// ChangeKind distinguishes insert, update and delete changes.
	ChangeKind = query.ChangeKind
	// MonitorSource is the store side a Monitor consumes; *Store and
	// *ShardedStore both satisfy it.
	MonitorSource = cq.Source
)

// Event kinds, subscription kinds, change kinds and slow-consumer
// policies.
const (
	ObjectEntered = cq.ObjectEntered
	ObjectLeft    = cq.ObjectLeft
	BoundsChanged = cq.BoundsChanged

	KNNSubscription  = cq.KNN
	RKNNSubscription = cq.RKNN

	DisconnectSlow = cq.DisconnectSlow
	DropOldest     = cq.DropOldest

	ChangeInsert = query.ChangeInsert
	ChangeUpdate = query.ChangeUpdate
	ChangeDelete = query.ChangeDelete
)

// Terminal subscription errors (see Subscription.Err), plus the
// durable-cursor mismatch error (see Monitor.SubscribeKNNDurable).
var (
	ErrSlowConsumer   = cq.ErrSlowConsumer
	ErrUnsubscribed   = cq.ErrUnsubscribed
	ErrMonitorClosed  = cq.ErrMonitorClosed
	ErrCursorMismatch = cq.ErrCursorMismatch
)

// NewMonitor attaches a continuous-query monitor to a store — a Store
// or a ShardedStore (merged multi-shard change stream, tracked by a
// version-vector cursor). Register standing queries with
// SubscribeKNN/SubscribeRKNN, release with Close.
func NewMonitor(store MonitorSource, opts MonitorOptions) *Monitor {
	return cq.NewMonitor(store, opts)
}

// ThresholdStop builds the IDCA stop criterion for the tail predicate
// P(DomCount < k) versus threshold tau.
func ThresholdStop(k int, tau float64) func(*Result) bool {
	return query.ThresholdStop(k, tau)
}

// ExpectedRankBounds derives bounds on the expected rank from an IDCA
// result (Corollary 6).
func ExpectedRankBounds(res *Result) (lo, hi float64) {
	return query.ExpectedRankBounds(res)
}

// Ground truth (exact computation on the discrete sample model).

// ExactDomCountPDF computes the exact domination count PDF of b w.r.t.
// r over the candidate objects — the Monte-Carlo comparison partner of
// the paper, exact on the sample model. It is exponentially cheaper
// than possible-world enumeration but still far slower than Run; use it
// for validation, not for queries.
func ExactDomCountPDF(n Norm, cands []*Object, b, r *Object, kMax int) []float64 {
	return mc.DomCountPDF(n, cands, b, r, kMax)
}

// ExactPDom computes the exact probability that a is closer to r than b
// on the discrete sample model.
func ExactPDom(n Norm, a, b, r *Object) float64 {
	return mc.PDom(n, a, b, r)
}

// Workloads and persistence.
type (
	// SyntheticConfig parameterizes the synthetic rectangle dataset of
	// the paper's evaluation.
	SyntheticConfig = workload.SyntheticConfig
	// IcebergConfig parameterizes the iceberg-sightings simulation.
	IcebergConfig = workload.IcebergConfig
	// Query is an evaluation query (reference + target).
	Query = workload.Query
)

// Synthetic generates the synthetic dataset of Section VII.
func Synthetic(c SyntheticConfig) (Database, error) {
	return workload.Synthetic(c)
}

// IcebergSim generates the simulated iceberg sightings dataset.
func IcebergSim(c IcebergConfig) (Database, error) {
	return workload.IcebergSim(c)
}

// SaveFile persists a database to path (gob, gzip-compressed).
func SaveFile(path string, db Database) error {
	return workload.SaveFile(path, db)
}

// LoadFile reads a database written by SaveFile.
func LoadFile(path string) (Database, error) {
	return workload.LoadFile(path)
}

// Queries derives evaluation queries following the paper's convention
// (reference drawn from db, target = rank-th nearest by MinDist).
func Queries(db Database, q, rank int, n Norm, seed int64) []Query {
	return workload.Queries(db, q, rank, n, seed)
}

// Benchmarks for the live store: BenchmarkStoreWarmKNN measures
// repeated kNN queries against a stable Store — the persistent
// decomposition cache makes later queries skip every influence-object
// kd-split — next to the cold path that builds a fresh Engine per
// query. BenchmarkBulkLoad compares the STR bulk build of the R-tree
// against incremental insertion.
package probprune_test

import (
	"testing"

	"probprune"
)

func BenchmarkStoreWarmKNN(b *testing.B) {
	// Sample-heavy objects make the kd-splits the cache elides a
	// visible fraction of the query (the UGF refinement work is
	// untouched by caching and dominates at low sample counts).
	db, err := probprune.Synthetic(probprune.SyntheticConfig{N: 300, Samples: 512, MaxExtent: 0.15, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	q := probprune.PointObject(-1, probprune.Point{0.5, 0.5})
	opts := probprune.Options{Parallelism: 1}

	b.Run("engine-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine := probprune.NewEngine(db, opts)
			engine.KNN(q, 10, 0.5)
		}
	})
	b.Run("store-warm", func(b *testing.B) {
		store, err := probprune.NewStore(db, opts)
		if err != nil {
			b.Fatal(err)
		}
		store.KNN(q, 10, 0.5) // warm the persistent cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			store.KNN(q, 10, 0.5)
		}
	})
}

func BenchmarkBulkLoad(b *testing.B) {
	db, err := probprune.Synthetic(probprune.SyntheticConfig{N: 10000, Samples: 4, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("str-bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			probprune.NewIndex(db)
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree := probprune.NewIndex(nil)
			for _, o := range db {
				tree.Insert(o.MBR, o)
			}
		}
	})
}

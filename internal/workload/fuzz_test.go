package workload

import (
	"bytes"
	"testing"
)

// FuzzLoad hardens the dataset decoder: arbitrary input must produce an
// error or a valid database, never a panic or a hang. The seed corpus
// includes a genuine dataset so the fuzzer explores deep into the
// decoding path.
func FuzzLoad(f *testing.F) {
	db, err := Synthetic(SyntheticConfig{N: 3, Samples: 4, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, db); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("\x1f\x8bgarbage"))
	f.Add(buf.Bytes()[:buf.Len()/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that decodes must be structurally valid.
		for i, o := range got {
			if o == nil || o.NumSamples() == 0 {
				t.Fatalf("decoded object %d invalid", i)
			}
			total := 0.0
			for j := range o.Samples {
				if !o.MBR.Contains(o.Samples[j]) {
					t.Fatalf("object %d sample %d outside its MBR", i, j)
				}
				total += o.Weight(j)
			}
			if total < 1-1e-6 || total > 1+1e-6 {
				t.Fatalf("object %d weights sum to %g", i, total)
			}
		}
	})
}

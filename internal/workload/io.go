package workload

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"probprune/internal/geom"
	"probprune/internal/uncertain"
)

// The on-disk dataset format: a gob stream of flatObject records,
// gzip-compressed. The format is internal to this repository's tools
// (cmd/udbgen writes it, cmd/udbquery and cmd/experiments read it).

type flatObject struct {
	ID        int
	Samples   []geom.Point
	Weights   []float64
	Existence float64
}

type fileHeader struct {
	Magic   string
	Version int
	Count   int
}

const (
	fileMagic   = "probprune-db"
	fileVersion = 1
)

// Save writes the database to w.
func Save(w io.Writer, db uncertain.Database) error {
	zw := gzip.NewWriter(w)
	enc := gob.NewEncoder(zw)
	if err := enc.Encode(fileHeader{Magic: fileMagic, Version: fileVersion, Count: len(db)}); err != nil {
		return fmt.Errorf("workload: encoding header: %w", err)
	}
	for _, o := range db {
		f := flatObject{ID: o.ID, Samples: o.Samples, Weights: o.Weights, Existence: o.Existence}
		if err := enc.Encode(f); err != nil {
			return fmt.Errorf("workload: encoding object %d: %w", o.ID, err)
		}
	}
	return zw.Close()
}

// Load reads a database written by Save.
func Load(r io.Reader) (uncertain.Database, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("workload: opening stream: %w", err)
	}
	defer zr.Close()
	dec := gob.NewDecoder(zr)
	var hdr fileHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("workload: decoding header: %w", err)
	}
	if hdr.Magic != fileMagic {
		return nil, fmt.Errorf("workload: not a probprune database file")
	}
	if hdr.Version != fileVersion {
		return nil, fmt.Errorf("workload: unsupported version %d", hdr.Version)
	}
	if hdr.Count < 0 {
		return nil, fmt.Errorf("workload: negative object count %d", hdr.Count)
	}
	// The count is attacker-controlled until the stream is verified:
	// never pre-allocate more than a sane chunk up front; append grows
	// the slice as objects actually decode.
	capHint := hdr.Count
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	db := make(uncertain.Database, 0, capHint)
	for i := 0; i < hdr.Count; i++ {
		var f flatObject
		if err := dec.Decode(&f); err != nil {
			return nil, fmt.Errorf("workload: decoding object %d: %w", i, err)
		}
		obj, err := uncertain.NewWeightedObject(f.ID, f.Samples, f.Weights)
		if err != nil {
			return nil, fmt.Errorf("workload: object %d invalid: %w", i, err)
		}
		if f.Existence != 0 {
			if err := obj.SetExistence(f.Existence); err != nil {
				return nil, fmt.Errorf("workload: object %d: %w", i, err)
			}
		}
		db = append(db, obj)
	}
	// Drain to EOF so the gzip trailer (checksum) is verified; a
	// truncated or corrupted stream must not load silently.
	switch _, err := io.ReadFull(zr, make([]byte, 1)); err {
	case io.EOF:
		return db, nil
	case nil:
		return nil, fmt.Errorf("workload: trailing data after %d objects", hdr.Count)
	default:
		return nil, fmt.Errorf("workload: verifying stream: %w", err)
	}
}

// SaveFile writes the database to path.
func SaveFile(path string, db uncertain.Database) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, db); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a database from path.
func LoadFile(path string) (uncertain.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

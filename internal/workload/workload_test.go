package workload

import (
	"bytes"
	"math"
	"testing"

	"probprune/internal/geom"
	"probprune/internal/uncertain"
)

func TestSyntheticShape(t *testing.T) {
	db, err := Synthetic(SyntheticConfig{N: 200, Samples: 50, MaxExtent: 0.004, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(db) != 200 {
		t.Fatalf("len = %d", len(db))
	}
	unit, _ := geom.NewRect(geom.Point{-0.01, -0.01}, geom.Point{1.01, 1.01})
	for _, o := range db {
		if o.NumSamples() != 50 {
			t.Fatalf("object %d has %d samples", o.ID, o.NumSamples())
		}
		if e := o.MBR.MaxExtent(); e > 0.004 {
			t.Fatalf("object %d extent %g > max 0.004", o.ID, e)
		}
		if !unit.ContainsRect(o.MBR) {
			t.Fatalf("object %d escapes the data space: %v", o.ID, o.MBR)
		}
	}
}

func TestSyntheticReproducible(t *testing.T) {
	a, _ := Synthetic(SyntheticConfig{N: 20, Samples: 10, Seed: 7})
	b, _ := Synthetic(SyntheticConfig{N: 20, Samples: 10, Seed: 7})
	for i := range a {
		for j := range a[i].Samples {
			if !a[i].Samples[j].Equal(b[i].Samples[j]) {
				t.Fatal("same seed produced different datasets")
			}
		}
	}
	c, _ := Synthetic(SyntheticConfig{N: 20, Samples: 10, Seed: 8})
	same := true
	for i := range a {
		for j := range a[i].Samples {
			if !a[i].Samples[j].Equal(c[i].Samples[j]) {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestSyntheticDefaults(t *testing.T) {
	c := SyntheticConfig{}.withDefaults()
	if c.N != 10000 || c.Dim != 2 || c.MaxExtent != 0.004 || c.Samples != 1000 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestIcebergSimShape(t *testing.T) {
	db, err := IcebergSim(IcebergConfig{N: 300, Samples: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(db) != 300 {
		t.Fatalf("len = %d", len(db))
	}
	for _, o := range db {
		if e := o.MBR.MaxExtent(); e > 0.0004+1e-12 {
			t.Fatalf("object %d extent %g > max 0.0004", o.ID, e)
		}
	}
	// The corridor shape: the mass must be clustered, not uniform.
	// Verify that the mean position sits in the band (northwest-ish)
	// and that coordinate variance is well below uniform variance.
	var mx, my float64
	for _, o := range db {
		c := o.Centroid()
		mx += c[0]
		my += c[1]
	}
	mx /= float64(len(db))
	my /= float64(len(db))
	if mx < 0.2 || mx > 0.7 || my < 0.3 || my > 0.9 {
		t.Errorf("corridor center (%g, %g) implausible", mx, my)
	}
	var vx float64
	for _, o := range db {
		c := o.Centroid()
		vx += (c[0] - mx) * (c[0] - mx)
	}
	vx /= float64(len(db))
	if vx > 1.0/12 { // uniform variance on [0,1]
		t.Errorf("x variance %g not clustered", vx)
	}
}

func TestQueriesConvention(t *testing.T) {
	db, _ := Synthetic(SyntheticConfig{N: 100, Samples: 10, Seed: 3})
	qs := Queries(db, 5, 10, geom.L2, 4)
	if len(qs) != 5 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if q.Reference == q.Target {
			t.Fatal("target must differ from reference")
		}
		// The target must be the 10th nearest by MinDist: verify by
		// counting strictly closer objects.
		dT := q.Target.MBR.MinDistRect(geom.L2, q.Reference.MBR)
		closer := 0
		for _, o := range db {
			if o == q.Reference || o == q.Target {
				continue
			}
			if o.MBR.MinDistRect(geom.L2, q.Reference.MBR) < dT {
				closer++
			}
		}
		// Ties make the exact rank ambiguous; it must be close to 9.
		if closer > 9 {
			t.Errorf("target has %d strictly closer objects, want <= 9", closer)
		}
	}
}

func TestNthNearestEdges(t *testing.T) {
	db, _ := Synthetic(SyntheticConfig{N: 5, Samples: 5, Seed: 5})
	if NthNearest(db, db[0], 5, geom.L2) != nil {
		t.Error("rank beyond database size must return nil")
	}
	if NthNearest(db, db[0], 0, geom.L2) != nil {
		t.Error("rank 0 must return nil")
	}
	if got := NthNearest(db, db[0], 1, geom.L2); got == nil || got == db[0] {
		t.Error("rank 1 must return the nearest other object")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db, _ := Synthetic(SyntheticConfig{N: 30, Samples: 20, Seed: 6})
	// Attach weights to one object to exercise the weighted path.
	w := make([]float64, 20)
	for i := range w {
		w[i] = float64(i + 1)
	}
	weighted, err := uncertain.NewWeightedObject(99, db[0].Samples, w)
	if err != nil {
		t.Fatal(err)
	}
	db = append(db, weighted)

	var buf bytes.Buffer
	if err := Save(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(db) {
		t.Fatalf("round trip lost objects: %d vs %d", len(got), len(db))
	}
	for i := range db {
		if got[i].ID != db[i].ID || got[i].NumSamples() != db[i].NumSamples() {
			t.Fatalf("object %d metadata mismatch", i)
		}
		for j := range db[i].Samples {
			if !got[i].Samples[j].Equal(db[i].Samples[j]) {
				t.Fatalf("object %d sample %d mismatch", i, j)
			}
			if math.Abs(got[i].Weight(j)-db[i].Weight(j)) > 1e-12 {
				t.Fatalf("object %d weight %d mismatch", i, j)
			}
		}
		if !got[i].MBR.Equal(db[i].MBR) {
			t.Fatalf("object %d MBR mismatch", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a database"))); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	buf.WriteString("\x1f\x8b") // gzip magic then garbage
	buf.WriteString("garbage")
	if _, err := Load(&buf); err == nil {
		t.Error("corrupt gzip accepted")
	}
}

func TestSaveLoadFileAndErrors(t *testing.T) {
	db, _ := Synthetic(SyntheticConfig{N: 10, Samples: 5, Seed: 9})
	if err := db[0].SetExistence(0.5); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/db.udb"
	if err := SaveFile(path, db); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ExistenceProb() != 0.5 {
		t.Errorf("existence lost in round trip: %g", got[0].ExistenceProb())
	}
	if err := SaveFile(dir+"/missing/sub/db.udb", db); err == nil {
		t.Error("SaveFile to a missing directory succeeded")
	}
	if _, err := LoadFile(dir + "/nope.udb"); err == nil {
		t.Error("LoadFile of a missing file succeeded")
	}
}

func TestLoadRejectsWrongMagicAndTruncation(t *testing.T) {
	db, _ := Synthetic(SyntheticConfig{N: 5, Samples: 4, Seed: 10})
	var buf bytes.Buffer
	if err := Save(&buf, db); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-stream: decoding must fail, not hang or panic.
	full := buf.Bytes()
	for _, cut := range []int{len(full) / 4, len(full) / 2, len(full) - 3} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated stream (%d bytes) accepted", cut)
		}
	}
}

func TestIcebergDefaults(t *testing.T) {
	c := IcebergConfig{}.withDefaults()
	if c.N != 6216 || c.Samples != 1000 || c.MaxExtent != 0.0004 {
		t.Errorf("iceberg defaults = %+v", c)
	}
}

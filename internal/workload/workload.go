// Package workload generates the datasets of the paper's evaluation
// (Section VII) and the query workloads run against them.
//
// Two dataset families are provided:
//
//   - Synthetic: N objects modeled as d-dimensional rectangles with
//     uniformly distributed centers and uniformly random relative
//     extents up to a maximum (the paper: 10,000 2-D rectangles, max
//     extent 0.004, uniform object PDFs).
//
//   - IcebergSim: a simulation of the International Ice Patrol (IIP)
//     Iceberg Sightings dataset the paper uses (6,216 sightings in the
//     North Atlantic in 2009). The real dataset is not redistributable
//     here, so the generator reproduces its statistical shape: sighting
//     positions clustered along the Labrador-current corridor (a
//     Gaussian-mixture band), Gaussian positional uncertainty whose
//     magnitude grows with the time since the latest sighting, extents
//     normalized to the data space with maximum 0.0004. See DESIGN.md
//     ("Substitutions") for why this preserves the experiments'
//     behaviour.
//
// The paper's query convention is also implemented: for each query, an
// uncertain reference object R is drawn, and the target B is the
// object with the j-th smallest MinDist to R (default j = 10).
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"probprune/internal/geom"
	"probprune/internal/uncertain"
)

// SyntheticConfig parameterizes the synthetic rectangle dataset.
type SyntheticConfig struct {
	// N is the number of objects (paper default: 10,000).
	N int
	// Dim is the dimensionality (paper: 2).
	Dim int
	// MaxExtent is the maximum relative side length of an object's
	// uncertainty region (paper default: 0.004 of the unit space).
	MaxExtent float64
	// Samples is the number of discrete samples per object (paper
	// default: 1000).
	Samples int
	// Seed makes generation reproducible.
	Seed int64
}

func (c SyntheticConfig) withDefaults() SyntheticConfig {
	if c.N <= 0 {
		c.N = 10000
	}
	if c.Dim <= 0 {
		c.Dim = 2
	}
	if c.MaxExtent <= 0 {
		c.MaxExtent = 0.004
	}
	if c.Samples <= 0 {
		c.Samples = 1000
	}
	return c
}

// Synthetic generates the synthetic dataset: uniform centers in the
// unit cube, uniform extents in (0, MaxExtent], uniform object PDFs.
func Synthetic(c SyntheticConfig) (uncertain.Database, error) {
	c = c.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	db := make(uncertain.Database, 0, c.N)
	for i := 0; i < c.N; i++ {
		center := make(geom.Point, c.Dim)
		ext := make([]float64, c.Dim)
		for d := 0; d < c.Dim; d++ {
			center[d] = rng.Float64()
			ext[d] = rng.Float64() * c.MaxExtent
		}
		region := geom.RectAround(center, ext)
		obj, err := uncertain.Realize(i, uncertain.UniformBox{Rect: region}, c.Samples, rng)
		if err != nil {
			return nil, fmt.Errorf("workload: synthetic object %d: %w", i, err)
		}
		db = append(db, obj)
	}
	return db, nil
}

// IcebergConfig parameterizes the iceberg sightings simulation.
type IcebergConfig struct {
	// N is the number of sightings (paper: 6,216).
	N int
	// Samples is the number of discrete samples per object.
	Samples int
	// MaxExtent is the maximum normalized extent (paper: 0.0004).
	MaxExtent float64
	// Seed makes generation reproducible.
	Seed int64
}

func (c IcebergConfig) withDefaults() IcebergConfig {
	if c.N <= 0 {
		c.N = 6216
	}
	if c.Samples <= 0 {
		c.Samples = 1000
	}
	if c.MaxExtent <= 0 {
		c.MaxExtent = 0.0004
	}
	return c
}

// icebergClusters are mixture components tracing the iceberg corridor
// off Newfoundland and Labrador in normalized [0,1]² coordinates: a
// south-east drifting band, denser in the north, as in the IIP data.
var icebergClusters = []struct {
	cx, cy, sx, sy, w float64
}{
	{0.30, 0.85, 0.04, 0.06, 3.0},
	{0.35, 0.70, 0.05, 0.07, 2.5},
	{0.42, 0.55, 0.06, 0.07, 2.0},
	{0.50, 0.42, 0.07, 0.06, 1.5},
	{0.58, 0.32, 0.07, 0.05, 1.0},
	{0.68, 0.25, 0.08, 0.05, 0.7},
	{0.78, 0.20, 0.08, 0.04, 0.4},
}

// IcebergSim generates the simulated iceberg dataset: clustered
// sighting positions, per-object truncated-Gaussian uncertainty whose
// extent scales with a simulated time-since-sighting.
func IcebergSim(c IcebergConfig) (uncertain.Database, error) {
	c = c.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	totalW := 0.0
	for _, cl := range icebergClusters {
		totalW += cl.w
	}
	db := make(uncertain.Database, 0, c.N)
	for i := 0; i < c.N; i++ {
		// Draw the sighting position from the mixture band.
		u := rng.Float64() * totalW
		var cx, cy, sx, sy float64
		for _, cl := range icebergClusters {
			u -= cl.w
			if u <= 0 {
				cx, cy, sx, sy = cl.cx, cl.cy, cl.sx, cl.sy
				break
			}
		}
		mean := geom.Point{
			clamp01(cx + rng.NormFloat64()*sx),
			clamp01(cy + rng.NormFloat64()*sy),
		}
		// The positional uncertainty grows with the days since the
		// latest sighting; age^1 scaling, normalized so that the oldest
		// sighting reaches MaxExtent.
		age := rng.Float64()
		extent := c.MaxExtent * (0.1 + 0.9*age)
		region := geom.RectAround(mean, []float64{extent, extent})
		sigma := extent / 4 // ±2σ covered by the region
		pdf := uncertain.TruncatedGaussian{
			Mean:   mean,
			Sigma:  []float64{sigma, sigma},
			Region: region,
		}
		obj, err := uncertain.Realize(i, pdf, c.Samples, rng)
		if err != nil {
			return nil, fmt.Errorf("workload: iceberg object %d: %w", i, err)
		}
		db = append(db, obj)
	}
	return db, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Query is one evaluation query: an uncertain reference object R and
// the target object B drawn from the database.
type Query struct {
	// Reference is the uncertain query/reference object R.
	Reference *uncertain.Object
	// Target is the database object B whose domination count is
	// approximated.
	Target *uncertain.Object
}

// Queries derives q evaluation queries from db following the paper's
// convention: the reference is a randomly drawn database object, and
// the target is the object with the rank-th smallest MinDist to the
// reference (paper default rank = 10). The reference object itself is
// excluded from target selection.
func Queries(db uncertain.Database, q, rank int, n geom.Norm, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Query, 0, q)
	for len(out) < q {
		ref := db[rng.Intn(len(db))]
		target := NthNearest(db, ref, rank, n)
		if target == nil {
			continue
		}
		out = append(out, Query{Reference: ref, Target: target})
	}
	return out
}

// NthNearest returns the database object with the rank-th smallest
// MinDist to the reference's MBR (1-based), excluding the reference
// itself; nil if the database is too small.
func NthNearest(db uncertain.Database, ref *uncertain.Object, rank int, n geom.Norm) *uncertain.Object {
	type cand struct {
		obj *uncertain.Object
		d   float64
	}
	cands := make([]cand, 0, len(db))
	for _, o := range db {
		if o == ref {
			continue
		}
		cands = append(cands, cand{obj: o, d: o.MBR.MinDistRect(n, ref.MBR)})
	}
	if rank < 1 || rank > len(cands) {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	return cands[rank-1].obj
}

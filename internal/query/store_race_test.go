package query

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"probprune/internal/core"
	"probprune/internal/uncertain"
)

// TestStoreConcurrentMutationAndQuery hammers a Store with concurrent
// Insert/Update/Delete while queries run, asserting snapshot isolation:
// under -race this also proves the copy-on-write discipline keeps
// readers off mutating state.
//
// Invariants the readers check on every result:
//   - the core objects (IDs 0..coreN-1) are only ever Updated, so every
//     query must see each core ID exactly once — an Update can never be
//     observed half-applied (old gone and new absent, or both present);
//   - transient objects (IDs >= 1000) are Inserted then Deleted, so
//     each transient ID appears at most once;
//   - a BatchKNN's requests share one snapshot, so every sub-result
//     must see the identical ID set.
func TestStoreConcurrentMutationAndQuery(t *testing.T) {
	const (
		coreN    = 16
		mutators = 3
		readers  = 3
		rounds   = 25
	)
	seedRng := rand.New(rand.NewSource(77))
	db := storeTestDB(t, coreN, 77)
	s, err := NewStore(db, core.Options{MaxIterations: 2, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := randObject(t, seedRng, -1)

	checkIDs := func(matches []Match, where string) {
		t.Helper()
		seen := make(map[int]int)
		for _, m := range matches {
			seen[m.Object.ID]++
		}
		for id := 0; id < coreN; id++ {
			if seen[id] != 1 {
				t.Errorf("%s: core ID %d appears %d times (half-applied update observed)", where, id, seen[id])
			}
		}
		for id, n := range seen {
			if id >= 1000 && n > 1 {
				t.Errorf("%s: transient ID %d appears %d times", where, id, n)
			}
		}
	}
	idSet := func(matches []Match) map[int]bool {
		set := make(map[int]bool, len(matches))
		for _, m := range matches {
			set[m.Object.ID] = true
		}
		return set
	}

	var wg sync.WaitGroup
	for w := 0; w < mutators; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < rounds; i++ {
				// Update a core object (atomic replace).
				id := rng.Intn(coreN)
				if err := s.Update(randObject(t, rng, id)); err != nil {
					t.Errorf("mutator %d: update: %v", w, err)
				}
				// Insert then delete a transient object.
				tid := 1000 + w*10000 + i
				if err := s.Insert(randObject(t, rng, tid)); err != nil {
					t.Errorf("mutator %d: insert: %v", w, err)
				}
				if !s.Delete(tid) {
					t.Errorf("mutator %d: transient %d vanished", w, tid)
				}
			}
		}(w)
	}
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			var lastVersion uint64
			for i := 0; i < rounds; i++ {
				snap := s.Snapshot()
				if v := snap.Version(); v < lastVersion {
					t.Errorf("reader %d: snapshot version went backwards: %d < %d", w, v, lastVersion)
				} else {
					lastVersion = v
				}
				matches, err := s.KNNCtx(ctx, q, 3, 0.5)
				if err != nil {
					t.Errorf("reader %d: KNNCtx: %v", w, err)
					return
				}
				checkIDs(matches, "KNNCtx")

				batch, err := s.BatchKNN(ctx, []KNNRequest{
					{Q: q, K: 3, Tau: 0.5},
					{Q: q, K: 3, Tau: 0.5},
				})
				if err != nil {
					t.Errorf("reader %d: BatchKNN: %v", w, err)
					return
				}
				checkIDs(batch[0], "BatchKNN[0]")
				checkIDs(batch[1], "BatchKNN[1]")
				a, b := idSet(batch[0]), idSet(batch[1])
				if len(a) != len(b) {
					t.Errorf("reader %d: batch requests saw different snapshots", w)
				}
				for id := range a {
					if !b[id] {
						t.Errorf("reader %d: batch requests saw different ID sets (ID %d)", w, id)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// After the dust settles the store must be internally consistent.
	if s.Len() != coreN {
		t.Fatalf("Len = %d, want %d (all transients deleted)", s.Len(), coreN)
	}
	snap := s.Snapshot()
	fresh := NewEngine(snap.DB(), core.Options{MaxIterations: 2})
	got := s.KNN(q, 3, 0.5)
	want := fresh.KNN(q, 3, 0.5)
	if len(got) != len(want) {
		t.Fatalf("final state: store and fresh engine disagree on candidate count")
	}
	for i := range got {
		if got[i].Object != want[i].Object || got[i].Prob != want[i].Prob {
			t.Fatalf("final state: store result %d differs from fresh engine", i)
		}
	}
}

// TestStoreSnapshotSharing checks the copy-on-write bookkeeping:
// consecutive queries share one snapshot, a mutation detaches, and the
// persistent cache tracks database residency.
func TestStoreSnapshotSharing(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s, err := NewStore(storeTestDB(t, 10, 21), core.Options{MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := s.Snapshot(), s.Snapshot()
	if s1 != s2 {
		t.Fatal("back-to-back snapshots are distinct")
	}
	if err := s.Insert(randObject(t, rng, 500)); err != nil {
		t.Fatal(err)
	}
	s3 := s.Snapshot()
	if s3 == s1 {
		t.Fatal("snapshot not refreshed after mutation")
	}
	if s1.Len() != 10 || s3.Len() != 11 {
		t.Fatalf("snapshot lengths: %d, %d", s1.Len(), s3.Len())
	}
	var _ uncertain.Database = s1.DB()
}

package query

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/gf"
	"probprune/internal/uncertain"
)

// TopKNN answers the top-m probable kNN query (the semantics of
// Beskales et al. [6], which the paper's related work motivates):
// return the m database objects with the highest probability
// P(DomCount(B, q) < k) of being among the k nearest neighbors of q.
//
// Unlike the threshold query there is no τ to stop against, so the
// engine refines candidates selectively until the m best are separable
// by their probability bounds: a candidate is IN once its lower bound
// beats the upper bounds of all but < m others, OUT once its upper
// bound falls below m lower bounds. Only candidates straddling the
// boundary are refined further — the same bound-based pruning idea as
// IDCA itself, lifted to the candidate set.
//
// The returned matches are the selected objects in decreasing order of
// their probability bounds' midpoint. Decided is false on a candidate
// whose membership could not be separated within the iteration budget
// (ties or exhausted refinement); its bounds still quantify the
// remaining ambiguity.
func (e *Engine) TopKNN(q *uncertain.Object, k, m int) []Match {
	out, _ := e.TopKNNCtx(context.Background(), q, k, m)
	return out
}

// TopKNNCtx is TopKNN with cancellation and concurrent evaluation.
// Sessions are constructed and stepped on the query executor; each
// refinement round decides which candidates still straddle the top-m
// boundary from the start-of-round bounds, then steps all of them
// concurrently, so the outcome is deterministic and independent of
// worker count.
func (e *Engine) TopKNNCtx(ctx context.Context, q *uncertain.Object, k, m int) ([]Match, error) {
	if k < 1 || m < 1 {
		return nil, nil
	}
	tr, pooled := e.Obs.traceFor(ctx)
	start := time.Now()
	type cand struct {
		obj     *uncertain.Object
		session *core.Session
		prob    gf.Interval
		done    bool
	}
	// Preselection: impossible candidates have P = 0 and can only
	// occupy the tail; they never need a session.
	norm := e.normOrDefault()
	thresh := e.knnThreshold(q, k, norm)
	var objs []*uncertain.Object
	for _, b := range e.DB {
		if b == q {
			continue
		}
		tr.AddCandidates(1)
		e.Obs.countCandidates(1)
		if knnPrunable(b, q, thresh, norm) {
			tr.CountPreselected()
			e.Obs.countPreselected()
			continue
		}
		objs = append(objs, b)
	}
	if len(objs) == 0 {
		e.Obs.observe(kindTopK, start, tr, pooled)
		return nil, nil
	}
	cache := e.queryCache()
	tr.AddPrepare(time.Since(start))
	evalStart := time.Now()
	cands := make([]*cand, len(objs))
	err := forEach(ctx, e.parallelism(), len(objs), func(i int) {
		opts := e.runOpts()
		opts.KMax = k
		opts.SharedDecomps = cache
		s := e.newSession(objs[i], q, opts)
		cands[i] = &cand{obj: objs[i], session: s, prob: s.Result().CDFBound(k), done: s.Done()}
	})
	if err != nil {
		return nil, err
	}
	if m > len(cands) {
		m = len(cands)
	}

	maxIter := e.Opts.MaxIterations
	if maxIter <= 0 {
		maxIter = core.DefaultMaxIterations
	}
	// separated reports whether candidate i is decided relative to the
	// m-boundary: IN if at most m-1 others can beat it, OUT if at least
	// m others certainly beat it.
	countAbove := func(i int, x float64, strictUB bool) int {
		n := 0
		for j, c := range cands {
			if j == i {
				continue
			}
			if strictUB {
				if c.prob.UB > x {
					n++
				}
			} else {
				if c.prob.LB > x {
					n++
				}
			}
		}
		return n
	}
	inSet := func(i int) bool { return countAbove(i, cands[i].prob.LB, true) < m }
	outSet := func(i int) bool { return countAbove(i, cands[i].prob.UB, false) >= m }

	for round := 0; round < maxIter; round++ {
		// Phase 1: pick the candidates still straddling the boundary,
		// judged on the bounds as of the start of the round.
		var todo []int
		for i, c := range cands {
			if !c.done && !inSet(i) && !outSet(i) {
				todo = append(todo, i)
			}
		}
		if len(todo) == 0 {
			break
		}
		// Phase 2: step them all; sessions are independent, so the
		// steps parallelize freely.
		var progressed atomic.Bool
		err := forEach(ctx, e.parallelism(), len(todo), func(j int) {
			c := cands[todo[j]]
			if c.session.Step() {
				progressed.Store(true)
			} else {
				c.done = true
			}
			c.prob = c.session.Result().CDFBound(k)
		})
		if err != nil {
			return nil, err
		}
		if !progressed.Load() {
			break
		}
	}

	// Rank by midpoint (exact bounds collapse to the exact value),
	// breaking ties by ID for determinism.
	sort.SliceStable(cands, func(a, b int) bool {
		ma := cands[a].prob.LB + cands[a].prob.UB
		mb := cands[b].prob.LB + cands[b].prob.UB
		if ma != mb {
			return ma > mb
		}
		return cands[a].obj.ID < cands[b].obj.ID
	})
	out := make([]Match, 0, m)
	for i := 0; i < m; i++ {
		c := cands[i]
		// The selection is decided when no outside candidate's upper
		// bound can displace this candidate's lower bound.
		decided := true
		for j := m; j < len(cands); j++ {
			if cands[j].prob.UB > c.prob.LB {
				decided = false
				break
			}
		}
		out = append(out, Match{
			Object:     c.obj,
			Prob:       c.prob,
			IsResult:   true,
			Decided:    decided,
			Iterations: len(c.session.Result().Iterations),
		})
	}
	tr.AddEval(time.Since(evalStart))
	for _, c := range cands {
		tr.CountRefined(len(c.session.Result().Iterations))
		e.Obs.countRefined(len(c.session.Result().Iterations))
	}
	recordCache(e.Obs, tr, cache)
	e.Obs.observe(kindTopK, start, tr, pooled)
	return out, nil
}

// normOrDefault returns the engine's configured norm or L2.
func (e *Engine) normOrDefault() geom.Norm {
	if e.Opts.Norm.Valid() {
		return e.Opts.Norm
	}
	return geom.L2
}

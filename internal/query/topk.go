package query

import (
	"math"
	"sort"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/gf"
	"probprune/internal/uncertain"
)

// TopKNN answers the top-m probable kNN query (the semantics of
// Beskales et al. [6], which the paper's related work motivates):
// return the m database objects with the highest probability
// P(DomCount(B, q) < k) of being among the k nearest neighbors of q.
//
// Unlike the threshold query there is no τ to stop against, so the
// engine refines candidates selectively until the m best are separable
// by their probability bounds: a candidate is IN once its lower bound
// beats the upper bounds of all but < m others, OUT once its upper
// bound falls below m lower bounds. Only candidates straddling the
// boundary are refined further — the same bound-based pruning idea as
// IDCA itself, lifted to the candidate set.
//
// The returned matches are the selected objects in decreasing order of
// their probability bounds' midpoint. Decided is false on a candidate
// whose membership could not be separated within the iteration budget
// (ties or exhausted refinement); its bounds still quantify the
// remaining ambiguity.
func (e *Engine) TopKNN(q *uncertain.Object, k, m int) []Match {
	if k < 1 || m < 1 {
		return nil
	}
	type cand struct {
		obj     *uncertain.Object
		session *core.Session
		prob    gf.Interval
		done    bool
	}
	// Preselection: impossible candidates have P = 0 and can only
	// occupy the tail; they never need a session.
	thresh := math.Inf(1)
	if e.Index != nil {
		thresh = knnPruneThreshold(e.Index, q, k, e.normOrDefault())
	}
	var cands []*cand
	for _, b := range e.DB {
		if b == q {
			continue
		}
		if knnPrunable(b, q, thresh, e.normOrDefault()) {
			continue
		}
		opts := e.Opts
		opts.KMax = k
		var s *core.Session
		if e.Index != nil {
			s = core.NewSessionIndexed(e.Index, b, q, opts)
		} else {
			s = core.NewSession(e.DB, b, q, opts)
		}
		c := &cand{obj: b, session: s}
		c.prob = s.Result().CDFBound(k)
		c.done = s.Done()
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		return nil
	}
	if m > len(cands) {
		m = len(cands)
	}

	maxIter := e.Opts.MaxIterations
	if maxIter <= 0 {
		maxIter = core.DefaultMaxIterations
	}
	// separated reports whether candidate i is decided relative to the
	// m-boundary: IN if at most m-1 others can beat it, OUT if at least
	// m others certainly beat it.
	countAbove := func(i int, x float64, strictUB bool) int {
		n := 0
		for j, c := range cands {
			if j == i {
				continue
			}
			if strictUB {
				if c.prob.UB > x {
					n++
				}
			} else {
				if c.prob.LB > x {
					n++
				}
			}
		}
		return n
	}
	inSet := func(i int) bool { return countAbove(i, cands[i].prob.LB, true) < m }
	outSet := func(i int) bool { return countAbove(i, cands[i].prob.UB, false) >= m }

	for round := 0; round < maxIter; round++ {
		progressed := false
		for i, c := range cands {
			if c.done || inSet(i) || outSet(i) {
				continue
			}
			if c.session.Step() {
				progressed = true
			} else {
				c.done = true
			}
			c.prob = c.session.Result().CDFBound(k)
		}
		if !progressed {
			break
		}
	}

	// Rank by midpoint (exact bounds collapse to the exact value),
	// breaking ties by ID for determinism.
	sort.SliceStable(cands, func(a, b int) bool {
		ma := cands[a].prob.LB + cands[a].prob.UB
		mb := cands[b].prob.LB + cands[b].prob.UB
		if ma != mb {
			return ma > mb
		}
		return cands[a].obj.ID < cands[b].obj.ID
	})
	out := make([]Match, 0, m)
	for i := 0; i < m; i++ {
		c := cands[i]
		// The selection is decided when no outside candidate's upper
		// bound can displace this candidate's lower bound.
		decided := true
		for j := m; j < len(cands); j++ {
			if cands[j].prob.UB > c.prob.LB {
				decided = false
				break
			}
		}
		out = append(out, Match{
			Object:     c.obj,
			Prob:       c.prob,
			IsResult:   true,
			Decided:    decided,
			Iterations: len(c.session.Result().Iterations),
		})
	}
	return out
}

// normOrDefault returns the engine's configured norm or L2.
func (e *Engine) normOrDefault() geom.Norm {
	if e.Opts.Norm.Valid() {
		return e.Opts.Norm
	}
	return geom.L2
}

package query

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/uncertain"
)

// TestDurableShardedLifecycle drives the sharded durability surface the
// equivalence suite does not: explicit Checkpoint/Sync, the shard-count
// guard, bootstrap refusal, and post-Close mutation errors.
func TestDurableShardedLifecycle(t *testing.T) {
	db, _ := traceCase(t, 11, false)
	opts := core.Options{MaxIterations: 2}
	popts := PersistOptions{Dir: filepath.Join(t.TempDir(), "db")}

	mem, err := NewShardedStore(db, ShardedOptions{Shards: 2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Checkpoint(); err == nil || !strings.Contains(err.Error(), "not durable") {
		t.Fatalf("checkpoint on in-memory sharded store: %v", err)
	}
	if err := mem.Sync(); err != nil { // no journals: a no-op
		t.Fatal(err)
	}
	if err := mem.Close(); err != nil { // no journals: a no-op
		t.Fatal(err)
	}

	s, err := BootstrapShardedStore(db, popts, ShardedOptions{Shards: 3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(uncertain.PointObject(9001, geom.Point{0.2, 0.2})); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A second bootstrap over the same directory must refuse.
	if _, err := BootstrapShardedStore(db, popts, ShardedOptions{Shards: 3}, opts); err == nil {
		t.Fatal("bootstrap over an existing manifest succeeded")
	}
	// Exercise the query surface on the durable sharded store.
	q := uncertain.PointObject(-1, geom.Point{0.5, 0.5})
	snap := s.Snapshot()
	if snap.NumShards() != 3 || snap.Shard(0) == nil || snap.Len() != s.Len() {
		t.Fatal("snapshot shape wrong")
	}
	s.RankByExpectedRank(q)
	s.UKRanks(q, 2)
	s.Batch(func(e *Engine) { e.KNN(q, 2, 0.5) })
	if err := s.BatchCtx(context.Background(), func(ctx context.Context, e *Engine) error {
		_, err := e.KNNCtx(ctx, q, 2, 0.5)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BatchKNN(context.Background(), []KNNRequest{{Q: q, K: 2, Tau: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.TopKNNCtx(context.Background(), q, 2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RKNNCtx(context.Background(), q, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.KNNCtx(context.Background(), q, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(uncertain.PointObject(9002, geom.Point{0.1, 0.1})); err == nil {
		t.Fatal("insert after Close succeeded")
	}
	if err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint after Close succeeded")
	}

	// Reopen with a contradicting shard count: refused.
	if _, err := OpenShardedStore(popts, ShardedOptions{Shards: 5}, opts); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	// Reopen with the manifest's count inferred (Shards: 0).
	r, err := OpenShardedStore(popts, ShardedOptions{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumShards() != 3 {
		t.Fatalf("recovered %d shards, want 3", r.NumShards())
	}
}

// TestDeleteErrAndChangeKinds covers the journal-aware delete variant
// and the Change/ChangeKind accessors.
func TestDeleteErrAndChangeKinds(t *testing.T) {
	db, _ := traceCase(t, 13, false)
	s, err := BootstrapStore(db, PersistOptions{Dir: filepath.Join(t.TempDir(), "db")}, core.Options{MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ok, err := s.DeleteErr(db[0].ID)
	if !ok || err != nil {
		t.Fatalf("DeleteErr = %v, %v", ok, err)
	}
	ok, err = s.DeleteErr(db[0].ID)
	if ok || err != nil {
		t.Fatalf("second DeleteErr = %v, %v", ok, err)
	}
	for kind, want := range map[ChangeKind]string{
		ChangeInsert: "insert", ChangeUpdate: "update", ChangeDelete: "delete", ChangeKind(9): "unknown",
	} {
		if kind.String() != want {
			t.Fatalf("%d.String() = %q", kind, kind.String())
		}
	}
}

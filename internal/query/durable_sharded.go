package query

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"probprune/internal/core"
	"probprune/internal/obs"
	"probprune/internal/uncertain"
	"probprune/internal/wal"
)

// manifestName is the router-level durable state file of a sharded
// store's directory.
const manifestName = "MANIFEST"

// shardedJournal is the durability state a durable ShardedStore
// carries: the shards own the logs, the router owns the manifest and
// the coordinated checkpoint policy. Like a Store's journal, the
// coordinated checkpoint is pinned under the router lock (manifest data
// plus one O(1) rotation per shard) and written by the background
// scheduler.
type shardedJournal struct {
	popts PersistOptions
	since uint64 // records journaled since the last checkpoint pin

	// installMu serializes manifest + shard installs; installedVersion
	// (guarded by it) keeps a late older install from regressing the
	// manifest below an already-installed newer one — the shard logs
	// past an older manifest epoch are truncated by the newer shard
	// checkpoints, so a regressed manifest would be unrecoverable.
	installMu        sync.Mutex
	installedVersion uint64

	sched *ckptScheduler

	// rec is the armed flight recorder (nil when disarmed); router-level
	// deferred durability failures and coalesced checkpoints record into
	// it (the shard journals carry their own reference).
	rec atomic.Pointer[obs.Recorder]

	emu     sync.Mutex
	ckptErr error // first deferred durability failure (auto-checkpoint, rebalance)
}

func newShardedJournal(popts PersistOptions, m *Metrics) *shardedJournal {
	sj := &shardedJournal{popts: popts}
	sj.sched = newCkptScheduler(sj.noteCkptErr)
	sj.sched.events = sj.recorder
	if m != nil {
		sj.sched.queue = m.ckptQueue
		sj.sched.merged = m.ckptMerged
	}
	return sj
}

// recorder returns the armed recorder, nil when disarmed (nil-safe).
func (sj *shardedJournal) recorder() *obs.Recorder {
	if sj == nil {
		return nil
	}
	return sj.rec.Load()
}

// noteCkptErr records a deferred durability failure (keeping the first).
func (sj *shardedJournal) noteCkptErr(err error) {
	sj.emu.Lock()
	if sj.ckptErr == nil {
		sj.ckptErr = err
	}
	sj.emu.Unlock()
	if r := sj.recorder(); r != nil {
		r.Record(obs.EvDeferredError, r.Note(err.Error()), 0, 0, 0)
	}
}

// takeCkptErr returns and clears the deferred durability failure.
func (sj *shardedJournal) takeCkptErr() error {
	sj.emu.Lock()
	err := sj.ckptErr
	sj.ckptErr = nil
	sj.emu.Unlock()
	return err
}

// shardedCkptJob is one pinned coordinated checkpoint: the manifest
// data plus every shard's pinned checkpoint, installed together off the
// router lock.
type shardedCkptJob struct {
	m      *wal.Manifest
	path   string
	shards []*Store
	jobs   []*ckptJob
}

// shardPersist derives shard i's journal options: its own subdirectory,
// the router's sync policy, and NO auto-checkpointing — checkpoints are
// coordinated by the router (manifest first, then shards), which is
// what keeps the manifest's global order reconstructible from the shard
// logs at every crash point.
func shardPersist(popts PersistOptions, i int) PersistOptions {
	p := popts
	p.Dir = filepath.Join(popts.Dir, fmt.Sprintf("shard-%d", i))
	p.CheckpointEvery = 0
	return p
}

// surfaceCkptErrLocked reports (and clears) a deferred auto-checkpoint
// failure; the mutation or Sync that observes it is rejected, so the
// caller learns about the degraded durability right away instead of
// only at Close. Requires s.mu held for writing.
func (s *ShardedStore) surfaceCkptErrLocked() error {
	if s.sj == nil {
		return nil
	}
	if err := s.sj.takeCkptErr(); err != nil {
		return fmt.Errorf("sharded store: deferred auto-checkpoint failure: %w", err)
	}
	return nil
}

// maybeCheckpointLocked runs the router's auto-checkpoint policy after
// a commit: the coordinated state is pinned here and the manifest +
// shard installs handed to the background scheduler; failures are
// deferred and surfaced by the next mutation or Sync — or by Close,
// whichever comes first — like Store's. Requires s.mu held for writing.
func (s *ShardedStore) maybeCheckpointLocked() {
	sj := s.sj
	if sj == nil {
		return
	}
	sj.since++
	if sj.popts.CheckpointEvery <= 0 || sj.since < uint64(sj.popts.CheckpointEvery) {
		return
	}
	job, err := s.pinCheckpointLocked()
	if err != nil {
		sj.noteCkptErr(err)
		return
	}
	sj.sched.submit(func() error { return s.installCkpt(job) })
}

// pinCheckpointLocked pins one coordinated checkpoint under the router
// lock: the manifest data (version, version vector, global order,
// router decomposition cache) is captured, and every shard journal
// rotates through its own checkpoint pin — no state is serialized and
// nothing is fsynced here. The router lock makes the cut consistent:
// every shard mutation routes through it, so the version vector and the
// shard pins describe the same instant. Requires s.mu held for writing.
func (s *ShardedStore) pinCheckpointLocked() (*shardedCkptJob, error) {
	m := &wal.Manifest{
		Version:      s.version,
		Shards:       len(s.shards),
		VV:           make([]uint64, len(s.shards)),
		Order:        make([]int, len(s.db)),
		CacheVersion: s.cache.Version(),
	}
	for i, sh := range s.shards {
		m.VV[i] = sh.Version()
	}
	for i, o := range s.db {
		m.Order[i] = o.ID
		if levels := s.cache.Materialized(o); levels != nil {
			m.Decomp = append(m.Decomp, wal.DecompEntry{ID: o.ID, Dim: o.Dim(), Levels: levels})
		}
	}
	job := &shardedCkptJob{m: m, path: filepath.Join(s.sj.popts.Dir, manifestName)}
	for _, sh := range s.shards {
		sh.mu.Lock()
		shJob, err := sh.pinCheckpointLocked()
		sh.mu.Unlock()
		if err != nil {
			return nil, err
		}
		job.shards = append(job.shards, sh)
		job.jobs = append(job.jobs, shJob)
	}
	s.sj.since = 0
	return job, nil
}

// installCkpt installs one pinned coordinated checkpoint: the router
// manifest first (the commit point recovery trusts), then every shard's
// checkpoint, truncating the shard logs. A crash between the two leaves
// the manifest current and the shard logs long — recovery replays the
// surplus records into states the manifest already describes, landing
// on the same head. A job older than an already-installed one is
// skipped entirely.
func (s *ShardedStore) installCkpt(job *shardedCkptJob) error {
	sj := s.sj
	sj.installMu.Lock()
	defer sj.installMu.Unlock()
	if job.m.Version < sj.installedVersion {
		return nil
	}
	if err := wal.SaveManifest(job.path, job.m); err != nil {
		return err
	}
	sj.installedVersion = job.m.Version
	for i, sh := range job.shards {
		if err := sh.journal.install(job.jobs[i]); err != nil {
			return err
		}
	}
	return nil
}

// drainCheckpoints waits until no background checkpoint install is
// pending or running, like Store.drainCheckpoints.
func (s *ShardedStore) drainCheckpoints() {
	if s.sj != nil {
		s.sj.sched.drain()
	}
}

// Checkpoint durably snapshots the sharded store: the router manifest
// (version vector, global order, router cache) plus one checkpoint per
// shard, truncating every shard's log. The cut is pinned under the
// router lock but written outside it, so concurrent commits are never
// stalled by the installation.
func (s *ShardedStore) Checkpoint() error {
	s.mu.Lock()
	if s.sj == nil {
		s.mu.Unlock()
		return fmt.Errorf("sharded store: not durable (no journal)")
	}
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("sharded store: closed")
	}
	job, err := s.pinCheckpointLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.installCkpt(job)
}

// Sync forces every shard's journaled commits to stable storage. It
// first drains any in-flight background checkpoint and surfaces (and
// clears) a deferred durability failure of the router's coordinated
// checkpoint.
func (s *ShardedStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sj != nil {
		s.sj.sched.drain()
	}
	if err := s.surfaceCkptErrLocked(); err != nil {
		return err
	}
	for _, sh := range s.shards {
		if err := sh.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases every shard's journal, draining any in-flight
// background checkpoint first. Mutations fail after Close; snapshots
// and queries remain usable, and the on-disk state stays fully
// recoverable.
func (s *ShardedStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sj == nil || s.closed {
		return nil
	}
	s.closed = true
	s.sj.sched.drain()
	err := s.sj.takeCkptErr()
	for _, sh := range s.shards {
		if cerr := sh.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// BootstrapShardedStore creates a NEW durable sharded store over db at
// popts.Dir: one journal per shard (each bootstrapped with its
// partition's checkpoint) plus the router manifest. It fails when the
// directory already holds a manifest — recover that with
// OpenShardedStore instead.
func BootstrapShardedStore(db uncertain.Database, popts PersistOptions, sopts ShardedOptions, opts core.Options) (*ShardedStore, error) {
	if m, err := wal.LoadManifest(filepath.Join(popts.Dir, manifestName)); err != nil {
		return nil, err
	} else if m != nil {
		return nil, fmt.Errorf("sharded store: %s already holds a journal (use OpenShardedStore)", popts.Dir)
	}
	// The manifest install below is the commit point of a bootstrap:
	// shard journals without a manifest are the debris of a bootstrap
	// that crashed half way (the store was never handed to a caller)
	// and would otherwise wedge the directory — newEmptyJournal refuses
	// them, and open routes back here. Clear them and start over.
	if stale, err := filepath.Glob(filepath.Join(popts.Dir, "shard-*")); err == nil {
		for _, dir := range stale {
			os.RemoveAll(dir)
		}
	}
	s, err := NewShardedStore(db, sopts, opts)
	if err != nil {
		return nil, err
	}
	// Attach every shard to its own fresh journal (each writing its
	// partition's initial checkpoint), then install the first manifest:
	// the genesis state is durable before the store accepts a commit.
	for i, sh := range s.shards {
		if err := sh.bootstrapJournal(shardPersist(popts, i), 0); err != nil {
			s.closeShards()
			return nil, err
		}
	}
	s.sj = newShardedJournal(popts, s.obs)
	s.mu.Lock()
	job, err := s.pinCheckpointLocked()
	s.mu.Unlock()
	if err == nil {
		err = s.installCkpt(job)
	}
	if err != nil {
		s.closeShards()
		return nil, err
	}
	return s, nil
}

// closeShards best-effort releases shard journals after a failed
// bootstrap or open.
func (s *ShardedStore) closeShards() {
	for _, sh := range s.shards {
		if sh != nil {
			sh.Close()
		}
	}
}

// OpenShardedStore opens (or initializes) a durable sharded store
// rooted at popts.Dir. A fresh directory is bootstrapped empty with
// sopts' layout. An existing one is recovered: every shard replays its
// own checkpoint + log tail in parallel, and the router rebuilds its
// global insertion order by merging the shards' logical records —
// keyed by the router epoch each record carries — on top of the
// manifest's order. The recovered store is bit-identical to the one
// that wrote the journals: same version vector, same global order,
// same query answers at any shard count. sopts.Partition must be the
// partitioner the store was created with (functions are not
// persisted); sopts.Shards, when non-zero, is validated against the
// manifest.
func OpenShardedStore(popts PersistOptions, sopts ShardedOptions, opts core.Options) (*ShardedStore, error) {
	if opts.SharedDecomps != nil {
		return nil, fmt.Errorf("sharded store: Options.SharedDecomps must be unset (the store manages its own cache)")
	}
	m, err := wal.LoadManifest(filepath.Join(popts.Dir, manifestName))
	if err != nil {
		return nil, err
	}
	if m == nil {
		return BootstrapShardedStore(nil, popts, sopts, opts)
	}
	if sopts.Shards > 0 && sopts.Shards != m.Shards {
		return nil, fmt.Errorf("sharded store: manifest has %d shards, options ask for %d", m.Shards, sopts.Shards)
	}
	part := sopts.Partition
	if part == nil {
		part = HashShards
	}
	n := m.Shards
	s := &ShardedStore{
		opts:   opts,
		part:   part,
		shards: make([]*Store, n),
		byID:   make(map[int]*uncertain.Object),
		home:   make(map[int]int),
		cache:  core.NewDecompCache(opts.MaxHeight),
		obs:    NewMetrics(),
	}
	s.sj = newShardedJournal(popts, s.obs)
	// Recover every shard in parallel, collecting the logical records
	// past the manifest epoch — the tail of the global order — and, per
	// shard, which resident objects arrived through a replayed move-in
	// (a duplicate's dangling half, if its move-out is missing).
	var (
		wg        sync.WaitGroup
		errs      = make([]error, n)
		events    = make([][]wal.Record, n)
		viaMoveIn = make([]map[int]bool, n)
	)
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			via := make(map[int]bool)
			viaMoveIn[i] = via
			s.shards[i], errs[i] = openStore(shardPersist(popts, i), opts, func(rec wal.Record) {
				if rec.Op.Logical() && rec.Global > m.Version {
					// Keep the ID only — instances are resolved against
					// the recovered shard maps below, so a later move's
					// re-decode cannot alias a stale pointer into the
					// global slice.
					events[i] = append(events[i], wal.Record{Op: rec.Op, Global: rec.Global, ID: rec.ObjectID()})
				}
				switch rec.Op {
				case wal.OpMoveIn:
					via[rec.ObjectID()] = true
				case wal.OpInsert, wal.OpUpdate:
					via[rec.ObjectID()] = false
				case wal.OpDelete, wal.OpMoveOut:
					delete(via, rec.ObjectID())
				}
			})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			s.closeShards()
			return nil, err
		}
	}
	// Shards share the router's metric set, mirroring NewShardedStore.
	for _, sh := range s.shards {
		sh.obs = s.obs
	}
	if err := s.assemble(m, events, viaMoveIn); err != nil {
		s.closeShards()
		return nil, err
	}
	return s, nil
}

// assemble rebuilds the router state from the recovered shards, the
// manifest, and the post-manifest logical records.
func (s *ShardedStore) assemble(m *wal.Manifest, events [][]wal.Record, viaMoveIn []map[int]bool) error {
	// Membership and homes come from the shards themselves: an object's
	// home is the shard whose recovered state holds it. An ID on two
	// shards is a migration whose move-out never hit its source journal
	// (the process died between the two appends): the copy that arrived
	// through the dangling move-in is dropped — durably, with the
	// compensating move-out journaled — and the object stays home, as
	// if the migration never started. Anything else is corruption.
	var danglers []struct{ shard, id int }
	for i, sh := range s.shards {
		for id, o := range sh.byID {
			if _, dup := s.byID[id]; dup {
				a, b := s.home[id], i
				switch {
				case viaMoveIn[b][id] && !viaMoveIn[a][id]:
					danglers = append(danglers, struct{ shard, id int }{b, id})
					continue // keep a's copy
				case viaMoveIn[a][id] && !viaMoveIn[b][id]:
					danglers = append(danglers, struct{ shard, id int }{a, id})
				default:
					return fmt.Errorf("sharded store: object ID %d recovered on two shards", id)
				}
			}
			s.byID[id] = o
			s.home[id] = i
		}
	}
	for _, d := range danglers {
		if _, err := s.shards[d.shard].deleteOp(context.Background(), d.id, wal.OpMoveOut, m.Version); err != nil {
			return fmt.Errorf("sharded store: compensating interrupted migration of object %d: %w", d.id, err)
		}
	}
	// The global insertion order: manifest order, replayed forward
	// through the merged logical records. Each logical commit carries a
	// unique router epoch, so the merge is total and deterministic.
	var tail []wal.Record
	for _, evs := range events {
		tail = append(tail, evs...)
	}
	sort.Slice(tail, func(a, b int) bool { return tail[a].Global < tail[b].Global })
	order := append([]int(nil), m.Order...)
	version := m.Version
	touched := make(map[int]bool)
	for i, rec := range tail {
		if i > 0 && rec.Global == tail[i-1].Global {
			return fmt.Errorf("sharded store: two journaled commits share router epoch %d", rec.Global)
		}
		if rec.Global != version+1 {
			return fmt.Errorf("sharded store: journaled commit at router epoch %d after epoch %d", rec.Global, version)
		}
		version = rec.Global
		touched[rec.ID] = true
		switch rec.Op {
		case wal.OpInsert:
			order = append(order, rec.ID)
		case wal.OpDelete:
			for k, id := range order {
				if id == rec.ID {
					order = append(order[:k], order[k+1:]...)
					break
				}
			}
		case wal.OpUpdate:
			// In-place replacement: the order is unchanged.
		}
	}
	s.version = version
	if len(order) != len(s.byID) {
		return fmt.Errorf("sharded store: global order has %d objects, shards recovered %d", len(order), len(s.byID))
	}
	s.db = make(uncertain.Database, len(order))
	for i, id := range order {
		o, ok := s.byID[id]
		if !ok {
			return fmt.Errorf("sharded store: global order references unknown object ID %d", id)
		}
		s.db[i] = o
		s.cache.Add(o)
	}
	// Seed the router cache from the manifest for objects untouched
	// since it was written: their values are unchanged (moves re-encode
	// the same object), so the checkpointed decomposition is the one a
	// fresh split would compute. Mirror the live epoch ticks of the
	// replayed tail so the cache version matches the surviving store's.
	for _, e := range m.Decomp {
		if o, ok := s.byID[e.ID]; ok && !touched[e.ID] {
			s.cache.Seed(o, e.Levels)
		}
	}
	v := m.CacheVersion
	for _, rec := range tail {
		switch rec.Op {
		case wal.OpInsert, wal.OpDelete:
			v++
		case wal.OpUpdate:
			v += 2
		}
	}
	s.cache.SetVersion(v)
	return nil
}

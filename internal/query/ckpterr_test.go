package query

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/uncertain"
)

// This file regression-tests the surfacing of asynchronous
// auto-checkpoint failures: a checkpoint that fails in the background
// of a commit must be reported by the NEXT mutation or Sync — not
// silently deferred all the way to Close. The failure is injected by
// planting a directory at the exact path the next checkpoint file
// would take: the write-then-rename install cannot replace a directory
// and fails, while the journal log itself keeps working. Installs run
// on the background scheduler, so the tests drain it before asserting
// the deferred error is observable.

// blockCheckpoint plants the blocker for checkpoint index idx in dir.
func blockCheckpoint(t *testing.T, dir string, idx int) string {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("checkpoint-%08d.ckpt", idx))
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatal(err)
	}
	return path
}

func wantCkptErr(t *testing.T, err error, label string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: deferred auto-checkpoint failure not surfaced", label)
	}
	if !strings.Contains(err.Error(), "auto-checkpoint") {
		t.Fatalf("%s: error %q does not mention the auto-checkpoint", label, err)
	}
}

func TestAutoCheckpointFailureSurfacedStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, _ := traceCase(t, 11, false)
	opts := core.Options{MaxIterations: 3}
	s, err := BootstrapStore(db, PersistOptions{Dir: dir, CheckpointEvery: 3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Bootstrap wrote checkpoint 1; the auto-checkpoint will try 2.
	blocker := blockCheckpoint(t, dir, 2)

	obj := func(i int) *uncertain.Object {
		return uncertain.PointObject(1000+i, geom.Point{0.1 * float64(i), 0.2})
	}
	for i := 0; i < 3; i++ { // the third commit trips the failing auto-checkpoint
		if err := s.Insert(obj(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.drainCheckpoints() // let the background install fail
	lenBefore, verBefore := s.Len(), s.Version()

	// The next commit surfaces the deferred failure and is rejected.
	wantCkptErr(t, s.Insert(obj(3)), "insert after failed checkpoint")
	if s.Len() != lenBefore || s.Version() != verBefore {
		t.Fatalf("rejected commit mutated the store: len %d→%d version %d→%d",
			lenBefore, s.Len(), verBefore, s.Version())
	}
	if _, ok := s.Get(obj(3).ID); ok {
		t.Fatal("rejected insert is visible")
	}
	// Surfaced once: the store accepts commits again. The policy re-arms
	// after CheckpointEvery further commits (the pin reset the counter)
	// and re-trips the still-failing install; Sync is the other
	// surfacing point.
	for i := 3; i < 6; i++ {
		if err := s.Insert(obj(i)); err != nil {
			t.Fatalf("insert after surfacing: %v", err)
		}
	}
	s.drainCheckpoints()
	wantCkptErr(t, s.Sync(), "sync after failed checkpoint")
	if err := s.Sync(); err != nil {
		t.Fatalf("second sync reports a cleared error: %v", err)
	}

	// Unblock and recover: an explicit checkpoint succeeds, and the
	// store is clean through further commits, Sync and Close.
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after unblocking: %v", err)
	}
	if err := s.Insert(obj(6)); err != nil {
		t.Fatalf("insert after unblocking: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("sync after unblocking: %v", err)
	}
	wantLen, wantVer := s.Len(), s.Version()
	if err := s.Close(); err != nil {
		t.Fatalf("close after surfaced+recovered failures: %v", err)
	}

	// Nothing was lost: the log carried every accepted commit across
	// the failed checkpoints.
	reopened, err := OpenStore(PersistOptions{Dir: dir}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Len() != wantLen || reopened.Version() != wantVer {
		t.Fatalf("reopened len %d version %d, want %d and %d",
			reopened.Len(), reopened.Version(), wantLen, wantVer)
	}
}

func TestAutoCheckpointFailureSurfacedSharded(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, _ := traceCase(t, 12, true)
	opts := core.Options{MaxIterations: 3}
	s, err := BootstrapShardedStore(db, PersistOptions{Dir: dir, CheckpointEvery: 3},
		ShardedOptions{Shards: 2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Bootstrap leaves each shard at checkpoint 2 (its own bootstrap
	// snapshot plus the router's genesis checkpoint); block shard 0's
	// next one — the router checkpoint saves the manifest, then fails
	// on the shard.
	blocker := blockCheckpoint(t, filepath.Join(dir, "shard-0"), 3)

	obj := func(i int) *uncertain.Object {
		return uncertain.PointObject(2000+i, geom.Point{0.07 * float64(i), 0.4})
	}
	for i := 0; i < 3; i++ {
		if err := s.Insert(obj(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.drainCheckpoints() // let the background install fail
	lenBefore, verBefore := s.Len(), s.Version()
	wantCkptErr(t, s.Insert(obj(3)), "sharded insert after failed checkpoint")
	if s.Len() != lenBefore || s.Version() != verBefore {
		t.Fatal("rejected commit mutated the sharded store")
	}
	// Surfaced once: commits flow again until the auto-checkpoint
	// policy trips the blocked path a second time (3 commits later).
	if err := s.Update(obj(1)); err != nil {
		t.Fatalf("update after surfacing: %v", err)
	}
	if err := s.Insert(obj(3)); err != nil {
		t.Fatalf("insert after surfacing: %v", err)
	}
	if found, err := s.DeleteErr(obj(0).ID); err != nil || !found {
		t.Fatalf("delete after surfacing: found=%v err=%v", found, err)
	}
	s.drainCheckpoints()
	wantCkptErr(t, s.Sync(), "sharded sync after second failed checkpoint")

	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after unblocking: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("sync after unblocking: %v", err)
	}
	wantLen, wantVer := s.Len(), s.Version()
	if err := s.Close(); err != nil {
		t.Fatalf("close after surfaced+recovered failures: %v", err)
	}

	reopened, err := OpenShardedStore(PersistOptions{Dir: dir}, ShardedOptions{Shards: 2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Len() != wantLen || reopened.Version() != wantVer {
		t.Fatalf("reopened len %d version %d, want %d and %d",
			reopened.Len(), reopened.Version(), wantLen, wantVer)
	}
}

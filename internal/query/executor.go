package query

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"probprune/internal/core"
	"probprune/internal/uncertain"
)

// This file implements the query executor: every multi-candidate query
// (KNN, RKNN, expected-rank ranking, top-m) reduces to one independent
// IDCA run per candidate, and the executor fans those runs out over a
// worker pool — the concurrent serving model of production geospatial
// engines (tile38-style), applied to the paper's per-candidate
// filter-refinement loop.
//
// Concurrency contract. Each candidate's run is deterministic and
// writes only its own result slot, so results are identical to the
// sequential path regardless of worker count or completion order. The
// operand shared across runs (the query object's decomposition) is a
// core.RefDecomp, which synchronizes internally; the R-tree index is
// only read. Candidate-level parallelism subsumes the pair-level
// parallelism inside core, so per-candidate runs execute their
// partition pairs sequentially (runOpts pins Parallelism to 1).

// parallelism resolves the engine's worker count: Options.Parallelism
// when positive, otherwise GOMAXPROCS.
func (e *Engine) parallelism() int {
	if e.Opts.Parallelism > 0 {
		return e.Opts.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// queryCache resolves the decomposition cache of one query. With an
// engine-level cache installed (Options.SharedDecomps — Store hands
// every snapshot engine its persistent cache), the query reads through
// a fresh overlay: decompositions of objects pinned in the persistent
// cache are reused across queries, everything else (typically the query
// object) lives only for this query. Without one, the query builds a
// private cache. Results are bit-identical either way — decompositions
// are deterministic — only the work reuse differs.
func (e *Engine) queryCache() *core.DecompCache {
	if e.Opts.SharedDecomps != nil {
		return e.Opts.SharedDecomps.Overlay()
	}
	if e.defaultCache != nil {
		return e.defaultCache.Overlay()
	}
	return core.NewDecompCache(e.Opts.MaxHeight)
}

// runOpts derives the per-candidate IDCA options from the engine
// options: query-managed knobs (Stop, KMax, shared decompositions) are
// cleared for the caller to set, and pair-level parallelism is disabled
// because the executor already owns the concurrency budget.
func (e *Engine) runOpts() core.Options {
	opts := e.Opts
	opts.Stop = nil
	opts.KMax = 0
	opts.Parallelism = 1
	opts.SharedTarget = nil
	opts.SharedReference = nil
	opts.SharedDecomps = nil
	// A scratch arena is single-owner; concurrent candidate runs must
	// never share one installed at engine level. run/newSession attach a
	// per-run (pooled) or per-session arena instead.
	opts.Scratch = nil
	return opts
}

// forEach runs fn(i) for every i in [0, n) on the given number of
// workers, pulling indices from a shared counter. It stops handing out
// new indices once ctx is cancelled (in-flight calls complete) and
// returns ctx.Err() in that case. fn must confine its writes to
// index-private state.
func forEach(ctx context.Context, workers, n int, fn func(i int)) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// candidates returns the database objects a query over reference q runs
// against, in database order (q itself excluded when it is a database
// object). The slot order is the deterministic result order.
func (e *Engine) candidates(q *uncertain.Object) []*uncertain.Object {
	out := make([]*uncertain.Object, 0, len(e.DB))
	for _, b := range e.DB {
		if b != q {
			out = append(out, b)
		}
	}
	return out
}

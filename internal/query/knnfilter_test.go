package query

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/rtree"
	"probprune/internal/uncertain"
)

// TestKNNPruneThresholdMatchesSort: the heap-over-R-tree computation
// must return exactly the (k+1)-th smallest MaxDist.
func TestKNNPruneThresholdMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	db := smallDB(rng, 80, 8)
	q := randObj(rng, 500, 8, 5, 5, 2)
	index := rtree.New[*uncertain.Object]()
	for _, o := range db {
		index.Insert(o.MBR, o)
	}
	var maxDists []float64
	for _, o := range db {
		maxDists = append(maxDists, o.MBR.MaxDistRect(geom.L2, q.MBR))
	}
	sort.Float64s(maxDists)
	for _, k := range []int{1, 3, 10, 40} {
		got := knnPruneThreshold(index, q, k, geom.L2)
		want := maxDists[k] // 0-indexed (k+1)-th smallest
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("k=%d: threshold %g, want %g", k, got, want)
		}
	}
}

// TestKNNPruneThresholdSmallDatabase: with fewer than k+1 objects no
// pruning is possible.
func TestKNNPruneThresholdSmallDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	db := smallDB(rng, 3, 4)
	q := randObj(rng, 500, 4, 5, 5, 1)
	index := rtree.New[*uncertain.Object]()
	for _, o := range db {
		index.Insert(o.MBR, o)
	}
	if got := knnPruneThreshold(index, q, 5, geom.L2); !math.IsInf(got, 1) {
		t.Fatalf("threshold = %g, want +Inf", got)
	}
}

// TestKNNPruneThresholdExcludesQueryObject: when q is itself indexed,
// its own MaxDist (zero-ish) must not deflate the threshold.
func TestKNNPruneThresholdExcludesQueryObject(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	db := smallDB(rng, 30, 8)
	q := db[0]
	index := rtree.New[*uncertain.Object]()
	for _, o := range db {
		index.Insert(o.MBR, o)
	}
	var maxDists []float64
	for _, o := range db {
		if o == q {
			continue
		}
		maxDists = append(maxDists, o.MBR.MaxDistRect(geom.L2, q.MBR))
	}
	sort.Float64s(maxDists)
	const k = 4
	if got, want := knnPruneThreshold(index, q, k, geom.L2), maxDists[k]; math.Abs(got-want) > 1e-12 {
		t.Fatalf("threshold %g, want %g", got, want)
	}
}

// TestPreselectionNeverPrunesAPossibleResult: every object pruned by
// the preselection must have exact probability zero of being a kNN.
func TestPreselectionNeverPrunesAPossibleResult(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	db := smallDB(rng, 40, 8)
	q := randObj(rng, 500, 8, 5, 5, 2)
	eng := NewEngine(db, core.Options{MaxIterations: 6})
	const k, tau = 3, 0.25
	thresh := knnPruneThreshold(eng.Index, q, k, geom.L2)
	pruned := 0
	for _, b := range db {
		if !knnPrunable(b, q, thresh, geom.L2) {
			continue
		}
		pruned++
		if exact := exactTail(db, b, q, k); exact != 0 {
			t.Fatalf("object %d pruned but P(kNN) = %g", b.ID, exact)
		}
	}
	if pruned == 0 {
		t.Skip("instance produced no prunable objects")
	}
}

// TestKNNWithPreselectionMatchesExact repeats the verdict cross-check
// with the indexed (preselecting) engine on a larger database where
// preselection definitely engages.
func TestKNNWithPreselectionMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(604))
	db := smallDB(rng, 60, 8)
	q := randObj(rng, 500, 8, 5, 5, 2)
	eng := NewEngine(db, core.Options{MaxIterations: 8})
	const k, tau = 3, 0.5
	for _, m := range eng.KNN(q, k, tau) {
		exact := exactTail(db, m.Object, q, k)
		if !m.Prob.Contains(exact, 1e-9) {
			t.Fatalf("object %d: exact %g outside [%g, %g]", m.Object.ID, exact, m.Prob.LB, m.Prob.UB)
		}
		if m.Decided && math.Abs(exact-tau) > 1e-9 && m.IsResult != (exact >= tau) {
			t.Fatalf("object %d: verdict %v, exact %g", m.Object.ID, m.IsResult, exact)
		}
	}
}

package query

import (
	"math"
	"math/rand"
	"testing"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/mc"
	"probprune/internal/uncertain"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func randObj(rng *rand.Rand, id, n int, cx, cy, ext float64) *uncertain.Object {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{cx + (rng.Float64()-0.5)*ext, cy + (rng.Float64()-0.5)*ext}
	}
	o, err := uncertain.NewObject(id, pts)
	if err != nil {
		panic(err)
	}
	return o
}

func smallDB(rng *rand.Rand, n, samples int) uncertain.Database {
	db := make(uncertain.Database, 0, n)
	for i := 0; i < n; i++ {
		db = append(db, randObj(rng, i, samples, rng.Float64()*10, rng.Float64()*10, 1.5))
	}
	return db
}

// exactTail computes the exact P(DomCount(b, r) < k) over db \ {b, r}.
func exactTail(db uncertain.Database, b, r *uncertain.Object, k int) float64 {
	var cands []*uncertain.Object
	for _, o := range db {
		if o != b && o != r {
			cands = append(cands, o)
		}
	}
	pdf := mc.DomCountPDF(geom.L2, cands, b, r, 0)
	p := 0.0
	for x := 0; x < k && x < len(pdf); x++ {
		p += pdf[x]
	}
	return p
}

// TestKNNAgreesWithExact: every decided verdict must match the exact
// probability's side of the threshold, and every returned bound must
// contain the exact probability.
func TestKNNAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	db := smallDB(rng, 12, 16)
	q := randObj(rng, 500, 16, 5, 5, 1.5)
	for _, k := range []int{1, 3, 5} {
		for _, tau := range []float64{0.25, 0.5, 0.75} {
			eng := NewEngine(db, core.Options{MaxIterations: 8})
			matches := eng.KNN(q, k, tau)
			if len(matches) != len(db) {
				t.Fatalf("k=%d: %d matches for %d objects", k, len(matches), len(db))
			}
			for _, m := range matches {
				exact := exactTail(db, m.Object, q, k)
				if !m.Prob.Contains(exact, 1e-9) {
					t.Fatalf("k=%d tau=%g obj=%d: exact %g outside [%g, %g]",
						k, tau, m.Object.ID, exact, m.Prob.LB, m.Prob.UB)
				}
				if m.Decided {
					wantResult := exact >= tau
					if m.IsResult != wantResult && math.Abs(exact-tau) > 1e-9 {
						t.Fatalf("k=%d tau=%g obj=%d: verdict %v but exact %g vs tau %g",
							k, tau, m.Object.ID, m.IsResult, exact, tau)
					}
				}
			}
		}
	}
}

// TestKNNCertainPoints: on certain data the probabilistic kNN query
// degenerates to the classical one.
func TestKNNCertainPoints(t *testing.T) {
	db := uncertain.Database{
		uncertain.PointObject(0, geom.Point{1, 0}),
		uncertain.PointObject(1, geom.Point{2, 0}),
		uncertain.PointObject(2, geom.Point{3, 0}),
		uncertain.PointObject(3, geom.Point{4, 0}),
	}
	q := uncertain.PointObject(99, geom.Point{0, 0})
	eng := NewEngine(db, core.Options{MaxIterations: 4})
	matches := eng.KNN(q, 2, 0.5)
	for _, m := range matches {
		want := m.Object.ID <= 1 // the two closest
		if !m.Decided {
			t.Fatalf("certain-data query undecided for object %d", m.Object.ID)
		}
		if m.IsResult != want {
			t.Errorf("object %d: IsResult = %v, want %v", m.Object.ID, m.IsResult, want)
		}
	}
}

// TestKNNThresholdStopSavesIterations: with an easy threshold the
// engine must stop earlier than the iteration budget (the Figure 8
// effect).
func TestKNNThresholdStopSavesIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	db := smallDB(rng, 25, 32)
	q := randObj(rng, 500, 32, 5, 5, 1.5)
	eng := NewEngine(db, core.Options{MaxIterations: 10})
	total := 0
	for _, m := range eng.KNN(q, 3, 0.5) {
		total += m.Iterations
	}
	if total >= 10*len(db) {
		t.Errorf("threshold stop never engaged: %d total iterations", total)
	}
}

// TestRKNNAgreesWithExact mirrors the kNN test for the reverse query:
// P(DomCount(q, B) < k) computed with B as the reference.
func TestRKNNAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	db := smallDB(rng, 10, 16)
	q := randObj(rng, 500, 16, 5, 5, 1.5)
	eng := NewEngine(db, core.Options{MaxIterations: 8})
	for _, m := range eng.RKNN(q, 2, 0.5) {
		exact := exactTail(db, q, m.Object, 2)
		if !m.Prob.Contains(exact, 1e-9) {
			t.Fatalf("obj=%d: exact %g outside [%g, %g]", m.Object.ID, exact, m.Prob.LB, m.Prob.UB)
		}
		if m.Decided && math.Abs(exact-0.5) > 1e-9 && m.IsResult != (exact >= 0.5) {
			t.Fatalf("obj=%d: verdict %v but exact %g", m.Object.ID, m.IsResult, exact)
		}
	}
}

// TestInverseRankMatchesExactPDF: the rank distribution is the count
// PDF shifted by one (Corollary 3).
func TestInverseRankMatchesExactPDF(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	db := smallDB(rng, 8, 8)
	r := randObj(rng, 500, 8, 5, 5, 1.5)
	b := db[0]
	var cands []*uncertain.Object
	for _, o := range db[1:] {
		cands = append(cands, o)
	}
	exact := mc.DomCountPDF(geom.L2, cands, b, r, 0)
	eng := NewEngine(db, core.Options{MaxIterations: 10})
	rd := eng.InverseRank(b, r)
	for k, p := range exact {
		iv := rd.Bound(k + 1) // rank = count + 1
		if !iv.Contains(p, 1e-9) {
			t.Fatalf("P(Rank=%d): exact %g outside [%g, %g]", k+1, p, iv.LB, iv.UB)
		}
	}
	if iv := rd.Bound(0); iv.LB != 0 || iv.UB != 0 {
		t.Error("rank 0 must have zero probability")
	}
	if rd.Result == nil || rd.Object != b {
		t.Error("RankDistribution accessors wrong")
	}
}

// TestExpectedRankBoundsContainExact: the greedy mass-shifting bounds
// must bracket the exact expected rank, and converge to it.
func TestExpectedRankBoundsContainExact(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	db := smallDB(rng, 8, 8)
	r := randObj(rng, 500, 8, 5, 5, 1.5)
	b := db[0]
	var cands []*uncertain.Object
	for _, o := range db[1:] {
		cands = append(cands, o)
	}
	exact := mc.ExpectedRank(geom.L2, cands, b, r)
	for iters := 1; iters <= 8; iters++ {
		res := core.Run(db, b, r, core.Options{MaxIterations: iters})
		lo, hi := ExpectedRankBounds(res)
		if exact < lo-1e-9 || exact > hi+1e-9 {
			t.Fatalf("iters=%d: exact %g outside [%g, %g]", iters, exact, lo, hi)
		}
	}
	res := core.Run(db, b, r, core.Options{MaxIterations: 10})
	lo, hi := ExpectedRankBounds(res)
	if hi-lo > 1e-6 {
		t.Fatalf("expected-rank bounds did not converge: [%g, %g]", lo, hi)
	}
	if !almostEqual(lo, exact, 1e-6) {
		t.Fatalf("converged expected rank %g != exact %g", lo, exact)
	}
}

// TestRankByExpectedRankOrdersCertainData: on certain points the
// expected-rank ranking is the distance order.
func TestRankByExpectedRankOrdersCertainData(t *testing.T) {
	db := uncertain.Database{
		uncertain.PointObject(0, geom.Point{3, 0}),
		uncertain.PointObject(1, geom.Point{1, 0}),
		uncertain.PointObject(2, geom.Point{2, 0}),
	}
	q := uncertain.PointObject(99, geom.Point{0, 0})
	eng := NewEngine(db, core.Options{MaxIterations: 4})
	ranked := eng.RankByExpectedRank(q)
	wantOrder := []int{1, 2, 0}
	for i, r := range ranked {
		if r.Object.ID != wantOrder[i] {
			t.Fatalf("position %d: object %d, want %d", i, r.Object.ID, wantOrder[i])
		}
		if !almostEqual(r.ExpectedRankLB, float64(i+1), 1e-9) || !almostEqual(r.ExpectedRankUB, float64(i+1), 1e-9) {
			t.Errorf("object %d expected rank [%g, %g], want exactly %d",
				r.Object.ID, r.ExpectedRankLB, r.ExpectedRankUB, i+1)
		}
	}
}

// TestEngineWithoutIndexMatchesIndexed: linear and indexed engines must
// agree.
func TestEngineWithoutIndexMatchesIndexed(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	db := smallDB(rng, 15, 16)
	q := randObj(rng, 500, 16, 5, 5, 1.5)
	withIdx := NewEngine(db, core.Options{MaxIterations: 5})
	noIdx := &Engine{DB: db, Opts: core.Options{MaxIterations: 5}}
	a := withIdx.KNN(q, 3, 0.5)
	b := noIdx.KNN(q, 3, 0.5)
	if len(a) != len(b) {
		t.Fatalf("match counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Object != b[i].Object || a[i].IsResult != b[i].IsResult || a[i].Decided != b[i].Decided {
			t.Fatalf("match %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if !almostEqual(a[i].Prob.LB, b[i].Prob.LB, 1e-9) || !almostEqual(a[i].Prob.UB, b[i].Prob.UB, 1e-9) {
			t.Fatalf("match %d bounds differ", i)
		}
	}
}

// TestInvalidK: k < 1 yields no matches.
func TestInvalidK(t *testing.T) {
	rng := rand.New(rand.NewSource(306))
	db := smallDB(rng, 5, 4)
	q := randObj(rng, 500, 4, 5, 5, 1)
	eng := NewEngine(db, core.Options{MaxIterations: 2})
	if got := eng.KNN(q, 0, 0.5); got != nil {
		t.Error("KNN with k=0 returned matches")
	}
	if got := eng.RKNN(q, 0, 0.5); got != nil {
		t.Error("RKNN with k=0 returned matches")
	}
}

package query

import (
	"context"
	"fmt"
	"sync"
	"time"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/obs"
	"probprune/internal/rtree"
	"probprune/internal/uncertain"
	"probprune/internal/wal"
)

// Store is a concurrent, mutable uncertain-object store layered on the
// query engine: live ingest (Insert/Delete/Update) interleaves with
// snapshot-isolated queries. It is the serving-path counterpart of the
// frozen Engine — the paper's framework operated the way a production
// system runs it, with the database changing underneath the queries.
//
// # Snapshot isolation by copy-on-write
//
// Queries never lock out writers and writers never tear queries: a
// query binds to an immutable Snapshot (database slice + R-tree +
// decomposition cache) published under a read lock, and the first
// mutation after a snapshot was published detaches — it clones the
// R-tree (O(n)) and copies the object slice, then mutates the private
// copies. Consecutive mutations reuse the detached state, so a write
// burst pays one clone; consecutive queries reuse the published
// snapshot, so a read burst pays one publish. Every query therefore
// observes a database state that existed atomically — never a
// half-applied update — and returns results bit-identical to a fresh
// Engine built from that state, at any Parallelism.
//
// # Cross-query work reuse
//
// The store keeps one persistent, versioned core.DecompCache pinning
// the kd-tree decomposition of every database-resident object. Updates
// and deletes invalidate per object; queries read through a per-call
// overlay (query objects decompose into the overlay and die with it).
// Repeated queries against a stable database therefore stop
// re-splitting influence objects — the dominant shared work of the
// refinement loop.
type Store struct {
	opts core.Options

	mu      sync.RWMutex
	db      uncertain.Database // private storage; detached from snapshots
	index   *rtree.Tree[*uncertain.Object]
	byID    map[int]*uncertain.Object
	cache   *core.DecompCache
	version uint64
	snap    *Snapshot // published snapshot; nil after a mutation

	// obs is the store's query metric set; every snapshot engine the
	// store publishes records into it, so counts accumulate across
	// snapshots and mutations. Immutable after construction.
	obs *Metrics

	// journal, when non-nil, makes the store durable: every commit is
	// journaled before it is applied (see OpenStore). closed rejects
	// mutations after Close — they could no longer be journaled.
	journal *storeJournal
	closed  bool

	watchers    []watcher
	nextWatcher int
}

// NewStore builds a store over db (objects must have unique IDs; the
// slice is copied, the objects are shared and must not be mutated). The
// index is STR bulk-loaded in O(n log n). Opts configures every query
// the store serves, like Engine.Opts; Opts.SharedDecomps must be left
// unset — the store manages its own persistent cache.
func NewStore(db uncertain.Database, opts core.Options) (*Store, error) {
	if opts.SharedDecomps != nil {
		return nil, fmt.Errorf("store: Options.SharedDecomps must be unset (the store manages its own cache)")
	}
	s := &Store{
		opts:  opts,
		db:    make(uncertain.Database, 0, len(db)),
		byID:  make(map[int]*uncertain.Object, len(db)),
		cache: core.NewDecompCache(opts.MaxHeight),
		obs:   NewMetrics(),
	}
	for _, o := range db {
		if o == nil {
			return nil, fmt.Errorf("store: nil object")
		}
		if _, dup := s.byID[o.ID]; dup {
			return nil, fmt.Errorf("store: duplicate object ID %d", o.ID)
		}
		s.byID[o.ID] = o
		s.db = append(s.db, o)
		s.cache.Add(o)
	}
	s.index = bulkIndex(s.db)
	return s, nil
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.db)
}

// Version returns the mutation epoch: it increments on every
// Insert/Delete/Update, and a Snapshot carries the epoch it was
// published at.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Get returns the stored object with the given ID.
func (s *Store) Get(id int) (*uncertain.Object, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.byID[id]
	return o, ok
}

// ChangeKind identifies the mutation a Change record describes.
type ChangeKind uint8

const (
	// ChangeInsert: a new object entered the database.
	ChangeInsert ChangeKind = iota + 1
	// ChangeUpdate: the object carrying an ID was replaced.
	ChangeUpdate
	// ChangeDelete: an object left the database.
	ChangeDelete
)

// String returns a short human-readable kind name.
func (k ChangeKind) String() string {
	switch k {
	case ChangeInsert:
		return "insert"
	case ChangeUpdate:
		return "update"
	case ChangeDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// Change is one committed store mutation, delivered to Watch callbacks.
// Old is nil for inserts, New is nil for deletes; updates carry both
// (same ID, distinct objects). Snap is the immutable database state
// WITH the change applied — Snap.Version() == Version — so a consumer
// replaying the change stream can evaluate every version exactly, even
// when it lags behind the store head. Snap is a *Snapshot for Store
// changes and a *ShardedSnapshot for ShardedStore changes.
type Change struct {
	Version  uint64
	Kind     ChangeKind
	Old, New *uncertain.Object
	Snap     SnapshotView
}

// SnapshotView is the read side every snapshot publisher exposes: an
// immutable database state with a version stamp and a snapshot-bound
// query engine. *Snapshot (one Store) and *ShardedSnapshot (a
// ShardedStore's consistent cut across all shards) both implement it,
// which is what lets change-stream consumers — package cq's Monitor in
// particular — run unmodified over either backend.
type SnapshotView interface {
	// Version returns the mutation epoch the snapshot was published at.
	Version() uint64
	// Len returns the number of objects in the snapshot.
	Len() int
	// DB returns a copy of the snapshot's object slice (objects shared,
	// read-only).
	DB() uncertain.Database
	// Engine returns the snapshot-bound query engine; all queries on it
	// evaluate against exactly this state.
	Engine() *Engine
	// BatchKNN evaluates many kNN queries pooled on this snapshot.
	BatchKNN(ctx context.Context, reqs []KNNRequest) ([][]Match, error)
}

// watcher is one registered commit hook.
type watcher struct {
	id int
	fn func(Change)
}

// Watch registers a commit hook and returns, atomically with the
// registration, the snapshot of the current state: the callback will
// observe exactly the changes with Version > Snap.Version(), gaplessly
// and in version order. The returned stop function unregisters the
// hook.
//
// The callback runs synchronously inside the mutation, while the store
// lock is held: it must return quickly (hand the Change to a queue) and
// must not call back into the Store — package cq's Monitor is the
// intended consumer. While at least one watcher is registered every
// mutation publishes a snapshot, so a write burst pays one copy-on-write
// detach (an O(n) R-tree clone) per mutation instead of one per burst;
// that is the price of a gapless per-version change stream.
func (s *Store) Watch(fn func(Change)) (SnapshotView, func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextWatcher
	s.nextWatcher++
	s.watchers = append(s.watchers, watcher{id: id, fn: fn})
	stop := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, w := range s.watchers {
			if w.id == id {
				s.watchers = append(s.watchers[:i], s.watchers[i+1:]...)
				return
			}
		}
	}
	return s.snapshotLocked(), stop
}

// notifyLocked delivers a committed change to every watcher, in
// registration order. Requires s.mu held for writing, after the
// mutation was applied and the version incremented.
func (s *Store) notifyLocked(kind ChangeKind, old, new *uncertain.Object) {
	if len(s.watchers) == 0 {
		return
	}
	ch := Change{
		Version: s.version,
		Kind:    kind,
		Old:     old,
		New:     new,
		Snap:    s.snapshotLocked(),
	}
	for _, w := range s.watchers {
		w.fn(ch)
	}
}

// detachLocked makes the mutable state private again after a snapshot
// was published: the published snapshot keeps the old slice and tree,
// mutations proceed on copies. Requires s.mu held for writing.
func (s *Store) detachLocked() {
	if s.snap == nil {
		return
	}
	db := make(uncertain.Database, len(s.db))
	copy(db, s.db)
	s.db = db
	s.index = s.index.Clone()
	s.snap = nil
}

// Insert adds a new object; the ID must not be in use. The object is
// shared with the store and must not be mutated afterwards. On a
// durable store the commit is journaled before it is applied; a
// journaling error leaves the store unchanged. Under wal.SyncAlways the
// commit is acknowledged only once a group fsync covers its record —
// possibly a concurrent committer's fsync — waited for after the store
// lock is released, so committers share fsyncs instead of serializing
// on them. A group-fsync failure is reported after the commit was
// applied in memory; the journal wedges and every later commit fails.
func (s *Store) Insert(o *uncertain.Object) error {
	return s.insertOp(context.Background(), o, wal.OpInsert, 0)
}

// InsertCtx is Insert with a context: a trace attached via
// obs.WithTrace records the commit's durability wait (the span between
// journaling and the covering group fsync) as its WAL-wait phase. The
// context does not cancel the commit — a journaled commit always
// applies.
func (s *Store) InsertCtx(ctx context.Context, o *uncertain.Object) error {
	return s.insertOp(ctx, o, wal.OpInsert, 0)
}

// insertOp is the insert body shared by the public path and the sharded
// router (which passes the move op kinds and the router epoch for the
// shard journals).
func (s *Store) insertOp(ctx context.Context, o *uncertain.Object, op wal.Op, global uint64) error {
	if o == nil {
		return fmt.Errorf("store: nil object")
	}
	s.mu.Lock()
	if _, dup := s.byID[o.ID]; dup {
		s.mu.Unlock()
		return fmt.Errorf("store: duplicate object ID %d", o.ID)
	}
	seq, err := s.journalLocked(wal.Record{Op: op, Version: s.version + 1, Global: global, Obj: o})
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.detachLocked()
	s.addLocked(o)
	s.version++
	s.notifyLocked(ChangeInsert, nil, o)
	s.maybeCheckpointLocked()
	sj := s.journal
	s.mu.Unlock()
	return waitDurableTraced(ctx, sj, seq)
}

// waitDurableTraced is the post-lock durability wait of a commit,
// measured into the context's trace (when one is attached) as the
// WAL-wait phase. The wait itself is unconditional — tracing never
// changes commit semantics.
func waitDurableTraced(ctx context.Context, sj *storeJournal, seq uint64) error {
	if sj == nil || seq == 0 {
		return nil
	}
	tr := obs.TraceFrom(ctx)
	if tr == nil {
		return sj.waitDurable(seq)
	}
	start := time.Now()
	err := sj.waitDurable(seq)
	tr.AddWALWait(time.Since(start))
	return err
}

// addLocked links o into the slice, map, index and cache. Requires
// s.mu held for writing and the state detached.
func (s *Store) addLocked(o *uncertain.Object) {
	s.byID[o.ID] = o
	s.db = append(s.db, o)
	s.index.Insert(o.MBR, o)
	s.cache.Add(o)
}

// Delete removes the object with the given ID and reports whether one
// was stored. Journaling errors on a durable store surface through
// DeleteErr; Delete itself keeps the boolean contract and leaves the
// store unchanged when journaling fails.
func (s *Store) Delete(id int) bool {
	ok, _ := s.deleteOp(context.Background(), id, wal.OpDelete, 0)
	return ok
}

// DeleteErr is Delete with the journaling error exposed: ok reports
// whether the ID was stored, err a failure to journal the commit. The
// store is unchanged when err != nil, except a group-fsync failure
// under wal.SyncAlways, which is reported after the commit was applied
// in memory (ok stays true and the journal wedges).
func (s *Store) DeleteErr(id int) (bool, error) {
	return s.deleteOp(context.Background(), id, wal.OpDelete, 0)
}

// DeleteErrCtx is DeleteErr with a context carrying an optional trace
// (see InsertCtx).
func (s *Store) DeleteErrCtx(ctx context.Context, id int) (bool, error) {
	return s.deleteOp(ctx, id, wal.OpDelete, 0)
}

// deleteOp is the delete body shared by the public path and the sharded
// router.
func (s *Store) deleteOp(ctx context.Context, id int, op wal.Op, global uint64) (bool, error) {
	s.mu.Lock()
	o, ok := s.byID[id]
	if !ok {
		s.mu.Unlock()
		return false, nil
	}
	seq, err := s.journalLocked(wal.Record{Op: op, Version: s.version + 1, Global: global, ID: id})
	if err != nil {
		s.mu.Unlock()
		return false, err
	}
	s.detachLocked()
	s.removeLocked(o)
	s.version++
	s.notifyLocked(ChangeDelete, o, nil)
	s.maybeCheckpointLocked()
	sj := s.journal
	s.mu.Unlock()
	return true, waitDurableTraced(ctx, sj, seq)
}

// Update atomically replaces the object carrying o.ID with o: no query
// ever observes the database with the old object gone and the new one
// missing, or with both present. It returns an error when the ID is not
// stored (use Insert for new objects).
func (s *Store) Update(o *uncertain.Object) error {
	return s.updateOp(context.Background(), o, 0)
}

// UpdateCtx is Update with a context carrying an optional trace (see
// InsertCtx).
func (s *Store) UpdateCtx(ctx context.Context, o *uncertain.Object) error {
	return s.updateOp(ctx, o, 0)
}

// updateOp is the update body shared by the public path and the sharded
// router.
func (s *Store) updateOp(ctx context.Context, o *uncertain.Object, global uint64) error {
	if o == nil {
		return fmt.Errorf("store: nil object")
	}
	s.mu.Lock()
	old, ok := s.byID[o.ID]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("store: update of unknown object ID %d", o.ID)
	}
	seq, err := s.journalLocked(wal.Record{Op: wal.OpUpdate, Version: s.version + 1, Global: global, Obj: o})
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.detachLocked()
	s.replaceLocked(old, o)
	s.version++
	s.notifyLocked(ChangeUpdate, old, o)
	s.maybeCheckpointLocked()
	sj := s.journal
	s.mu.Unlock()
	return waitDurableTraced(ctx, sj, seq)
}

// replaceLocked swaps old for o in the slice, map, index and cache.
// Requires s.mu held for writing and the state detached.
func (s *Store) replaceLocked(old, o *uncertain.Object) {
	// Replace the slot in place: the object keeps its database-order
	// position (query results are in database order) and the update
	// avoids the O(n) slice shift of a remove-and-append.
	for i, x := range s.db {
		if x == old {
			s.db[i] = o
			break
		}
	}
	s.byID[o.ID] = o
	s.index.Delete(old.MBR, old)
	s.index.Insert(o.MBR, o)
	s.cache.Invalidate(old)
	s.cache.Add(o)
}

// removeLocked unlinks o from the slice, map, index and cache.
// Requires s.mu held for writing and the state detached.
func (s *Store) removeLocked(o *uncertain.Object) {
	for i, x := range s.db {
		if x == o {
			s.db = append(s.db[:i], s.db[i+1:]...)
			break
		}
	}
	delete(s.byID, o.ID)
	s.index.Delete(o.MBR, o)
	s.cache.Invalidate(o)
}

// Snapshot publishes (or returns the already-published) immutable view
// of the current database state. Snapshots stay valid — and their
// queries consistent — regardless of later mutations.
func (s *Store) Snapshot() *Snapshot {
	s.mu.RLock()
	snap := s.snap
	s.mu.RUnlock()
	if snap != nil {
		return snap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// snapshotLocked publishes (or returns) the snapshot of the current
// state. Requires s.mu held for writing.
func (s *Store) snapshotLocked() *Snapshot {
	if s.snap == nil {
		s.snap = &Snapshot{
			db:      s.db,
			index:   s.index,
			cache:   s.cache,
			version: s.version,
			opts:    s.opts,
			obs:     s.obs,
		}
	}
	return s.snap
}

// Metrics returns the store's query metric set: per-kind latency
// histograms and filter-economy counters accumulated across every
// snapshot engine the store has published. See Metrics.Snapshot for the
// flat map the server surfaces.
func (s *Store) Metrics() *Metrics { return s.obs }

// SetRecorder arms (or, with nil, disarms) the store's flight
// recorder: slow queries above the SetSlowQueryThreshold record their
// trace anatomy, and a durable store's checkpoint lifecycle and
// durability events (pin, install, supersede, group-commit batches,
// fsync stalls, deferred errors) flow into the same ring. Safe to call
// while the store serves.
func (s *Store) SetRecorder(rec *obs.Recorder) {
	s.obs.SetRecorder(rec)
	s.mu.RLock()
	sj := s.journal
	s.mu.RUnlock()
	sj.setRecorder(rec)
}

// SetSlowQueryThreshold arms the flight-recorder slow-query capture
// (see Metrics.SetSlowQueryThreshold). <= 0 disarms.
func (s *Store) SetSlowQueryThreshold(d time.Duration) {
	s.obs.SetSlowQueryThreshold(d)
}

// WALStats returns a snapshot of the journal metrics of a durable
// store (append/fsync/checkpoint counts and latencies); ok is false on
// an in-memory store.
func (s *Store) WALStats() (wal.MetricsSnapshot, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.journal == nil {
		return wal.MetricsSnapshot{}, false
	}
	return s.journal.j.MetricsSnapshot(), true
}

// Snapshot is one immutable database state published by a Store. All
// queries on one snapshot see exactly the same objects and share the
// store's persistent decomposition cache through one overlay.
type Snapshot struct {
	db      uncertain.Database
	index   *rtree.Tree[*uncertain.Object]
	cache   *core.DecompCache
	version uint64
	opts    core.Options
	obs     *Metrics

	engineOnce sync.Once
	engine     *Engine

	// Shard-stats cache (statsOnce): the index root MBR and whether
	// every resident object certainly exists. A scatter-gather router
	// probes these once per snapshot to decide whole shards wholesale —
	// the snapshot is immutable, so the answers never go stale.
	statsOnce  sync.Once
	rootMBR    geom.Rect
	nonEmpty   bool
	allCertain bool
}

// shardStats returns the cached root MBR, the all-certain flag and
// whether the snapshot is non-empty.
func (sn *Snapshot) shardStats() (geom.Rect, bool, bool) {
	sn.statsOnce.Do(func() {
		sn.rootMBR, sn.nonEmpty = sn.index.Bounds()
		sn.allCertain = true
		for _, o := range sn.db {
			if o.ExistenceProb() < 1 {
				sn.allCertain = false
				break
			}
		}
	})
	return sn.rootMBR, sn.allCertain, sn.nonEmpty
}

// Version returns the store mutation epoch the snapshot was published
// at.
func (sn *Snapshot) Version() uint64 { return sn.version }

// Len returns the number of objects in the snapshot.
func (sn *Snapshot) Len() int { return len(sn.db) }

// DB returns a copy of the snapshot's object slice (the objects are
// shared and must be treated as read-only).
func (sn *Snapshot) DB() uncertain.Database {
	db := make(uncertain.Database, len(sn.db))
	copy(db, sn.db)
	return db
}

// Engine returns the snapshot-bound query engine. All queries issued on
// it evaluate against this snapshot's state and reuse the store's
// persistent decomposition cache (through per-query overlays); results
// are bit-identical to a fresh Engine built from the same state, at any
// Parallelism.
func (sn *Snapshot) Engine() *Engine {
	sn.engineOnce.Do(func() {
		opts := sn.opts
		opts.SharedDecomps = sn.cache
		sn.engine = &Engine{DB: sn.db, Index: sn.index, Opts: opts, Obs: sn.obs}
	})
	return sn.engine
}

// Store query methods: each binds to the current snapshot and delegates
// to the snapshot engine, so concurrent mutations never affect a query
// in flight.

// KNN answers the probabilistic threshold kNN query on the current
// snapshot (see Engine.KNN).
func (s *Store) KNN(q *uncertain.Object, k int, tau float64) []Match {
	return s.Snapshot().Engine().KNN(q, k, tau)
}

// KNNCtx is KNN with cancellation.
func (s *Store) KNNCtx(ctx context.Context, q *uncertain.Object, k int, tau float64) ([]Match, error) {
	return s.Snapshot().Engine().KNNCtx(ctx, q, k, tau)
}

// RKNN answers the probabilistic threshold reverse kNN query on the
// current snapshot (see Engine.RKNN).
func (s *Store) RKNN(q *uncertain.Object, k int, tau float64) []Match {
	return s.Snapshot().Engine().RKNN(q, k, tau)
}

// RKNNCtx is RKNN with cancellation.
func (s *Store) RKNNCtx(ctx context.Context, q *uncertain.Object, k int, tau float64) ([]Match, error) {
	return s.Snapshot().Engine().RKNNCtx(ctx, q, k, tau)
}

// TopKNN answers the top-m probable kNN query on the current snapshot
// (see Engine.TopKNN).
func (s *Store) TopKNN(q *uncertain.Object, k, m int) []Match {
	return s.Snapshot().Engine().TopKNN(q, k, m)
}

// TopKNNCtx is TopKNN with cancellation.
func (s *Store) TopKNNCtx(ctx context.Context, q *uncertain.Object, k, m int) ([]Match, error) {
	return s.Snapshot().Engine().TopKNNCtx(ctx, q, k, m)
}

// InverseRank computes the probabilistic inverse ranking on the current
// snapshot (see Engine.InverseRank).
func (s *Store) InverseRank(b, r *uncertain.Object) *RankDistribution {
	return s.Snapshot().Engine().InverseRank(b, r)
}

// RankByExpectedRank ranks the current snapshot by expected rank (see
// Engine.RankByExpectedRank).
func (s *Store) RankByExpectedRank(q *uncertain.Object) []Ranked {
	return s.Snapshot().Engine().RankByExpectedRank(q)
}

// RankByExpectedRankCtx is RankByExpectedRank with cancellation.
func (s *Store) RankByExpectedRankCtx(ctx context.Context, q *uncertain.Object) ([]Ranked, error) {
	return s.Snapshot().Engine().RankByExpectedRankCtx(ctx, q)
}

// UKRanks computes the U-kRanks winners on the current snapshot (see
// Engine.UKRanks).
func (s *Store) UKRanks(q *uncertain.Object, k int) []RankWinner {
	return s.Snapshot().Engine().UKRanks(q, k)
}

// UKRanksCtx is UKRanks with cancellation.
func (s *Store) UKRanksCtx(ctx context.Context, q *uncertain.Object, k int) ([]RankWinner, error) {
	return s.Snapshot().Engine().UKRanksCtx(ctx, q, k)
}

// Batch runs fn against an engine bound to one snapshot: every query fn
// issues sees the same database state and reuses the store's persistent
// decomposition cache (each query reads it through its own overlay, so
// database-resident objects are shared, query objects are not). Use it
// to evaluate a mixed query batch atomically; for many kNN queries,
// BatchKNN additionally pools the candidate runs.
func (s *Store) Batch(fn func(*Engine)) {
	fn(s.Snapshot().Engine())
}

// BatchCtx is Batch with cancellation: fn receives the context along
// with the snapshot-bound engine and is expected to thread it through
// the ...Ctx query variants it issues. BatchCtx returns ctx.Err()
// without invoking fn when the context is already done, and otherwise
// returns whatever fn returns — typically the first query error, which
// is ctx.Err() when a query inside the batch was cancelled.
func (s *Store) BatchCtx(ctx context.Context, fn func(context.Context, *Engine) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return fn(ctx, s.Snapshot().Engine())
}

// KNNRequest is one query of a BatchKNN call.
type KNNRequest struct {
	// Q is the query reference object.
	Q *uncertain.Object
	// K is the kNN parameter.
	K int
	// Tau is the probability threshold.
	Tau float64
}

// BatchKNN evaluates many kNN queries on ONE snapshot: the candidate
// IDCA runs of all requests are poured into a single worker pool
// (Options.Parallelism workers total, not per query) and share one
// decomposition cache overlay, so common influence objects and repeated
// query objects are decomposed once for the whole batch. Results[i]
// corresponds to reqs[i] and is bit-identical to Store.KNNCtx(reqs[i])
// issued against the same snapshot.
func (s *Store) BatchKNN(ctx context.Context, reqs []KNNRequest) ([][]Match, error) {
	return s.Snapshot().BatchKNN(ctx, reqs)
}

// BatchKNN is Store.BatchKNN pinned to this snapshot.
func (sn *Snapshot) BatchKNN(ctx context.Context, reqs []KNNRequest) ([][]Match, error) {
	return batchKNN(sn.Engine(), ctx, reqs)
}

// batchKNN is the snapshot-agnostic batch body, shared by Snapshot and
// ShardedSnapshot: the engine already carries the snapshot binding (and
// the scatter-gather plane, for sharded snapshots).
func batchKNN(e *Engine, ctx context.Context, reqs []KNNRequest) ([][]Match, error) {
	tr, pooled := e.Obs.traceFor(ctx)
	start := time.Now()
	// One cache overlay for the whole batch: influence objects come from
	// the persistent store cache, repeated query objects are decomposed
	// once per batch. Preparation (candidate scan + preselection
	// traversal per request) runs on the pool too — it only reads the
	// snapshot — so a large batch has no serial prefix.
	cache := e.queryCache()
	jobs := make([]*knnJob, len(reqs))
	if err := forEach(ctx, e.parallelism(), len(reqs), func(i int) {
		jobs[i] = e.newKNNJob(reqs[i].Q, reqs[i].K, reqs[i].Tau, cache)
	}); err != nil {
		return nil, err
	}
	total := 0
	for _, j := range jobs {
		j.tr = tr
		total += len(j.cands)
	}
	tr.AddCandidates(total)
	e.Obs.countCandidates(total)
	tr.AddPrepare(time.Since(start))
	evalStart := time.Now()
	// Flatten every request's candidates into one index space and run
	// them on a single pool: small queries do not serialize behind big
	// ones, and the pool never idles while work remains.
	flat := make([]func(), 0, total)
	for _, j := range jobs {
		j := j
		for i := range j.cands {
			i := i
			flat = append(flat, func() { j.eval(i) })
		}
	}
	if err := forEach(ctx, e.parallelism(), len(flat), func(i int) { flat[i]() }); err != nil {
		return nil, err
	}
	tr.AddEval(time.Since(evalStart))
	recordCache(e.Obs, tr, cache)
	e.Obs.observe(kindBatchKNN, start, tr, pooled)
	out := make([][]Match, len(jobs))
	for i, j := range jobs {
		out[i] = j.matches
	}
	return out, nil
}

package query

import (
	"context"
	"time"

	"probprune/internal/gf"
	"probprune/internal/uncertain"
)

// This file implements the U-kRanks ranking semantics (Soliman &
// Ilyas [25]; also discussed by Li et al. [19]) on top of the IDCA
// bounds: the rank-i winner is the object most likely to appear at
// exactly rank i of the similarity ranking. Corollary 3 reduces
// P(Rank(B) = i) to P(DomCount(B) = i−1), so the winners fall directly
// out of the domination-count PDFs the framework bounds anyway — a
// demonstration of the paper's claim that the domination count answers
// "a wide range of probabilistic similarity queries".

// RankWinner is the U-kRanks answer for one rank position.
type RankWinner struct {
	// Rank is the 1-based ranking position.
	Rank int
	// Object is the most probable occupant of the position.
	Object *uncertain.Object
	// Prob bounds P(Rank(Object) = Rank).
	Prob gf.Interval
	// Decided reports whether the winner is unambiguous: its lower
	// bound is not exceeded by any other object's upper bound.
	Decided bool
}

// UKRanks computes the U-kRanks winners for ranks 1..k with respect to
// the reference q: for each rank, the object maximizing
// P(DomCount = rank−1). Winners are chosen by the midpoint of the
// probability bounds; Decided indicates whether the bounds alone
// already separate the winner.
func (e *Engine) UKRanks(q *uncertain.Object, k int) []RankWinner {
	winners, _ := e.UKRanksCtx(context.Background(), q, k)
	return winners
}

// UKRanksCtx is UKRanks with cancellation and concurrent candidate
// evaluation on the query executor.
func (e *Engine) UKRanksCtx(ctx context.Context, q *uncertain.Object, k int) ([]RankWinner, error) {
	if k < 1 {
		return nil, nil
	}
	tr, pooled := e.Obs.traceFor(ctx)
	start := time.Now()
	type entry struct {
		obj    *uncertain.Object
		bounds []gf.Interval // bounds[i] = P(Rank = i+1)
		offset int           // first rank with non-zero probability − 1
	}
	cands := e.candidates(q)
	cache := e.queryCache()
	tr.AddCandidates(len(cands))
	e.Obs.countCandidates(len(cands))
	tr.AddPrepare(time.Since(start))
	entries := make([]entry, len(cands))
	evalStart := time.Now()
	err := forEach(ctx, e.parallelism(), len(cands), func(i int) {
		b := cands[i]
		opts := e.runOpts()
		opts.KMax = k // ranks beyond k are irrelevant
		opts.SharedDecomps = cache
		res := e.run(b, q, opts)
		tr.CountRefined(len(res.Iterations))
		e.Obs.countRefined(len(res.Iterations))
		entries[i] = entry{
			obj:    b,
			bounds: res.Bounds,
			offset: res.CountOffset(),
		}
	})
	if err != nil {
		return nil, err
	}
	tr.AddEval(time.Since(evalStart))
	recordCache(e.Obs, tr, cache)
	defer e.Obs.observe(kindUKRanks, start, tr, pooled)
	probAt := func(en entry, rank int) gf.Interval {
		i := rank - 1 - en.offset // count index
		if i < 0 || i >= len(en.bounds) {
			return gf.Interval{}
		}
		return en.bounds[i]
	}
	winners := make([]RankWinner, 0, k)
	for rank := 1; rank <= k; rank++ {
		bestIdx, bestMid := -1, -1.0
		for i, en := range entries {
			iv := probAt(en, rank)
			mid := iv.LB + iv.UB
			if mid > bestMid || (mid == bestMid && bestIdx >= 0 && en.obj.ID < entries[bestIdx].obj.ID) {
				bestIdx, bestMid = i, mid
			}
		}
		if bestIdx < 0 {
			break
		}
		best := probAt(entries[bestIdx], rank)
		decided := true
		for i, en := range entries {
			if i == bestIdx {
				continue
			}
			if probAt(en, rank).UB > best.LB {
				decided = false
				break
			}
		}
		winners = append(winners, RankWinner{
			Rank:    rank,
			Object:  entries[bestIdx].obj,
			Prob:    best,
			Decided: decided,
		})
	}
	return winners, nil
}

// GlobalTopK is a convenience wrapper: the distinct objects appearing
// as U-kRanks winners for ranks 1..k, in rank order of their first win.
func (e *Engine) GlobalTopK(q *uncertain.Object, k int) []*uncertain.Object {
	seen := map[int]bool{}
	var out []*uncertain.Object
	for _, w := range e.UKRanks(q, k) {
		if !seen[w.Object.ID] {
			seen[w.Object.ID] = true
			out = append(out, w.Object)
		}
	}
	return out
}

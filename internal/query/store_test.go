package query

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/uncertain"
	"probprune/internal/workload"
)

func storeTestDB(t *testing.T, n int, seed int64) uncertain.Database {
	t.Helper()
	db, err := workload.Synthetic(workload.SyntheticConfig{N: n, Samples: 6, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func randObject(t *testing.T, rng *rand.Rand, id int) *uncertain.Object {
	t.Helper()
	pts := make([]geom.Point, 5)
	cx, cy := rng.Float64(), rng.Float64()
	for i := range pts {
		pts[i] = geom.Point{cx + rng.Float64()*0.05, cy + rng.Float64()*0.05}
	}
	o, err := uncertain.NewObject(id, pts)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// mutateStore applies a deterministic burst of Insert/Update/Delete.
func mutateStore(t *testing.T, s *Store, rng *rand.Rand, nextID *int, steps int) {
	t.Helper()
	for i := 0; i < steps; i++ {
		switch rng.Intn(3) {
		case 0:
			if err := s.Insert(randObject(t, rng, *nextID)); err != nil {
				t.Fatal(err)
			}
			*nextID++
		case 1:
			if s.Len() > 0 {
				snap := s.Snapshot().DB()
				o := snap[rng.Intn(len(snap))]
				if err := s.Update(randObject(t, rng, o.ID)); err != nil {
					t.Fatal(err)
				}
			}
		default:
			if s.Len() > 4 {
				snap := s.Snapshot().DB()
				if !s.Delete(snap[rng.Intn(len(snap))].ID) {
					t.Fatal("delete of existing ID failed")
				}
			}
		}
	}
}

// TestStoreEquivalence is the acceptance test of the Store: after an
// arbitrary mutation history, every query on a Store snapshot must be
// bit-identical to the same query on a fresh Engine built from the same
// state — at any Parallelism, with and without the persistent cache
// warm.
func TestStoreEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	db := storeTestDB(t, 40, 41)
	for _, par := range []int{1, 4} {
		par := par
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			opts := core.Options{MaxIterations: 4, Parallelism: par}
			s, err := NewStore(db, opts)
			if err != nil {
				t.Fatal(err)
			}
			nextID := 10000
			mutateStore(t, s, rng, &nextID, 30)

			q := randObject(t, rng, -1)
			snap := s.Snapshot()
			fresh := NewEngine(snap.DB(), opts)

			// Run every query twice on the store: the second pass reuses
			// decompositions the first pass pinned — results must not move.
			for pass := 0; pass < 2; pass++ {
				if got, want := s.KNN(q, 3, 0.5), fresh.KNN(q, 3, 0.5); !reflect.DeepEqual(got, want) {
					t.Fatalf("pass %d: KNN store != fresh engine\n got %+v\nwant %+v", pass, got, want)
				}
				if got, want := s.RKNN(q, 2, 0.3), fresh.RKNN(q, 2, 0.3); !reflect.DeepEqual(got, want) {
					t.Fatalf("pass %d: RKNN store != fresh engine", pass)
				}
				if got, want := s.TopKNN(q, 3, 4), fresh.TopKNN(q, 3, 4); !reflect.DeepEqual(got, want) {
					t.Fatalf("pass %d: TopKNN store != fresh engine", pass)
				}
				if got, want := s.RankByExpectedRank(q), fresh.RankByExpectedRank(q); !reflect.DeepEqual(got, want) {
					t.Fatalf("pass %d: RankByExpectedRank store != fresh engine", pass)
				}
				if got, want := s.UKRanks(q, 3), fresh.UKRanks(q, 3); !reflect.DeepEqual(got, want) {
					t.Fatalf("pass %d: UKRanks store != fresh engine", pass)
				}
				b := snap.DB()[0]
				gotIR, wantIR := s.InverseRank(b, q), fresh.InverseRank(b, q)
				if gotIR.MinRank != wantIR.MinRank || !reflect.DeepEqual(gotIR.Ranks, wantIR.Ranks) {
					t.Fatalf("pass %d: InverseRank store != fresh engine", pass)
				}
			}
		})
	}
}

// TestStoreEquivalenceAcrossMutations re-checks the bit-identical
// guarantee at several points of a mutation history, so the
// incrementally maintained index is compared against bulk-loaded trees
// of many different shapes.
func TestStoreEquivalenceAcrossMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	opts := core.Options{MaxIterations: 3}
	s, err := NewStore(storeTestDB(t, 25, 97), opts)
	if err != nil {
		t.Fatal(err)
	}
	nextID := 10000
	q := randObject(t, rng, -1)
	for round := 0; round < 6; round++ {
		mutateStore(t, s, rng, &nextID, 8)
		snap := s.Snapshot()
		fresh := NewEngine(snap.DB(), opts)
		if got, want := s.KNN(q, 2, 0.4), fresh.KNN(q, 2, 0.4); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: KNN store != fresh engine", round)
		}
	}
}

// TestStoreSnapshotStability verifies snapshot isolation in the
// sequential case: a snapshot taken before mutations keeps answering
// from the old state.
func TestStoreSnapshotStability(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	opts := core.Options{MaxIterations: 3}
	s, err := NewStore(storeTestDB(t, 20, 5), opts)
	if err != nil {
		t.Fatal(err)
	}
	q := randObject(t, rng, -1)
	snap := s.Snapshot()
	before, err := snap.Engine().KNNCtx(context.Background(), q, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	v := snap.Version()

	nextID := 10000
	mutateStore(t, s, rng, &nextID, 20)
	if s.Version() == v {
		t.Fatal("mutations did not advance the store version")
	}

	after, err := snap.Engine().KNNCtx(context.Background(), q, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("snapshot answers changed after store mutations")
	}
	if snap.Len() == s.Len() && s.Version() != v {
		// Lengths can coincide by chance; the real check is above.
		t.Log("snapshot and store happen to have equal lengths")
	}
}

// TestBatchKNN checks that a batch returns, per request, exactly what
// the one-at-a-time path returns on the same snapshot.
func TestBatchKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	opts := core.Options{MaxIterations: 3, Parallelism: 3}
	s, err := NewStore(storeTestDB(t, 30, 13), opts)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []KNNRequest{
		{Q: randObject(t, rng, -1), K: 3, Tau: 0.5},
		{Q: randObject(t, rng, -2), K: 1, Tau: 0.8},
		{Q: randObject(t, rng, -3), K: 5, Tau: 0.2},
		{Q: randObject(t, rng, -4), K: 0, Tau: 0.5}, // degenerate: k < 1
	}
	got, err := s.BatchKNN(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("batch returned %d results for %d requests", len(got), len(reqs))
	}
	snap := s.Snapshot()
	for i, r := range reqs {
		want, err := snap.Engine().KNNCtx(context.Background(), r.Q, r.K, r.Tau)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("request %d: batch result differs from KNNCtx", i)
		}
	}
	// Cancellation must propagate.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.BatchKNN(ctx, reqs); err == nil {
		t.Fatal("cancelled batch returned no error")
	}
}

// TestStoreAPIErrors covers the mutation error paths.
func TestStoreAPIErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, err := NewStore(nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := randObject(t, rng, 1)
	if err := s.Insert(o); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(randObject(t, rng, 1)); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
	if err := s.Update(randObject(t, rng, 2)); err == nil {
		t.Fatal("update of unknown ID succeeded")
	}
	if err := s.Insert(nil); err == nil {
		t.Fatal("nil insert succeeded")
	}
	if s.Delete(99) {
		t.Fatal("delete of unknown ID succeeded")
	}
	if got, ok := s.Get(1); !ok || got != o {
		t.Fatal("Get(1) did not return the stored object")
	}
	if !s.Delete(1) {
		t.Fatal("delete of stored ID failed")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", s.Len())
	}
	if _, err := NewStore(uncertain.Database{o, randObject(t, rng, 1)}, core.Options{}); err == nil {
		t.Fatal("NewStore accepted duplicate IDs")
	}
	if _, err := NewStore(nil, core.Options{SharedDecomps: core.NewDecompCache(0)}); err == nil {
		t.Fatal("NewStore accepted a caller-supplied SharedDecomps cache")
	}
}

package query

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"probprune/internal/mc"
	"probprune/internal/uncertain"
)

// This file is the cross-shard equivalence suite: on the same seeded
// random databases the query-layer oracle uses, every verdict and every
// probability bound a ShardedStore reports — KNN, RkNN, TopKNN,
// InverseRank — must be bit-identical (exact float equality, not a
// tolerance) to the unsharded Store and to a fresh Engine, at every
// shard count and under both partitioners, and the bounds must contain
// the exact internal/mc value. This is the acceptance criterion of the
// sharding design: scatter-gather with canonical bound merging is not
// an approximation of the monolithic engine, it IS the monolithic
// engine, differently traversed.

var shardCounts = []int{1, 2, 4, 8}

// shardedCase builds the backends under comparison over one oracle
// database: a fresh Engine, an unsharded Store, and one ShardedStore
// per shard count (hash partitioning; odd seeds use spatial stripes to
// cover skewed shard sizes, including empty shards).
type shardedCase struct {
	oc      *oracleCase
	store   *Store
	sharded map[int]*ShardedStore
}

func newShardedCase(t *testing.T, seed int64, parallelism int) *shardedCase {
	t.Helper()
	oc := newOracleCase(t, seed, parallelism)
	store, err := NewStore(oc.db, oc.eng.Opts)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	sc := &shardedCase{oc: oc, store: store, sharded: map[int]*ShardedStore{}}
	var part ShardFunc
	if seed%2 == 1 {
		// Stripes over a band narrower than the data: border shards get
		// the overflow, interior shards can end up empty.
		part = StripeShards(0, 0.25, 0.75)
	}
	for _, n := range shardCounts {
		ss, err := NewShardedStore(oc.db, ShardedOptions{Shards: n, Partition: part}, oc.eng.Opts)
		if err != nil {
			t.Fatalf("seed %d shards %d: %v", seed, n, err)
		}
		sc.sharded[n] = ss
	}
	return sc
}

// requireSameMatches asserts exact equality of two match slices,
// including object identity, bounds, verdicts and iteration counts.
func requireSameMatches(t *testing.T, seed int64, label string, want, got []Match) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		for i := range want {
			if i < len(got) && !reflect.DeepEqual(want[i], got[i]) {
				t.Fatalf("seed %d: %s diverges at match %d: want %+v, got %+v (replay with this seed)",
					seed, label, i, want[i], got[i])
			}
		}
		t.Fatalf("seed %d: %s diverges: %d vs %d matches", seed, label, len(want), len(got))
	}
}

// TestShardedEquivalenceKNN: KNN verdicts and bounds bit-identical
// across Engine, Store and every shard count, and contained by the
// exact oracle.
func TestShardedEquivalenceKNN(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := newShardedCase(t, seed, 1+int(seed%3))
			k := 2 + int(seed%3)
			tau := []float64{0.3, 0.5, 0.8}[seed%3]
			want := sc.oc.eng.KNN(sc.oc.q, k, tau)
			requireSameMatches(t, seed, "Store KNN", want, sc.store.KNN(sc.oc.q, k, tau))
			for _, n := range shardCounts {
				got := sc.sharded[n].KNN(sc.oc.q, k, tau)
				requireSameMatches(t, seed, fmt.Sprintf("ShardedStore(%d) KNN", n), want, got)
				for _, m := range got {
					exact := sc.oc.exactCDF(m.Object, sc.oc.q, k)
					checkContains(t, seed, fmt.Sprintf("sharded(%d) KNN object %d", n, m.Object.ID),
						m.Prob.LB, m.Prob.UB, exact)
				}
			}
		})
	}
}

// TestShardedEquivalenceRKNN: RkNN verdicts and bounds bit-identical
// and oracle-contained.
func TestShardedEquivalenceRKNN(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := newShardedCase(t, seed, 1)
			k := 1 + int(seed%3)
			const tau = 0.4
			want := sc.oc.eng.RKNN(sc.oc.q, k, tau)
			requireSameMatches(t, seed, "Store RKNN", want, sc.store.RKNN(sc.oc.q, k, tau))
			for _, n := range shardCounts {
				got := sc.sharded[n].RKNN(sc.oc.q, k, tau)
				requireSameMatches(t, seed, fmt.Sprintf("ShardedStore(%d) RKNN", n), want, got)
				for _, m := range got {
					exact := sc.oc.exactCDF(sc.oc.q, m.Object, k)
					checkContains(t, seed, fmt.Sprintf("sharded(%d) RKNN object %d", n, m.Object.ID),
						m.Prob.LB, m.Prob.UB, exact)
				}
			}
		})
	}
}

// TestShardedEquivalenceTopKNN: the round-stepped top-m selection —
// the query most sensitive to evaluation order — is bit-identical too
// (oracle containment of the monolithic result is covered by
// TestOracleTopKNN; bit-equality transfers it to the sharded one).
func TestShardedEquivalenceTopKNN(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := newShardedCase(t, seed, 1+int(seed%2))
			k, m := 3, 3
			want := sc.oc.eng.TopKNN(sc.oc.q, k, m)
			requireSameMatches(t, seed, "Store TopKNN", want, sc.store.TopKNN(sc.oc.q, k, m))
			for _, n := range shardCounts {
				requireSameMatches(t, seed, fmt.Sprintf("ShardedStore(%d) TopKNN", n),
					want, sc.sharded[n].TopKNN(sc.oc.q, k, m))
			}
		})
	}
}

// TestShardedEquivalenceInverseRank: the full rank distribution of
// InverseRank — window offset and every interval — is bit-identical
// across backends and oracle-contained.
func TestShardedEquivalenceInverseRank(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := newShardedCase(t, seed, 1)
			for trial := 0; trial < 2; trial++ {
				b := sc.oc.db[(int(seed)+trial*5)%len(sc.oc.db)]
				want := sc.oc.eng.InverseRank(b, sc.oc.q)
				check := func(label string, got *RankDistribution) {
					t.Helper()
					if got.Object != want.Object || got.MinRank != want.MinRank ||
						!reflect.DeepEqual(got.Ranks, want.Ranks) {
						t.Fatalf("seed %d: %s InverseRank(%d) diverges: want MinRank %d ranks %v, got MinRank %d ranks %v",
							seed, label, b.ID, want.MinRank, want.Ranks, got.MinRank, got.Ranks)
					}
				}
				check("Store", sc.store.InverseRank(b, sc.oc.q))
				// Containment against the exact count PDF; bit-equality
				// transfers it to every backend.
				cands := make([]*uncertain.Object, 0, len(sc.oc.db))
				for _, o := range sc.oc.db {
					if o != b && o != sc.oc.q {
						cands = append(cands, o)
					}
				}
				pdf := mc.DomCountPDF(sc.oc.norm, cands, b, sc.oc.q, 0)
				for _, n := range shardCounts {
					got := sc.sharded[n].InverseRank(b, sc.oc.q)
					check(fmt.Sprintf("ShardedStore(%d)", n), got)
					for j, iv := range got.Ranks {
						rank := got.MinRank + j
						exact := 0.0
						if rank-1 < len(pdf) {
							exact = pdf[rank-1]
						}
						checkContains(t, seed, fmt.Sprintf("sharded(%d) InverseRank object %d rank %d", n, b.ID, rank),
							iv.LB, iv.UB, exact)
					}
				}
			}
		})
	}
}

// TestShardedEquivalenceAfterMutations replays an identical mutation
// trace against a Store and ShardedStores at every shard count —
// including rebalancing moves on the sharded side, which must be
// result-invariant — and requires bit-identical KNN and RkNN results at
// every step.
func TestShardedEquivalenceAfterMutations(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := newShardedCase(t, seed, 2)
			rng := rand.New(rand.NewSource(seed * 31))
			nextID := 10_000
			k := 2 + int(seed%2)
			for step := 0; step < 10; step++ {
				switch rng.Intn(3) {
				case 0:
					o := randObject(t, rng, nextID)
					nextID++
					if err := sc.store.Insert(o); err != nil {
						t.Fatal(err)
					}
					for _, ss := range sc.sharded {
						if err := ss.Insert(o); err != nil {
							t.Fatal(err)
						}
					}
				case 1:
					db := sc.store.Snapshot().DB()
					o := randObject(t, rng, db[rng.Intn(len(db))].ID)
					if err := sc.store.Update(o); err != nil {
						t.Fatal(err)
					}
					for _, ss := range sc.sharded {
						if err := ss.Update(o); err != nil {
							t.Fatal(err)
						}
					}
				default:
					db := sc.store.Snapshot().DB()
					if len(db) < 6 {
						continue
					}
					id := db[rng.Intn(len(db))].ID
					if !sc.store.Delete(id) {
						t.Fatalf("store delete of %d failed", id)
					}
					for n, ss := range sc.sharded {
						if !ss.Delete(id) {
							t.Fatalf("sharded(%d) delete of %d failed", n, id)
						}
					}
				}
				// Interleave result-invariant migrations on the sharded side
				// only: half the steps move a random object, every fifth
				// step rebalances outright.
				for n, ss := range sc.sharded {
					if rng.Intn(2) == 0 {
						db := ss.Snapshot().DB()
						if len(db) > 0 {
							if err := ss.Move(db[rng.Intn(len(db))].ID, rng.Intn(n)); err != nil {
								t.Fatal(err)
							}
						}
					}
					if step%5 == 4 {
						ss.Rebalance()
					}
				}
				want := sc.store.KNN(sc.oc.q, k, 0.4)
				wantR := sc.store.RKNN(sc.oc.q, k, 0.4)
				for _, n := range shardCounts {
					requireSameMatches(t, seed, fmt.Sprintf("step %d ShardedStore(%d) KNN", step, n),
						want, sc.sharded[n].KNN(sc.oc.q, k, 0.4))
					requireSameMatches(t, seed, fmt.Sprintf("step %d ShardedStore(%d) RKNN", step, n),
						wantR, sc.sharded[n].RKNN(sc.oc.q, k, 0.4))
				}
			}
		})
	}
}

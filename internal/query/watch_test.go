package query

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"probprune/internal/core"
	"probprune/internal/uncertain"
)

func testOpts() core.Options { return core.Options{MaxIterations: 3} }

// TestWatchDeliversGaplessChangeStream checks the Watch contract: the
// callback sees exactly the changes after the returned snapshot's
// version, in order, each carrying the snapshot of its own version.
func TestWatchDeliversGaplessChangeStream(t *testing.T) {
	db := storeTestDB(t, 20, 1)
	s, err := NewStore(db, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	nextID := len(db)
	// Mutate before watching: these changes must not be delivered.
	mutateStore(t, s, rng, &nextID, 5)

	var got []Change
	snap, stop := s.Watch(func(ch Change) { got = append(got, ch) })
	if snap.Version() != s.Version() {
		t.Fatalf("watch snapshot at version %d, store at %d", snap.Version(), s.Version())
	}
	base := snap.Version()

	mutateStore(t, s, rng, &nextID, 12)
	if len(got) != 12 {
		t.Fatalf("got %d changes, want 12", len(got))
	}
	for i, ch := range got {
		if ch.Version != base+uint64(i)+1 {
			t.Fatalf("change %d has version %d, want %d", i, ch.Version, base+uint64(i)+1)
		}
		if ch.Snap == nil || ch.Snap.Version() != ch.Version {
			t.Fatalf("change %d snapshot version mismatch", i)
		}
		switch ch.Kind {
		case ChangeInsert:
			if ch.Old != nil || ch.New == nil {
				t.Fatalf("insert change %d carries old=%v new=%v", i, ch.Old, ch.New)
			}
		case ChangeDelete:
			if ch.Old == nil || ch.New != nil {
				t.Fatalf("delete change %d carries old=%v new=%v", i, ch.Old, ch.New)
			}
		case ChangeUpdate:
			if ch.Old == nil || ch.New == nil || ch.Old.ID != ch.New.ID {
				t.Fatalf("update change %d malformed", i)
			}
		default:
			t.Fatalf("change %d has unknown kind %v", i, ch.Kind)
		}
		// The change snapshot must reflect the mutation.
		if ch.New != nil {
			if o, ok := findByID(ch.Snap.DB(), ch.New.ID); !ok || o != ch.New {
				t.Fatalf("change %d: new object not in its snapshot", i)
			}
		}
		if ch.Kind == ChangeDelete {
			if _, ok := findByID(ch.Snap.DB(), ch.Old.ID); ok {
				t.Fatalf("change %d: deleted object still in its snapshot", i)
			}
		}
	}

	// After stop, no further deliveries.
	stop()
	n := len(got)
	mutateStore(t, s, rng, &nextID, 4)
	if len(got) != n {
		t.Fatalf("callback invoked after stop: %d changes, want %d", len(got), n)
	}
}

func findByID(db uncertain.Database, id int) (*uncertain.Object, bool) {
	for _, o := range db {
		if o.ID == id {
			return o, true
		}
	}
	return nil, false
}

func TestBatchCtx(t *testing.T) {
	db := storeTestDB(t, 30, 2)
	s, err := NewStore(db, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	q := db[0]

	// A live context runs the batch on one snapshot.
	var matches []Match
	if err := s.BatchCtx(context.Background(), func(ctx context.Context, e *Engine) error {
		var err error
		matches, err = e.KNNCtx(ctx, q, 3, 0.4)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if len(matches) != len(db)-1 {
		t.Fatalf("got %d matches, want %d", len(matches), len(db)-1)
	}

	// A cancelled context aborts before fn runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	if err := s.BatchCtx(ctx, func(context.Context, *Engine) error {
		called = true
		return nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled BatchCtx returned %v, want context.Canceled", err)
	}
	if called {
		t.Fatal("fn invoked despite cancelled context")
	}

	// Cancellation inside the batch propagates out.
	ctx2, cancel2 := context.WithCancel(context.Background())
	err = s.BatchCtx(ctx2, func(ctx context.Context, e *Engine) error {
		cancel2()
		_, err := e.KNNCtx(ctx, q, 3, 0.4)
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("in-batch cancellation returned %v, want context.Canceled", err)
	}
}

package query

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/uncertain"
)

// These tests pin down the two promises of background checkpointing:
// commits are never stalled by a checkpoint install (the commit path
// pays only the O(1) pin under the store lock), and a crash at ANY step
// of the background install recovers to the exact committed state.

// TestCheckpointUnderLoad parks the background install on the
// scheduler's gate and keeps committing: every insert must complete
// while the install is stuck, pins submitted behind the parked install
// must coalesce instead of queueing, and releasing the gate must drain
// cleanly into a recoverable directory.
func TestCheckpointUnderLoad(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, _ := traceCase(t, 13, false)
	opts := core.Options{MaxIterations: 3}
	s, err := BootstrapStore(db, PersistOptions{Dir: dir, CheckpointEvery: 4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.journal.sched.gate = func() {
		once.Do(func() { close(entered) })
		<-release
	}
	obj := func(i int) *uncertain.Object {
		return uncertain.PointObject(3000+i, geom.Point{0.05 * float64(i), 0.3})
	}
	for i := 0; i < 4; i++ { // trips the auto-checkpoint policy
		if err := s.Insert(obj(i)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("auto-checkpoint never reached the background installer")
	}

	// The install is parked. Commits must keep flowing — they pay the
	// pin, never the install.
	const extra = 40
	committed := make(chan error, 1)
	go func() {
		for i := 4; i < 4+extra; i++ {
			if err := s.Insert(obj(i)); err != nil {
				committed <- fmt.Errorf("insert %d: %w", i, err)
				return
			}
		}
		committed <- nil
	}()
	select {
	case err := <-committed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("writers blocked behind a parked checkpoint install")
	}
	snap := s.Metrics().Snapshot()
	if snap["store.checkpoint.coalesced"] == 0 {
		t.Fatal("pins submitted behind the parked install were not coalesced")
	}
	if snap["store.checkpoint.queue"] == 0 {
		t.Fatal("queue gauge reads empty while an install is parked")
	}

	close(release)
	s.drainCheckpoints()
	if q := s.Metrics().Snapshot()["store.checkpoint.queue"]; q != 0 {
		t.Fatalf("queue gauge = %d after drain", q)
	}
	wantLen, wantVer := s.Len(), s.Version()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenStore(PersistOptions{Dir: dir}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != wantLen || r.Version() != wantVer {
		t.Fatalf("recovered len %d version %d, want %d and %d", r.Len(), r.Version(), wantLen, wantVer)
	}
	for i := 0; i < 4+extra; i++ {
		if _, ok := r.Get(3000 + i); !ok {
			t.Fatalf("recovered store lost insert %d", i)
		}
	}
}

// TestKillPointStoreCheckpointInstall pins a checkpoint, commits past
// the pin, then crashes the install at every step; every image must
// recover to the full committed state — the post-pin commits survive
// whichever recovery base (old or new checkpoint) the image holds.
func TestKillPointStoreCheckpointInstall(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, _ := traceCase(t, 14, false)
	opts := core.Options{MaxIterations: 3}
	s, err := BootstrapStore(db, PersistOptions{Dir: dir}, opts)
	if err != nil {
		t.Fatal(err)
	}
	obj := func(i int) *uncertain.Object {
		return uncertain.PointObject(4000+i, geom.Point{0.04 * float64(i), 0.6})
	}
	for i := 0; i < 8; i++ {
		if err := s.Insert(obj(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	job, err := s.pinCheckpointLocked()
	s.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	for i := 8; i < 12; i++ { // commits that land after the pin
		if err := s.Insert(obj(i)); err != nil {
			t.Fatal(err)
		}
	}
	snaps := map[string]string{}
	snapshot := func(step string) {
		dst := t.TempDir()
		copyTree(t, dir, dst)
		snaps[step] = dst
	}
	snapshot("begin")
	s.journal.j.SetInstallHook(func(step string) { snapshot(step) })
	if err := s.journal.install(job); err != nil {
		t.Fatal(err)
	}
	snapshot("done")
	wantLen, wantVer := s.Len(), s.Version()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	for _, step := range []string{"begin", "encode", "installed", "removed-ckpt", "removed-segs", "done"} {
		sdir, ok := snaps[step]
		if !ok {
			t.Fatalf("install never reached step %q", step)
		}
		r, err := OpenStore(PersistOptions{Dir: sdir}, opts)
		if err != nil {
			t.Fatalf("%s: recovery: %v", step, err)
		}
		if r.Len() != wantLen || r.Version() != wantVer {
			t.Fatalf("%s: recovered len %d version %d, want %d and %d",
				step, r.Len(), r.Version(), wantLen, wantVer)
		}
		for i := 0; i < 12; i++ {
			if _, ok := r.Get(4000 + i); !ok {
				t.Fatalf("%s: insert %d lost", step, i)
			}
		}
		r.Close()
	}
}

// TestKillPointShardedCheckpointInstall crashes a sharded checkpoint —
// manifest save, then per-shard installs — at every step of every
// shard's install; each image must recover the full committed state
// whatever mix of old and new shard checkpoints it caught.
func TestKillPointShardedCheckpointInstall(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, _ := traceCase(t, 15, true)
	opts := core.Options{MaxIterations: 3}
	s, err := BootstrapShardedStore(db, PersistOptions{Dir: dir},
		ShardedOptions{Shards: 2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	obj := func(i int) *uncertain.Object {
		return uncertain.PointObject(5000+i, geom.Point{0.06 * float64(i), 0.8})
	}
	for i := 0; i < 10; i++ {
		if err := s.Insert(obj(i)); err != nil {
			t.Fatal(err)
		}
	}
	snaps := map[string]string{}
	snapshot := func(step string) {
		dst := t.TempDir()
		copyTree(t, dir, dst)
		snaps[step] = dst
	}
	snapshot("begin")
	for i, sh := range s.shards {
		shard := i
		sh.journal.j.SetInstallHook(func(step string) {
			snapshot(fmt.Sprintf("shard-%d:%s", shard, step))
		})
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snapshot("done")
	wantLen, wantVer := s.Len(), s.Version()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if len(snaps) < 2+2*4 {
		t.Fatalf("only %d crash images captured", len(snaps))
	}
	for step, sdir := range snaps {
		r, err := OpenShardedStore(PersistOptions{Dir: sdir}, ShardedOptions{Shards: 2}, opts)
		if err != nil {
			t.Fatalf("%s: recovery: %v", step, err)
		}
		if r.Len() != wantLen || r.Version() != wantVer {
			t.Fatalf("%s: recovered len %d version %d, want %d and %d",
				step, r.Len(), r.Version(), wantLen, wantVer)
		}
		for i := 0; i < 10; i++ {
			if _, ok := r.Get(5000 + i); !ok {
				t.Fatalf("%s: insert %d lost", step, i)
			}
		}
		r.Close()
	}
}

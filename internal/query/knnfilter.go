package query

import (
	"container/heap"
	"math"

	"probprune/internal/geom"
	"probprune/internal/rtree"
	"probprune/internal/uncertain"
)

// This file implements candidate preselection for kNN queries: before
// running per-candidate IDCA, the engine discards every object that
// cannot be a k-nearest neighbor of q in ANY possible world.
//
// The bound: let m_1 <= m_2 <= ... be the sorted MaxDist(o, q) over all
// database objects. If MinDist(B, q) > m_{k+1}, then — even after
// excluding B itself from the list — at least k objects A satisfy
// MaxDist(A, q) < MinDist(B, q). For any fixed reference position r and
// any positions a, b, dist(a, r) <= MaxDist(A, q) < MinDist(B, q) <=
// dist(b, r), so all k objects dominate B in every possible world and
// P(DomCount(B, q) < k) = 0. The m_{k+1} (rather than m_k) guards the
// case where B's own MaxDist is among the k smallest.
//
// Only objects that certainly exist may be counted toward the bound: an
// existentially uncertain object fails to dominate in the worlds where
// it is absent from the database.
//
// With an index the threshold falls out of the best-first Nearby
// stream: ordering values by MaxDist (with MinDist as the admissible
// node-level lower bound, MaxDist >= MinDist) yields the k+1 smallest
// MaxDist values and stops — no full scan, no heap. Without an index a
// linear scan over a bounded max-heap computes the same value.

// knnPruneThreshold computes m_{k+1}, the (k+1)-th smallest
// MaxDist(o, q) over the indexed certain objects (excluding q itself
// when it is a database object). Returns +Inf when the database is too
// small to prune.
func knnPruneThreshold(index *rtree.Tree[*uncertain.Object], q *uncertain.Object, k int, n geom.Norm) float64 {
	thresh := math.Inf(1)
	need := k + 1
	buf := nearbyPool.Get().(*rtree.NearbyBuf)
	defer nearbyPool.Put(buf)
	index.NearbyWith(buf,
		func(mbr geom.Rect, _ *uncertain.Object, leaf bool) float64 {
			if leaf {
				return mbr.MaxDistRect(n, q.MBR)
			}
			return mbr.MinDistRect(n, q.MBR)
		},
		func(_ geom.Rect, o *uncertain.Object, d float64) bool {
			if o == q || o.ExistenceProb() < 1 {
				return true
			}
			need--
			if need == 0 {
				thresh = d
				return false
			}
			return true
		},
	)
	return thresh
}

// knnPruneThresholdLinear is the index-less fallback: the same m_{k+1}
// from a single scan through a bounded max-heap of the k+1 smallest
// MaxDist values.
func knnPruneThresholdLinear(db uncertain.Database, q *uncertain.Object, k int, n geom.Norm) float64 {
	h := &maxDistHeap{bound: k + 1}
	for _, o := range db {
		if o == q || o.ExistenceProb() < 1 {
			continue
		}
		h.offer(o.MBR.MaxDistRect(n, q.MBR))
	}
	return h.threshold()
}

// knnThreshold dispatches the prune-threshold computation through the
// sharded plane or the index when one is present.
func (e *Engine) knnThreshold(q *uncertain.Object, k int, n geom.Norm) float64 {
	if e.plane != nil {
		return e.plane.knnThreshold(q, k, n)
	}
	if e.Index != nil {
		return knnPruneThreshold(e.Index, q, k, n)
	}
	return knnPruneThresholdLinear(e.DB, q, k, n)
}

// knnPrunable reports whether object b is impossible as a kNN of q
// given the threshold.
func knnPrunable(b *uncertain.Object, q *uncertain.Object, thresh float64, n geom.Norm) bool {
	return b.MBR.MinDistRect(n, q.MBR) > thresh
}

// maxDistHeap is a bounded max-heap of the smallest MaxDist values seen
// so far (the linear fallback's working set).
type maxDistHeap struct {
	vals  []float64
	bound int
}

func (h *maxDistHeap) Len() int           { return len(h.vals) }
func (h *maxDistHeap) Less(i, j int) bool { return h.vals[i] > h.vals[j] }
func (h *maxDistHeap) Swap(i, j int)      { h.vals[i], h.vals[j] = h.vals[j], h.vals[i] }
func (h *maxDistHeap) Push(x any)         { h.vals = append(h.vals, x.(float64)) }
func (h *maxDistHeap) Pop() any {
	old := h.vals
	n := len(old)
	x := old[n-1]
	h.vals = old[:n-1]
	return x
}

// offer inserts v if the heap is not full or v improves the current
// threshold.
func (h *maxDistHeap) offer(v float64) {
	if len(h.vals) < h.bound {
		heap.Push(h, v)
		return
	}
	if v < h.vals[0] {
		h.vals[0] = v
		heap.Fix(h, 0)
	}
}

// threshold returns the current pruning bound: the largest value in a
// full heap, +Inf while under-filled.
func (h *maxDistHeap) threshold() float64 {
	if len(h.vals) < h.bound {
		return math.Inf(1)
	}
	return h.vals[0]
}

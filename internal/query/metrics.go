package query

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"probprune/internal/core"
	"probprune/internal/obs"
)

// This file wires the obs primitives into the query engine. Every
// engine owns a Metrics (NewEngine and the stores install one; a
// zero-constructed Engine has none and pays only nil checks), and every
// query records its latency into a per-kind histogram plus the shared
// filter-economy counters: candidates entering the filter stage,
// preselected-away vs. IDCA-refined verdicts, refinement iterations and
// decomposition-cache traffic — the quantities Figure 8 of the paper
// plots, now measured on the serving path.
//
// A caller that wants the same anatomy for ONE query threads an
// obs.Trace through the context (obs.WithTrace); the engine records
// into both unconditionally, and both paths are nil-safe and
// allocation-free so an uninstrumented query stays inside the engine's
// allocation ceilings.

// queryKind enumerates the instrumented query algorithms.
type queryKind int

const (
	kindKNN queryKind = iota
	kindRKNN
	kindTopK
	kindInverseRank
	kindExpectedRank
	kindUKRanks
	kindBatchKNN
	numQueryKinds
)

// kindNames are the metric-name segments of the kinds, in order.
var kindNames = [numQueryKinds]string{
	"knn", "rknn", "topk", "inverse_rank", "expected_rank", "ukranks", "batch_knn",
}

// Metrics is the query-layer metric set of one engine (or of a store
// and every snapshot engine it publishes). All record paths are atomic
// and allocation-free; a nil *Metrics is valid and records nothing.
type Metrics struct {
	reg     *obs.Registry
	latency [numQueryKinds]*obs.Histogram

	candidates  *obs.Counter
	preselected *obs.Counter
	refined     *obs.Counter
	undecided   *obs.Counter
	iterations  *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter

	// ckptQueue/ckptMerged instrument the background checkpoint
	// scheduler of a durable store: pending + running installs, and pins
	// coalesced away because a newer one replaced them before install.
	ckptQueue  *obs.Gauge
	ckptMerged *obs.Counter

	// slow holds the slow-query log configuration (a slowQueryLog).
	// atomic.Value so SetSlowQueryLog is safe while queries run and the
	// per-query load costs no lock.
	slow atomic.Value

	// rec holds the flight-recorder arming (a recState). When armed
	// together with slowRecNanos, every query above the threshold
	// records an EvSlowQuery event — with its full trace snapshot —
	// into the ring, whether or not the caller attached a trace
	// (untraced queries borrow a pooled one, see traceFor).
	rec          atomic.Value
	slowRecNanos atomic.Int64
}

// slowQueryLog is the slow-query logging configuration.
type slowQueryLog struct {
	threshold time.Duration
	logf      func(format string, args ...any)
}

// recState is the installed flight recorder plus the pre-registered
// per-kind note IDs, swapped atomically so arming is safe mid-serving
// and the per-query load costs no lock.
type recState struct {
	rec   *obs.Recorder
	notes [numQueryKinds]obs.NoteID
}

// tracePool recycles the traces the slow-query capture arms for
// otherwise-untraced queries, keeping the always-on recorder inside the
// engine's allocation ceilings.
var tracePool = sync.Pool{New: func() any { return &obs.Trace{} }}

// NewMetrics builds the query metric set:
//
//	query.<kind>.latency   histogram per query kind
//	query.candidates       counter: candidates entering the filter stage
//	query.preselected      counter: candidates decided without an IDCA run
//	query.refined          counter: candidates refined by an IDCA run
//	query.undecided        counter: refined candidates left undecided
//	query.iterations       counter: total refinement iterations
//	query.cache.hits/misses counter: decomposition-cache traffic
//	store.checkpoint.queue  gauge: background checkpoint installs pending + running
//	store.checkpoint.coalesced counter: checkpoint pins replaced by a newer one before install
func NewMetrics() *Metrics {
	m := &Metrics{reg: obs.NewRegistry()}
	for k := queryKind(0); k < numQueryKinds; k++ {
		m.latency[k] = m.reg.Histogram("query." + kindNames[k] + ".latency")
	}
	m.candidates = m.reg.Counter("query.candidates")
	m.preselected = m.reg.Counter("query.preselected")
	m.refined = m.reg.Counter("query.refined")
	m.undecided = m.reg.Counter("query.undecided")
	m.iterations = m.reg.Counter("query.iterations")
	m.cacheHits = m.reg.Counter("query.cache.hits")
	m.cacheMisses = m.reg.Counter("query.cache.misses")
	m.ckptQueue = m.reg.Gauge("store.checkpoint.queue")
	m.ckptMerged = m.reg.Counter("store.checkpoint.coalesced")
	return m
}

// Registry exposes the underlying registry (nil for nil metrics).
func (m *Metrics) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// Snapshot flattens the metric set into name → value (nil map for nil
// metrics), the shape the STATS command and the debug endpoint serve.
func (m *Metrics) Snapshot() map[string]int64 {
	if m == nil {
		return nil
	}
	return m.reg.Snapshot()
}

// SetSlowQueryLog configures the slow-query log: a query slower than
// threshold logs one line through logf (kind, latency, and the query's
// trace anatomy when one was attached). threshold <= 0 or a nil logf
// disables it. Safe to call while queries run.
func (m *Metrics) SetSlowQueryLog(threshold time.Duration, logf func(format string, args ...any)) {
	if m == nil {
		return
	}
	m.slow.Store(slowQueryLog{threshold: threshold, logf: logf})
}

// SetRecorder installs (or, with nil, removes) the flight recorder the
// slow-query capture records into. Pair with SetSlowQueryThreshold to
// arm it. Safe to call while queries run.
func (m *Metrics) SetRecorder(rec *obs.Recorder) {
	if m == nil {
		return
	}
	var rs recState
	if rec != nil {
		rs.rec = rec
		for k := queryKind(0); k < numQueryKinds; k++ {
			rs.notes[k] = rec.Note(kindNames[k])
		}
	}
	m.rec.Store(rs)
}

// Recorder returns the installed flight recorder, nil when disarmed.
func (m *Metrics) Recorder() *obs.Recorder {
	if m == nil {
		return nil
	}
	rs, _ := m.rec.Load().(recState)
	return rs.rec
}

// SetSlowQueryThreshold arms the flight-recorder slow-query capture:
// every query at least this slow records an EvSlowQuery event with its
// full trace snapshot. <= 0 disarms. Independent of SetSlowQueryLog
// (the log writes lines, the recorder writes ring events).
func (m *Metrics) SetSlowQueryThreshold(d time.Duration) {
	if m == nil {
		return
	}
	m.slowRecNanos.Store(int64(d))
}

// traceFor resolves the trace a query records into: the caller's, when
// the context carries one, or a pooled trace when the flight recorder
// is armed for slow-query capture — so an untraced slow query still
// leaves its anatomy in the ring. pooled reports the latter; observe
// returns the pooled trace to the pool.
func (m *Metrics) traceFor(ctx context.Context) (tr *obs.Trace, pooled bool) {
	tr = obs.TraceFrom(ctx)
	if tr != nil || m == nil {
		return tr, false
	}
	if m.slowRecNanos.Load() <= 0 {
		return nil, false
	}
	rs, _ := m.rec.Load().(recState)
	if rs.rec == nil {
		return nil, false
	}
	t := tracePool.Get().(*obs.Trace)
	t.Reset()
	return t, true
}

// observe records one completed query: latency into the kind's
// histogram, a flight-recorder event when the capture threshold is
// exceeded, plus the slow-query log when its threshold is exceeded.
// pooled marks a trace traceFor borrowed; it is returned to the pool
// here, after the snapshot was taken.
func (m *Metrics) observe(kind queryKind, start time.Time, tr *obs.Trace, pooled bool) {
	if m == nil {
		return
	}
	d := time.Since(start)
	m.latency[kind].Observe(d)
	if thr := m.slowRecNanos.Load(); thr > 0 && int64(d) >= thr {
		if rs, _ := m.rec.Load().(recState); rs.rec != nil {
			rs.rec.RecordTrace(obs.EvSlowQuery, rs.notes[kind], d, 0, 0, tr.Snapshot())
		}
	}
	if sl, _ := m.slow.Load().(slowQueryLog); sl.logf != nil && sl.threshold > 0 && d >= sl.threshold {
		if tr != nil {
			sl.logf("slow query kind=%s latency=%v %v", kindNames[kind], d, tr.Snapshot())
		} else {
			sl.logf("slow query kind=%s latency=%v", kindNames[kind], d)
		}
	}
	if pooled {
		tracePool.Put(tr)
	}
}

// countCandidates records n candidates entering the filter stage.
func (m *Metrics) countCandidates(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.candidates.Add(uint64(n))
}

// countPreselected records one candidate decided by preselection alone.
func (m *Metrics) countPreselected() {
	if m == nil {
		return
	}
	m.preselected.Inc()
}

// countRefined records one candidate that needed an IDCA run.
func (m *Metrics) countRefined(iterations int) {
	if m == nil {
		return
	}
	m.refined.Inc()
	if iterations > 0 {
		m.iterations.Add(uint64(iterations))
	}
}

// countUndecided records one refined candidate whose bounds ran out of
// iteration budget.
func (m *Metrics) countUndecided() {
	if m == nil {
		return
	}
	m.undecided.Inc()
}

// countMatch classifies one candidate verdict into the per-query trace
// and the engine counters: pruned candidates were preselected away
// without an IDCA run, everything else was refined.
func countMatch(m *Metrics, tr *obs.Trace, match Match, pruned bool) {
	if pruned {
		tr.CountPreselected()
		m.countPreselected()
		return
	}
	tr.CountRefined(match.Iterations)
	m.countRefined(match.Iterations)
	if !match.Decided {
		tr.CountUndecided()
		m.countUndecided()
	}
}

// recordCache drains a query-scoped cache's hit/miss counts into the
// trace and the engine counters. The cache is the query's overlay (or
// private cache), so its counts are exactly this query's traffic.
func recordCache(m *Metrics, tr *obs.Trace, cache *core.DecompCache) {
	if cache == nil || (m == nil && tr == nil) {
		return
	}
	hits, misses := cache.Stats()
	tr.AddCacheStats(hits, misses)
	if m != nil {
		m.cacheHits.Add(hits)
		m.cacheMisses.Add(misses)
	}
}

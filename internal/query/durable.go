package query

import (
	"fmt"
	"time"

	"probprune/internal/core"
	"probprune/internal/uncertain"
	"probprune/internal/wal"
)

// PersistOptions configures the durability of a Store or ShardedStore
// opened with OpenStore/OpenShardedStore: where the journal lives, when
// it is fsynced, and when the log is compacted into a checkpoint.
type PersistOptions struct {
	// Dir is the journal directory (created if absent). A ShardedStore
	// keeps one sub-journal per shard (shard-0, shard-1, ...) plus a
	// MANIFEST carrying the version vector and the global order.
	Dir string
	// Sync is the fsync policy for journaled commits; the zero value is
	// wal.SyncOS (no explicit fsync).
	Sync wal.SyncPolicy
	// SyncEvery is the wal.SyncBackground flush interval; <= 0 selects
	// one second.
	SyncEvery time.Duration
	// CheckpointEvery writes a checkpoint (and truncates the log)
	// automatically once that many records accumulated since the last
	// one; 0 disables auto-checkpointing (call Checkpoint explicitly).
	CheckpointEvery int
	// SegmentBytes is the log segment rotation threshold; <= 0 selects
	// wal.DefaultSegmentBytes.
	SegmentBytes int64
}

func (p PersistOptions) wal() wal.Options {
	return wal.Options{Sync: p.Sync, SyncEvery: p.SyncEvery, SegmentBytes: p.SegmentBytes}
}

// storeJournal is the durability state a durable Store carries.
type storeJournal struct {
	j               *wal.Journal
	checkpointEvery int
	ckptErr         error // first deferred auto-checkpoint failure
}

// journalLocked journals one commit record before it is applied; a nil
// journal (in-memory store) accepts everything. A deferred
// auto-checkpoint failure is surfaced here — the commit that observes
// it is rejected (the store unchanged) and the error cleared, so the
// caller learns about the degraded durability at the next mutation
// instead of only at Close. Requires s.mu held for writing.
func (s *Store) journalLocked(rec wal.Record) error {
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.journal == nil {
		return nil
	}
	if err := s.journal.ckptErr; err != nil {
		s.journal.ckptErr = nil
		return fmt.Errorf("store: deferred auto-checkpoint failure: %w", err)
	}
	return s.journal.j.Append(rec)
}

// maybeCheckpointLocked runs the auto-checkpoint policy after a commit.
// A checkpoint failure does not fail the commit (it is already durable
// in the log); the error is deferred and surfaced by the next mutation
// or Sync — or by Close, whichever comes first. Requires s.mu held for
// writing.
func (s *Store) maybeCheckpointLocked() {
	sj := s.journal
	if sj == nil || sj.checkpointEvery <= 0 {
		return
	}
	if sj.j.AppendedSinceCheckpoint() < uint64(sj.checkpointEvery) {
		return
	}
	if err := s.checkpointLocked(); err != nil && sj.ckptErr == nil {
		sj.ckptErr = err
	}
}

// checkpointLocked snapshots the current state (objects, decomposition
// cache, version) into the journal and truncates the log. Requires
// s.mu held for writing.
func (s *Store) checkpointLocked() error {
	db := make([]*uncertain.Object, len(s.db))
	copy(db, s.db)
	decomp := make([][][]uncertain.Partition, len(db))
	for i, o := range db {
		decomp[i] = s.cache.Materialized(o)
	}
	return s.journal.j.WriteCheckpoint(&wal.Checkpoint{
		Version:      s.version,
		Objects:      db,
		Decomp:       decomp,
		CacheVersion: s.cache.Version(),
	})
}

// Checkpoint durably snapshots the store's current state — the object
// database in database order, the store version and every materialized
// decomposition — and truncates the journal to it. Reopening afterwards
// loads the snapshot and replays only commits journaled since.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return fmt.Errorf("store: not durable (no journal)")
	}
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	return s.checkpointLocked()
}

// Sync forces journaled commits to stable storage, regardless of the
// sync policy. It also surfaces (and clears) a deferred auto-checkpoint
// failure, so a caller that never mutates again still learns the
// checkpoint did not land. It is a no-op on an in-memory store.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil || s.closed {
		return nil
	}
	if err := s.journal.ckptErr; err != nil {
		s.journal.ckptErr = nil
		return fmt.Errorf("store: deferred auto-checkpoint failure: %w", err)
	}
	return s.journal.j.Sync()
}

// Close releases the journal of a durable store. Mutations fail after
// Close (they could no longer be journaled); snapshots and queries
// remain usable. The on-disk state stays fully recoverable — Close
// writes no checkpoint, reopening replays the log tail. Closing an
// in-memory store is a no-op.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil || s.closed {
		return nil
	}
	s.closed = true
	err := s.journal.ckptErr
	if cerr := s.journal.j.Close(); err == nil {
		err = cerr
	}
	return err
}

// OpenStore opens (or initializes) a durable store rooted at
// popts.Dir: the newest checkpoint is loaded — objects, version AND
// every decomposition the crashed process had materialized — and the
// journal tail is replayed on top, stopping cleanly at the last intact
// record. The recovered store is bit-identical to the store that wrote
// the journal: same database order, same versions, same query answers.
// Opts must match the options the journal was written under (they are
// not persisted); opts.SharedDecomps must be left unset.
func OpenStore(popts PersistOptions, opts core.Options) (*Store, error) {
	return openStore(popts, opts, nil)
}

// openStore is OpenStore with a hook observing every replayed record —
// the sharded router collects the logical records to rebuild its
// global order.
func openStore(popts PersistOptions, opts core.Options, onRecord func(wal.Record)) (*Store, error) {
	j, err := wal.Open(popts.Dir, popts.wal())
	if err != nil {
		return nil, err
	}
	s, err := recoverStore(j, popts, opts, onRecord)
	if err != nil {
		j.Close()
		return nil, err
	}
	return s, nil
}

// recoverStore builds a store from a journal's checkpoint and tail.
func recoverStore(j *wal.Journal, popts PersistOptions, opts core.Options, onRecord func(wal.Record)) (*Store, error) {
	ck := j.Checkpoint()
	var base uncertain.Database
	if ck != nil {
		base = ck.Objects
	}
	s, err := NewStore(base, opts)
	if err != nil {
		return nil, err
	}
	if ck != nil {
		s.version = ck.Version
		// Seed the persistent cache with the checkpointed
		// decompositions: the first queries after reopen reuse the
		// crashed process's kd-splits instead of recomputing them.
		// Replayed updates and deletes invalidate per object through the
		// normal mutation paths, exactly like live commits.
		for i, o := range ck.Objects {
			if ck.Decomp != nil && ck.Decomp[i] != nil {
				s.cache.Seed(o, ck.Decomp[i])
			}
		}
		s.cache.SetVersion(ck.CacheVersion)
	}
	err = j.Replay(func(rec wal.Record) error {
		if err := s.applyRecordLocked(rec); err != nil {
			return err
		}
		if onRecord != nil {
			onRecord(rec)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.journal = &storeJournal{j: j, checkpointEvery: popts.CheckpointEvery}
	return s, nil
}

// applyRecordLocked applies one replayed journal record to the store
// being recovered. No locks, snapshots or watchers exist yet; the
// mutation bodies are the same ones live commits run, so the recovered
// state is bit-identical to the state that journaled the record.
func (s *Store) applyRecordLocked(rec wal.Record) error {
	if rec.Version != s.version+1 {
		return fmt.Errorf("store: journal record version %d after store version %d", rec.Version, s.version)
	}
	switch rec.Op {
	case wal.OpInsert, wal.OpMoveIn:
		if _, dup := s.byID[rec.Obj.ID]; dup {
			return fmt.Errorf("store: journal re-inserts object ID %d", rec.Obj.ID)
		}
		s.addLocked(rec.Obj)
	case wal.OpDelete, wal.OpMoveOut:
		o, ok := s.byID[rec.ID]
		if !ok {
			return fmt.Errorf("store: journal deletes unknown object ID %d", rec.ID)
		}
		s.removeLocked(o)
	case wal.OpUpdate:
		old, ok := s.byID[rec.Obj.ID]
		if !ok {
			return fmt.Errorf("store: journal updates unknown object ID %d", rec.Obj.ID)
		}
		s.replaceLocked(old, rec.Obj)
	default:
		return fmt.Errorf("store: journal record with unknown op %d", rec.Op)
	}
	s.version = rec.Version
	return nil
}

// BootstrapStore creates a NEW durable store over db at popts.Dir,
// writing the initial database as the first checkpoint. It fails when
// the directory already holds a journal — recover that with OpenStore
// instead (an explicit choice, so a typo cannot silently shadow an
// existing database with a fresh one).
func BootstrapStore(db uncertain.Database, popts PersistOptions, opts core.Options) (*Store, error) {
	s, err := NewStore(db, opts)
	if err != nil {
		return nil, err
	}
	if err := s.bootstrapJournal(popts, popts.CheckpointEvery); err != nil {
		return nil, err
	}
	return s, nil
}

// bootstrapJournal attaches a fresh journal to an already-built store
// and writes its state as the initial checkpoint.
func (s *Store) bootstrapJournal(popts PersistOptions, checkpointEvery int) error {
	j, err := newEmptyJournal(popts)
	if err != nil {
		return err
	}
	s.journal = &storeJournal{j: j, checkpointEvery: checkpointEvery}
	if err := s.checkpointLocked(); err != nil {
		s.journal = nil
		j.Close()
		return err
	}
	return nil
}

// newEmptyJournal opens popts.Dir and verifies it holds no journal yet.
func newEmptyJournal(popts PersistOptions) (*wal.Journal, error) {
	j, err := wal.Open(popts.Dir, popts.wal())
	if err != nil {
		return nil, err
	}
	records := 0
	if err := j.Replay(func(wal.Record) error { records++; return nil }); err != nil {
		j.Close()
		return nil, err
	}
	if j.Checkpoint() != nil || records > 0 {
		j.Close()
		return nil, fmt.Errorf("store: %s already holds a journal (open it instead of bootstrapping)", popts.Dir)
	}
	return j, nil
}

package query

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"probprune/internal/core"
	"probprune/internal/obs"
	"probprune/internal/uncertain"
	"probprune/internal/wal"
)

// PersistOptions configures the durability of a Store or ShardedStore
// opened with OpenStore/OpenShardedStore: where the journal lives, when
// it is fsynced, and when the log is compacted into a checkpoint.
type PersistOptions struct {
	// Dir is the journal directory (created if absent). A ShardedStore
	// keeps one sub-journal per shard (shard-0, shard-1, ...) plus a
	// MANIFEST carrying the version vector and the global order.
	Dir string
	// Sync is the fsync policy for journaled commits; the zero value is
	// wal.SyncOS (no explicit fsync).
	Sync wal.SyncPolicy
	// SyncEvery is the wal.SyncBackground flush interval; <= 0 selects
	// one second.
	SyncEvery time.Duration
	// CheckpointEvery writes a checkpoint (and truncates the log)
	// automatically once that many records accumulated since the last
	// one; 0 disables auto-checkpointing (call Checkpoint explicitly).
	CheckpointEvery int
	// SegmentBytes is the log segment rotation threshold; <= 0 selects
	// wal.DefaultSegmentBytes.
	SegmentBytes int64
}

func (p PersistOptions) wal() wal.Options {
	return wal.Options{Sync: p.Sync, SyncEvery: p.SyncEvery, SegmentBytes: p.SegmentBytes}
}

// storeJournal is the durability state a durable Store carries. The
// commit path appends under s.mu and waits for (group) durability only
// after releasing it; checkpoints are pinned under s.mu — an O(1)
// journal rotation plus a copy-on-write reference of the state — and
// encoded/installed by the background scheduler, so neither fsyncs nor
// checkpoint serialization ever stall concurrent committers.
type storeJournal struct {
	j               *wal.Journal
	checkpointEvery int

	// installMu serializes checkpoint installs (the background
	// scheduler and synchronous Checkpoint calls). The journal skips
	// stale pins, so serialized installs converge on the newest
	// checkpoint in any arrival order.
	installMu sync.Mutex

	sched *ckptScheduler

	// rec is the armed flight recorder (nil when disarmed): checkpoint
	// lifecycle and deferred durability errors record into it, and
	// setRecorder forwards it to the wal journal for group-commit and
	// fsync-stall events. Atomic so arming is safe mid-serving.
	rec atomic.Pointer[obs.Recorder]

	emu     sync.Mutex // guards ckptErr (the scheduler writes it off s.mu)
	ckptErr error      // first deferred auto-checkpoint failure
}

func newStoreJournal(j *wal.Journal, checkpointEvery int, m *Metrics) *storeJournal {
	sj := &storeJournal{j: j, checkpointEvery: checkpointEvery}
	sj.sched = newCkptScheduler(sj.noteCkptErr)
	sj.sched.events = sj.recorder
	if m != nil {
		sj.sched.queue = m.ckptQueue
		sj.sched.merged = m.ckptMerged
	}
	return sj
}

// setRecorder arms (or disarms, with nil) the journal's flight-recorder
// event sources, including the wal journal's. Nil-safe (in-memory
// store).
func (sj *storeJournal) setRecorder(rec *obs.Recorder) {
	if sj == nil {
		return
	}
	sj.rec.Store(rec)
	sj.j.SetRecorder(rec)
}

// recorder returns the armed recorder, nil when disarmed (nil-safe).
func (sj *storeJournal) recorder() *obs.Recorder {
	if sj == nil {
		return nil
	}
	return sj.rec.Load()
}

// noteCkptErr records a deferred checkpoint failure (keeping the first).
func (sj *storeJournal) noteCkptErr(err error) {
	sj.emu.Lock()
	if sj.ckptErr == nil {
		sj.ckptErr = err
	}
	sj.emu.Unlock()
	// Cold path: registering the error text as a note may lock and
	// allocate, which a failure path can afford.
	if r := sj.recorder(); r != nil {
		r.Record(obs.EvDeferredError, r.Note(err.Error()), 0, 0, 0)
	}
}

// takeCkptErr returns and clears the deferred checkpoint failure.
func (sj *storeJournal) takeCkptErr() error {
	sj.emu.Lock()
	err := sj.ckptErr
	sj.ckptErr = nil
	sj.emu.Unlock()
	return err
}

// waitDurable blocks until the journaled commit seq is covered by a
// group fsync (SyncAlways only; a no-op under the other policies).
// Called AFTER s.mu is released, so concurrent committers share one
// fsync while the store keeps accepting appends. Nil-safe: an
// in-memory store passes sj == nil and seq == 0.
func (sj *storeJournal) waitDurable(seq uint64) error {
	if sj == nil || seq == 0 {
		return nil
	}
	return sj.j.WaitDurable(seq)
}

// install writes one pinned checkpoint, treating a superseded pin as
// success (a newer checkpoint already covers its state).
func (sj *storeJournal) install(job *ckptJob) error {
	sj.installMu.Lock()
	defer sj.installMu.Unlock()
	start := time.Now()
	err := sj.j.InstallCheckpoint(job.pin, job.ck)
	if errors.Is(err, wal.ErrCheckpointSuperseded) {
		sj.recorder().Record(obs.EvCheckpointSupersede, 0, 0, int64(job.ck.Version), 0)
		return nil
	}
	if err == nil {
		sj.recorder().Record(obs.EvCheckpointInstall, 0, time.Since(start), int64(job.ck.Version), 0)
	}
	return err
}

// ckptJob is one pinned store checkpoint awaiting its background
// encode + install.
type ckptJob struct {
	pin wal.CheckpointPin
	ck  *wal.Checkpoint
}

// journalLocked journals one commit record before it is applied and
// returns its append sequence for the post-lock durability wait; a nil
// journal (in-memory store) accepts everything with seq 0. A deferred
// auto-checkpoint failure is surfaced here — the commit that observes
// it is rejected (the store unchanged) and the error cleared, so the
// caller learns about the degraded durability at the next mutation
// instead of only at Close. Requires s.mu held for writing.
func (s *Store) journalLocked(rec wal.Record) (uint64, error) {
	if s.closed {
		return 0, fmt.Errorf("store: closed")
	}
	if s.journal == nil {
		return 0, nil
	}
	if err := s.journal.takeCkptErr(); err != nil {
		return 0, fmt.Errorf("store: deferred auto-checkpoint failure: %w", err)
	}
	return s.journal.j.AppendAsync(rec)
}

// maybeCheckpointLocked runs the auto-checkpoint policy after a commit:
// when the threshold is reached the state is pinned here (the bounded,
// O(db copy) part) and the encode + install handed to the background
// scheduler. A checkpoint failure does not fail a commit (the commit is
// already durable in the log); it is deferred and surfaced by the next
// mutation or Sync — or by Close, whichever comes first. Requires s.mu
// held for writing.
func (s *Store) maybeCheckpointLocked() {
	sj := s.journal
	if sj == nil || sj.checkpointEvery <= 0 {
		return
	}
	if sj.j.AppendedSinceCheckpoint() < uint64(sj.checkpointEvery) {
		return
	}
	job, err := s.pinCheckpointLocked()
	if err != nil {
		sj.noteCkptErr(err)
		return
	}
	sj.sched.submit(func() error { return sj.install(job) })
}

// pinCheckpointLocked pins the store's current state for a checkpoint:
// BeginCheckpoint rotates the journal (O(1)), and the object slice and
// materialized decompositions are captured copy-on-write — objects and
// published decomposition levels are immutable, so the background
// install serializes them without the lock while commits proceed. This
// is the entire commit-path cost of a checkpoint. Requires s.mu held
// for writing.
func (s *Store) pinCheckpointLocked() (*ckptJob, error) {
	pin, err := s.journal.j.BeginCheckpoint()
	if err != nil {
		return nil, err
	}
	db := make([]*uncertain.Object, len(s.db))
	copy(db, s.db)
	decomp := make([][][]uncertain.Partition, len(db))
	for i, o := range db {
		decomp[i] = s.cache.Materialized(o)
	}
	// Lock-free, allocation-free record: the pin runs on the commit path
	// under s.mu, which the recorder never stalls.
	s.journal.recorder().Record(obs.EvCheckpointBegin, 0, 0, int64(s.version), 0)
	return &ckptJob{pin: pin, ck: &wal.Checkpoint{
		Version:      s.version,
		Objects:      db,
		Decomp:       decomp,
		CacheVersion: s.cache.Version(),
	}}, nil
}

// drainCheckpoints waits until no background checkpoint install is
// pending or running — the quiesce point Sync and Close use, exposed
// in-package for tests that need a stable directory image or a
// deterministic deferred-error observation.
func (s *Store) drainCheckpoints() {
	if s.journal != nil {
		s.journal.sched.drain()
	}
}

// Checkpoint durably snapshots the store's current state — the object
// database in database order, the store version and every materialized
// decomposition — and truncates the journal to it. Reopening afterwards
// loads the snapshot and replays only commits journaled since. The
// state is pinned under the store lock but encoded and installed
// outside it, so concurrent commits are never stalled by the write.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	if s.journal == nil {
		s.mu.Unlock()
		return fmt.Errorf("store: not durable (no journal)")
	}
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("store: closed")
	}
	sj := s.journal
	job, err := s.pinCheckpointLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return sj.install(job)
}

// Sync forces journaled commits to stable storage, regardless of the
// sync policy. It first drains any in-flight background checkpoint and
// surfaces (and clears) a deferred auto-checkpoint failure, so a caller
// that never mutates again still learns the checkpoint did not land. It
// is a no-op on an in-memory store.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil || s.closed {
		return nil
	}
	s.journal.sched.drain()
	if err := s.journal.takeCkptErr(); err != nil {
		return fmt.Errorf("store: deferred auto-checkpoint failure: %w", err)
	}
	return s.journal.j.Sync()
}

// Close releases the journal of a durable store, draining any in-flight
// background checkpoint first. Mutations fail after Close (they could
// no longer be journaled); snapshots and queries remain usable. The
// on-disk state stays fully recoverable — Close writes no checkpoint,
// reopening replays the log tail. Closing an in-memory store is a
// no-op.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil || s.closed {
		return nil
	}
	s.closed = true
	s.journal.sched.drain()
	err := s.journal.takeCkptErr()
	if cerr := s.journal.j.Close(); err == nil {
		err = cerr
	}
	return err
}

// OpenStore opens (or initializes) a durable store rooted at
// popts.Dir: the newest checkpoint is loaded — objects, version AND
// every decomposition the crashed process had materialized — and the
// journal tail is replayed on top, stopping cleanly at the last intact
// record. The recovered store is bit-identical to the store that wrote
// the journal: same database order, same versions, same query answers.
// Opts must match the options the journal was written under (they are
// not persisted); opts.SharedDecomps must be left unset.
func OpenStore(popts PersistOptions, opts core.Options) (*Store, error) {
	return openStore(popts, opts, nil)
}

// openStore is OpenStore with a hook observing every replayed record —
// the sharded router collects the logical records to rebuild its
// global order.
func openStore(popts PersistOptions, opts core.Options, onRecord func(wal.Record)) (*Store, error) {
	j, err := wal.Open(popts.Dir, popts.wal())
	if err != nil {
		return nil, err
	}
	s, err := recoverStore(j, popts, opts, onRecord)
	if err != nil {
		j.Close()
		return nil, err
	}
	return s, nil
}

// recoverStore builds a store from a journal's checkpoint and tail.
func recoverStore(j *wal.Journal, popts PersistOptions, opts core.Options, onRecord func(wal.Record)) (*Store, error) {
	ck := j.Checkpoint()
	var base uncertain.Database
	if ck != nil {
		base = ck.Objects
	}
	s, err := NewStore(base, opts)
	if err != nil {
		return nil, err
	}
	if ck != nil {
		s.version = ck.Version
		// Seed the persistent cache with the checkpointed
		// decompositions: the first queries after reopen reuse the
		// crashed process's kd-splits instead of recomputing them.
		// Replayed updates and deletes invalidate per object through the
		// normal mutation paths, exactly like live commits.
		for i, o := range ck.Objects {
			if ck.Decomp != nil && ck.Decomp[i] != nil {
				s.cache.Seed(o, ck.Decomp[i])
			}
		}
		s.cache.SetVersion(ck.CacheVersion)
	}
	err = j.Replay(func(rec wal.Record) error {
		if err := s.applyRecordLocked(rec); err != nil {
			return err
		}
		if onRecord != nil {
			onRecord(rec)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.journal = newStoreJournal(j, popts.CheckpointEvery, s.obs)
	return s, nil
}

// applyRecordLocked applies one replayed journal record to the store
// being recovered. No locks, snapshots or watchers exist yet; the
// mutation bodies are the same ones live commits run, so the recovered
// state is bit-identical to the state that journaled the record.
func (s *Store) applyRecordLocked(rec wal.Record) error {
	if rec.Version != s.version+1 {
		return fmt.Errorf("store: journal record version %d after store version %d", rec.Version, s.version)
	}
	switch rec.Op {
	case wal.OpInsert, wal.OpMoveIn:
		if _, dup := s.byID[rec.Obj.ID]; dup {
			return fmt.Errorf("store: journal re-inserts object ID %d", rec.Obj.ID)
		}
		s.addLocked(rec.Obj)
	case wal.OpDelete, wal.OpMoveOut:
		o, ok := s.byID[rec.ID]
		if !ok {
			return fmt.Errorf("store: journal deletes unknown object ID %d", rec.ID)
		}
		s.removeLocked(o)
	case wal.OpUpdate:
		old, ok := s.byID[rec.Obj.ID]
		if !ok {
			return fmt.Errorf("store: journal updates unknown object ID %d", rec.Obj.ID)
		}
		s.replaceLocked(old, rec.Obj)
	default:
		return fmt.Errorf("store: journal record with unknown op %d", rec.Op)
	}
	s.version = rec.Version
	return nil
}

// BootstrapStore creates a NEW durable store over db at popts.Dir,
// writing the initial database as the first checkpoint. It fails when
// the directory already holds a journal — recover that with OpenStore
// instead (an explicit choice, so a typo cannot silently shadow an
// existing database with a fresh one).
func BootstrapStore(db uncertain.Database, popts PersistOptions, opts core.Options) (*Store, error) {
	s, err := NewStore(db, opts)
	if err != nil {
		return nil, err
	}
	if err := s.bootstrapJournal(popts, popts.CheckpointEvery); err != nil {
		return nil, err
	}
	return s, nil
}

// bootstrapJournal attaches a fresh journal to an already-built store
// and writes its state as the initial checkpoint (synchronously — the
// genesis state must be durable before the store is handed out).
func (s *Store) bootstrapJournal(popts PersistOptions, checkpointEvery int) error {
	j, err := newEmptyJournal(popts)
	if err != nil {
		return err
	}
	sj := newStoreJournal(j, checkpointEvery, s.obs)
	s.journal = sj
	job, err := s.pinCheckpointLocked()
	if err == nil {
		err = sj.install(job)
	}
	if err != nil {
		s.journal = nil
		j.Close()
		return err
	}
	return nil
}

// newEmptyJournal opens popts.Dir and verifies it holds no journal yet.
// The emptiness probe stops at the first checkpoint or intact record
// instead of replaying the whole log — rejecting a bootstrap over an
// existing database costs one read, however long its history.
func newEmptyJournal(popts PersistOptions) (*wal.Journal, error) {
	j, err := wal.Open(popts.Dir, popts.wal())
	if err != nil {
		return nil, err
	}
	has, err := j.HasData()
	if err != nil {
		j.Close()
		return nil, err
	}
	if has {
		j.Close()
		return nil, fmt.Errorf("store: %s already holds a journal (open it instead of bootstrapping)", popts.Dir)
	}
	// Replay positions the (empty) journal for appending.
	if err := j.Replay(nil); err != nil {
		j.Close()
		return nil, err
	}
	return j, nil
}

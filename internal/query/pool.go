package query

import (
	"sync"

	"probprune/internal/core"
	"probprune/internal/rtree"
)

// This file holds the query layer's free lists. A multi-candidate query
// dispatches one IDCA run per candidate onto the executor's workers;
// each run's transient working set (generating-function ping-pong
// buffers, interval scratch, partition-pair lists) and each
// preselection's best-first queue used to be reallocated per run. The
// pools below recycle them across runs, candidates, queries and
// engines — both structures are instance-independent, so the pools are
// package-global.

// scratchPool recycles per-run IDCA arenas (core.Scratch). A scratch is
// attached to exactly one run at a time: Engine.run checks one out and
// returns it when the run completes. Sessions (which outlive the call
// that creates them) get private, unpooled arenas instead.
var scratchPool = sync.Pool{New: func() any { return core.NewScratch() }}

// nearbyPool recycles best-first traversal queues (rtree.NearbyBuf) for
// the kNN/RkNN preselection streams. Buffers are tree-independent, so
// one pool serves every index and every shard.
var nearbyPool = sync.Pool{New: func() any { return new(rtree.NearbyBuf) }}

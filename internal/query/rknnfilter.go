package query

import (
	"probprune/internal/geom"
	"probprune/internal/rtree"
	"probprune/internal/uncertain"
)

// This file implements candidate preselection for reverse kNN queries —
// the analogue of knnfilter.go with the roles swapped. An RKNN
// candidate B is evaluated as the reference of the run (q the target):
// the predicate is P(DomCount(q, B) < k) >= tau. B can be discarded
// without a run when at least k certainly-existing objects A satisfy
//
//	MaxDist(A, B) < MinDist(q, B),
//
// because then, for every possible world, dist(a, b) <= MaxDist(A, B) <
// MinDist(q, B) <= dist(q, b): all k objects are closer to B than q in
// every world, so P(DomCount(q, B) < k) = 0.
//
// With an index the count comes from a best-first Nearby stream ordered
// by MaxDist(·, B) (node-level lower bound: MinDist, which never
// exceeds a descendant's MaxDist). The stream is consumed only until
// either k qualifying objects have appeared or the next distance
// reaches MinDist(q, B) — whichever happens first, so the per-candidate
// cost is O(k) stream steps rather than a database scan.

// rknnPrunable reports whether candidate b is impossible as an RKNN
// result for query object q.
func (e *Engine) rknnPrunable(q, b *uncertain.Object, k int, n geom.Norm) bool {
	if e.plane != nil {
		return e.plane.rknnPrunable(q, b, k, n)
	}
	lim := q.MBR.MinDistRect(n, b.MBR)
	if lim <= 0 {
		// q can coincide with b's region; no object can be strictly
		// closer than distance zero.
		return false
	}
	if e.Index != nil {
		return rknnCertainDominators(e.Index, q, b, k, lim, n) >= k
	}
	count := 0
	for _, o := range e.DB {
		if o == q || o == b || o.ExistenceProb() < 1 {
			continue
		}
		if o.MBR.MaxDistRect(n, b.MBR) < lim {
			count++
			if count >= k {
				return true
			}
		}
	}
	return false
}

// rknnCertainDominators counts the certainly-existing indexed objects
// (excluding q and b) whose MaxDist to b is below lim, capped at need.
// A capped count over one partition composes across shards: the global
// impossibility test is whether the per-shard counts sum to k, with
// each shard asked only for the residual it could still contribute.
func rknnCertainDominators(index *rtree.Tree[*uncertain.Object], q, b *uncertain.Object, need int, lim float64, n geom.Norm) int {
	count := 0
	buf := nearbyPool.Get().(*rtree.NearbyBuf)
	defer nearbyPool.Put(buf)
	index.NearbyWith(buf,
		func(mbr geom.Rect, _ *uncertain.Object, leaf bool) float64 {
			if leaf {
				return mbr.MaxDistRect(n, b.MBR)
			}
			return mbr.MinDistRect(n, b.MBR)
		},
		func(_ geom.Rect, o *uncertain.Object, d float64) bool {
			if d >= lim {
				return false // ascending stream: no further dominators
			}
			if o == q || o == b || o.ExistenceProb() < 1 {
				return true
			}
			count++
			return count < need
		},
	)
	return count
}

package query

import (
	"sync"

	"probprune/internal/obs"
)

// ckptScheduler runs checkpoint installs in the background, off the
// store lock. It holds at most one pending install: a newer pin
// submitted while another install runs replaces a not-yet-started one
// (the replaced pin's install would be skipped as superseded anyway),
// so a burst of auto-checkpoints coalesces into the newest state
// instead of queueing stale encodes. drain blocks until the queue is
// empty — the synchronization point Sync and Close use to make
// deferred checkpoint errors deterministic.
type ckptScheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending func() error // newest not-yet-started install; the closure owns its pinned state
	busy    bool         // an install goroutine is live (running or between jobs)
	onErr   func(error)  // receives install failures (deferred-error sink)
	gate    func()       // test hook: runs before each install, outside mu
	queue   *obs.Gauge   // optional: pending + running installs (0..2)
	merged  *obs.Counter // optional: pins coalesced away before installing
	// events resolves the armed flight recorder (nil func or nil result
	// when disarmed); coalesced pins record a supersede event.
	events func() *obs.Recorder
}

func newCkptScheduler(onErr func(error)) *ckptScheduler {
	c := &ckptScheduler{onErr: onErr}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// submit schedules install to run in the background, replacing any
// pending one.
func (c *ckptScheduler) submit(install func() error) {
	c.mu.Lock()
	if c.pending != nil {
		if c.merged != nil {
			c.merged.Inc()
		}
		if c.events != nil {
			// Record is lock-free, so holding c.mu across it is safe.
			c.events().Record(obs.EvCheckpointSupersede, 0, 0, 0, 0)
		}
	}
	c.pending = install
	spawn := !c.busy
	c.busy = true
	c.publishLocked()
	c.mu.Unlock()
	if spawn {
		go c.run()
	}
}

// run drains pending installs until none remain, then exits; submit
// spawns a new run when needed. Install failures go to onErr.
func (c *ckptScheduler) run() {
	c.mu.Lock()
	for c.pending != nil {
		job := c.pending
		c.pending = nil
		gate := c.gate
		c.publishLocked()
		c.mu.Unlock()
		if gate != nil {
			gate()
		}
		if err := job(); err != nil {
			c.onErr(err)
		}
		c.mu.Lock()
	}
	c.busy = false
	c.publishLocked()
	c.cond.Broadcast()
	c.mu.Unlock()
}

// drain blocks until no install is pending or running.
func (c *ckptScheduler) drain() {
	c.mu.Lock()
	for c.busy || c.pending != nil {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// publishLocked updates the depth gauge. Requires c.mu held.
func (c *ckptScheduler) publishLocked() {
	if c.queue == nil {
		return
	}
	n := int64(0)
	if c.busy {
		n++
	}
	if c.pending != nil {
		n++
	}
	c.queue.Set(n)
}

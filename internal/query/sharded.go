package query

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/obs"
	"probprune/internal/rtree"
	"probprune/internal/uncertain"
	"probprune/internal/wal"
)

// ShardedStore is a live uncertain-object store partitioned across N
// independent shards, each a full Store with its own R-tree,
// decomposition cache and versioned copy-on-write snapshots, behind a
// router that assigns every object to exactly one shard and executes
// queries by scatter-gather.
//
// # Why sharding composes exactly
//
// The paper's complete-domination filter classifies each database
// object independently (core.ClassifyRole reads one object, the target
// and the reference), so a candidate's filter outcome over the whole
// database is the disjoint union of its outcomes over the shards:
// dominator and pruned counts add, influence sets concatenate, and the
// canonical (object ID) influence ordering of core makes the merged
// refinement input bit-identical to the monolithic one. The same holds
// for the preselection bounds: the global kNN threshold m_{k+1} is an
// order statistic computable from each shard's k+1 smallest MaxDist
// values, and the RkNN impossibility count is a sum of capped per-shard
// counts. Every query therefore runs its filter phase per shard, merges
// the bounds at the router, and refines exactly once per surviving
// candidate — no more refinement work than an unsharded Store, and
// results that are bit-identical to one at any shard count and any
// Options.Parallelism (the cross-shard equivalence suite enforces
// this).
//
// # Consistency
//
// The router serializes mutations and routes each to its object's home
// shard; a query binds to a ShardedSnapshot — one immutable per-shard
// snapshot vector plus the global-order object slice — published
// atomically under the router lock, so every query observes a database
// state that existed as a whole. Only the mutated shard pays the
// copy-on-write detach (an O(n/N) clone instead of O(n)), which is the
// serving-path win of sharding under write load.
//
// # Rebalancing
//
// Objects stay on the shard they were routed to at insert; Move and
// Rebalance migrate them online, riding the shards' copy-on-write
// clone path. A move changes no logical database state: versions,
// published change streams and every query result are unaffected —
// the shard router fuzzer enforces that moves never lose, duplicate,
// or re-verdict an object.
type ShardedStore struct {
	opts   core.Options
	part   ShardFunc
	shards []*Store

	mu      sync.RWMutex
	db      uncertain.Database // global insertion order; detached from snapshots
	byID    map[int]*uncertain.Object
	home    map[int]int // object ID -> shard index
	cache   *core.DecompCache
	version uint64
	snap    *ShardedSnapshot

	// obs is the router-level query metric set, shared with every shard
	// store so direct shard queries and scatter-gather queries land in
	// one place. Immutable after construction.
	obs *Metrics

	// sj, when non-nil, makes the store durable: shards journal every
	// commit under the router epoch and sj coordinates manifest writes
	// and checkpoints (see OpenShardedStore). closed rejects mutations
	// after Close.
	sj     *shardedJournal
	closed bool

	watchers    []watcher
	nextWatcher int
}

// ShardFunc deterministically assigns an object to one of n shards
// (n >= 1). It must depend only on the object (typically its ID or
// MBR), never on external state: the fuzzers replay routing decisions
// and Rebalance re-applies the function to the live database.
type ShardFunc func(o *uncertain.Object, n int) int

// HashShards is the default router: FNV-1a over the object ID. It
// balances load for arbitrary ID patterns and keeps an object's home
// shard stable under Update.
func HashShards(o *uncertain.Object, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	x := uint64(o.ID)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= prime64
		x >>= 8
	}
	return int(h % uint64(n))
}

// StripeShards returns a spatial router: the MBR center along dimension
// dim is binned into n equal stripes of [lo, hi] (values outside clamp
// to the border stripes). Spatially clustered queries then touch few
// shards' worth of influence objects per filter probe; combine with
// Rebalance when updates drift objects across stripe borders.
func StripeShards(dim int, lo, hi float64) ShardFunc {
	return func(o *uncertain.Object, n int) int {
		if n <= 1 || hi <= lo || dim < 0 || dim >= len(o.MBR.Min) {
			return 0
		}
		c := (o.MBR.Min[dim] + o.MBR.Max[dim]) / 2
		i := int(float64(n) * (c - lo) / (hi - lo))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i
	}
}

// ShardedOptions configures the shard layout of a ShardedStore.
type ShardedOptions struct {
	// Shards is the shard count; <= 0 selects 1 (a sharded store with
	// one shard behaves exactly like a Store, which the equivalence
	// suite exploits).
	Shards int
	// Partition routes objects to shards; nil selects HashShards.
	Partition ShardFunc
}

// NewShardedStore builds a sharded store over db (objects must have
// unique IDs; the slice is copied, the objects are shared and must not
// be mutated). Shards are STR bulk-loaded concurrently. Opts configures
// every query, like NewStore; Opts.SharedDecomps must be left unset.
func NewShardedStore(db uncertain.Database, sopts ShardedOptions, opts core.Options) (*ShardedStore, error) {
	if opts.SharedDecomps != nil {
		return nil, fmt.Errorf("sharded store: Options.SharedDecomps must be unset (the store manages its own cache)")
	}
	n := sopts.Shards
	if n <= 0 {
		n = 1
	}
	part := sopts.Partition
	if part == nil {
		part = HashShards
	}
	s := &ShardedStore{
		opts:   opts,
		part:   part,
		shards: make([]*Store, n),
		db:     make(uncertain.Database, 0, len(db)),
		byID:   make(map[int]*uncertain.Object, len(db)),
		home:   make(map[int]int, len(db)),
		cache:  core.NewDecompCache(opts.MaxHeight),
		obs:    NewMetrics(),
	}
	parts := make([]uncertain.Database, n)
	for _, o := range db {
		if o == nil {
			return nil, fmt.Errorf("sharded store: nil object")
		}
		if _, dup := s.byID[o.ID]; dup {
			return nil, fmt.Errorf("sharded store: duplicate object ID %d", o.ID)
		}
		si := s.shardFor(o)
		s.byID[o.ID] = o
		s.home[o.ID] = si
		s.db = append(s.db, o)
		s.cache.Add(o)
		parts[si] = append(parts[si], o)
	}
	// Shard construction (one STR bulk load each) is independent per
	// shard; building them concurrently makes ingest scale with the
	// shard count.
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.shards[i], errs[i] = NewStore(parts[i], opts)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// The shards share the router's metric set (replacing the private
	// one NewStore built) so every query path lands in one place. No
	// shard snapshot has been published yet, so the swap is safe.
	for _, sh := range s.shards {
		sh.obs = s.obs
	}
	return s, nil
}

// shardFor routes an object, folding out-of-range partitioner results
// back into [0, n).
func (s *ShardedStore) shardFor(o *uncertain.Object) int {
	n := len(s.shards)
	if n == 0 {
		n = 1 // during construction, before the slice is populated
	}
	i := s.part(o, n) % n
	if i < 0 {
		i += n
	}
	return i
}

// NumShards returns the shard count.
func (s *ShardedStore) NumShards() int { return len(s.shards) }

// ShardSizes returns the current number of objects per shard.
func (s *ShardedStore) ShardSizes() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sizes := make([]int, len(s.shards))
	for _, si := range s.home {
		sizes[si]++
	}
	return sizes
}

// ShardOf returns the home shard of the object with the given ID.
func (s *ShardedStore) ShardOf(id int) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	si, ok := s.home[id]
	return si, ok
}

// Len returns the number of stored objects across all shards.
func (s *ShardedStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.db)
}

// Version returns the logical mutation epoch: it increments on every
// Insert/Delete/Update. Rebalancing moves do not change the logical
// database and leave it untouched.
func (s *ShardedStore) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Get returns the stored object with the given ID.
func (s *ShardedStore) Get(id int) (*uncertain.Object, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.byID[id]
	return o, ok
}

// Watch registers a commit hook on the merged multi-shard change
// stream, with the same contract as Store.Watch: returned atomically
// with the snapshot of the current state, the callback observes exactly
// the changes with Version > Snap.Version(), gaplessly and in version
// order, each carrying the ShardedSnapshot of its version (whose
// version vector localizes the change to its shard). The callback runs
// under the router lock and must not call back into the store.
func (s *ShardedStore) Watch(fn func(Change)) (SnapshotView, func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextWatcher
	s.nextWatcher++
	s.watchers = append(s.watchers, watcher{id: id, fn: fn})
	stop := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, w := range s.watchers {
			if w.id == id {
				s.watchers = append(s.watchers[:i], s.watchers[i+1:]...)
				return
			}
		}
	}
	return s.snapshotLocked(), stop
}

// notifyLocked delivers a committed change to every watcher. Requires
// s.mu held for writing, after the mutation was applied.
func (s *ShardedStore) notifyLocked(kind ChangeKind, old, new *uncertain.Object) {
	if len(s.watchers) == 0 {
		return
	}
	ch := Change{
		Version: s.version,
		Kind:    kind,
		Old:     old,
		New:     new,
		Snap:    s.snapshotLocked(),
	}
	for _, w := range s.watchers {
		w.fn(ch)
	}
}

// detachLocked makes the router's global-order slice private again
// after a snapshot was published; the shards detach themselves on their
// own mutations. Requires s.mu held for writing.
func (s *ShardedStore) detachLocked() {
	if s.snap == nil {
		return
	}
	db := make(uncertain.Database, len(s.db))
	copy(db, s.db)
	s.db = db
	s.snap = nil
}

// Insert adds a new object, routing it to its partition shard; the ID
// must not be in use.
func (s *ShardedStore) Insert(o *uncertain.Object) error {
	return s.InsertCtx(context.Background(), o)
}

// InsertCtx is Insert with a context: a trace attached via
// obs.WithTrace records the home shard's durability wait as its
// WAL-wait phase (see Store.InsertCtx).
func (s *ShardedStore) InsertCtx(ctx context.Context, o *uncertain.Object) error {
	if o == nil {
		return fmt.Errorf("sharded store: nil object")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.surfaceCkptErrLocked(); err != nil {
		return err
	}
	if _, dup := s.byID[o.ID]; dup {
		return fmt.Errorf("sharded store: duplicate object ID %d", o.ID)
	}
	si := s.shardFor(o)
	s.detachLocked()
	if err := s.shards[si].insertOp(ctx, o, wal.OpInsert, s.version+1); err != nil {
		return err
	}
	s.byID[o.ID] = o
	s.home[o.ID] = si
	s.db = append(s.db, o)
	s.cache.Add(o)
	s.version++
	s.notifyLocked(ChangeInsert, nil, o)
	s.maybeCheckpointLocked()
	return nil
}

// Delete removes the object with the given ID from its home shard and
// reports whether one was stored. Journaling errors on a durable store
// surface through DeleteErr; Delete itself keeps the boolean contract
// and leaves the store unchanged when journaling fails.
func (s *ShardedStore) Delete(id int) bool {
	ok, _ := s.DeleteErr(id)
	return ok
}

// DeleteErr is Delete with the journaling error exposed: ok reports
// whether the ID was stored, err a failure to journal the commit (the
// store is unchanged when err != nil).
func (s *ShardedStore) DeleteErr(id int) (bool, error) {
	return s.DeleteErrCtx(context.Background(), id)
}

// DeleteErrCtx is DeleteErr with a context carrying an optional trace
// (see InsertCtx).
func (s *ShardedStore) DeleteErrCtx(ctx context.Context, id int) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.surfaceCkptErrLocked(); err != nil {
		return false, err
	}
	o, ok := s.byID[id]
	if !ok {
		return false, nil
	}
	s.detachLocked()
	if _, err := s.shards[s.home[id]].deleteOp(ctx, id, wal.OpDelete, s.version+1); err != nil {
		return false, err
	}
	for i, x := range s.db {
		if x == o {
			s.db = append(s.db[:i], s.db[i+1:]...)
			break
		}
	}
	delete(s.byID, id)
	delete(s.home, id)
	s.cache.Invalidate(o)
	s.version++
	s.notifyLocked(ChangeDelete, o, nil)
	s.maybeCheckpointLocked()
	return true, nil
}

// Update atomically replaces the object carrying o.ID on its home
// shard; the object keeps its home (and its global database-order
// position) even when the partitioner would now route it elsewhere —
// use Rebalance to re-home drifted objects.
func (s *ShardedStore) Update(o *uncertain.Object) error {
	return s.UpdateCtx(context.Background(), o)
}

// UpdateCtx is Update with a context carrying an optional trace (see
// InsertCtx).
func (s *ShardedStore) UpdateCtx(ctx context.Context, o *uncertain.Object) error {
	if o == nil {
		return fmt.Errorf("sharded store: nil object")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.surfaceCkptErrLocked(); err != nil {
		return err
	}
	old, ok := s.byID[o.ID]
	if !ok {
		return fmt.Errorf("sharded store: update of unknown object ID %d", o.ID)
	}
	s.detachLocked()
	if err := s.shards[s.home[o.ID]].updateOp(ctx, o, s.version+1); err != nil {
		return err
	}
	for i, x := range s.db {
		if x == old {
			s.db[i] = o
			break
		}
	}
	s.byID[o.ID] = o
	s.cache.Invalidate(old)
	s.cache.Add(o)
	s.version++
	s.notifyLocked(ChangeUpdate, old, o)
	s.maybeCheckpointLocked()
	return nil
}

// Move migrates the object with the given ID to shard dst without
// changing the logical database: versions, change streams and query
// results are unaffected — in-flight queries keep their snapshots, new
// queries see the object on its new shard with bit-identical bounds.
func (s *ShardedStore) Move(id, dst int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if dst < 0 || dst >= len(s.shards) {
		return fmt.Errorf("sharded store: shard %d out of range [0, %d)", dst, len(s.shards))
	}
	src, ok := s.home[id]
	if !ok {
		return fmt.Errorf("sharded store: move of unknown object ID %d", id)
	}
	if src == dst {
		return nil
	}
	return s.moveLocked(id, src, dst)
}

// moveLocked performs one detached migration. Requires s.mu held for
// writing and id resident on shard src. Moves change no logical state:
// the shard journals record them as OpMoveIn/OpMoveOut under the
// current router epoch, and recovery excludes them from global-order
// replay.
//
// The move-in is journaled (and applied) BEFORE the move-out: a crash
// between the two appends leaves the object durably on both shards —
// never on neither — and recovery detects the duplicate, drops the
// copy that arrived through the dangling move-in (journaling the
// compensating move-out), and proceeds as if the migration never
// happened. Insert into dst cannot fail logically (o is non-nil and
// the ID is unique across shards by the router's bookkeeping), so any
// error from either step is a journaling failure with the store
// unchanged, except a move-out failure after a successful move-in,
// which is rolled back in memory and on disk before returning.
func (s *ShardedStore) moveLocked(id, src, dst int) error {
	o := s.byID[id]
	s.detachLocked()
	ctx := context.Background()
	if err := s.shards[dst].insertOp(ctx, o, wal.OpMoveIn, s.version); err != nil {
		return err
	}
	if _, err := s.shards[src].deleteOp(ctx, id, wal.OpMoveOut, s.version); err != nil {
		// Undo the half-applied migration; if even the compensating
		// move-out cannot be journaled, the store cannot reach a
		// consistent durable state and must not keep serving.
		if _, uerr := s.shards[dst].deleteOp(ctx, id, wal.OpMoveOut, s.version); uerr != nil {
			panic(fmt.Sprintf("sharded store: move of object %d failed (%v) and could not be rolled back: %v", id, err, uerr))
		}
		return err
	}
	s.home[id] = dst
	s.maybeCheckpointLocked()
	return nil
}

// Rebalance re-applies the partitioner to every stored object and
// migrates the ones whose current home differs, online, without
// blocking queries (each published snapshot stays valid). It returns
// the number of objects moved. Useful after Update drift under a
// spatial partitioner, or after changing load patterns under any. On a
// durable store a migration that fails to journal stops the pass early
// (the logical database is unaffected — the stragglers stay on their
// old shards); the error is deferred to Close, like auto-checkpoint
// failures.
func (s *ShardedStore) Rebalance() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	moved := 0
	for _, o := range s.db {
		dst := s.shardFor(o)
		if src := s.home[o.ID]; src != dst {
			if err := s.moveLocked(o.ID, src, dst); err != nil {
				if s.sj != nil {
					s.sj.noteCkptErr(err)
				}
				return moved
			}
			moved++
		}
	}
	return moved
}

// Snapshot publishes (or returns the already-published) consistent cut
// across all shards: one immutable per-shard snapshot vector plus the
// global-order object slice, all taken at the same router epoch.
func (s *ShardedStore) Snapshot() *ShardedSnapshot {
	s.mu.RLock()
	snap := s.snap
	s.mu.RUnlock()
	if snap != nil {
		return snap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// snapshotLocked publishes (or returns) the sharded snapshot of the
// current state. Requires s.mu held for writing.
func (s *ShardedStore) snapshotLocked() *ShardedSnapshot {
	if s.snap == nil {
		shards := make([]*Snapshot, len(s.shards))
		vv := make([]uint64, len(s.shards))
		for i, sh := range s.shards {
			shards[i] = sh.Snapshot()
			vv[i] = shards[i].Version()
		}
		s.snap = &ShardedSnapshot{
			db:      s.db,
			shards:  shards,
			vv:      vv,
			version: s.version,
			opts:    s.opts,
			cache:   s.cache,
			obs:     s.obs,
		}
	}
	return s.snap
}

// ShardedSnapshot is one immutable, consistent cut of a ShardedStore:
// per-shard snapshots, the global-order object slice, the router epoch
// and the per-shard version vector. All queries on one sharded snapshot
// observe exactly the same objects on every shard.
type ShardedSnapshot struct {
	db      uncertain.Database
	shards  []*Snapshot
	vv      []uint64
	version uint64
	opts    core.Options
	cache   *core.DecompCache
	obs     *Metrics

	engineOnce sync.Once
	engine     *Engine
}

// Version returns the router mutation epoch the snapshot was published
// at.
func (sn *ShardedSnapshot) Version() uint64 { return sn.version }

// VersionVector returns a copy of the per-shard store versions at the
// cut — the cursor a merged change-stream consumer uses to localize a
// change to the one shard that advanced.
func (sn *ShardedSnapshot) VersionVector() []uint64 {
	vv := make([]uint64, len(sn.vv))
	copy(vv, sn.vv)
	return vv
}

// NumShards returns the shard count.
func (sn *ShardedSnapshot) NumShards() int { return len(sn.shards) }

// Shard returns the immutable snapshot of one shard.
func (sn *ShardedSnapshot) Shard(i int) *Snapshot { return sn.shards[i] }

// Len returns the number of objects in the snapshot.
func (sn *ShardedSnapshot) Len() int { return len(sn.db) }

// DB returns a copy of the snapshot's object slice in global database
// order (the objects are shared and must be treated as read-only).
func (sn *ShardedSnapshot) DB() uncertain.Database {
	db := make(uncertain.Database, len(sn.db))
	copy(db, sn.db)
	return db
}

// Engine returns the snapshot-bound scatter-gather query engine: the
// candidate set comes from the global-order slice, filter bounds are
// computed per shard and merged canonically, refinement runs once per
// surviving candidate at the router. Results are bit-identical to an
// unsharded Store (or a fresh Engine) over the same state, at any shard
// count and any Parallelism.
func (sn *ShardedSnapshot) Engine() *Engine {
	sn.engineOnce.Do(func() {
		opts := sn.opts
		opts.SharedDecomps = sn.cache
		sn.engine = &Engine{DB: sn.db, Opts: opts, plane: &shardPlane{shards: sn.shards}, Obs: sn.obs}
	})
	return sn.engine
}

// Metrics returns the router-level query metric set, shared by every
// shard and every sharded snapshot engine.
func (s *ShardedStore) Metrics() *Metrics { return s.obs }

// SetRecorder arms (or, with nil, disarms) the flight recorder across
// the router and every shard: slow queries, every shard journal's
// checkpoint lifecycle and the shard WALs' durability events all flow
// into the one ring (see Store.SetRecorder).
func (s *ShardedStore) SetRecorder(rec *obs.Recorder) {
	s.obs.SetRecorder(rec)
	s.mu.RLock()
	shards := s.shards
	sj := s.sj
	s.mu.RUnlock()
	if sj != nil {
		sj.rec.Store(rec)
	}
	for _, sh := range shards {
		sh.mu.RLock()
		sj := sh.journal
		sh.mu.RUnlock()
		sj.setRecorder(rec)
	}
}

// SetSlowQueryThreshold arms the flight-recorder slow-query capture
// (see Metrics.SetSlowQueryThreshold). <= 0 disarms.
func (s *ShardedStore) SetSlowQueryThreshold(d time.Duration) {
	s.obs.SetSlowQueryThreshold(d)
}

// WALStats returns the journal metrics of a durable sharded store,
// merged across all shard journals; ok is false on an in-memory store.
func (s *ShardedStore) WALStats() (wal.MetricsSnapshot, bool) {
	s.mu.RLock()
	durable := s.sj != nil
	shards := s.shards
	s.mu.RUnlock()
	if !durable {
		return wal.MetricsSnapshot{}, false
	}
	var out wal.MetricsSnapshot
	for _, sh := range shards {
		if ms, ok := sh.WALStats(); ok {
			out.Merge(ms)
		}
	}
	return out, true
}

// BatchKNN is ShardedStore.BatchKNN pinned to this snapshot.
func (sn *ShardedSnapshot) BatchKNN(ctx context.Context, reqs []KNNRequest) ([][]Match, error) {
	return batchKNN(sn.Engine(), ctx, reqs)
}

// ShardedStore query methods: each binds to the current sharded
// snapshot and delegates to its scatter-gather engine, mirroring Store.

// KNN answers the probabilistic threshold kNN query on the current
// sharded snapshot (see Engine.KNN).
func (s *ShardedStore) KNN(q *uncertain.Object, k int, tau float64) []Match {
	return s.Snapshot().Engine().KNN(q, k, tau)
}

// KNNCtx is KNN with cancellation.
func (s *ShardedStore) KNNCtx(ctx context.Context, q *uncertain.Object, k int, tau float64) ([]Match, error) {
	return s.Snapshot().Engine().KNNCtx(ctx, q, k, tau)
}

// RKNN answers the probabilistic threshold reverse kNN query on the
// current sharded snapshot (see Engine.RKNN).
func (s *ShardedStore) RKNN(q *uncertain.Object, k int, tau float64) []Match {
	return s.Snapshot().Engine().RKNN(q, k, tau)
}

// RKNNCtx is RKNN with cancellation.
func (s *ShardedStore) RKNNCtx(ctx context.Context, q *uncertain.Object, k int, tau float64) ([]Match, error) {
	return s.Snapshot().Engine().RKNNCtx(ctx, q, k, tau)
}

// TopKNN answers the top-m probable kNN query on the current sharded
// snapshot (see Engine.TopKNN).
func (s *ShardedStore) TopKNN(q *uncertain.Object, k, m int) []Match {
	return s.Snapshot().Engine().TopKNN(q, k, m)
}

// TopKNNCtx is TopKNN with cancellation.
func (s *ShardedStore) TopKNNCtx(ctx context.Context, q *uncertain.Object, k, m int) ([]Match, error) {
	return s.Snapshot().Engine().TopKNNCtx(ctx, q, k, m)
}

// InverseRank computes the probabilistic inverse ranking on the current
// sharded snapshot (see Engine.InverseRank).
func (s *ShardedStore) InverseRank(b, r *uncertain.Object) *RankDistribution {
	return s.Snapshot().Engine().InverseRank(b, r)
}

// RankByExpectedRank ranks the current sharded snapshot by expected
// rank (see Engine.RankByExpectedRank).
func (s *ShardedStore) RankByExpectedRank(q *uncertain.Object) []Ranked {
	return s.Snapshot().Engine().RankByExpectedRank(q)
}

// UKRanks computes the U-kRanks winners on the current sharded snapshot
// (see Engine.UKRanks).
func (s *ShardedStore) UKRanks(q *uncertain.Object, k int) []RankWinner {
	return s.Snapshot().Engine().UKRanks(q, k)
}

// Batch runs fn against an engine bound to one sharded snapshot (see
// Store.Batch).
func (s *ShardedStore) Batch(fn func(*Engine)) {
	fn(s.Snapshot().Engine())
}

// BatchCtx is Batch with cancellation (see Store.BatchCtx).
func (s *ShardedStore) BatchCtx(ctx context.Context, fn func(context.Context, *Engine) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return fn(ctx, s.Snapshot().Engine())
}

// BatchKNN evaluates many kNN queries on ONE sharded snapshot, pooling
// all candidate runs (see Store.BatchKNN).
func (s *ShardedStore) BatchKNN(ctx context.Context, reqs []KNNRequest) ([][]Match, error) {
	return s.Snapshot().BatchKNN(ctx, reqs)
}

// shardPlane is the scatter-gather data plane behind a sharded
// snapshot's engine: the filter-stage primitives (IDCA filter,
// preselection threshold, impossibility count) are computed per shard
// on the shards' own R-trees and gathered into the exact global value
// before any refinement work runs.
type shardPlane struct {
	shards []*Snapshot
}

// filter scatters the complete-domination filter across the shard
// indexes and gathers the canonical merged outcome. Shards whose cached
// root MBR already decides the whole partition (completely dominated,
// or completely dominating with only certain objects) contribute their
// verdict with a single geometric test instead of a tree walk — the
// shard-level analogue of the walk's per-node wholesale decisions, with
// identical outcomes.
func (p *shardPlane) filter(target, reference *uncertain.Object, opts core.Options) core.PartialFilter {
	parts := make([]core.PartialFilter, len(p.shards))
	for i, sh := range p.shards {
		root, allCertain, ok := sh.shardStats()
		if !ok {
			continue // empty shard
		}
		if pf, whole := core.PartialFilterWhole(root, sh.index.Len(), allCertain, target, reference, opts); whole {
			parts[i] = pf
			continue
		}
		parts[i] = core.PartialFilterIndexed(sh.index, target, reference, opts)
	}
	return core.MergePartials(parts...)
}

// run is one cross-shard IDCA run: scatter the filter, gather, refine
// once at the router.
func (p *shardPlane) run(target, reference *uncertain.Object, opts core.Options) *core.Result {
	return core.RunMerged(target, reference, p.filter(target, reference, opts), opts)
}

// newSession is run's incremental counterpart (TopKNN round stepping).
func (p *shardPlane) newSession(target, reference *uncertain.Object, opts core.Options) *core.Session {
	return core.NewSessionMerged(target, reference, p.filter(target, reference, opts), opts)
}

// knnThreshold computes the exact global m_{k+1} preselection bound —
// the (k+1)-th smallest MaxDist(o, q) over all certainly-existing
// objects — by folding the shards' ascending MaxDist streams into one
// bounded max-heap of the k+1 smallest values of the union. Shards are
// visited nearest-first (by root-MBR MinDist, a lower bound on every
// resident object's MaxDist), so once the heap is full, far shards are
// ruled out with one distance test and a near shard's stream stops as
// soon as its next value cannot displace a heap member. The result is
// the same order statistic of the same multiset the monolithic engine
// computes: bit-identical, but typically touching one or two shards.
func (p *shardPlane) knnThreshold(q *uncertain.Object, k int, n geom.Norm) float64 {
	h := &maxDistHeap{bound: k + 1}
	type shardDist struct {
		sh  *Snapshot
		min float64
	}
	order := make([]shardDist, 0, len(p.shards))
	for _, sh := range p.shards {
		root, _, ok := sh.shardStats()
		if !ok {
			continue
		}
		order = append(order, shardDist{sh, root.MinDistRect(n, q.MBR)})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].min < order[j].min })
	buf := nearbyPool.Get().(*rtree.NearbyBuf)
	defer nearbyPool.Put(buf)
	for _, sd := range order {
		if h.Len() == h.bound && sd.min >= h.threshold() {
			// Every object in this (and every later) shard has
			// MaxDist >= its root MinDist >= the current bound: no value
			// can displace a heap member.
			break
		}
		sd.sh.index.NearbyWith(buf,
			func(mbr geom.Rect, _ *uncertain.Object, leaf bool) float64 {
				if leaf {
					return mbr.MaxDistRect(n, q.MBR)
				}
				return mbr.MinDistRect(n, q.MBR)
			},
			func(_ geom.Rect, o *uncertain.Object, d float64) bool {
				if o == q || o.ExistenceProb() < 1 {
					return true
				}
				h.offer(d)
				// Ascending stream: once the heap is full and the current
				// distance reaches the bound, later values cannot improve it.
				return h.Len() < h.bound || d < h.threshold()
			},
		)
	}
	return h.threshold()
}

// rknnPrunable sums capped per-shard certain-dominator counts; the
// candidate is impossible once the shards together account for k
// objects closer to it than q in every possible world — the exact test
// the monolithic engine applies. Shards whose root MBR cannot be
// MaxDist-closer than lim are ruled out without a traversal.
func (p *shardPlane) rknnPrunable(q, b *uncertain.Object, k int, n geom.Norm) bool {
	lim := q.MBR.MinDistRect(n, b.MBR)
	if lim <= 0 {
		return false
	}
	count := 0
	for _, sh := range p.shards {
		root, _, ok := sh.shardStats()
		if !ok || root.MinDistRect(n, b.MBR) >= lim {
			continue
		}
		count += rknnCertainDominators(sh.index, q, b, k-count, lim, n)
		if count >= k {
			return true
		}
	}
	return false
}

package query

import (
	"math/rand"
	"reflect"
	"testing"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/uncertain"
	"probprune/internal/workload"
)

// Native fuzzers for the shard router and the online rebalancer: a
// byte-string program drives an identical mutation trace against a
// ShardedStore and an unsharded model Store, with migrations
// interleaved on the sharded side only. After every operation the
// sharded store must hold exactly the model's objects — none lost,
// none duplicated, global order preserved — and periodically every
// query verdict must be bit-identical to the model. The checked-in
// corpus entries below double as deterministic regression tests on
// every plain `go test` run; `go test -fuzz` explores beyond them.

// fuzzObject derives a deterministic object from the trace rng.
func fuzzObject(t *testing.T, rng *rand.Rand, id int) *uncertain.Object {
	t.Helper()
	pts := make([]geom.Point, 3)
	cx, cy := rng.Float64(), rng.Float64()
	for i := range pts {
		pts[i] = geom.Point{cx + rng.Float64()*0.1, cy + rng.Float64()*0.1}
	}
	o, err := uncertain.NewObject(id, pts)
	if err != nil {
		t.Fatal(err)
	}
	if rng.Intn(4) == 0 {
		if err := o.SetExistence(0.2 + 0.7*rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

// requireShardConsistency asserts the structural invariants: the
// sharded store and the model agree object-for-object in global order,
// every object lives on exactly one shard, and the shard-local
// snapshots partition the database.
func requireShardConsistency(t *testing.T, op int, store *Store, sharded *ShardedStore) {
	t.Helper()
	if sharded.Len() != store.Len() {
		t.Fatalf("op %d: sharded holds %d objects, model %d", op, sharded.Len(), store.Len())
	}
	want := store.Snapshot().DB()
	snap := sharded.Snapshot()
	got := snap.DB()
	if len(got) != len(want) {
		t.Fatalf("op %d: snapshot lengths diverge: %d vs %d", op, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: global order diverges at %d: object %d vs %d", op, i, got[i].ID, want[i].ID)
		}
	}
	seen := make(map[int]int, len(want))
	total := 0
	for si := 0; si < snap.NumShards(); si++ {
		for _, o := range snap.Shard(si).DB() {
			if prev, dup := seen[o.ID]; dup {
				t.Fatalf("op %d: object %d duplicated across shards %d and %d", op, o.ID, prev, si)
			}
			seen[o.ID] = si
			total++
			if home, ok := sharded.ShardOf(o.ID); !ok || home != si {
				t.Fatalf("op %d: object %d resides on shard %d but ShardOf reports (%d, %v)", op, o.ID, si, home, ok)
			}
		}
	}
	if total != len(want) {
		t.Fatalf("op %d: shards hold %d objects in total, want %d (lost objects)", op, total, len(want))
	}
	sizes := sharded.ShardSizes()
	sum := 0
	for _, n := range sizes {
		sum += n
	}
	if sum != len(want) {
		t.Fatalf("op %d: ShardSizes sums to %d, want %d", op, sum, len(want))
	}
}

// requireSameVerdicts asserts bit-identical query results between the
// sharded store and the model.
func requireSameVerdicts(t *testing.T, op int, store *Store, sharded *ShardedStore, q *uncertain.Object) {
	t.Helper()
	if want, got := store.KNN(q, 2, 0.4), sharded.KNN(q, 2, 0.4); !reflect.DeepEqual(want, got) {
		t.Fatalf("op %d: KNN verdicts diverge from the model", op)
	}
	if want, got := store.RKNN(q, 2, 0.4), sharded.RKNN(q, 2, 0.4); !reflect.DeepEqual(want, got) {
		t.Fatalf("op %d: RKNN verdicts diverge from the model", op)
	}
}

// runShardFuzz interprets one fuzz program. withMoves additionally
// decodes migration opcodes (the rebalancer surface).
func runShardFuzz(t *testing.T, seed int64, nsh uint8, ops []byte, withMoves bool) {
	const maxOps = 48
	if len(ops) > maxOps {
		ops = ops[:maxOps]
	}
	shards := 1 + int(nsh%8)
	db, err := workload.Synthetic(workload.SyntheticConfig{N: 12, Samples: 3, MaxExtent: 0.1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{MaxIterations: 2}
	store, err := NewStore(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	var part ShardFunc
	if withMoves {
		// A spatial partitioner makes Rebalance meaningful: updates
		// drift centers across stripe borders.
		part = StripeShards(0, 0, 1)
	}
	sharded, err := NewShardedStore(db, ShardedOptions{Shards: shards, Partition: part}, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
	q := fuzzObject(t, rng, -1)
	nextID := 1000
	for i, b := range ops {
		kinds := 4
		if withMoves {
			kinds = 6
		}
		switch int(b) % kinds {
		case 0, 1:
			o := fuzzObject(t, rng, nextID)
			nextID++
			if err := store.Insert(o); err != nil {
				t.Fatal(err)
			}
			if err := sharded.Insert(o); err != nil {
				t.Fatal(err)
			}
		case 2:
			cur := store.Snapshot().DB()
			if len(cur) == 0 {
				continue
			}
			o := fuzzObject(t, rng, cur[rng.Intn(len(cur))].ID)
			if err := store.Update(o); err != nil {
				t.Fatal(err)
			}
			if err := sharded.Update(o); err != nil {
				t.Fatal(err)
			}
		case 3:
			cur := store.Snapshot().DB()
			if len(cur) < 5 {
				continue
			}
			id := cur[rng.Intn(len(cur))].ID
			if !store.Delete(id) || !sharded.Delete(id) {
				t.Fatalf("op %d: delete of %d failed", i, id)
			}
		case 4:
			cur := sharded.Snapshot().DB()
			if len(cur) == 0 {
				continue
			}
			if err := sharded.Move(cur[rng.Intn(len(cur))].ID, rng.Intn(shards)); err != nil {
				t.Fatal(err)
			}
		case 5:
			sharded.Rebalance()
		}
		requireShardConsistency(t, i, store, sharded)
		if i%6 == 5 {
			requireSameVerdicts(t, i, store, sharded, q)
		}
	}
	requireShardConsistency(t, len(ops), store, sharded)
	requireSameVerdicts(t, len(ops), store, sharded, q)
}

// FuzzShardRouter fuzzes the hash router under pure mutation traces:
// whatever the interleaving, the sharded store must track the model
// exactly.
func FuzzShardRouter(f *testing.F) {
	f.Add(int64(1), uint8(4), []byte{0, 2, 3, 0, 1, 2, 3, 2, 0, 3, 1, 2})
	f.Add(int64(2), uint8(1), []byte{0, 0, 0, 3, 3, 3, 3, 3, 2, 2})
	f.Add(int64(3), uint8(7), []byte{2, 2, 2, 2, 2, 2, 0, 3, 2, 0, 3, 2})
	f.Add(int64(4), uint8(8), []byte{1, 3, 1, 3, 1, 3, 1, 3, 2, 2, 2, 2})
	f.Fuzz(func(t *testing.T, seed int64, nsh uint8, ops []byte) {
		runShardFuzz(t, seed, nsh, ops, false)
	})
}

// FuzzShardRebalance fuzzes the online rebalancer: migration opcodes
// (Move, Rebalance) interleave with mutations and queries under a
// spatial partitioner. Migrations must never lose or duplicate an
// object, and must never change any verdict.
func FuzzShardRebalance(f *testing.F) {
	f.Add(int64(1), uint8(4), []byte{0, 4, 2, 5, 3, 4, 0, 5, 2, 4, 3, 5})
	f.Add(int64(2), uint8(2), []byte{4, 4, 4, 5, 5, 5, 2, 2, 4, 5})
	f.Add(int64(3), uint8(6), []byte{2, 4, 2, 4, 2, 4, 5, 0, 3, 4, 5, 2})
	f.Add(int64(5), uint8(3), []byte{5, 0, 4, 1, 5, 2, 4, 3, 5, 0, 4, 2})
	f.Fuzz(func(t *testing.T, seed int64, nsh uint8, ops []byte) {
		runShardFuzz(t, seed, nsh, ops, true)
	})
}

package query

import (
	"fmt"
	"math/rand"
	"testing"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/mc"
	"probprune/internal/uncertain"
	"probprune/internal/workload"
)

// This file is the ground-truth oracle of the query layer: on seeded
// random databases, every probability interval the engine reports and
// every threshold verdict it decides is checked against internal/mc,
// which computes the domination count PDF EXACTLY on the discrete
// sample model (Lian & Chen's algorithm — the paper's comparison
// partner). The margin below absorbs only floating-point accumulation
// differences, not sampling error; a violation means a bound is wrong
// under possible-world semantics, the paper's central claim.
//
// Every failure message carries the database seed for replay.

const oracleEps = 1e-9

// oracleCase is one seeded random database plus a query object.
type oracleCase struct {
	seed int64
	norm geom.Norm
	db   uncertain.Database
	q    *uncertain.Object
	eng  *Engine
}

func newOracleCase(t *testing.T, seed int64, parallelism int) *oracleCase {
	t.Helper()
	norm := geom.L2
	if seed%2 == 1 {
		norm = geom.L1
	}
	db, err := workload.Synthetic(workload.SyntheticConfig{
		N:         10 + int(seed%7),
		Samples:   4,
		MaxExtent: 0.2, // large regions => overlapping, undecided candidates
		Seed:      seed,
	})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	rng := rand.New(rand.NewSource(seed * 1337))
	// A quarter of the seeds add existential uncertainty: a third of the
	// objects exist only with probability < 1, exercising the
	// existence-aware filter and preselection paths against the oracle
	// (mc scales domination probabilities by existence exactly).
	if seed%4 == 0 {
		for i, o := range db {
			if i%3 == 0 {
				if err := o.SetExistence(0.2 + 0.7*rng.Float64()); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		}
	}
	pts := make([]geom.Point, 4)
	cx, cy := rng.Float64(), rng.Float64()
	for i := range pts {
		pts[i] = geom.Point{cx + rng.Float64()*0.3, cy + rng.Float64()*0.3}
	}
	q, err := uncertain.NewObject(-1, pts)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	// A third of the seeds stop after one refinement iteration: the
	// wide, frequently undecided intervals of a truncated run must
	// contain the exact value just like converged ones.
	eng := NewEngine(db, core.Options{Norm: norm, MaxIterations: 1 + 2*int(seed%3), Parallelism: parallelism})
	return &oracleCase{seed: seed, norm: norm, db: db, q: q, eng: eng}
}

// exactCDF returns the exact P(DomCount(target, ref) < k) over the
// database candidates (target and ref excluded).
func (oc *oracleCase) exactCDF(target, ref *uncertain.Object, k int) float64 {
	cands := make([]*uncertain.Object, 0, len(oc.db))
	for _, o := range oc.db {
		if o != target && o != ref {
			cands = append(cands, o)
		}
	}
	pdf := mc.DomCountPDF(oc.norm, cands, target, ref, 0)
	p := 0.0
	for i := 0; i < k && i < len(pdf); i++ {
		p += pdf[i]
	}
	return p
}

func checkContains(t *testing.T, seed int64, what string, lb, ub, exact float64) {
	t.Helper()
	if lb > exact+oracleEps || exact > ub+oracleEps {
		t.Errorf("seed %d: %s: exact %.12f outside bounds [%.12f, %.12f] (replay with this seed)",
			seed, what, exact, lb, ub)
	}
}

// TestOracleKNN checks every KNN probability interval and threshold
// verdict against the exact oracle on >= 20 seeded databases.
func TestOracleKNN(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			oc := newOracleCase(t, seed, 1+int(seed%3))
			k := 2 + int(seed%3)
			tau := []float64{0.3, 0.5, 0.8}[seed%3]
			for _, m := range oc.eng.KNN(oc.q, k, tau) {
				exact := oc.exactCDF(m.Object, oc.q, k)
				checkContains(t, seed, fmt.Sprintf("KNN(k=%d) object %d", k, m.Object.ID),
					m.Prob.LB, m.Prob.UB, exact)
				if m.Decided {
					if m.IsResult && exact < tau-oracleEps {
						t.Errorf("seed %d: KNN verdict IsResult for object %d but exact %.12f < tau %.2f",
							seed, m.Object.ID, exact, tau)
					}
					if !m.IsResult && exact >= tau+oracleEps {
						t.Errorf("seed %d: KNN verdict !IsResult for object %d but exact %.12f >= tau %.2f",
							seed, m.Object.ID, exact, tau)
					}
				}
			}
		})
	}
}

// TestOracleRKNN checks every RKNN interval and verdict against the
// exact oracle.
func TestOracleRKNN(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			oc := newOracleCase(t, seed, 1)
			k := 1 + int(seed%3)
			tau := 0.4
			for _, m := range oc.eng.RKNN(oc.q, k, tau) {
				// RKNN evaluates q as the target against candidate B as
				// the reference.
				exact := oc.exactCDF(oc.q, m.Object, k)
				checkContains(t, seed, fmt.Sprintf("RKNN(k=%d) object %d", k, m.Object.ID),
					m.Prob.LB, m.Prob.UB, exact)
				if m.Decided {
					if m.IsResult && exact < tau-oracleEps {
						t.Errorf("seed %d: RKNN verdict IsResult for object %d but exact %.12f < tau",
							seed, m.Object.ID, exact)
					}
					if !m.IsResult && exact >= tau+oracleEps {
						t.Errorf("seed %d: RKNN verdict !IsResult for object %d but exact %.12f >= tau",
							seed, m.Object.ID, exact)
					}
				}
			}
		})
	}
}

// TestOracleTopKNN checks that top-m selections carry correct bounds
// and, when decided, really are top-m by the exact probabilities.
func TestOracleTopKNN(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			oc := newOracleCase(t, seed, 1)
			k, m := 3, 3
			selected := oc.eng.TopKNN(oc.q, k, m)
			// Exact probability of every database object.
			exact := make(map[int]float64, len(oc.db))
			for _, o := range oc.db {
				exact[o.ID] = oc.exactCDF(o, oc.q, k)
			}
			// The m-th largest exact probability is the selection bar.
			bar := 0.0
			{
				vals := make([]float64, 0, len(exact))
				for _, p := range exact {
					vals = append(vals, p)
				}
				for i := 0; i < m && len(vals) > 0; i++ {
					best := 0
					for j := range vals {
						if vals[j] > vals[best] {
							best = j
						}
					}
					bar = vals[best]
					vals = append(vals[:best], vals[best+1:]...)
				}
			}
			for _, sel := range selected {
				checkContains(t, seed, fmt.Sprintf("TopKNN object %d", sel.Object.ID),
					sel.Prob.LB, sel.Prob.UB, exact[sel.Object.ID])
				if sel.Decided && exact[sel.Object.ID] < bar-oracleEps {
					t.Errorf("seed %d: TopKNN selected object %d (exact %.12f) below the top-%d bar %.12f",
						seed, sel.Object.ID, exact[sel.Object.ID], m, bar)
				}
			}
		})
	}
}

// TestOracleInverseRank checks every rank-probability interval of the
// probabilistic inverse ranking against the exact count PDF.
func TestOracleInverseRank(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			oc := newOracleCase(t, seed, 1)
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < 3; trial++ {
				b := oc.db[rng.Intn(len(oc.db))]
				rd := oc.eng.InverseRank(b, oc.q)
				cands := make([]*uncertain.Object, 0, len(oc.db))
				for _, o := range oc.db {
					if o != b && o != oc.q {
						cands = append(cands, o)
					}
				}
				pdf := mc.DomCountPDF(oc.norm, cands, b, oc.q, 0)
				// Check every tracked rank; P(Rank = i) = P(DomCount = i-1).
				for j, iv := range rd.Ranks {
					rank := rd.MinRank + j
					exact := 0.0
					if rank-1 < len(pdf) {
						exact = pdf[rank-1]
					}
					checkContains(t, seed, fmt.Sprintf("InverseRank object %d rank %d", b.ID, rank),
						iv.LB, iv.UB, exact)
				}
				// Ranks outside the tracked window are impossible.
				for _, rank := range []int{rd.MinRank - 1, rd.MinRank + len(rd.Ranks)} {
					if rank >= 1 && rank-1 < len(pdf) && pdf[rank-1] > oracleEps {
						t.Errorf("seed %d: InverseRank object %d: rank %d has exact mass %.12f but is outside the bound window",
							seed, b.ID, rank, pdf[rank-1])
					}
				}
			}
		})
	}
}

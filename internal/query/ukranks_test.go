package query

import (
	"math/rand"
	"testing"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/mc"
	"probprune/internal/uncertain"
)

// exactRankProb computes the exact P(Rank(b) = rank) over db \ {b, r}.
func exactRankProb(db uncertain.Database, b, r *uncertain.Object, rank int) float64 {
	var cands []*uncertain.Object
	for _, o := range db {
		if o != b && o != r {
			cands = append(cands, o)
		}
	}
	pdf := mc.DomCountPDF(geom.L2, cands, b, r, 0)
	if rank-1 < 0 || rank-1 >= len(pdf) {
		return 0
	}
	return pdf[rank-1]
}

// TestUKRanksOnCertainData: with certain points the rank-i winner is
// the i-th closest object, with probability exactly 1.
func TestUKRanksOnCertainData(t *testing.T) {
	db := uncertain.Database{
		uncertain.PointObject(0, geom.Point{3, 0}),
		uncertain.PointObject(1, geom.Point{1, 0}),
		uncertain.PointObject(2, geom.Point{2, 0}),
	}
	q := uncertain.PointObject(99, geom.Point{0, 0})
	eng := NewEngine(db, core.Options{MaxIterations: 4})
	winners := eng.UKRanks(q, 3)
	wantIDs := []int{1, 2, 0}
	if len(winners) != 3 {
		t.Fatalf("got %d winners", len(winners))
	}
	for i, w := range winners {
		if w.Object.ID != wantIDs[i] {
			t.Errorf("rank %d: winner %d, want %d", w.Rank, w.Object.ID, wantIDs[i])
		}
		if !w.Decided || w.Prob.LB < 1-1e-9 {
			t.Errorf("rank %d: prob %+v decided=%v, want certain win", w.Rank, w.Prob, w.Decided)
		}
	}
}

// TestUKRanksBoundsContainExact: every reported winner probability must
// bracket the exact value, and a Decided winner must actually be the
// exact argmax.
func TestUKRanksBoundsContainExact(t *testing.T) {
	rng := rand.New(rand.NewSource(800))
	db := smallDB(rng, 10, 12)
	q := randObj(rng, 500, 12, 5, 5, 2)
	eng := NewEngine(db, core.Options{MaxIterations: 8})
	for _, w := range eng.UKRanks(q, 4) {
		exact := exactRankProb(db, w.Object, q, w.Rank)
		if !w.Prob.Contains(exact, 1e-9) {
			t.Fatalf("rank %d winner %d: exact %g outside [%g, %g]",
				w.Rank, w.Object.ID, exact, w.Prob.LB, w.Prob.UB)
		}
		if !w.Decided {
			continue
		}
		for _, o := range db {
			if o == w.Object {
				continue
			}
			if p := exactRankProb(db, o, q, w.Rank); p > exact+1e-9 {
				t.Fatalf("rank %d: decided winner %d (P=%g) beaten by %d (P=%g)",
					w.Rank, w.Object.ID, exact, o.ID, p)
			}
		}
	}
}

// TestGlobalTopKDistinct: the convenience wrapper deduplicates winners.
func TestGlobalTopKDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(801))
	db := smallDB(rng, 8, 8)
	q := randObj(rng, 500, 8, 5, 5, 2)
	eng := NewEngine(db, core.Options{MaxIterations: 6})
	out := eng.GlobalTopK(q, 5)
	seen := map[int]bool{}
	for _, o := range out {
		if seen[o.ID] {
			t.Fatalf("object %d repeated", o.ID)
		}
		seen[o.ID] = true
	}
}

// TestUKRanksInvalidK returns nil for k < 1.
func TestUKRanksInvalidK(t *testing.T) {
	rng := rand.New(rand.NewSource(802))
	db := smallDB(rng, 4, 4)
	q := randObj(rng, 500, 4, 5, 5, 1)
	eng := NewEngine(db, core.Options{MaxIterations: 2})
	if eng.UKRanks(q, 0) != nil {
		t.Error("k=0 returned winners")
	}
}

package query

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"probprune/internal/core"
	"probprune/internal/geom"
)

// The executor's central promise: results are identical to the
// sequential path regardless of worker count. These tests pin that down
// with reflect.DeepEqual — bounds must be bit-identical, not merely
// close — across every query type and several seeds. Run with -race
// they are also the safety test for concurrent candidate runs against
// one shared reference decomposition.

func enginePair(seed int64, n, samples, workers int) (*Engine, *Engine, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	db := smallDB(rng, n, samples)
	seq := NewEngine(db, core.Options{MaxIterations: 5, Parallelism: 1})
	par := NewEngine(db, core.Options{MaxIterations: 5, Parallelism: workers})
	return seq, par, rng
}

func TestParallelKNNMatchesSequential(t *testing.T) {
	for _, seed := range []int64{400, 401, 402} {
		seq, par, rng := enginePair(seed, 30, 12, 4)
		q := randObj(rng, 500, 12, 5, 5, 2)
		a := seq.KNN(q, 3, 0.5)
		b := par.KNN(q, 3, 0.5)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: parallel KNN differs from sequential", seed)
		}
	}
}

func TestParallelRKNNMatchesSequential(t *testing.T) {
	for _, seed := range []int64{410, 411, 412} {
		seq, par, rng := enginePair(seed, 25, 12, 4)
		q := randObj(rng, 500, 12, 5, 5, 2)
		a := seq.RKNN(q, 2, 0.5)
		b := par.RKNN(q, 2, 0.5)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: parallel RKNN differs from sequential", seed)
		}
	}
}

func TestParallelRankingMatchesSequential(t *testing.T) {
	for _, seed := range []int64{420, 421} {
		seq, par, rng := enginePair(seed, 20, 12, 4)
		q := randObj(rng, 500, 12, 5, 5, 2)
		a := seq.RankByExpectedRank(q)
		b := par.RankByExpectedRank(q)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: parallel ranking differs from sequential", seed)
		}
	}
}

func TestParallelTopKNNMatchesSequential(t *testing.T) {
	for _, seed := range []int64{430, 431} {
		seq, par, rng := enginePair(seed, 25, 12, 4)
		q := randObj(rng, 500, 12, 5, 5, 2)
		a := seq.TopKNN(q, 3, 5)
		b := par.TopKNN(q, 3, 5)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: parallel TopKNN differs from sequential", seed)
		}
	}
}

func TestParallelUKRanksMatchesSequential(t *testing.T) {
	seq, par, rng := enginePair(440, 20, 12, 4)
	q := randObj(rng, 500, 12, 5, 5, 2)
	a := seq.UKRanks(q, 4)
	b := par.UKRanks(q, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("parallel UKRanks differs from sequential")
	}
}

// TestInverseRankDeterministicAndSound: the one single-run query
// consumes Parallelism at the pair level (like core.Run), so it is
// deterministic for a fixed value, and its bounds at any worker count
// must contain the bounds' sequential values up to float reassociation.
func TestInverseRankDeterministicAndSound(t *testing.T) {
	seq, par, rng := enginePair(450, 15, 12, 4)
	q := randObj(rng, 500, 12, 5, 5, 2)
	a := seq.InverseRank(seq.DB[0], q)
	b := par.InverseRank(par.DB[0], q)
	b2 := par.InverseRank(par.DB[0], q)
	if !reflect.DeepEqual(b.Ranks, b2.Ranks) {
		t.Fatal("InverseRank not deterministic for a fixed Parallelism")
	}
	if a.MinRank != b.MinRank || len(a.Ranks) != len(b.Ranks) {
		t.Fatal("InverseRank structure differs across Parallelism settings")
	}
	for i := range a.Ranks {
		if !almostEqual(a.Ranks[i].LB, b.Ranks[i].LB, 1e-12) || !almostEqual(a.Ranks[i].UB, b.Ranks[i].UB, 1e-12) {
			t.Fatalf("rank %d bounds diverge beyond reassociation tolerance", i)
		}
	}
}

// TestDefaultParallelismMatchesExplicitSequential: the zero value
// (GOMAXPROCS workers) must agree with one worker too.
func TestDefaultParallelismMatchesExplicitSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(460))
	db := smallDB(rng, 20, 12)
	q := randObj(rng, 500, 12, 5, 5, 2)
	def := NewEngine(db, core.Options{MaxIterations: 5})
	one := NewEngine(db, core.Options{MaxIterations: 5, Parallelism: 1})
	if !reflect.DeepEqual(def.KNN(q, 3, 0.5), one.KNN(q, 3, 0.5)) {
		t.Fatal("default-parallelism KNN differs from single-worker KNN")
	}
}

// TestCtxCancellation: a cancelled context aborts the query with its
// error.
func TestCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(470))
	db := smallDB(rng, 20, 12)
	q := randObj(rng, 500, 12, 5, 5, 2)
	eng := NewEngine(db, core.Options{MaxIterations: 5, Parallelism: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if m, err := eng.KNNCtx(ctx, q, 3, 0.5); err != context.Canceled || m != nil {
		t.Fatalf("KNNCtx after cancel: matches=%v err=%v", m, err)
	}
	if m, err := eng.RKNNCtx(ctx, q, 3, 0.5); err != context.Canceled || m != nil {
		t.Fatalf("RKNNCtx after cancel: matches=%v err=%v", m, err)
	}
	if r, err := eng.RankByExpectedRankCtx(ctx, q); err != context.Canceled || r != nil {
		t.Fatalf("RankByExpectedRankCtx after cancel: ranked=%v err=%v", r, err)
	}
	if m, err := eng.TopKNNCtx(ctx, q, 3, 5); err != context.Canceled || m != nil {
		t.Fatalf("TopKNNCtx after cancel: matches=%v err=%v", m, err)
	}
	if w, err := eng.UKRanksCtx(ctx, q, 3); err != context.Canceled || w != nil {
		t.Fatalf("UKRanksCtx after cancel: winners=%v err=%v", w, err)
	}
}

// TestRKNNPreselectionNeverPrunesAPossibleResult mirrors the kNN
// preselection soundness test: every candidate the reverse-kNN filter
// discards must have exact probability zero.
func TestRKNNPreselectionNeverPrunesAPossibleResult(t *testing.T) {
	rng := rand.New(rand.NewSource(480))
	db := smallDB(rng, 40, 8)
	q := randObj(rng, 500, 8, 5, 5, 2)
	eng := NewEngine(db, core.Options{MaxIterations: 6})
	const k = 3
	pruned := 0
	for _, b := range db {
		if !eng.rknnPrunable(q, b, k, geom.L2) {
			continue
		}
		pruned++
		// Exact P(DomCount(q, B) < k) with B as the reference.
		if exact := exactTail(db, q, b, k); exact != 0 {
			t.Fatalf("object %d pruned but P(RkNN) = %g", b.ID, exact)
		}
	}
	if pruned == 0 {
		t.Skip("instance produced no prunable objects")
	}
}

// TestRKNNWithoutIndexMatchesIndexed: the linear preselection fallback
// and the streaming index path must agree on the full query result.
func TestRKNNWithoutIndexMatchesIndexed(t *testing.T) {
	rng := rand.New(rand.NewSource(481))
	db := smallDB(rng, 30, 12)
	q := randObj(rng, 500, 12, 5, 5, 2)
	withIdx := NewEngine(db, core.Options{MaxIterations: 5})
	noIdx := &Engine{DB: db, Opts: core.Options{MaxIterations: 5}}
	a := withIdx.RKNN(q, 2, 0.5)
	b := noIdx.RKNN(q, 2, 0.5)
	if len(a) != len(b) {
		t.Fatalf("match counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Object != b[i].Object || a[i].IsResult != b[i].IsResult || a[i].Decided != b[i].Decided {
			t.Fatalf("match %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if !almostEqual(a[i].Prob.LB, b[i].Prob.LB, 1e-9) || !almostEqual(a[i].Prob.UB, b[i].Prob.UB, 1e-9) {
			t.Fatalf("match %d bounds differ", i)
		}
	}
}

// TestKNNLinearFallbackPrunes: without an index the prune threshold now
// comes from a linear scan instead of silently staying +Inf, so far
// candidates are preselected away without IDCA runs.
func TestKNNLinearFallbackPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(482))
	db := smallDB(rng, 60, 8)
	q := randObj(rng, 500, 8, 5, 5, 2)
	noIdx := &Engine{DB: db, Opts: core.Options{MaxIterations: 5}}
	thresh := noIdx.knnThreshold(q, 3, geom.L2)
	if thresh == 0 || thresh != knnPruneThresholdLinear(db, q, 3, geom.L2) {
		t.Fatalf("unexpected fallback threshold %g", thresh)
	}
	prunedIterations := 0
	for _, m := range noIdx.KNN(q, 3, 0.5) {
		if knnPrunable(m.Object, q, thresh, geom.L2) {
			if m.Iterations != 0 || m.IsResult || !m.Decided {
				t.Fatalf("prunable object %d was not preselected: %+v", m.Object.ID, m)
			}
			prunedIterations++
		}
	}
	if prunedIterations == 0 {
		t.Skip("instance produced no prunable objects")
	}
}

// Package query evaluates the probabilistic similarity queries of
// Section VI of the paper on top of the IDCA domination-count bounds:
//
//   - probabilistic inverse ranking (Corollary 3),
//   - probabilistic threshold k-nearest-neighbor queries (Corollary 4),
//   - probabilistic threshold reverse kNN queries (Corollary 5),
//   - expected-rank computation and ranking (Corollary 6).
//
// All queries share one structure: the predicate reduces to tail or
// point probabilities of DomCount, IDCA refines bounds iteratively, and
// a threshold predicate stops refinement as soon as the bounds decide
// it — the filter-refinement strategy the paper's Figure 8 measures.
//
// Every multi-candidate query runs its per-candidate IDCA runs on the
// parallel executor (see executor.go): Options.Parallelism worker
// goroutines (default GOMAXPROCS), one decomposition cache
// (core.DecompCache) sharing the kd-splits of the query object and of
// every influence object across all runs, and context-accepting
// variants (KNNCtx etc.) for cancellation and deadlines. Results are
// deterministic and identical to a sequential evaluation regardless of
// worker count.
package query

import (
	"context"
	"math"
	"sort"
	"time"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/gf"
	"probprune/internal/obs"
	"probprune/internal/rtree"
	"probprune/internal/uncertain"
)

// Engine evaluates probabilistic similarity queries over a database.
type Engine struct {
	// DB is the uncertain database.
	DB uncertain.Database
	// Index optionally accelerates the complete-domination filter; nil
	// uses linear scans.
	Index *rtree.Tree[*uncertain.Object]
	// Opts configures the underlying IDCA runs. Stop and KMax are
	// managed per query and must be left unset. SharedDecomps, when set,
	// becomes the decomposition cache of every query on this engine
	// (cross-query work reuse — how Store engines recycle decompositions
	// of database-resident objects); when nil each query builds its own.
	Opts core.Options

	// plane, when non-nil, replaces the single-index data plane with a
	// scatter-gather over per-shard R-trees: IDCA filters, preselection
	// thresholds and impossibility counts are computed per shard and
	// merged canonically before any refinement runs. Installed by
	// ShardedSnapshot.Engine; every query algorithm above this level is
	// oblivious to it, which is what keeps sharded results bit-identical
	// to the monolithic path.
	plane *shardPlane

	// defaultCache is the persistent decomposition cache NewEngine
	// installs when Options.SharedDecomps is unset (see NewEngine). Kept
	// out of Opts so callers that clone an engine's Opts into another
	// component (a Store manages its own cache and rejects a preset one)
	// see exactly what they configured.
	defaultCache *core.DecompCache

	// Obs, when non-nil, receives per-query latency histograms and the
	// filter-economy counters (see metrics.go). NewEngine and the stores
	// install one; snapshot engines share their store's, so counts
	// accumulate across snapshots. A nil Obs records nothing.
	Obs *Metrics
}

// NewEngine builds an engine and its R-tree index over db (an STR bulk
// load — O(n log n) with better-clustered nodes than repeated inserts).
//
// Unless Options.SharedDecomps is already set, the engine gets a
// persistent decomposition cache with every database object pinned —
// the same cross-query kd-split reuse Store engines have had all along.
// Pins are lazy (one map entry per object until a query first touches
// it) and decompositions are deterministic, so results are bit-identical
// to an uncached engine; only the repeated splitting work disappears.
// Callers that mutate DB afterwards should construct the Engine struct
// directly or manage their own cache.
func NewEngine(db uncertain.Database, opts core.Options) *Engine {
	e := &Engine{DB: db, Index: bulkIndex(db), Opts: opts, Obs: NewMetrics()}
	if opts.SharedDecomps == nil {
		e.defaultCache = core.NewDecompCache(opts.MaxHeight)
		for _, o := range db {
			e.defaultCache.Add(o)
		}
	}
	return e
}

// bulkIndex STR-bulk-loads an R-tree over the objects' MBRs.
func bulkIndex(db uncertain.Database) *rtree.Tree[*uncertain.Object] {
	items := make([]rtree.BulkItem[*uncertain.Object], len(db))
	for i, o := range db {
		items[i] = rtree.BulkItem[*uncertain.Object]{Rect: o.MBR, Value: o}
	}
	return rtree.Bulk(items)
}

// Match is one candidate's outcome in a threshold query.
type Match struct {
	// Object is the candidate.
	Object *uncertain.Object
	// Prob bounds the query-predicate probability for the candidate
	// (e.g. P(B is a kNN of Q) for KNN queries).
	Prob gf.Interval
	// IsResult reports whether the candidate qualifies (probability at
	// least the query threshold). Only meaningful when Decided.
	IsResult bool
	// Decided reports whether the bounds decided the predicate before
	// the iteration budget ran out. Undecided candidates are returned
	// with their final bounds so callers can present a confidence value
	// (Section V's discussion).
	Decided bool
	// Iterations is the number of refinement iterations spent.
	Iterations int
}

// run dispatches an IDCA run through the sharded plane or the index if
// present. All three paths are bit-identical for the same database
// state (canonical influence ordering); they differ only in how the
// filter step traverses the data.
func (e *Engine) run(target, reference *uncertain.Object, opts core.Options) *core.Result {
	if opts.Scratch == nil {
		// Check a pooled arena out for the duration of the run. The run
		// completes before return and a Result never retains
		// arena-backed slices, so the scratch is quiescent when it goes
		// back to the pool.
		sc := scratchPool.Get().(*core.Scratch)
		opts.Scratch = sc
		defer scratchPool.Put(sc)
	}
	if e.plane != nil {
		return e.plane.run(target, reference, opts)
	}
	if e.Index != nil {
		return core.RunIndexed(e.Index, target, reference, opts)
	}
	return core.Run(e.DB, target, reference, opts)
}

// newSession prepares an incremental IDCA run through the same dispatch
// as run — the session-based queries (TopKNN) go through here.
func (e *Engine) newSession(target, reference *uncertain.Object, opts core.Options) *core.Session {
	if opts.Scratch == nil {
		// A session outlives this call and is stepped at the caller's
		// pace (possibly interleaved with other live sessions), so it
		// gets a private arena rather than a pooled one: reused across
		// its own Steps, garbage-collected with the session.
		opts.Scratch = core.NewScratch()
	}
	if e.plane != nil {
		return e.plane.newSession(target, reference, opts)
	}
	if e.Index != nil {
		return core.NewSessionIndexed(e.Index, target, reference, opts)
	}
	return core.NewSession(e.DB, target, reference, opts)
}

// ThresholdStop builds the IDCA stop criterion for a tail predicate
// P(DomCount < k) vs threshold tau: refinement ends as soon as the
// bounds decide the predicate either way. It is the stop criterion all
// threshold queries in this package install, exported for harnesses
// that drive core.Run directly (the Figure 8 experiment).
func ThresholdStop(k int, tau float64) func(*core.Result) bool {
	return func(r *core.Result) bool {
		iv := r.CDFBound(k)
		return iv.LB >= tau || iv.UB < tau
	}
}

// KNN answers the probabilistic threshold kNN query of Corollary 4:
// all objects B with P(B ∈ kNN(q)) = P(DomCount(B, q) < k) >= tau.
// It returns a Match per database object (q itself excluded, if it is a
// database object).
func (e *Engine) KNN(q *uncertain.Object, k int, tau float64) []Match {
	matches, _ := e.KNNCtx(context.Background(), q, k, tau)
	return matches
}

// KNNCtx is KNN with cancellation: when ctx is cancelled before the
// query completes, (nil, ctx.Err()) is returned. Candidates are
// evaluated concurrently on Options.Parallelism workers; the result is
// identical to the sequential evaluation, in database order.
func (e *Engine) KNNCtx(ctx context.Context, q *uncertain.Object, k int, tau float64) ([]Match, error) {
	tr, pooled := e.Obs.traceFor(ctx)
	start := time.Now()
	cache := e.queryCache()
	j := e.newKNNJob(q, k, tau, cache)
	j.tr = tr
	tr.AddCandidates(len(j.cands))
	e.Obs.countCandidates(len(j.cands))
	tr.AddPrepare(time.Since(start))
	evalStart := time.Now()
	if err := forEach(ctx, e.parallelism(), len(j.cands), j.eval); err != nil {
		return nil, err
	}
	tr.AddEval(time.Since(evalStart))
	recordCache(e.Obs, tr, cache)
	e.Obs.observe(kindKNN, start, tr, pooled)
	return j.matches, nil
}

// knnJob is one prepared kNN query: the candidate set, the preselection
// threshold and the per-candidate evaluation closure, separated from
// the worker pool that drives it so that BatchKNN can pour the
// candidates of many queries into a single pool.
type knnJob struct {
	e       *Engine
	q       *uncertain.Object
	k       int
	tau     float64
	norm    geom.Norm
	thresh  float64
	cache   *core.DecompCache
	cands   []*uncertain.Object
	matches []Match
	// tr, when non-nil, receives this query's per-candidate verdicts
	// alongside the engine counters.
	tr *obs.Trace
}

// newKNNJob prepares a kNN query against the engine: candidate
// preselection (objects farther than the (k+1)-th smallest MaxDist are
// dominated at least k times in every possible world and get P = 0
// without an IDCA run, see knnfilter.go — only valid for tau > 0, at
// tau = 0 even impossible candidates satisfy the predicate) and one
// decomposition cache for the whole query, so the reference q and every
// influence object are decomposed once, not once per candidate run they
// appear in. k < 1 yields an empty job.
func (e *Engine) newKNNJob(q *uncertain.Object, k int, tau float64, cache *core.DecompCache) *knnJob {
	j := &knnJob{e: e, q: q, k: k, tau: tau, norm: e.normOrDefault(), cache: cache}
	if k < 1 {
		return j
	}
	j.thresh = math.Inf(1)
	if tau > 0 {
		j.thresh = e.knnThreshold(q, k, j.norm)
	}
	j.cands = e.candidates(q)
	j.matches = make([]Match, len(j.cands))
	return j
}

// eval evaluates candidate i into its result slot; calls for distinct i
// are safe to run concurrently.
func (j *knnJob) eval(i int) {
	m, pruned := j.e.evalKNNCandidate(j.q, j.cands[i], j.k, j.tau, j.thresh, j.norm, j.cache)
	j.matches[i] = m
	countMatch(j.e.Obs, j.tr, m, pruned)
}

// evalKNNCandidate runs the threshold-kNN predicate for one candidate:
// preselection against the m_{k+1} threshold, then an IDCA run with the
// threshold stop criterion. It is the single evaluation path shared by
// KNNCtx, BatchKNN and the incremental maintainers of package cq, so a
// candidate re-evaluated in isolation yields a Match bit-identical to
// the one a full query over the same database state would report. The
// second return reports whether preselection decided the candidate
// without an IDCA run — the filter-verdict classification the
// observability counters record.
func (e *Engine) evalKNNCandidate(q, b *uncertain.Object, k int, tau, thresh float64, norm geom.Norm, cache *core.DecompCache) (Match, bool) {
	if knnPrunable(b, q, thresh, norm) {
		return Match{Object: b, Decided: true}, true
	}
	opts := e.runOpts()
	opts.KMax = k
	opts.Stop = ThresholdStop(k, tau)
	opts.SharedDecomps = cache
	res := e.run(b, q, opts)
	iv := res.CDFBound(k)
	return Match{
		Object:     b,
		Prob:       iv,
		IsResult:   iv.LB >= tau,
		Decided:    iv.LB >= tau || iv.UB < tau,
		Iterations: len(res.Iterations),
	}, false
}

// EvalKNNCandidate evaluates the threshold-kNN predicate for candidate
// b only, using thresh as the preselection bound (KNNThreshold; pass
// +Inf to disable preselection, as the engine does at tau = 0) and
// cache for decomposition sharing (nil builds a private cache per
// call). The Match is bit-identical to the entry for b in
// KNN(q, k, tau) over the same database state — the contract the
// continuous-query subsystem's incremental maintenance relies on.
func (e *Engine) EvalKNNCandidate(q, b *uncertain.Object, k int, tau, thresh float64, cache *core.DecompCache) Match {
	if cache == nil {
		cache = e.queryCache()
	}
	m, pruned := e.evalKNNCandidate(q, b, k, tau, thresh, e.normOrDefault(), cache)
	countMatch(e.Obs, nil, m, pruned)
	return m
}

// RKNN answers the probabilistic threshold reverse kNN query of
// Corollary 5: all objects B for which q is among B's k nearest
// neighbors with probability at least tau, i.e.
// P(DomCount(q, B) < k) >= tau with B as the reference.
func (e *Engine) RKNN(q *uncertain.Object, k int, tau float64) []Match {
	matches, _ := e.RKNNCtx(context.Background(), q, k, tau)
	return matches
}

// RKNNCtx is RKNN with cancellation and concurrent candidate
// evaluation, mirroring KNNCtx. Candidates impossible as results (at
// least k objects certainly closer to them than q, see rknnfilter.go)
// are preselected away without an IDCA run.
func (e *Engine) RKNNCtx(ctx context.Context, q *uncertain.Object, k int, tau float64) ([]Match, error) {
	if k < 1 {
		return nil, nil
	}
	tr, pooled := e.Obs.traceFor(ctx)
	start := time.Now()
	norm := e.normOrDefault()
	cands := e.candidates(q)
	// The query object is the target of every run; the cache shares its
	// decomposition (and the influence objects') across candidates.
	cache := e.queryCache()
	tr.AddCandidates(len(cands))
	e.Obs.countCandidates(len(cands))
	tr.AddPrepare(time.Since(start))
	matches := make([]Match, len(cands))
	evalStart := time.Now()
	err := forEach(ctx, e.parallelism(), len(cands), func(i int) {
		m, pruned := e.evalRKNNCandidate(q, cands[i], k, tau, norm, cache)
		matches[i] = m
		countMatch(e.Obs, tr, m, pruned)
	})
	if err != nil {
		return nil, err
	}
	tr.AddEval(time.Since(evalStart))
	recordCache(e.Obs, tr, cache)
	e.Obs.observe(kindRKNN, start, tr, pooled)
	return matches, nil
}

// evalRKNNCandidate runs the threshold-RkNN predicate for one
// candidate: the cheap impossibility preselection, then an IDCA run
// with q as the target and the candidate as the reference. Like
// evalKNNCandidate it is the single evaluation path shared by RKNNCtx
// and the incremental maintainers, and like it the second return
// reports a preselection-only verdict.
func (e *Engine) evalRKNNCandidate(q, b *uncertain.Object, k int, tau float64, norm geom.Norm, cache *core.DecompCache) (Match, bool) {
	if tau > 0 && e.rknnPrunable(q, b, k, norm) {
		return Match{Object: b, Decided: true}, true
	}
	opts := e.runOpts()
	opts.KMax = k
	opts.Stop = ThresholdStop(k, tau)
	opts.SharedDecomps = cache
	// Target is the query, reference is the candidate: the count is
	// how many objects are closer to B than q is.
	res := e.run(q, b, opts)
	iv := res.CDFBound(k)
	return Match{
		Object:     b,
		Prob:       iv,
		IsResult:   iv.LB >= tau,
		Decided:    iv.LB >= tau || iv.UB < tau,
		Iterations: len(res.Iterations),
	}, false
}

// EvalRKNNCandidate evaluates the threshold-RkNN predicate for
// candidate b only, bit-identical to the entry for b in RKNN(q, k, tau)
// over the same database state. cache may be nil (a private cache is
// built per call).
func (e *Engine) EvalRKNNCandidate(q, b *uncertain.Object, k int, tau float64, cache *core.DecompCache) Match {
	if cache == nil {
		cache = e.queryCache()
	}
	m, pruned := e.evalRKNNCandidate(q, b, k, tau, e.normOrDefault(), cache)
	countMatch(e.Obs, nil, m, pruned)
	return m
}

// RankDistribution is the probabilistic inverse ranking result for one
// object: bounds on P(Rank = i) for every rank (Corollary 3; ranks are
// 1-based: P(Rank = i) = P(DomCount = i−1)).
type RankDistribution struct {
	// Object is the ranked object.
	Object *uncertain.Object
	// MinRank is the best (1-based) rank with non-zero probability.
	MinRank int
	// Ranks[j] bounds P(Rank = MinRank + j).
	Ranks []gf.Interval
	// Result carries the underlying IDCA state for further inspection.
	Result *core.Result
}

// Bound returns the probability interval of the 1-based rank i.
func (rd *RankDistribution) Bound(i int) gf.Interval {
	j := i - rd.MinRank
	if j < 0 || j >= len(rd.Ranks) {
		return gf.Interval{}
	}
	return rd.Ranks[j]
}

// InverseRank computes the probabilistic inverse ranking of object b
// with respect to reference r: the distribution of b's position in a
// similarity ranking of the database w.r.t. r. As the one query with a
// single IDCA run and no candidate fan-out, it applies
// Options.Parallelism at the pair level inside that run (results are
// deterministic for a fixed value, like core.Run).
func (e *Engine) InverseRank(b, r *uncertain.Object) *RankDistribution {
	start := time.Now()
	opts := e.runOpts()
	opts.Parallelism = e.Opts.Parallelism
	cache := e.queryCache()
	opts.SharedDecomps = cache
	res := e.run(b, r, opts)
	recordCache(e.Obs, nil, cache)
	e.Obs.observe(kindInverseRank, start, nil, false)
	ranks := make([]gf.Interval, len(res.Bounds))
	copy(ranks, res.Bounds)
	return &RankDistribution{
		Object:  b,
		MinRank: res.CountOffset() + 1,
		Ranks:   ranks,
		Result:  res,
	}
}

// ExpectedRankBounds derives bounds on the expected rank
// E[Rank] = Σ_k P(DomCount = k)·(k+1) (Corollary 6) from interval
// bounds on the count PDF. The definite mass Σ LB_k is placed at its
// counts; the free mass (1 − Σ LB_k) is pushed greedily to the lowest
// counts with spare capacity (UB_k − LB_k) for the lower bound and to
// the highest for the upper bound.
func ExpectedRankBounds(res *core.Result) (lo, hi float64) {
	offset := res.CountOffset()
	nb := len(res.Bounds)
	base, definite := 0.0, 0.0
	for k, iv := range res.Bounds {
		base += iv.LB * float64(offset+k+1)
		definite += iv.LB
	}
	free := 1 - definite
	if free < 0 {
		free = 0
	}
	lo, hi = base, base
	rem := free
	for k := 0; k < nb && rem > 1e-15; k++ {
		cap := res.Bounds[k].Width()
		m := minFloat(cap, rem)
		lo += m * float64(offset+k+1)
		rem -= m
	}
	rem = free
	for k := nb - 1; k >= 0 && rem > 1e-15; k-- {
		cap := res.Bounds[k].Width()
		m := minFloat(cap, rem)
		hi += m * float64(offset+k+1)
		rem -= m
	}
	return lo, hi
}

// Ranked is one object in an expected-rank ranking.
type Ranked struct {
	Object *uncertain.Object
	// ExpectedRankLB/UB bound the expected rank of the object.
	ExpectedRankLB, ExpectedRankUB float64
}

// RankByExpectedRank orders all database objects by (the midpoint of
// the bounds on) their expected rank with respect to q — the expected
// rank semantics of Cormode et al. [14] evaluated with IDCA bounds.
func (e *Engine) RankByExpectedRank(q *uncertain.Object) []Ranked {
	out, _ := e.RankByExpectedRankCtx(context.Background(), q)
	return out
}

// RankByExpectedRankCtx is RankByExpectedRank with cancellation and
// concurrent candidate evaluation. The ordering is deterministic: the
// stable sort runs over per-candidate bounds computed independently of
// worker count and completion order.
func (e *Engine) RankByExpectedRankCtx(ctx context.Context, q *uncertain.Object) ([]Ranked, error) {
	tr, pooled := e.Obs.traceFor(ctx)
	start := time.Now()
	cands := e.candidates(q)
	cache := e.queryCache()
	tr.AddCandidates(len(cands))
	e.Obs.countCandidates(len(cands))
	tr.AddPrepare(time.Since(start))
	out := make([]Ranked, len(cands))
	evalStart := time.Now()
	err := forEach(ctx, e.parallelism(), len(cands), func(i int) {
		opts := e.runOpts()
		opts.SharedDecomps = cache
		res := e.run(cands[i], q, opts)
		// Expected-rank ranking refines every candidate — there is no
		// threshold to preselect against.
		tr.CountRefined(len(res.Iterations))
		e.Obs.countRefined(len(res.Iterations))
		lo, hi := ExpectedRankBounds(res)
		out[i] = Ranked{Object: cands[i], ExpectedRankLB: lo, ExpectedRankUB: hi}
	})
	if err != nil {
		return nil, err
	}
	tr.AddEval(time.Since(evalStart))
	recordCache(e.Obs, tr, cache)
	e.Obs.observe(kindExpectedRank, start, tr, pooled)
	sort.SliceStable(out, func(i, j int) bool {
		mi := out[i].ExpectedRankLB + out[i].ExpectedRankUB
		mj := out[j].ExpectedRankLB + out[j].ExpectedRankUB
		return mi < mj
	})
	return out, nil
}

// The accessors below expose the engine's candidate-preselection
// primitives to incremental maintainers (package cq): a standing query
// that persists per-candidate verdicts needs to recompute exactly the
// preselection decisions a from-scratch query would make, on exactly
// the engine's resolved configuration.

// Norm returns the engine's resolved distance norm (L2 when unset).
func (e *Engine) Norm() geom.Norm { return e.normOrDefault() }

// NewQueryCache returns a decomposition cache scoped the way one query
// run would scope it: an overlay over the engine's persistent cache
// when Options.SharedDecomps is installed (Store engines), a private
// cache otherwise. Long-lived callers (standing subscriptions) hold one
// to reuse the decompositions of the query object and of
// database-resident influence objects across re-evaluations.
func (e *Engine) NewQueryCache() *core.DecompCache { return e.queryCache() }

// KNNThreshold returns m_{k+1}, the (k+1)-th smallest MaxDist(o, q)
// over the certainly-existing database objects — the kNN preselection
// bound (see knnfilter.go). Candidates with MinDist(b, q) above it have
// P(B ∈ kNN(q)) = 0. Returns +Inf when the database is too small to
// prune. The value is an order statistic of the database state, so it
// is independent of index shape.
func (e *Engine) KNNThreshold(q *uncertain.Object, k int) float64 {
	return e.knnThreshold(q, k, e.normOrDefault())
}

// KNNPrunable reports whether candidate b is impossible as a kNN
// result of q given the KNNThreshold bound thresh — the exact
// preselection test the engine applies at tau > 0.
func (e *Engine) KNNPrunable(q, b *uncertain.Object, thresh float64) bool {
	return knnPrunable(b, q, thresh, e.normOrDefault())
}

// RKNNPrunable reports whether candidate b is impossible as a reverse
// kNN result for q: at least k certainly-existing objects are closer to
// b than q in every possible world — the exact preselection test the
// engine applies at tau > 0.
func (e *Engine) RKNNPrunable(q, b *uncertain.Object, k int) bool {
	return e.rknnPrunable(q, b, k, e.normOrDefault())
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

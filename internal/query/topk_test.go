package query

import (
	"math/rand"
	"sort"
	"testing"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/uncertain"
)

// TestTopKNNMatchesExactOrder: the selected top-m set must be the m
// objects with the highest exact kNN probability (up to exact ties).
func TestTopKNNMatchesExactOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	db := smallDB(rng, 25, 12)
	q := randObj(rng, 500, 12, 5, 5, 2)
	const k, m = 3, 5
	eng := NewEngine(db, core.Options{MaxIterations: 10})
	got := eng.TopKNN(q, k, m)
	if len(got) != m {
		t.Fatalf("returned %d matches, want %d", len(got), m)
	}

	type scored struct {
		id int
		p  float64
	}
	var all []scored
	for _, b := range db {
		all = append(all, scored{id: b.ID, p: exactTail(db, b, q, k)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].p > all[j].p })
	cut := all[m-1].p
	want := map[int]bool{}
	for _, s := range all {
		if s.p >= cut-1e-9 {
			want[s.id] = true
		}
	}
	for _, g := range got {
		if !want[g.Object.ID] {
			t.Fatalf("object %d selected but exact P=%g below the top-%d cut %g",
				g.Object.ID, exactTail(db, g.Object, q, k), m, cut)
		}
		exact := exactTail(db, g.Object, q, k)
		if !g.Prob.Contains(exact, 1e-9) {
			t.Fatalf("object %d: exact %g outside [%g, %g]", g.Object.ID, exact, g.Prob.LB, g.Prob.UB)
		}
	}
	// The output must be ordered by probability midpoint.
	for i := 1; i < len(got); i++ {
		mi := got[i-1].Prob.LB + got[i-1].Prob.UB
		mj := got[i].Prob.LB + got[i].Prob.UB
		if mj > mi+1e-9 {
			t.Fatal("results not ordered by probability")
		}
	}
}

// TestTopKNNOnCertainData reduces to classical kNN.
func TestTopKNNOnCertainData(t *testing.T) {
	db := uncertain.Database{
		uncertain.PointObject(0, geom.Point{4, 0}),
		uncertain.PointObject(1, geom.Point{1, 0}),
		uncertain.PointObject(2, geom.Point{2, 0}),
		uncertain.PointObject(3, geom.Point{3, 0}),
		uncertain.PointObject(4, geom.Point{9, 0}),
	}
	q := uncertain.PointObject(99, geom.Point{0, 0})
	eng := NewEngine(db, core.Options{MaxIterations: 4})
	got := eng.TopKNN(q, 2, 2)
	if len(got) != 2 {
		t.Fatalf("got %d matches", len(got))
	}
	ids := map[int]bool{got[0].Object.ID: true, got[1].Object.ID: true}
	if !ids[1] || !ids[2] {
		t.Fatalf("top-2 of 2NN should be objects 1 and 2, got %v", ids)
	}
	for _, g := range got {
		if !g.Decided {
			t.Errorf("certain-data selection undecided for %d", g.Object.ID)
		}
	}
}

// TestTopKNNEdgeCases: invalid parameters and m larger than the
// candidate set.
func TestTopKNNEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	db := smallDB(rng, 6, 6)
	q := randObj(rng, 500, 6, 5, 5, 1)
	eng := NewEngine(db, core.Options{MaxIterations: 3})
	if eng.TopKNN(q, 0, 3) != nil {
		t.Error("k=0 must return nil")
	}
	if eng.TopKNN(q, 3, 0) != nil {
		t.Error("m=0 must return nil")
	}
	got := eng.TopKNN(q, 2, 100)
	if len(got) == 0 || len(got) > len(db) {
		t.Errorf("m beyond candidates returned %d matches", len(got))
	}
}

// TestTopKNNWithoutIndex: the linear-engine path must agree with the
// indexed one on the selected set.
func TestTopKNNWithoutIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(702))
	db := smallDB(rng, 20, 8)
	q := randObj(rng, 500, 8, 5, 5, 2)
	withIdx := NewEngine(db, core.Options{MaxIterations: 8})
	noIdx := &Engine{DB: db, Opts: core.Options{MaxIterations: 8}}
	a := withIdx.TopKNN(q, 3, 4)
	b := noIdx.TopKNN(q, 3, 4)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	idsA := map[int]bool{}
	for _, m := range a {
		idsA[m.Object.ID] = true
	}
	for _, m := range b {
		if !idsA[m.Object.ID] {
			t.Fatalf("selections differ: %d missing from indexed run", m.Object.ID)
		}
	}
}

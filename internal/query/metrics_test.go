package query

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"probprune/internal/core"
	"probprune/internal/obs"
)

// TestQueryMetricsAndTrace: a KNN query records its full anatomy into
// both the engine's Metrics and a per-query Trace threaded through the
// context, and the two agree on the filter economy.
func TestQueryMetricsAndTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := smallDB(rng, 60, 5)
	e := NewEngine(db, core.Options{MaxIterations: 3})
	q := randObj(rng, -1, 5, 5, 5, 1.5)

	tr := &obs.Trace{}
	ctx := obs.WithTrace(context.Background(), tr)
	if _, err := e.KNNCtx(ctx, q, 3, 0.3); err != nil {
		t.Fatal(err)
	}

	snap := tr.Snapshot()
	if snap.Candidates == 0 {
		t.Fatal("trace counted no candidates")
	}
	if snap.Preselected+snap.Refined != snap.Candidates {
		t.Fatalf("preselected %d + refined %d != candidates %d",
			snap.Preselected, snap.Refined, snap.Candidates)
	}
	if snap.CacheHits+snap.CacheMisses == 0 {
		t.Fatal("trace saw no decomposition-cache traffic")
	}
	if snap.Prepare <= 0 || snap.Eval <= 0 {
		t.Fatalf("phase durations prepare=%v eval=%v, want both > 0", snap.Prepare, snap.Eval)
	}
	if s := snap.String(); !strings.Contains(s, "candidates=") {
		t.Fatalf("TraceSnapshot.String() = %q, want candidate anatomy", s)
	}

	m := e.Obs.Snapshot()
	if got := m["query.knn.latency.count"]; got != 1 {
		t.Fatalf("query.knn.latency.count = %d, want 1", got)
	}
	if got := m["query.candidates"]; got != int64(snap.Candidates) {
		t.Fatalf("engine candidates %d, trace %d", got, snap.Candidates)
	}
	if got := m["query.preselected"]; got != int64(snap.Preselected) {
		t.Fatalf("engine preselected %d, trace %d", got, snap.Preselected)
	}
	if got := m["query.refined"]; got != int64(snap.Refined) {
		t.Fatalf("engine refined %d, trace %d", got, snap.Refined)
	}
	if m["query.cache.hits"]+m["query.cache.misses"] == 0 {
		t.Fatal("engine saw no decomposition-cache traffic")
	}

	// Every other kind's latency histogram stays empty.
	for _, kind := range []string{"rknn", "topk", "inverse_rank", "expected_rank", "ukranks", "batch_knn"} {
		if got := m["query."+kind+".latency.count"]; got != 0 {
			t.Fatalf("query.%s.latency.count = %d after a KNN-only run", kind, got)
		}
	}
}

// TestQueryMetricsAllKinds: each query entry point lands in its own
// latency histogram.
func TestQueryMetricsAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := smallDB(rng, 30, 4)
	e := NewEngine(db, core.Options{MaxIterations: 2})
	q := randObj(rng, -1, 4, 5, 5, 1.5)
	ctx := context.Background()

	if _, err := e.KNNCtx(ctx, q, 2, 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RKNNCtx(ctx, q, 2, 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := e.TopKNNCtx(ctx, q, 2, 3); err != nil {
		t.Fatal(err)
	}
	e.InverseRank(db[0], q)
	if _, err := e.RankByExpectedRankCtx(ctx, q); err != nil {
		t.Fatal(err)
	}
	if _, err := e.UKRanksCtx(ctx, q, 2); err != nil {
		t.Fatal(err)
	}

	m := e.Obs.Snapshot()
	for _, kind := range []string{"knn", "rknn", "topk", "inverse_rank", "expected_rank", "ukranks"} {
		if got := m["query."+kind+".latency.count"]; got != 1 {
			t.Fatalf("query.%s.latency.count = %d, want 1", kind, got)
		}
	}
}

// TestSlowQueryLog: queries above the threshold are logged with their
// kind and latency; a 1ns threshold catches everything, a non-positive
// threshold disables the log.
func TestSlowQueryLog(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := smallDB(rng, 40, 4)
	e := NewEngine(db, core.Options{MaxIterations: 2})
	q := randObj(rng, -1, 4, 5, 5, 1.5)

	var logged atomic.Int64
	var last atomic.Value
	e.Obs.SetSlowQueryLog(time.Nanosecond, func(format string, args ...any) {
		logged.Add(1)
		last.Store(fmt.Sprintf(format, args...))
	})
	if _, err := e.KNNCtx(context.Background(), q, 2, 0.3); err != nil {
		t.Fatal(err)
	}
	if logged.Load() != 1 {
		t.Fatalf("slow-query log fired %d times with a 1ns threshold, want 1", logged.Load())
	}
	if msg := last.Load().(string); !strings.Contains(msg, "kind=knn") {
		t.Fatalf("slow-query log %q does not name the query kind", msg)
	}

	// An unreachable threshold silences it.
	e.Obs.SetSlowQueryLog(time.Hour, func(format string, args ...any) { logged.Add(1) })
	if _, err := e.KNNCtx(context.Background(), q, 2, 0.3); err != nil {
		t.Fatal(err)
	}
	if logged.Load() != 1 {
		t.Fatalf("slow-query log fired below threshold (%d calls)", logged.Load())
	}

	// Disabled: non-positive threshold.
	e.Obs.SetSlowQueryLog(0, func(format string, args ...any) { logged.Add(1) })
	if _, err := e.KNNCtx(context.Background(), q, 2, 0.3); err != nil {
		t.Fatal(err)
	}
	if logged.Load() != 1 {
		t.Fatalf("slow-query log fired with a zero threshold (%d calls)", logged.Load())
	}

	// Disabled again: nil logf.
	e.Obs.SetSlowQueryLog(time.Nanosecond, nil)
	if _, err := e.KNNCtx(context.Background(), q, 2, 0.3); err != nil {
		t.Fatal(err)
	}
	if logged.Load() != 1 {
		t.Fatalf("slow-query log fired while disabled (%d calls)", logged.Load())
	}
}

// TestNilMetricsSafe: a zero-constructed engine (no Metrics) serves
// queries without panicking — every record path tolerates nil.
func TestNilMetricsSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := smallDB(rng, 20, 4)
	e := NewEngine(db, core.Options{MaxIterations: 2})
	e.Obs = nil
	q := randObj(rng, -1, 4, 5, 5, 1.5)
	if _, err := e.KNNCtx(context.Background(), q, 2, 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := e.TopKNNCtx(context.Background(), q, 2, 3); err != nil {
		t.Fatal(err)
	}
	var m *Metrics
	if m.Snapshot() != nil {
		t.Fatal("nil Metrics snapshot should be nil")
	}
}

// TestStoreMetricsShared: a store's snapshot engines all record into
// the store's one metric set, so STATS sees every query ever served.
func TestStoreMetricsShared(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := smallDB(rng, 30, 4)
	s, err := NewStore(db, core.Options{MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := randObj(rng, -1, 4, 5, 5, 1.5)
	ctx := context.Background()
	if _, err := s.KNNCtx(ctx, q, 2, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(randObj(rng, db[0].ID, 4, 5, 5, 1.5)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.KNNCtx(ctx, q, 2, 0.3); err != nil { // fresh snapshot engine
		t.Fatal(err)
	}
	if got := s.Metrics().Snapshot()["query.knn.latency.count"]; got != 2 {
		t.Fatalf("store counted %d KNN queries across snapshots, want 2", got)
	}
}

package query

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/uncertain"
	"probprune/internal/wal"
	"probprune/internal/workload"
)

// This file is the crash-recovery equivalence suite: on seeded mutation
// traces, a durable store is "killed" at arbitrary commits (its journal
// directory copied, exactly as a crashed process would leave it) and
// reopened; the recovered store must answer KNN, RkNN, TopKNN and
// InverseRank bit-identically to an in-memory store that survived to
// the same commit — same versions, same database order, same
// decomposition cache epochs, same probability intervals.

// copyTree clones a journal directory at a commit boundary — the
// simulated crash image.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// traceOp is one mutation of a seeded trace.
type traceOp struct {
	kind    byte // 'i'nsert, 'u'pdate, 'd'elete, 'm'ove, 'r'ebalance
	obj     *uncertain.Object
	id, dst int
}

// durableMutator is the mutation surface shared by Store and
// ShardedStore, plus the sharded-only ops (no-ops on a Store).
type durableMutator interface {
	Insert(*uncertain.Object) error
	Update(*uncertain.Object) error
	Delete(int) bool
}

func applyOp(t *testing.T, s durableMutator, op traceOp) {
	t.Helper()
	switch op.kind {
	case 'i':
		if err := s.Insert(op.obj); err != nil {
			t.Fatal(err)
		}
	case 'u':
		if err := s.Update(op.obj); err != nil {
			t.Fatal(err)
		}
	case 'd':
		if !s.Delete(op.id) {
			t.Fatalf("delete of %d found nothing", op.id)
		}
	case 'm':
		if sh, ok := s.(*ShardedStore); ok {
			if err := sh.Move(op.id, op.dst); err != nil {
				t.Fatal(err)
			}
		}
	case 'r':
		if sh, ok := s.(*ShardedStore); ok {
			sh.Rebalance()
		}
	}
}

// traceCase builds the seeded initial database and mutation trace. IDs
// present at every point of the trace are tracked so updates and
// deletes always hit.
func traceCase(t *testing.T, seed int64, sharded bool) (uncertain.Database, []traceOp) {
	t.Helper()
	db, err := workload.Synthetic(workload.SyntheticConfig{
		N: 10 + int(seed%8), Samples: 4, MaxExtent: 0.15, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed*977 + 5))
	live := make([]int, 0, len(db))
	nextID := len(db)
	for _, o := range db {
		live = append(live, o.ID)
	}
	randObj := func(id int) *uncertain.Object {
		n := 2 + rng.Intn(4)
		cx, cy := rng.Float64(), rng.Float64()
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{cx + rng.Float64()*0.1, cy + rng.Float64()*0.1}
		}
		var weights []float64
		if rng.Intn(2) == 0 {
			weights = make([]float64, n)
			for i := range weights {
				weights[i] = rng.Float64() + 0.05
			}
		}
		o, err := uncertain.NewWeightedObject(id, pts, weights)
		if err != nil {
			t.Fatal(err)
		}
		if rng.Intn(4) == 0 {
			if err := o.SetExistence(0.2 + 0.75*rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		return o
	}
	var ops []traceOp
	for i := 0; i < 28; i++ {
		switch k := rng.Intn(10); {
		case k < 3: // insert
			ops = append(ops, traceOp{kind: 'i', obj: randObj(nextID)})
			live = append(live, nextID)
			nextID++
		case k < 6: // update
			ops = append(ops, traceOp{kind: 'u', obj: randObj(live[rng.Intn(len(live))])})
		case k < 8 && len(live) > 4: // delete
			j := rng.Intn(len(live))
			ops = append(ops, traceOp{kind: 'd', id: live[j]})
			live = append(live[:j], live[j+1:]...)
		case k == 8 && sharded: // explicit migration
			ops = append(ops, traceOp{kind: 'm', id: live[rng.Intn(len(live))], dst: rng.Intn(4)})
		case k == 9 && sharded:
			ops = append(ops, traceOp{kind: 'r'})
		default:
			ops = append(ops, traceOp{kind: 'u', obj: randObj(live[rng.Intn(len(live))])})
		}
	}
	return db, ops
}

// matchesEqual asserts two match slices are bit-identical (exact float
// equality on the probability bounds).
func matchesEqual(a, b []Match) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d vs %d matches", len(a), len(b))
	}
	for i := range a {
		if a[i].Object.ID != b[i].Object.ID {
			return fmt.Errorf("match %d: object %d vs %d", i, a[i].Object.ID, b[i].Object.ID)
		}
		if a[i].Prob != b[i].Prob || a[i].IsResult != b[i].IsResult ||
			a[i].Decided != b[i].Decided || a[i].Iterations != b[i].Iterations {
			return fmt.Errorf("match %d (object %d): %+v vs %+v", i, a[i].Object.ID, a[i], b[i])
		}
	}
	return nil
}

// compareBackends asserts the two stores answer every query kind
// bit-identically.
func compareBackends(t *testing.T, label string, got, want interface {
	KNN(*uncertain.Object, int, float64) []Match
	RKNN(*uncertain.Object, int, float64) []Match
	TopKNN(*uncertain.Object, int, int) []Match
	InverseRank(*uncertain.Object, *uncertain.Object) *RankDistribution
	Get(int) (*uncertain.Object, bool)
	Len() int
	Version() uint64
}) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d objects, want %d", label, got.Len(), want.Len())
	}
	if got.Version() != want.Version() {
		t.Fatalf("%s: version %d, want %d", label, got.Version(), want.Version())
	}
	qs := []*uncertain.Object{
		uncertain.PointObject(-1, geom.Point{0.5, 0.5}),
		uncertain.PointObject(-2, geom.Point{0.15, 0.8}),
	}
	for qi, q := range qs {
		if err := matchesEqual(got.KNN(q, 3, 0.3), want.KNN(q, 3, 0.3)); err != nil {
			t.Fatalf("%s: KNN q%d: %v", label, qi, err)
		}
		if err := matchesEqual(got.RKNN(q, 2, 0.4), want.RKNN(q, 2, 0.4)); err != nil {
			t.Fatalf("%s: RKNN q%d: %v", label, qi, err)
		}
		if err := matchesEqual(got.TopKNN(q, 3, 4), want.TopKNN(q, 3, 4)); err != nil {
			t.Fatalf("%s: TopKNN q%d: %v", label, qi, err)
		}
	}
	// InverseRank over a database-resident target: resolve the instance
	// on each backend by ID.
	var bID = -1
	for id := 0; id < 1000; id++ {
		if _, ok := want.Get(id); ok {
			bID = id
			break
		}
	}
	if bID >= 0 {
		bg, _ := got.Get(bID)
		bw, _ := want.Get(bID)
		rg := got.InverseRank(bg, qs[0])
		rw := want.InverseRank(bw, qs[0])
		if rg.MinRank != rw.MinRank || len(rg.Ranks) != len(rw.Ranks) {
			t.Fatalf("%s: InverseRank shape differs", label)
		}
		for i := range rg.Ranks {
			if rg.Ranks[i] != rw.Ranks[i] {
				t.Fatalf("%s: InverseRank rank %d: %+v vs %+v", label, i, rg.Ranks[i], rw.Ranks[i])
			}
		}
	}
}

// TestCrashRecoveryEquivalence is the acceptance suite: 20 seeds, shard
// counts 1 and 4, each trace killed at three different commits
// (including mid-trace points where auto-checkpoints and segment
// rotations have happened), reopened from the crash image, and
// compared bit-for-bit against a surviving in-memory store at the same
// commit.
func TestCrashRecoveryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery suite is not short")
	}
	opts := core.Options{MaxIterations: 3}
	for seed := int64(0); seed < 20; seed++ {
		for _, shards := range []int{1, 4} {
			seed, shards := seed, shards
			t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
				t.Parallel()
				db, ops := traceCase(t, seed, shards > 1)
				popts := PersistOptions{
					Dir:             filepath.Join(t.TempDir(), "db"),
					CheckpointEvery: 7 + int(seed%5),
					SegmentBytes:    1 << 11,
				}
				sopts := ShardedOptions{Shards: shards}
				dur, err := BootstrapShardedStore(db, popts, sopts, opts)
				if err != nil {
					t.Fatal(err)
				}
				defer dur.Close()
				kills := map[int]string{
					len(ops) / 3:     filepath.Join(t.TempDir(), "k1"),
					2 * len(ops) / 3: filepath.Join(t.TempDir(), "k2"),
					len(ops):         filepath.Join(t.TempDir(), "k3"),
				}
				for i, op := range ops {
					applyOp(t, dur, op)
					if dst, ok := kills[i+1]; ok {
						// Quiesce the background checkpoint installer so
						// the copy is a point-in-time crash image (a walk
						// racing a live install is not one — crashes DURING
						// an install are exercised by the kill-point tests).
						dur.drainCheckpoints()
						copyTree(t, popts.Dir, dst)
					}
				}

				for at, img := range kills {
					// The surviving in-memory store at commit `at`.
					mirror, err := NewShardedStore(db, sopts, opts)
					if err != nil {
						t.Fatal(err)
					}
					for _, op := range ops[:at] {
						applyOp(t, mirror, op)
					}
					reopened, err := OpenShardedStore(PersistOptions{Dir: img}, sopts, opts)
					if err != nil {
						t.Fatalf("kill at %d: %v", at, err)
					}
					label := fmt.Sprintf("kill at commit %d", at)
					compareBackends(t, label, reopened, mirror)
					if g, w := reopened.ShardSizes(), mirror.ShardSizes(); fmt.Sprint(g) != fmt.Sprint(w) {
						t.Fatalf("%s: shard sizes %v, want %v", label, g, w)
					}
					gvv := reopened.Snapshot().VersionVector()
					wvv := mirror.Snapshot().VersionVector()
					if fmt.Sprint(gvv) != fmt.Sprint(wvv) {
						t.Fatalf("%s: version vector %v, want %v", label, gvv, wvv)
					}
					if g, w := reopened.cache.Version(), mirror.cache.Version(); g != w {
						t.Fatalf("%s: router cache epoch %d, want %d", label, g, w)
					}
					// The reopened store keeps serving: mutate both and
					// compare again.
					extra := uncertain.PointObject(100000+int(seed), geom.Point{0.31, 0.62})
					if err := reopened.Insert(extra); err != nil {
						t.Fatal(err)
					}
					if err := mirror.Insert(extra); err != nil {
						t.Fatal(err)
					}
					compareBackends(t, label+" after reopen-insert", reopened, mirror)
					if err := reopened.Close(); err != nil {
						t.Fatalf("%s: close: %v", label, err)
					}
				}
			})
		}
	}
}

// TestDurableStoreBasics drives the unsharded open/persist lifecycle:
// bootstrap, journaled commits, checkpoint, close, reopen, and the
// refusal to bootstrap over an existing journal.
func TestDurableStoreBasics(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, ops := traceCase(t, 3, false)
	opts := core.Options{MaxIterations: 3}
	popts := PersistOptions{Dir: dir, Sync: wal.SyncAlways}
	s, err := BootstrapStore(db, popts, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[:10] {
		applyOp(t, s, op)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[10:] {
		applyOp(t, s, op)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(uncertain.PointObject(99999, geom.Point{0, 0})); err == nil {
		t.Fatal("insert after Close succeeded")
	}
	if _, err := BootstrapStore(db, popts, opts); err == nil {
		t.Fatal("bootstrap over an existing journal succeeded")
	}

	mirror, err := NewStore(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		applyOp(t, mirror, op)
	}
	reopened, err := OpenStore(popts, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	compareBackends(t, "reopen", reopened, mirror)
	if g, w := reopened.cache.Version(), mirror.cache.Version(); g != w {
		t.Fatalf("cache epoch %d, want %d", g, w)
	}
}

// TestReopenSkipsRedecomposition: a checkpoint persists the
// decomposition cache, so a reopened store starts with the crashed
// process's materialized kd-splits instead of lazy pins.
func TestReopenSkipsRedecomposition(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, _ := traceCase(t, 5, false)
	opts := core.Options{MaxIterations: 4}
	s, err := BootstrapStore(db, PersistOptions{Dir: dir}, opts)
	if err != nil {
		t.Fatal(err)
	}
	q := uncertain.PointObject(-1, geom.Point{0.5, 0.5})
	before := s.KNN(q, 3, 0.3)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenStore(PersistOptions{Dir: dir}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	materialized := 0
	reopened.mu.RLock()
	for _, o := range reopened.db {
		if reopened.cache.Materialized(o) != nil {
			materialized++
		}
	}
	reopened.mu.RUnlock()
	if materialized == 0 {
		t.Fatal("no decomposition survived the checkpoint")
	}
	if err := matchesEqual(reopened.KNN(q, 3, 0.3), before); err != nil {
		t.Fatalf("seeded decompositions changed the answer: %v", err)
	}
}

// TestRecoveryTruncatedTail: chopping bytes off the live segment loses
// only the torn commit — recovery lands exactly one commit back.
func TestRecoveryTruncatedTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, ops := traceCase(t, 7, false)
	opts := core.Options{MaxIterations: 2}
	s, err := BootstrapStore(db, PersistOptions{Dir: dir}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[:6] {
		applyOp(t, s, op)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "wal-00000002.log")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	mirror, err := NewStore(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[:5] {
		applyOp(t, mirror, op)
	}
	reopened, err := OpenStore(PersistOptions{Dir: dir}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	compareBackends(t, "torn tail", reopened, mirror)
}

// TestRecoveryInterruptedMigration: a crash between a migration's two
// journal appends (move-in durable on the destination, move-out never
// written on the source) leaves the object on both shards' logs. The
// next open must detect the duplicate, drop the dangling move-in copy
// (journaling the compensating move-out), and recover the logical
// database unharmed — and a second reopen must be clean too.
func TestRecoveryInterruptedMigration(t *testing.T) {
	db, _ := traceCase(t, 17, false)
	opts := core.Options{MaxIterations: 2}
	popts := PersistOptions{Dir: filepath.Join(t.TempDir(), "db")}
	s, err := BootstrapShardedStore(db, popts, ShardedOptions{Shards: 3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the torn migration: journal (and apply) the move-in on a
	// non-home shard without ever journaling the source's move-out —
	// exactly the on-disk state a kill between the two appends leaves.
	id := db[0].ID
	src, _ := s.ShardOf(id)
	dst := (src + 1) % 3
	o, _ := s.Get(id)
	if err := s.shards[dst].insertOp(context.Background(), o, wal.OpMoveIn, s.Version()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	for round := 1; round <= 2; round++ {
		r, err := OpenShardedStore(popts, ShardedOptions{Shards: 3}, opts)
		if err != nil {
			t.Fatalf("reopen %d after torn migration: %v", round, err)
		}
		if r.Len() != len(db) {
			t.Fatalf("reopen %d: %d objects, want %d", round, r.Len(), len(db))
		}
		if home, ok := r.ShardOf(id); !ok || home != src {
			t.Fatalf("reopen %d: object %d homed on %d (ok=%v), want undo to %d", round, id, home, ok, src)
		}
		mirror, err := NewShardedStore(db, ShardedOptions{Shards: 3}, opts)
		if err != nil {
			t.Fatal(err)
		}
		compareBackends(t, fmt.Sprintf("torn migration reopen %d", round), r, mirror)
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBootstrapShardedInterrupted: shard journals without a MANIFEST
// are the debris of a bootstrap that crashed before its commit point;
// they must not wedge the directory — open (or a retried bootstrap)
// clears them and starts fresh.
func TestBootstrapShardedInterrupted(t *testing.T) {
	db, _ := traceCase(t, 19, false)
	opts := core.Options{MaxIterations: 2}
	popts := PersistOptions{Dir: filepath.Join(t.TempDir(), "db")}
	s, err := BootstrapShardedStore(db, popts, ShardedOptions{Shards: 2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash-before-commit-point: shard dirs exist, the
	// manifest never made it.
	if err := os.Remove(filepath.Join(popts.Dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	r, err := OpenShardedStore(popts, ShardedOptions{Shards: 2}, opts)
	if err != nil {
		t.Fatalf("open after interrupted bootstrap: %v", err)
	}
	if r.Len() != 0 || r.Version() != 0 {
		t.Fatalf("interrupted bootstrap recovered %d objects at version %d, want a fresh store", r.Len(), r.Version())
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := BootstrapShardedStore(db, PersistOptions{Dir: popts.Dir}, ShardedOptions{Shards: 2}, opts); err == nil {
		t.Fatal("bootstrap over the re-initialized manifest succeeded")
	}
}

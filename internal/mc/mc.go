// Package mc implements the comparison partner of the paper's
// evaluation (Section VII-A): the Monte-Carlo / sampling based
// computation of the probabilistic domination count.
//
// The approach adapts Lian & Chen's exact algorithm for discrete
// distributions [21] as the paper describes: for every sample r of the
// uncertain reference R and every sample b of the target B, the
// domination indicators of the candidates become mutually independent
// Bernoulli variables (the dependence runs only through the shared b
// and r, which are now fixed), so the per-world domination count PDF is
// the Poisson binomial expanded by a regular generating function. The
// final PDF is the weighted average over all (b, r) sample pairs.
//
// On the discrete sample model this computation is EXACT — the package
// therefore doubles as the ground truth oracle of the test suite. Its
// cost, however, is what Figure 5 of the paper shows: quadratic in the
// per-object sample count on top of the generating-function cost, which
// is why the paper's pruning framework wins.
package mc

import (
	"math/rand"
	"sort"

	"probprune/internal/geom"
	"probprune/internal/gf"
	"probprune/internal/uncertain"
)

// DomCountPDF computes the domination count PDF of B w.r.t. R over the
// given candidate objects: out[k] = P(exactly k candidates are closer
// to R than B). On the discrete sample model the result is exact.
//
// kMax > 0 restricts the computation to the coefficients k < kMax (the
// prefix needed by kNN-style predicates), reducing the
// generating-function cost from O(C²) to O(C·kMax) per sample pair; the
// returned slice then has min(kMax, C+1) entries whose values equal the
// untruncated prefix.
func DomCountPDF(n geom.Norm, cands []*uncertain.Object, b, r *uncertain.Object, kMax int) []float64 {
	c := len(cands)
	outLen := c + 1
	if kMax > 0 && kMax < outLen {
		outLen = kMax
	}
	out := make([]float64, outLen)
	if c == 0 {
		out[0] = 1
		return out
	}

	// dists[i] holds the candidate-i sample distances to the current
	// reference sample, sorted, paired with the cumulative weight below
	// each position for O(log S) probability lookups.
	type candDists struct {
		d []float64 // sorted distances
		w []float64 // cumulative weight: w[j] = P(dist < d[j+1]) prefix
	}
	dists := make([]candDists, c)
	for i, a := range cands {
		dists[i].d = make([]float64, a.NumSamples())
		dists[i].w = make([]float64, a.NumSamples())
	}
	ps := make([]float64, c)

	for ir, rs := range r.Samples {
		wr := r.Weight(ir)
		// Per reference sample: sort each candidate's distances once.
		for i, a := range cands {
			cd := &dists[i]
			for j, as := range a.Samples {
				cd.d[j] = n.Dist(as, rs)
			}
			if a.Weights == nil {
				sort.Float64s(cd.d)
				uw := 1 / float64(len(cd.d))
				acc := 0.0
				for j := range cd.w {
					acc += uw
					cd.w[j] = acc
				}
			} else {
				idx := make([]int, len(cd.d))
				for j := range idx {
					idx[j] = j
				}
				sort.Slice(idx, func(x, y int) bool { return cd.d[idx[x]] < cd.d[idx[y]] })
				sd := make([]float64, len(idx))
				acc := 0.0
				for j, id := range idx {
					sd[j] = cd.d[id]
					acc += a.Weights[id]
					cd.w[j] = acc
				}
				cd.d = sd
			}
		}
		for ib, bs := range b.Samples {
			w := wr * b.Weight(ib)
			dbr := n.Dist(bs, rs)
			for i := range cands {
				// An existentially uncertain candidate dominates only in
				// the worlds where it exists (independent of position).
				ps[i] = cands[i].ExistenceProb() * massBelow(dists[i].d, dists[i].w, dbr)
			}
			var pdf []float64
			if kMax > 0 {
				pdf = gf.PoissonBinomialTruncated(ps, kMax)
			} else {
				pdf = gf.PoissonBinomial(ps)
			}
			for k := 0; k < len(pdf) && k < outLen; k++ {
				out[k] += w * pdf[k]
			}
		}
	}
	return out
}

// massBelow returns the probability mass of distances strictly below x,
// given sorted distances d and cumulative weights w.
func massBelow(d, w []float64, x float64) float64 {
	// First index with d[i] >= x; mass strictly below is w[i-1].
	i := sort.SearchFloat64s(d, x)
	if i == 0 {
		return 0
	}
	return w[i-1]
}

// PDom computes the exact probabilistic domination PDom(A, B, R) on the
// discrete sample model: the probability that A is closer to R than B.
func PDom(n geom.Norm, a, b, r *uncertain.Object) float64 {
	total := 0.0
	for ir, rs := range r.Samples {
		wr := r.Weight(ir)
		// Sort A's distances once per reference sample.
		type wd struct {
			d, w float64
		}
		ds := make([]wd, a.NumSamples())
		for j, as := range a.Samples {
			ds[j] = wd{d: n.Dist(as, rs), w: a.Weight(j)}
		}
		sort.Slice(ds, func(x, y int) bool { return ds[x].d < ds[y].d })
		d := make([]float64, len(ds))
		w := make([]float64, len(ds))
		acc := 0.0
		for j, e := range ds {
			d[j] = e.d
			acc += e.w
			w[j] = acc
		}
		for ib, bs := range b.Samples {
			total += wr * b.Weight(ib) * massBelow(d, w, n.Dist(bs, rs))
		}
	}
	return a.ExistenceProb() * total
}

// ExpectedRank computes the expected rank of B w.r.t. reference R over
// the candidates (Corollary 6): E[Rank] = Σ_k P(DomCount = k)·(k+1).
func ExpectedRank(n geom.Norm, cands []*uncertain.Object, b, r *uncertain.Object) float64 {
	pdf := DomCountPDF(n, cands, b, r, 0)
	e := 0.0
	for k, p := range pdf {
		e += p * float64(k+1)
	}
	return e
}

// Resample returns a database whose objects carry s fresh samples each,
// drawn with replacement from the original discrete distributions — the
// "draw a sufficiently large number S of samples from each object by
// Monte-Carlo-Sampling" preparation step of the comparison partner.
// The rng makes runs reproducible.
func Resample(db uncertain.Database, s int, rng *rand.Rand) uncertain.Database {
	out := make(uncertain.Database, len(db))
	for i, o := range db {
		out[i] = o.Resample(s, rng)
	}
	return out
}

package mc

import (
	"math"
	"math/rand"
	"testing"

	"probprune/internal/geom"
	"probprune/internal/uncertain"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func obj(t testing.TB, id int, pts ...geom.Point) *uncertain.Object {
	t.Helper()
	o, err := uncertain.NewObject(id, pts)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func randObj(rng *rand.Rand, id, n int, cx, cy, ext float64) *uncertain.Object {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{cx + (rng.Float64()-0.5)*ext, cy + (rng.Float64()-0.5)*ext}
	}
	o, err := uncertain.NewObject(id, pts)
	if err != nil {
		panic(err)
	}
	return o
}

// bruteForceDomCount enumerates every possible world (all sample
// combinations) and accumulates the exact domination count PDF.
func bruteForceDomCount(n geom.Norm, cands []*uncertain.Object, b, r *uncertain.Object) []float64 {
	out := make([]float64, len(cands)+1)
	var rec func(i int, picked []int, w float64)
	rec = func(i int, picked []int, w float64) {
		if i == len(cands) {
			for ib, bs := range b.Samples {
				for ir, rs := range r.Samples {
					ww := w * b.Weight(ib) * r.Weight(ir)
					dbr := n.Dist(bs, rs)
					count := 0
					for ci, c := range cands {
						if n.Dist(c.Samples[picked[ci]], rs) < dbr {
							count++
						}
					}
					out[count] += ww
				}
			}
			return
		}
		for si := range cands[i].Samples {
			rec(i+1, append(picked, si), w*cands[i].Weight(si))
		}
	}
	rec(0, make([]int, 0, len(cands)), 1)
	return out
}

func TestPDomHandComputed(t *testing.T) {
	// A at {0} or {2} (uniform), B certain at 3, R certain at 0.
	// dist(a, r) ∈ {0, 2}, dist(b, r) = 3: A always closer → PDom = 1.
	a := obj(t, 0, geom.Point{0}, geom.Point{2})
	b := obj(t, 1, geom.Point{3})
	r := obj(t, 2, geom.Point{0})
	if got := PDom(geom.L2, a, b, r); !almostEqual(got, 1, 1e-12) {
		t.Errorf("PDom = %g, want 1", got)
	}
	// Move B to 1: dist(b, r) = 1, so only a = 0 is closer → PDom = 0.5.
	b2 := obj(t, 1, geom.Point{1})
	if got := PDom(geom.L2, a, b2, r); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("PDom = %g, want 0.5", got)
	}
	// Ties are NOT domination: a = 1 vs b = 1 gives strict < failure.
	a3 := obj(t, 0, geom.Point{1}, geom.Point{-1})
	if got := PDom(geom.L2, a3, b2, r); !almostEqual(got, 0, 1e-12) {
		t.Errorf("tie counted as domination: PDom = %g", got)
	}
}

func TestPDomExampleOneFromPaper(t *testing.T) {
	// Example 1 geometry: A1 = A2 certain at the same position, B
	// certain, R uncertain over two locations such that A dominates B
	// in exactly one of them — PDom = 0.5 for both candidates.
	a1 := obj(t, 0, geom.Point{0, 0})
	b := obj(t, 1, geom.Point{2, 0})
	r := obj(t, 2, geom.Point{0.5, 0}, geom.Point{5, 0})
	// r = (0.5, 0): dist(a) = 0.5 < dist(b) = 1.5 → dominates.
	// r = (5, 0): dist(a) = 5 > dist(b) = 3 → does not.
	if got := PDom(geom.L2, a1, b, r); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("PDom = %g, want 0.5", got)
	}
	// The exact joint count PDF must reflect the perfect correlation:
	// both dominate or neither does — P(0) = P(2) = 0.5, P(1) = 0.
	a2 := obj(t, 3, geom.Point{0, 0})
	pdf := DomCountPDF(geom.L2, []*uncertain.Object{a1, a2}, b, r, 0)
	want := []float64{0.5, 0, 0.5}
	for k := range want {
		if !almostEqual(pdf[k], want[k], 1e-12) {
			t.Errorf("P(count=%d) = %g, want %g (naive independent combination would give 0.25/0.5/0.25)",
				k, pdf[k], want[k])
		}
	}
}

func TestDomCountPDFMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for trial := 0; trial < 25; trial++ {
		nc := 1 + rng.Intn(3)
		cands := make([]*uncertain.Object, nc)
		for i := range cands {
			cands[i] = randObj(rng, i, 1+rng.Intn(3), rng.Float64()*4, rng.Float64()*4, 2)
		}
		b := randObj(rng, 90, 1+rng.Intn(3), rng.Float64()*4, rng.Float64()*4, 2)
		r := randObj(rng, 91, 1+rng.Intn(3), rng.Float64()*4, rng.Float64()*4, 2)
		got := DomCountPDF(geom.L2, cands, b, r, 0)
		want := bruteForceDomCount(geom.L2, cands, b, r)
		for k := range want {
			if !almostEqual(got[k], want[k], 1e-9) {
				t.Fatalf("trial %d k=%d: got %g want %g", trial, k, got[k], want[k])
			}
		}
	}
}

func TestDomCountPDFMassAndEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	cands := []*uncertain.Object{
		randObj(rng, 0, 5, 0, 0, 1),
		randObj(rng, 1, 5, 2, 2, 1),
		randObj(rng, 2, 5, 4, 4, 1),
	}
	b := randObj(rng, 10, 5, 1, 1, 1)
	r := randObj(rng, 11, 5, 0.5, 0.5, 1)
	pdf := DomCountPDF(geom.L2, cands, b, r, 0)
	sum := 0.0
	for _, p := range pdf {
		sum += p
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("PDF mass = %g", sum)
	}
	// No candidates: count is deterministically zero.
	empty := DomCountPDF(geom.L2, nil, b, r, 0)
	if len(empty) != 1 || !almostEqual(empty[0], 1, 1e-12) {
		t.Errorf("empty candidate PDF = %v", empty)
	}
}

func TestDomCountPDFTruncationIsPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	cands := make([]*uncertain.Object, 6)
	for i := range cands {
		cands[i] = randObj(rng, i, 4, rng.Float64()*3, rng.Float64()*3, 1.5)
	}
	b := randObj(rng, 20, 4, 1, 1, 1.5)
	r := randObj(rng, 21, 4, 2, 2, 1.5)
	full := DomCountPDF(geom.L2, cands, b, r, 0)
	for _, k := range []int{1, 2, 4, 7, 10} {
		tr := DomCountPDF(geom.L2, cands, b, r, k)
		if want := minInt(k, len(cands)+1); len(tr) != want {
			t.Fatalf("kMax=%d: len = %d, want %d", k, len(tr), want)
		}
		for j := range tr {
			if !almostEqual(tr[j], full[j], 1e-9) {
				t.Fatalf("kMax=%d j=%d: %g vs %g", k, j, tr[j], full[j])
			}
		}
	}
}

func TestWeightedEqualsReplicatedUniform(t *testing.T) {
	// A weighted object must behave identically to a uniform object
	// with samples replicated in proportion to the weights.
	weighted, err := uncertain.NewWeightedObject(0,
		[]geom.Point{{0, 0}, {1, 0}}, []float64{0.75, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	replicated := obj(t, 0, geom.Point{0, 0}, geom.Point{0, 0}, geom.Point{0, 0}, geom.Point{1, 0})
	b := obj(t, 1, geom.Point{0.6, 0})
	r := obj(t, 2, geom.Point{0.1, 0}, geom.Point{2, 0})
	pw := PDom(geom.L2, weighted, b, r)
	pr := PDom(geom.L2, replicated, b, r)
	if !almostEqual(pw, pr, 1e-12) {
		t.Errorf("weighted %g != replicated %g", pw, pr)
	}
}

func TestExpectedRankOnCertainPoints(t *testing.T) {
	// Certain points at distances 1, 2, 3 from a certain reference:
	// the middle object is dominated by exactly one → rank 2.
	r := obj(t, 0, geom.Point{0, 0})
	o1 := obj(t, 1, geom.Point{1, 0})
	o2 := obj(t, 2, geom.Point{2, 0})
	o3 := obj(t, 3, geom.Point{3, 0})
	got := ExpectedRank(geom.L2, []*uncertain.Object{o1, o3}, o2, r)
	if !almostEqual(got, 2, 1e-12) {
		t.Errorf("ExpectedRank = %g, want 2", got)
	}
}

func TestResampleReproducibleAndShaped(t *testing.T) {
	rng1 := rand.New(rand.NewSource(99))
	rng2 := rand.New(rand.NewSource(99))
	db := uncertain.Database{
		obj(t, 0, geom.Point{0, 0}, geom.Point{1, 1}, geom.Point{2, 2}),
		obj(t, 1, geom.Point{5, 5}, geom.Point{6, 6}),
	}
	a := Resample(db, 7, rng1)
	bdb := Resample(db, 7, rng2)
	for i := range a {
		if a[i].NumSamples() != 7 {
			t.Fatalf("object %d has %d samples", i, a[i].NumSamples())
		}
		for j := range a[i].Samples {
			if !a[i].Samples[j].Equal(bdb[i].Samples[j]) {
				t.Fatal("Resample not reproducible under equal seeds")
			}
		}
		if !db[i].MBR.ContainsRect(a[i].MBR) {
			t.Fatal("resampled MBR escapes source MBR")
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkDomCountPDF(b *testing.B) {
	rng := rand.New(rand.NewSource(93))
	cands := make([]*uncertain.Object, 10)
	for i := range cands {
		cands[i] = randObj(rng, i, 100, rng.Float64()*4, rng.Float64()*4, 2)
	}
	target := randObj(rng, 90, 100, 2, 2, 2)
	ref := randObj(rng, 91, 100, 1, 1, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DomCountPDF(geom.L2, cands, target, ref, 0)
	}
}

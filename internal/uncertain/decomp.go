package uncertain

import (
	"fmt"
	"sort"

	"probprune/internal/geom"
)

// This file implements the object decomposition of Section V of the
// paper: each uncertain object is iteratively split by a
// median-split-based bisection method, and the resulting partitions are
// organized hierarchically in a kd-tree. Every node represents a
// subregion X' of the object with exactly known probability mass
// P(x ∈ X'); for median splits on equally weighted samples that mass is
// 0.5^level, exactly as the paper notes. The tree height is limited —
// the paper's trade-off between approximation quality and cost.

// Partition is one subregion of a decomposed uncertain object: a tight
// bounding rectangle and the exact probability that the object is
// located inside it. Partitions of one level are disjoint in
// probability (they partition the sample set), which is what Lemma 1
// requires.
type Partition struct {
	MBR  geom.Rect
	Prob float64
}

// DefaultMaxHeight bounds decomposition depth when the caller does not
// choose one. With 1000 samples per object, ten levels reach
// single-sample leaves; deeper trees add no information.
const DefaultMaxHeight = 24

// DecompTree is the lazily expanded kd-tree decomposition of one
// uncertain object.
type DecompTree struct {
	obj       *Object
	root      *decompNode
	maxHeight int
}

type decompNode struct {
	mbr         geom.Rect
	prob        float64
	idx         []int // indices into obj.Samples; owned by this node
	left, right *decompNode
	expanded    bool
}

// NewDecompTree creates the decomposition tree for obj with the given
// height limit (<= 0 selects DefaultMaxHeight). The tree initially
// consists of the root — the whole uncertainty region — and expands on
// demand.
func NewDecompTree(obj *Object, maxHeight int) *DecompTree {
	if maxHeight <= 0 {
		maxHeight = DefaultMaxHeight
	}
	idx := make([]int, len(obj.Samples))
	for i := range idx {
		idx[i] = i
	}
	return &DecompTree{
		obj:       obj,
		maxHeight: maxHeight,
		root:      &decompNode{mbr: obj.MBR.Clone(), prob: 1, idx: idx},
	}
}

// Object returns the decomposed object.
func (t *DecompTree) Object() *Object { return t.obj }

// MaxHeight returns the height limit of the tree.
func (t *DecompTree) MaxHeight() int { return t.maxHeight }

// PartitionsAtLevel returns the disjunctive decomposition at depth
// level: all nodes exactly level splits below the root, with leaves
// that cannot be split further standing in for their would-be
// descendants. Level 0 is the whole object. Levels beyond the height
// limit are clamped to it.
func (t *DecompTree) PartitionsAtLevel(level int) []Partition {
	if level < 0 {
		level = 0
	}
	if level > t.maxHeight {
		level = t.maxHeight
	}
	var out []Partition
	t.collect(t.root, level, &out)
	return out
}

func (t *DecompTree) collect(n *decompNode, depth int, out *[]Partition) {
	if depth == 0 {
		*out = append(*out, Partition{MBR: n.mbr, Prob: n.prob})
		return
	}
	t.expand(n)
	if n.left == nil { // unsplittable leaf
		*out = append(*out, Partition{MBR: n.mbr, Prob: n.prob})
		return
	}
	t.collect(n.left, depth-1, out)
	t.collect(n.right, depth-1, out)
}

// expand performs the median split of a node once, caching the result.
func (t *DecompTree) expand(n *decompNode) {
	if n.expanded {
		return
	}
	n.expanded = true
	if len(n.idx) < 2 {
		return // single alternative: nothing to split
	}
	axis := widestAxis(n.mbr)
	if n.mbr.Extent(axis) == 0 {
		return // all samples coincide: degenerate region
	}
	obj := t.obj
	sort.Slice(n.idx, func(a, b int) bool {
		return obj.Samples[n.idx[a]][axis] < obj.Samples[n.idx[b]][axis]
	})
	cut := t.massMedian(n)
	if cut <= 0 || cut >= len(n.idx) {
		return // mass concentrated on one side; treat as leaf
	}
	n.left = t.newChild(n.idx[:cut])
	n.right = t.newChild(n.idx[cut:])
}

// massMedian returns the split position that divides the node's
// probability mass as evenly as possible (the median split of Section
// V). For uniform weights this is the middle of the sorted order, so
// each child carries exactly half the mass — P(X') = 0.5^level.
func (t *DecompTree) massMedian(n *decompNode) int {
	if t.obj.Weights == nil {
		return len(n.idx) / 2
	}
	half := n.prob / 2
	acc := 0.0
	for i, id := range n.idx {
		acc += t.obj.Weights[id]
		if acc >= half {
			// Put the straddling sample on whichever side keeps the
			// halves more balanced, while keeping both sides non-empty.
			if i == 0 {
				return 1
			}
			if acc-half > half-(acc-t.obj.Weights[id]) {
				return i
			}
			return i + 1
		}
	}
	return len(n.idx) / 2
}

func (t *DecompTree) newChild(idx []int) *decompNode {
	obj := t.obj
	// Grow the child MBR in place instead of unioning a fresh point-rect
	// per sample — one corner-pair allocation per node, not per sample.
	mbr := geom.PointRect(obj.Samples[idx[0]])
	prob := obj.Weight(idx[0])
	for _, id := range idx[1:] {
		s := obj.Samples[id]
		for d := range s {
			if s[d] < mbr.Min[d] {
				mbr.Min[d] = s[d]
			}
			if s[d] > mbr.Max[d] {
				mbr.Max[d] = s[d]
			}
		}
		prob += obj.Weight(id)
	}
	// Copy the index slice so sibling re-sorts cannot alias.
	own := make([]int, len(idx))
	copy(own, idx)
	return &decompNode{mbr: mbr, prob: prob, idx: own}
}

// PackPartitions returns a copy of parts whose MBR corner coordinates
// live in one contiguous backing array — one allocation per level
// instead of per cell. The refinement loop iterates a whole level's
// MBRs per (B', R') pair, so contiguity turns the pointer-chasing walk
// over scattered tree-node rectangles into a linear scan. Values are
// copied verbatim; callers treat the result as read-only, like any
// shared partition slice.
func PackPartitions(parts []Partition) []Partition {
	if len(parts) == 0 {
		return parts
	}
	dim := parts[0].MBR.Dim()
	flat := make([]float64, 2*dim*len(parts))
	out := make([]Partition, len(parts))
	off := 0
	for i, p := range parts {
		min := flat[off : off+dim : off+dim]
		max := flat[off+dim : off+2*dim : off+2*dim]
		copy(min, p.MBR.Min)
		copy(max, p.MBR.Max)
		out[i] = Partition{MBR: geom.Rect{Min: min, Max: max}, Prob: p.Prob}
		off += 2 * dim
	}
	return out
}

func widestAxis(r geom.Rect) int {
	best, bestExt := 0, -1.0
	for i := range r.Min {
		if e := r.Extent(i); e > bestExt {
			best, bestExt = i, e
		}
	}
	return best
}

// CheckInvariants verifies the structural invariants of the levels up
// to maxLevel: masses sum to one, partitions nest inside the object
// MBR, and no partition is empty. It is exported for use by tests of
// packages that build on the decomposition.
func (t *DecompTree) CheckInvariants(maxLevel int) error {
	for level := 0; level <= maxLevel; level++ {
		parts := t.PartitionsAtLevel(level)
		if len(parts) == 0 {
			return fmt.Errorf("uncertain: level %d has no partitions", level)
		}
		mass := 0.0
		for _, p := range parts {
			if p.Prob <= 0 {
				return fmt.Errorf("uncertain: level %d has non-positive mass partition", level)
			}
			if !t.obj.MBR.ContainsRect(p.MBR) {
				return fmt.Errorf("uncertain: level %d partition %v escapes object MBR %v", level, p.MBR, t.obj.MBR)
			}
			mass += p.Prob
		}
		if diff := mass - 1; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("uncertain: level %d total mass %g != 1", level, mass)
		}
	}
	return nil
}

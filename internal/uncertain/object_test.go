package uncertain

import (
	"math"
	"math/rand"
	"testing"

	"probprune/internal/geom"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNewObjectValidation(t *testing.T) {
	if _, err := NewObject(0, nil); err == nil {
		t.Error("empty object accepted")
	}
	if _, err := NewObject(0, []geom.Point{{1, 2}, {1}}); err == nil {
		t.Error("mixed dimensionality accepted")
	}
	o, err := NewObject(1, []geom.Point{{0, 0}, {2, 2}, {1, 3}})
	if err != nil {
		t.Fatalf("valid object rejected: %v", err)
	}
	want := geom.Rect{Min: geom.Point{0, 0}, Max: geom.Point{2, 3}}
	if !o.MBR.Equal(want) {
		t.Errorf("MBR = %v, want %v", o.MBR, want)
	}
	if o.NumSamples() != 3 || o.Dim() != 2 || o.IsCertain() {
		t.Error("basic accessors wrong")
	}
}

func TestWeightedObjectValidationAndNormalization(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 1}}
	if _, err := NewWeightedObject(0, pts, []float64{1}); err == nil {
		t.Error("weight count mismatch accepted")
	}
	if _, err := NewWeightedObject(0, pts, []float64{-1, 2}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewWeightedObject(0, pts, []float64{0, 0}); err == nil {
		t.Error("zero total weight accepted")
	}
	o, err := NewWeightedObject(0, pts, []float64{2, 6})
	if err != nil {
		t.Fatalf("valid weighted object rejected: %v", err)
	}
	if !almostEqual(o.Weight(0), 0.25, 1e-12) || !almostEqual(o.Weight(1), 0.75, 1e-12) {
		t.Errorf("weights not normalized: %g, %g", o.Weight(0), o.Weight(1))
	}
}

func TestUniformWeight(t *testing.T) {
	o, _ := NewObject(0, []geom.Point{{0}, {1}, {2}, {3}})
	for i := 0; i < 4; i++ {
		if !almostEqual(o.Weight(i), 0.25, 1e-12) {
			t.Errorf("Weight(%d) = %g", i, o.Weight(i))
		}
	}
}

func TestPointObject(t *testing.T) {
	o := PointObject(7, geom.Point{1, 2})
	if !o.IsCertain() || o.ID != 7 {
		t.Error("PointObject must be certain with the given ID")
	}
	if !o.Centroid().Equal(geom.Point{1, 2}) {
		t.Errorf("Centroid = %v", o.Centroid())
	}
}

func TestCentroidWeighted(t *testing.T) {
	o, _ := NewWeightedObject(0, []geom.Point{{0, 0}, {4, 0}}, []float64{0.75, 0.25})
	if got := o.Centroid(); !almostEqual(got[0], 1, 1e-12) || got[1] != 0 {
		t.Errorf("Centroid = %v, want (1, 0)", got)
	}
}

func TestDrawFollowsWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	o, _ := NewWeightedObject(0, []geom.Point{{0}, {1}}, []float64{0.8, 0.2})
	counts := [2]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[o.Draw(rng)]++
	}
	if frac := float64(counts[0]) / n; math.Abs(frac-0.8) > 0.02 {
		t.Errorf("sample 0 drawn with frequency %g, want ~0.8", frac)
	}
}

func TestResample(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	o, _ := NewObject(3, []geom.Point{{0, 0}, {1, 1}, {2, 2}})
	r := o.Resample(50, rng)
	if r.NumSamples() != 50 || r.ID != 3 {
		t.Fatalf("Resample: n=%d id=%d", r.NumSamples(), r.ID)
	}
	if !o.MBR.ContainsRect(r.MBR) {
		t.Error("resampled MBR escapes the original")
	}
}

func TestDatabaseAccessors(t *testing.T) {
	var empty Database
	if empty.Dim() != 0 {
		t.Error("empty database Dim != 0")
	}
	db := Database{
		PointObject(0, geom.Point{0, 0}),
		mustObject(t, 1, []geom.Point{{0, 0}, {0.5, 3}}),
	}
	if db.Dim() != 2 {
		t.Errorf("Dim = %d", db.Dim())
	}
	if got := db.MaxExtent(); !almostEqual(got, 3, 1e-12) {
		t.Errorf("MaxExtent = %g", got)
	}
}

func mustObject(t *testing.T, id int, pts []geom.Point) *Object {
	t.Helper()
	o, err := NewObject(id, pts)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

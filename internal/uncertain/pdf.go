package uncertain

import (
	"fmt"
	"math"
	"math/rand"

	"probprune/internal/geom"
)

// PDF is a continuous probability density over a bounded uncertainty
// region (Definition 1 of the paper). Implementations must guarantee
// that Sample never returns a point outside Bounds — the bounded-region
// assumption everything downstream relies on.
type PDF interface {
	// Bounds returns the uncertainty region R_i with f(x) = 0 outside.
	Bounds() geom.Rect
	// Sample draws one position according to the density.
	Sample(rng *rand.Rand) geom.Point
}

// UniformBox is the uniform density over a rectangle — the synthetic
// workload's object model.
type UniformBox struct {
	Rect geom.Rect
}

// Bounds implements PDF.
func (u UniformBox) Bounds() geom.Rect { return u.Rect }

// Sample implements PDF.
func (u UniformBox) Sample(rng *rand.Rand) geom.Point {
	p := make(geom.Point, u.Rect.Dim())
	for i := range p {
		p[i] = u.Rect.Min[i] + rng.Float64()*(u.Rect.Max[i]-u.Rect.Min[i])
	}
	return p
}

// TruncatedGaussian is an axis-independent Gaussian centered at Mean
// with per-dimension standard deviation Sigma, truncated to Region by
// rejection (the paper's iceberg objects: Gaussian noise with the PDF
// tails cut at the uncertainty region, Section VII). Truncation plus
// renormalization is the standard strategy the paper cites for
// unbounded densities.
type TruncatedGaussian struct {
	Mean   geom.Point
	Sigma  []float64
	Region geom.Rect
}

// Bounds implements PDF.
func (g TruncatedGaussian) Bounds() geom.Rect { return g.Region }

// Sample implements PDF. Rejection sampling with a clamping fallback
// keeps the draw O(1) in expectation even for extreme truncation.
func (g TruncatedGaussian) Sample(rng *rand.Rand) geom.Point {
	const maxRejects = 64
	for try := 0; try < maxRejects; try++ {
		p := make(geom.Point, len(g.Mean))
		for i := range p {
			p[i] = g.Mean[i] + rng.NormFloat64()*g.Sigma[i]
		}
		if g.Region.Contains(p) {
			return p
		}
	}
	// Extremely truncated: clamp a draw into the region. This slightly
	// biases mass onto the boundary, which is acceptable for a density
	// whose region captures a negligible tail.
	p := make(geom.Point, len(g.Mean))
	for i := range p {
		v := g.Mean[i] + rng.NormFloat64()*g.Sigma[i]
		p[i] = math.Max(g.Region.Min[i], math.Min(g.Region.Max[i], v))
	}
	return p
}

// Mixture is a finite mixture of component densities — the general
// correlated, arbitrarily-shaped object PDF of Section I-A.
type Mixture struct {
	Components []PDF
	// Weights are the mixture coefficients; they must be positive and
	// are normalized at sampling time.
	Weights []float64
}

// Bounds implements PDF: the union of the component regions.
func (m Mixture) Bounds() geom.Rect {
	b := m.Components[0].Bounds()
	for _, c := range m.Components[1:] {
		b = b.Union(c.Bounds())
	}
	return b
}

// Sample implements PDF.
func (m Mixture) Sample(rng *rand.Rand) geom.Point {
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, w := range m.Weights {
		acc += w
		if u < acc {
			return m.Components[i].Sample(rng)
		}
	}
	return m.Components[len(m.Components)-1].Sample(rng)
}

// PointMass is the degenerate density of a certain object.
type PointMass struct {
	At geom.Point
}

// Bounds implements PDF.
func (p PointMass) Bounds() geom.Rect { return geom.PointRect(p.At) }

// Sample implements PDF.
func (p PointMass) Sample(rng *rand.Rand) geom.Point { return p.At.Clone() }

// Realize materializes a continuous density into a sample-model Object
// with n equally weighted samples — the discretization step the paper's
// evaluation applies to continuous data (Section VII-A).
func Realize(id int, pdf PDF, n int, rng *rand.Rand) (*Object, error) {
	if n <= 0 {
		return nil, fmt.Errorf("uncertain: Realize needs n > 0, got %d", n)
	}
	bounds := pdf.Bounds()
	samples := make([]geom.Point, n)
	for i := range samples {
		s := pdf.Sample(rng)
		if !bounds.Contains(s) {
			return nil, fmt.Errorf("uncertain: PDF sample %v escapes bounds %v", s, bounds)
		}
		samples[i] = s
	}
	return NewObject(id, samples)
}

// Package uncertain implements the paper's uncertainty model (Section
// I-A): multi-attribute objects whose attribute values are random
// variables with a (minimally) bounded density, represented by a
// rectangular uncertainty region plus a probability distribution inside
// it.
//
// Following Section VII-A of the paper ("our approach relies on the
// same uncertainty model (default: 1000 samples/object)"), the primary
// representation is the discrete sample model: an object is a finite
// set of weighted alternative positions. Continuous densities (uniform,
// truncated Gaussian, mixtures) are provided as PDF implementations and
// are realized into sample objects; this mirrors how the paper's
// evaluation treats continuous data and gives the test suite an exact
// ground truth (on the sample model, exhaustive enumeration is exact).
//
// The package also provides the kd-tree object decomposition of Section
// V used by the iterative refinement: median-bisection partitions whose
// probability mass is known exactly.
package uncertain

import (
	"fmt"
	"math"
	"math/rand"

	"probprune/internal/geom"
)

// Object is an uncertain database object under the discrete sample
// model: it is located at exactly one of Samples, with probability
// Weights[i] (possible-world semantics). Weights sum to 1; a nil
// Weights means uniform.
type Object struct {
	// ID identifies the object within its database.
	ID int
	// MBR is the minimum bounding rectangle of the samples — the
	// object's uncertainty region.
	MBR geom.Rect
	// Samples holds the alternative positions.
	Samples []geom.Point
	// Weights holds the probability of each sample; nil means uniform.
	Weights []float64
	// Existence implements the existential uncertainty of Section I-A
	// (∫ f < 1): the probability that the object exists in the database
	// at all. The position distribution is conditional on existence.
	// The zero value means certain existence (1); use SetExistence to
	// configure. Existential uncertainty is supported for candidate
	// objects; query targets and references are interpreted as existing.
	Existence float64
}

// ExistenceProb returns the probability that the object exists,
// mapping the zero value of Existence to certain existence.
func (o *Object) ExistenceProb() float64 {
	if o.Existence == 0 {
		return 1
	}
	return o.Existence
}

// SetExistence configures existential uncertainty; p must be in (0, 1].
func (o *Object) SetExistence(p float64) error {
	if p <= 0 || p > 1 || math.IsNaN(p) {
		return fmt.Errorf("uncertain: existence probability %g outside (0, 1]", p)
	}
	o.Existence = p
	return nil
}

// NewObject builds an object from alternative positions with uniform
// weights, computing the bounding region.
func NewObject(id int, samples []geom.Point) (*Object, error) {
	return NewWeightedObject(id, samples, nil)
}

// NewWeightedObject builds an object from weighted alternative
// positions. weights may be nil (uniform); otherwise it must have one
// non-negative entry per sample, summing to 1 (it is renormalized to
// absorb rounding).
func NewWeightedObject(id int, samples []geom.Point, weights []float64) (*Object, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("uncertain: object %d has no samples", id)
	}
	d := samples[0].Dim()
	mbr := geom.PointRect(samples[0])
	for _, s := range samples[1:] {
		if s.Dim() != d {
			return nil, fmt.Errorf("uncertain: object %d mixes dimensionalities %d and %d", id, d, s.Dim())
		}
		mbr = mbr.Union(geom.PointRect(s))
	}
	if weights != nil {
		if len(weights) != len(samples) {
			return nil, fmt.Errorf("uncertain: object %d has %d samples but %d weights", id, len(samples), len(weights))
		}
		sum := 0.0
		for _, w := range weights {
			if w < 0 || math.IsNaN(w) {
				return nil, fmt.Errorf("uncertain: object %d has negative weight %g", id, w)
			}
			sum += w
		}
		if sum <= 0 {
			return nil, fmt.Errorf("uncertain: object %d has zero total weight", id)
		}
		norm := make([]float64, len(weights))
		for i, w := range weights {
			norm[i] = w / sum
		}
		weights = norm
	}
	return &Object{ID: id, MBR: mbr, Samples: samples, Weights: weights}, nil
}

// PointObject builds a certain (degenerate) object located exactly at p.
func PointObject(id int, p geom.Point) *Object {
	return &Object{ID: id, MBR: geom.PointRect(p), Samples: []geom.Point{p.Clone()}}
}

// Dim returns the dimensionality of the object's space.
func (o *Object) Dim() int { return o.MBR.Dim() }

// NumSamples returns the number of alternative positions.
func (o *Object) NumSamples() int { return len(o.Samples) }

// Weight returns the probability of sample i.
func (o *Object) Weight(i int) float64 {
	if o.Weights == nil {
		return 1 / float64(len(o.Samples))
	}
	return o.Weights[i]
}

// IsCertain reports whether the object has a single possible position.
func (o *Object) IsCertain() bool { return len(o.Samples) == 1 }

// Centroid returns the probability-weighted mean position (the expected
// location of the object).
func (o *Object) Centroid() geom.Point {
	c := make(geom.Point, o.Dim())
	for i, s := range o.Samples {
		w := o.Weight(i)
		for j := range c {
			c[j] += w * s[j]
		}
	}
	return c
}

// Draw returns a random sample index according to the weights.
func (o *Object) Draw(rng *rand.Rand) int {
	if o.Weights == nil {
		return rng.Intn(len(o.Samples))
	}
	u := rng.Float64()
	acc := 0.0
	for i, w := range o.Weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(o.Samples) - 1
}

// Resample returns a new object with n samples drawn (with replacement)
// from o's distribution, with uniform weights. It is how the experiment
// harness derives smaller-sample variants of a dataset (Figure 5/7).
func (o *Object) Resample(n int, rng *rand.Rand) *Object {
	samples := make([]geom.Point, n)
	for i := range samples {
		samples[i] = o.Samples[o.Draw(rng)].Clone()
	}
	out, err := NewObject(o.ID, samples)
	if err != nil {
		panic(err) // unreachable: n >= 1 enforced by caller, samples valid
	}
	return out
}

// Database is an ordered collection of uncertain objects, indexed by
// position. Object IDs are conventionally their positions but the
// algorithms only rely on pointer identity.
type Database []*Object

// Dim returns the dimensionality of the database's space (0 if empty).
func (db Database) Dim() int {
	if len(db) == 0 {
		return 0
	}
	return db[0].Dim()
}

// MaxExtent returns the largest uncertainty-region side length over all
// objects — the paper's "maximum extension of objects" x-axis in
// Figure 6(a).
func (db Database) MaxExtent() float64 {
	max := 0.0
	for _, o := range db {
		if e := o.MBR.MaxExtent(); e > max {
			max = e
		}
	}
	return max
}

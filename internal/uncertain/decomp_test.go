package uncertain

import (
	"math"
	"math/rand"
	"testing"

	"probprune/internal/geom"
)

func randomObject(rng *rand.Rand, id, n, d int) *Object {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	o, err := NewObject(id, pts)
	if err != nil {
		panic(err)
	}
	return o
}

func TestDecompLevelZeroIsWholeObject(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	o := randomObject(rng, 0, 100, 2)
	tr := NewDecompTree(o, 0)
	parts := tr.PartitionsAtLevel(0)
	if len(parts) != 1 {
		t.Fatalf("level 0 has %d partitions", len(parts))
	}
	if !parts[0].MBR.Equal(o.MBR) || parts[0].Prob != 1 {
		t.Errorf("level 0 partition %+v", parts[0])
	}
	// Negative levels clamp to 0.
	if got := tr.PartitionsAtLevel(-3); len(got) != 1 {
		t.Errorf("negative level gave %d partitions", len(got))
	}
}

func TestDecompMedianSplitMass(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	o := randomObject(rng, 0, 256, 2)
	tr := NewDecompTree(o, 0)
	// Uniform weights and power-of-two sample counts: every level-h
	// partition has mass exactly 0.5^h, the Section V property.
	for h := 1; h <= 6; h++ {
		parts := tr.PartitionsAtLevel(h)
		if len(parts) != 1<<h {
			t.Fatalf("level %d has %d partitions, want %d", h, len(parts), 1<<h)
		}
		want := math.Pow(0.5, float64(h))
		for _, p := range parts {
			if !almostEqual(p.Prob, want, 1e-12) {
				t.Fatalf("level %d partition mass %g, want %g", h, p.Prob, want)
			}
		}
	}
}

func TestDecompInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(300)
		d := 1 + rng.Intn(3)
		o := randomObject(rng, trial, n, d)
		tr := NewDecompTree(o, 0)
		if err := tr.CheckInvariants(8); err != nil {
			t.Fatalf("n=%d d=%d: %v", n, d, err)
		}
	}
}

func TestDecompPartitionsDisjointInSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	o := randomObject(rng, 0, 97, 2) // odd count: uneven splits
	tr := NewDecompTree(o, 0)
	for h := 1; h <= 7; h++ {
		parts := tr.PartitionsAtLevel(h)
		// Each sample must fall inside at least one partition MBR and
		// total mass must be 1 (disjointness of the underlying sample
		// partition is structural; MBRs may touch).
		mass := 0.0
		for _, p := range parts {
			mass += p.Prob
		}
		if !almostEqual(mass, 1, 1e-9) {
			t.Fatalf("level %d mass = %g", h, mass)
		}
		for _, s := range o.Samples {
			found := false
			for _, p := range parts {
				if p.MBR.Contains(s) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("sample %v not covered at level %d", s, h)
			}
		}
	}
}

func TestDecompWeightedMedian(t *testing.T) {
	// One heavy sample and several light ones: the split must keep both
	// sides non-empty and mass must be conserved.
	pts := []geom.Point{{0}, {1}, {2}, {3}}
	o, err := NewWeightedObject(0, pts, []float64{0.97, 0.01, 0.01, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewDecompTree(o, 0)
	parts := tr.PartitionsAtLevel(1)
	if len(parts) != 2 {
		t.Fatalf("level 1 has %d partitions", len(parts))
	}
	if !almostEqual(parts[0].Prob+parts[1].Prob, 1, 1e-12) {
		t.Errorf("mass not conserved: %g + %g", parts[0].Prob, parts[1].Prob)
	}
	if err := tr.CheckInvariants(5); err != nil {
		t.Error(err)
	}
}

func TestDecompSingleSampleIsLeafForever(t *testing.T) {
	o := PointObject(0, geom.Point{1, 1})
	tr := NewDecompTree(o, 0)
	for h := 0; h <= 5; h++ {
		parts := tr.PartitionsAtLevel(h)
		if len(parts) != 1 || parts[0].Prob != 1 {
			t.Fatalf("level %d: %+v", h, parts)
		}
	}
}

func TestDecompCoincidentSamples(t *testing.T) {
	// All samples at the same position: zero-extent region, never split.
	pts := []geom.Point{{2, 2}, {2, 2}, {2, 2}}
	o, _ := NewObject(0, pts)
	tr := NewDecompTree(o, 0)
	for h := 0; h <= 4; h++ {
		if parts := tr.PartitionsAtLevel(h); len(parts) != 1 {
			t.Fatalf("level %d split a degenerate region", h)
		}
	}
}

func TestDecompHeightLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	o := randomObject(rng, 0, 1024, 2)
	tr := NewDecompTree(o, 3)
	if tr.MaxHeight() != 3 {
		t.Fatalf("MaxHeight = %d", tr.MaxHeight())
	}
	deep := tr.PartitionsAtLevel(10)
	atLimit := tr.PartitionsAtLevel(3)
	if len(deep) != len(atLimit) {
		t.Errorf("levels beyond the limit must clamp: %d vs %d", len(deep), len(atLimit))
	}
}

func TestDecompChildMBRsTighten(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	o := randomObject(rng, 0, 512, 2)
	tr := NewDecompTree(o, 0)
	objArea := o.MBR.Area()
	area := func(h int) float64 {
		total := 0.0
		for _, p := range tr.PartitionsAtLevel(h) {
			total += p.MBR.Area()
		}
		return total
	}
	// Tight child MBRs shrink aggregate area as the decomposition
	// refines. Level-to-level monotonicity is not guaranteed, but deep
	// levels must be far below the whole object for uniform data, and
	// single-sample leaves have zero area.
	if a8 := area(8); a8 > objArea*0.5 {
		t.Errorf("decomposition does not tighten: level-8 area %g vs object %g", a8, objArea)
	}
	if a10 := area(10); a10 != 0 {
		t.Errorf("single-sample leaves must have zero area, got %g", a10)
	}
}

func TestDecompObjectAccessor(t *testing.T) {
	o := PointObject(4, geom.Point{0})
	tr := NewDecompTree(o, 0)
	if tr.Object() != o {
		t.Error("Object accessor mismatch")
	}
}

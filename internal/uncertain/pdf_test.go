package uncertain

import (
	"math"
	"math/rand"
	"testing"

	"probprune/internal/geom"
)

func TestUniformBoxSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	r, _ := geom.NewRect(geom.Point{1, 2}, geom.Point{3, 6})
	u := UniformBox{Rect: r}
	if !u.Bounds().Equal(r) {
		t.Error("Bounds mismatch")
	}
	var mean [2]float64
	const n = 20000
	for i := 0; i < n; i++ {
		p := u.Sample(rng)
		if !r.Contains(p) {
			t.Fatalf("sample %v escapes %v", p, r)
		}
		mean[0] += p[0]
		mean[1] += p[1]
	}
	if math.Abs(mean[0]/n-2) > 0.05 || math.Abs(mean[1]/n-4) > 0.05 {
		t.Errorf("sample mean (%g, %g), want ~(2, 4)", mean[0]/n, mean[1]/n)
	}
}

func TestTruncatedGaussianSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	region, _ := geom.NewRect(geom.Point{-1, -1}, geom.Point{1, 1})
	g := TruncatedGaussian{Mean: geom.Point{0, 0}, Sigma: []float64{0.3, 0.3}, Region: region}
	var mean [2]float64
	const n = 10000
	for i := 0; i < n; i++ {
		p := g.Sample(rng)
		if !region.Contains(p) {
			t.Fatalf("sample %v escapes %v", p, region)
		}
		mean[0] += p[0]
		mean[1] += p[1]
	}
	if math.Abs(mean[0]/n) > 0.02 || math.Abs(mean[1]/n) > 0.02 {
		t.Errorf("sample mean (%g, %g), want ~(0, 0)", mean[0]/n, mean[1]/n)
	}
}

func TestTruncatedGaussianExtremeTruncationClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	// Region far in the tail: rejection will fail, clamping must engage
	// and still produce in-region samples.
	region, _ := geom.NewRect(geom.Point{100}, geom.Point{101})
	g := TruncatedGaussian{Mean: geom.Point{0}, Sigma: []float64{0.1}, Region: region}
	for i := 0; i < 100; i++ {
		if p := g.Sample(rng); !region.Contains(p) {
			t.Fatalf("clamped sample %v escapes %v", p, region)
		}
	}
}

func TestMixtureSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	left, _ := geom.NewRect(geom.Point{0}, geom.Point{1})
	right, _ := geom.NewRect(geom.Point{10}, geom.Point{11})
	m := Mixture{
		Components: []PDF{UniformBox{Rect: left}, UniformBox{Rect: right}},
		Weights:    []float64{3, 1},
	}
	if !m.Bounds().Equal(geom.Rect{Min: geom.Point{0}, Max: geom.Point{11}}) {
		t.Errorf("Bounds = %v", m.Bounds())
	}
	leftCount := 0
	const n = 20000
	for i := 0; i < n; i++ {
		p := m.Sample(rng)
		if p[0] <= 1 {
			leftCount++
		} else if p[0] < 10 {
			t.Fatalf("sample %v in the gap between components", p)
		}
	}
	if frac := float64(leftCount) / n; math.Abs(frac-0.75) > 0.02 {
		t.Errorf("left component frequency %g, want ~0.75", frac)
	}
}

func TestPointMass(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	p := PointMass{At: geom.Point{5, 6}}
	if !p.Sample(rng).Equal(geom.Point{5, 6}) {
		t.Error("PointMass must always return its location")
	}
	if !p.Bounds().Equal(geom.PointRect(geom.Point{5, 6})) {
		t.Error("PointMass bounds mismatch")
	}
}

func TestRealize(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	r, _ := geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})
	o, err := Realize(9, UniformBox{Rect: r}, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if o.ID != 9 || o.NumSamples() != 200 {
		t.Errorf("id=%d n=%d", o.ID, o.NumSamples())
	}
	if !r.ContainsRect(o.MBR) {
		t.Error("realized MBR escapes PDF bounds")
	}
	if _, err := Realize(0, UniformBox{Rect: r}, 0, rng); err == nil {
		t.Error("n=0 accepted")
	}
}

package cq

import (
	"errors"

	"probprune/internal/query"
	"probprune/internal/uncertain"
)

// EventKind identifies what happened to one object of a subscription's
// result set.
type EventKind uint8

const (
	// ObjectEntered: the object satisfies the subscription predicate at
	// Event.Version and did not at the previous version (or the
	// subscription just started and this is part of its initial result
	// set).
	ObjectEntered EventKind = iota + 1
	// ObjectLeft: the object no longer satisfies the predicate (or left
	// the database).
	ObjectLeft
	// BoundsChanged: the object remains in the result set but its
	// probability bounds changed.
	BoundsChanged
)

// String returns a short human-readable kind name.
func (k EventKind) String() string {
	switch k {
	case ObjectEntered:
		return "entered"
	case ObjectLeft:
		return "left"
	case BoundsChanged:
		return "bounds"
	default:
		return "unknown"
	}
}

// Event is one result-set transition of a standing subscription.
// Events are delivered in version order; within one version, in
// ascending object ID order. The cumulative event stream reconstructs
// the subscription's exact result set — objects and probability bounds
// bit-identical to re-running the query on the store state of
// Event.Version (the mutation-trace oracle test enforces this).
type Event struct {
	// Kind is the transition.
	Kind EventKind
	// Version is the store mutation epoch the event is valid at.
	Version uint64
	// Object is the affected object (for updates, the post-update
	// object; for ObjectLeft after a delete, the removed object).
	Object *uncertain.Object
	// Match is the candidate's state after the change: probability
	// bounds and verdict as a from-scratch query at Version would
	// report them. It is the zero Match when the object left by
	// deletion — there is no post-change state.
	Match query.Match
}

// Policy selects what happens to a subscription whose consumer does not
// drain events fast enough to keep its bounded buffer from filling.
type Policy uint8

const (
	// DisconnectSlow (the default): the subscription is cancelled and
	// its event channel closed; Subscription.Err reports
	// ErrSlowConsumer. A consumer that needs an exact cumulative view
	// must resubscribe — a gap in the stream would silently corrupt the
	// view, so the stream is ended instead (the NATS-style slow-consumer
	// contract).
	DisconnectSlow Policy = iota
	// DropOldest: the oldest buffered event is discarded to make room,
	// the subscription stays alive, and Subscription.Lost counts the
	// discarded events. For consumers that only care about the latest
	// state transitions and can tolerate gaps.
	DropOldest
)

// String returns a short human-readable policy name.
func (p Policy) String() string {
	switch p {
	case DropOldest:
		return "drop-oldest"
	default:
		return "disconnect-slow"
	}
}

// Options configures a Monitor.
type Options struct {
	// Buffer is the per-subscription event channel capacity; <= 0
	// selects DefaultBuffer.
	Buffer int
	// Policy is the slow-consumer policy; the zero value is
	// DisconnectSlow.
	Policy Policy
	// CursorPath, when set, gives the monitor a durable cursor: the
	// file persists the last fully-delivered store version and the
	// result set of every named subscription (SubscribeKNNDurable /
	// SubscribeRKNNDurable). After a restart, re-subscribing under the
	// same name delivers the coalesced delta between the cursor and the
	// recovered store head instead of the full result set — resumption
	// from the last delivered version, not from genesis.
	CursorPath string
	// CursorEvery auto-saves the cursor after that many processed
	// changes; 0 saves only on SaveCursor and Close. Saves append a
	// delta — only the subscriptions that woke since the last save —
	// to a cursor log, and the log compacts into a fresh base (atomic
	// write + rename, fsynced) once the deltas outgrow it. Delta
	// appends are not fsynced: an OS crash can cost the last few saves
	// (a slightly larger resume delta), never a corrupt cursor.
	// Auto-save failures are deferred and surfaced by the next
	// SaveCursor or Close, and counted in Stats.
	CursorEvery int
}

// DefaultBuffer is the per-subscription event buffer capacity used when
// Options does not choose one.
const DefaultBuffer = 64

func (o Options) buffer() int {
	if o.Buffer <= 0 {
		return DefaultBuffer
	}
	return o.Buffer
}

// Terminal subscription errors, reported by Subscription.Err after the
// event channel closed.
var (
	// ErrSlowConsumer: the DisconnectSlow policy cancelled the
	// subscription because its event buffer overflowed.
	ErrSlowConsumer = errors.New("cq: slow consumer, subscription dropped")
	// ErrUnsubscribed: the subscription was cancelled by the client.
	ErrUnsubscribed = errors.New("cq: unsubscribed")
	// ErrMonitorClosed: the monitor shut down.
	ErrMonitorClosed = errors.New("cq: monitor closed")
	// ErrCursorMismatch: a durable subscription's name exists in the
	// cursor with a different predicate (kind, k or tau) — resuming it
	// would silently deliver a wrong delta.
	ErrCursorMismatch = errors.New("cq: durable subscription does not match its cursor state")
)

// Stats aggregates monitor-wide maintenance counters; all values are
// cumulative since the monitor started.
type Stats struct {
	// Changes is the number of store change records processed.
	Changes uint64
	// Woken is the number of (change, subscription) pairs that required
	// maintenance — subscriptions whose influence region the mutated
	// object intersected. Changes outside every region wake nobody.
	Woken uint64
	// Runs is the number of per-candidate IDCA evaluations executed by
	// incremental maintenance. Re-running every subscription from
	// scratch on each change would execute one run per non-preselected
	// candidate instead — the incrementality the benchmark measures.
	Runs uint64
	// SetupRuns is the number of per-candidate evaluations spent on
	// initial subscription evaluation (not maintenance).
	SetupRuns uint64
	// Saved is the number of (change, candidate) pairs a woken
	// subscription decided WITHOUT an IDCA re-run — the persisted
	// verdict stood. Runs vs. Saved is the incremental-maintenance
	// economy: a from-scratch re-evaluation would have executed a run
	// for every one of these.
	Saved uint64
	// Events is the number of events delivered to subscribers.
	Events uint64
	// Lost is the number of events discarded by the DropOldest policy.
	Lost uint64
	// Dropped is the number of subscriptions cancelled by the
	// DisconnectSlow policy.
	Dropped uint64
	// CursorSaves counts successful cursor saves (delta appends and
	// full rewrites alike); CursorSaveFailures the failed ones. A
	// failed auto-save is deferred and surfaced by the next SaveCursor
	// or Close, never silently dropped.
	CursorSaves, CursorSaveFailures uint64
	// CursorDeltaBytes is the cumulative size of appended cursor
	// deltas; CursorCompactions the number of base rewrites triggered
	// by delta growth. Together they describe the write volume the
	// append-only cursor log pays compared to a full rewrite per save.
	CursorDeltaBytes, CursorCompactions uint64
}

// SubStats are the per-subscription counters of Stats.
type SubStats struct {
	Woken, Runs, SetupRuns, Saved, Events, Lost uint64
}

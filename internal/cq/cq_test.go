package cq

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/query"
	"probprune/internal/uncertain"
	"probprune/internal/workload"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func testDB(t *testing.T, n int, seed int64) uncertain.Database {
	t.Helper()
	db, err := workload.Synthetic(workload.SyntheticConfig{N: n, Samples: 4, MaxExtent: 0.02, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func newTestStore(t *testing.T, db uncertain.Database, opts core.Options) *query.Store {
	t.Helper()
	s, err := query.NewStore(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// objectNear builds a small uncertain object around (cx, cy).
func objectNear(rng *rand.Rand, id int, cx, cy, ext float64) *uncertain.Object {
	pts := make([]geom.Point, 4)
	for i := range pts {
		pts[i] = geom.Point{cx + rng.Float64()*ext, cy + rng.Float64()*ext}
	}
	o, err := uncertain.NewObject(id, pts)
	if err != nil {
		panic(err)
	}
	return o
}

// drainEvents empties a subscription's buffer without blocking.
func drainEvents(s *Subscription) []Event {
	var out []Event
	for {
		select {
		case ev, ok := <-s.Events():
			if !ok {
				return out
			}
			out = append(out, ev)
		default:
			return out
		}
	}
}

// TestInitialResultMatchesQuery checks that the initial event burst is
// exactly the standing query's current result set.
func TestInitialResultMatchesQuery(t *testing.T) {
	db := testDB(t, 60, 3)
	opts := core.Options{MaxIterations: 3}
	store := newTestStore(t, db, opts)
	m := NewMonitor(store, Options{Buffer: 1024})
	defer m.Close()

	rng := rand.New(rand.NewSource(9))
	q := objectNear(rng, -1, 0.4, 0.4, 0.05)
	sub, err := m.SubscribeKNN(q, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int]query.Match)
	for _, mt := range store.KNN(q, 4, 0.3) {
		if mt.IsResult {
			want[mt.Object.ID] = mt
		}
	}
	evs := drainEvents(sub)
	if len(evs) != len(want) {
		t.Fatalf("got %d initial events, want %d", len(evs), len(want))
	}
	lastID := -1 << 30
	for _, ev := range evs {
		if ev.Kind != ObjectEntered {
			t.Fatalf("initial event kind %v, want ObjectEntered", ev.Kind)
		}
		if ev.Version != store.Version() {
			t.Fatalf("initial event version %d, want %d", ev.Version, store.Version())
		}
		if ev.Object.ID <= lastID {
			t.Fatalf("events not in ascending ID order: %d after %d", ev.Object.ID, lastID)
		}
		lastID = ev.Object.ID
		w, ok := want[ev.Object.ID]
		if !ok {
			t.Fatalf("event for non-result object %d", ev.Object.ID)
		}
		if ev.Match.Prob != w.Prob || !ev.Match.IsResult {
			t.Fatalf("object %d: event match %+v, want %+v", ev.Object.ID, ev.Match, w)
		}
	}
}

// TestMutationEvents drives the three change kinds through a standing
// KNN subscription and checks the emitted transitions.
func TestMutationEvents(t *testing.T) {
	ctx := testCtx(t)
	db := testDB(t, 80, 5)
	opts := core.Options{MaxIterations: 3}
	store := newTestStore(t, db, opts)
	m := NewMonitor(store, Options{Buffer: 4096})
	defer m.Close()

	rng := rand.New(rand.NewSource(11))
	q := objectNear(rng, -1, 0.5, 0.5, 0.02)
	sub, err := m.SubscribeKNN(q, 3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	drainEvents(sub)

	// Insert an object right on top of the query: it must enter.
	hot := objectNear(rng, 9000, 0.5, 0.5, 0.001)
	if err := store.Insert(hot); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	evs := drainEvents(sub)
	if !hasEvent(evs, ObjectEntered, 9000) {
		t.Fatalf("no ObjectEntered for inserted object; events: %v", kinds(evs))
	}

	// Move it far away: it must leave.
	cold := objectNear(rng, 9000, 0.05, 0.95, 0.001)
	if err := store.Update(cold); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	evs = drainEvents(sub)
	if !hasEvent(evs, ObjectLeft, 9000) {
		t.Fatalf("no ObjectLeft after moving object away; events: %v", kinds(evs))
	}

	// Re-insert near, then delete: enter + leave.
	if err := store.Update(objectNear(rng, 9000, 0.5, 0.5, 0.001)); err != nil {
		t.Fatal(err)
	}
	if !store.Delete(9000) {
		t.Fatal("delete failed")
	}
	if err := m.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	evs = drainEvents(sub)
	if !hasEvent(evs, ObjectEntered, 9000) || !hasEvent(evs, ObjectLeft, 9000) {
		t.Fatalf("expected enter+leave for update+delete; events: %v", kinds(evs))
	}
	for _, ev := range evs {
		if ev.Kind == ObjectLeft && ev.Object.ID == 9000 && ev.Match.IsResult {
			t.Fatal("delete-left event carries a result match")
		}
	}
}

func hasEvent(evs []Event, kind EventKind, id int) bool {
	for _, ev := range evs {
		if ev.Kind == kind && ev.Object.ID == id {
			return true
		}
	}
	return false
}

func kinds(evs []Event) []string {
	out := make([]string, len(evs))
	for i, ev := range evs {
		out[i] = ev.Kind.String()
	}
	return out
}

// TestRegionWakeFiltering places two standing queries in opposite
// corners and checks that a mutation near one never wakes the other —
// the acceptance criterion that only subscriptions whose influence
// region the object intersects re-evaluate.
func TestRegionWakeFiltering(t *testing.T) {
	ctx := testCtx(t)
	rng := rand.New(rand.NewSource(17))
	var db uncertain.Database
	for i := 0; i < 60; i++ {
		db = append(db, objectNear(rng, i, 0.15+0.08*rng.Float64(), 0.15+0.08*rng.Float64(), 0.01))
	}
	for i := 60; i < 120; i++ {
		db = append(db, objectNear(rng, i, 0.75+0.08*rng.Float64(), 0.75+0.08*rng.Float64(), 0.01))
	}
	store := newTestStore(t, db, core.Options{MaxIterations: 3})
	m := NewMonitor(store, Options{Buffer: 4096})
	defer m.Close()

	q1 := objectNear(rng, -1, 0.18, 0.18, 0.01)
	q2 := objectNear(rng, -2, 0.78, 0.78, 0.01)
	subA, err := m.SubscribeKNN(q1, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	subB, err := m.SubscribeKNN(q2, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	drainEvents(subA)
	drainEvents(subB)

	// Mutate inside B's cluster only.
	if err := store.Insert(objectNear(rng, 500, 0.78, 0.78, 0.01)); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if w := subA.Stats().Woken; w != 0 {
		t.Fatalf("far subscription woke %d times, want 0", w)
	}
	if w := subB.Stats().Woken; w != 1 {
		t.Fatalf("near subscription woke %d times, want 1", w)
	}
	if w := m.Stats().Woken; w != 1 {
		t.Fatalf("monitor woke %d subscriptions, want 1", w)
	}
	// And the near subscription's state is still exact.
	checkAgainstStore(t, store, subB, q2)
}

// checkAgainstStore drains a subscription and only verifies monitor
// bookkeeping stayed consistent with a from-scratch query (full
// bit-equivalence is the oracle test's job).
func checkAgainstStore(t *testing.T, store *query.Store, sub *Subscription, q *uncertain.Object) {
	t.Helper()
	want := 0
	for _, mt := range store.KNN(q, sub.K(), sub.Tau()) {
		if mt.IsResult {
			want++
		}
	}
	inSet := make(map[int]bool)
	for _, ev := range drainEvents(sub) {
		switch ev.Kind {
		case ObjectEntered:
			inSet[ev.Object.ID] = true
		case ObjectLeft:
			delete(inSet, ev.Object.ID)
		}
	}
	// The subscription's own candidate map must agree on result count.
	got := 0
	for _, cs := range sub.cands {
		if cs.match.IsResult {
			got++
		}
	}
	if got != want {
		t.Fatalf("subscription tracks %d results, from-scratch query has %d", got, want)
	}
}

// TestIncrementalRunSavings is the incrementality acceptance criterion:
// on a stable 1k-object database, maintaining standing queries across
// single-object mutations must execute at least 5x fewer IDCA candidate
// runs than re-running each query per mutation would.
func TestIncrementalRunSavings(t *testing.T) {
	ctx := testCtx(t)
	db := testDB(t, 1000, 21)
	opts := core.Options{MaxIterations: 2}
	store := newTestStore(t, db, opts)
	m := NewMonitor(store, Options{Buffer: 1 << 15, Policy: DropOldest})
	defer m.Close()

	rng := rand.New(rand.NewSource(23))
	const nSubs, k = 8, 5
	const tau = 0.3
	queries := make([]*uncertain.Object, nSubs)
	for i := range queries {
		queries[i] = objectNear(rng, -(i + 1), rng.Float64(), rng.Float64(), 0.02)
		if _, err := m.SubscribeKNN(queries[i], k, tau); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().Runs != 0 {
		t.Fatalf("maintenance runs before any mutation: %d", m.Stats().Runs)
	}

	const steps = 40
	var requeryRuns uint64
	for step := 0; step < steps; step++ {
		victim := db[rng.Intn(len(db))].ID
		if err := store.Update(objectNear(rng, victim, rng.Float64(), rng.Float64(), 0.02)); err != nil {
			t.Fatal(err)
		}
		if err := m.Sync(ctx); err != nil {
			t.Fatal(err)
		}
		// What re-running every standing query at this version would
		// cost: one IDCA run per non-preselected candidate.
		e := store.Snapshot().Engine()
		for _, q := range queries {
			thresh := e.KNNThreshold(q, k)
			for _, b := range e.DB {
				if b != q && !e.KNNPrunable(q, b, thresh) {
					requeryRuns++
				}
			}
		}
	}
	maintRuns := m.Stats().Runs
	t.Logf("maintenance: %d IDCA runs, re-query baseline: %d (%.1fx)",
		maintRuns, requeryRuns, float64(requeryRuns)/float64(maintRuns+1))
	if requeryRuns < 5*maintRuns {
		t.Fatalf("maintenance used %d runs, re-querying would use %d — less than the required 5x saving", maintRuns, requeryRuns)
	}
	if woken := m.Stats().Woken; woken >= steps*nSubs {
		t.Fatalf("every mutation woke every subscription (%d wakes) — region filtering is not working", woken)
	}
}

// TestSlowConsumerDisconnect: with the default policy, overflowing the
// buffer ends the subscription with ErrSlowConsumer — reported as a
// subscribe error when the INITIAL result set alone cannot fit (the
// consumer has no chance to drain before subscribe returns).
func TestSlowConsumerDisconnect(t *testing.T) {
	ctx := testCtx(t)
	db := testDB(t, 40, 31)
	store := newTestStore(t, db, core.Options{MaxIterations: 2})
	m := NewMonitor(store, Options{Buffer: 2})
	defer m.Close()

	// tau = 0 makes every candidate a result: the initial burst alone
	// overflows the 2-slot buffer, and subscribe must say so.
	rng := rand.New(rand.NewSource(1))
	// A (near-)point query: objects approaching it along one axis are
	// strictly closer in every possible world.
	q := objectNear(rng, -1, 0.5, 0.5, 0.0001)
	if _, err := m.SubscribeKNN(q, 3, 0); !errors.Is(err, ErrSlowConsumer) {
		t.Fatalf("oversized initial result subscribed with err = %v, want ErrSlowConsumer", err)
	}
	if m.NumSubscriptions() != 0 {
		t.Fatalf("%d live subscriptions, want 0", m.NumSubscriptions())
	}

	// A subscription whose initial result fits but whose consumer stops
	// draining is disconnected at event time.
	sub, err := m.SubscribeKNN(q, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Each insert is strictly closer to the query than everything before
	// it: the new object enters as the certain 1-NN and the previous one
	// leaves — two events per insert, quickly overflowing the buffer.
	d := 0.1
	for i := 0; i < 8; i++ {
		if err := store.Insert(objectNear(rng, 800+i, 0.5+d, 0.5, 0.0002)); err != nil {
			t.Fatal(err)
		}
		d *= 0.5
	}
	if err := m.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	for range sub.Events() {
	}
	if !errors.Is(sub.Err(), ErrSlowConsumer) {
		t.Fatalf("sub.Err() = %v, want ErrSlowConsumer", sub.Err())
	}
	if m.Stats().Dropped != 2 {
		t.Fatalf("monitor dropped %d subs, want 2", m.Stats().Dropped)
	}
	if m.NumSubscriptions() != 0 {
		t.Fatalf("%d live subscriptions, want 0", m.NumSubscriptions())
	}
}

// TestSlowConsumerDropOldest: the shedding policy keeps the
// subscription alive and counts the lost events.
func TestSlowConsumerDropOldest(t *testing.T) {
	db := testDB(t, 40, 37)
	store := newTestStore(t, db, core.Options{MaxIterations: 2})
	m := NewMonitor(store, Options{Buffer: 2, Policy: DropOldest})
	defer m.Close()

	q := objectNear(rand.New(rand.NewSource(2)), -1, 0.5, 0.5, 0.02)
	sub, err := m.SubscribeKNN(q, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Err() != nil {
		t.Fatalf("subscription ended: %v", sub.Err())
	}
	evs := drainEvents(sub)
	if len(evs) != 2 {
		t.Fatalf("buffer delivered %d events, want 2", len(evs))
	}
	st := sub.Stats()
	if st.Lost == 0 || st.Events-st.Lost != 2 {
		t.Fatalf("stats %+v: want Lost > 0 and Events-Lost == 2", st)
	}
	// The two survivors must be the NEWEST events (oldest shed first).
	all := 0
	for _, mt := range store.KNN(q, 3, 0) {
		if mt.IsResult {
			all++
		}
	}
	if int(st.Events) != all {
		t.Fatalf("emitted %d events, want %d (every result entered)", st.Events, all)
	}
	sub.Cancel()
	if !errors.Is(sub.Err(), ErrUnsubscribed) {
		t.Fatalf("after Cancel, Err = %v", sub.Err())
	}
}

// TestLifecycle exercises Cancel, Close and post-Close behavior.
func TestLifecycle(t *testing.T) {
	ctx := testCtx(t)
	db := testDB(t, 30, 41)
	store := newTestStore(t, db, core.Options{MaxIterations: 2})
	m := NewMonitor(store, Options{})

	q := objectNear(rand.New(rand.NewSource(3)), -1, 0.5, 0.5, 0.02)
	sub, err := m.SubscribeKNN(q, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSubscriptions() != 1 {
		t.Fatalf("%d subscriptions, want 1", m.NumSubscriptions())
	}
	sub.Cancel()
	sub.Cancel() // idempotent
	if _, ok := <-sub.Events(); ok {
		// Initial events may still be buffered; drain to close.
		drainEvents(sub)
	}
	if !errors.Is(sub.Err(), ErrUnsubscribed) {
		t.Fatalf("Err = %v, want ErrUnsubscribed", sub.Err())
	}

	sub2, err := m.SubscribeRKNN(q, 2, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Insert(objectNear(rand.New(rand.NewSource(4)), 700, 0.5, 0.5, 0.01)); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	drainEvents(sub2)
	if !errors.Is(sub2.Err(), ErrMonitorClosed) {
		t.Fatalf("after Close, Err = %v, want ErrMonitorClosed", sub2.Err())
	}
	if _, err := m.SubscribeKNN(q, 2, 0.5); !errors.Is(err, ErrMonitorClosed) {
		t.Fatalf("Subscribe after Close = %v, want ErrMonitorClosed", err)
	}
	// Mutations after Close are not observed and do not block.
	if err := store.Insert(objectNear(rand.New(rand.NewSource(5)), 701, 0.1, 0.1, 0.01)); err != nil {
		t.Fatal(err)
	}

	// Validation errors.
	m2 := NewMonitor(store, Options{})
	defer m2.Close()
	if _, err := m2.SubscribeKNN(nil, 2, 0.5); err == nil {
		t.Fatal("nil query accepted")
	}
	if _, err := m2.SubscribeKNN(q, 0, 0.5); err == nil {
		t.Fatal("k = 0 accepted")
	}
	if _, err := m2.SubscribeKNN(q, 2, 1.5); err == nil {
		t.Fatal("tau = 1.5 accepted")
	}
}

// TestConcurrentMutationsAndConsumers runs writers, consumers and
// subscribe/cancel churn together; with -race this is the concurrency
// safety net.
func TestConcurrentMutationsAndConsumers(t *testing.T) {
	ctx := testCtx(t)
	db := testDB(t, 120, 47)
	store := newTestStore(t, db, core.Options{MaxIterations: 2})
	m := NewMonitor(store, Options{Buffer: 4096, Policy: DropOldest})

	stopConsume := make(chan struct{})
	consumerDone := make(chan struct{})
	rng := rand.New(rand.NewSource(51))
	subs := make([]*Subscription, 4)
	for i := range subs {
		var err error
		subs[i], err = m.SubscribeKNN(objectNear(rng, -(i+1), rng.Float64(), rng.Float64(), 0.02), 3, 0.3)
		if err != nil {
			t.Fatal(err)
		}
	}
	go func() {
		defer close(consumerDone)
		for {
			for _, s := range subs {
				drainEvents(s)
			}
			select {
			case <-stopConsume:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	nextID := 10_000
	for i := 0; i < 150; i++ {
		switch rng.Intn(3) {
		case 0:
			if err := store.Insert(objectNear(rng, nextID, rng.Float64(), rng.Float64(), 0.02)); err != nil {
				t.Fatal(err)
			}
			nextID++
		case 1:
			snap := store.Snapshot().DB()
			o := snap[rng.Intn(len(snap))]
			if err := store.Update(objectNear(rng, o.ID, rng.Float64(), rng.Float64(), 0.02)); err != nil {
				t.Fatal(err)
			}
		default:
			snap := store.Snapshot().DB()
			store.Delete(snap[rng.Intn(len(snap))].ID)
		}
	}
	if err := m.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	subs[0].Cancel()
	close(stopConsume)
	<-consumerDone
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Changes; got != 150 {
		t.Fatalf("processed %d changes, want 150", got)
	}
}

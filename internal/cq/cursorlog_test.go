package cq

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/query"
	"probprune/internal/uncertain"
	"probprune/internal/workload"
)

// These tests cover the cursor-log behavior of the monitor: auto-saves
// append deltas instead of rewriting the whole cursor, forgotten names
// persist as delete deltas, and a failed auto-save is deferred to the
// next SaveCursor or Close instead of being dropped.

// TestCursorDeltaSaves: with CursorEvery=1 every processed change
// appends a delta, the file is in log format, and a crash without a
// final save still resumes silently — the deltas carried the cursor to
// the head.
func TestCursorDeltaSaves(t *testing.T) {
	dir := t.TempDir()
	cursorPath := filepath.Join(dir, "cursor")
	opts := core.Options{MaxIterations: 3}
	popts := query.PersistOptions{Dir: filepath.Join(dir, "db")}
	db, err := workload.Synthetic(workload.SyntheticConfig{N: 12, Samples: 4, MaxExtent: 0.1, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	s, err := query.BootstrapStore(db, popts, opts)
	if err != nil {
		t.Fatal(err)
	}

	mon := NewMonitor(s, Options{Buffer: 1 << 10, CursorPath: cursorPath, CursorEvery: 1})
	q := uncertain.PointObject(-1, geom.Point{0.5, 0.5})
	sub, err := mon.SubscribeKNNDurable("alpha", q, 3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	set := cursorSet{}
	drain(sub, set)
	if err := mon.SaveCursor(); err != nil { // the base frame
		t.Fatal(err)
	}
	base := mon.Stats()
	if base.CursorSaves == 0 {
		t.Fatal("explicit save not counted")
	}

	rng := rand.New(rand.NewSource(9))
	ctx := context.Background()
	const churn = 6
	for _, op := range cursorTrace(t, rng, churn, 1000) {
		if err := op(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := mon.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	drain(sub, set)
	st := mon.Stats()
	if st.CursorSaves < base.CursorSaves+churn {
		t.Fatalf("CursorSaves = %d after %d auto-saving changes (was %d)", st.CursorSaves, churn, base.CursorSaves)
	}
	if st.CursorSaveFailures != 0 {
		t.Fatalf("CursorSaveFailures = %d on a healthy path", st.CursorSaveFailures)
	}
	if st.CursorDeltaBytes == 0 {
		t.Fatal("CursorDeltaBytes = 0: auto-saves did not append deltas")
	}
	data, err := os.ReadFile(cursorPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("ppcurl\x01\n")) {
		t.Fatal("cursor file is not in log format")
	}

	// Crash without a final save: the per-change deltas ARE the cursor.
	mon.stopWatch()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := query.OpenStore(popts, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	mon2 := NewMonitor(r, Options{Buffer: 1 << 10, CursorPath: cursorPath})
	defer mon2.Close()
	if !mon2.HasCursorSub("alpha") {
		t.Fatal("resume state lost across the crash")
	}
	sub2, err := mon2.SubscribeKNNDurable("alpha", q, 3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if evs := drain(sub2, cursorSet{}); len(evs) != 0 {
		t.Fatalf("cursor auto-saved at the head replayed %d events on resume", len(evs))
	}
}

// TestCursorForgetPersistsAsDelta: Forget survives a monitor restart
// through a delete delta — no full rewrite needed.
func TestCursorForgetPersistsAsDelta(t *testing.T) {
	cursorPath := filepath.Join(t.TempDir(), "cursor")
	opts := core.Options{MaxIterations: 3}
	db, err := workload.Synthetic(workload.SyntheticConfig{N: 10, Samples: 4, MaxExtent: 0.1, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	s, err := query.NewStore(db, opts)
	if err != nil {
		t.Fatal(err)
	}

	mon := NewMonitor(s, Options{Buffer: 256, CursorPath: cursorPath})
	q := uncertain.PointObject(-1, geom.Point{0.5, 0.5})
	sub, err := mon.SubscribeKNNDurable("alpha", q, 3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	drain(sub, cursorSet{})
	sub.Cancel()
	if err := mon.SaveCursor(); err != nil { // base with alpha remembered
		t.Fatal(err)
	}
	if !mon.HasCursorSub("alpha") {
		t.Fatal("cancelled durable subscription not remembered")
	}
	if err := mon.Forget("alpha"); err != nil {
		t.Fatal(err)
	}
	if err := mon.SaveCursor(); err != nil { // the delete delta
		t.Fatal(err)
	}
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}

	mon2 := NewMonitor(s, Options{Buffer: 256, CursorPath: cursorPath})
	defer mon2.Close()
	if mon2.HasCursorSub("alpha") {
		t.Fatal("forgotten name survived the restart")
	}
	// The name is free again: a fresh subscription starts from scratch.
	sub2, err := mon2.SubscribeKNNDurable("alpha", q, 3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	drain(sub2, cursorSet{})
}

// TestCursorAutoSaveErrorDeferred: when every save fails (the cursor
// path is a directory), an auto-save failure is NOT dropped — the next
// SaveCursor surfaces it as a deferred error, the failures are counted,
// and Close reports the final one.
func TestCursorAutoSaveErrorDeferred(t *testing.T) {
	dir := t.TempDir()
	cursorPath := filepath.Join(dir, "cursor")
	if err := os.Mkdir(cursorPath, 0o755); err != nil { // every open/write fails
		t.Fatal(err)
	}
	opts := core.Options{MaxIterations: 3}
	db, err := workload.Synthetic(workload.SyntheticConfig{N: 10, Samples: 4, MaxExtent: 0.1, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	s, err := query.NewStore(db, opts)
	if err != nil {
		t.Fatal(err)
	}

	mon := NewMonitor(s, Options{Buffer: 256, CursorPath: cursorPath, CursorEvery: 1})
	// Durable subscribes are rejected up front on an unusable cursor.
	q := uncertain.PointObject(-1, geom.Point{0.5, 0.5})
	if _, err := mon.SubscribeKNNDurable("alpha", q, 3, 0.25); err == nil {
		t.Fatal("durable subscribe accepted with an unreadable cursor")
	}
	sub, err := mon.SubscribeKNN(q, 3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	drain(sub, cursorSet{})

	// One processed change trips a failing auto-save.
	o := uncertain.PointObject(900, geom.Point{0.5, 0.52})
	if err := s.Insert(o); err != nil {
		t.Fatal(err)
	}
	if err := mon.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	// SaveCursor queues behind the change on the worker, so by the time
	// it returns the auto-save has run — and its failure must come back
	// here, not vanish.
	err = mon.SaveCursor()
	if err == nil {
		t.Fatal("deferred auto-save failure not surfaced by SaveCursor")
	}
	if !strings.Contains(err.Error(), "deferred cursor auto-save") {
		t.Fatalf("error %q does not identify the deferred auto-save", err)
	}
	if st := mon.Stats(); st.CursorSaveFailures < 2 {
		t.Fatalf("CursorSaveFailures = %d after a failed auto-save and a failed explicit save", st.CursorSaveFailures)
	}
	// Close runs a final save, which still fails — the caller must hear
	// about it instead of getting a clean shutdown.
	if err := mon.Close(); err == nil {
		t.Fatal("Close reported success while the cursor was never saved")
	}
}

package cq

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/gf"
	"probprune/internal/query"
	"probprune/internal/uncertain"
	"probprune/internal/workload"
)

// cursorSet is a consumer's materialized view of a subscription: the
// cumulative application of its event stream.
type cursorSet map[int]gf.Interval

func (r cursorSet) apply(ev Event) {
	switch ev.Kind {
	case ObjectEntered, BoundsChanged:
		r[ev.Object.ID] = ev.Match.Prob
	case ObjectLeft:
		delete(r, ev.Object.ID)
	}
}

func (r cursorSet) clone() cursorSet {
	c := make(cursorSet, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}

func (r cursorSet) equal(o cursorSet) bool {
	if len(r) != len(o) {
		return false
	}
	for k, v := range r {
		if o[k] != v {
			return false
		}
	}
	return true
}

// drain applies every buffered event (the worker is idle after Sync,
// so the buffer is complete for the processed prefix) and returns them.
func drain(s *Subscription, r cursorSet) []Event {
	var evs []Event
	for {
		select {
		case ev := <-s.Events():
			r.apply(ev)
			evs = append(evs, ev)
		default:
			return evs
		}
	}
}

// mutStore is the mutation surface shared by Store and ShardedStore.
type mutStore interface {
	Insert(*uncertain.Object) error
	Update(*uncertain.Object) error
	Delete(int) bool
}

// cursorTrace builds a deterministic mutation batch around the unit
// square center so the standing queries keep churning.
func cursorTrace(t *testing.T, rng *rand.Rand, n, idBase int) []func(mutStore) error {
	t.Helper()
	obj := func(id int) *uncertain.Object {
		cx, cy := 0.3+0.4*rng.Float64(), 0.3+0.4*rng.Float64()
		pts := make([]geom.Point, 3)
		for i := range pts {
			pts[i] = geom.Point{cx + rng.Float64()*0.05, cy + rng.Float64()*0.05}
		}
		o, err := uncertain.NewObject(id, pts)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	var ops []func(mutStore) error
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			o := obj(idBase + i)
			ops = append(ops, func(s mutStore) error { return s.Insert(o) })
		case 1:
			o := obj(i % 8)
			ops = append(ops, func(s mutStore) error { return s.Update(o) })
		default:
			id := idBase + i - 2
			ops = append(ops, func(s mutStore) error {
				if !s.Delete(id) {
					return fmt.Errorf("delete %d found nothing", id)
				}
				return nil
			})
		}
	}
	return ops
}

// TestDurableCursorResume is the acceptance test of the durable
// cursor: a monitor saves its cursor at version V, the store keeps
// committing (journaled) to version H, then the process "dies". A new
// monitor over the recovered store, resuming the same named
// subscription, must emit exactly the events after the cursor — the
// minimal coalesced delta turning the result set at V into the one at
// H — and stream bit-identically to a fresh monitor from then on.
func TestDurableCursorResume(t *testing.T) {
	for _, shards := range []int{0, 2} {
		shards := shards
		name := "store"
		if shards > 0 {
			name = fmt.Sprintf("sharded-%d", shards)
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			cursorPath := filepath.Join(dir, "cursor")
			opts := core.Options{MaxIterations: 3}
			popts := query.PersistOptions{Dir: filepath.Join(dir, "db")}
			db, err := workload.Synthetic(workload.SyntheticConfig{N: 14, Samples: 4, MaxExtent: 0.1, Seed: 21})
			if err != nil {
				t.Fatal(err)
			}

			var store Source
			var closeStore func() error
			if shards > 0 {
				s, err := query.BootstrapShardedStore(db, popts, query.ShardedOptions{Shards: shards}, opts)
				if err != nil {
					t.Fatal(err)
				}
				store, closeStore = s, s.Close
			} else {
				s, err := query.BootstrapStore(db, popts, opts)
				if err != nil {
					t.Fatal(err)
				}
				store, closeStore = s, s.Close
			}

			mon := NewMonitor(store, Options{Buffer: 1 << 10, CursorPath: cursorPath})
			q := uncertain.PointObject(-1, geom.Point{0.5, 0.5})
			sub, err := mon.SubscribeKNNDurable("alpha", q, 3, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			set := cursorSet{}
			drain(sub, set)

			rng := rand.New(rand.NewSource(5))
			ctx := context.Background()
			mut := store.(mutStore)
			for _, op := range cursorTrace(t, rng, 6, 1000) {
				if err := op(mut); err != nil {
					t.Fatal(err)
				}
			}
			if err := mon.Sync(ctx); err != nil {
				t.Fatal(err)
			}
			drain(sub, set)
			if err := mon.SaveCursor(); err != nil {
				t.Fatal(err)
			}
			atCursor := set.clone() // the consumer's view at the cursor

			// The store keeps committing past the cursor; the monitor
			// delivers (so we know the true head set) but never saves
			// again — these events are exactly what a resume must replay.
			for _, op := range cursorTrace(t, rng, 7, 2000) {
				if err := op(mut); err != nil {
					t.Fatal(err)
				}
			}
			if err := mon.Sync(ctx); err != nil {
				t.Fatal(err)
			}
			drain(sub, set)
			atHead := set.clone()
			headVersion := store.Version()

			// "Crash": abandon the monitor without Close (Close would
			// advance the cursor) and drop the store.
			mon.stopWatch()
			if err := closeStore(); err != nil {
				t.Fatal(err)
			}

			var reopened Source
			if shards > 0 {
				s, err := query.OpenShardedStore(popts, query.ShardedOptions{Shards: shards}, opts)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				reopened = s
			} else {
				s, err := query.OpenStore(popts, opts)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				reopened = s
			}
			if reopened.Version() != headVersion {
				t.Fatalf("recovered store at version %d, want %d", reopened.Version(), headVersion)
			}

			mon2 := NewMonitor(reopened, Options{Buffer: 1 << 10, CursorPath: cursorPath})
			defer mon2.Close()
			sub2, err := mon2.SubscribeKNNDurable("alpha", q, 3, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			resumed := atCursor.clone()
			evs := drain(sub2, resumed)
			if !resumed.equal(atHead) {
				t.Fatalf("resume delta does not reach the head set:\n cursor %v\n resume -> %v\n head   %v", atCursor, resumed, atHead)
			}
			// Exactly the events after the cursor: one per changed
			// object, none for unchanged ones, all at the head version.
			seen := map[int]bool{}
			for _, ev := range evs {
				if seen[ev.Object.ID] {
					t.Fatalf("object %d got two resume events", ev.Object.ID)
				}
				seen[ev.Object.ID] = true
				if ev.Version != headVersion {
					t.Fatalf("resume event at version %d, want head %d", ev.Version, headVersion)
				}
				if atCursor[ev.Object.ID] == atHead[ev.Object.ID] {
					t.Fatalf("object %d got a resume event but did not change", ev.Object.ID)
				}
			}
			changed := 0
			for id, iv := range atHead {
				if atCursor[id] != iv {
					changed++
				}
			}
			for id := range atCursor {
				if _, ok := atHead[id]; !ok {
					changed++
				}
			}
			if len(evs) != changed {
				t.Fatalf("resume emitted %d events for %d changes", len(evs), changed)
			}

			// From here on the resumed stream must stay exact: keep
			// mutating and check the cumulative view against a
			// from-scratch query on the final state.
			for _, op := range cursorTrace(t, rng, 5, 3000) {
				if err := op(reopened.(mutStore)); err != nil {
					t.Fatal(err)
				}
			}
			if err := mon2.Sync(ctx); err != nil {
				t.Fatal(err)
			}
			drain(sub2, resumed)

			// Oracle: re-run the query on the final state.
			final := cursorSet{}
			var eng *query.Engine
			switch s := reopened.(type) {
			case *query.Store:
				eng = s.Snapshot().Engine()
			case *query.ShardedStore:
				eng = s.Snapshot().Engine()
			}
			for _, m := range eng.KNN(q, 3, 0.25) {
				if m.IsResult {
					final[m.Object.ID] = m.Prob
				}
			}
			if !resumed.equal(final) {
				t.Fatalf("post-resume stream diverged from a from-scratch query:\n stream %v\n oracle %v", resumed, final)
			}
		})
	}
}

// TestCursorResumeNoGap: a cursor saved at the head resumes silently —
// zero events, not a replayed result set.
func TestCursorResumeNoGap(t *testing.T) {
	dir := t.TempDir()
	cursorPath := filepath.Join(dir, "cursor")
	opts := core.Options{MaxIterations: 3}
	popts := query.PersistOptions{Dir: filepath.Join(dir, "db")}
	db, err := workload.Synthetic(workload.SyntheticConfig{N: 12, Samples: 4, MaxExtent: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := query.BootstrapStore(db, popts, opts)
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(s, Options{CursorPath: cursorPath})
	q := uncertain.PointObject(-1, geom.Point{0.5, 0.5})
	sub, err := mon.SubscribeKNNDurable("alpha", q, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	set := cursorSet{}
	initial := drain(sub, set)
	if len(initial) == 0 {
		t.Fatal("empty initial result set makes this test vacuous")
	}
	if err := mon.Close(); err != nil { // Close saves the cursor at head
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := query.OpenStore(popts, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	mon2 := NewMonitor(reopened, Options{CursorPath: cursorPath})
	defer mon2.Close()
	sub2, err := mon2.SubscribeKNNDurable("alpha", q, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if evs := drain(sub2, cursorSet{}); len(evs) != 0 {
		t.Fatalf("no-gap resume emitted %d events", len(evs))
	}
}

// TestCursorMismatch: resuming a name under a different predicate is an
// error, and durable names must be unique among live subscriptions.
func TestCursorMismatch(t *testing.T) {
	dir := t.TempDir()
	cursorPath := filepath.Join(dir, "cursor")
	db, err := workload.Synthetic(workload.SyntheticConfig{N: 8, Samples: 4, MaxExtent: 0.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := query.NewStore(db, core.Options{MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(s, Options{CursorPath: cursorPath})
	q := uncertain.PointObject(-1, geom.Point{0.5, 0.5})
	if _, err := mon.SubscribeKNNDurable("alpha", q, 2, 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := mon.SubscribeKNNDurable("alpha", q, 2, 0.3); err == nil {
		t.Fatal("duplicate durable name accepted")
	}
	if _, err := mon.SubscribeKNNDurable("", q, 2, 0.3); err == nil {
		t.Fatal("empty durable name accepted")
	}
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}

	mon2 := NewMonitor(s, Options{CursorPath: cursorPath})
	defer mon2.Close()
	if _, err := mon2.SubscribeKNNDurable("alpha", q, 3, 0.3); err != ErrCursorMismatch {
		t.Fatalf("k mismatch resumed with err = %v, want ErrCursorMismatch", err)
	}
	if _, err := mon2.SubscribeRKNNDurable("alpha", q, 2, 0.3); err != ErrCursorMismatch {
		t.Fatalf("kind mismatch resumed with err = %v, want ErrCursorMismatch", err)
	}
	q2 := uncertain.PointObject(-1, geom.Point{0.1, 0.9})
	if _, err := mon2.SubscribeKNNDurable("alpha", q2, 2, 0.3); err != ErrCursorMismatch {
		t.Fatalf("query-object mismatch resumed with err = %v, want ErrCursorMismatch", err)
	}
	if _, err := mon2.SubscribeKNNDurable("alpha", q, 2, 0.3); err != nil {
		t.Fatalf("exact resume failed: %v", err)
	}

	mon3 := NewMonitor(s, Options{})
	defer mon3.Close()
	if _, err := mon3.SubscribeKNNDurable("alpha", q, 2, 0.3); err == nil {
		t.Fatal("durable subscribe without CursorPath accepted")
	}
}

package cq

import (
	"fmt"
	"math/rand"
	"testing"

	"probprune/internal/core"
	"probprune/internal/gf"
	"probprune/internal/query"
	"probprune/internal/uncertain"
	"probprune/internal/workload"
)

// This file is the continuous-query oracle: a randomized mutation trace
// (Insert/Update/Delete) is replayed against a monitored store, and
// after EVERY committed version the cumulative event stream of every
// subscription is checked for bit-equivalence with a from-scratch
// Engine recomputation over a mirrored copy of the database state —
// result membership AND probability bounds, exact float equality. This
// is the acceptance criterion that incremental maintenance never
// diverges from recomputation: the verdicts a sleeping candidate keeps
// are provably the ones a fresh query would re-derive.

// traceView reconstructs a subscription's result set purely from its
// event stream, enforcing the stream's internal consistency.
type traceView struct {
	name  string
	probs map[int]gf.Interval
}

func newTraceView(name string) *traceView {
	return &traceView{name: name, probs: make(map[int]gf.Interval)}
}

func (v *traceView) applyEvents(t *testing.T, evs []Event, version uint64) {
	t.Helper()
	for _, ev := range evs {
		if ev.Version != version {
			t.Fatalf("%s: event version %d, want %d", v.name, ev.Version, version)
		}
		id := ev.Object.ID
		_, in := v.probs[id]
		switch ev.Kind {
		case ObjectEntered:
			if in {
				t.Fatalf("%s v%d: ObjectEntered for %d already in result set", v.name, version, id)
			}
			if !ev.Match.IsResult {
				t.Fatalf("%s v%d: ObjectEntered for %d without IsResult", v.name, version, id)
			}
			v.probs[id] = ev.Match.Prob
		case ObjectLeft:
			if !in {
				t.Fatalf("%s v%d: ObjectLeft for %d not in result set", v.name, version, id)
			}
			if ev.Match.IsResult {
				t.Fatalf("%s v%d: ObjectLeft for %d still flagged IsResult", v.name, version, id)
			}
			delete(v.probs, id)
		case BoundsChanged:
			if !in {
				t.Fatalf("%s v%d: BoundsChanged for %d not in result set", v.name, version, id)
			}
			if v.probs[id] == ev.Match.Prob {
				t.Fatalf("%s v%d: BoundsChanged for %d with identical bounds", v.name, version, id)
			}
			v.probs[id] = ev.Match.Prob
		default:
			t.Fatalf("%s v%d: unknown event kind %v", v.name, version, ev.Kind)
		}
	}
}

func (v *traceView) compare(t *testing.T, want map[int]gf.Interval, seed int64, version uint64) {
	t.Helper()
	if len(v.probs) != len(want) {
		t.Fatalf("seed %d %s v%d: stream view has %d results, recomputation has %d",
			seed, v.name, version, len(v.probs), len(want))
	}
	for id, p := range v.probs {
		wp, ok := want[id]
		if !ok {
			t.Fatalf("seed %d %s v%d: stream view holds %d, recomputation does not", seed, v.name, version, id)
		}
		if p != wp {
			t.Fatalf("seed %d %s v%d: object %d bounds [%g,%g] from stream, [%g,%g] recomputed",
				seed, v.name, version, id, p.LB, p.UB, wp.LB, wp.UB)
		}
	}
}

// resultSet extracts the decided result set (id -> bounds) of a
// from-scratch query over the mirrored database.
func resultSet(matches []query.Match) map[int]gf.Interval {
	out := make(map[int]gf.Interval)
	for _, m := range matches {
		if m.IsResult {
			out[m.Object.ID] = m.Prob
		}
	}
	return out
}

// subCase couples one subscription with its stream view and its
// from-scratch recomputation.
type subCase struct {
	sub  *Subscription
	view *traceView
	want func(e *query.Engine) map[int]gf.Interval
}

func TestMutationTraceOracle(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runMutationTrace(t, seed)
		})
	}
}

func runMutationTrace(t *testing.T, seed int64) {
	ctx := testCtx(t)
	rng := rand.New(rand.NewSource(seed * 977))
	db, err := workload.Synthetic(workload.SyntheticConfig{
		N:         24 + int(seed%9),
		Samples:   4,
		MaxExtent: 0.15, // large, overlapping regions: hard, undecidable candidates
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Half the seeds include existentially uncertain objects.
	if seed%2 == 0 {
		for i, o := range db {
			if i%4 == 0 {
				if err := o.SetExistence(0.3 + 0.6*rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	opts := core.Options{MaxIterations: 2 + int(seed%2)}
	store := newTestStore(t, db, opts)
	m := NewMonitor(store, Options{Buffer: 1 << 14})
	defer m.Close()

	// mirror tracks the database state alongside the store; the
	// from-scratch engine is rebuilt on it at every version.
	mirror := append(uncertain.Database{}, db...)

	newQ := func(id int) *uncertain.Object {
		return objectNear(rng, id, 0.2+0.6*rng.Float64(), 0.2+0.6*rng.Float64(), 0.1)
	}
	q1, q2, q3 := newQ(-1), newQ(-2), newQ(-3)
	var cases []*subCase
	addCase := func(name string, sub *Subscription, err error, want func(e *query.Engine) map[int]gf.Interval) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, &subCase{sub: sub, view: newTraceView(name), want: want})
	}
	k := 2 + int(seed%3)
	sub1, err1 := m.SubscribeKNN(q1, k, 0.35)
	addCase("knn", sub1, err1, func(e *query.Engine) map[int]gf.Interval {
		return resultSet(e.KNN(q1, k, 0.35))
	})
	sub2, err2 := m.SubscribeKNN(q2, 2, 0) // tau = 0: no preselection, everything is a result
	addCase("knn-tau0", sub2, err2, func(e *query.Engine) map[int]gf.Interval {
		return resultSet(e.KNN(q2, 2, 0))
	})
	sub3, err3 := m.SubscribeRKNN(q3, k, 0.25)
	addCase("rknn", sub3, err3, func(e *query.Engine) map[int]gf.Interval {
		return resultSet(e.RKNN(q3, k, 0.25))
	})

	check := func(version uint64) {
		t.Helper()
		e := query.NewEngine(mirror, opts)
		for _, c := range cases {
			c.view.applyEvents(t, drainEvents(c.sub), version)
			c.view.compare(t, c.want(e), seed, version)
		}
	}
	check(store.Version()) // initial result sets

	nextID := 10_000
	const steps = 45
	for step := 0; step < steps; step++ {
		// Mutate store and mirror identically; a third of the inserts and
		// updates carry existential uncertainty.
		roll := rng.Intn(3)
		if len(mirror) < 6 {
			roll = 0
		}
		switch roll {
		case 0:
			o := objectNear(rng, nextID, rng.Float64(), rng.Float64(), 0.1)
			if rng.Intn(3) == 0 {
				if err := o.SetExistence(0.3 + 0.6*rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
			nextID++
			if err := store.Insert(o); err != nil {
				t.Fatal(err)
			}
			mirror = append(mirror, o)
		case 1:
			i := rng.Intn(len(mirror))
			o := objectNear(rng, mirror[i].ID, rng.Float64(), rng.Float64(), 0.1)
			if rng.Intn(3) == 0 {
				if err := o.SetExistence(0.3 + 0.6*rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
			if err := store.Update(o); err != nil {
				t.Fatal(err)
			}
			mirror[i] = o
		default:
			i := rng.Intn(len(mirror))
			if !store.Delete(mirror[i].ID) {
				t.Fatalf("delete of %d failed", mirror[i].ID)
			}
			mirror = append(mirror[:i], mirror[i+1:]...)
		}
		if err := m.WaitVersion(ctx, store.Version()); err != nil {
			t.Fatal(err)
		}
		check(store.Version())
	}
}

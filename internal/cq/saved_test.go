package cq

import (
	"math/rand"
	"testing"

	"probprune/internal/core"
)

// TestSavedCounter: a woken subscription that decides most candidates
// from persisted verdicts must report those decisions in Stats().Saved,
// and the monitor-wide counter must equal the sum of the
// per-subscription ones. Saved is the observable half of the
// incremental-maintenance economy (Runs is the other).
func TestSavedCounter(t *testing.T) {
	ctx := testCtx(t)
	db := testDB(t, 500, 31)
	store := newTestStore(t, db, core.Options{MaxIterations: 2})
	m := NewMonitor(store, Options{Buffer: 1 << 14, Policy: DropOldest})
	defer m.Close()

	rng := rand.New(rand.NewSource(33))
	const nSubs, k = 4, 5
	subs := make([]*Subscription, nSubs)
	for i := range subs {
		q := objectNear(rng, -(i + 1), rng.Float64(), rng.Float64(), 0.02)
		sub, err := m.SubscribeKNN(q, k, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
	}
	if got := m.Stats().Saved; got != 0 {
		t.Fatalf("Saved before any mutation: %d", got)
	}

	// Mutate until at least one subscription has been woken; a single
	// moved object leaves the verdicts of everyone else's candidates
	// standing, so wakes imply saves.
	for step := 0; m.Stats().Woken == 0 && step < 50; step++ {
		victim := db[rng.Intn(len(db))].ID
		if err := store.Update(objectNear(rng, victim, rng.Float64(), rng.Float64(), 0.02)); err != nil {
			t.Fatal(err)
		}
		if err := m.Sync(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Woken == 0 {
		t.Fatal("no subscription woke after 50 mutations — cannot exercise Saved")
	}
	if st.Saved == 0 {
		t.Fatalf("woken %d times but Saved == 0 — every candidate re-ran", st.Woken)
	}

	var sum uint64
	for _, sub := range subs {
		sum += sub.Stats().Saved
	}
	if sum != st.Saved {
		t.Fatalf("per-subscription Saved sums to %d, monitor reports %d", sum, st.Saved)
	}
}

// TestAccessorsAndCursorOps covers the small introspection surface:
// subscription accessors, monitor gauges, the kind/policy/event-kind
// names, and the durable-cursor Forget/HasCursorSub round trip.
func TestAccessorsAndCursorOps(t *testing.T) {
	db := testDB(t, 50, 41)
	store := newTestStore(t, db, core.Options{MaxIterations: 2})
	cursorPath := t.TempDir() + "/cursor"
	m := NewMonitor(store, Options{Buffer: 1 << 10, CursorPath: cursorPath})
	defer m.Close()

	rng := rand.New(rand.NewSource(43))
	q := objectNear(rng, -1, 0.4, 0.4, 0.02)
	sub, err := m.SubscribeKNNDurable("acc", q, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Kind() != KNN || sub.Name() != "acc" || sub.K() != 3 || sub.Query() != q {
		t.Fatalf("accessors: kind=%v name=%q k=%d", sub.Kind(), sub.Name(), sub.K())
	}
	if got := m.NumSubscriptions(); got != 1 {
		t.Fatalf("NumSubscriptions = %d, want 1", got)
	}
	if got := m.QueueLen(); got < 0 {
		t.Fatalf("QueueLen = %d", got)
	}

	// The cursor records a durable subscription's resume state when the
	// subscription ends (or on SaveCursor), not while it is live.
	if m.HasCursorSub("acc") {
		t.Fatal("cursor has resume state before any save")
	}
	if err := m.Forget("acc"); err == nil {
		t.Fatal("Forget succeeded while the name is live")
	}
	m.Unsubscribe(sub)
	for range sub.Events() {
	}
	if err := sub.Err(); err != ErrUnsubscribed {
		t.Fatalf("Err = %v, want ErrUnsubscribed", err)
	}
	if !m.HasCursorSub("acc") {
		t.Fatal("cursor did not remember the ended durable subscription")
	}
	if err := m.Forget("acc"); err != nil {
		t.Fatalf("Forget after unsubscribe: %v", err)
	}
	if m.HasCursorSub("acc") {
		t.Fatal("cursor still knows a forgotten name")
	}

	for _, c := range []struct{ got, want string }{
		{KNN.String(), "knn"},
		{RKNN.String(), "rknn"},
		{ObjectEntered.String(), "entered"},
		{ObjectLeft.String(), "left"},
		{BoundsChanged.String(), "bounds"},
		{EventKind(99).String(), "unknown"},
		{DropOldest.String(), "drop-oldest"},
		{DisconnectSlow.String(), "disconnect-slow"},
	} {
		if c.got != c.want {
			t.Fatalf("String() = %q, want %q", c.got, c.want)
		}
	}
}

package cq

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"probprune/internal/core"
	"probprune/internal/query"
)

// Race-detector stress test for the sharded serving path: concurrent
// writers mutate a ShardedStore through the router (each commit detaches
// only its home shard), scatter-gather readers query snapshots, a
// migrator moves objects between shards and rebalances, and a live
// Monitor consumes the merged multi-shard Watch stream — all at once.
// After the storm settles, every subscription's cumulative event stream
// is replayed against a from-scratch recomputation at EVERY committed
// version (using the per-version sharded snapshots the change stream
// carries), bit-exact. Run under -race this exercises the router lock
// discipline; run without, it is the sharded mutation-trace oracle.
func TestShardedMonitorRaceStress(t *testing.T) {
	ctx := testCtx(t)
	db := testDB(t, 40, 11)
	opts := core.Options{MaxIterations: 2}
	ss, err := query.NewShardedStore(db, query.ShardedOptions{Shards: 4}, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Record every committed version's snapshot for the replay below.
	var recMu sync.Mutex
	snaps := map[uint64]query.SnapshotView{}
	snap0, stopRec := ss.Watch(func(ch query.Change) {
		recMu.Lock()
		snaps[ch.Version] = ch.Snap
		recMu.Unlock()
	})
	defer stopRec()
	base := snap0.Version()
	snaps[base] = snap0

	m := NewMonitor(ss, Options{Buffer: 1 << 15})
	defer m.Close()

	qrng := rand.New(rand.NewSource(17))
	q1 := objectNear(qrng, -1, 0.4, 0.4, 0.1)
	q2 := objectNear(qrng, -2, 0.6, 0.6, 0.1)
	sub1, err := m.SubscribeKNN(q1, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := m.SubscribeRKNN(q2, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}

	const writers, opsPerWriter = 3, 15
	var wg sync.WaitGroup
	// Writers own disjoint ID spaces: writer w mutates the seed objects
	// with index ≡ w (mod writers) and inserts into its own ID range, so
	// concurrent traces never collide on an ID.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*271 + 5))
			var owned []int
			for i := w; i < len(db); i += writers {
				owned = append(owned, db[i].ID)
			}
			nextID := 10_000 + w*1000
			for i := 0; i < opsPerWriter; i++ {
				switch rng.Intn(3) {
				case 0:
					o := objectNear(rng, nextID, rng.Float64(), rng.Float64(), 0.05)
					nextID++
					if err := ss.Insert(o); err != nil {
						t.Error(err)
						return
					}
					owned = append(owned, o.ID)
				case 1:
					id := owned[rng.Intn(len(owned))]
					o := objectNear(rng, id, rng.Float64(), rng.Float64(), 0.05)
					if err := ss.Update(o); err != nil {
						t.Error(err)
						return
					}
				default:
					if len(owned) < 4 {
						continue
					}
					j := rng.Intn(len(owned))
					if !ss.Delete(owned[j]) {
						t.Errorf("writer %d: delete of owned ID %d failed", w, owned[j])
						return
					}
					owned = append(owned[:j], owned[j+1:]...)
				}
			}
		}(w)
	}
	// Readers: snapshot-bound scatter-gather queries must be
	// deterministic while the database churns underneath.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)*97 + 3))
			for i := 0; i < 10; i++ {
				snap := ss.Snapshot()
				e := snap.Engine()
				q := objectNear(rng, -100-r, rng.Float64(), rng.Float64(), 0.1)
				if a, b := e.KNN(q, 3, 0.3), e.KNN(q, 3, 0.3); !reflect.DeepEqual(a, b) {
					t.Errorf("reader %d: repeated KNN on one sharded snapshot diverged", r)
					return
				}
				if _, err := snap.BatchKNN(ctx, []query.KNNRequest{{Q: q, K: 2, Tau: 0.4}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	// Migrator: result-invariant shard moves racing the writers; a move
	// may lose the race with a delete of the same ID, which is fine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 20; i++ {
			cur := ss.Snapshot().DB()
			if len(cur) == 0 {
				continue
			}
			_ = ss.Move(cur[rng.Intn(len(cur))].ID, rng.Intn(ss.NumShards()))
			if i%7 == 6 {
				ss.Rebalance()
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := m.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if got := m.Version(); got != ss.Version() {
		t.Fatalf("monitor processed through %d, store at %d", got, ss.Version())
	}
	if vv := m.VersionVector(); len(vv) != ss.NumShards() {
		t.Fatalf("monitor version vector has %d entries, want %d", len(vv), ss.NumShards())
	}

	// Replay: walk every committed version in order, fold in the event
	// groups, and compare the cumulative view against a from-scratch
	// recomputation on that version's sharded snapshot.
	final := ss.Version()
	verify := func(name string, sub *Subscription, recompute func(e *query.Engine) []query.Match) {
		view := newTraceView(name)
		evs := drainEvents(sub)
		i := 0
		for v := base; v <= final; v++ {
			recMu.Lock()
			snap := snaps[v]
			recMu.Unlock()
			if snap == nil {
				t.Fatalf("%s: no snapshot recorded for version %d", name, v)
			}
			j := i
			for j < len(evs) && evs[j].Version == v {
				j++
			}
			view.applyEvents(t, evs[i:j], v)
			i = j
			view.compare(t, resultSet(recompute(snap.Engine())), 11, v)
		}
		if i != len(evs) {
			t.Fatalf("%s: %d events beyond the final version %d", name, len(evs)-i, final)
		}
	}
	verify("sharded-knn", sub1, func(e *query.Engine) []query.Match { return e.KNN(q1, 3, 0.3) })
	verify("sharded-rknn", sub2, func(e *query.Engine) []query.Match { return e.RKNN(q2, 2, 0.3) })
}

package cq

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/gf"
	"probprune/internal/query"
	"probprune/internal/uncertain"
	"probprune/internal/wal"
)

// Kind selects the standing query predicate of a subscription.
type Kind uint8

const (
	// KNN: the probabilistic threshold kNN predicate — the result set
	// holds every object B with P(B ∈ kNN(q)) >= tau.
	KNN Kind = iota + 1
	// RKNN: the probabilistic threshold reverse kNN predicate — every
	// object B for which q is among B's k nearest neighbors with
	// probability >= tau.
	RKNN
)

// String returns a short human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KNN:
		return "knn"
	case RKNN:
		return "rknn"
	default:
		return "unknown"
	}
}

// candState is the persisted verdict of one non-preselected candidate.
// Candidates discarded by preselection (impossible results, P = 0) are
// NOT tracked: a missing map entry is the zero verdict. That keeps the
// per-subscription state proportional to the query's working set, and
// it is what lets a sleeping subscription stay consistent — objects
// mutating outside the influence region are exactly the ones whose
// verdict is and stays zero.
type candState struct {
	obj   *uncertain.Object
	match query.Match
}

// Subscription is one standing KNN/RKNN query registered on a Monitor.
// Events stream on Events() until the subscription ends (Cancel, the
// slow-consumer policy, or Monitor.Close); after the channel closes,
// Err reports why.
type Subscription struct {
	id   int64
	m    *Monitor
	name string // durable identity; empty for ephemeral subscriptions
	kind Kind
	q    *uncertain.Object
	k    int
	tau  float64

	// resume, while the subscription is being added, holds its cursor
	// state: init then emits the delta since the cursor instead of the
	// full result set. Cleared after init; worker-owned.
	resume *wal.CursorSub

	events chan Event

	// Maintenance state below is owned by the monitor worker; nothing
	// else reads or writes it.
	cache   *core.DecompCache // persistent decomposition overlay (q + one-offs)
	thresh  float64           // kNN preselection bound m_{k+1} (+Inf: none)
	cands   map[int]*candState
	region  geom.Rect // registered influence region (valid when bounded)
	bounded bool

	mu  sync.Mutex
	end bool
	err error

	woken, runs, setupRuns, saved, emitted, lost atomic.Uint64
}

// Events returns the subscription's ordered event stream. The channel
// is closed when the subscription ends; consult Err then.
func (s *Subscription) Events() <-chan Event { return s.events }

// Kind returns the subscription's predicate kind.
func (s *Subscription) Kind() Kind { return s.kind }

// Name returns the durable identity of the subscription, empty for
// ephemeral ones.
func (s *Subscription) Name() string { return s.name }

// Query returns the subscription's query reference object.
func (s *Subscription) Query() *uncertain.Object { return s.q }

// K returns the kNN parameter.
func (s *Subscription) K() int { return s.k }

// Tau returns the probability threshold.
func (s *Subscription) Tau() float64 { return s.tau }

// Err returns the terminal error after the event channel closed
// (ErrUnsubscribed, ErrSlowConsumer or ErrMonitorClosed), nil while the
// subscription is live.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Stats returns the subscription's cumulative maintenance counters.
func (s *Subscription) Stats() SubStats {
	return SubStats{
		Woken:     s.woken.Load(),
		Runs:      s.runs.Load(),
		SetupRuns: s.setupRuns.Load(),
		Saved:     s.saved.Load(),
		Events:    s.emitted.Load(),
		Lost:      s.lost.Load(),
	}
}

// Cancel unsubscribes: maintenance stops, the event channel is closed
// (after any already-buffered events) and Err reports ErrUnsubscribed.
// Safe to call from any goroutine, including the event consumer, and
// idempotent.
func (s *Subscription) Cancel() {
	done := make(chan struct{})
	if !s.m.enqueue(item{unsub: s, done: done}) {
		return // monitor closed or closing: the worker ends every subscription
	}
	<-done
}

// finish marks the subscription ended and closes the stream. Called by
// the monitor worker only.
func (s *Subscription) finish(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end {
		return
	}
	s.end = true
	s.err = err
	close(s.events)
}

// init evaluates the subscription from scratch on snapshot sn: one full
// engine query seeds the per-candidate verdicts, and the initial result
// set is emitted as ObjectEntered events at sn's version — a consumer
// reconstructs the complete standing result from the stream alone.
func (s *Subscription) init(sn query.SnapshotView) []Event {
	e := sn.Engine()
	s.cache = e.NewQueryCache()
	var matches []query.Match
	switch s.kind {
	case KNN:
		s.thresh = math.Inf(1)
		if s.tau > 0 {
			s.thresh = e.KNNThreshold(s.q, s.k)
		}
		matches = e.KNN(s.q, s.k, s.tau)
	case RKNN:
		matches = e.RKNN(s.q, s.k, s.tau)
	}
	var results []query.Match
	for _, nm := range matches {
		b := nm.Object
		if s.preselected(e, b, s.thresh) {
			continue
		}
		s.setupRuns.Add(1)
		s.m.setupRuns.Add(1)
		s.cands[b.ID] = &candState{obj: b, match: nm}
		if nm.IsResult {
			results = append(results, nm)
		}
	}
	var evs []Event
	if s.resume != nil {
		evs = s.resumeEvents(sn, results)
	} else {
		for _, nm := range results {
			evs = append(evs, Event{Kind: ObjectEntered, Version: sn.Version(), Object: nm.Object, Match: nm})
		}
	}
	sortEvents(evs)
	return evs
}

// resumeEvents computes a resumed durable subscription's initial
// events: the coalesced delta between the cursor's persisted result
// set and the current one. An object in both with identical bounds
// produces nothing; membership changes produce ObjectEntered or
// ObjectLeft; bound drift on a staying member produces BoundsChanged.
// All events carry the current snapshot version — the resumed stream
// is exact from the cursor onward.
func (s *Subscription) resumeEvents(sn query.SnapshotView, results []query.Match) []Event {
	prev := make(map[int]wal.CursorEntry, len(s.resume.Entries))
	for _, pe := range s.resume.Entries {
		prev[pe.Obj.ID] = pe
	}
	cur := make(map[int]bool, len(results))
	var evs []Event
	for _, nm := range results {
		cur[nm.Object.ID] = true
		pe, ok := prev[nm.Object.ID]
		switch {
		case !ok:
			evs = append(evs, Event{Kind: ObjectEntered, Version: sn.Version(), Object: nm.Object, Match: nm})
		case pe.LB != nm.Prob.LB || pe.UB != nm.Prob.UB:
			evs = append(evs, Event{Kind: BoundsChanged, Version: sn.Version(), Object: nm.Object, Match: nm})
		}
	}
	if len(cur) < len(prev) {
		// Members that left while the monitor was down. Prefer the live
		// instance (the object may merely no longer qualify); fall back
		// to the persisted copy for objects deleted from the database.
		byID := make(map[int]*uncertain.Object)
		for _, o := range sn.Engine().DB {
			byID[o.ID] = o
		}
		for _, pe := range s.resume.Entries {
			if cur[pe.Obj.ID] {
				continue
			}
			obj := pe.Obj
			if o, ok := byID[pe.Obj.ID]; ok {
				obj = o
			}
			evs = append(evs, Event{Kind: ObjectLeft, Version: sn.Version(), Object: obj})
		}
	}
	return evs
}

// cursorState exports the subscription's current result set for the
// durable cursor, in ascending object ID order.
func (s *Subscription) cursorState() wal.CursorSub {
	cs := wal.CursorSub{Name: s.name, Kind: uint8(s.kind), K: s.k, Tau: s.tau, Q: s.q}
	ids := make([]int, 0, len(s.cands))
	for id, c := range s.cands {
		if c.match.IsResult {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		c := s.cands[id]
		cs.Entries = append(cs.Entries, wal.CursorEntry{
			Obj:        c.obj,
			LB:         c.match.Prob.LB,
			UB:         c.match.Prob.UB,
			Iterations: c.match.Iterations,
		})
	}
	return cs
}

// preselected reports whether candidate b is discarded by the engine's
// preselection for this subscription — the exact test the from-scratch
// query applies, so tracked candidates are exactly the evaluated ones.
func (s *Subscription) preselected(e *query.Engine, b *uncertain.Object, thresh float64) bool {
	if s.tau <= 0 {
		return false
	}
	switch s.kind {
	case KNN:
		return e.KNNPrunable(s.q, b, thresh)
	case RKNN:
		return e.RKNNPrunable(s.q, b, s.k)
	}
	return false
}

// apply incrementally maintains the subscription across one committed
// store change and returns the resulting events (ascending object ID).
//
// The pruning-aware core: a candidate's persisted verdict stays valid
// unless (a) its preselection status flipped, or (b) the mutated
// object's role in the candidate's run — complete dominator, pruned, or
// member of the canonical influence set (core.ClassifyRole) — differs
// between the old and new state, or the object was and stays an
// influence object (its interior distribution matters). Only candidates
// failing those checks re-run IDCA; everything else keeps its decided
// verdict, bit-identical to what a from-scratch query would recompute.
func (s *Subscription) apply(ch query.Change) []Event {
	e := ch.Snap.Engine()
	var evs []Event
	switch s.kind {
	case KNN:
		evs = s.applyKNN(e, ch)
	case RKNN:
		evs = s.applyRKNN(e, ch)
	}
	sortEvents(evs)
	return evs
}

func (s *Subscription) applyKNN(e *query.Engine, ch query.Change) []Event {
	threshNew := math.Inf(1)
	if s.tau > 0 {
		threshNew = e.KNNThreshold(s.q, s.k)
	}
	mutID := mutatedID(ch)
	var evs []Event
	for _, b := range e.DB {
		if b == s.q || b.ID == mutID {
			continue
		}
		prunedOld := s.cands[b.ID] == nil
		prunedNew := s.tau > 0 && e.KNNPrunable(s.q, b, threshNew)
		rerun := prunedOld != prunedNew
		if !rerun && !prunedNew {
			// Target is the candidate, reference the query object.
			rerun = s.roleChanged(e, ch, b.MBR, s.q.MBR)
		}
		if !rerun {
			s.countSaved()
			continue
		}
		nm := query.Match{Object: b, Decided: true}
		if !prunedNew {
			nm = e.EvalKNNCandidate(s.q, b, s.k, s.tau, threshNew, s.cache)
			s.countRun()
		}
		evs = s.transition(evs, ch.Version, b, nm, prunedNew)
	}
	evs = s.applyMutated(e, ch, evs, func(b *uncertain.Object) (query.Match, bool) {
		if s.tau > 0 && e.KNNPrunable(s.q, b, threshNew) {
			return query.Match{Object: b, Decided: true}, true
		}
		s.countRun()
		return e.EvalKNNCandidate(s.q, b, s.k, s.tau, threshNew, s.cache), false
	})
	s.thresh = threshNew
	return evs
}

func (s *Subscription) applyRKNN(e *query.Engine, ch query.Change) []Event {
	norm := e.Norm()
	mutID := mutatedID(ch)
	var evs []Event
	for _, b := range e.DB {
		if b == s.q || b.ID == mutID {
			continue
		}
		prunedOld := s.cands[b.ID] == nil
		prunedNew := prunedOld
		if s.tau > 0 {
			// The impossibility count for candidate b (objects closer to
			// b than q in every world) involves the mutated object only
			// when one of its states is MinMax-closer than q's minimum
			// distance; otherwise the persisted preselection status
			// stands and the recount is skipped.
			lim := s.q.MBR.MinDistRect(norm, b.MBR)
			involved := (ch.Old != nil && ch.Old.MBR.MaxDistRect(norm, b.MBR) < lim) ||
				(ch.New != nil && ch.New.MBR.MaxDistRect(norm, b.MBR) < lim)
			if involved {
				prunedNew = e.RKNNPrunable(s.q, b, s.k)
			}
		}
		rerun := prunedOld != prunedNew
		if !rerun && !prunedNew {
			// Target is the query object, reference the candidate.
			rerun = s.roleChanged(e, ch, s.q.MBR, b.MBR)
		}
		if !rerun {
			s.countSaved()
			continue
		}
		nm := query.Match{Object: b, Decided: true}
		if !prunedNew {
			nm = e.EvalRKNNCandidate(s.q, b, s.k, s.tau, s.cache)
			s.countRun()
		}
		evs = s.transition(evs, ch.Version, b, nm, prunedNew)
	}
	evs = s.applyMutated(e, ch, evs, func(b *uncertain.Object) (query.Match, bool) {
		if s.tau > 0 && e.RKNNPrunable(s.q, b, s.k) {
			return query.Match{Object: b, Decided: true}, true
		}
		s.countRun()
		return e.EvalRKNNCandidate(s.q, b, s.k, s.tau, s.cache), false
	})
	return evs
}

// applyMutated settles the mutated object's own candidacy: deletions
// (and replacements by the query object itself, which is never a
// candidate) drop the tracked verdict, inserts and updates evaluate the
// new object via evalNew (which reports the match and whether the
// candidate was preselected away).
func (s *Subscription) applyMutated(e *query.Engine, ch query.Change, evs []Event, evalNew func(*uncertain.Object) (query.Match, bool)) []Event {
	mutID := mutatedID(ch)
	if ch.New == nil || ch.New == s.q {
		if cs := s.cands[mutID]; cs != nil {
			delete(s.cands, mutID)
			if cs.match.IsResult {
				evs = append(evs, Event{Kind: ObjectLeft, Version: ch.Version, Object: ch.Old})
			}
		}
		return evs
	}
	nm, pruned := evalNew(ch.New)
	return s.transition(evs, ch.Version, ch.New, nm, pruned)
}

// transition installs candidate b's new verdict and appends the
// resulting result-set event, if any.
func (s *Subscription) transition(evs []Event, version uint64, b *uncertain.Object, nm query.Match, pruned bool) []Event {
	cs := s.cands[b.ID]
	oldIn := cs != nil && cs.match.IsResult
	var oldProb gf.Interval
	if cs != nil {
		oldProb = cs.match.Prob
	}
	if pruned {
		delete(s.cands, b.ID)
	} else if cs != nil {
		cs.obj, cs.match = b, nm
	} else {
		s.cands[b.ID] = &candState{obj: b, match: nm}
	}
	switch {
	case !oldIn && nm.IsResult:
		evs = append(evs, Event{Kind: ObjectEntered, Version: version, Object: b, Match: nm})
	case oldIn && !nm.IsResult:
		evs = append(evs, Event{Kind: ObjectLeft, Version: version, Object: b, Match: nm})
	case oldIn && nm.IsResult && nm.Prob != oldProb:
		evs = append(evs, Event{Kind: BoundsChanged, Version: version, Object: b, Match: nm})
	}
	return evs
}

// roleChanged reports whether the mutated object's filter role in a run
// with the given target/reference regions differs between its old and
// new state, or is (either side) an influence-set membership — the
// cases where the candidate's persisted bounds may no longer match a
// from-scratch evaluation. Absent states (insert/delete sides) hold the
// pruned role: an object not in the database contributes nothing.
func (s *Subscription) roleChanged(e *query.Engine, ch query.Change, target, reference geom.Rect) bool {
	n, crit := e.Norm(), e.Opts.Criterion
	ro, rn := core.RolePruned, core.RolePruned
	if ch.Old != nil {
		ro = core.ClassifyRole(n, crit, ch.Old.MBR, ch.Old.ExistenceProb(), target, reference)
	}
	if ch.New != nil {
		rn = core.ClassifyRole(n, crit, ch.New.MBR, ch.New.ExistenceProb(), target, reference)
	}
	return ro != rn || ro == core.RoleInfluence
}

// computeRegion derives the subscription's influence region: the set of
// locations where a mutation could change the result set or any
// persisted bound. For KNN at tau > 0 it is q's MBR expanded by
// max(m_{k+1}, max MaxDist over evaluated candidates): outside it, an
// object is preselection-pruned as a candidate, cannot move the
// threshold order statistic, and is completely dominated by every
// evaluated candidate (so every persisted verdict stays bit-identical).
// RKNN influence is not spatially bounded — a remote object whose
// neighborhood is empty has q as a nearest neighbor at any distance —
// and tau = 0 disables preselection entirely, so those subscriptions
// report no region and wake on every change (their maintenance still
// re-runs only affected candidates).
func (s *Subscription) computeRegion(e *query.Engine) (geom.Rect, bool) {
	if s.kind != KNN || s.tau <= 0 {
		return geom.Rect{}, false
	}
	r := s.thresh
	if math.IsInf(r, 1) {
		return geom.Rect{}, false
	}
	n := e.Norm()
	for _, cs := range s.cands {
		if d := cs.obj.MBR.MaxDistRect(n, s.q.MBR); d > r {
			r = d
		}
	}
	return expand(s.q.MBR, r), true
}

// countRun counts one maintenance IDCA evaluation.
func (s *Subscription) countRun() {
	s.runs.Add(1)
	s.m.runs.Add(1)
}

// countSaved counts one candidate whose persisted verdict stood without
// an IDCA re-run — the work incremental maintenance avoided.
func (s *Subscription) countSaved() {
	s.saved.Add(1)
	s.m.saved.Add(1)
}

// mutatedID returns the database ID a change concerns.
func mutatedID(ch query.Change) int {
	if ch.New != nil {
		return ch.New.ID
	}
	return ch.Old.ID
}

// expand grows a rectangle by d in every direction — a conservative
// cover of {x : MinDist(x, r) <= d} under any Lp norm (each per-axis
// gap is a lower bound on the norm distance).
func expand(r geom.Rect, d float64) geom.Rect {
	min := make(geom.Point, len(r.Min))
	max := make(geom.Point, len(r.Max))
	for i := range r.Min {
		min[i] = r.Min[i] - d
		max[i] = r.Max[i] + d
	}
	return geom.Rect{Min: min, Max: max}
}

// sortEvents orders one change's events by object ID — the
// deterministic within-version order of the stream.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool { return evs[i].Object.ID < evs[j].Object.ID })
}

package cq_test

import (
	"testing"

	"probprune/internal/benchscen"
)

// The benchmark pair quantifying the incrementality claim: on a stable
// 1k-object database with standing KNN queries, BenchmarkCQMaintain
// applies one mutation and lets the monitor maintain every subscription
// incrementally, while BenchmarkCQRequery applies the same mutation and
// re-runs every query from scratch. Compare wall time and the
// idca-runs/op metric. The shared scenario bodies live in
// internal/benchscen — cmd/bench writes the same measurements to the
// committed BENCH_PR3.json.

func BenchmarkCQMaintain(b *testing.B) {
	benchscen.CQMaintain(b, benchscen.MustDB(1000))
}

func BenchmarkCQRequery(b *testing.B) {
	benchscen.CQRequery(b, benchscen.MustDB(1000))
}

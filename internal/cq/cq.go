// Package cq turns the one-shot probabilistic queries of the engine
// into continuous ones: standing KNN/RkNN subscriptions over a live
// query.Store, kept current incrementally as Insert/Update/Delete
// commit, with clients consuming an ordered stream of result-set events
// — the serving model of production geofence systems (tile38-style),
// built on the paper's domination-count bounds.
//
// # Incremental, pruning-aware maintenance
//
// The paper's economy — decide predicates with cheap bounds instead of
// full integration — is applied twice over:
//
//   - Across subscriptions: each subscription registers its influence
//     region (the area where a mutation could change its result) in an
//     R-tree; a committed change wakes only the subscriptions whose
//     region the mutated object intersects. Everything else stays
//     asleep, provably unaffected.
//   - Within a subscription: per-candidate IDCA verdicts and bounds are
//     persisted. On a change, a candidate re-runs only when its
//     preselection status flipped or the mutated object's filter role
//     (core.ClassifyRole) in that candidate's run changed or is an
//     influence-set membership. All other candidates keep their decided
//     verdicts — and because re-evaluation goes through the same
//     EvalKNNCandidate/EvalRKNNCandidate paths a from-scratch query
//     uses, the maintained state stays bit-identical to recomputing the
//     query at every version (the mutation-trace oracle test enforces
//     this).
//
// # Event delivery
//
// Events are delivered per subscription, in store version order, with
// ascending object IDs within a version, on a bounded buffer. A
// consumer that stops draining either loses the subscription
// (DisconnectSlow, the default — no silent gaps) or sheds the oldest
// events (DropOldest, counted in Lost). See Options.
package cq

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"

	"probprune/internal/geom"
	"probprune/internal/query"
	"probprune/internal/rtree"
	"probprune/internal/uncertain"
	"probprune/internal/wal"
)

// Monitor maintains standing subscriptions over one Store. It consumes
// the store's committed change stream (Store.Watch) on a single worker
// goroutine: changes are applied strictly in version order, so every
// subscription observes every version exactly once. Construct with
// NewMonitor, release with Close.
//
// The change queue between the store and the worker is unbounded:
// accepting a change must never block (the Watch callback runs under
// the store's write lock) and per-version exactness rules out shedding
// or coalescing, so a writer that sustains more commits per second than
// maintenance drains grows the backlog — and each queued change pins
// the snapshot of its version. Writers that can outpace maintenance for
// long stretches should watch QueueLen (or compare Version against
// Store.Version) and throttle; bounding the queue with an explicit
// backpressure or degrade-to-requery mode is future work.
type Monitor struct {
	store Source
	opts  Options

	qmu    sync.Mutex
	qcond  *sync.Cond
	queue  []item
	closed bool

	done chan struct{} // closed when the worker exits

	// Worker-owned state: only the run goroutine touches these.
	snap      query.SnapshotView
	subs      map[int64]*Subscription
	regions   *rtree.Tree[*Subscription] // bounded influence regions
	unbounded map[int64]*Subscription    // subscriptions that wake on every change
	cursor    *wal.Cursor                // in-memory durable cursor view (nil without one)
	clog      *wal.CursorLog             // append-only cursor log behind CursorPath
	cursorErr error                      // cursor open failure, surfaced on durable subscribes
	sinceSave int                        // changes processed since the last cursor save
	dirty     map[string]bool            // names whose result set changed since the last successful save
	deleted   map[string]bool            // names forgotten since the last successful save
	forceFull bool                       // next save rewrites the base (after a failed save)
	saveErr   error                      // deferred auto-save failure, surfaced by SaveCursor/Close
	closeErr  error                      // final save/close failure, returned by Close

	wmu       sync.Mutex
	processed uint64
	vv        []uint64 // per-shard version-vector cursor (sharded sources)
	advanced  chan struct{}

	stopWatch func()
	nextID    atomic.Int64
	subCount  atomic.Int64

	changes, woken, runs, setupRuns, saved, events, lost, dropped atomic.Uint64
	cursorSaves, cursorSaveFails                                  atomic.Uint64
}

// item is one unit of worker input: a store change or a control request.
type item struct {
	change    *query.Change
	sub       *Subscription
	unsub     *Subscription
	save      chan error // SaveCursor request
	forget    string     // Forget request (discriminated by forgetRes)
	forgetRes chan error
	hasName   string // HasCursorSub request (discriminated by hasRes)
	hasRes    chan bool
	shutdown  bool
	done      chan struct{}
}

// Source is the store side a Monitor consumes: a mutable
// uncertain-object store publishing a gapless, version-ordered change
// stream where every change carries the snapshot of its version. Both
// *query.Store and *query.ShardedStore satisfy it — a monitor over a
// sharded store consumes the merged multi-shard stream, and its
// maintenance stays bit-identical because the sharded snapshots'
// engines are (see ShardedSnapshot.Engine).
type Source interface {
	// Watch registers a commit hook, atomically with a snapshot of the
	// current state (see Store.Watch for the full contract).
	Watch(fn func(query.Change)) (query.SnapshotView, func())
	// Version returns the store's current mutation epoch.
	Version() uint64
}

// NewMonitor attaches a monitor to the store — a single Store or a
// ShardedStore (merged multi-shard change stream). The registration is
// atomic with a snapshot of the current state: subscriptions made
// before any further mutation see exactly that state as their initial
// result. The monitor owns a background worker until Close.
//
// While a monitor is attached every store mutation publishes a snapshot
// (see Store.Watch), so write bursts pay one copy-on-write detach per
// mutation — the cost of a gapless per-version subscription feed.
func NewMonitor(store Source, opts Options) *Monitor {
	m := &Monitor{
		store:     store,
		opts:      opts,
		done:      make(chan struct{}),
		subs:      make(map[int64]*Subscription),
		regions:   rtree.New[*Subscription](),
		unbounded: make(map[int64]*Subscription),
		advanced:  make(chan struct{}),
	}
	m.qcond = sync.NewCond(&m.qmu)
	if opts.CursorPath != "" {
		m.clog, m.cursor, m.cursorErr = wal.OpenCursorLog(opts.CursorPath)
	}
	snap, stop := store.Watch(func(ch query.Change) {
		c := ch
		m.enqueue(item{change: &c})
	})
	m.snap = snap
	m.processed = snap.Version()
	m.vv = versionVector(snap)
	m.stopWatch = stop
	go m.run()
	return m
}

// SubscribeKNN registers a standing probabilistic threshold kNN query:
// the event stream tracks every object B with P(B ∈ kNN(q)) >= tau.
// The current result set arrives first, as ObjectEntered events.
func (m *Monitor) SubscribeKNN(q *uncertain.Object, k int, tau float64) (*Subscription, error) {
	return m.subscribe(KNN, q, k, tau)
}

// SubscribeRKNN registers a standing probabilistic threshold reverse
// kNN query: the stream tracks every object that has q among its k
// nearest neighbors with probability >= tau.
func (m *Monitor) SubscribeRKNN(q *uncertain.Object, k int, tau float64) (*Subscription, error) {
	return m.subscribe(RKNN, q, k, tau)
}

// SubscribeKNNDurable is SubscribeKNN with a durable identity: the
// subscription's result set is persisted in the monitor's cursor under
// name, and a monitor restarted with the same cursor file resumes the
// subscription with the coalesced delta since the cursor — an object
// that entered and left while the monitor was down produces no event;
// everything whose membership or bounds differ produces exactly one.
// After the resume events, per-version streaming continues as usual.
// Requires Options.CursorPath; the name must be unique among live
// durable subscriptions, and re-using a name with a different predicate
// fails with ErrCursorMismatch.
func (m *Monitor) SubscribeKNNDurable(name string, q *uncertain.Object, k int, tau float64) (*Subscription, error) {
	return m.subscribeDurable(name, KNN, q, k, tau)
}

// SubscribeRKNNDurable is SubscribeRKNN with a durable identity (see
// SubscribeKNNDurable).
func (m *Monitor) SubscribeRKNNDurable(name string, q *uncertain.Object, k int, tau float64) (*Subscription, error) {
	return m.subscribeDurable(name, RKNN, q, k, tau)
}

func (m *Monitor) subscribeDurable(name string, kind Kind, q *uncertain.Object, k int, tau float64) (*Subscription, error) {
	if m.opts.CursorPath == "" {
		return nil, fmt.Errorf("cq: durable subscription %q without Options.CursorPath", name)
	}
	if name == "" {
		return nil, fmt.Errorf("cq: durable subscription with empty name")
	}
	if m.cursorErr != nil {
		return nil, fmt.Errorf("cq: cursor %s unreadable: %w", m.opts.CursorPath, m.cursorErr)
	}
	s, err := m.subscribeSub(name, kind, q, k, tau)
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (m *Monitor) subscribe(kind Kind, q *uncertain.Object, k int, tau float64) (*Subscription, error) {
	return m.subscribeSub("", kind, q, k, tau)
}

func (m *Monitor) subscribeSub(name string, kind Kind, q *uncertain.Object, k int, tau float64) (*Subscription, error) {
	if q == nil {
		return nil, fmt.Errorf("cq: nil query object")
	}
	if k < 1 {
		return nil, fmt.Errorf("cq: k = %d, need k >= 1", k)
	}
	if tau < 0 || tau > 1 || math.IsNaN(tau) {
		return nil, fmt.Errorf("cq: tau = %g outside [0, 1]", tau)
	}
	s := &Subscription{
		id:     m.nextID.Add(1),
		m:      m,
		name:   name,
		kind:   kind,
		q:      q,
		k:      k,
		tau:    tau,
		events: make(chan Event, m.opts.buffer()),
		cands:  make(map[int]*candState),
		thresh: math.Inf(1),
	}
	done := make(chan struct{})
	if !m.enqueue(item{sub: s, done: done}) {
		return nil, ErrMonitorClosed
	}
	<-done
	// The consumer cannot drain before subscribe returns, so an initial
	// result set larger than the buffer would — under DisconnectSlow —
	// kill the subscription deterministically before it ever worked.
	// Surface that as a subscribe error instead of a dead channel.
	if err := s.Err(); err != nil {
		if err == ErrCursorMismatch || err == ErrDuplicateName {
			return nil, err
		}
		return nil, fmt.Errorf("cq: initial result set overflowed the %d-event buffer (raise Options.Buffer or use DropOldest): %w", m.opts.buffer(), err)
	}
	return s, nil
}

// ErrDuplicateName: a durable subscription was requested under a name
// that a live durable subscription already holds.
var ErrDuplicateName = fmt.Errorf("cq: durable subscription name already in use")

// Unsubscribe cancels a subscription (see Subscription.Cancel).
func (m *Monitor) Unsubscribe(s *Subscription) { s.Cancel() }

// Close detaches from the store, ends every subscription with
// ErrMonitorClosed and stops the worker. Changes committed before Close
// are still processed; the call blocks until the worker drained them.
func (m *Monitor) Close() error {
	m.stopWatch()
	m.qmu.Lock()
	if m.closed {
		m.qmu.Unlock()
		<-m.done
		return m.closeErr
	}
	m.closed = true
	m.queue = append(m.queue, item{shutdown: true})
	m.qcond.Signal()
	m.qmu.Unlock()
	<-m.done
	// The worker wrote closeErr before closing done; the channel
	// receive orders the read after it.
	return m.closeErr
}

// Version returns the latest store version the monitor has fully
// processed — every subscription's stream is current through it.
func (m *Monitor) Version() uint64 {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	return m.processed
}

// VersionVector returns the monitor's per-shard cursor: the shard
// versions of the latest fully-processed sharded snapshot. It localizes
// the monitor's progress to individual shards of a ShardedStore source;
// monitors over a single Store return nil.
func (m *Monitor) VersionVector() []uint64 {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	if m.vv == nil {
		return nil
	}
	vv := make([]uint64, len(m.vv))
	copy(vv, m.vv)
	return vv
}

// versionVector extracts a snapshot's per-shard cursor, nil for
// single-store snapshots.
func versionVector(snap query.SnapshotView) []uint64 {
	if v, ok := snap.(interface{ VersionVector() []uint64 }); ok {
		return v.VersionVector()
	}
	return nil
}

// WaitVersion blocks until the monitor has processed store version v
// (every event up to v delivered to the subscription buffers), the
// context is cancelled, or the monitor closes.
func (m *Monitor) WaitVersion(ctx context.Context, v uint64) error {
	for {
		m.wmu.Lock()
		if m.processed >= v {
			m.wmu.Unlock()
			return nil
		}
		ch := m.advanced
		m.wmu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		case <-m.done:
			m.wmu.Lock()
			p := m.processed
			m.wmu.Unlock()
			if p >= v {
				return nil
			}
			return ErrMonitorClosed
		}
	}
}

// Sync blocks until the monitor has caught up with the store's current
// version.
func (m *Monitor) Sync(ctx context.Context) error {
	return m.WaitVersion(ctx, m.store.Version())
}

// NumSubscriptions returns the number of live subscriptions.
func (m *Monitor) NumSubscriptions() int { return int(m.subCount.Load()) }

// QueueLen returns the current maintenance backlog: changes (and
// control requests) accepted but not yet applied. A persistently
// growing value means mutations outpace maintenance — see the queue
// discussion on Monitor.
func (m *Monitor) QueueLen() int {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	return len(m.queue)
}

// Stats returns the monitor-wide cumulative counters.
func (m *Monitor) Stats() Stats {
	st := Stats{
		Changes:            m.changes.Load(),
		Woken:              m.woken.Load(),
		Runs:               m.runs.Load(),
		SetupRuns:          m.setupRuns.Load(),
		Saved:              m.saved.Load(),
		Events:             m.events.Load(),
		Lost:               m.lost.Load(),
		Dropped:            m.dropped.Load(),
		CursorSaves:        m.cursorSaves.Load(),
		CursorSaveFailures: m.cursorSaveFails.Load(),
	}
	if m.clog != nil {
		st.CursorDeltaBytes = m.clog.DeltaBytes()
		st.CursorCompactions = m.clog.Compactions()
	}
	return st
}

// enqueue hands an item to the worker; it reports false when the
// monitor no longer accepts input. Never blocks — it is called from
// inside store mutations, under the store lock.
func (m *Monitor) enqueue(it item) bool {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	if m.closed {
		return false
	}
	m.queue = append(m.queue, it)
	m.qcond.Signal()
	return true
}

// dequeue blocks until an item is available.
func (m *Monitor) dequeue() item {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	for len(m.queue) == 0 {
		m.qcond.Wait()
	}
	it := m.queue[0]
	m.queue = m.queue[1:]
	return it
}

// run is the worker loop: it serializes subscription management and
// change application, which is what makes the per-subscription state
// single-writer and the event streams strictly ordered.
func (m *Monitor) run() {
	defer close(m.done)
	for {
		it := m.dequeue()
		switch {
		case it.change != nil:
			m.applyChange(*it.change)
		case it.sub != nil:
			m.addSub(it.sub)
			close(it.done)
		case it.unsub != nil:
			m.dropSub(it.unsub, ErrUnsubscribed)
			close(it.done)
		case it.save != nil:
			it.save <- m.saveCursor()
		case it.forgetRes != nil:
			it.forgetRes <- m.forgetNamed(it.forget)
		case it.hasRes != nil:
			it.hasRes <- m.cursorHas(it.hasName)
		case it.shutdown:
			if m.opts.CursorPath != "" {
				// Final cursor save: the next process resumes from the
				// exact position this one delivered through. Its failure
				// (or a deferred auto-save failure) reaches the caller
				// through Close.
				if err := m.saveCursor(); err != nil && m.closeErr == nil {
					m.closeErr = err
				}
				if m.clog != nil {
					if err := m.clog.Close(); err != nil && m.closeErr == nil {
						m.closeErr = err
					}
				}
			}
			for _, s := range m.subs {
				s.finish(ErrMonitorClosed)
			}
			m.subs = make(map[int64]*Subscription)
			m.subCount.Store(0)
			return
		}
	}
}

// addSub evaluates the initial result on the latest processed snapshot,
// registers the influence region and delivers the initial events. A
// durable subscription first resolves its cursor state: present and
// matching, the initial events become the coalesced delta since the
// cursor instead of the full result set.
func (m *Monitor) addSub(s *Subscription) {
	if s.name != "" {
		for _, other := range m.subs {
			if other.name == s.name {
				s.finish(ErrDuplicateName)
				return
			}
		}
		if m.cursor != nil {
			for i := range m.cursor.Subs {
				cs := &m.cursor.Subs[i]
				if cs.Name != s.name {
					continue
				}
				// The query object is part of the predicate: compare it
				// by value (the instance cannot survive a restart).
				if Kind(cs.Kind) != s.kind || cs.K != s.k || cs.Tau != s.tau ||
					!reflect.DeepEqual(cs.Q, s.q) {
					s.finish(ErrCursorMismatch)
					return
				}
				s.resume = cs
				break
			}
		}
	}
	evs := s.init(m.snap)
	s.resume = nil
	m.subs[s.id] = s
	m.subCount.Add(1)
	if s.name != "" {
		m.markDirty(s.name)
	}
	m.place(s, false)
	m.deliver(s, evs)
}

// saveCursor persists the durable cursor and accounts for the outcome.
// A failure deferred from an earlier auto-save is surfaced here first —
// auto-saves are not "best effort", their errors are only postponed to
// the next explicit save point. Worker-only.
func (m *Monitor) saveCursor() error {
	if m.opts.CursorPath == "" {
		return fmt.Errorf("cq: no Options.CursorPath configured")
	}
	deferred := m.saveErr
	m.saveErr = nil
	err := m.writeCursor()
	if err != nil {
		m.cursorSaveFails.Add(1)
	} else {
		m.cursorSaves.Add(1)
	}
	if deferred != nil {
		return fmt.Errorf("cq: deferred cursor auto-save failure: %w", deferred)
	}
	return err
}

// writeCursor rebuilds the durable cursor — the processed watermark
// plus every named subscription's current result set — and persists it
// through the cursor log. Names loaded from the previous cursor that
// have not been re-subscribed yet are carried through unchanged — an
// auto-save firing before the application re-attaches its
// subscriptions must not erase their resume state.
//
// The save appends a delta carrying only the subscriptions that woke
// since the last successful save (plus forgotten names), and rewrites
// the full base when the log wants compaction — or after a failed
// save, when the on-disk log can no longer be assumed to hold what the
// delta bookkeeping builds on. Worker-only.
func (m *Monitor) writeCursor() error {
	m.wmu.Lock()
	c := &wal.Cursor{Version: m.processed, VV: m.vv}
	m.wmu.Unlock()
	ids := make([]int64, 0, len(m.subs))
	for id := range m.subs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	live := make(map[string]bool)
	for _, id := range ids {
		s := m.subs[id]
		if s.name == "" {
			continue
		}
		live[s.name] = true
		c.Subs = append(c.Subs, s.cursorState())
	}
	if m.cursor != nil {
		for i := range m.cursor.Subs {
			if cs := &m.cursor.Subs[i]; !live[cs.Name] {
				c.Subs = append(c.Subs, *cs)
			}
		}
	}
	m.sinceSave = 0
	// Refresh the in-memory cursor too: in-process re-subscribes (and
	// dropSub's remember) work against the latest persisted view.
	m.cursor = c
	if m.clog == nil {
		// The cursor log never opened (m.cursorErr). Fall back to an
		// atomic full rewrite in the legacy format: it self-heals the
		// file, and the next open migrates it back into a log.
		return wal.SaveCursor(m.opts.CursorPath, c)
	}
	if m.forceFull || m.clog.ShouldCompact() {
		if err := m.clog.WriteFull(c); err != nil {
			m.forceFull = true
			return err
		}
	} else {
		d := &wal.CursorDelta{Version: c.Version, VV: c.VV}
		inBase := make(map[string]bool, len(c.Subs))
		for i := range c.Subs {
			inBase[c.Subs[i].Name] = true
			if m.dirty[c.Subs[i].Name] {
				d.Upserts = append(d.Upserts, c.Subs[i])
			}
		}
		// A forgotten name that was re-subscribed is upserted above;
		// deltas apply upserts before deletes, so it must not also be
		// deleted.
		for name := range m.deleted {
			if !inBase[name] {
				d.Deletes = append(d.Deletes, name)
			}
		}
		sort.Strings(d.Deletes)
		if err := m.clog.AppendDelta(d); err != nil {
			m.forceFull = true
			return err
		}
	}
	m.forceFull = false
	m.dirty = nil
	m.deleted = nil
	return nil
}

// markDirty records that name's persisted resume state is stale: the
// next cursor save must carry it in the delta. Worker-only.
func (m *Monitor) markDirty(name string) {
	if m.opts.CursorPath == "" {
		return
	}
	if m.dirty == nil {
		m.dirty = make(map[string]bool)
	}
	m.dirty[name] = true
	delete(m.deleted, name)
}

// remember installs a named subscription's resume state into the
// in-memory cursor (persisted at the next save). Worker-only.
func (m *Monitor) remember(cs wal.CursorSub) {
	if m.cursor == nil {
		m.cursor = &wal.Cursor{}
	}
	for i := range m.cursor.Subs {
		if m.cursor.Subs[i].Name == cs.Name {
			m.cursor.Subs[i] = cs
			return
		}
	}
	m.cursor.Subs = append(m.cursor.Subs, cs)
}

// forgetNamed drops a name's cursor resume state. Worker-only.
func (m *Monitor) forgetNamed(name string) error {
	for _, s := range m.subs {
		if s.name == name {
			return fmt.Errorf("cq: cannot forget %q: subscription is live", name)
		}
	}
	if m.cursor != nil {
		for i := range m.cursor.Subs {
			if m.cursor.Subs[i].Name == name {
				m.cursor.Subs = append(m.cursor.Subs[:i], m.cursor.Subs[i+1:]...)
				break
			}
		}
	}
	if m.opts.CursorPath != "" {
		delete(m.dirty, name)
		if m.deleted == nil {
			m.deleted = make(map[string]bool)
		}
		m.deleted[name] = true
	}
	return nil
}

// cursorHas reports whether the cursor holds resume state for name.
// Worker-only.
func (m *Monitor) cursorHas(name string) bool {
	if m.cursor == nil {
		return false
	}
	for i := range m.cursor.Subs {
		if m.cursor.Subs[i].Name == name {
			return true
		}
	}
	return false
}

// Forget removes name's durable resume state from the cursor (in
// memory immediately, on disk at the next save): the next subscription
// under that name starts from a full fresh result set instead of a
// delta. It fails while a live subscription holds the name.
func (m *Monitor) Forget(name string) error {
	reply := make(chan error, 1)
	if !m.enqueue(item{forget: name, forgetRes: reply}) {
		return ErrMonitorClosed
	}
	return <-reply
}

// HasCursorSub reports whether the durable cursor currently holds
// resume state for name — a subscription under that name would start
// with a coalesced delta rather than a full result set.
func (m *Monitor) HasCursorSub(name string) bool {
	reply := make(chan bool, 1)
	if !m.enqueue(item{hasName: name, hasRes: reply}) {
		return false
	}
	return <-reply
}

// dropSub removes a subscription and closes its stream. A named
// subscription's final result set is remembered in the in-memory
// cursor first, so re-subscribing under the same name — in the same
// process or after the next cursor save, in the next one — resumes
// with the delta since this exact point rather than a stale snapshot.
func (m *Monitor) dropSub(s *Subscription, err error) {
	if _, ok := m.subs[s.id]; !ok {
		return
	}
	delete(m.subs, s.id)
	m.subCount.Add(-1)
	if s.bounded {
		m.regions.Delete(s.region, s)
	} else {
		delete(m.unbounded, s.id)
	}
	if s.name != "" && m.opts.CursorPath != "" {
		m.remember(s.cursorState())
		m.markDirty(s.name)
	}
	s.finish(err)
}

// place (re)registers the subscription's influence region after its
// state changed. existing distinguishes repositioning from the first
// registration.
func (m *Monitor) place(s *Subscription, existing bool) {
	region, bounded := s.computeRegion(m.snap.Engine())
	if existing {
		if bounded == s.bounded && (!bounded || region.Equal(s.region)) {
			return
		}
		if s.bounded {
			m.regions.Delete(s.region, s)
		} else {
			delete(m.unbounded, s.id)
		}
	}
	s.region, s.bounded = region, bounded
	if bounded {
		m.regions.Insert(region, s)
	} else {
		m.unbounded[s.id] = s
	}
}

// applyChange routes one committed change to the affected
// subscriptions: the ones whose influence region the mutated object's
// (old or new) extent intersects, plus the unbounded ones. Untouched
// subscriptions do no work at all.
func (m *Monitor) applyChange(ch query.Change) {
	m.snap = ch.Snap
	var woken []*Subscription
	wake := wakeRect(ch)
	m.regions.SearchIntersect(wake, func(_ geom.Rect, s *Subscription) bool {
		woken = append(woken, s)
		return true
	})
	for _, s := range m.unbounded {
		woken = append(woken, s)
	}
	sort.Slice(woken, func(i, j int) bool { return woken[i].id < woken[j].id })
	for _, s := range woken {
		s.woken.Add(1)
		m.woken.Add(1)
		evs := s.apply(ch)
		if s.name != "" {
			// Waking can refine candidate bounds without emitting an
			// event, so the persisted entry is stale either way.
			m.markDirty(s.name)
		}
		m.place(s, true)
		m.deliver(s, evs)
	}
	m.changes.Add(1)
	m.advance(ch.Version, versionVector(ch.Snap))
	if m.opts.CursorPath != "" && m.opts.CursorEvery > 0 {
		if m.sinceSave++; m.sinceSave >= m.opts.CursorEvery {
			// An auto-save failure is deferred, not dropped: the next
			// SaveCursor or Close reports it, and the dirty bookkeeping
			// is retained so nothing is lost from the next attempt.
			if err := m.writeCursor(); err != nil {
				m.cursorSaveFails.Add(1)
				if m.saveErr == nil {
					m.saveErr = err
				}
			} else {
				m.cursorSaves.Add(1)
			}
		}
	}
}

// SaveCursor persists the durable cursor now: every event delivered to
// the subscription buffers so far is covered by it. The save runs on
// the worker, strictly ordered with change processing.
func (m *Monitor) SaveCursor() error {
	reply := make(chan error, 1)
	if !m.enqueue(item{save: reply}) {
		return ErrMonitorClosed
	}
	return <-reply
}

// wakeRect is the spatial extent a change can influence directly: the
// union of the mutated object's old and new uncertainty regions.
func wakeRect(ch query.Change) geom.Rect {
	switch {
	case ch.Old == nil:
		return ch.New.MBR
	case ch.New == nil:
		return ch.Old.MBR
	default:
		return ch.Old.MBR.Union(ch.New.MBR)
	}
}

// deliver pushes events into the subscription's bounded buffer,
// applying the slow-consumer policy on overflow.
func (m *Monitor) deliver(s *Subscription, evs []Event) {
	for _, ev := range evs {
		for {
			select {
			case s.events <- ev:
				s.emitted.Add(1)
				m.events.Add(1)
			default:
				if m.opts.Policy == DropOldest {
					select {
					case <-s.events:
						s.lost.Add(1)
						m.lost.Add(1)
					default:
					}
					continue
				}
				m.dropped.Add(1)
				m.dropSub(s, ErrSlowConsumer)
				return
			}
			break
		}
	}
}

// advance publishes the new watermark (and version-vector cursor) to
// WaitVersion blockers.
func (m *Monitor) advance(v uint64, vv []uint64) {
	m.wmu.Lock()
	m.processed = v
	m.vv = vv
	ch := m.advanced
	m.advanced = make(chan struct{})
	m.wmu.Unlock()
	close(ch)
}

package server_test

// Edge-path tests: wire-codec validation against malformed payloads,
// argument errors for every command, server lifecycle entry points and
// the non-default option values. The happy paths live in
// server_test.go / durable_test.go; the equivalence and e2e tiers
// cover semantics.

import (
	"bytes"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"probprune/internal/geom"
	"probprune/internal/query"
	"probprune/internal/server"
	"probprune/internal/server/client"
	"probprune/internal/uncertain"
)

// sendArgs writes a command in the canonical array-of-bulks form, for
// arguments (like encoded objects) that inline commands cannot carry.
func (rc *rawConn) sendArgs(t *testing.T, args ...string) {
	t.Helper()
	elems := make([]server.Frame, len(args))
	for i, a := range args {
		elems[i] = server.Frame{Type: server.TBulk, Bulk: []byte(a)}
	}
	w := server.NewWriter(rc.nc)
	if err := w.WriteFrame(server.Frame{Type: server.TArray, Array: elems}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	if got := server.PolicyDisconnect.String(); got != "disconnect" {
		t.Errorf("PolicyDisconnect.String() = %q", got)
	}
	if got := server.PolicyDropOldest.String(); got != "dropoldest" {
		t.Errorf("PolicyDropOldest.String() = %q", got)
	}
}

// TestWireObjectFull round-trips an object carrying every optional
// field (explicit weights, existential uncertainty) and rejects the
// malformed encodings a hostile client could send.
func TestWireObjectFull(t *testing.T) {
	o, err := uncertain.NewWeightedObject(7,
		[]geom.Point{{1, 2}, {3, 4}, {5, 6}},
		[]float64{0.5, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetExistence(0.75); err != nil {
		t.Fatal(err)
	}
	enc := server.EncodeObject(o)
	dec, err := server.DecodeObject(enc)
	if err != nil {
		t.Fatal(err)
	}
	sameObject(t, dec, o, "weighted+existential round trip")
	if dec.Existence != o.Existence {
		t.Errorf("existence %v, want %v", dec.Existence, o.Existence)
	}
	if len(dec.Weights) != 3 || dec.Weights[0] != 0.5 {
		t.Errorf("weights %v, want %v", dec.Weights, o.Weights)
	}

	// Unnormalized weights are renormalized on decode.
	dec, err = server.DecodeObject([]byte("1 1 2 1 0 1 2 2"))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Weights[0] != 0.5 || dec.Weights[1] != 0.5 {
		t.Errorf("renormalized weights %v, want [0.5 0.5]", dec.Weights)
	}

	bad := []string{
		"1 1",             // too few tokens
		"x 1 1 0 0",       // bad id
		"1 x 1 0 0",       // bad dimension
		"1 0 1 0 0",       // dimension < 1
		"1 100 1 0 0",     // dimension > max
		"1 1 x 0 0",       // bad sample count
		"1 1 0 0",         // sample count < 1
		"1 1 1 x 0",       // bad flags
		"1 1 1 9 0",       // flags out of range
		"1 1 1 0 0 0",     // token count mismatch
		"1 1 1 0 NaN",     // NaN coordinate
		"1 1 1 0 +Inf",    // infinite coordinate
		"1 1 1 0 z",       // unparseable coordinate
		"1 1 1 1 0 x",     // bad weight
		"1 1 1 1 0 -1",    // negative weight
		"1 1 2 1 0 1 0 0", // zero total weight
		"1 1 1 2 0 x",     // bad existence
		"1 1 1 2 0 0",     // existence <= 0
		"1 1 1 2 0 2",     // existence > 1
	}
	for _, s := range bad {
		if _, err := server.DecodeObject([]byte(s)); err == nil {
			t.Errorf("DecodeObject(%q) accepted malformed payload", s)
		}
	}
}

// TestWireDecodeErrors drives the reply decoders with frames a broken
// or hostile server could emit.
func TestWireDecodeErrors(t *testing.T) {
	bulkF := func(s string) server.Frame { return server.Frame{Type: server.TBulk, Bulk: []byte(s)} }
	intF := func(n int64) server.Frame { return server.Frame{Type: server.TInt, Int: n} }
	arr := func(elems ...server.Frame) server.Frame {
		return server.Frame{Type: server.TArray, Array: elems}
	}
	pushF := func(elems ...server.Frame) server.Frame {
		return server.Frame{Type: server.TPush, Array: elems}
	}
	goodObj := string(server.EncodeObject(uncertain.PointObject(1, geom.Point{0, 0})))

	badMatches := []server.Frame{
		intF(1),           // not an array
		arr(intF(1)),      // element not an array
		arr(arr(intF(1))), // wrong element count
		arr(arr(bulkF("x"), bulkF("a"), bulkF("b"), intF(0), intF(0), intF(0))), // wrong types
		arr(arr(intF(1), bulkF("x"), bulkF("1"), intF(0), intF(0), intF(0))),    // bad lb
		arr(arr(intF(1), bulkF("1"), bulkF("x"), intF(0), intF(0), intF(0))),    // bad ub
	}
	for i, f := range badMatches {
		if _, err := server.DecodeMatches(f); err == nil {
			t.Errorf("DecodeMatches case %d accepted malformed frame", i)
		}
	}

	badRank := []server.Frame{
		intF(1),                                 // not an array
		arr(),                                   // empty
		arr(intF(1), bulkF("0.5")),              // even element count
		arr(bulkF("x"), bulkF("0"), bulkF("1")), // minrank not int
		arr(intF(1), intF(0), bulkF("1")),       // bound not bulk
		arr(intF(1), bulkF("x"), bulkF("1")),    // bad lb
		arr(intF(1), bulkF("0"), bulkF("x")),    // bad ub
	}
	for i, f := range badRank {
		if _, err := server.DecodeRankDist(f); err == nil {
			t.Errorf("DecodeRankDist case %d accepted malformed frame", i)
		}
	}

	badEvents := []server.Frame{
		intF(1),                      // not a push
		pushF(intF(1), bulkF("end")), // too short
		pushF(bulkF("x"), bulkF("end"), bulkF("r")), // malformed header
		pushF(intF(1), bulkF("end"), intF(0)),       // end reason not bulk
		pushF(intF(1), bulkF("entered"), intF(0)),   // event frame too short
		pushF(intF(1), bulkF("entered"), intF(0), bulkF("zz"),
			bulkF("0"), bulkF("1"), intF(1), intF(1), intF(0)), // bad object
		pushF(intF(1), bulkF("entered"), intF(0), bulkF(goodObj),
			bulkF("x"), bulkF("1"), intF(1), intF(1), intF(0)), // bad lb
	}
	for i, f := range badEvents {
		if _, err := server.DecodeEvent(f); err == nil {
			t.Errorf("DecodeEvent case %d accepted malformed frame", i)
		}
	}
}

// TestServerLifecycle exercises ListenAndServe/Addr/Close and the
// non-default option values (every accessor's explicit branch), plus
// the Logf diagnostic hook on a protocol violation.
func TestServerLifecycle(t *testing.T) {
	store, err := query.NewStore(testDB(9, 8), testOpts)
	if err != nil {
		t.Fatal(err)
	}
	var logged bytes.Buffer
	srv := server.New(store, server.Options{
		CursorPath:   filepath.Join(t.TempDir(), "cursor"),
		CursorEvery:  64,
		SubBuffer:    128,
		Retain:       256,
		OutQueue:     32,
		DrainTimeout: 2 * time.Second,
		Logf:         func(format string, args ...any) { fmt.Fprintf(&logged, format+"\n", args...) },
	})
	if srv.Addr() != nil {
		t.Fatal("Addr non-nil before Serve")
	}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 500; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("ListenAndServe never bound")
	}
	cl := dial(t, addr)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}

	// A protocol violation reaches the Logf hook.
	rc := rawDial(t, addr)
	rc.sendLine(t, "$99999999999999\r\n")
	rc.wantError(t, "PROTO")
	for i := 0; i < 500 && logged.Len() == 0; i++ {
		time.Sleep(2 * time.Millisecond)
	}
	if !strings.Contains(logged.String(), "protocol violation") {
		t.Errorf("Logf did not receive the violation diagnostic: %q", logged.String())
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// Serve on a closed server refuses; a bad listen address errors.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(ln); err == nil {
		t.Fatal("Serve on closed server succeeded")
	}
	if err := server.New(store, server.Options{}).ListenAndServe("256.256.256.256:0"); err == nil {
		t.Fatal("ListenAndServe on bad address succeeded")
	}

	// An accept failure that is not a close surfaces as Serve's error.
	srv2 := server.New(store, server.Options{})
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln2.Close()
	if err := srv2.Serve(ln2); err == nil {
		t.Fatal("Serve swallowed the accept error")
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServerArgumentErrors walks every command's argument validation.
func TestServerArgumentErrors(t *testing.T) {
	db := testDB(11, 8)
	store, err := query.NewStore(db, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, store, server.Options{})
	rc := rawDial(t, addr)
	obj := string(server.EncodeObject(uncertain.PointObject(-1, geom.Point{0.5, 0.5})))

	badarg := [][]string{
		{"GET"},
		{"DELETE"},
		{"DELETE", "x"},
		{"INSERT"},
		{"INSERT", "zz"},
		{"UPDATE", "zz"},
		{"KNN", "x", "0.5", obj},
		{"KNN", "1", "x", obj},
		{"KNN", "1", "0.5", "zz"},
		{"TOPKNN"},
		{"TOPKNN", "x", "1", obj},
		{"TOPKNN", "1", "x", obj},
		{"TOPKNN", "1", "1", "zz"},
		{"INVRANK"},
		{"INVRANK", "zz", obj},
		{"INVRANK", obj, "zz"},
		{"BATCH"},
		{"BATCH", "x"},
		{"BATCH", "-1"},
		{"BATCH", "2", "1", "0.5", obj},
		{"BATCH", "1", "x", "0.5", obj},
		{"BATCH", "1", "1", "x", obj},
		{"BATCH", "1", "1", "0.5", "zz"},
		{"WAITVERSION"},
		{"WAITVERSION", "-1"},
		{"UNSUBSCRIBE"},
		{"UNSUBSCRIBE", "x"},
		{"SUBSCRIBE", "KNN", "1", "0.5"},
		{"SUBSCRIBE", "KNN", "x", "0.5", obj},
		{"SUBSCRIBE", "KNN", "1", "x", obj},
		{"SUBSCRIBE", "KNN", "1", "0.5", "zz"},
		{"SUBSCRIBE", "KNN", "1", "0.5", obj, "NAME", ""},
		{"SUBSCRIBE", "KNN", "1", "0.5", obj, "POLICY", "bogus"},
		{"SUBSCRIBE", "KNN", "1", "0.5", obj, "WALTZ"},
		{"RESUME", "n", "0", "0"},
		{"RESUME", "n", "x", "0", "KNN", "1", "0.5", obj},
		{"RESUME", "n", "0", "x", "KNN", "1", "0.5", obj},
		{"RESUME", "n", "0", "0", "KNN", "1", "x", obj},
	}
	for _, args := range badarg {
		rc.sendArgs(t, args...)
		rc.wantError(t, "BADARG")
	}

	// Command-level (non-BADARG) failures keep the connection usable.
	rc.sendArgs(t, "INSERT", string(server.EncodeObject(db[0]))) // duplicate ID
	rc.wantError(t, "ERR")
	rc.sendArgs(t, "UPDATE", obj) // no such object
	rc.wantError(t, "ERR")
	rc.sendArgs(t, "UNSUBSCRIBE", "99")
	rc.wantError(t, "ERR")
	rc.sendArgs(t, "GET", "424242")
	if f := rc.read(t); f.Type != server.TBulk || !f.Null {
		t.Fatalf("GET miss reply %+v, want null bulk", f)
	}

	// Durable features on a server without a cursor path.
	rc.sendArgs(t, "SUBSCRIBE", "KNN", "1", "0.5", obj, "NAME", "n")
	rc.wantError(t, "NODURABLE")
	rc.sendArgs(t, "RESUME", "n", "0", "0", "KNN", "1", "0.5", obj)
	rc.wantError(t, "NODURABLE")

	rc.sendLine(t, "PING\r\n")
	if f := rc.read(t); f.Type != server.TSimple || f.Str != "PONG" {
		t.Fatalf("connection unusable after error replies: %+v", f)
	}
}

// TestSubscribeCursorMismatch: re-creating a named subscription with a
// different predicate than its durable cursor remembers is refused,
// and FRESH overrides by discarding the cursor.
func TestSubscribeCursorMismatch(t *testing.T) {
	db := testDB(13, 12)
	store, err := query.NewStore(db, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, store, server.Options{
		CursorPath: filepath.Join(t.TempDir(), "cursor"),
	})
	cl := dial(t, addr)
	q := uncertain.PointObject(-1, db[0].Samples[0])

	sub, err := cl.Subscribe(client.SubOptions{Kind: "KNN", K: 2, Tau: 0.2, Q: q, Name: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Unsubscribe(sub); err != nil {
		t.Fatal(err)
	}
	drainAll(t, sub)

	// The session retires asynchronously after its terminal push; a
	// SUBSCRIBE that races it draws BUSY, then the cursor mismatch.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = cl.Subscribe(client.SubOptions{Kind: "KNN", K: 3, Tau: 0.2, Q: q, Name: "m"})
		if !client.IsCode(err, "BUSY") || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !client.IsCode(err, "CURSORMISMATCH") {
		t.Fatalf("predicate change accepted: err=%v", err)
	}

	sub2, err := cl.Subscribe(client.SubOptions{
		Kind: "KNN", K: 3, Tau: 0.2, Q: q, Name: "m", Fresh: true})
	if err != nil {
		t.Fatalf("FRESH re-subscribe: %v", err)
	}
	if sub2.Mode != server.ModeFull {
		t.Fatalf("FRESH mode %q, want %q", sub2.Mode, server.ModeFull)
	}
	if err := cl.Unsubscribe(sub2); err != nil {
		t.Fatal(err)
	}
	drainAll(t, sub2)
}

package server_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"probprune/internal/cq"
	"probprune/internal/query"
	"probprune/internal/server"
	"probprune/internal/server/client"
	"probprune/internal/uncertain"
)

// The server↔in-process equivalence tier: one seeded mutation+query
// trace runs simultaneously against a bare in-process Store (the
// reference) and live servers over both backend types, through real
// loopback connections. Every query answer must be bit-identical to
// the reference after the wire round trip, every subscription event
// stream identical to an in-process cq subscription on the reference —
// the server adds a wire, never semantics.

// candidate is one live server under test.
type candidate struct {
	name    string
	backend server.Backend
	cl      *client.Client
	knnSub  *client.Sub
	rknnSub *client.Sub
}

func normCQEvents(evs []cq.Event) []evNorm {
	out := make([]evNorm, len(evs))
	for i, ev := range evs {
		out[i] = evNorm{
			Kind:    ev.Kind.String(),
			Version: ev.Version,
			Obj:     string(server.EncodeObject(ev.Object)),
			Match: server.Match{
				ID: ev.Object.ID, LB: ev.Match.Prob.LB, UB: ev.Match.Prob.UB,
				IsResult: ev.Match.IsResult, Decided: ev.Match.Decided, Iterations: ev.Match.Iterations,
			},
		}
	}
	return out
}

// stripEnd removes the trailing server-level EvEnd marker (the cq
// reference stream has no wire-level terminal event).
func stripEnd(t *testing.T, evs []server.EventMsg) []server.EventMsg {
	t.Helper()
	if len(evs) == 0 || evs[len(evs)-1].Kind != server.EvEnd {
		t.Fatalf("stream did not end with the terminal push: %+v", evs)
	}
	return evs[:len(evs)-1]
}

// collectCQ drains a cq subscription in the background until it closes.
func collectCQ(sub *cq.Subscription) func() []cq.Event {
	ch := make(chan []cq.Event, 1)
	go func() {
		var evs []cq.Event
		for ev := range sub.Events() {
			evs = append(evs, ev)
		}
		ch <- evs
	}()
	return func() []cq.Event { return <-ch }
}

func TestServerEquivalence(t *testing.T) {
	for _, seed := range []int64{21, 22} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runEquivalence(t, seed) })
	}
}

func runEquivalence(t *testing.T, seed int64) {
	const n = 24
	ctx := context.Background()

	// Reference: bare Store plus an in-process monitor.
	ref, err := query.NewStore(testDB(seed, n), testOpts)
	if err != nil {
		t.Fatal(err)
	}
	refMon := cq.NewMonitor(ref, cq.Options{Buffer: 4096, Policy: cq.DisconnectSlow})
	defer refMon.Close()

	// Standing predicates, fixed at the initial version.
	db := testDB(seed, n)
	subQ, err := uncertain.NewObject(0, db[0].Samples)
	if err != nil {
		t.Fatal(err)
	}
	const subK, subTau = 3, 0.2
	const rkK, rkTau = 2, 0.3

	refKNN, err := refMon.SubscribeKNN(subQ, subK, subTau)
	if err != nil {
		t.Fatal(err)
	}
	refRKNN, err := refMon.SubscribeRKNN(subQ, rkK, rkTau)
	if err != nil {
		t.Fatal(err)
	}
	knnDone, rknnDone := collectCQ(refKNN), collectCQ(refRKNN)

	// Candidates: live servers over both backend types.
	store, err := query.NewStore(testDB(seed, n), testOpts)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := query.NewShardedStore(testDB(seed, n), query.ShardedOptions{Shards: 4}, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	cands := []*candidate{
		{name: "store", backend: store},
		{name: "sharded4", backend: sharded},
	}
	for _, cd := range cands {
		_, addr := startServer(t, cd.backend, server.Options{})
		cd.cl = dial(t, addr)
		if cd.knnSub, err = cd.cl.Subscribe(client.SubOptions{Kind: "KNN", K: subK, Tau: subTau, Q: subQ}); err != nil {
			t.Fatalf("%s: knn subscribe: %v", cd.name, err)
		}
		if cd.rknnSub, err = cd.cl.Subscribe(client.SubOptions{Kind: "RKNN", K: rkK, Tau: rkTau, Q: subQ}); err != nil {
			t.Fatalf("%s: rknn subscribe: %v", cd.name, err)
		}
	}

	checkMatches := func(op string, want []query.Match, got [][]server.Match) {
		t.Helper()
		w := mustWire(t, want)
		for i, g := range got {
			if !reflect.DeepEqual(g, w) {
				t.Fatalf("%s: %s answer differs from reference:\n got %+v\nwant %+v", cands[i].name, op, g, w)
			}
		}
	}

	// The seeded trace. Mutations go to the reference in process and to
	// each server over the wire; queries are compared on the spot.
	rng := rand.New(rand.NewSource(seed * 1009))
	ids := make([]int, 0, n)
	for i := 1; i <= n; i++ {
		ids = append(ids, i)
	}
	nextID := 1000
	for op := 0; op < 60; op++ {
		switch c := rng.Intn(10); {
		case c <= 2: // insert
			o := testObj(rng, nextID)
			nextID++
			if err := ref.Insert(o); err != nil {
				t.Fatalf("op %d: ref insert: %v", op, err)
			}
			for _, cd := range cands {
				if err := cd.cl.Insert(o); err != nil {
					t.Fatalf("op %d: %s insert: %v", op, cd.name, err)
				}
			}
			ids = append(ids, o.ID)
		case c <= 4: // update
			id := ids[rng.Intn(len(ids))]
			o := testObj(rng, id)
			if err := ref.Update(o); err != nil {
				t.Fatalf("op %d: ref update: %v", op, err)
			}
			for _, cd := range cands {
				if err := cd.cl.Update(o); err != nil {
					t.Fatalf("op %d: %s update: %v", op, cd.name, err)
				}
			}
		case c == 5 && len(ids) > 8: // delete
			i := rng.Intn(len(ids))
			id := ids[i]
			ids = append(ids[:i], ids[i+1:]...)
			if found, err := ref.DeleteErr(id); err != nil || !found {
				t.Fatalf("op %d: ref delete: found=%v err=%v", op, found, err)
			}
			for _, cd := range cands {
				if found, err := cd.cl.Delete(id); err != nil || !found {
					t.Fatalf("op %d: %s delete: found=%v err=%v", op, cd.name, found, err)
				}
			}
		case c == 6: // threshold kNN
			q := testObj(rng, 0)
			k, tau := 1+rng.Intn(5), rng.Float64()
			want, err := ref.KNNCtx(ctx, q, k, tau)
			if err != nil {
				t.Fatal(err)
			}
			got := make([][]server.Match, len(cands))
			for i, cd := range cands {
				if got[i], err = cd.cl.KNN(q, k, tau); err != nil {
					t.Fatalf("op %d: %s knn: %v", op, cd.name, err)
				}
			}
			checkMatches("knn", want, got)
		case c == 7: // reverse kNN
			q := testObj(rng, 0)
			k, tau := 1+rng.Intn(3), rng.Float64()
			want, err := ref.RKNNCtx(ctx, q, k, tau)
			if err != nil {
				t.Fatal(err)
			}
			got := make([][]server.Match, len(cands))
			for i, cd := range cands {
				if got[i], err = cd.cl.RKNN(q, k, tau); err != nil {
					t.Fatalf("op %d: %s rknn: %v", op, cd.name, err)
				}
			}
			checkMatches("rknn", want, got)
		case c == 8: // top-m kNN and inverse ranking
			q := testObj(rng, 0)
			k, m := 1+rng.Intn(4), 1+rng.Intn(3)
			want, err := ref.TopKNNCtx(ctx, q, k, m)
			if err != nil {
				t.Fatal(err)
			}
			got := make([][]server.Match, len(cands))
			for i, cd := range cands {
				if got[i], err = cd.cl.TopKNN(q, k, m); err != nil {
					t.Fatalf("op %d: %s topknn: %v", op, cd.name, err)
				}
			}
			checkMatches("topknn", want, got)

			b, r := testObj(rng, 0), testObj(rng, 0)
			wantInv, err := server.DecodeRankDist(server.EncodeRankDist(ref.InverseRank(b, r)))
			if err != nil {
				t.Fatal(err)
			}
			for _, cd := range cands {
				gotInv, err := cd.cl.InvRank(b, r)
				if err != nil {
					t.Fatalf("op %d: %s invrank: %v", op, cd.name, err)
				}
				if !reflect.DeepEqual(gotInv, wantInv) {
					t.Fatalf("op %d: %s invrank differs from reference", op, cd.name)
				}
			}
		case c == 9: // one-snapshot batch
			reqs := make([]client.BatchReq, 1+rng.Intn(3))
			qreqs := make([]query.KNNRequest, len(reqs))
			for i := range reqs {
				q := testObj(rng, 0)
				reqs[i] = client.BatchReq{Q: q, K: 1 + rng.Intn(4), Tau: rng.Float64()}
				qreqs[i] = query.KNNRequest{Q: q, K: reqs[i].K, Tau: reqs[i].Tau}
			}
			want, err := ref.BatchKNN(ctx, qreqs)
			if err != nil {
				t.Fatal(err)
			}
			for _, cd := range cands {
				got, err := cd.cl.BatchKNN(reqs)
				if err != nil {
					t.Fatalf("op %d: %s batch: %v", op, cd.name, err)
				}
				if len(got) != len(want) {
					t.Fatalf("op %d: %s batch: %d results, want %d", op, cd.name, len(got), len(want))
				}
				for i := range want {
					if !reflect.DeepEqual(got[i], mustWire(t, want[i])) {
						t.Fatalf("op %d: %s batch result %d differs from reference", op, cd.name, i)
					}
				}
			}
		}
	}

	// Full-state sweep: every backend converged to the reference state.
	v := ref.Version()
	for _, cd := range cands {
		if gv, err := cd.cl.Version(); err != nil || gv != v {
			t.Fatalf("%s: version %d, %v; want %d", cd.name, gv, err, v)
		}
		if gl, err := cd.cl.Len(); err != nil || gl != ref.Len() {
			t.Fatalf("%s: len %d, %v; want %d", cd.name, gl, err, ref.Len())
		}
		for _, id := range ids {
			want, ok := ref.Get(id)
			if !ok {
				t.Fatalf("reference lost object %d", id)
			}
			got, ok, err := cd.cl.Get(id)
			if err != nil || !ok {
				t.Fatalf("%s: get %d: ok=%v err=%v", cd.name, id, ok, err)
			}
			sameObject(t, got, want, fmt.Sprintf("%s object %d", cd.name, id))
		}
	}

	// Event-stream equivalence: drain everything, then compare whole
	// streams against the in-process cq reference.
	for _, cd := range cands {
		if _, err := cd.cl.WaitVersion(v); err != nil {
			t.Fatalf("%s: waitversion: %v", cd.name, err)
		}
	}
	if err := refMon.WaitVersion(ctx, v); err != nil {
		t.Fatal(err)
	}
	refKNN.Cancel()
	refRKNN.Cancel()
	wantKNN, wantRKNN := normCQEvents(knnDone()), normCQEvents(rknnDone())
	if len(wantKNN) == 0 {
		t.Fatal("trace generated no KNN subscription events; the equivalence check is vacuous")
	}
	for _, cd := range cands {
		if err := cd.cl.Unsubscribe(cd.knnSub); err != nil {
			t.Fatalf("%s: unsubscribe: %v", cd.name, err)
		}
		if err := cd.cl.Unsubscribe(cd.rknnSub); err != nil {
			t.Fatalf("%s: unsubscribe: %v", cd.name, err)
		}
		gotKNN := normEvents(stripEnd(t, drainAll(t, cd.knnSub)))
		gotRKNN := normEvents(stripEnd(t, drainAll(t, cd.rknnSub)))
		if !reflect.DeepEqual(gotKNN, wantKNN) {
			t.Fatalf("%s: KNN event stream differs from in-process reference:\n got %+v\nwant %+v",
				cd.name, gotKNN, wantKNN)
		}
		if !reflect.DeepEqual(gotRKNN, wantRKNN) {
			t.Fatalf("%s: RKNN event stream differs from in-process reference:\n got %+v\nwant %+v",
				cd.name, gotRKNN, wantRKNN)
		}
	}

	// Observability sweep: every command the trace exercised left
	// non-zero dispatch counters, and the query engine counted work.
	for _, cd := range cands {
		st, err := cd.cl.Stats()
		if err != nil {
			t.Fatalf("%s: stats: %v", cd.name, err)
		}
		for _, key := range []string{
			"server.cmd.knn.calls", "server.cmd.rknn.calls",
			"server.cmd.topknn.calls", "server.cmd.invrank.calls",
			"server.cmd.batch.calls", "server.cmd.get.calls",
			"server.cmd.subscribe.calls", "server.cmd.unsubscribe.calls",
			"server.pushed", "query.candidates", "query.knn.latency.count",
			"cq.events",
		} {
			if st[key] == 0 {
				t.Errorf("%s: STATS %s == 0 after a full equivalence run", cd.name, key)
			}
		}
	}
}

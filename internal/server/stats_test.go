package server_test

import (
	"testing"

	"probprune/internal/query"
	"probprune/internal/server"
	"probprune/internal/server/client"
	"probprune/internal/uncertain"
)

// TestStatsCommand: STATS returns the flat key/value map with live
// dispatch counters, backend query metrics and cq stats; error replies
// count into the per-command error bucket.
func TestStatsCommand(t *testing.T) {
	db := testDB(7, 16)
	store, err := query.NewStore(db, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, store, server.Options{})
	cl := dial(t, addr)

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	q, err := uncertain.NewObject(0, db[0].Samples)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.KNN(q, 3, 0.2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Get(-12345); err != nil { // miss, not an error
		t.Fatal(err)
	}
	if _, err := cl.TopKNN(q, 0, 0); err == nil { // invalid: error reply
		t.Log("TOPKNN 0 0 unexpectedly succeeded; error counter check skipped")
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]int64{
		"server.cmd.ping.calls":         1,
		"server.cmd.knn.calls":          1,
		"server.cmd.get.calls":          1,
		"server.conns.accepted":         1,
		"server.conns.open":             1,
		"query.knn.latency.count":       1,
		"query.candidates":              1,
		"server.cmd.knn.latency.p99_ns": 1,
	}
	for key, min := range checks {
		if st[key] < min {
			t.Errorf("STATS %s = %d, want >= %d", key, st[key], min)
		}
	}
	if _, ok := st["cq.changes"]; !ok {
		t.Error("STATS has no cq.changes key")
	}
	if _, ok := st["server.push.backlog"]; !ok {
		t.Error("STATS has no server.push.backlog key")
	}
	// The single-store backend exposes no journal: no wal.* keys.
	if _, ok := st["wal.appends"]; ok {
		t.Error("volatile store reported WAL metrics")
	}
	// A second STATS sees the first one's dispatch counter.
	st2, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2["server.cmd.stats.calls"] < 1 {
		t.Errorf("server.cmd.stats.calls = %d after a prior STATS", st2["server.cmd.stats.calls"])
	}
}

// TestShedAccounting: under PolicyDropOldest, the cumulative lost count
// a RESUME reports must equal the server-wide shed counter STATS
// exposes — the two views of shedding may never drift apart.
func TestShedAccounting(t *testing.T) {
	db := testDB(10, 20)
	store, err := query.NewStore(db, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	q, err := uncertain.NewObject(0, db[1].Samples)
	if err != nil {
		t.Fatal(err)
	}
	const k, tau = 3, 0.25
	wantIDs := initialResultIDs(t, store, q, k, tau)
	if len(wantIDs) == 0 {
		t.Fatal("test setup: empty initial result set")
	}
	E := len(wantIDs)
	_, addr := startServer(t, store, server.Options{CursorPath: t.TempDir() + "/cursor", Retain: E})
	m := dial(t, addr)
	named := client.SubOptions{Kind: "KNN", K: k, Tau: tau, Q: q, Name: "shed-acct", Policy: "dropoldest"}

	ac, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ac.Subscribe(named)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	aInit := drainN(t, a, E)
	member := aInit[0].Object.ID
	memberObj, _ := store.Get(member)
	ac.Close() // park; the ring keeps filling while nobody drains

	for i := 0; i < E+4; i++ {
		if found, err := m.Delete(member); err != nil || !found {
			t.Fatalf("delete %d: found=%v err=%v", i, found, err)
		}
		if err := m.Insert(memberObj); err != nil {
			t.Fatalf("reinsert %d: %v", i, err)
		}
	}
	if _, err := m.WaitVersion(store.Version()); err != nil {
		t.Fatal(err)
	}

	bc := dial(t, addr)
	b, err := bc.Resume("shed-acct", 0, 0, named)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if b.Lost == 0 {
		t.Fatal("dropoldest shed nothing despite churn far past the ring")
	}
	st, err := bc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if shed := st["server.shed"]; shed != int64(b.Lost) {
		t.Fatalf("RESUME reported %d lost events, STATS server.shed = %d", b.Lost, shed)
	}
	if st["server.slow_kills"] != 0 {
		t.Fatalf("slow_kills = %d under dropoldest, want 0", st["server.slow_kills"])
	}
}

package server

import (
	"runtime"
	"strings"
	"time"

	"probprune/internal/obs"
	"probprune/internal/query"
	"probprune/internal/wal"
)

// commandNames is every command dispatch knows. The metric set is built
// once at server construction so the dispatch hot path is a map read
// plus atomic updates — no allocation, no lock.
var commandNames = []string{
	"PING", "VERSION", "LEN", "GET", "INSERT", "UPDATE", "DELETE",
	"KNN", "RKNN", "TOPKNN", "INVRANK", "BATCH", "WAITVERSION",
	"SUBSCRIBE", "RESUME", "UNSUBSCRIBE", "STATS", "EVENTS",
}

// cmdMetrics are one command's dispatch counters.
type cmdMetrics struct {
	calls   obs.Counter
	errors  obs.Counter // error-frame replies (codeBadArg, codeErr, ...)
	latency obs.Histogram
}

// srvMetrics are the server-side counters: connection lifecycle,
// per-command dispatch, and the push plane. Everything is atomic and
// allocation-free on the record side; the typed point snapshot flattens
// it on demand.
type srvMetrics struct {
	connsAccepted obs.Counter
	connsOpen     obs.Gauge
	protoErrors   obs.Counter // framing/command-shape violations that end a connection
	pushed        obs.Counter // event frames enqueued to subscriber connections
	shed          obs.Counter // events discarded by PolicyDropOldest rings
	slowKills     obs.Counter // subscriptions terminated by PolicyDisconnect backpressure
	cmds          map[string]*cmdMetrics
	unknown       *cmdMetrics // every unrecognized command shares one bucket
}

func newSrvMetrics() *srvMetrics {
	m := &srvMetrics{
		cmds:    make(map[string]*cmdMetrics, len(commandNames)),
		unknown: &cmdMetrics{},
	}
	for _, name := range commandNames {
		m.cmds[name] = &cmdMetrics{}
	}
	return m
}

// cmd returns the metric bucket for an already-uppercased command name.
func (m *srvMetrics) cmd(name string) *cmdMetrics {
	if cm := m.cmds[name]; cm != nil {
		return cm
	}
	return m.unknown
}

// points renders the server-side metrics as typed points under the
// "server." prefix.
func (m *srvMetrics) points() []obs.MetricPoint {
	pts := make([]obs.MetricPoint, 0, 8+3*len(m.cmds))
	pts = append(pts,
		obs.MetricPoint{Name: "server.conns.accepted", Kind: obs.KindCounter, Value: int64(m.connsAccepted.Load())},
		obs.MetricPoint{Name: "server.conns.open", Kind: obs.KindGauge, Value: m.connsOpen.Load()},
		obs.MetricPoint{Name: "server.proto_errors", Kind: obs.KindCounter, Value: int64(m.protoErrors.Load())},
		obs.MetricPoint{Name: "server.pushed", Kind: obs.KindCounter, Value: int64(m.pushed.Load())},
		obs.MetricPoint{Name: "server.shed", Kind: obs.KindCounter, Value: int64(m.shed.Load())},
		obs.MetricPoint{Name: "server.slow_kills", Kind: obs.KindCounter, Value: int64(m.slowKills.Load())},
		obs.MetricPoint{Name: "server.cmd.unknown.calls", Kind: obs.KindCounter, Value: int64(m.unknown.calls.Load())},
	)
	for name, cm := range m.cmds {
		prefix := "server.cmd." + strings.ToLower(name)
		pts = append(pts,
			obs.MetricPoint{Name: prefix + ".calls", Kind: obs.KindCounter, Value: int64(cm.calls.Load())},
			obs.MetricPoint{Name: prefix + ".errors", Kind: obs.KindCounter, Value: int64(cm.errors.Load())},
			obs.MetricPoint{Name: prefix + ".latency", Kind: obs.KindTimeHist, Hist: cm.latency.Snapshot()},
		)
	}
	return pts
}

// MetricPoints assembles the full typed metric snapshot every surfacing
// layer shares: server-side counters, session-registry gauges, cq
// maintenance stats, the backend's query-engine and WAL metrics, and
// process runtime gauges sampled at scrape time. The result is sorted
// by name — STATS flattens it, the debug endpoint renders it as JSON,
// and the Prometheus exposition renders it as text, all from this one
// snapshot path.
func (s *Server) MetricPoints() []obs.MetricPoint {
	pts := s.metrics.points()

	s.mu.Lock()
	var parked, backlog int64
	sessions := int64(len(s.sessions))
	for _, st := range s.sessions {
		st.mu.Lock()
		if st.attached == nil {
			parked++
		}
		backlog += int64(len(st.ring) - st.delivered)
		st.mu.Unlock()
	}
	s.mu.Unlock()
	pts = append(pts,
		obs.MetricPoint{Name: "server.sessions", Kind: obs.KindGauge, Value: sessions},
		obs.MetricPoint{Name: "server.sessions.parked", Kind: obs.KindGauge, Value: parked},
		obs.MetricPoint{Name: "server.push.backlog", Kind: obs.KindGauge, Value: backlog},
	)

	cs := s.mon.Stats()
	pts = append(pts,
		obs.MetricPoint{Name: "cq.changes", Kind: obs.KindCounter, Value: int64(cs.Changes)},
		obs.MetricPoint{Name: "cq.woken", Kind: obs.KindCounter, Value: int64(cs.Woken)},
		obs.MetricPoint{Name: "cq.runs", Kind: obs.KindCounter, Value: int64(cs.Runs)},
		obs.MetricPoint{Name: "cq.setup_runs", Kind: obs.KindCounter, Value: int64(cs.SetupRuns)},
		obs.MetricPoint{Name: "cq.saved", Kind: obs.KindCounter, Value: int64(cs.Saved)},
		obs.MetricPoint{Name: "cq.events", Kind: obs.KindCounter, Value: int64(cs.Events)},
		obs.MetricPoint{Name: "cq.lost", Kind: obs.KindCounter, Value: int64(cs.Lost)},
		obs.MetricPoint{Name: "cq.dropped", Kind: obs.KindCounter, Value: int64(cs.Dropped)},
		obs.MetricPoint{Name: "cq.cursor.saves", Kind: obs.KindCounter, Value: int64(cs.CursorSaves)},
		obs.MetricPoint{Name: "cq.cursor.save_failures", Kind: obs.KindCounter, Value: int64(cs.CursorSaveFailures)},
		obs.MetricPoint{Name: "cq.cursor.delta_bytes", Kind: obs.KindCounter, Value: int64(cs.CursorDeltaBytes)},
		obs.MetricPoint{Name: "cq.cursor.compactions", Kind: obs.KindCounter, Value: int64(cs.CursorCompactions)},
	)

	if b, ok := s.backend.(interface{ Metrics() *query.Metrics }); ok {
		pts = append(pts, b.Metrics().Registry().Points()...)
	}
	if b, ok := s.backend.(interface {
		WALStats() (wal.MetricsSnapshot, bool)
	}); ok {
		if ws, have := b.WALStats(); have {
			pts = append(pts, ws.Points()...)
		}
	}

	pts = append(pts, s.runtimePoints()...)
	obs.SortPoints(pts)
	return pts
}

// runtimePoints samples the serving process itself: goroutines, heap,
// GC activity, and the identity gauges the VERSION reply carries.
// Sampled only at scrape time — recording paths never touch these.
func (s *Server) runtimePoints() []obs.MetricPoint {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return []obs.MetricPoint{
		{Name: "runtime.goroutines", Kind: obs.KindGauge, Value: int64(runtime.NumGoroutine())},
		{Name: "runtime.heap_alloc_bytes", Kind: obs.KindGauge, Value: int64(ms.HeapAlloc)},
		{Name: "runtime.heap_objects", Kind: obs.KindGauge, Value: int64(ms.HeapObjects)},
		{Name: "runtime.gc_cycles", Kind: obs.KindCounter, Value: int64(ms.NumGC)},
		{Name: "runtime.gc_pause_total_ns", Kind: obs.KindCounter, Value: int64(ms.PauseTotalNs)},
		{Name: "server.gomaxprocs", Kind: obs.KindGauge, Value: int64(runtime.GOMAXPROCS(0))},
		{Name: "server.uptime_seconds", Kind: obs.KindGauge, Value: int64(time.Since(s.started) / time.Second)},
	}
}

// StatsMap flattens the typed snapshot into the flat name → value map
// the STATS command and the debug endpoint's JSON format serve.
func (s *Server) StatsMap() map[string]int64 {
	return obs.PointsMap(s.MetricPoints())
}

// cmdStats serves STATS: the full metric map as a flat array of
// alternating bulk-string keys and integer values, in ascending key
// order. A flat array keeps the reply inside the existing frame
// vocabulary — no new frame type for clients or fuzzers to learn.
func (c *conn) cmdStats(rest [][]byte) Frame {
	if len(rest) != 0 {
		return errf(codeBadArg, "STATS takes no arguments")
	}
	m := c.srv.StatsMap()
	keys := obs.SortedKeys(m)
	elems := make([]Frame, 0, 2*len(keys))
	for _, k := range keys {
		elems = append(elems, bulkStr(k), intf(m[k]))
	}
	return array(elems...)
}

package server

import (
	"strings"

	"probprune/internal/obs"
	"probprune/internal/query"
	"probprune/internal/wal"
)

// commandNames is every command dispatch knows. The metric set is built
// once at server construction so the dispatch hot path is a map read
// plus atomic updates — no allocation, no lock.
var commandNames = []string{
	"PING", "VERSION", "LEN", "GET", "INSERT", "UPDATE", "DELETE",
	"KNN", "RKNN", "TOPKNN", "INVRANK", "BATCH", "WAITVERSION",
	"SUBSCRIBE", "RESUME", "UNSUBSCRIBE", "STATS",
}

// cmdMetrics are one command's dispatch counters.
type cmdMetrics struct {
	calls   obs.Counter
	errors  obs.Counter // error-frame replies (codeBadArg, codeErr, ...)
	latency obs.Histogram
}

// srvMetrics are the server-side counters: connection lifecycle,
// per-command dispatch, and the push plane. Everything is atomic and
// allocation-free on the record side; StatsMap flattens it on demand.
type srvMetrics struct {
	connsAccepted obs.Counter
	connsOpen     obs.Gauge
	protoErrors   obs.Counter // framing/command-shape violations that end a connection
	pushed        obs.Counter // event frames enqueued to subscriber connections
	shed          obs.Counter // events discarded by PolicyDropOldest rings
	slowKills     obs.Counter // subscriptions terminated by PolicyDisconnect backpressure
	cmds          map[string]*cmdMetrics
	unknown       *cmdMetrics // every unrecognized command shares one bucket
}

func newSrvMetrics() *srvMetrics {
	m := &srvMetrics{
		cmds:    make(map[string]*cmdMetrics, len(commandNames)),
		unknown: &cmdMetrics{},
	}
	for _, name := range commandNames {
		m.cmds[name] = &cmdMetrics{}
	}
	return m
}

// cmd returns the metric bucket for an already-uppercased command name.
func (m *srvMetrics) cmd(name string) *cmdMetrics {
	if cm := m.cmds[name]; cm != nil {
		return cm
	}
	return m.unknown
}

// addTo flattens the server-side metrics under the "server." prefix.
func (m *srvMetrics) addTo(out map[string]int64) {
	out["server.conns.accepted"] = int64(m.connsAccepted.Load())
	out["server.conns.open"] = m.connsOpen.Load()
	out["server.proto_errors"] = int64(m.protoErrors.Load())
	out["server.pushed"] = int64(m.pushed.Load())
	out["server.shed"] = int64(m.shed.Load())
	out["server.slow_kills"] = int64(m.slowKills.Load())
	for name, cm := range m.cmds {
		prefix := "server.cmd." + strings.ToLower(name)
		out[prefix+".calls"] = int64(cm.calls.Load())
		out[prefix+".errors"] = int64(cm.errors.Load())
		obs.AddHist(out, prefix+".latency", cm.latency.Snapshot())
	}
	out["server.cmd.unknown.calls"] = int64(m.unknown.calls.Load())
}

// StatsMap assembles the full metric map the STATS command and the
// debug endpoint serve: server-side counters, session-registry gauges,
// cq maintenance stats, and — when the backend exposes them — query
// engine metrics and WAL durability metrics.
func (s *Server) StatsMap() map[string]int64 {
	out := make(map[string]int64, 256)
	s.metrics.addTo(out)

	s.mu.Lock()
	var parked, backlog int64
	sessions := int64(len(s.sessions))
	for _, st := range s.sessions {
		st.mu.Lock()
		if st.attached == nil {
			parked++
		}
		backlog += int64(len(st.ring) - st.delivered)
		st.mu.Unlock()
	}
	s.mu.Unlock()
	out["server.sessions"] = sessions
	out["server.sessions.parked"] = parked
	out["server.push.backlog"] = backlog

	cs := s.mon.Stats()
	out["cq.changes"] = int64(cs.Changes)
	out["cq.woken"] = int64(cs.Woken)
	out["cq.runs"] = int64(cs.Runs)
	out["cq.setup_runs"] = int64(cs.SetupRuns)
	out["cq.saved"] = int64(cs.Saved)
	out["cq.events"] = int64(cs.Events)
	out["cq.lost"] = int64(cs.Lost)
	out["cq.dropped"] = int64(cs.Dropped)
	out["cq.cursor.saves"] = int64(cs.CursorSaves)
	out["cq.cursor.save_failures"] = int64(cs.CursorSaveFailures)
	out["cq.cursor.delta_bytes"] = int64(cs.CursorDeltaBytes)
	out["cq.cursor.compactions"] = int64(cs.CursorCompactions)

	if b, ok := s.backend.(interface{ Metrics() *query.Metrics }); ok {
		if qm := b.Metrics(); qm != nil {
			for k, v := range qm.Snapshot() {
				out[k] = v
			}
		}
	}
	if b, ok := s.backend.(interface {
		WALStats() (wal.MetricsSnapshot, bool)
	}); ok {
		if ws, have := b.WALStats(); have {
			ws.AddTo(out)
		}
	}
	return out
}

// cmdStats serves STATS: the full metric map as a flat array of
// alternating bulk-string keys and integer values, in ascending key
// order. A flat array keeps the reply inside the existing frame
// vocabulary — no new frame type for clients or fuzzers to learn.
func (c *conn) cmdStats(rest [][]byte) Frame {
	if len(rest) != 0 {
		return errf(codeBadArg, "STATS takes no arguments")
	}
	m := c.srv.StatsMap()
	keys := obs.SortedKeys(m)
	elems := make([]Frame, 0, 2*len(keys))
	for _, k := range keys {
		elems = append(elems, bulkStr(k), intf(m[k]))
	}
	return array(elems...)
}

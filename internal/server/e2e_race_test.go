package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"probprune/internal/query"
	"probprune/internal/server"
	"probprune/internal/server/client"
	"probprune/internal/uncertain"
)

// tryNext pulls one event with a timeout instead of failing, so
// subscriber loops can interleave waiting with disconnect decisions.
func tryNext(sub *client.Sub, d time.Duration) (server.EventMsg, bool) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case ev, ok := <-sub.Events:
		return ev, ok
	case <-timer.C:
		return server.EventMsg{}, false
	}
}

// TestServerE2ERace is the end-to-end concurrency tier: one writer
// churns the store over the wire while many durable subscribers
// repeatedly consume, drop their connections mid-stream, and RESUME
// from their watermarks — interleaved with one-shot query clients.
// Every subscriber must observe a strictly ascending, gap-free event
// stream identical to an uninterrupted in-process reference, with
// Lost always zero — reconnection may never lose or duplicate an
// event. Run under -race this also shakes the session registry,
// retention ring and dispatch paths for data races.
func TestServerE2ERace(t *testing.T) {
	const (
		n     = 16
		seed  = 31
		pairs = 60 // writer delete/reinsert pairs
		nSubs = 8
		nQry  = 3
	)
	db := testDB(seed, n)
	byID := make(map[int]*uncertain.Object, n)
	for _, o := range db {
		byID[o.ID] = o
	}
	store, err := query.NewStore(db, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, store, server.Options{
		CursorPath: filepath.Join(t.TempDir(), "cursor"),
		Retain:     1 << 15, // no eviction: Lost must stay 0 and GONE must never fire
	})

	rng := rand.New(rand.NewSource(seed))
	q, err := uncertain.NewObject(0, db[2].Samples)
	if err != nil {
		t.Fatal(err)
	}
	const k, tau = 3, 0.2
	v0 := store.Version()
	finalVer := v0 + 2*pairs // the writer is the only mutator

	// Uninterrupted in-process reference on the server's own monitor,
	// created before any mutation: every subscriber stream must equal it.
	refSub, err := srv.Monitor().SubscribeKNN(q, k, tau)
	if err != nil {
		t.Fatal(err)
	}
	refDone := collectCQ(refSub)

	var wg sync.WaitGroup
	writerDone := make(chan struct{})
	// Subscribers must all snapshot at v0, matching the reference, so
	// the writer holds fire until every SUBSCRIBE has been acked.
	var subsReady sync.WaitGroup
	subsReady.Add(nSubs)
	errs := make(chan error, nSubs+nQry+1)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Durable subscribers: consume, randomly drop the connection, resume.
	streams := make([][]server.EventMsg, nSubs)
	for s := 0; s < nSubs; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + s)))
			name := fmt.Sprintf("w%d", s)
			cl, err := client.Dial(addr)
			if err != nil {
				subsReady.Done()
				fail("sub %d: dial: %v", s, err)
				return
			}
			defer func() { cl.Close() }()
			sub, err := cl.Subscribe(client.SubOptions{Kind: "KNN", K: k, Tau: tau, Q: q, Name: name})
			subsReady.Done()
			if err != nil {
				fail("sub %d: subscribe: %v", s, err)
				return
			}
			if sub.Mode != server.ModeFull {
				fail("sub %d: initial mode %q, want full", s, sub.Mode)
				return
			}
			var evs []server.EventMsg
			var wmV uint64
			var wmID int
			deadline := time.Now().Add(60 * time.Second)
		consume:
			for {
				if time.Now().After(deadline) {
					fail("sub %d: timed out at watermark (%d,%d) with %d events, want version %d",
						s, wmV, wmID, len(evs), finalVer)
					return
				}
				select {
				case <-writerDone:
					// A single mutation can emit several events at one
					// version, so no event is a safe stop sentinel. Instead:
					// WaitVersion guarantees every event up to finalVer is in
					// the subscription buffers, after which UNSUBSCRIBE's
					// terminal push is ordered behind all of them.
					if _, err := cl.WaitVersion(finalVer); err != nil {
						fail("sub %d: waitversion: %v", s, err)
						return
					}
					break consume
				default:
				}
				ev, ok := tryNext(sub, 10*time.Millisecond)
				if !ok {
					if sub.Err() != nil {
						fail("sub %d: stream error: %v", s, sub.Err())
						return
					}
					continue
				}
				if ev.Kind == server.EvEnd {
					fail("sub %d: unexpected terminal event %q", s, ev.Reason)
					return
				}
				evs = append(evs, ev)
				wmV, wmID = ev.Version, ev.Object.ID
				if rng.Intn(6) == 0 { // drop the connection mid-stream
					cl.Close()
					cl, err = client.Dial(addr)
					if err != nil {
						fail("sub %d: redial: %v", s, err)
						return
					}
					// The abrupt close races the server noticing it: RESUME can
					// land before the old connection detached. BUSY is the
					// correct answer then — retry until the park happens.
					for {
						sub, err = cl.Resume(name, wmV, wmID, client.SubOptions{Kind: "KNN", K: k, Tau: tau, Q: q, Name: name})
						if !client.IsCode(err, "BUSY") || time.Now().After(deadline) {
							break
						}
						time.Sleep(5 * time.Millisecond)
					}
					if err != nil {
						fail("sub %d: resume at (%d,%d): %v", s, wmV, wmID, err)
						return
					}
					if sub.Mode != server.ModeContinue {
						fail("sub %d: resume mode %q, want continue", s, sub.Mode)
						return
					}
					if sub.Lost != 0 {
						fail("sub %d: resume lost %d events", s, sub.Lost)
						return
					}
				}
			}
			if err := cl.Unsubscribe(sub); err != nil {
				fail("sub %d: unsubscribe: %v", s, err)
				return
			}
			fin := drainAll(t, sub)
			if len(fin) == 0 || fin[len(fin)-1].Kind != server.EvEnd || fin[len(fin)-1].Reason != server.EndUnsubscribed {
				fail("sub %d: bad terminal event after unsubscribe: %+v", s, fin)
				return
			}
			streams[s] = append(evs, fin[:len(fin)-1]...)
		}(s)
	}

	// One-shot query clients churn the dispatch path concurrently.
	for qc := 0; qc < nQry; qc++ {
		wg.Add(1)
		go func(qc int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + qc)))
			cl, err := client.Dial(addr)
			if err != nil {
				fail("query client %d: dial: %v", qc, err)
				return
			}
			defer cl.Close()
			for i := 0; i < 40; i++ {
				qq := testObj(rng, 0)
				if _, err := cl.KNN(qq, 1+rng.Intn(4), rng.Float64()); err != nil {
					fail("query client %d: knn: %v", qc, err)
					return
				}
				if _, err := cl.Len(); err != nil {
					fail("query client %d: len: %v", qc, err)
					return
				}
			}
		}(qc)
	}

	// The debug endpoint serves /metrics concurrently with the load —
	// under -race this shakes StatsMap against dispatch, delivery and
	// the session registry.
	dbg := httptest.NewServer(srv.DebugHandler())
	defer dbg.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-writerDone:
				return
			default:
			}
			resp, err := http.Get(dbg.URL + "/metrics")
			if err != nil {
				fail("debug: %v", err)
				return
			}
			var m map[string]int64
			err = json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if err != nil {
				fail("debug: decode: %v", err)
				return
			}
			if _, ok := m["server.conns.open"]; !ok {
				fail("debug: metrics missing server.conns.open")
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// The writer: delete/reinsert pairs of existing objects, so the
	// store always returns to its initial state and the final pair —
	// pinned to a known result member — guarantees every subscriber a
	// sentinel event at exactly finalVer.
	member := -1
	for id := range initialResultIDs(t, store, q, k, tau) {
		if member < 0 || id < member {
			member = id
		}
	}
	if member < 0 {
		t.Fatal("query has no initial result set; sentinel construction impossible")
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(writerDone)
		subsReady.Wait()
		cl, err := client.Dial(addr)
		if err != nil {
			fail("writer: dial: %v", err)
			return
		}
		defer cl.Close()
		for p := 0; p < pairs; p++ {
			id := db[rng.Intn(n)].ID
			if p == pairs-1 {
				id = member
			}
			if found, err := cl.Delete(id); err != nil || !found {
				fail("writer: delete %d: found=%v err=%v", id, found, err)
				return
			}
			if err := cl.Insert(byID[id]); err != nil {
				fail("writer: reinsert %d: %v", id, err)
				return
			}
		}
	}()

	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// The reference saw everything up to finalVer; close it out.
	if v := store.Version(); v != finalVer {
		t.Fatalf("store at version %d after writer, want %d", v, finalVer)
	}
	ctxWait, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Monitor().WaitVersion(ctxWait, finalVer); err != nil {
		t.Fatal(err)
	}
	refSub.Cancel()
	want := normCQEvents(refDone())
	if len(want) == 0 {
		t.Fatal("reference stream empty; the race tier verified nothing")
	}

	for s, evs := range streams {
		assertAscending(t, evs)
		if got := normEvents(evs); !reflect.DeepEqual(got, want) {
			i := 0
			for i < len(got) && i < len(want) && reflect.DeepEqual(got[i], want[i]) {
				i++
			}
			show := func(ns []evNorm) string {
				if i >= len(ns) {
					return "<stream end>"
				}
				n := ns[i]
				return fmt.Sprintf("%s id=%d v=%d", n.Kind, n.Match.ID, n.Version)
			}
			t.Fatalf("sub %d: stream (%d events) differs from uninterrupted reference (%d events) at index %d:\n got %s\nwant %s",
				s, len(got), len(want), i, show(got), show(want))
		}
	}

	// Cursor-mismatch coverage: park one durable session, then try to
	// resume it with a different predicate.
	cl := dial(t, addr)
	sub, err := cl.Resume("w0", finalVer, member, client.SubOptions{Kind: "KNN", K: k, Tau: tau, Q: q, Name: "w0"})
	if err != nil {
		t.Fatalf("reattach w0: %v", err)
	}
	_ = sub
	cl.Close()
	time.Sleep(50 * time.Millisecond) // let the server park the session
	cl2 := dial(t, addr)
	if _, err := cl2.Resume("w0", finalVer, member, client.SubOptions{Kind: "KNN", K: k + 1, Tau: tau, Q: q, Name: "w0"}); !client.IsCode(err, "CURSORMISMATCH") {
		t.Fatalf("resume with changed K: got %v, want CURSORMISMATCH", err)
	}
	if _, err := cl2.Resume("w0", finalVer, member, client.SubOptions{Kind: "KNN", K: k, Tau: tau, Q: q, Name: "w0"}); err != nil {
		t.Fatalf("resume with original predicate after mismatch: %v", err)
	}
}

package server_test

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"probprune/internal/core"
	"probprune/internal/geom"
	"probprune/internal/query"
	"probprune/internal/server"
	"probprune/internal/server/client"
	"probprune/internal/uncertain"
)

var testOpts = core.Options{MaxIterations: 3}

// testObj builds a deterministic uncertain object: a small sample cloud
// around a random center in [0,8)².
func testObj(rng *rand.Rand, id int) *uncertain.Object {
	cx, cy := rng.Float64()*8, rng.Float64()*8
	samples := make([]geom.Point, 3+rng.Intn(3))
	for j := range samples {
		samples[j] = geom.Point{cx + rng.Float64()*0.6, cy + rng.Float64()*0.6}
	}
	o, err := uncertain.NewObject(id, samples)
	if err != nil {
		panic(err)
	}
	return o
}

func testDB(seed int64, n int) uncertain.Database {
	rng := rand.New(rand.NewSource(seed))
	db := make(uncertain.Database, 0, n)
	for i := 0; i < n; i++ {
		db = append(db, testObj(rng, i+1))
	}
	return db
}

// startServer serves backend on a loopback listener and tears
// everything down with the test.
func startServer(t *testing.T, backend server.Backend, opts server.Options) (*server.Server, string) {
	t.Helper()
	srv := server.New(backend, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// mustWire pushes in-process query matches through the wire codec —
// what a correct server must answer for those matches.
func mustWire(t *testing.T, ms []query.Match) []server.Match {
	t.Helper()
	dec, err := server.DecodeMatches(server.EncodeMatches(ms))
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

func sameObject(t *testing.T, got, want *uncertain.Object, label string) {
	t.Helper()
	if !bytes.Equal(server.EncodeObject(got), server.EncodeObject(want)) {
		t.Fatalf("%s: object %q, want %q", label, server.EncodeObject(got), server.EncodeObject(want))
	}
}

func TestServerCommands(t *testing.T) {
	store, err := query.NewStore(testDB(1, 24), testOpts)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, store, server.Options{})
	c := dial(t, addr)

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if n, err := c.Len(); err != nil || n != 24 {
		t.Fatalf("len = %d, %v; want 24", n, err)
	}
	if v, err := c.Version(); err != nil || v != store.Version() {
		t.Fatalf("version = %d, %v; want %d", v, err, store.Version())
	}

	want1, _ := store.Get(1)
	got1, ok, err := c.Get(1)
	if err != nil || !ok {
		t.Fatalf("get 1: ok=%v err=%v", ok, err)
	}
	sameObject(t, got1, want1, "get 1")
	if _, ok, err := c.Get(4242); err != nil || ok {
		t.Fatalf("get missing: ok=%v err=%v", ok, err)
	}

	rng := rand.New(rand.NewSource(99))
	nu := testObj(rng, 500)
	if err := c.Insert(nu); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if n, _ := c.Len(); n != 25 {
		t.Fatalf("len after insert = %d, want 25", n)
	}
	back, ok, err := c.Get(500)
	if err != nil || !ok {
		t.Fatalf("get 500: ok=%v err=%v", ok, err)
	}
	sameObject(t, back, nu, "insert round trip")

	nu2 := testObj(rng, 500)
	if err := c.Update(nu2); err != nil {
		t.Fatalf("update: %v", err)
	}
	back, _, _ = c.Get(500)
	sameObject(t, back, nu2, "update round trip")

	if found, err := c.Delete(500); err != nil || !found {
		t.Fatalf("delete: found=%v err=%v", found, err)
	}
	if found, err := c.Delete(500); err != nil || found {
		t.Fatalf("re-delete: found=%v err=%v", found, err)
	}
	if err := c.Insert(testObj(rng, 1)); !client.IsCode(err, "ERR") {
		t.Fatalf("duplicate insert error = %v, want ERR", err)
	}

	ctx := context.Background()
	q := testObj(rng, 0)
	wantKNN, err := store.KNNCtx(ctx, q, 4, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	gotKNN, err := c.KNN(q, 4, 0.25)
	if err != nil {
		t.Fatalf("knn: %v", err)
	}
	if !reflect.DeepEqual(gotKNN, mustWire(t, wantKNN)) {
		t.Fatalf("knn answer differs from in-process result")
	}

	wantR, err := store.RKNNCtx(ctx, q, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	gotR, err := c.RKNN(q, 2, 0.3)
	if err != nil {
		t.Fatalf("rknn: %v", err)
	}
	if !reflect.DeepEqual(gotR, mustWire(t, wantR)) {
		t.Fatalf("rknn answer differs from in-process result")
	}

	wantT, err := store.TopKNNCtx(ctx, q, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	gotT, err := c.TopKNN(q, 3, 2)
	if err != nil {
		t.Fatalf("topknn: %v", err)
	}
	if !reflect.DeepEqual(gotT, mustWire(t, wantT)) {
		t.Fatalf("topknn answer differs from in-process result")
	}

	b, r := testObj(rng, 600), testObj(rng, 601)
	wantInv, err := server.DecodeRankDist(server.EncodeRankDist(store.InverseRank(b, r)))
	if err != nil {
		t.Fatal(err)
	}
	gotInv, err := c.InvRank(b, r)
	if err != nil {
		t.Fatalf("invrank: %v", err)
	}
	if !reflect.DeepEqual(gotInv, wantInv) {
		t.Fatalf("invrank answer differs from in-process result")
	}

	reqs := []client.BatchReq{
		{Q: q, K: 3, Tau: 0.2},
		{Q: testObj(rng, 0), K: 5, Tau: 0.5},
		{Q: q, K: 3, Tau: 0.2},
	}
	qreqs := make([]query.KNNRequest, len(reqs))
	for i, rq := range reqs {
		qreqs[i] = query.KNNRequest{Q: rq.Q, K: rq.K, Tau: rq.Tau}
	}
	wantBatch, err := store.BatchKNN(ctx, qreqs)
	if err != nil {
		t.Fatal(err)
	}
	gotBatch, err := c.BatchKNN(reqs)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(gotBatch) != len(wantBatch) {
		t.Fatalf("batch: %d results, want %d", len(gotBatch), len(wantBatch))
	}
	for i := range wantBatch {
		if !reflect.DeepEqual(gotBatch[i], mustWire(t, wantBatch[i])) {
			t.Fatalf("batch result %d differs from in-process result", i)
		}
	}

	if v, err := c.WaitVersion(store.Version()); err != nil || v < store.Version() {
		t.Fatalf("waitversion = %d, %v; want >= %d", v, err, store.Version())
	}
}

func TestServerShardedBackend(t *testing.T) {
	store, err := query.NewShardedStore(testDB(2, 32), query.ShardedOptions{Shards: 4}, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, store, server.Options{})
	c := dial(t, addr)

	rng := rand.New(rand.NewSource(3))
	q := testObj(rng, 0)
	want, err := store.KNNCtx(context.Background(), q, 4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.KNN(q, 4, 0.2)
	if err != nil {
		t.Fatalf("knn: %v", err)
	}
	if !reflect.DeepEqual(got, mustWire(t, want)) {
		t.Fatalf("sharded knn answer differs from in-process result")
	}
	if err := c.Insert(testObj(rng, 900)); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if n, err := c.Len(); err != nil || n != 33 {
		t.Fatalf("len = %d, %v; want 33", n, err)
	}
}

// rawConn speaks the protocol without the client package, for inline
// commands and protocol-violation behavior.
type rawConn struct {
	nc net.Conn
	r  *server.Reader
}

func rawDial(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawConn{nc: nc, r: server.NewReader(nc)}
}

func (rc *rawConn) sendLine(t *testing.T, line string) {
	t.Helper()
	if _, err := rc.nc.Write([]byte(line)); err != nil {
		t.Fatal(err)
	}
}

func (rc *rawConn) read(t *testing.T) server.Frame {
	t.Helper()
	rc.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := rc.r.ReadFrame()
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	return f
}

func (rc *rawConn) wantError(t *testing.T, code string) {
	t.Helper()
	f := rc.read(t)
	got, _, ok := f.IsError()
	if !ok || got != code {
		t.Fatalf("reply %+v, want -%s error", f, code)
	}
}

func TestServerInlineAndErrors(t *testing.T) {
	store, err := query.NewStore(testDB(4, 8), testOpts)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, store, server.Options{})

	rc := rawDial(t, addr)
	rc.sendLine(t, "PING\r\n")
	if f := rc.read(t); f.Type != server.TSimple || f.Str != "PONG" {
		t.Fatalf("inline PING reply %+v", f)
	}
	rc.sendLine(t, "PING hello\r\n")
	if f := rc.read(t); f.Type != server.TBulk || string(f.Bulk) != "hello" {
		t.Fatalf("PING echo reply %+v", f)
	}
	rc.sendLine(t, "LEN\r\n")
	if f := rc.read(t); f.Type != server.TInt || f.Int != 8 {
		t.Fatalf("inline LEN reply %+v", f)
	}
	rc.sendLine(t, "BOGUS 1 2\r\n")
	rc.wantError(t, "UNKNOWN")
	rc.sendLine(t, "GET notanint\r\n")
	rc.wantError(t, "BADARG")
	rc.sendLine(t, "GET 1 2 3\r\n")
	rc.wantError(t, "BADARG")
	rc.sendLine(t, "KNN 0\r\n")
	rc.wantError(t, "BADARG")
	rc.sendLine(t, "SUBSCRIBE WALTZ 1 0.5 x\r\n")
	rc.wantError(t, "BADARG")
	// Still in sync after every error reply.
	rc.sendLine(t, "PING\r\n")
	if f := rc.read(t); f.Type != server.TSimple || f.Str != "PONG" {
		t.Fatalf("reply after errors %+v", f)
	}

	// A framing violation gets -PROTO and the connection closed.
	rc.sendLine(t, "$99999999999999\r\n")
	rc.wantError(t, "PROTO")
	rc.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := rc.r.ReadFrame(); err == nil {
		t.Fatal("connection survived a protocol violation")
	}

	// Non-array, non-inline frames are violations too.
	rc2 := rawDial(t, addr)
	rc2.sendLine(t, ":5\r\n")
	rc2.wantError(t, "PROTO")
	rc2.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := rc2.r.ReadFrame(); err == nil {
		t.Fatal("connection survived a non-command frame")
	}
}

// drainN reads exactly n events, failing on close or timeout.
func drainN(t *testing.T, sub *client.Sub, n int) []server.EventMsg {
	t.Helper()
	evs := make([]server.EventMsg, 0, n)
	timeout := time.After(10 * time.Second)
	for len(evs) < n {
		select {
		case ev, ok := <-sub.Events:
			if !ok {
				t.Fatalf("stream closed after %d/%d events (err %v)", len(evs), n, sub.Err())
			}
			evs = append(evs, ev)
		case <-timeout:
			t.Fatalf("timed out waiting for event %d/%d", len(evs)+1, n)
		}
	}
	return evs
}

// drainAll reads until the stream closes.
func drainAll(t *testing.T, sub *client.Sub) []server.EventMsg {
	t.Helper()
	var evs []server.EventMsg
	timeout := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-sub.Events:
			if !ok {
				return evs
			}
			evs = append(evs, ev)
		case <-timeout:
			t.Fatalf("timed out draining stream after %d events", len(evs))
		}
	}
}

// initialResultIDs returns the IDs a fresh subscription must announce
// as its initial result set, from an in-process query at the current
// version.
func initialResultIDs(t *testing.T, backend server.Backend, q *uncertain.Object, k int, tau float64) map[int]bool {
	t.Helper()
	ms, err := backend.KNNCtx(context.Background(), q, k, tau)
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[int]bool)
	for _, m := range ms {
		if m.IsResult {
			ids[m.Object.ID] = true
		}
	}
	return ids
}

func TestServerEphemeralSubscription(t *testing.T) {
	db := testDB(5, 20)
	store, err := query.NewStore(db, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, store, server.Options{})
	c := dial(t, addr)

	// Query at an existing object's location: the initial result set is
	// non-empty (the object is its own near-certain nearest neighbor).
	q, err := uncertain.NewObject(0, db[0].Samples)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := initialResultIDs(t, store, q, 3, 0.2)
	if len(wantIDs) == 0 {
		t.Fatal("test query has an empty initial result set")
	}

	sub, err := c.Subscribe(client.SubOptions{Kind: "KNN", K: 3, Tau: 0.2, Q: q})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if sub.Mode != server.ModeFull {
		t.Fatalf("mode %q, want %q", sub.Mode, server.ModeFull)
	}
	init := drainN(t, sub, len(wantIDs))
	gotIDs := make(map[int]bool)
	for _, ev := range init {
		if ev.Kind != server.EvEntered {
			t.Fatalf("initial event kind %q, want %q", ev.Kind, server.EvEntered)
		}
		gotIDs[ev.Object.ID] = true
	}
	if !reflect.DeepEqual(gotIDs, wantIDs) {
		t.Fatalf("initial result IDs %v, want %v", gotIDs, wantIDs)
	}

	// Deleting a current member must push a "left" event.
	var member int
	for id := range wantIDs {
		member = id
		break
	}
	if found, err := c.Delete(member); err != nil || !found {
		t.Fatalf("delete member: found=%v err=%v", found, err)
	}
	// The delete can emit several events at the same version — a
	// replacement pulled into the k-set "enters", surviving members'
	// bounds may shift — ordered by ascending ID, so the "left" push is
	// not necessarily first. Drain until it arrives.
	var left server.EventMsg
	for i := 0; ; i++ {
		if i >= 8 {
			t.Fatalf("no %q event for object %d after delete", server.EvLeft, member)
		}
		ev := drainN(t, sub, 1)[0]
		if ev.Kind == server.EvLeft {
			left = ev
			break
		}
	}
	if left.Object.ID != member {
		t.Fatalf("left object %d, want %d", left.Object.ID, member)
	}

	// Unsubscribe: the stream ends with the terminal push and closes.
	if err := c.Unsubscribe(sub); err != nil {
		t.Fatalf("unsubscribe: %v", err)
	}
	tail := drainAll(t, sub)
	if len(tail) == 0 || tail[len(tail)-1].Kind != server.EvEnd {
		t.Fatalf("stream did not end with an end event: %+v", tail)
	}
	if r := tail[len(tail)-1].Reason; r != server.EndUnsubscribed {
		t.Fatalf("end reason %q, want %q", r, server.EndUnsubscribed)
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("sub err after clean end: %v", err)
	}

	// Named subscriptions need a durable cursor on this server.
	if _, err := c.Subscribe(client.SubOptions{Kind: "KNN", K: 3, Tau: 0.2, Q: q, Name: "w"}); !client.IsCode(err, "NODURABLE") {
		t.Fatalf("named subscribe on cursorless server: %v, want NODURABLE", err)
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	db := testDB(6, 12)
	store, err := query.NewStore(db, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(store, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q, err := uncertain.NewObject(0, db[0].Samples)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(client.SubOptions{Kind: "KNN", K: 2, Tau: 0.3, Q: q})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	// The subscriber got everything including the terminal "closed" push.
	evs := drainAll(t, sub)
	if len(evs) == 0 {
		t.Fatal("no events before shutdown close")
	}
	last := evs[len(evs)-1]
	if last.Kind != server.EvEnd || last.Reason != server.EndClosed {
		t.Fatalf("last event %+v, want end/%s", last, server.EndClosed)
	}

	// The server refuses further service.
	if _, err := client.Dial(ln.Addr().String()); err == nil {
		// Dial may succeed briefly before the OS reaps the listener;
		// commands must fail either way.
		c2, _ := client.Dial(ln.Addr().String())
		if c2 != nil {
			if err := c2.Ping(); err == nil {
				t.Fatal("ping succeeded after server close")
			}
			c2.Close()
		}
	}
}

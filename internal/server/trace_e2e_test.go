package server_test

import (
	"context"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"probprune/internal/obs"
	"probprune/internal/query"
	"probprune/internal/server"
	"probprune/internal/wal"
)

// TestTraceWireEquivalence: a KNN ... TRACE round trip over real TCP
// returns the same query anatomy an in-process traced KNNCtx records —
// the wire adds transport, not a different execution. Covered for both
// the single Store and the ShardedStore backends.
func TestTraceWireEquivalence(t *testing.T) {
	db := testDB(11, 48)
	q := testObj(rand.New(rand.NewSource(77)), -1)

	backends := map[string]server.Backend{}
	store, err := query.NewStore(db, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	backends["store"] = store
	sharded, err := query.NewShardedStore(db, query.ShardedOptions{Shards: 4}, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sharded.Close() })
	backends["sharded"] = sharded

	for name, backend := range backends {
		t.Run(name, func(t *testing.T) {
			_, addr := startServer(t, backend, server.Options{})
			cl := dial(t, addr)

			// In-process reference trace on the same backend. One warm-up
			// query first so the decomposition-cache state matches between
			// the reference run and the wire run.
			if _, _, err := cl.KNNTrace(q, 5, 0.3); err != nil {
				t.Fatal(err)
			}
			var ref obs.Trace
			ctx := obs.WithTrace(context.Background(), &ref)
			if _, err := backend.KNNCtx(ctx, q, 5, 0.3); err != nil {
				t.Fatal(err)
			}
			refSnap := ref.Snapshot()

			matches, wireSnap, err := cl.KNNTrace(q, 5, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			if len(matches) == 0 {
				t.Fatal("traced KNN returned no matches on a 48-object database")
			}
			if wireSnap.Candidates != refSnap.Candidates ||
				wireSnap.Preselected != refSnap.Preselected ||
				wireSnap.Refined != refSnap.Refined ||
				wireSnap.Undecided != refSnap.Undecided ||
				wireSnap.Iterations != refSnap.Iterations {
				t.Fatalf("wire trace diverges from in-process trace:\nwire %+v\nref  %+v", wireSnap, refSnap)
			}
			if wireSnap.Candidates == 0 {
				t.Fatal("trace shows zero candidates — the trace was not threaded through the query")
			}
			// The wire trace carries spans no in-process run has: the
			// dispatch queue time is always measured.
			if wireSnap.Queue <= 0 {
				t.Fatalf("traced wire query has no queue span: %+v", wireSnap)
			}

			// Untraced queries still work and equal the traced results.
			plain, err := cl.KNN(q, 5, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			if len(plain) != len(matches) {
				t.Fatalf("traced (%d) and untraced (%d) results differ", len(matches), len(plain))
			}
		})
	}
}

// TestTracedMutationWALWait: a TRACE-flagged INSERT against a durable
// SyncAlways store reports the WAL-wait span — the time the command
// spent inside the commit's fsync — while a volatile store reports
// none.
func TestTracedMutationWALWait(t *testing.T) {
	db := testDB(5, 12)
	durable, err := query.BootstrapStore(db, query.PersistOptions{
		Dir: t.TempDir(), Sync: wal.SyncAlways}, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { durable.Close() })
	_, addr := startServer(t, durable, server.Options{CursorPath: filepath.Join(t.TempDir(), "cursor")})
	cl := dial(t, addr)

	o := testObj(rand.New(rand.NewSource(31)), 9001)
	ts, err := cl.InsertTrace(o)
	if err != nil {
		t.Fatal(err)
	}
	if ts.WALWait <= 0 {
		t.Fatalf("durable traced INSERT reports no WAL wait: %+v", ts)
	}
	if ts.Queue <= 0 {
		t.Fatalf("traced INSERT has no queue span: %+v", ts)
	}
	found, dts, err := cl.DeleteTrace(9001)
	if err != nil || !found {
		t.Fatalf("traced DELETE: found=%v err=%v", found, err)
	}
	if dts.WALWait <= 0 {
		t.Fatalf("durable traced DELETE reports no WAL wait: %+v", dts)
	}

	vol, err := query.NewStore(testDB(6, 12), testOpts)
	if err != nil {
		t.Fatal(err)
	}
	_, vaddr := startServer(t, vol, server.Options{})
	vcl := dial(t, vaddr)
	vts, err := vcl.InsertTrace(testObj(rand.New(rand.NewSource(32)), 9002))
	if err != nil {
		t.Fatal(err)
	}
	if vts.WALWait != 0 {
		t.Fatalf("volatile traced INSERT reports WAL wait %v", vts.WALWait)
	}
}

// TestTracedErrorNotWrapped: an invalid TRACE-flagged command returns a
// plain error reply, not a traced array — the client surfaces the
// server error verbatim.
func TestTracedErrorNotWrapped(t *testing.T) {
	store, err := query.NewStore(testDB(3, 8), testOpts)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, store, server.Options{})
	rc := rawDial(t, addr)
	// KNN with a bad arg count plus the TRACE flag: the flag is
	// stripped, the handler rejects the args, and the error frame goes
	// out bare.
	rc.sendArgs(t, "KNN", "nonsense", "TRACE")
	if f := rc.read(t); f.Type != server.TError {
		t.Fatalf("traced bad KNN replied %q frame, want bare error", f.Type)
	}
	// The connection survives: the error frame was not wrapped into a
	// malformed traced reply, and dispatch continues.
	rc.sendArgs(t, "PING")
	if f := rc.read(t); f.Type != server.TSimple || f.Str != "PONG" {
		t.Fatalf("connection broken after traced error: %+v", f)
	}
}

// TestVersionIdentity: VERSION carries the server's runtime identity
// alongside the store version.
func TestVersionIdentity(t *testing.T) {
	store, err := query.NewStore(testDB(2, 8), testOpts)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, store, server.Options{})
	cl := dial(t, addr)

	info, err := cl.ServerInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != store.Version() {
		t.Fatalf("info.Version = %d, want %d", info.Version, store.Version())
	}
	if info.GoVersion != runtime.Version() {
		t.Fatalf("info.GoVersion = %q, want %q", info.GoVersion, runtime.Version())
	}
	if info.GoMaxProcs != runtime.GOMAXPROCS(0) {
		t.Fatalf("info.GoMaxProcs = %d, want %d", info.GoMaxProcs, runtime.GOMAXPROCS(0))
	}
	if info.UptimeSeconds < 0 || info.UptimeSeconds > 3600 {
		t.Fatalf("info.UptimeSeconds = %d implausible", info.UptimeSeconds)
	}
	// The legacy Version accessor still answers through the new reply.
	v, err := cl.Version()
	if err != nil || v != store.Version() {
		t.Fatalf("Version() = %d, %v", v, err)
	}
}

// TestEventsCommand: with a slow-query threshold of one nanosecond
// every query is "slow", so the flight recorder captures it with its
// full trace, and EVENTS serves it over the wire — full dump and
// newest-n forms.
func TestEventsCommand(t *testing.T) {
	store, err := query.NewStore(testDB(4, 32), testOpts)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, store, server.Options{SlowQuery: time.Nanosecond})
	cl := dial(t, addr)

	q := testObj(rand.New(rand.NewSource(21)), -1)
	if _, err := cl.KNN(q, 3, 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.KNN(q, 3, 0.3); err != nil {
		t.Fatal(err)
	}

	evs, err := cl.Events(0)
	if err != nil {
		t.Fatal(err)
	}
	var slow []server.RecorderEvent
	for _, ev := range evs {
		if ev.Kind == "slow_query" {
			slow = append(slow, ev)
		}
	}
	if len(slow) < 2 {
		t.Fatalf("recorder captured %d slow-query events, want >= 2 (events: %+v)", len(slow), evs)
	}
	last := slow[len(slow)-1]
	if last.Note != "knn" {
		t.Fatalf("slow-query note = %q, want knn", last.Note)
	}
	if !last.HasTrace || last.Trace.Candidates == 0 {
		t.Fatalf("slow-query event carries no trace: %+v", last)
	}
	if last.Dur <= 0 {
		t.Fatalf("slow-query event has no duration: %+v", last)
	}

	// Newest-n: EVENTS 1 returns exactly the latest event.
	one, err := cl.Events(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Fatalf("EVENTS 1 returned %d events", len(one))
	}
	if one[0].Seq != evs[len(evs)-1].Seq {
		t.Fatalf("EVENTS 1 returned seq %d, want newest %d", one[0].Seq, evs[len(evs)-1].Seq)
	}
}

// Package client is the Go client for the probprune network protocol
// (see internal/server and docs/PROTOCOL.md). It pipelines: any number
// of goroutines may issue commands on one connection, replies are
// matched to callers in FIFO wire order, and subscription push frames
// are demultiplexed onto per-subscription event channels.
package client

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"

	"probprune/internal/obs"
	"probprune/internal/server"
	"probprune/internal/uncertain"
)

// Error is a server error reply.
type Error struct {
	Code string // ERR, PROTO, BADARG, UNKNOWN, BUSY, GONE, CURSORMISMATCH, NODURABLE
	Msg  string
}

func (e *Error) Error() string { return e.Code + " " + e.Msg }

// IsCode reports whether err is a server error reply with the given
// code.
func IsCode(err error, code string) bool {
	var se *Error
	return errors.As(err, &se) && se.Code == code
}

// ErrClosed: the client connection is closed.
var ErrClosed = errors.New("client: connection closed")

// Client is one protocol connection. Safe for concurrent use.
type Client struct {
	nc net.Conn

	wmu sync.Mutex // serializes frame writes (and pending registration with them)
	w   *server.Writer

	pmu     sync.Mutex
	pending []chan server.Frame // FIFO of callers awaiting replies

	smu     sync.Mutex
	subs    map[int64]*Sub
	orphans map[int64][]server.EventMsg // pushes that beat their subscribe reply

	emu  sync.Mutex
	err  error
	done chan struct{}
}

// Dial connects to a probprune server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc:      nc,
		w:       server.NewWriter(nc),
		subs:    make(map[int64]*Sub),
		orphans: make(map[int64][]server.EventMsg),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close tears the connection down. Named subscriptions park on the
// server and can be resumed on a new connection.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	return nil
}

// Err returns the terminal connection error, nil while the client is
// live.
func (c *Client) Err() error {
	c.emu.Lock()
	defer c.emu.Unlock()
	select {
	case <-c.done:
		return c.err
	default:
		return nil
	}
}

// fail ends the client exactly once: the socket closes, pending
// callers and subscriptions are released with err.
func (c *Client) fail(err error) {
	c.emu.Lock()
	select {
	case <-c.done:
		c.emu.Unlock()
		return
	default:
	}
	c.err = err
	close(c.done)
	c.emu.Unlock()
	c.nc.Close()
	c.smu.Lock()
	subs := c.subs
	c.subs = make(map[int64]*Sub)
	c.orphans = make(map[int64][]server.EventMsg)
	c.smu.Unlock()
	for _, s := range subs {
		s.finish(err)
	}
}

func (c *Client) readLoop() {
	r := server.NewReader(c.nc)
	for {
		f, err := r.ReadFrame()
		if err != nil {
			c.fail(err)
			return
		}
		if f.Type == server.TPush {
			ev, err := server.DecodeEvent(f)
			if err != nil {
				c.fail(fmt.Errorf("client: bad push frame: %w", err))
				return
			}
			c.route(ev)
			continue
		}
		c.pmu.Lock()
		if len(c.pending) == 0 {
			c.pmu.Unlock()
			c.fail(fmt.Errorf("client: unsolicited reply frame %q", f.Type))
			return
		}
		ch := c.pending[0]
		c.pending = c.pending[1:]
		c.pmu.Unlock()
		ch <- f
	}
}

// route hands a push event to its subscription — or parks it for the
// subscribe reply that has not been processed yet (the server may push
// the first events in the same TCP segment as the reply).
func (c *Client) route(ev server.EventMsg) {
	c.smu.Lock()
	defer c.smu.Unlock()
	if s := c.subs[ev.Sub]; s != nil {
		s.push(ev)
		if ev.Kind == server.EvEnd {
			delete(c.subs, ev.Sub)
		}
		return
	}
	c.orphans[ev.Sub] = append(c.orphans[ev.Sub], ev)
}

// call issues one command and waits for its reply. Error replies come
// back as *Error.
func (c *Client) call(args ...[]byte) (server.Frame, error) {
	elems := make([]server.Frame, len(args))
	for i, a := range args {
		elems[i] = server.Frame{Type: server.TBulk, Bulk: a}
	}
	f := server.Frame{Type: server.TArray, Array: elems}
	ch := make(chan server.Frame, 1)
	c.wmu.Lock()
	select {
	case <-c.done:
		c.wmu.Unlock()
		return server.Frame{}, c.Err()
	default:
	}
	c.pmu.Lock()
	c.pending = append(c.pending, ch)
	c.pmu.Unlock()
	err := c.w.WriteFrame(f)
	if err == nil {
		err = c.w.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.fail(err)
		return server.Frame{}, err
	}
	select {
	case r := <-ch:
		if code, msg, ok := r.IsError(); ok {
			return r, &Error{Code: code, Msg: msg}
		}
		return r, nil
	case <-c.done:
		return server.Frame{}, c.Err()
	}
}

func itob(n int) []byte     { return strconv.AppendInt(nil, int64(n), 10) }
func utob(n uint64) []byte  { return strconv.AppendUint(nil, n, 10) }
func ftob(f float64) []byte { return strconv.AppendFloat(nil, f, 'g', -1, 64) }

// Ping round-trips the connection.
func (c *Client) Ping() error {
	r, err := c.call([]byte("PING"))
	if err != nil {
		return err
	}
	if r.Type != server.TSimple || r.Str != "PONG" {
		return fmt.Errorf("client: bad PING reply")
	}
	return nil
}

// ServerInfo is the VERSION identity reply: the store's mutation epoch
// plus the serving process's identity.
type ServerInfo struct {
	Version       uint64
	GoVersion     string
	GoMaxProcs    int
	UptimeSeconds int64
}

// ServerInfo fetches the server's identity reply.
func (c *Client) ServerInfo() (ServerInfo, error) {
	var info ServerInfo
	r, err := c.call([]byte("VERSION"))
	if err != nil {
		return info, err
	}
	if r.Type != server.TArray || r.Null || len(r.Array) != 4 {
		return info, fmt.Errorf("client: malformed VERSION reply")
	}
	a := r.Array
	if a[0].Type != server.TInt || a[1].Type != server.TBulk || a[2].Type != server.TInt || a[3].Type != server.TInt {
		return info, fmt.Errorf("client: malformed VERSION reply")
	}
	info.Version = uint64(a[0].Int)
	info.GoVersion = string(a[1].Bulk)
	info.GoMaxProcs = int(a[2].Int)
	info.UptimeSeconds = a[3].Int
	return info, nil
}

// Version returns the store's current mutation epoch.
func (c *Client) Version() (uint64, error) {
	info, err := c.ServerInfo()
	return info.Version, err
}

// Len returns the number of stored objects.
func (c *Client) Len() (int, error) {
	r, err := c.call([]byte("LEN"))
	if err != nil {
		return 0, err
	}
	return int(r.Int), expectInt(r)
}

func expectInt(r server.Frame) error {
	if r.Type != server.TInt {
		return fmt.Errorf("client: want integer reply, got %q", r.Type)
	}
	return nil
}

// Get fetches one object by ID; ok reports presence.
func (c *Client) Get(id int) (*uncertain.Object, bool, error) {
	r, err := c.call([]byte("GET"), itob(id))
	if err != nil {
		return nil, false, err
	}
	if r.Type != server.TBulk {
		return nil, false, fmt.Errorf("client: want bulk reply, got %q", r.Type)
	}
	if r.Null {
		return nil, false, nil
	}
	o, err := server.DecodeObject(r.Bulk)
	return o, err == nil, err
}

// Insert adds an object to the store.
func (c *Client) Insert(o *uncertain.Object) error {
	_, err := c.call([]byte("INSERT"), server.EncodeObject(o))
	return err
}

// Update replaces the object with o's ID.
func (c *Client) Update(o *uncertain.Object) error {
	_, err := c.call([]byte("UPDATE"), server.EncodeObject(o))
	return err
}

// Delete removes an object; found reports whether it existed.
func (c *Client) Delete(id int) (bool, error) {
	r, err := c.call([]byte("DELETE"), itob(id))
	if err != nil {
		return false, err
	}
	return r.Int != 0, expectInt(r)
}

// KNN runs a probabilistic threshold kNN query.
func (c *Client) KNN(q *uncertain.Object, k int, tau float64) ([]server.Match, error) {
	r, err := c.call([]byte("KNN"), itob(k), ftob(tau), server.EncodeObject(q))
	if err != nil {
		return nil, err
	}
	return server.DecodeMatches(r)
}

// RKNN runs a probabilistic threshold reverse kNN query.
func (c *Client) RKNN(q *uncertain.Object, k int, tau float64) ([]server.Match, error) {
	r, err := c.call([]byte("RKNN"), itob(k), ftob(tau), server.EncodeObject(q))
	if err != nil {
		return nil, err
	}
	return server.DecodeMatches(r)
}

// TopKNN runs a probabilistic top-m kNN query.
func (c *Client) TopKNN(q *uncertain.Object, k, m int) ([]server.Match, error) {
	r, err := c.call([]byte("TOPKNN"), itob(k), itob(m), server.EncodeObject(q))
	if err != nil {
		return nil, err
	}
	return server.DecodeMatches(r)
}

// InvRank runs an inverse-ranking query: bounds on b's rank
// distribution with respect to reference point r.
func (c *Client) InvRank(b, r *uncertain.Object) (server.RankDist, error) {
	f, err := c.call([]byte("INVRANK"), server.EncodeObject(b), server.EncodeObject(r))
	if err != nil {
		return server.RankDist{}, err
	}
	return server.DecodeRankDist(f)
}

// splitTraced pulls apart a TRACE-flagged command's 2-element reply:
// [normal-reply, trace-frame].
func splitTraced(r server.Frame) (server.Frame, obs.TraceSnapshot, error) {
	if r.Type != server.TArray || r.Null || len(r.Array) != 2 {
		return server.Frame{}, obs.TraceSnapshot{}, fmt.Errorf("client: want [reply, trace] pair, got %q of %d", r.Type, len(r.Array))
	}
	ts, err := server.DecodeTraceFrame(r.Array[1])
	if err != nil {
		return server.Frame{}, obs.TraceSnapshot{}, err
	}
	return r.Array[0], ts, nil
}

// KNNTrace is KNN with the TRACE flag: the server threads a trace
// through the query and ships its snapshot back with the matches.
func (c *Client) KNNTrace(q *uncertain.Object, k int, tau float64) ([]server.Match, obs.TraceSnapshot, error) {
	r, err := c.call([]byte("KNN"), itob(k), ftob(tau), server.EncodeObject(q), []byte("TRACE"))
	if err != nil {
		return nil, obs.TraceSnapshot{}, err
	}
	reply, ts, err := splitTraced(r)
	if err != nil {
		return nil, ts, err
	}
	ms, err := server.DecodeMatches(reply)
	return ms, ts, err
}

// RKNNTrace is RKNN with the TRACE flag.
func (c *Client) RKNNTrace(q *uncertain.Object, k int, tau float64) ([]server.Match, obs.TraceSnapshot, error) {
	r, err := c.call([]byte("RKNN"), itob(k), ftob(tau), server.EncodeObject(q), []byte("TRACE"))
	if err != nil {
		return nil, obs.TraceSnapshot{}, err
	}
	reply, ts, err := splitTraced(r)
	if err != nil {
		return nil, ts, err
	}
	ms, err := server.DecodeMatches(reply)
	return ms, ts, err
}

// TopKNNTrace is TopKNN with the TRACE flag.
func (c *Client) TopKNNTrace(q *uncertain.Object, k, m int) ([]server.Match, obs.TraceSnapshot, error) {
	r, err := c.call([]byte("TOPKNN"), itob(k), itob(m), server.EncodeObject(q), []byte("TRACE"))
	if err != nil {
		return nil, obs.TraceSnapshot{}, err
	}
	reply, ts, err := splitTraced(r)
	if err != nil {
		return nil, ts, err
	}
	ms, err := server.DecodeMatches(reply)
	return ms, ts, err
}

// InsertTrace is Insert with the TRACE flag: the snapshot carries the
// mutation's WAL-wait span (time blocked on the group-commit fsync) and
// the server-side queue span.
func (c *Client) InsertTrace(o *uncertain.Object) (obs.TraceSnapshot, error) {
	r, err := c.call([]byte("INSERT"), server.EncodeObject(o), []byte("TRACE"))
	if err != nil {
		return obs.TraceSnapshot{}, err
	}
	_, ts, err := splitTraced(r)
	return ts, err
}

// UpdateTrace is Update with the TRACE flag.
func (c *Client) UpdateTrace(o *uncertain.Object) (obs.TraceSnapshot, error) {
	r, err := c.call([]byte("UPDATE"), server.EncodeObject(o), []byte("TRACE"))
	if err != nil {
		return obs.TraceSnapshot{}, err
	}
	_, ts, err := splitTraced(r)
	return ts, err
}

// DeleteTrace is Delete with the TRACE flag.
func (c *Client) DeleteTrace(id int) (bool, obs.TraceSnapshot, error) {
	r, err := c.call([]byte("DELETE"), itob(id), []byte("TRACE"))
	if err != nil {
		return false, obs.TraceSnapshot{}, err
	}
	reply, ts, err := splitTraced(r)
	if err != nil {
		return false, ts, err
	}
	return reply.Int != 0, ts, expectInt(reply)
}

// Events fetches the server's flight-recorder ring (the EVENTS
// command), oldest first. n > 0 limits the reply to the newest n
// events; n <= 0 fetches the whole ring.
func (c *Client) Events(n int) ([]server.RecorderEvent, error) {
	var (
		r   server.Frame
		err error
	)
	if n > 0 {
		r, err = c.call([]byte("EVENTS"), itob(n))
	} else {
		r, err = c.call([]byte("EVENTS"))
	}
	if err != nil {
		return nil, err
	}
	return server.DecodeRecorderEvents(r)
}

// BatchReq is one query of a BatchKNN submission.
type BatchReq struct {
	Q   *uncertain.Object
	K   int
	Tau float64
}

// BatchKNN runs many kNN queries against one store snapshot.
func (c *Client) BatchKNN(reqs []BatchReq) ([][]server.Match, error) {
	args := make([][]byte, 0, 2+3*len(reqs))
	args = append(args, []byte("BATCH"), itob(len(reqs)))
	for _, q := range reqs {
		args = append(args, itob(q.K), ftob(q.Tau), server.EncodeObject(q.Q))
	}
	r, err := c.call(args...)
	if err != nil {
		return nil, err
	}
	if r.Type != server.TArray || r.Null {
		return nil, fmt.Errorf("client: want array reply, got %q", r.Type)
	}
	out := make([][]server.Match, len(r.Array))
	for i, el := range r.Array {
		ms, err := server.DecodeMatches(el)
		if err != nil {
			return nil, err
		}
		out[i] = ms
	}
	return out, nil
}

// WaitVersion blocks until the server's subscription monitor processed
// store version v — every subscription event up to v has been
// generated. It returns the monitor's current version.
func (c *Client) WaitVersion(v uint64) (uint64, error) {
	r, err := c.call([]byte("WAITVERSION"), utob(v))
	if err != nil {
		return 0, err
	}
	return uint64(r.Int), expectInt(r)
}

// Stats fetches the server's metric map (the STATS command). The wire
// reply is a flat array of alternating bulk-string keys and integer
// values in ascending key order; Stats folds it back into a map.
func (c *Client) Stats() (map[string]int64, error) {
	r, err := c.call([]byte("STATS"))
	if err != nil {
		return nil, err
	}
	if r.Type != server.TArray || r.Null || len(r.Array)%2 != 0 {
		return nil, fmt.Errorf("client: malformed STATS reply")
	}
	out := make(map[string]int64, len(r.Array)/2)
	for i := 0; i < len(r.Array); i += 2 {
		k, v := r.Array[i], r.Array[i+1]
		if k.Type != server.TBulk || k.Null || v.Type != server.TInt {
			return nil, fmt.Errorf("client: malformed STATS entry %d", i/2)
		}
		out[string(k.Bulk)] = v.Int
	}
	return out, nil
}

package client

import (
	"fmt"
	"sync"

	"probprune/internal/server"
	"probprune/internal/uncertain"
)

// SubOptions describes a subscription request.
type SubOptions struct {
	// Kind is "KNN" or "RKNN".
	Kind string
	K    int
	Tau  float64
	Q    *uncertain.Object
	// Name makes the subscription durable: it survives disconnects
	// (parked on the server) and server restarts (durable cursor), and
	// is resumable with Resume. Requires a server with a cursor.
	Name string
	// Policy is "disconnect" (default; never gap — the subscription
	// terminates if the server would have to drop an event) or
	// "dropoldest" (shed oldest, count lost).
	Policy string
	// Fresh discards any durable resume state under Name first: the
	// subscription starts with a full initial result set.
	Fresh bool
}

// Sub is one live subscription. Consume Events until it closes; the
// final event has Kind "end" and carries the termination reason. A
// consumer that stops draining does not stall the connection — events
// queue in memory — but an exact view requires draining promptly.
type Sub struct {
	// ID is the server-assigned subscription ID.
	ID int64
	// Mode says how to interpret the initial events: "full" (complete
	// result set), "delta" (coalesced delta vs the durable cursor) or
	// "continue" (exact suffix past the presented watermark).
	Mode string
	// Lost is the server's cumulative shed count at subscribe/resume
	// time (dropoldest policy only).
	Lost uint64
	// Events is the ordered event stream.
	Events <-chan server.EventMsg

	c      *Client
	events chan server.EventMsg

	mu    sync.Mutex
	cond  *sync.Cond
	inbox []server.EventMsg
	fin   bool
	err   error
}

func newSub(c *Client, id int64, mode string, lost uint64) *Sub {
	s := &Sub{ID: id, Mode: mode, Lost: lost, c: c, events: make(chan server.EventMsg, 64)}
	s.Events = s.events
	s.cond = sync.NewCond(&s.mu)
	go s.pump()
	return s
}

// push enqueues an event from the reader goroutine; never blocks.
func (s *Sub) push(ev server.EventMsg) {
	s.mu.Lock()
	s.inbox = append(s.inbox, ev)
	s.mu.Unlock()
	s.cond.Signal()
}

// finish ends the stream (connection failure): buffered events still
// deliver, then Events closes. Err reports why afterwards.
func (s *Sub) finish(err error) {
	s.mu.Lock()
	if !s.fin {
		s.fin = true
		s.err = err
	}
	s.mu.Unlock()
	s.cond.Signal()
}

// Err returns the connection error that ended the stream, nil when it
// ended with a server "end" event (or is still live).
func (s *Sub) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fin {
		return s.err
	}
	return nil
}

// pump moves inbox events onto the consumer channel in order.
func (s *Sub) pump() {
	for {
		s.mu.Lock()
		for len(s.inbox) == 0 && !s.fin {
			s.cond.Wait()
		}
		if len(s.inbox) == 0 {
			s.mu.Unlock()
			close(s.events)
			return
		}
		ev := s.inbox[0]
		s.inbox = s.inbox[1:]
		s.mu.Unlock()
		select {
		case s.events <- ev:
		default:
			// Buffer full. Block — but if the client tears down while
			// the consumer has stopped reading, give up on the stream.
			// (The done case must not race deliverable events: a select
			// with two ready channels picks randomly, and dropping a
			// received terminal event would break stream contracts.)
			select {
			case s.events <- ev:
			case <-s.c.done:
				close(s.events)
				return
			}
		}
		if ev.Kind == server.EvEnd {
			close(s.events)
			return
		}
	}
}

func subArgs(cmd string, o SubOptions) [][]byte {
	args := [][]byte{[]byte(cmd)}
	if cmd == "SUBSCRIBE" {
		args = append(args, []byte(o.Kind), itob(o.K), ftob(o.Tau), server.EncodeObject(o.Q))
		if o.Name != "" {
			args = append(args, []byte("NAME"), []byte(o.Name))
		}
	} else {
		args = append(args, []byte(o.Kind), itob(o.K), ftob(o.Tau), server.EncodeObject(o.Q))
	}
	if o.Policy != "" {
		args = append(args, []byte("POLICY"), []byte(o.Policy))
	}
	if o.Fresh {
		args = append(args, []byte("FRESH"))
	}
	return args
}

// register installs the sub and flushes pushes that arrived before the
// reply was processed, preserving order.
func (c *Client) register(id int64, mode string, lost uint64) *Sub {
	s := newSub(c, id, mode, lost)
	c.smu.Lock()
	for _, ev := range c.orphans[id] {
		s.push(ev)
		if ev.Kind == server.EvEnd {
			// Stream already over; don't register for more.
			delete(c.orphans, id)
			c.smu.Unlock()
			return s
		}
	}
	delete(c.orphans, id)
	c.subs[id] = s
	c.smu.Unlock()
	return s
}

// Subscribe opens a standing query subscription. The initial result
// set (or resume delta — see Sub.Mode) streams as the first events.
func (c *Client) Subscribe(o SubOptions) (*Sub, error) {
	r, err := c.call(subArgs("SUBSCRIBE", o)...)
	if err != nil {
		return nil, err
	}
	if r.Type != server.TArray || len(r.Array) != 2 || r.Array[0].Type != server.TInt || r.Array[1].Type != server.TBulk {
		return nil, fmt.Errorf("client: malformed SUBSCRIBE reply")
	}
	return c.register(r.Array[0].Int, string(r.Array[1].Bulk), 0), nil
}

// Resume reattaches to the named durable subscription, presenting the
// watermark (version, objectID) of the last event this client fully
// processed. The predicate must match the original subscription.
// Sub.Mode reports what the stream contains: "continue" for an exact
// suffix, "delta"/"full" after a server restart.
func (c *Client) Resume(name string, version uint64, objectID int, o SubOptions) (*Sub, error) {
	args := [][]byte{[]byte("RESUME"), []byte(name), utob(version), itob(objectID)}
	args = append(args, subArgs("", o)[1:]...)
	r, err := c.call(args...)
	if err != nil {
		return nil, err
	}
	if r.Type != server.TArray || len(r.Array) != 3 || r.Array[0].Type != server.TInt ||
		r.Array[1].Type != server.TBulk || r.Array[2].Type != server.TInt {
		return nil, fmt.Errorf("client: malformed RESUME reply")
	}
	return c.register(r.Array[0].Int, string(r.Array[1].Bulk), uint64(r.Array[2].Int)), nil
}

// Unsubscribe ends a subscription. The stream still delivers every
// event generated before the cancellation, then the "end" event.
func (c *Client) Unsubscribe(s *Sub) error {
	_, err := c.call([]byte("UNSUBSCRIBE"), itob(int(s.ID)))
	return err
}

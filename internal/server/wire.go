package server

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"probprune/internal/geom"
	"probprune/internal/query"
	"probprune/internal/uncertain"
)

// This file holds the value layer of the protocol: how uncertain
// objects, query matches, rank distributions and subscription events
// travel inside protocol frames. Everything is text. Floats are
// encoded with strconv's shortest-round-trip form ('g', precision -1),
// which parses back to the identical IEEE-754 bit pattern — the
// equivalence test tier compares server answers bit-for-bit against
// in-process queries, so the wire must not lose a single ulp.

// Wire-side limits on decoded objects, defensive against hostile
// input (the fuzzers drive these paths with garbage).
const (
	maxObjectDim     = 64
	maxObjectSamples = 1 << 16
)

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func parseFloat(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad float %q", s)
	}
	return f, nil
}

// EncodeObject renders an uncertain object as one bulk-string payload:
//
//	<id> <dim> <nsamples> <flags> <coords...> [<weights...>] [<existence>]
//
// space-separated; coords are sample-major. flags bit 0 marks explicit
// weights, bit 1 existential uncertainty.
func EncodeObject(o *uncertain.Object) []byte {
	var sb strings.Builder
	dim := o.Dim()
	flags := 0
	if o.Weights != nil {
		flags |= 1
	}
	if o.Existence != 0 {
		flags |= 2
	}
	fmt.Fprintf(&sb, "%d %d %d %d", o.ID, dim, len(o.Samples), flags)
	for _, s := range o.Samples {
		for d := 0; d < dim; d++ {
			sb.WriteByte(' ')
			sb.WriteString(formatFloat(s[d]))
		}
	}
	if o.Weights != nil {
		for _, w := range o.Weights {
			sb.WriteByte(' ')
			sb.WriteString(formatFloat(w))
		}
	}
	if o.Existence != 0 {
		sb.WriteByte(' ')
		sb.WriteString(formatFloat(o.Existence))
	}
	return []byte(sb.String())
}

// DecodeObject parses an EncodeObject payload, validating everything a
// hostile client could abuse: dimension and sample-count limits,
// finite coordinates, non-negative weights with positive mass,
// existence in (0, 1]. The object is constructed field-by-field (MBR
// recomputed the same way uncertain.NewWeightedObject computes it) so
// a well-formed payload round-trips bit-identically — weights are
// renormalized only when their sum strays from 1 beyond float noise.
func DecodeObject(b []byte) (*uncertain.Object, error) {
	toks := strings.Fields(string(b))
	if len(toks) < 4 {
		return nil, fmt.Errorf("object: %d tokens, need at least 4", len(toks))
	}
	id, err := strconv.Atoi(toks[0])
	if err != nil {
		return nil, fmt.Errorf("object: bad id %q", toks[0])
	}
	dim, err := strconv.Atoi(toks[1])
	if err != nil || dim < 1 || dim > maxObjectDim {
		return nil, fmt.Errorf("object: bad dimension %q", toks[1])
	}
	n, err := strconv.Atoi(toks[2])
	if err != nil || n < 1 || n > maxObjectSamples {
		return nil, fmt.Errorf("object: bad sample count %q", toks[2])
	}
	flags, err := strconv.Atoi(toks[3])
	if err != nil || flags < 0 || flags > 3 {
		return nil, fmt.Errorf("object: bad flags %q", toks[3])
	}
	hasWeights, hasExistence := flags&1 != 0, flags&2 != 0
	want := 4 + n*dim
	if hasWeights {
		want += n
	}
	if hasExistence {
		want++
	}
	if len(toks) != want {
		return nil, fmt.Errorf("object: %d tokens, want %d", len(toks), want)
	}
	toks = toks[4:]
	samples := make([]geom.Point, n)
	for i := range samples {
		p := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			v, err := parseFloat(toks[i*dim+d])
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("object: bad coordinate %q", toks[i*dim+d])
			}
			p[d] = v
		}
		samples[i] = p
	}
	toks = toks[n*dim:]
	var weights []float64
	if hasWeights {
		weights = make([]float64, n)
		sum := 0.0
		for i := range weights {
			w, err := parseFloat(toks[i])
			if err != nil || math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
				return nil, fmt.Errorf("object: bad weight %q", toks[i])
			}
			weights[i] = w
			sum += w
		}
		if sum <= 0 {
			return nil, fmt.Errorf("object: zero total weight")
		}
		if math.Abs(sum-1) > 1e-9 {
			for i := range weights {
				weights[i] /= sum
			}
		}
		toks = toks[n:]
	}
	existence := 0.0
	if hasExistence {
		e, err := parseFloat(toks[0])
		if err != nil || math.IsNaN(e) || e <= 0 || e > 1 {
			return nil, fmt.Errorf("object: bad existence %q", toks[0])
		}
		existence = e
	}
	mbr := geom.PointRect(samples[0])
	for _, s := range samples[1:] {
		mbr = mbr.Union(geom.PointRect(s))
	}
	return &uncertain.Object{ID: id, MBR: mbr, Samples: samples, Weights: weights, Existence: existence}, nil
}

// Match is the wire form of one query match: the candidate's ID plus
// the probability bounds and IDCA verdict of query.Match. Candidates
// are identified by ID — the client knows the objects it ingested.
type Match struct {
	ID         int
	LB, UB     float64
	IsResult   bool
	Decided    bool
	Iterations int
}

func matchFromQuery(m query.Match) Match {
	w := Match{LB: m.Prob.LB, UB: m.Prob.UB, IsResult: m.IsResult, Decided: m.Decided, Iterations: m.Iterations}
	if m.Object != nil {
		w.ID = m.Object.ID
	}
	return w
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func encodeMatch(m Match) Frame {
	return array(
		intf(int64(m.ID)),
		bulkStr(formatFloat(m.LB)),
		bulkStr(formatFloat(m.UB)),
		intf(boolInt(m.IsResult)),
		intf(boolInt(m.Decided)),
		intf(int64(m.Iterations)),
	)
}

// EncodeMatches renders a query result as an array of match arrays.
func EncodeMatches(ms []query.Match) Frame {
	elems := make([]Frame, len(ms))
	for i, m := range ms {
		elems[i] = encodeMatch(matchFromQuery(m))
	}
	return array(elems...)
}

func decodeMatch(f Frame) (Match, error) {
	var m Match
	if f.Type != TArray || len(f.Array) != 6 {
		return m, fmt.Errorf("match: want 6-element array")
	}
	a := f.Array
	if a[0].Type != TInt || a[3].Type != TInt || a[4].Type != TInt || a[5].Type != TInt ||
		a[1].Type != TBulk || a[2].Type != TBulk {
		return m, fmt.Errorf("match: wrong element types")
	}
	lb, err := parseFloat(string(a[1].Bulk))
	if err != nil {
		return m, err
	}
	ub, err := parseFloat(string(a[2].Bulk))
	if err != nil {
		return m, err
	}
	return Match{
		ID: int(a[0].Int), LB: lb, UB: ub,
		IsResult: a[3].Int != 0, Decided: a[4].Int != 0, Iterations: int(a[5].Int),
	}, nil
}

// DecodeMatches parses an EncodeMatches reply.
func DecodeMatches(f Frame) ([]Match, error) {
	if f.Type != TArray || f.Null {
		return nil, fmt.Errorf("matches: want array reply, got %q", f.Type)
	}
	ms := make([]Match, len(f.Array))
	for i, el := range f.Array {
		m, err := decodeMatch(el)
		if err != nil {
			return nil, err
		}
		ms[i] = m
	}
	return ms, nil
}

// RankDist is the wire form of a query.RankDistribution: the bounds on
// P(Rank = MinRank + j) for j = 0..len(Bounds)-1.
type RankDist struct {
	MinRank int
	Bounds  [][2]float64
}

// EncodeRankDist renders an inverse-ranking answer.
func EncodeRankDist(rd *query.RankDistribution) Frame {
	elems := []Frame{intf(int64(rd.MinRank))}
	for _, iv := range rd.Ranks {
		elems = append(elems, bulkStr(formatFloat(iv.LB)), bulkStr(formatFloat(iv.UB)))
	}
	return array(elems...)
}

// DecodeRankDist parses an EncodeRankDist reply.
func DecodeRankDist(f Frame) (RankDist, error) {
	var rd RankDist
	if f.Type != TArray || f.Null || len(f.Array) < 1 || len(f.Array)%2 == 0 {
		return rd, fmt.Errorf("rankdist: malformed reply")
	}
	if f.Array[0].Type != TInt {
		return rd, fmt.Errorf("rankdist: want integer minrank")
	}
	rd.MinRank = int(f.Array[0].Int)
	for i := 1; i < len(f.Array); i += 2 {
		if f.Array[i].Type != TBulk || f.Array[i+1].Type != TBulk {
			return rd, fmt.Errorf("rankdist: want bulk bounds")
		}
		lb, err := parseFloat(string(f.Array[i].Bulk))
		if err != nil {
			return rd, err
		}
		ub, err := parseFloat(string(f.Array[i+1].Bulk))
		if err != nil {
			return rd, err
		}
		rd.Bounds = append(rd.Bounds, [2]float64{lb, ub})
	}
	return rd, nil
}

// Event kind strings on the wire, the cq.EventKind names plus the
// server-level terminal marker.
const (
	EvEntered = "entered"
	EvLeft    = "left"
	EvBounds  = "bounds"
	// EvEnd is the terminal push of a subscription: no more events will
	// follow. Its Reason field says why (see the End* constants).
	EvEnd = "end"
)

// Terminal reasons delivered with EvEnd.
const (
	EndUnsubscribed = "unsubscribed" // client sent UNSUBSCRIBE
	EndSlow         = "slow"         // DisconnectSlow backpressure fired
	EndClosed       = "closed"       // server shut down
)

// EventMsg is the wire form of one subscription event (or the
// terminal EvEnd marker).
type EventMsg struct {
	// Sub is the server-assigned subscription ID the event belongs to.
	Sub int64
	// Kind is EvEntered, EvLeft, EvBounds or EvEnd.
	Kind string
	// Version is the store mutation epoch the event is valid at.
	Version uint64
	// Object is the affected object (nil in EvEnd frames).
	Object *uncertain.Object
	// Match carries the candidate's post-change bounds and verdict;
	// the zero Match when the object left by deletion.
	Match Match
	// Reason is set on EvEnd frames only.
	Reason string
}

func eventFromCQ(sub int64, kind string, version uint64, obj *uncertain.Object, m query.Match) EventMsg {
	wm := matchFromQuery(m)
	// A left-by-deletion event carries the zero Match; pin the ID to the
	// object so the wire form round-trips to the same EventMsg.
	wm.ID = obj.ID
	return EventMsg{Sub: sub, Kind: kind, Version: version, Object: obj, Match: wm}
}

// encodeEvent renders an event as a push frame:
//
//	>[ :sub, $kind, :version, $object, $lb, $ub, :isresult, :decided, :iterations ]
//	>[ :sub, $"end", $reason ]
func encodeEvent(ev EventMsg) Frame {
	if ev.Kind == EvEnd {
		return push(intf(ev.Sub), bulkStr(EvEnd), bulkStr(ev.Reason))
	}
	return push(
		intf(ev.Sub),
		bulkStr(ev.Kind),
		intf(int64(ev.Version)),
		bulk(EncodeObject(ev.Object)),
		bulkStr(formatFloat(ev.Match.LB)),
		bulkStr(formatFloat(ev.Match.UB)),
		intf(boolInt(ev.Match.IsResult)),
		intf(boolInt(ev.Match.Decided)),
		intf(int64(ev.Match.Iterations)),
	)
}

// DecodeEvent parses a push frame back into an EventMsg.
func DecodeEvent(f Frame) (EventMsg, error) {
	var ev EventMsg
	if f.Type != TPush || f.Null || len(f.Array) < 3 {
		return ev, fmt.Errorf("event: malformed push frame")
	}
	a := f.Array
	if a[0].Type != TInt || a[1].Type != TBulk {
		return ev, fmt.Errorf("event: malformed push header")
	}
	ev.Sub = a[0].Int
	ev.Kind = string(a[1].Bulk)
	if ev.Kind == EvEnd {
		if len(a) != 3 || a[2].Type != TBulk {
			return ev, fmt.Errorf("event: malformed end frame")
		}
		ev.Reason = string(a[2].Bulk)
		return ev, nil
	}
	if len(a) != 9 || a[2].Type != TInt || a[3].Type != TBulk {
		return ev, fmt.Errorf("event: malformed %s frame", ev.Kind)
	}
	ev.Version = uint64(a[2].Int)
	obj, err := DecodeObject(a[3].Bulk)
	if err != nil {
		return ev, fmt.Errorf("event: %v", err)
	}
	ev.Object = obj
	m, err := decodeMatch(array(intf(int64(obj.ID)), a[4], a[5], a[6], a[7], a[8]))
	if err != nil {
		return ev, fmt.Errorf("event: %v", err)
	}
	m.ID = obj.ID
	ev.Match = m
	return ev, nil
}

package server_test

import (
	"net"
	"reflect"
	"testing"
	"time"

	"probprune/internal/query"
	"probprune/internal/server"
	"probprune/internal/server/client"
	"probprune/internal/uncertain"
)

// evNorm is an event stripped of the server-assigned subscription ID,
// for comparing streams observed through different subscriptions.
type evNorm struct {
	Kind    string
	Version uint64
	Obj     string
	Match   server.Match
	Reason  string
}

func normEvents(evs []server.EventMsg) []evNorm {
	out := make([]evNorm, len(evs))
	for i, ev := range evs {
		out[i] = evNorm{Kind: ev.Kind, Version: ev.Version, Match: ev.Match, Reason: ev.Reason}
		if ev.Object != nil {
			out[i].Obj = string(server.EncodeObject(ev.Object))
		}
	}
	return out
}

func assertAscending(t *testing.T, evs []server.EventMsg) {
	t.Helper()
	first := true
	var v uint64
	var id int
	for _, ev := range evs {
		if ev.Kind == server.EvEnd {
			continue
		}
		if !first && (ev.Version < v || (ev.Version == v && ev.Object.ID <= id)) {
			t.Fatalf("event watermarks not strictly ascending: (%d,%d) after (%d,%d)",
				ev.Version, ev.Object.ID, v, id)
		}
		v, id, first = ev.Version, ev.Object.ID, false
	}
}

// TestServerDurableParkResume is the heart of the subscription
// contract: a named subscription survives its connection, and RESUME
// with the last processed watermark continues the stream exactly — the
// concatenation of everything the durable subscriber saw across both
// connections is bit-identical to the stream of an uninterrupted
// reference subscription on the same predicate.
func TestServerDurableParkResume(t *testing.T) {
	db := testDB(7, 20)
	store, err := query.NewStore(db, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	q, err := uncertain.NewObject(0, db[2].Samples)
	if err != nil {
		t.Fatal(err)
	}
	const k, tau = 3, 0.2
	wantIDs := initialResultIDs(t, store, q, k, tau)
	if len(wantIDs) < 2 {
		t.Fatalf("test setup: initial result set %v too small", wantIDs)
	}
	E := len(wantIDs)

	_, addr := startServer(t, store, server.Options{CursorPath: t.TempDir() + "/cursor"})
	m := dial(t, addr) // control connection for mutations

	pred := client.SubOptions{Kind: "KNN", K: k, Tau: tau, Q: q}
	named := pred
	named.Name = "watch"

	rc := dial(t, addr)
	ref, err := rc.Subscribe(pred)
	if err != nil {
		t.Fatalf("reference subscribe: %v", err)
	}
	ac, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ac.Subscribe(named)
	if err != nil {
		t.Fatalf("durable subscribe: %v", err)
	}
	if a.Mode != server.ModeFull {
		t.Fatalf("first durable subscribe mode %q, want %q", a.Mode, server.ModeFull)
	}

	refInit := drainN(t, ref, E)
	aInit := drainN(t, a, E)
	if !reflect.DeepEqual(normEvents(aInit), normEvents(refInit)) {
		t.Fatalf("durable initial events differ from reference")
	}

	// Phase 1: delete a result member — guaranteed to produce events —
	// and let the durable subscriber process exactly one before its
	// connection dies.
	member := aInit[0].Object.ID
	memberObj, ok := store.Get(member)
	if !ok {
		t.Fatalf("member %d not in store", member)
	}
	var member2 int
	for id := range wantIDs {
		if id != member {
			member2 = id
			break
		}
	}
	if found, err := m.Delete(member); err != nil || !found {
		t.Fatalf("delete member: found=%v err=%v", found, err)
	}
	if _, err := m.WaitVersion(store.Version()); err != nil {
		t.Fatal(err)
	}
	aPhase1 := drainN(t, a, 1)
	wm := aPhase1[len(aPhase1)-1]
	ac.Close() // the session parks; events keep accruing in the ring

	// A parked session rejects a RESUME with a different predicate.
	// The server detaches the dropped connection asynchronously, so the
	// name can still be BUSY for a moment after Close.
	oc := dial(t, addr)
	wrong := named
	wrong.K = k + 1
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = oc.Resume("watch", wm.Version, wm.Object.ID, wrong)
		if !client.IsCode(err, "BUSY") || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !client.IsCode(err, "CURSORMISMATCH") {
		t.Fatalf("resume with wrong predicate: %v, want CURSORMISMATCH", err)
	}

	// Phase 2: more churn while nobody is attached.
	if err := m.Insert(memberObj); err != nil {
		t.Fatalf("reinsert member: %v", err)
	}
	if found, err := m.Delete(member2); err != nil || !found {
		t.Fatalf("delete member2: found=%v err=%v", found, err)
	}
	if _, err := m.WaitVersion(store.Version()); err != nil {
		t.Fatal(err)
	}

	// Resume at the watermark: an exact continuation.
	bc := dial(t, addr)
	b, err := bc.Resume("watch", wm.Version, wm.Object.ID, named)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if b.Mode != server.ModeContinue {
		t.Fatalf("resume mode %q, want %q", b.Mode, server.ModeContinue)
	}
	if b.Lost != 0 {
		t.Fatalf("resume lost %d, want 0", b.Lost)
	}

	// While attached, the name is busy for everyone else.
	b2c := dial(t, addr)
	if _, err := b2c.Resume("watch", wm.Version, wm.Object.ID, named); !client.IsCode(err, "BUSY") {
		t.Fatalf("resume of attached session: %v, want BUSY", err)
	}
	if _, err := b2c.Subscribe(named); !client.IsCode(err, "BUSY") {
		t.Fatalf("subscribe of live name: %v, want BUSY", err)
	}

	// End both streams and compare them whole.
	if err := rc.Unsubscribe(ref); err != nil {
		t.Fatal(err)
	}
	if err := bc.Unsubscribe(b); err != nil {
		t.Fatal(err)
	}
	refAll := append(refInit, drainAll(t, ref)...)
	durAll := append(append(aInit, aPhase1...), drainAll(t, b)...)
	assertAscending(t, refAll)
	if !reflect.DeepEqual(normEvents(durAll), normEvents(refAll)) {
		t.Fatalf("durable stream across reconnect differs from uninterrupted reference:\n got %+v\nwant %+v",
			normEvents(durAll), normEvents(refAll))
	}
}

// TestServerDurableRestart covers resuming across a server restart: the
// session registry is gone, but the monitor's durable cursor still
// knows the name, so RESUME (and plain SUBSCRIBE) deliver the coalesced
// delta — and SUBSCRIBE ... FRESH discards that state for a full
// snapshot.
func TestServerDurableRestart(t *testing.T) {
	db := testDB(8, 16)
	store, err := query.NewStore(db, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	q, err := uncertain.NewObject(0, db[4].Samples)
	if err != nil {
		t.Fatal(err)
	}
	const k, tau = 2, 0.3
	wantIDs := initialResultIDs(t, store, q, k, tau)
	if len(wantIDs) == 0 {
		t.Fatal("test setup: empty initial result set")
	}
	E := len(wantIDs)
	opts := server.Options{CursorPath: t.TempDir() + "/cursor"}
	named := client.SubOptions{Kind: "KNN", K: k, Tau: tau, Q: q, Name: "d"}

	srv1, addr1 := startServerManual(t, store, opts)
	c1, err := client.Dial(addr1)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := c1.Subscribe(named)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if d1.Mode != server.ModeFull {
		t.Fatalf("mode %q, want full", d1.Mode)
	}
	init := drainN(t, d1, E)
	wm := init[len(init)-1]
	c1.Close()
	if err := srv1.Close(); err != nil { // saves the cursor
		t.Fatal(err)
	}

	// Same store, fresh server process state.
	_, addr2 := startServer(t, store, opts)
	c2 := dial(t, addr2)
	d2, err := c2.Resume("d", wm.Version, wm.Object.ID, named)
	if err != nil {
		t.Fatalf("resume after restart: %v", err)
	}
	if d2.Mode != server.ModeDelta {
		t.Fatalf("resume-after-restart mode %q, want %q", d2.Mode, server.ModeDelta)
	}
	// Nothing changed since the cursor was saved: the delta is empty,
	// and new changes flow normally.
	member := init[0].Object.ID
	if found, err := c2.Delete(member); err != nil || !found {
		t.Fatalf("delete: found=%v err=%v", found, err)
	}
	if _, err := c2.WaitVersion(store.Version()); err != nil {
		t.Fatal(err)
	}
	evs := drainN(t, d2, 1)
	if evs[0].Version != store.Version() {
		t.Fatalf("post-restart event version %d, want %d", evs[0].Version, store.Version())
	}
	if err := c2.Unsubscribe(d2); err != nil {
		t.Fatal(err)
	}
	tail := drainAll(t, d2)
	if len(tail) == 0 || tail[len(tail)-1].Kind != server.EvEnd {
		t.Fatalf("stream did not end cleanly: %+v", tail)
	}

	// Plain SUBSCRIBE under a remembered name also resumes as a delta…
	d3, err := c2.Subscribe(named)
	if err != nil {
		t.Fatalf("re-subscribe: %v", err)
	}
	if d3.Mode != server.ModeDelta {
		t.Fatalf("re-subscribe mode %q, want %q", d3.Mode, server.ModeDelta)
	}
	if err := c2.Unsubscribe(d3); err != nil {
		t.Fatal(err)
	}
	drainAll(t, d3)

	// …while FRESH discards the durable state for a full snapshot.
	fresh := named
	fresh.Fresh = true
	d4, err := c2.Subscribe(fresh)
	if err != nil {
		t.Fatalf("fresh subscribe: %v", err)
	}
	if d4.Mode != server.ModeFull {
		t.Fatalf("fresh mode %q, want %q", d4.Mode, server.ModeFull)
	}
	nowIDs := initialResultIDs(t, store, q, k, tau)
	initNow := drainN(t, d4, len(nowIDs))
	for _, ev := range initNow {
		if ev.Kind != server.EvEntered || !nowIDs[ev.Object.ID] {
			t.Fatalf("fresh initial event %+v outside current result set %v", ev, nowIDs)
		}
	}
	if err := c2.Unsubscribe(d4); err != nil {
		t.Fatal(err)
	}
	drainAll(t, d4)
}

// startServerManual is startServer without the cleanup registration —
// for tests that close the server mid-test.
func startServerManual(t *testing.T, backend server.Backend, opts server.Options) (*server.Server, string) {
	t.Helper()
	srv := server.New(backend, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// TestServerResumeGone: under the disconnect policy, a watermark older
// than the ring's eviction horizon cannot be continued exactly — the
// server answers -GONE instead of silently gapping.
func TestServerResumeGone(t *testing.T) {
	db := testDB(9, 20)
	store, err := query.NewStore(db, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	q, err := uncertain.NewObject(0, db[5].Samples)
	if err != nil {
		t.Fatal(err)
	}
	const k, tau = 4, 0.1
	wantIDs := initialResultIDs(t, store, q, k, tau)
	if len(wantIDs) < 2 {
		t.Fatalf("test setup: initial result set %v too small", wantIDs)
	}
	E := len(wantIDs)

	// Ring exactly as large as the initial result set: the first parked
	// event evicts the oldest delivered one.
	_, addr := startServer(t, store, server.Options{CursorPath: t.TempDir() + "/cursor", Retain: E})
	m := dial(t, addr)
	named := client.SubOptions{Kind: "KNN", K: k, Tau: tau, Q: q, Name: "g"}

	ac, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ac.Subscribe(named)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	aInit := drainN(t, a, E)
	member := aInit[0].Object.ID
	wm := aInit[len(aInit)-1]
	ac.Close() // park with the full ring delivered

	if found, err := m.Delete(member); err != nil || !found {
		t.Fatalf("delete: found=%v err=%v", found, err)
	}
	if _, err := m.WaitVersion(store.Version()); err != nil {
		t.Fatal(err)
	}

	bc := dial(t, addr)
	if _, err := bc.Resume("g", 0, 0, named); !client.IsCode(err, "GONE") {
		t.Fatalf("resume from evicted watermark: %v, want GONE", err)
	}
	// The newest watermark still continues exactly.
	b, err := bc.Resume("g", wm.Version, wm.Object.ID, named)
	if err != nil {
		t.Fatalf("resume at watermark: %v", err)
	}
	if b.Mode != server.ModeContinue || b.Lost != 0 {
		t.Fatalf("resume mode %q lost %d, want continue/0", b.Mode, b.Lost)
	}
	if err := bc.Unsubscribe(b); err != nil {
		t.Fatal(err)
	}
	evs := drainAll(t, b)
	assertAscending(t, evs)
	sawLeft := false
	for _, ev := range evs {
		if ev.Kind == server.EvLeft && ev.Object.ID == member {
			sawLeft = true
		}
		if ev.Kind != server.EvEnd {
			w := wm
			if ev.Version < w.Version || (ev.Version == w.Version && ev.Object.ID <= w.Object.ID) {
				t.Fatalf("replayed event (%d,%d) at or before the watermark (%d,%d)",
					ev.Version, ev.Object.ID, w.Version, w.Object.ID)
			}
		}
	}
	if !sawLeft {
		t.Fatalf("replay missed the member deletion: %+v", evs)
	}
	if len(evs) == 0 || evs[len(evs)-1].Kind != server.EvEnd {
		t.Fatalf("stream did not end cleanly")
	}
}

// TestServerDropOldest: the shedding policy never answers -GONE; it
// reports the cumulative loss instead and replays what the ring kept.
func TestServerDropOldest(t *testing.T) {
	db := testDB(10, 20)
	store, err := query.NewStore(db, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	q, err := uncertain.NewObject(0, db[1].Samples)
	if err != nil {
		t.Fatal(err)
	}
	const k, tau = 3, 0.25
	wantIDs := initialResultIDs(t, store, q, k, tau)
	if len(wantIDs) == 0 {
		t.Fatal("test setup: empty initial result set")
	}
	E := len(wantIDs)
	_, addr := startServer(t, store, server.Options{CursorPath: t.TempDir() + "/cursor", Retain: E})
	m := dial(t, addr)
	named := client.SubOptions{Kind: "KNN", K: k, Tau: tau, Q: q, Name: "shed", Policy: "dropoldest"}

	ac, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ac.Subscribe(named)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	aInit := drainN(t, a, E)
	member := aInit[0].Object.ID
	memberObj, _ := store.Get(member)
	ac.Close()

	// Churn far past the ring while parked: E delivered events evict
	// silently, then dropoldest starts shedding and counting.
	for i := 0; i < E+2; i++ {
		if found, err := m.Delete(member); err != nil || !found {
			t.Fatalf("delete %d: found=%v err=%v", i, found, err)
		}
		if err := m.Insert(memberObj); err != nil {
			t.Fatalf("reinsert %d: %v", i, err)
		}
	}
	if _, err := m.WaitVersion(store.Version()); err != nil {
		t.Fatal(err)
	}

	bc := dial(t, addr)
	b, err := bc.Resume("shed", 0, 0, named)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if b.Mode != server.ModeContinue {
		t.Fatalf("resume mode %q, want continue", b.Mode)
	}
	if b.Lost == 0 {
		t.Fatal("dropoldest shed nothing despite churn far past the ring")
	}
	if err := bc.Unsubscribe(b); err != nil {
		t.Fatal(err)
	}
	evs := drainAll(t, b)
	assertAscending(t, evs)
	if len(evs) == 0 || evs[len(evs)-1].Kind != server.EvEnd {
		t.Fatalf("stream did not end cleanly: %+v", evs)
	}
	if n := len(evs) - 1; n > E {
		t.Fatalf("replayed %d events from a ring capped at %d", n, E)
	}
}

// TestServerSlowTermination: a parked disconnect-policy session whose
// ring fills with unconsumed events is terminated (the no-silent-gaps
// contract); a later RESUME cannot continue it and falls back to the
// durable cursor.
func TestServerSlowTermination(t *testing.T) {
	db := testDB(11, 16)
	store, err := query.NewStore(db, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	q, err := uncertain.NewObject(0, db[3].Samples)
	if err != nil {
		t.Fatal(err)
	}
	const k, tau = 2, 0.4
	wantIDs := initialResultIDs(t, store, q, k, tau)
	if len(wantIDs) == 0 {
		t.Fatal("test setup: empty initial result set")
	}
	E := len(wantIDs)
	srv, addr := startServer(t, store, server.Options{CursorPath: t.TempDir() + "/cursor", Retain: E})
	m := dial(t, addr)
	named := client.SubOptions{Kind: "KNN", K: k, Tau: tau, Q: q, Name: "slow"}

	ac, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ac.Subscribe(named)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	aInit := drainN(t, a, E)
	member := aInit[0].Object.ID
	memberObj, _ := store.Get(member)
	ac.Close()

	// The parked ring absorbs at most E new events (evicting the
	// delivered ones); churn past that terminates the session.
	for i := 0; i < E+2; i++ {
		if found, err := m.Delete(member); err != nil || !found {
			t.Fatalf("delete %d: found=%v err=%v", i, found, err)
		}
		if err := m.Insert(memberObj); err != nil {
			t.Fatalf("reinsert %d: %v", i, err)
		}
	}
	if _, err := m.WaitVersion(store.Version()); err != nil {
		t.Fatal(err)
	}

	// The kill cancels the cq subscription asynchronously; wait for the
	// durable cursor to remember the name before resuming.
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Monitor().HasCursorSub("slow") {
		if time.Now().After(deadline) {
			t.Fatal("terminated subscription never reached the durable cursor")
		}
		time.Sleep(2 * time.Millisecond)
	}

	bc := dial(t, addr)
	b, err := bc.Resume("slow", aInit[len(aInit)-1].Version, aInit[len(aInit)-1].Object.ID, named)
	if err != nil {
		t.Fatalf("resume after slow kill: %v", err)
	}
	if b.Mode != server.ModeDelta {
		t.Fatalf("resume mode %q, want %q (the session must not have survived)", b.Mode, server.ModeDelta)
	}
	if err := bc.Unsubscribe(b); err != nil {
		t.Fatal(err)
	}
	evs := drainAll(t, b)
	if len(evs) == 0 || evs[len(evs)-1].Kind != server.EvEnd {
		t.Fatalf("stream did not end cleanly: %+v", evs)
	}
}

package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"probprune/internal/cq"
	"probprune/internal/obs"
	"probprune/internal/query"
	"probprune/internal/uncertain"
)

// Error reply codes. -PROTO additionally means the server is about to
// close the connection, because the stream can no longer be framed.
const (
	codeErr            = "ERR"
	codeProto          = "PROTO"
	codeUnknown        = "UNKNOWN"
	codeBadArg         = "BADARG"
	codeBusy           = "BUSY"
	codeGone           = "GONE"
	codeCursorMismatch = "CURSORMISMATCH"
	codeNoDurable      = "NODURABLE"
)

// conn is one client connection: a reader goroutine decodes and
// dispatches commands strictly in order (pipelining is just reading
// ahead), a writer goroutine drains the frame queue onto the socket.
// Command replies enter the queue from the dispatch loop, subscription
// events from session delivery goroutines; the queue gives the
// connection one total output order, and the client separates the two
// streams by frame type (pushes are '>').
type conn struct {
	srv *Server
	nc  net.Conn
	id  int64 // server-unique, for log correlation

	outq   chan Frame
	queued atomic.Int64 // frames enqueued but not yet flushed to the socket
	closed chan struct{}
	once   sync.Once

	mu   sync.Mutex
	subs map[int64]*subState // sessions attached to this connection

	// tr is the connection's reusable trace for TRACE-flagged commands.
	// Dispatch is strictly serial on the read goroutine (pipelining is
	// just reading ahead), so one trace per connection suffices and the
	// traced path allocates no trace per command. qstart is the current
	// command's dispatch start, the base of the queue span.
	tr     obs.Trace
	qstart time.Time
}

func newConn(srv *Server, nc net.Conn) *conn {
	return &conn{
		srv:    srv,
		nc:     nc,
		id:     srv.nextConnID.Add(1),
		outq:   make(chan Frame, srv.opts.outQueue()),
		closed: make(chan struct{}),
		subs:   make(map[int64]*subState),
	}
}

// send enqueues a frame, blocking until there is room. It aborts (and
// reports false) when the connection closes or abort is closed.
func (c *conn) send(f Frame, abort <-chan struct{}) bool {
	c.queued.Add(1)
	select {
	case c.outq <- f:
		return true
	case <-c.closed:
		c.queued.Add(-1)
		return false
	case <-abort:
		c.queued.Add(-1)
		return false
	}
}

// reply enqueues a command reply (aborts only on connection close).
func (c *conn) reply(f Frame) bool {
	c.queued.Add(1)
	select {
	case c.outq <- f:
		return true
	case <-c.closed:
		c.queued.Add(-1)
		return false
	}
}

// trySend enqueues without blocking; best-effort.
func (c *conn) trySend(f Frame) bool {
	c.queued.Add(1)
	select {
	case c.outq <- f:
		return true
	default:
		c.queued.Add(-1)
		return false
	}
}

func (c *conn) addSub(st *subState) {
	c.mu.Lock()
	c.subs[st.id] = st
	c.mu.Unlock()
}

func (c *conn) dropSub(st *subState) {
	c.mu.Lock()
	delete(c.subs, st.id)
	c.mu.Unlock()
}

func (c *conn) findSub(id int64) *subState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.subs[id]
}

// close shuts the connection down exactly once: the socket closes, the
// writer drains out, and every attached session detaches (named ones
// park for RESUME, ephemeral ones terminate).
func (c *conn) close() {
	c.once.Do(func() {
		close(c.closed)
		c.nc.Close()
		c.mu.Lock()
		subs := make([]*subState, 0, len(c.subs))
		for _, st := range c.subs {
			subs = append(subs, st)
		}
		c.subs = make(map[int64]*subState)
		c.mu.Unlock()
		for _, st := range subs {
			st.detach(c)
		}
		c.srv.dropConn(c)
	})
}

// writeLoop owns the socket's write side.
func (c *conn) writeLoop() {
	defer c.srv.wg.Done()
	w := NewWriter(c.nc)
	unflushed := 0
	for {
		select {
		case f := <-c.outq:
			if err := w.WriteFrame(f); err != nil {
				c.close()
				return
			}
			unflushed++
			// Flush only when the queue drained: pipelined replies and
			// event bursts batch into large writes. queued counts down
			// only here, so Close can tell when a tail really hit the
			// socket rather than just the queue.
			if len(c.outq) == 0 {
				if err := w.Flush(); err != nil {
					c.close()
					return
				}
				c.queued.Add(-int64(unflushed))
				unflushed = 0
			}
		case <-c.closed:
			return
		}
	}
}

// readLoop owns the socket's read side: decode, dispatch, reply, in
// strict order.
func (c *conn) readLoop() {
	defer c.srv.wg.Done()
	defer c.close()
	r := NewReader(c.nc)
	for {
		f, err := r.ReadFrame()
		if err != nil {
			if errors.Is(err, ErrProto) {
				c.srv.metrics.protoErrors.Inc()
				c.srv.rec.Record(obs.EvProtoError, c.srv.rec.Note(err.Error()), 0, c.id, 0)
				c.srv.logf("server: protocol violation from %s: %v", c.nc.RemoteAddr(), err)
				c.srv.log.Warn("protocol violation", "conn", c.id, "err", err)
				c.reply(errf(codeProto, "%v", err))
				// Give the writer a moment to flush the diagnosis.
				time.Sleep(10 * time.Millisecond)
			}
			return
		}
		args, ok := commandArgs(f)
		if !ok {
			c.srv.metrics.protoErrors.Inc()
			c.srv.rec.Record(obs.EvProtoError, c.srv.rec.Note("command is not an array of bulk strings"), 0, c.id, 0)
			c.srv.log.Warn("protocol violation", "conn", c.id, "err", "command is not an array of bulk strings")
			c.reply(errf(codeProto, "commands must be arrays of bulk strings"))
			time.Sleep(10 * time.Millisecond)
			return
		}
		if len(args) == 0 {
			continue
		}
		c.dispatch(args)
		select {
		case <-c.closed:
			return
		default:
		}
	}
}

// commandArgs flattens a decoded command frame into its byte-slice
// arguments.
func commandArgs(f Frame) ([][]byte, bool) {
	if f.Type != TArray || f.Null {
		return nil, false
	}
	args := make([][]byte, len(f.Array))
	for i, el := range f.Array {
		if el.Type != TBulk || el.Null {
			return nil, false
		}
		args[i] = el.Bulk
	}
	return args, true
}

// Argument parsing helpers. They return ok=false after replying.

func argInt(b []byte) (int, error) {
	n, err := strconv.Atoi(string(b))
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", b)
	}
	return n, nil
}

func argUint(b []byte) (uint64, error) {
	n, err := strconv.ParseUint(string(b), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad unsigned integer %q", b)
	}
	return n, nil
}

func argFloat(b []byte) (float64, error) {
	return parseFloat(string(b))
}

func argKind(b []byte) (cq.Kind, error) {
	switch {
	case bytes.EqualFold(b, []byte("KNN")):
		return cq.KNN, nil
	case bytes.EqualFold(b, []byte("RKNN")):
		return cq.RKNN, nil
	}
	return 0, fmt.Errorf("bad subscription kind %q (want KNN or RKNN)", b)
}

func argPolicy(b []byte) (Policy, error) {
	switch {
	case bytes.EqualFold(b, []byte("disconnect")):
		return PolicyDisconnect, nil
	case bytes.EqualFold(b, []byte("dropoldest")):
		return PolicyDropOldest, nil
	}
	return 0, fmt.Errorf("bad policy %q (want disconnect or dropoldest)", b)
}

// stripTrace recognizes a trailing TRACE flag on a command's argument
// list, reporting whether it was present (and returning the arguments
// without it).
func stripTrace(rest [][]byte) ([][]byte, bool) {
	if n := len(rest); n > 0 && bytes.EqualFold(rest[n-1], []byte("TRACE")) {
		return rest[:n-1], true
	}
	return rest, false
}

// markQueue closes the traced command's queue span: dispatch start to
// backend execution start, i.e. the server-side time spent parsing
// arguments and decoding objects before the store saw the request.
// Handlers call it immediately before invoking the backend.
func (c *conn) markQueue(ctx context.Context) {
	if tr := obs.TraceFrom(ctx); tr != nil {
		tr.AddQueue(time.Since(c.qstart))
	}
}

// dispatch executes one command and enqueues its reply. Query and
// mutation commands accept a trailing TRACE flag: the server threads an
// obs.Trace through the backend call and appends the trace snapshot to
// the reply as a second frame (see encodeTraceFrame).
func (c *conn) dispatch(args [][]byte) {
	cmd := string(bytes.ToUpper(args[0]))
	rest := args[1:]
	start := time.Now()
	c.qstart = start
	ctx := c.srv.ctx
	var tr *obs.Trace
	switch cmd {
	case "KNN", "RKNN", "TOPKNN", "INVRANK", "BATCH", "INSERT", "UPDATE", "DELETE":
		var traced bool
		if rest, traced = stripTrace(rest); traced {
			tr = &c.tr
			tr.Reset()
			ctx = obs.WithTrace(ctx, tr)
		}
	}
	var f Frame
	switch cmd {
	case "PING":
		if len(rest) == 1 {
			f = bulk(bytes.Clone(rest[0]))
		} else {
			f = simple("PONG")
		}
	case "VERSION":
		f = c.cmdVersion(rest)
	case "LEN":
		f = intf(int64(c.srv.backend.Len()))
	case "GET":
		f = c.cmdGet(rest)
	case "INSERT":
		f = c.cmdMutate(ctx, rest, c.srv.backend.InsertCtx)
	case "UPDATE":
		f = c.cmdMutate(ctx, rest, c.srv.backend.UpdateCtx)
	case "DELETE":
		f = c.cmdDelete(ctx, rest)
	case "KNN":
		f = c.cmdThresholdQuery(ctx, rest, c.srv.backend.KNNCtx)
	case "RKNN":
		f = c.cmdThresholdQuery(ctx, rest, c.srv.backend.RKNNCtx)
	case "TOPKNN":
		f = c.cmdTopKNN(ctx, rest)
	case "INVRANK":
		f = c.cmdInvRank(ctx, rest)
	case "BATCH":
		f = c.cmdBatch(ctx, rest)
	case "WAITVERSION":
		f = c.cmdWaitVersion(rest)
	case "SUBSCRIBE":
		f = c.cmdSubscribe(rest)
	case "RESUME":
		f = c.cmdResume(rest)
	case "UNSUBSCRIBE":
		f = c.cmdUnsubscribe(rest)
	case "STATS":
		f = c.cmdStats(rest)
	case "EVENTS":
		f = c.cmdEvents(rest)
	default:
		f = errf(codeUnknown, "unknown command %q", cmd)
	}
	if tr != nil && f.Type != 0 && f.Type != TError {
		f = array(f, encodeTraceFrame(tr.Snapshot()))
	}
	cm := c.srv.metrics.cmd(cmd)
	cm.calls.Inc()
	cm.latency.Observe(time.Since(start))
	if f.Type == TError {
		cm.errors.Inc()
	}
	if f.Type != 0 { // zero Frame: the handler already replied
		c.reply(f)
	}
}

// cmdVersion serves the identity reply: the store's mutation epoch plus
// the serving process's identity — Go version, GOMAXPROCS, and uptime.
func (c *conn) cmdVersion(rest [][]byte) Frame {
	if len(rest) != 0 {
		return errf(codeBadArg, "VERSION takes no arguments")
	}
	return array(
		intf(int64(c.srv.backend.Version())),
		bulkStr(runtime.Version()),
		intf(int64(runtime.GOMAXPROCS(0))),
		intf(int64(time.Since(c.srv.started)/time.Second)),
	)
}

// cmdEvents serves the flight recorder: EVENTS [n] returns the ring's
// current events oldest-first (the newest n when a count is given).
func (c *conn) cmdEvents(rest [][]byte) Frame {
	if len(rest) > 1 {
		return errf(codeBadArg, "EVENTS [n]")
	}
	n := 0
	if len(rest) == 1 {
		v, err := argInt(rest[0])
		if err != nil || v < 0 {
			return errf(codeBadArg, "bad event count %q", rest[0])
		}
		n = v
	}
	evs := c.srv.rec.Snapshot()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	elems := make([]Frame, len(evs))
	for i, ev := range evs {
		elems[i] = encodeRecorderEvent(ev)
	}
	return array(elems...)
}

func (c *conn) cmdGet(rest [][]byte) Frame {
	if len(rest) != 1 {
		return errf(codeBadArg, "GET <id>")
	}
	id, err := argInt(rest[0])
	if err != nil {
		return errf(codeBadArg, "%v", err)
	}
	o, ok := c.srv.backend.Get(id)
	if !ok {
		return Frame{Type: TBulk, Null: true}
	}
	return bulk(EncodeObject(o))
}

func (c *conn) cmdMutate(ctx context.Context, rest [][]byte, op func(context.Context, *uncertain.Object) error) Frame {
	if len(rest) != 1 {
		return errf(codeBadArg, "INSERT|UPDATE <object>")
	}
	o, err := DecodeObject(rest[0])
	if err != nil {
		return errf(codeBadArg, "%v", err)
	}
	c.markQueue(ctx)
	if err := op(ctx, o); err != nil {
		return errf(codeErr, "%v", err)
	}
	return simple("OK")
}

func (c *conn) cmdDelete(ctx context.Context, rest [][]byte) Frame {
	if len(rest) != 1 {
		return errf(codeBadArg, "DELETE <id>")
	}
	id, err := argInt(rest[0])
	if err != nil {
		return errf(codeBadArg, "%v", err)
	}
	c.markQueue(ctx)
	found, err := c.srv.backend.DeleteErrCtx(ctx, id)
	if err != nil {
		return errf(codeErr, "%v", err)
	}
	return intf(boolInt(found))
}

func (c *conn) cmdThresholdQuery(ctx context.Context, rest [][]byte, run func(context.Context, *uncertain.Object, int, float64) ([]query.Match, error)) Frame {
	if len(rest) != 3 {
		return errf(codeBadArg, "KNN|RKNN <k> <tau> <object>")
	}
	k, err := argInt(rest[0])
	if err != nil {
		return errf(codeBadArg, "%v", err)
	}
	tau, err := argFloat(rest[1])
	if err != nil {
		return errf(codeBadArg, "%v", err)
	}
	q, err := DecodeObject(rest[2])
	if err != nil {
		return errf(codeBadArg, "%v", err)
	}
	c.markQueue(ctx)
	ms, err := run(ctx, q, k, tau)
	if err != nil {
		return errf(codeErr, "%v", err)
	}
	return EncodeMatches(ms)
}

func (c *conn) cmdTopKNN(ctx context.Context, rest [][]byte) Frame {
	if len(rest) != 3 {
		return errf(codeBadArg, "TOPKNN <k> <m> <object>")
	}
	k, err := argInt(rest[0])
	if err != nil {
		return errf(codeBadArg, "%v", err)
	}
	m, err := argInt(rest[1])
	if err != nil {
		return errf(codeBadArg, "%v", err)
	}
	q, err := DecodeObject(rest[2])
	if err != nil {
		return errf(codeBadArg, "%v", err)
	}
	c.markQueue(ctx)
	ms, err := c.srv.backend.TopKNNCtx(ctx, q, k, m)
	if err != nil {
		return errf(codeErr, "%v", err)
	}
	return EncodeMatches(ms)
}

func (c *conn) cmdInvRank(ctx context.Context, rest [][]byte) Frame {
	if len(rest) != 2 {
		return errf(codeBadArg, "INVRANK <object-b> <object-r>")
	}
	b, err := DecodeObject(rest[0])
	if err != nil {
		return errf(codeBadArg, "%v", err)
	}
	r, err := DecodeObject(rest[1])
	if err != nil {
		return errf(codeBadArg, "%v", err)
	}
	c.markQueue(ctx)
	return EncodeRankDist(c.srv.backend.InverseRank(b, r))
}

// cmdBatch routes a whole pipeline of kNN queries onto the store's
// one-snapshot BatchKNN path: BATCH <n> then n×(<k> <tau> <object>).
func (c *conn) cmdBatch(ctx context.Context, rest [][]byte) Frame {
	if len(rest) < 1 {
		return errf(codeBadArg, "BATCH <n> (<k> <tau> <object>)...")
	}
	n, err := argInt(rest[0])
	if err != nil || n < 0 {
		return errf(codeBadArg, "bad batch size %q", rest[0])
	}
	if len(rest) != 1+3*n {
		return errf(codeBadArg, "BATCH %d wants %d arguments, got %d", n, 1+3*n, len(rest))
	}
	reqs := make([]query.KNNRequest, n)
	for i := 0; i < n; i++ {
		k, err := argInt(rest[1+3*i])
		if err != nil {
			return errf(codeBadArg, "query %d: %v", i, err)
		}
		tau, err := argFloat(rest[2+3*i])
		if err != nil {
			return errf(codeBadArg, "query %d: %v", i, err)
		}
		q, err := DecodeObject(rest[3+3*i])
		if err != nil {
			return errf(codeBadArg, "query %d: %v", i, err)
		}
		reqs[i] = query.KNNRequest{Q: q, K: k, Tau: tau}
	}
	c.markQueue(ctx)
	results, err := c.srv.backend.BatchKNN(ctx, reqs)
	if err != nil {
		return errf(codeErr, "%v", err)
	}
	elems := make([]Frame, len(results))
	for i, ms := range results {
		elems[i] = EncodeMatches(ms)
	}
	return array(elems...)
}

func (c *conn) cmdWaitVersion(rest [][]byte) Frame {
	if len(rest) != 1 {
		return errf(codeBadArg, "WAITVERSION <version>")
	}
	v, err := argUint(rest[0])
	if err != nil {
		return errf(codeBadArg, "%v", err)
	}
	ctx, cancel := context.WithTimeout(c.srv.ctx, 30*time.Second)
	defer cancel()
	if err := c.srv.mon.WaitVersion(ctx, v); err != nil {
		return errf(codeErr, "%v", err)
	}
	return intf(int64(c.srv.mon.Version()))
}

// subSpec is a parsed subscription predicate plus session options.
type subSpec struct {
	kind   cq.Kind
	k      int
	tau    float64
	q      *uncertain.Object
	name   string
	policy Policy
	fresh  bool
}

// parseSubSpec parses <kind> <k> <tau> <object> [NAME n] [POLICY p]
// [FRESH] starting at rest[0].
func parseSubSpec(rest [][]byte) (subSpec, error) {
	var sp subSpec
	if len(rest) < 4 {
		return sp, fmt.Errorf("want <KNN|RKNN> <k> <tau> <object>")
	}
	var err error
	if sp.kind, err = argKind(rest[0]); err != nil {
		return sp, err
	}
	if sp.k, err = argInt(rest[1]); err != nil {
		return sp, err
	}
	if sp.tau, err = argFloat(rest[2]); err != nil {
		return sp, err
	}
	if sp.q, err = DecodeObject(rest[3]); err != nil {
		return sp, err
	}
	rest = rest[4:]
	for len(rest) > 0 {
		switch {
		case bytes.EqualFold(rest[0], []byte("NAME")) && len(rest) >= 2:
			sp.name = string(rest[1])
			if sp.name == "" {
				return sp, fmt.Errorf("empty NAME")
			}
			rest = rest[2:]
		case bytes.EqualFold(rest[0], []byte("POLICY")) && len(rest) >= 2:
			if sp.policy, err = argPolicy(rest[1]); err != nil {
				return sp, err
			}
			rest = rest[2:]
		case bytes.EqualFold(rest[0], []byte("FRESH")):
			sp.fresh = true
			rest = rest[1:]
		default:
			return sp, fmt.Errorf("bad subscription option %q", rest[0])
		}
	}
	return sp, nil
}

func (c *conn) cmdSubscribe(rest [][]byte) Frame {
	sp, err := parseSubSpec(rest)
	if err != nil {
		return errf(codeBadArg, "SUBSCRIBE: %v", err)
	}
	st, mode, ef := c.srv.subscribe(c, sp)
	if ef != nil {
		return *ef
	}
	c.srv.log.Info("subscribe", "conn", c.id, "sub", st.id, "name", st.name, "mode", mode)
	// Reply while delivery is held: the client sees [id, mode] strictly
	// before the subscription's first push frame.
	c.reply(array(intf(st.id), bulkStr(mode)))
	c.srv.release(st)
	return Frame{} // already replied
}

func (c *conn) cmdResume(rest [][]byte) Frame {
	if len(rest) < 7 {
		return errf(codeBadArg, "RESUME <name> <version> <objid> <KNN|RKNN> <k> <tau> <object>")
	}
	name := string(rest[0])
	wv, err := argUint(rest[1])
	if err != nil {
		return errf(codeBadArg, "%v", err)
	}
	wid, err := argInt(rest[2])
	if err != nil {
		return errf(codeBadArg, "%v", err)
	}
	sp, err := parseSubSpec(rest[3:])
	if err != nil {
		return errf(codeBadArg, "RESUME: %v", err)
	}
	sp.name = name
	st, mode, lost, ef := c.srv.resume(c, sp, watermark{v: wv, id: wid})
	if ef != nil {
		return *ef
	}
	c.srv.log.Info("resume", "conn", c.id, "sub", st.id, "name", name, "mode", mode, "lost", lost)
	c.reply(array(intf(st.id), bulkStr(mode), intf(int64(lost))))
	c.srv.release(st)
	return Frame{}
}

func (c *conn) cmdUnsubscribe(rest [][]byte) Frame {
	if len(rest) != 1 {
		return errf(codeBadArg, "UNSUBSCRIBE <subid>")
	}
	id, err := argInt(rest[0])
	if err != nil {
		return errf(codeBadArg, "%v", err)
	}
	st := c.findSub(int64(id))
	if st == nil {
		return errf(codeErr, "no subscription %d on this connection", id)
	}
	st.unsubscribe()
	return intf(1)
}

// predicateEqual compares a session's standing predicate against a
// RESUME request: the query object is part of the predicate and is
// compared by value, exactly as the durable cursor does.
func (st *subState) predicateEqual(sp subSpec) bool {
	return st.kind == sp.kind && st.k == sp.k && st.tau == sp.tau && reflect.DeepEqual(st.q, sp.q)
}

package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"probprune/internal/obs"
)

// DebugHandler serves the server's observability surface over HTTP,
// for the opt-in udbserver -debug-addr listener:
//
//	/metrics      the metric snapshot as a JSON object (keys sorted);
//	              ?format=prom renders the Prometheus/OpenMetrics text
//	              exposition instead (histograms as cumulative buckets)
//	/events       the flight recorder's current events as a JSON array,
//	              oldest first
//	/debug/pprof  the standard net/http/pprof profiles
//
// It is intentionally separate from the data-plane protocol: the debug
// listener binds its own (typically loopback) address and can stay off
// in production. Every handler works from one immutable snapshot, so
// scrapes never hold a lock the serving path could block on.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		pts := s.MetricPoints()
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := obs.WriteProm(w, pts); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(obs.PointsMap(pts)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		evs := s.rec.Snapshot()
		out := make([]RecorderEvent, len(evs))
		for i, ev := range evs {
			out[i] = recorderEventFromObs(ev)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

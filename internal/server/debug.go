package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// DebugHandler serves the server's observability surface over HTTP,
// for the opt-in udbserver -debug-addr listener:
//
//	/metrics      the StatsMap as a JSON object (keys sorted)
//	/debug/pprof  the standard net/http/pprof profiles
//
// It is intentionally separate from the data-plane protocol: the debug
// listener binds its own (typically loopback) address and can stay off
// in production.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.StatsMap()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

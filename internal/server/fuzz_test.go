package server

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// fuzzSeeds are shared by both fuzzers: well-formed frames, torn
// frames, limit overruns and plain garbage — the adversarial inputs a
// public TCP port actually receives.
var fuzzSeeds = [][]byte{
	[]byte("+OK\r\n"),
	[]byte("-ERR something broke\r\n"),
	[]byte(":12345\r\n"),
	[]byte(":-1\r\n"),
	[]byte("$5\r\nhello\r\n"),
	[]byte("$0\r\n\r\n"),
	[]byte("$-1\r\n"),
	[]byte("*-1\r\n"),
	[]byte("*0\r\n"),
	[]byte("*3\r\n$3\r\nKNN\r\n:5\r\n$3\r\n0.5\r\n"),
	[]byte(">3\r\n:1\r\n$7\r\nentered\r\n:42\r\n"),
	[]byte("*2\r\n*2\r\n:1\r\n:2\r\n*0\r\n"),
	[]byte("PING\r\n"),
	[]byte("KNN 5 0.5 1 2 1 0 0.25 0.75\r\n"),
	[]byte("\r\n  \r\nPING\r\n"),
	[]byte("$5\r\nhel"),           // torn bulk
	[]byte("*3\r\n:1\r\n"),        // torn array
	[]byte(":12"),                 // torn int line
	[]byte("$99999999999999\r\n"), // oversize bulk header
	[]byte("*70000\r\n"),          // oversize array header
	[]byte("$3\r\nabcXY"),         // bulk without CRLF terminator
	[]byte("*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n:1\r\n"),
	[]byte(":abc\r\n"),
	[]byte("$-7\r\n"),
	[]byte{0x00, 0xff, 0x0d, 0x0a},
	[]byte("+OK\r\n:1\r\n$1\r\nx\r\nGARBAGE NO NEWLINE"),
}

// FuzzProtoDecode feeds arbitrary byte streams — pipelined garbage,
// torn frames, oversize headers — through the frame reader. It must
// never panic; every error must be either a protocol violation or a
// clean (unexpected) EOF, and any frame it does hand out must survive
// an encode→decode round trip.
func FuzzProtoDecode(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i <= len(data); i++ {
			fr, err := r.ReadFrame()
			if err != nil {
				if !errors.Is(err, ErrProto) && err != io.EOF && err != io.ErrUnexpectedEOF {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			var buf bytes.Buffer
			w := NewWriter(&buf)
			if err := w.WriteFrame(fr); err != nil {
				t.Fatalf("decoded frame %+v does not re-encode: %v", fr, err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			back, err := NewReader(&buf).ReadFrame()
			if err != nil {
				t.Fatalf("re-encoded frame %q does not decode: %v", buf.Bytes(), err)
			}
			if !fr.Equal(back) {
				t.Fatalf("round trip changed %+v into %+v", fr, back)
			}
		}
		// Each successful ReadFrame consumes at least one input byte, so
		// reaching here means the loop bound was wrong, not the reader.
		t.Fatal("reader produced more frames than input bytes")
	})
}

// FuzzProtoRoundTrip checks encode canonicality: whatever decodes must
// re-encode to a byte stream that decodes to an equal frame AND whose
// own re-encoding is byte-identical (a canonical form — two encodes of
// the same frame can never differ, which the equivalence tier's
// byte-level comparisons rely on).
func FuzzProtoRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	encode := func(t *testing.T, fr Frame) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteFrame(fr); err != nil {
			t.Fatalf("encode %+v: %v", fr, err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := NewReader(bytes.NewReader(data)).ReadFrame()
		if err != nil {
			return // undecodable input is FuzzProtoDecode's territory
		}
		first := encode(t, fr)
		back, err := NewReader(bytes.NewReader(first)).ReadFrame()
		if err != nil {
			t.Fatalf("canonical encoding %q does not decode: %v", first, err)
		}
		if !fr.Equal(back) {
			t.Fatalf("round trip changed %+v into %+v", fr, back)
		}
		second := encode(t, back)
		if !bytes.Equal(first, second) {
			t.Fatalf("encoding not canonical: %q then %q", first, second)
		}
	})
}

package server_test

// The docs-sync lint: docs/METRICS.md and the served metric namespace
// may not drift. Every key a fully wired server serves must match a
// documented key pattern, and every documented pattern must be hit by
// at least one served key. The doc is parsed from its `| key |` tables;
// `<cmd>`/`<kind>` placeholders and trailing `.*` histogram wildcards
// are expanded into matchers.

import (
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"probprune/internal/query"
	"probprune/internal/server"
	"probprune/internal/server/client"
	"probprune/internal/wal"
)

// docKeyPatterns extracts the code spans from the key column of every
// `| key | kind | meaning |` table in METRICS.md.
func docKeyPatterns(t *testing.T) []string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "METRICS.md"))
	if err != nil {
		t.Fatal(err)
	}
	span := regexp.MustCompile("`([^`]+)`")
	var pats []string
	inKeyTable := false
	for _, line := range strings.Split(string(raw), "\n") {
		switch {
		case strings.HasPrefix(line, "| key |"):
			inKeyTable = true
			continue
		case !strings.HasPrefix(line, "|"):
			inKeyTable = false
			continue
		case !inKeyTable || strings.HasPrefix(line, "|--"):
			continue
		}
		cells := strings.SplitN(line, "|", 3)
		if len(cells) < 3 {
			continue
		}
		for _, m := range span.FindAllStringSubmatch(cells[1], -1) {
			pats = append(pats, m[1])
		}
	}
	if len(pats) < 20 {
		t.Fatalf("parsed only %d documented keys from METRICS.md — table parsing broke", len(pats))
	}
	return pats
}

// patternRegexp compiles one documented key pattern into a full-match
// regexp: `<cmd>`/`<kind>` match one lower-case name segment, a
// trailing `.*` matches the histogram suffix expansion.
func patternRegexp(t *testing.T, pat string) *regexp.Regexp {
	t.Helper()
	wild := strings.HasSuffix(pat, ".*")
	pat = strings.TrimSuffix(pat, ".*")
	esc := regexp.QuoteMeta(pat)
	esc = strings.ReplaceAll(esc, regexp.QuoteMeta("<cmd>"), `[a-z0-9_]+`)
	esc = strings.ReplaceAll(esc, regexp.QuoteMeta("<kind>"), `[a-z0-9_]+`)
	if wild {
		esc += `\.[a-z0-9_.]+`
	}
	return regexp.MustCompile("^" + esc + "$")
}

// TestMetricsDocsSync serves as the drift tripwire in both directions.
func TestMetricsDocsSync(t *testing.T) {
	// A fully wired server: durable backend (wal.* and store.* present),
	// one live subscription (cq.* exercised), one command of each
	// metric-bearing family so nothing is lazily absent.
	db := testDB(23, 24)
	durable, err := query.BootstrapStore(db, query.PersistOptions{
		Dir: t.TempDir(), Sync: wal.SyncAlways, CheckpointEvery: 4}, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { durable.Close() })
	srv, addr := startServer(t, durable, server.Options{
		CursorPath: filepath.Join(t.TempDir(), "cursor")})
	cl := dial(t, addr)
	rng := rand.New(rand.NewSource(3))
	q := testObj(rng, -1)
	if _, err := cl.KNN(q, 3, 0.3); err != nil {
		t.Fatal(err)
	}
	sub, err := cl.Subscribe(client.SubOptions{Kind: "KNN", K: 3, Tau: 0.3, Q: q})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert(testObj(rng, 8001)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Unsubscribe(sub); err != nil {
		t.Fatal(err)
	}

	served := srv.StatsMap()
	pats := docKeyPatterns(t)
	res := make([]*regexp.Regexp, len(pats))
	for i, p := range pats {
		res[i] = patternRegexp(t, p)
	}

	// Direction 1: every served key is documented.
	matched := make([]bool, len(pats))
	for key := range served {
		ok := false
		for i, re := range res {
			if re.MatchString(key) {
				matched[i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("served metric %q is not documented in docs/METRICS.md", key)
		}
	}

	// Direction 2: every documented pattern names something the server
	// actually serves.
	for i, hit := range matched {
		if !hit {
			t.Errorf("docs/METRICS.md documents %q but a fully wired server never serves it", pats[i])
		}
	}
}

package server

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"probprune/internal/cq"
	"probprune/internal/obs"
	"probprune/internal/query"
	"probprune/internal/uncertain"
)

// Backend is the store surface the server serves. Both *query.Store and
// *query.ShardedStore satisfy it — the server adds a wire, never its
// own query semantics, so everything it answers is bit-identical to
// calling the backend in process (the equivalence test tier enforces
// this across both backends).
type Backend interface {
	cq.Source // Watch + Version, for the subscription monitor

	Insert(o *uncertain.Object) error
	Update(o *uncertain.Object) error
	DeleteErr(id int) (bool, error)
	Get(id int) (*uncertain.Object, bool)
	Len() int

	// The context-threading mutation variants carry an obs.Trace for the
	// TRACE protocol flag: a traced INSERT measures its WAL-wait span
	// (group-commit fsync) and ships it back to the client.
	InsertCtx(ctx context.Context, o *uncertain.Object) error
	UpdateCtx(ctx context.Context, o *uncertain.Object) error
	DeleteErrCtx(ctx context.Context, id int) (bool, error)

	KNNCtx(ctx context.Context, q *uncertain.Object, k int, tau float64) ([]query.Match, error)
	RKNNCtx(ctx context.Context, q *uncertain.Object, k int, tau float64) ([]query.Match, error)
	TopKNNCtx(ctx context.Context, q *uncertain.Object, k, m int) ([]query.Match, error)
	InverseRank(b, r *uncertain.Object) *query.RankDistribution
	BatchKNN(ctx context.Context, reqs []query.KNNRequest) ([][]query.Match, error)
}

// Options configures a Server.
type Options struct {
	// CursorPath enables durable (named) subscriptions: it becomes the
	// subscription monitor's cursor file (see cq.Options.CursorPath).
	// Empty disables NAME/RESUME-after-restart; anonymous subscriptions
	// still work.
	CursorPath string
	// CursorEvery auto-saves the durable cursor after that many
	// processed changes; <= 0 selects 512.
	CursorEvery int
	// SubBuffer is the monitor-level per-subscription event buffer;
	// <= 0 selects 4096. The server drains it promptly into each
	// session's retained ring, so this only bounds scheduling jitter.
	SubBuffer int
	// Retain is the per-session retained event ring: the resume window
	// of a parked subscription and the backpressure bound of an
	// attached one. <= 0 selects 8192.
	Retain int
	// OutQueue is the per-connection outbound frame queue; <= 0
	// selects 1024.
	OutQueue int
	// DrainTimeout bounds how long Close waits for subscription
	// sessions to deliver their tails before force-closing
	// connections; <= 0 selects 5s.
	DrainTimeout time.Duration
	// SlowQuery arms the flight recorder's slow-query capture: every
	// query at least this slow records its full trace snapshot into the
	// recorder ring, whether or not the client asked for TRACE. <= 0
	// disables the capture (the recorder still logs errors and
	// durability events).
	SlowQuery time.Duration
	// RecorderSize is the flight-recorder ring capacity in events;
	// <= 0 selects 1024.
	RecorderSize int
	// Logf, when set, receives server diagnostics.
	Logf func(format string, args ...any)
	// Logger, when set, receives structured lifecycle logging: connect,
	// disconnect, park, resume and protocol errors, each tagged with the
	// connection ID. Nil discards.
	Logger *slog.Logger
}

func (o Options) cursorEvery() int {
	if o.CursorEvery <= 0 {
		return 512
	}
	return o.CursorEvery
}

func (o Options) subBuffer() int {
	if o.SubBuffer <= 0 {
		return 4096
	}
	return o.SubBuffer
}

func (o Options) retain() int {
	if o.Retain <= 0 {
		return 8192
	}
	return o.Retain
}

func (o Options) outQueue() int {
	if o.OutQueue <= 0 {
		return 1024
	}
	return o.OutQueue
}

func (o Options) drainTimeout() time.Duration {
	if o.DrainTimeout <= 0 {
		return 5 * time.Second
	}
	return o.DrainTimeout
}

func (o Options) recorderSize() int {
	if o.RecorderSize <= 0 {
		return 1024
	}
	return o.RecorderSize
}

// Modes a SUBSCRIBE/RESUME reply reports, telling the client how to
// interpret the initial events:
const (
	// ModeFull: the initial ObjectEntered events are the complete
	// current result set.
	ModeFull = "full"
	// ModeDelta: the initial events are the coalesced delta against the
	// durable cursor's persisted result set (resume across a server
	// restart) — exact if the client had drained the stream up to the
	// last cursor save.
	ModeDelta = "delta"
	// ModeContinue: an exact continuation — the events that follow are
	// precisely the stream suffix past the watermark the client
	// presented. Nothing is missing, nothing repeats.
	ModeContinue = "continue"
)

// Server serves the protocol of this package over a Backend. Construct
// with New, start with Serve or ListenAndServe, stop with Close.
//
// One cq.Monitor (and thus one maintenance worker) is shared by all
// connections; subscription sessions live in the server's registry so
// they survive the connections that created them (see subs.go).
type Server struct {
	opts    Options
	backend Backend
	mon     *cq.Monitor
	metrics *srvMetrics
	rec     *obs.Recorder
	started time.Time
	log     *slog.Logger

	nextConnID atomic.Int64

	ctx    context.Context // server lifetime: cancels in-flight queries on Close
	cancel context.CancelFunc

	wg sync.WaitGroup // connection loops + session pumps/deliveries

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	sessions map[int64]*subState
	named    map[string]*subState
	nextSub  int64
	closed   bool
}

// New wraps backend in a server. The subscription monitor attaches
// immediately (mutations from now on publish snapshots); the server
// owns it until Close.
func New(backend Backend, opts Options) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		opts:     opts,
		backend:  backend,
		metrics:  newSrvMetrics(),
		rec:      obs.NewRecorder(opts.recorderSize()),
		started:  time.Now(),
		log:      log,
		ctx:      ctx,
		cancel:   cancel,
		conns:    make(map[*conn]struct{}),
		sessions: make(map[int64]*subState),
		named:    make(map[string]*subState),
	}
	// The flight recorder is server-owned but records store-side events
	// too: backends that can carry one (both stores do) get it installed,
	// along with the slow-query capture threshold.
	if b, ok := backend.(interface{ SetRecorder(*obs.Recorder) }); ok {
		b.SetRecorder(s.rec)
	}
	if opts.SlowQuery > 0 {
		if b, ok := backend.(interface{ SetSlowQueryThreshold(time.Duration) }); ok {
			b.SetSlowQueryThreshold(opts.SlowQuery)
		}
	}
	s.mon = cq.NewMonitor(backend, cq.Options{
		Buffer:      opts.subBuffer(),
		Policy:      cq.DisconnectSlow, // sessions drain promptly; never gap silently
		CursorPath:  opts.CursorPath,
		CursorEvery: opts.cursorEvery(),
	})
	return s
}

// ListenAndServe listens on addr (TCP) and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It returns nil after
// Close, the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		c := newConn(s, nc)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.metrics.connsAccepted.Inc()
		s.metrics.connsOpen.Inc()
		s.log.Info("connection accepted", "conn", c.id, "remote", nc.RemoteAddr().String())
		s.wg.Add(2)
		go c.readLoop()
		go c.writeLoop()
	}
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Monitor exposes the server's subscription monitor (stats, SaveCursor).
func (s *Server) Monitor() *cq.Monitor { return s.mon }

// Recorder exposes the server's flight recorder (the EVENTS command and
// the debug endpoint serve its snapshots).
func (s *Server) Recorder() *obs.Recorder { return s.rec }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Close shuts the server down gracefully: stop accepting, close the
// monitor (every committed change is still processed and delivered),
// let sessions push their tails and terminal EvEnd frames, then drop
// the connections. Sessions that cannot drain within DrainTimeout
// (stalled peers) are cut off.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// Ends every cq stream after draining committed changes; pumps see
	// the close, sessions deliver what remains and terminate.
	s.mon.Close()
	deadline := time.Now().Add(s.opts.drainTimeout())
	for {
		s.mu.Lock()
		n := len(s.sessions)
		s.mu.Unlock()
		if n == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	// A retired session only proves its terminal frame reached the
	// connection's queue; wait for the writers to flush the tails onto
	// the sockets before cutting them.
	for {
		s.mu.Lock()
		var pending int64
		for c := range s.conns {
			pending += c.queued.Load()
		}
		s.mu.Unlock()
		if pending == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.cancel()
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) dropConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.metrics.connsOpen.Dec()
	s.log.Info("connection closed", "conn", c.id)
}

// retire removes a terminated session from the registry.
func (s *Server) retire(st *subState) {
	s.mu.Lock()
	delete(s.sessions, st.id)
	if st.name != "" && s.named[st.name] == st {
		delete(s.named, st.name)
	}
	s.mu.Unlock()
}

func efp(f Frame) *Frame { return &f }

// subscribeErrFrame maps cq subscribe errors to protocol error replies.
func subscribeErrFrame(err error) Frame {
	switch {
	case errors.Is(err, cq.ErrCursorMismatch):
		return errf(codeCursorMismatch, "%v", err)
	case errors.Is(err, cq.ErrDuplicateName):
		return errf(codeBusy, "%v", err)
	default:
		return errf(codeErr, "%v", err)
	}
}

func (s *Server) subscribeCQ(sp subSpec) (*cq.Subscription, error) {
	if sp.name != "" {
		if sp.kind == cq.RKNN {
			return s.mon.SubscribeRKNNDurable(sp.name, sp.q, sp.k, sp.tau)
		}
		return s.mon.SubscribeKNNDurable(sp.name, sp.q, sp.k, sp.tau)
	}
	if sp.kind == cq.RKNN {
		return s.mon.SubscribeRKNN(sp.q, sp.k, sp.tau)
	}
	return s.mon.SubscribeKNN(sp.q, sp.k, sp.tau)
}

// newSessionLocked registers a new session, claimed by c (hold is set:
// delivery stays silent until the dispatch goroutine has enqueued the
// command reply and calls release). Caller holds s.mu.
func (s *Server) newSessionLocked(c *conn, sp subSpec, sub *cq.Subscription) *subState {
	s.nextSub++
	st := &subState{
		srv:      s,
		id:       s.nextSub,
		name:     sp.name,
		kind:     sp.kind,
		k:        sp.k,
		tau:      sp.tau,
		q:        sp.q,
		policy:   sp.policy,
		retain:   s.opts.retain(),
		sub:      sub,
		attached: c,
		hold:     true,
		kick:     make(chan struct{}, 1),
		dead:     make(chan struct{}),
	}
	s.sessions[st.id] = st
	if st.name != "" {
		s.named[st.name] = st
	}
	c.addSub(st)
	s.wg.Add(2)
	go st.pump()
	go st.delivery()
	return st
}

// subscribe creates a subscription session for c. On success the
// session is claimed by c with delivery held; the caller replies and
// then calls release. The *Frame return, when non-nil, is the error
// reply instead.
func (s *Server) subscribe(c *conn, sp subSpec) (*subState, string, *Frame) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, "", efp(errf(codeErr, "server shutting down"))
	}
	mode := ModeFull
	if sp.name != "" {
		if s.opts.CursorPath == "" {
			return nil, "", efp(errf(codeNoDurable, "durable subscriptions need a server cursor (run udbserver with -dir)"))
		}
		if st := s.named[sp.name]; st != nil && !st.isTerminated() {
			return nil, "", efp(errf(codeBusy, "subscription %q is live; RESUME it or UNSUBSCRIBE first", sp.name))
		}
		if sp.fresh {
			if err := s.mon.Forget(sp.name); err != nil {
				return nil, "", efp(errf(codeErr, "%v", err))
			}
		} else if s.mon.HasCursorSub(sp.name) {
			mode = ModeDelta
		}
	}
	sub, err := s.subscribeCQ(sp)
	if err != nil {
		return nil, "", efp(subscribeErrFrame(err))
	}
	return s.newSessionLocked(c, sp, sub), mode, nil
}

// resume reattaches c to the named subscription at the client's
// watermark. Three outcomes (see docs/PROTOCOL.md):
//
//   - the session is live in this server: exact continuation from the
//     retained ring (ModeContinue), or -GONE if the resume point was
//     evicted under PolicyDisconnect;
//   - the session is gone but the durable cursor knows the name
//     (server restarted): a fresh cq subscription delivers the
//     coalesced delta since the cursor (ModeDelta);
//   - neither: a full fresh subscription (ModeFull).
func (s *Server) resume(c *conn, sp subSpec, w watermark) (*subState, string, uint64, *Frame) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, "", 0, efp(errf(codeErr, "server shutting down"))
	}
	if st := s.named[sp.name]; st != nil && !st.isTerminated() {
		st.mu.Lock()
		if st.attached != nil {
			st.mu.Unlock()
			return nil, "", 0, efp(errf(codeBusy, "subscription %q is attached to another connection", sp.name))
		}
		if !st.predicateEqual(sp) {
			st.mu.Unlock()
			return nil, "", 0, efp(errf(codeCursorMismatch, "predicate differs from the live subscription %q", sp.name))
		}
		from, lost, ok := st.resumeFromLocked(w)
		if !ok {
			st.mu.Unlock()
			return nil, "", 0, efp(errf(codeGone, "resume point evicted from the retained ring; SUBSCRIBE ... FRESH for a full snapshot"))
		}
		st.attachLocked(c, from)
		st.hold = true
		st.mu.Unlock()
		c.addSub(st)
		s.rec.Record(obs.EvSessionResume, s.rec.Note(sp.name), 0, st.id, int64(lost))
		return st, ModeContinue, lost, nil
	}
	if s.opts.CursorPath == "" {
		return nil, "", 0, efp(errf(codeNoDurable, "no session %q and the server has no durable cursor", sp.name))
	}
	mode := ModeFull
	if s.mon.HasCursorSub(sp.name) {
		mode = ModeDelta
	}
	sub, err := s.subscribeCQ(sp)
	if err != nil {
		return nil, "", 0, efp(subscribeErrFrame(err))
	}
	return s.newSessionLocked(c, sp, sub), mode, 0, nil
}

// release lifts the delivery hold set by subscribe/resume, after the
// dispatch goroutine enqueued the command reply — this is what orders
// the [id, mode] reply strictly before the session's first push frame.
func (s *Server) release(st *subState) {
	st.mu.Lock()
	st.hold = false
	st.mu.Unlock()
	st.kickDelivery()
}

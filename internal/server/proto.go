// Package server is the network serving layer: a TCP server speaking a
// pipelined RESP-style text protocol over the repository's uncertain
// query engine (one-shot KNN/RkNN/TopKNN/InverseRank commands, live
// ingest, one-snapshot batches) plus push channels for the continuous
// queries of internal/cq — the tile38 move of the ROADMAP.
//
// # Protocol
//
// The wire format is a strict subset of RESP (the Redis serialization
// protocol; see docs/PROTOCOL.md for the full spec): clients send
// commands as arrays of bulk strings (or as space-separated inline
// lines, for netcat-style exploration), the server answers with simple
// strings, errors, integers, bulk strings and arrays, and pushes
// subscription events as out-of-band '>' frames that a pipelining
// client demultiplexes from command replies by type. All floating
// point values travel as shortest-round-trip decimal text
// (strconv 'g'/-1), which parses back to the identical bit pattern —
// the server↔in-process equivalence tests rely on that.
//
// # Subscriptions across connections
//
// Named subscriptions are owned by the server session registry, not by
// the connection that created them: a dropped connection parks the
// subscription, events keep draining into a bounded retained ring, and
// RESUME with the client's (version, objectID) watermark replays
// exactly the missed suffix. See the Server documentation.
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Frame type tags, the RESP first bytes.
const (
	TSimple = '+' // simple string
	TError  = '-' // error: "CODE message"
	TInt    = ':' // signed 64-bit integer
	TBulk   = '$' // length-prefixed binary-safe string
	TArray  = '*' // array of frames
	TPush   = '>' // out-of-band push array (subscription events)
)

// Codec limits. A frame that exceeds them is a protocol error: the
// connection that sent it is answered with -PROTO and closed, because
// the stream can no longer be trusted to be in sync.
const (
	// MaxBulk bounds one bulk string (the largest legitimate payload is
	// one encoded uncertain object).
	MaxBulk = 1 << 20
	// MaxArray bounds the argument count of one command (a BATCH of
	// thousands of queries stays far below it).
	MaxArray = 1 << 16
	// MaxLine bounds one inline command or frame header line.
	MaxLine = 64 << 10
	// MaxDepth bounds frame nesting.
	MaxDepth = 8
)

// ErrProto marks stream-desynchronizing protocol violations: malformed
// headers, limit overruns, bad framing. Wrapped errors matching it
// make the server close the connection after a -PROTO reply.
var ErrProto = errors.New("protocol error")

// Frame is one decoded protocol unit.
type Frame struct {
	// Type is one of TSimple, TError, TInt, TBulk, TArray, TPush.
	Type byte
	// Str holds TSimple and TError payloads.
	Str string
	// Int holds TInt payloads.
	Int int64
	// Bulk holds TBulk payloads; nil if and only if Null.
	Bulk []byte
	// Array holds TArray and TPush elements; nil if and only if Null.
	Array []Frame
	// Null marks the RESP null bulk ($-1) and null array (*-1).
	Null bool
}

// Convenience constructors.
func simple(s string) Frame { return Frame{Type: TSimple, Str: s} }
func errf(code, format string, args ...any) Frame {
	return Frame{Type: TError, Str: code + " " + fmt.Sprintf(format, args...)}
}
func intf(n int64) Frame     { return Frame{Type: TInt, Int: n} }
func bulk(b []byte) Frame    { return Frame{Type: TBulk, Bulk: b} }
func bulkStr(s string) Frame { return Frame{Type: TBulk, Bulk: []byte(s)} }
func array(elems ...Frame) Frame {
	if elems == nil {
		elems = []Frame{}
	}
	return Frame{Type: TArray, Array: elems}
}
func push(elems ...Frame) Frame { return Frame{Type: TPush, Array: elems} }

// IsError reports whether the frame is an error reply and, if so,
// splits it into code and message.
func (f Frame) IsError() (code, msg string, ok bool) {
	if f.Type != TError {
		return "", "", false
	}
	code = f.Str
	if i := bytes.IndexByte([]byte(f.Str), ' '); i >= 0 {
		code, msg = f.Str[:i], f.Str[i+1:]
	}
	return code, msg, true
}

// Equal reports deep frame equality. Null frames compare by nullness,
// bulk payloads byte-wise, arrays element-wise.
func (f Frame) Equal(g Frame) bool {
	if f.Type != g.Type || f.Null != g.Null {
		return false
	}
	switch f.Type {
	case TSimple, TError:
		return f.Str == g.Str
	case TInt:
		return f.Int == g.Int
	case TBulk:
		return f.Null == g.Null && bytes.Equal(f.Bulk, g.Bulk)
	case TArray, TPush:
		if f.Null || g.Null {
			return f.Null == g.Null
		}
		if len(f.Array) != len(g.Array) {
			return false
		}
		for i := range f.Array {
			if !f.Array[i].Equal(g.Array[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Reader decodes frames from a byte stream. It never panics on
// malformed input: a frame is returned, or an error — ErrProto-wrapped
// for protocol violations, the underlying I/O error otherwise. Torn
// frames simply block until the rest of the bytes arrive (or surface
// io.ErrUnexpectedEOF when the stream ends mid-frame).
type Reader struct {
	br *bufio.Reader
}

// NewReader wraps r in a frame decoder.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 16<<10)}
}

// ReadFrame decodes one frame. Inline commands (a bare text line not
// starting with a type tag) decode as an array of bulk strings, so
// `KNN 5 0.5 <obj>` typed into netcat works; empty inline lines are
// skipped, per the RESP convention.
func (r *Reader) ReadFrame() (Frame, error) {
	return r.readFrame(0, true)
}

func (r *Reader) readFrame(depth int, inlineOK bool) (Frame, error) {
	if depth > MaxDepth {
		return Frame{}, fmt.Errorf("%w: frame nesting deeper than %d", ErrProto, MaxDepth)
	}
	for {
		b, err := r.br.ReadByte()
		if err != nil {
			return Frame{}, err
		}
		switch b {
		case TSimple, TError:
			line, err := r.readLine()
			if err != nil {
				return Frame{}, err
			}
			return Frame{Type: b, Str: string(line)}, nil
		case TInt:
			line, err := r.readLine()
			if err != nil {
				return Frame{}, err
			}
			n, err := strconv.ParseInt(string(line), 10, 64)
			if err != nil {
				return Frame{}, fmt.Errorf("%w: bad integer %q", ErrProto, line)
			}
			return Frame{Type: TInt, Int: n}, nil
		case TBulk:
			n, err := r.readLen(MaxBulk, "bulk")
			if err != nil {
				return Frame{}, err
			}
			if n < 0 {
				return Frame{Type: TBulk, Null: true}, nil
			}
			payload := make([]byte, n+2)
			if _, err := io.ReadFull(r.br, payload); err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return Frame{}, err
			}
			if payload[n] != '\r' || payload[n+1] != '\n' {
				return Frame{}, fmt.Errorf("%w: bulk not CRLF-terminated", ErrProto)
			}
			return Frame{Type: TBulk, Bulk: payload[:n:n]}, nil
		case TArray, TPush:
			n, err := r.readLen(MaxArray, "array")
			if err != nil {
				return Frame{}, err
			}
			if n < 0 {
				return Frame{Type: b, Null: true}, nil
			}
			elems := make([]Frame, 0, min(n, 64))
			for i := int64(0); i < n; i++ {
				el, err := r.readFrame(depth+1, false)
				if err != nil {
					return Frame{}, err
				}
				elems = append(elems, el)
			}
			return Frame{Type: b, Array: elems}, nil
		default:
			if !inlineOK {
				return Frame{}, fmt.Errorf("%w: unexpected type byte %q inside frame", ErrProto, b)
			}
			if err := r.br.UnreadByte(); err != nil {
				return Frame{}, err
			}
			line, err := r.readLine()
			if err != nil {
				return Frame{}, err
			}
			fields := bytes.Fields(line)
			if len(fields) == 0 {
				continue // empty inline line: skip, keep reading
			}
			elems := make([]Frame, len(fields))
			for i, f := range fields {
				elems[i] = Frame{Type: TBulk, Bulk: bytes.Clone(f)}
			}
			return Frame{Type: TArray, Array: elems}, nil
		}
	}
}

// readLine reads up to CRLF (tolerating a bare LF), excluding the
// terminator, bounded by MaxLine.
func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull || (err == nil && len(line) > MaxLine) {
		return nil, fmt.Errorf("%w: line longer than %d", ErrProto, MaxLine)
	}
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return bytes.Clone(line), nil
}

// readLen parses a length header line, admitting -1 (null) and
// rejecting anything above limit.
func (r *Reader) readLen(limit int64, what string) (int64, error) {
	line, err := r.readLine()
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(string(line), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad %s length %q", ErrProto, what, line)
	}
	if n < -1 || n > limit {
		return 0, fmt.Errorf("%w: %s length %d outside [-1, %d]", ErrProto, what, n, limit)
	}
	return n, nil
}

// Writer encodes frames onto a byte stream. Not safe for concurrent
// use; callers serialize (the connection writer goroutine owns it).
type Writer struct {
	bw *bufio.Writer
}

// NewWriter wraps w in a frame encoder.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 16<<10)}
}

// WriteFrame encodes one frame (buffered; call Flush to send).
func (w *Writer) WriteFrame(f Frame) error {
	switch f.Type {
	case TSimple, TError:
		w.bw.WriteByte(f.Type)
		w.bw.WriteString(f.Str)
	case TInt:
		w.bw.WriteByte(TInt)
		w.bw.Write(strconv.AppendInt(nil, f.Int, 10))
	case TBulk:
		w.bw.WriteByte(TBulk)
		if f.Null {
			w.bw.WriteString("-1")
			break
		}
		w.bw.Write(strconv.AppendInt(nil, int64(len(f.Bulk)), 10))
		w.bw.WriteString("\r\n")
		w.bw.Write(f.Bulk)
	case TArray, TPush:
		w.bw.WriteByte(f.Type)
		if f.Null {
			w.bw.WriteString("-1")
			break
		}
		w.bw.Write(strconv.AppendInt(nil, int64(len(f.Array)), 10))
		w.bw.WriteString("\r\n")
		for _, el := range f.Array {
			if err := w.WriteFrame(el); err != nil {
				return err
			}
		}
		return nil // elements wrote their own terminators
	default:
		return fmt.Errorf("server: cannot encode frame type %q", f.Type)
	}
	w.bw.WriteString("\r\n")
	// bufio latches write errors; they surface on Flush.
	return nil
}

// Flush sends everything buffered.
func (w *Writer) Flush() error { return w.bw.Flush() }

package server_test

// Observability end-to-end tier: the flight recorder through a real
// durable serving run (slow-query capture with full traces, checkpoint
// lifecycle) surfaced over both the EVENTS protocol command and the
// GET /events debug endpoint; the Prometheus exposition of a fully
// wired server; and a concurrency hammer that scrapes the debug
// handler while writers commit and subscribers churn. The whole file
// is race-clean — CI runs it under -race in the e2e step.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"probprune/internal/query"
	"probprune/internal/server"
	"probprune/internal/server/client"
	"probprune/internal/wal"
)

// kinds collects the set of event kinds in a slice of decoded events.
func kinds(evs []server.RecorderEvent) map[string]int {
	m := map[string]int{}
	for _, ev := range evs {
		m[ev.Kind]++
	}
	return m
}

// TestFlightRecorderE2E drives a durable server hard enough that the
// flight recorder captures a slow query (with its full trace) and a
// complete checkpoint begin → install sequence, then verifies both the
// EVENTS command and the GET /events debug endpoint serve the same
// story.
func TestFlightRecorderE2E(t *testing.T) {
	db := testDB(13, 32)
	durable, err := query.BootstrapStore(db, query.PersistOptions{
		Dir: t.TempDir(), Sync: wal.SyncBackground, CheckpointEvery: 8}, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { durable.Close() })
	srv, addr := startServer(t, durable, server.Options{
		CursorPath: filepath.Join(t.TempDir(), "cursor"),
		SlowQuery:  time.Nanosecond, // everything is slow: deterministic capture
	})
	cl := dial(t, addr)
	rng := rand.New(rand.NewSource(87))

	// One traced-threshold query and enough mutations to cross
	// CheckpointEvery and trigger a background checkpoint install.
	q := testObj(rng, -1)
	if _, err := cl.KNN(q, 4, 0.3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		victim := db[rng.Intn(len(db))]
		if found, err := cl.Delete(victim.ID); err != nil || !found {
			t.Fatalf("delete %d: found=%v err=%v", victim.ID, found, err)
		}
		if err := cl.Insert(victim); err != nil {
			t.Fatal(err)
		}
	}

	// The checkpoint install is asynchronous; poll EVENTS until it
	// lands (bounded, fails loudly).
	var evs []server.RecorderEvent
	deadline := time.Now().Add(5 * time.Second)
	for {
		evs, err = cl.Events(0)
		if err != nil {
			t.Fatal(err)
		}
		if k := kinds(evs); k["slow_query"] > 0 && k["checkpoint_begin"] > 0 && k["checkpoint_install"] > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recorder never saw slow_query + checkpoint_begin + checkpoint_install; kinds: %v", kinds(evs))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The slow query carries its full trace.
	var sawTrace bool
	for _, ev := range evs {
		if ev.Kind == "slow_query" {
			if !ev.HasTrace || ev.Trace.Candidates == 0 || ev.Dur <= 0 {
				t.Fatalf("slow-query event missing its trace: %+v", ev)
			}
			if ev.Note == "" {
				t.Fatalf("slow-query event has no kind note: %+v", ev)
			}
			sawTrace = true
		}
	}
	if !sawTrace {
		t.Fatal("no slow-query event decoded")
	}
	// The checkpoint install names a version the begin pinned, and the
	// sequence is ordered begin-before-install.
	beginSeq, installSeq := int64(-1), int64(-1)
	for _, ev := range evs {
		switch ev.Kind {
		case "checkpoint_begin":
			if beginSeq < 0 {
				beginSeq = ev.Seq
			}
		case "checkpoint_install":
			if installSeq < 0 {
				installSeq = ev.Seq
				if ev.A <= 0 {
					t.Fatalf("checkpoint_install carries no version: %+v", ev)
				}
			}
		}
	}
	if beginSeq < 0 || installSeq < 0 || installSeq < beginSeq {
		t.Fatalf("checkpoint sequence out of order: begin seq %d, install seq %d", beginSeq, installSeq)
	}
	// Events arrive oldest-first with ascending ordinals.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("EVENTS not ascending at %d: %d after %d", i, evs[i].Seq, evs[i-1].Seq)
		}
	}

	// GET /events tells the same story through JSON.
	dbg := httptest.NewServer(srv.DebugHandler())
	defer dbg.Close()
	resp, err := http.Get(dbg.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET /events content type %q", ct)
	}
	var httpEvs []server.RecorderEvent
	if err := json.NewDecoder(resp.Body).Decode(&httpEvs); err != nil {
		t.Fatal(err)
	}
	hk := kinds(httpEvs)
	if hk["slow_query"] == 0 || hk["checkpoint_begin"] == 0 || hk["checkpoint_install"] == 0 {
		t.Fatalf("GET /events missing kinds: %v", hk)
	}
	for _, ev := range httpEvs {
		if ev.Kind == "slow_query" && (!ev.HasTrace || ev.Trace.Candidates == 0) {
			t.Fatalf("GET /events slow-query lost its trace: %+v", ev)
		}
	}
}

// TestPromExposition scrapes ?format=prom from a fully wired durable
// server and validates the exposition: every line parses, histograms
// render cumulative _bucket series closed by +Inf plus _sum/_count,
// and the scrape-time runtime gauges are present.
func TestPromExposition(t *testing.T) {
	db := testDB(17, 24)
	durable, err := query.BootstrapStore(db, query.PersistOptions{
		Dir: t.TempDir(), Sync: wal.SyncAlways}, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { durable.Close() })
	srv, addr := startServer(t, durable, server.Options{
		CursorPath: filepath.Join(t.TempDir(), "cursor")})
	cl := dial(t, addr)
	rng := rand.New(rand.NewSource(5))
	if _, err := cl.KNN(testObj(rng, -1), 3, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert(testObj(rng, 7001)); err != nil {
		t.Fatal(err)
	}

	dbg := httptest.NewServer(srv.DebugHandler())
	defer dbg.Close()
	resp, err := http.Get(dbg.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("prom content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Minimal exposition parse (the CI scrape step runs the same shape):
	// every sample line is `name[{le="..."}] value`, every comment a
	// TYPE line, histogram types close with +Inf, _sum and _count.
	types := map[string]string{}
	samples := map[string]float64{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.Fields(line)
			if len(parts) != 4 || parts[1] != "TYPE" {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value in %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		samples[line[:sp]] = v
	}
	if len(types) == 0 || len(samples) == 0 {
		t.Fatal("empty exposition")
	}
	for name, typ := range types {
		if typ != "histogram" {
			continue
		}
		if _, ok := samples[name+`_bucket{le="+Inf"}`]; !ok {
			t.Errorf("histogram %s has no +Inf bucket", name)
		}
		if _, ok := samples[name+"_sum"]; !ok {
			t.Errorf("histogram %s has no _sum", name)
		}
		count, ok := samples[name+"_count"]
		if !ok {
			t.Errorf("histogram %s has no _count", name)
		}
		if inf := samples[name+`_bucket{le="+Inf"}`]; inf != count {
			t.Errorf("histogram %s: +Inf bucket %v != _count %v", name, inf, count)
		}
	}
	for _, want := range []string{
		"server_cmd_knn_latency", "wal_appends", "runtime_goroutines",
		"runtime_heap_alloc_bytes", "server_gomaxprocs", "server_uptime_seconds",
	} {
		found := false
		for name := range samples {
			if name == want || strings.HasPrefix(name, want+"_bucket{") || name == want+"_count" {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("exposition missing %s", want)
		}
	}
	if types["server_cmd_knn_latency"] != "histogram" {
		t.Errorf("server_cmd_knn_latency typed %q, want histogram", types["server_cmd_knn_latency"])
	}
	if samples["server_cmd_knn_calls"] < 1 {
		t.Errorf("server_cmd_knn_calls = %v, want >= 1", samples["server_cmd_knn_calls"])
	}

	// The JSON endpoint serves the same snapshot shape: identical keys
	// to the STATS command.
	jresp, err := http.Get(dbg.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var jm map[string]int64
	if err := json.NewDecoder(jresp.Body).Decode(&jm); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for k := range st {
		if _, ok := jm[k]; !ok {
			t.Errorf("STATS key %s missing from /metrics JSON", k)
		}
	}
}

// TestDebugHandlerConcurrency hammers GET /metrics (JSON and prom) and
// GET /events while wire writers commit mutations and subscribers
// attach and churn — under -race this proves a scrape never races the
// serving path, and it must never observe an error or torn payload.
func TestDebugHandlerConcurrency(t *testing.T) {
	db := testDB(19, 24)
	store, err := query.NewStore(db, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, store, server.Options{SlowQuery: time.Nanosecond})
	dbg := httptest.NewServer(srv.DebugHandler())
	defer dbg.Close()

	const (
		writers  = 2
		scrapers = 3
		subLoops = 2
		iters    = 25
	)
	var wg sync.WaitGroup
	errc := make(chan error, writers+scrapers+subLoops)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < iters; i++ {
				// Disjoint victim sets per writer, so two writers never
				// interleave a delete/reinsert pair on the same object.
				victim := db[rng.Intn(len(db)/writers)*writers+w]
				if _, err := cl.Delete(victim.ID); err != nil {
					errc <- fmt.Errorf("writer %d delete: %w", w, err)
					return
				}
				if err := cl.Insert(victim); err != nil {
					errc <- fmt.Errorf("writer %d insert: %w", w, err)
					return
				}
				if _, err := cl.KNN(testObj(rng, -1), 3, 0.3); err != nil {
					errc <- fmt.Errorf("writer %d knn: %w", w, err)
					return
				}
			}
		}(w)
	}

	for s := 0; s < subLoops; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + s)))
			for i := 0; i < iters/5; i++ {
				cl, err := client.Dial(addr)
				if err != nil {
					errc <- err
					return
				}
				sub, err := cl.Subscribe(client.SubOptions{Kind: "KNN", K: 3, Tau: 0.3, Q: testObj(rng, -(s*100 + i + 1))})
				if err != nil {
					cl.Close()
					errc <- fmt.Errorf("subscriber %d: %w", s, err)
					return
				}
				tryNext(sub, 5*time.Millisecond)
				cl.Close() // churn: drop the connection with the sub live
			}
		}(s)
	}

	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			paths := []string{"/metrics", "/metrics?format=prom", "/events"}
			for i := 0; i < iters; i++ {
				resp, err := http.Get(dbg.URL + paths[(s+i)%len(paths)])
				if err != nil {
					errc <- fmt.Errorf("scraper %d: %w", s, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- fmt.Errorf("scraper %d read: %w", s, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("scraper %d: status %d: %s", s, resp.StatusCode, body)
					return
				}
				if len(body) == 0 {
					errc <- fmt.Errorf("scraper %d: empty scrape", s)
					return
				}
			}
		}(s)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

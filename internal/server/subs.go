package server

import (
	"sync"

	"probprune/internal/cq"
	"probprune/internal/obs"
	"probprune/internal/uncertain"
)

// Subscription sessions.
//
// A subscription on the wire is owned by the server's session
// registry, not by the connection that created it. Two goroutines
// serve each one:
//
//   - the pump drains the cq.Subscription's event channel into the
//     session's retained ring — always promptly, so the monitor-level
//     buffer never becomes the backpressure point;
//   - the delivery loop walks the ring and writes events to the
//     attached connection (if any), in order.
//
// The ring retains events after delivery, bounded by Options.Retain.
// Because the cq stream is strictly ordered — versions ascend, object
// IDs ascend within a version — the pair (Version, Object.ID) is a
// total-order watermark over the stream, and a client that reconnects
// can present the watermark of the last event it actually processed:
// RESUME replays exactly the ring suffix past it. The session tracks
// the watermark of the newest ring eviction, so it can tell exactly
// when a requested resume point is no longer replayable (-GONE) rather
// than guessing from what it believes it delivered — TCP never
// confirms what a dead peer really received.
//
// Backpressure maps the cq policies onto connections:
//
//   - PolicyDisconnect (DisconnectSlow): delivered events may be
//     evicted (shrinking the resume window), but when the ring fills
//     with events the subscriber has not consumed, the subscription is
//     terminated with an EvEnd "slow" push — no silent gaps, the
//     NATS-style contract.
//   - PolicyDropOldest: the oldest event is shed and counted in lost;
//     gaps are the subscriber's accepted trade.

// Policy is the server-level backpressure policy of one subscription.
type Policy uint8

const (
	// PolicyDisconnect terminates a subscription rather than ever
	// skipping an event (maps cq.DisconnectSlow to the connection).
	PolicyDisconnect Policy = iota
	// PolicyDropOldest sheds the oldest retained event and keeps going.
	PolicyDropOldest
)

func (p Policy) String() string {
	if p == PolicyDropOldest {
		return "dropoldest"
	}
	return "disconnect"
}

// watermark is a position in a subscription's totally ordered event
// stream: the (version, object ID) of the last processed event.
type watermark struct {
	v  uint64
	id int
}

func (w watermark) less(x watermark) bool {
	return w.v < x.v || (w.v == x.v && w.id < x.id)
}

func eventWatermark(ev EventMsg) watermark {
	return watermark{v: ev.Version, id: ev.Object.ID}
}

// subState is one live (attached or parked) subscription session.
type subState struct {
	srv    *Server
	id     int64
	name   string // durable identity; "" for ephemeral subscriptions
	kind   cq.Kind
	k      int
	tau    float64
	q      *uncertain.Object
	policy Policy
	retain int

	sub *cq.Subscription

	mu         sync.Mutex
	ring       []EventMsg
	delivered  int       // ring[:delivered] handed to the attached connection
	evicted    watermark // newest evicted event; zero until evictedAny
	evictedAny bool
	lost       uint64
	attached   *conn
	hold       bool // delivery paused until the subscribe/resume reply is enqueued
	streamEnd  bool // the cq stream closed; endReason says why
	endReason  string
	terminated bool // terminal state reached; the session is dead

	kick chan struct{} // cap-1 wakeup for the delivery loop
	dead chan struct{} // closed on termination; aborts blocked sends
}

// isTerminated reports whether the session reached its terminal state
// (it may not be retired from the registry yet).
func (st *subState) isTerminated() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.terminated
}

func endReasonFor(err error) string {
	switch err {
	case cq.ErrUnsubscribed:
		return EndUnsubscribed
	case cq.ErrSlowConsumer:
		return EndSlow
	default:
		return EndClosed
	}
}

// kickDelivery wakes the delivery loop (coalescing).
func (st *subState) kickDelivery() {
	select {
	case st.kick <- struct{}{}:
	default:
	}
}

// pump drains the cq event stream into the ring. Runs until the
// subscription's channel closes (unsubscribe, backpressure kill or
// monitor shutdown).
func (st *subState) pump() {
	defer st.srv.wg.Done()
	for ev := range st.sub.Events() {
		st.append(eventFromCQ(st.id, ev.Kind.String(), ev.Version, ev.Object, ev.Match))
	}
	st.mu.Lock()
	if !st.streamEnd {
		st.streamEnd = true
		st.endReason = endReasonFor(st.sub.Err())
	}
	st.mu.Unlock()
	st.kickDelivery()
}

// append admits one event into the ring, applying the retention cap
// and the backpressure policy.
func (st *subState) append(ev EventMsg) {
	st.mu.Lock()
	if st.terminated {
		st.mu.Unlock()
		return
	}
	st.ring = append(st.ring, ev)
	if len(st.ring) > st.retain {
		switch {
		case st.delivered > 0:
			// The front was already handed to a connection: evicting it
			// only shrinks the resume window.
			st.evictFrontLocked()
		case st.policy == PolicyDropOldest:
			st.evictFrontLocked()
			st.lost++
			st.srv.metrics.shed.Inc()
			st.srv.rec.Record(obs.EvSessionShed, 0, 0, st.id, 1)
		default:
			// PolicyDisconnect with an entirely unconsumed ring: the
			// subscriber (parked, or attached but stalled) is further
			// behind than the server retains. Terminate rather than gap.
			st.srv.metrics.slowKills.Inc()
			st.terminateLocked(EndSlow)
		}
	}
	st.mu.Unlock()
	st.kickDelivery()
}

// evictFrontLocked drops ring[0], advancing the eviction watermark.
func (st *subState) evictFrontLocked() {
	st.evicted = eventWatermark(st.ring[0])
	st.evictedAny = true
	st.ring = st.ring[1:]
	if st.delivered > 0 {
		st.delivered--
	}
}

// terminateLocked marks the session dead. The cq subscription is
// cancelled asynchronously — Cancel synchronizes with the monitor
// worker, which may be blocked handing this very session an event.
func (st *subState) terminateLocked(reason string) {
	if st.terminated {
		return
	}
	st.terminated = true
	st.streamEnd = true
	st.endReason = reason
	close(st.dead)
	go st.sub.Cancel()
}

// attach binds the session to a connection, resuming delivery at ring
// index from. Caller must hold st.mu.
func (st *subState) attachLocked(c *conn, from int) {
	st.attached = c
	st.delivered = from
}

// detach unbinds the session from a dying connection: named sessions
// park (events keep accruing in the ring, RESUME reattaches), ephemeral
// ones terminate.
func (st *subState) detach(c *conn) {
	parked := false
	st.mu.Lock()
	if st.attached == c {
		st.attached = nil
		if st.name == "" {
			st.terminateLocked(EndUnsubscribed)
		} else {
			parked = !st.terminated
		}
	}
	st.mu.Unlock()
	if parked {
		st.srv.log.Info("park", "conn", c.id, "sub", st.id, "name", st.name)
		st.srv.rec.Record(obs.EvSessionPark, st.srv.rec.Note(st.name), 0, st.id, 0)
	}
	st.kickDelivery()
}

// unsubscribe ends the session on client request. The terminal EvEnd
// push is delivered after every event already in the stream.
func (st *subState) unsubscribe() {
	// Cancel synchronously: the monitor stops maintaining the
	// subscription, the pump drains what was already delivered to its
	// channel, and the stream closes with ErrUnsubscribed.
	st.sub.Cancel()
}

// delivery walks the ring and writes events to the attached
// connection, followed by the terminal push once the stream ended and
// the ring drained. One goroutine per session; exits when the session
// reaches its terminal state (every session does at server shutdown).
func (st *subState) delivery() {
	defer st.srv.wg.Done()
	for {
		st.mu.Lock()
		for {
			if st.terminated && !st.hold {
				c := st.attached
				reason := st.endReason
				st.attached = nil
				st.mu.Unlock()
				if c != nil {
					if reason == EndSlow {
						// The policy IS the disconnect: best-effort end
						// frame, then drop the stalled connection.
						c.trySend(encodeEvent(EventMsg{Sub: st.id, Kind: EvEnd, Reason: reason}))
						c.dropSub(st)
						c.close()
					} else {
						c.send(encodeEvent(EventMsg{Sub: st.id, Kind: EvEnd, Reason: reason}), nil)
						c.dropSub(st)
					}
				}
				st.srv.retire(st)
				return
			}
			c := st.attached
			if c == nil || st.hold {
				break
			}
			if st.delivered >= len(st.ring) {
				if st.streamEnd {
					// Stream over and fully delivered: terminal next loop.
					st.terminated = true
					close(st.dead)
					continue
				}
				break
			}
			ev := st.ring[st.delivered]
			st.delivered++
			st.mu.Unlock()
			if c.send(encodeEvent(ev), st.dead) {
				st.srv.metrics.pushed.Inc()
			}
			st.mu.Lock()
		}
		// Parked sessions whose stream ended retire without a peer to
		// notify — the stream can only end while parked at monitor
		// shutdown, when any remaining ring backlog is undeliverable.
		if st.streamEnd && st.attached == nil && !st.hold && !st.terminated {
			st.terminated = true
			close(st.dead)
			st.mu.Unlock()
			continue
		}
		st.mu.Unlock()
		select {
		case <-st.kick:
		case <-st.dead:
		}
	}
}

// resumeFrom locates the ring index of the first event past w and
// validates replayability. It reports:
//
//	ok=true:  replay from index from; lost is the cumulative shed count
//	ok=false: the resume point was evicted under PolicyDisconnect —
//	          an exact continuation is impossible (-GONE)
//
// Caller must hold st.mu.
func (st *subState) resumeFromLocked(w watermark) (from int, lost uint64, ok bool) {
	if st.evictedAny && w.less(st.evicted) && st.policy == PolicyDisconnect {
		return 0, st.lost, false
	}
	// Ring is (version, id)-ascending: scan to the first event past w.
	for from < len(st.ring) && !w.less(eventWatermark(st.ring[from])) {
		from++
	}
	return from, st.lost, true
}

package server

import (
	"fmt"
	"time"

	"probprune/internal/obs"
)

// This file is the wire form of the observability surface: the trace
// frame a TRACE-flagged command appends to its reply, and the
// flight-recorder events the EVENTS command serves. Everything rides on
// the existing frame vocabulary (arrays of integers and bulk strings),
// so clients and fuzzers need no new frame types.

// traceFields is the number of integers in a trace frame, in the fixed
// order encodeTraceFrame writes them.
const traceFields = 11

// encodeTraceFrame renders a trace snapshot as an 11-integer array:
//
//	[candidates, preselected, refined, undecided, iterations,
//	 cache_hits, cache_misses, prepare_ns, eval_ns, wal_wait_ns, queue_ns]
func encodeTraceFrame(ts obs.TraceSnapshot) Frame {
	return array(
		intf(int64(ts.Candidates)),
		intf(int64(ts.Preselected)),
		intf(int64(ts.Refined)),
		intf(int64(ts.Undecided)),
		intf(int64(ts.Iterations)),
		intf(int64(ts.CacheHits)),
		intf(int64(ts.CacheMisses)),
		intf(int64(ts.Prepare)),
		intf(int64(ts.Eval)),
		intf(int64(ts.WALWait)),
		intf(int64(ts.Queue)),
	)
}

// DecodeTraceFrame parses an encodeTraceFrame array back into a
// snapshot.
func DecodeTraceFrame(f Frame) (obs.TraceSnapshot, error) {
	var ts obs.TraceSnapshot
	if f.Type != TArray || f.Null || len(f.Array) != traceFields {
		return ts, fmt.Errorf("trace: want %d-element array", traceFields)
	}
	v := make([]int64, traceFields)
	for i, el := range f.Array {
		if el.Type != TInt {
			return ts, fmt.Errorf("trace: element %d is not an integer", i)
		}
		v[i] = el.Int
	}
	ts.Candidates = uint64(v[0])
	ts.Preselected = uint64(v[1])
	ts.Refined = uint64(v[2])
	ts.Undecided = uint64(v[3])
	ts.Iterations = uint64(v[4])
	ts.CacheHits = uint64(v[5])
	ts.CacheMisses = uint64(v[6])
	ts.Prepare = time.Duration(v[7])
	ts.Eval = time.Duration(v[8])
	ts.WALWait = time.Duration(v[9])
	ts.Queue = time.Duration(v[10])
	return ts, nil
}

// RecorderEvent is the wire (and JSON) form of one flight-recorder
// event: obs.Event with the kind resolved to its wire name.
type RecorderEvent struct {
	Seq      int64             `json:"seq"`
	Kind     string            `json:"kind"`
	Note     string            `json:"note,omitempty"`
	Time     time.Time         `json:"time"`
	Dur      time.Duration     `json:"dur_ns"`
	A        int64             `json:"a"`
	B        int64             `json:"b"`
	HasTrace bool              `json:"has_trace,omitempty"`
	Trace    obs.TraceSnapshot `json:"trace"`
}

func recorderEventFromObs(ev obs.Event) RecorderEvent {
	return RecorderEvent{
		Seq:      ev.Seq,
		Kind:     ev.Kind.String(),
		Note:     ev.Note,
		Time:     ev.Time,
		Dur:      ev.Dur,
		A:        ev.A,
		B:        ev.B,
		HasTrace: ev.HasTrace,
		Trace:    ev.Trace,
	}
}

// encodeRecorderEvent renders one event:
//
//	[:seq, $kind, $note, :unixnano, :dur_ns, :a, :b]            without a trace
//	[:seq, $kind, $note, :unixnano, :dur_ns, :a, :b, [trace]]   with one
func encodeRecorderEvent(ev obs.Event) Frame {
	elems := []Frame{
		intf(ev.Seq),
		bulkStr(ev.Kind.String()),
		bulkStr(ev.Note),
		intf(ev.Time.UnixNano()),
		intf(int64(ev.Dur)),
		intf(ev.A),
		intf(ev.B),
	}
	if ev.HasTrace {
		elems = append(elems, encodeTraceFrame(ev.Trace))
	}
	return array(elems...)
}

// DecodeRecorderEvent parses one encodeRecorderEvent array.
func DecodeRecorderEvent(f Frame) (RecorderEvent, error) {
	var ev RecorderEvent
	if f.Type != TArray || f.Null || (len(f.Array) != 7 && len(f.Array) != 8) {
		return ev, fmt.Errorf("event: want 7- or 8-element array")
	}
	a := f.Array
	if a[0].Type != TInt || a[1].Type != TBulk || a[2].Type != TBulk ||
		a[3].Type != TInt || a[4].Type != TInt || a[5].Type != TInt || a[6].Type != TInt {
		return ev, fmt.Errorf("event: wrong element types")
	}
	ev.Seq = a[0].Int
	ev.Kind = string(a[1].Bulk)
	ev.Note = string(a[2].Bulk)
	ev.Time = time.Unix(0, a[3].Int)
	ev.Dur = time.Duration(a[4].Int)
	ev.A = a[5].Int
	ev.B = a[6].Int
	if len(a) == 8 {
		ts, err := DecodeTraceFrame(a[7])
		if err != nil {
			return ev, err
		}
		ev.HasTrace = true
		ev.Trace = ts
	}
	return ev, nil
}

// DecodeRecorderEvents parses an EVENTS reply.
func DecodeRecorderEvents(f Frame) ([]RecorderEvent, error) {
	if f.Type != TArray || f.Null {
		return nil, fmt.Errorf("events: want array reply, got %q", f.Type)
	}
	evs := make([]RecorderEvent, len(f.Array))
	for i, el := range f.Array {
		ev, err := DecodeRecorderEvent(el)
		if err != nil {
			return nil, fmt.Errorf("events: element %d: %v", i, err)
		}
		evs[i] = ev
	}
	return evs, nil
}

package server

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, f Frame) Frame {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(f); err != nil {
		t.Fatalf("write %+v: %v", f, err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	g, err := NewReader(&buf).ReadFrame()
	if err != nil {
		t.Fatalf("read back %q: %v", buf.String(), err)
	}
	return g
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		simple("OK"),
		simple("PONG"),
		errf(codeBadArg, "bad tau %q", "x"),
		intf(0),
		intf(-42),
		intf(1 << 50),
		bulk(nil),
		bulk([]byte{}),
		bulkStr("hello world"),
		bulk([]byte{0, 1, 2, '\r', '\n', 0xff}),
		{Type: TBulk, Null: true},
		{Type: TArray, Null: true},
		array(),
		array(intf(1), bulkStr("two"), simple("three")),
		array(array(intf(1)), array(array(bulkStr("deep")))),
		push(intf(7), bulkStr("entered"), intf(3)),
	}
	for _, f := range frames {
		g := roundTrip(t, f)
		if !f.Equal(g) {
			t.Errorf("round trip changed %+v into %+v", f, g)
		}
	}
}

func TestFrameEqualDistinguishes(t *testing.T) {
	pairs := [][2]Frame{
		{simple("a"), simple("b")},
		{simple("a"), bulkStr("a")},
		{intf(1), intf(2)},
		{bulk([]byte("a")), bulk([]byte("b"))},
		{bulk(nil), {Type: TBulk, Null: true}},
		{array(), {Type: TArray, Null: true}},
		{array(intf(1)), array(intf(1), intf(1))},
		{array(intf(1)), push(intf(1))},
	}
	for _, p := range pairs {
		if p[0].Equal(p[1]) {
			t.Errorf("%+v compares equal to %+v", p[0], p[1])
		}
	}
}

func TestInlineCommands(t *testing.T) {
	r := NewReader(strings.NewReader("PING\r\n\r\n  \r\nKNN 3 0.5 payload\nQUIT\r\n"))
	want := [][]string{{"PING"}, {"KNN", "3", "0.5", "payload"}, {"QUIT"}}
	for _, fields := range want {
		f, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != TArray || len(f.Array) != len(fields) {
			t.Fatalf("inline decoded to %+v, want fields %v", f, fields)
		}
		for i, s := range fields {
			if string(f.Array[i].Bulk) != s {
				t.Fatalf("field %d = %q, want %q", i, f.Array[i].Bulk, s)
			}
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("trailing read: %v, want EOF", err)
	}
}

func TestPipelinedFrames(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	fs := []Frame{simple("OK"), intf(9), array(bulkStr("a"), bulkStr("b"))}
	for _, f := range fs {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for _, f := range fs {
		g, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if !f.Equal(g) {
			t.Fatalf("pipelined read %+v, want %+v", g, f)
		}
	}
}

func TestProtocolViolations(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"bad int", ":notanumber\r\n"},
		{"bad bulk length", "$abc\r\n"},
		{"negative bulk length", "$-2\r\n"},
		{"oversize bulk", "$1048577\r\n"},
		{"oversize array", "*65537\r\n"},
		{"bulk missing CRLF", "$3\r\nabcXY"},
		{"nested inline", "*1\r\nGARBAGE\r\n"},
		{"deep nesting", strings.Repeat("*1\r\n", 20) + ":1\r\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewReader(strings.NewReader(tc.input)).ReadFrame()
			if !errors.Is(err, ErrProto) {
				t.Fatalf("read %q: %v, want ErrProto", tc.input, err)
			}
		})
	}
	t.Run("oversize line", func(t *testing.T) {
		_, err := NewReader(strings.NewReader("+" + strings.Repeat("x", MaxLine+10) + "\r\n")).ReadFrame()
		if !errors.Is(err, ErrProto) {
			t.Fatalf("oversize line: %v, want ErrProto", err)
		}
	})
}

func TestTornFrames(t *testing.T) {
	// Every proper prefix of a valid multi-frame encoding must report a
	// clean unexpected-EOF (or block, which a string reader turns into
	// EOF at the top level), never panic or fabricate a frame.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, f := range []Frame{array(bulkStr("SUBSCRIBE"), bulkStr("KNN")), intf(12), bulkStr("xyz")} {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		for {
			_, err := r.ReadFrame()
			if err == nil {
				continue // a complete earlier frame
			}
			if err != io.EOF && err != io.ErrUnexpectedEOF {
				t.Fatalf("cut at %d: %v", cut, err)
			}
			break
		}
	}
}

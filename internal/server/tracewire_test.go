package server

import (
	"testing"
	"time"

	"probprune/internal/obs"
)

func testTraceSnapshot() obs.TraceSnapshot {
	return obs.TraceSnapshot{
		Candidates: 24, Preselected: 9, Refined: 6, Undecided: 1,
		Iterations: 3, CacheHits: 17, CacheMisses: 7,
		Prepare: 42 * time.Microsecond, Eval: 900 * time.Microsecond,
		WALWait: 3 * time.Millisecond, Queue: 11 * time.Microsecond,
	}
}

func TestTraceFrameRoundTrip(t *testing.T) {
	want := testTraceSnapshot()
	got, err := DecodeTraceFrame(encodeTraceFrame(want))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("trace frame round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestDecodeTraceFrameRejects(t *testing.T) {
	for name, f := range map[string]Frame{
		"not array":     intf(3),
		"null":          {Type: TArray, Null: true},
		"short":         array(intf(1), intf(2)),
		"wrong element": array(intf(0), intf(1), intf(2), intf(3), intf(4), intf(5), intf(6), intf(7), intf(8), intf(9), bulkStr("x")),
	} {
		if _, err := DecodeTraceFrame(f); err == nil {
			t.Errorf("%s: decode accepted a malformed trace frame", name)
		}
	}
}

func TestRecorderEventRoundTrip(t *testing.T) {
	now := time.Now()
	plain := obs.Event{
		Seq: 4, Kind: obs.EvGroupCommit, Time: now,
		Dur: 2 * time.Millisecond, A: 9, B: 1,
	}
	traced := obs.Event{
		Seq: 5, Kind: obs.EvSlowQuery, Note: "knn", Time: now,
		Dur: 60 * time.Millisecond, HasTrace: true, Trace: testTraceSnapshot(),
	}
	for _, ev := range []obs.Event{plain, traced} {
		got, err := DecodeRecorderEvent(encodeRecorderEvent(ev))
		if err != nil {
			t.Fatal(err)
		}
		want := recorderEventFromObs(ev)
		// The wire carries unix nanos; compare at that precision.
		want.Time = time.Unix(0, ev.Time.UnixNano())
		if got != want {
			t.Fatalf("event round trip:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestDecodeRecorderEventsRejects(t *testing.T) {
	if _, err := DecodeRecorderEvents(bulkStr("nope")); err == nil {
		t.Fatal("non-array EVENTS reply accepted")
	}
	bad := array(array(intf(1), intf(2)))
	if _, err := DecodeRecorderEvents(bad); err == nil {
		t.Fatal("malformed event element accepted")
	}
}

func TestStripTrace(t *testing.T) {
	args := [][]byte{[]byte("1"), []byte("0.5")}
	rest, traced := stripTrace(append(args[:len(args):len(args)], []byte("trace")))
	if !traced || len(rest) != 2 {
		t.Fatalf("lowercase trace flag: traced=%v rest=%d", traced, len(rest))
	}
	rest, traced = stripTrace(args)
	if traced || len(rest) != 2 {
		t.Fatalf("no flag: traced=%v rest=%d", traced, len(rest))
	}
	rest, traced = stripTrace(nil)
	if traced || rest != nil {
		t.Fatalf("empty args: traced=%v", traced)
	}
}

package obs

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Trace collects the anatomy of one query: how many candidates the
// engine visited, how the pruning stages decided them (preselected away
// by the domination filter vs. refined by IDCA runs), how many
// refinement iterations and decomposition-cache hits the runs cost, and
// how the wall time split between preparing the query and evaluating
// candidates.
//
// A caller opts in per query by threading a Trace through the context
// (WithTrace); the engine extracts it with TraceFrom and records into
// it as it runs. All record methods are atomic (candidate evaluation is
// concurrent) and nil-safe — the engine calls them unconditionally, and
// a query without a trace pays a nil check and nothing else, keeping
// the trace-disabled path allocation-free.
type Trace struct {
	candidates   atomic.Uint64
	preselected  atomic.Uint64
	refined      atomic.Uint64
	undecided    atomic.Uint64
	iterations   atomic.Uint64
	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64
	prepareNanos atomic.Int64
	evalNanos    atomic.Int64
	walWaitNanos atomic.Int64
	queueNanos   atomic.Int64
}

// Reset zeroes every counter, making the trace reusable (the engine's
// slow-query capture pools traces across queries).
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.candidates.Store(0)
	t.preselected.Store(0)
	t.refined.Store(0)
	t.undecided.Store(0)
	t.iterations.Store(0)
	t.cacheHits.Store(0)
	t.cacheMisses.Store(0)
	t.prepareNanos.Store(0)
	t.evalNanos.Store(0)
	t.walWaitNanos.Store(0)
	t.queueNanos.Store(0)
}

// AddCandidates records n candidates entering the filter stage.
func (t *Trace) AddCandidates(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.candidates.Add(uint64(n))
}

// CountPreselected records one candidate decided by preselection alone
// (no IDCA run).
func (t *Trace) CountPreselected() {
	if t == nil {
		return
	}
	t.preselected.Add(1)
}

// CountRefined records one candidate that needed an IDCA run, with the
// refinement iterations it spent.
func (t *Trace) CountRefined(iterations int) {
	if t == nil {
		return
	}
	t.refined.Add(1)
	if iterations > 0 {
		t.iterations.Add(uint64(iterations))
	}
}

// CountUndecided records one refined candidate whose bounds did not
// decide the predicate within the iteration budget.
func (t *Trace) CountUndecided() {
	if t == nil {
		return
	}
	t.undecided.Add(1)
}

// AddCacheStats records decomposition-cache traffic (the per-query
// overlay's hit/miss counts).
func (t *Trace) AddCacheStats(hits, misses uint64) {
	if t == nil {
		return
	}
	t.cacheHits.Add(hits)
	t.cacheMisses.Add(misses)
}

// AddPrepare records query-preparation wall time (candidate selection,
// preselection thresholds).
func (t *Trace) AddPrepare(d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	t.prepareNanos.Add(int64(d))
}

// AddEval records candidate-evaluation wall time.
func (t *Trace) AddEval(d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	t.evalNanos.Add(int64(d))
}

// AddWALWait records time spent waiting for a (group) fsync to cover a
// journaled commit — a mutation's durability wait, after the store lock
// was released.
func (t *Trace) AddWALWait(d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	t.walWaitNanos.Add(int64(d))
}

// AddQueue records time a request spent between arriving (decoded off
// the wire) and starting to execute — the server's dispatch/decode span.
func (t *Trace) AddQueue(d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	t.queueNanos.Add(int64(d))
}

// TraceSnapshot is a plain copy of a Trace's counters.
type TraceSnapshot struct {
	// Candidates entered the filter stage; every one is either
	// Preselected or Refined.
	Candidates  uint64
	Preselected uint64
	Refined     uint64
	// Undecided counts Refined candidates whose bounds ran out of
	// iteration budget before deciding the predicate.
	Undecided uint64
	// Iterations is the total refinement iterations across all runs.
	Iterations uint64
	// CacheHits/CacheMisses are the query's decomposition-cache traffic.
	CacheHits   uint64
	CacheMisses uint64
	// Prepare/Eval split the query wall time by phase.
	Prepare time.Duration
	Eval    time.Duration
	// WALWait is the durability wait of a traced mutation: journaled
	// commit → covered by a (group) fsync. Zero for queries and for
	// non-SyncAlways stores.
	WALWait time.Duration
	// Queue is the server-side dispatch span of a traced request:
	// decoded off the wire → execution started (argument parsing and
	// object decoding live here). Zero for in-process queries.
	Queue time.Duration
}

// Snapshot returns the trace's current counters (zero for a nil trace).
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	return TraceSnapshot{
		Candidates:  t.candidates.Load(),
		Preselected: t.preselected.Load(),
		Refined:     t.refined.Load(),
		Undecided:   t.undecided.Load(),
		Iterations:  t.iterations.Load(),
		CacheHits:   t.cacheHits.Load(),
		CacheMisses: t.cacheMisses.Load(),
		Prepare:     time.Duration(t.prepareNanos.Load()),
		Eval:        time.Duration(t.evalNanos.Load()),
		WALWait:     time.Duration(t.walWaitNanos.Load()),
		Queue:       time.Duration(t.queueNanos.Load()),
	}
}

// String renders the snapshot as one log-friendly line.
func (s TraceSnapshot) String() string {
	return fmt.Sprintf(
		"candidates=%d preselected=%d refined=%d undecided=%d iterations=%d cache_hits=%d cache_misses=%d prepare=%v eval=%v wal_wait=%v queue=%v",
		s.Candidates, s.Preselected, s.Refined, s.Undecided, s.Iterations,
		s.CacheHits, s.CacheMisses, s.Prepare, s.Eval, s.WALWait, s.Queue)
}

// traceKey is the context key of WithTrace. A zero-size key type makes
// TraceFrom allocation-free on contexts without a trace.
type traceKey struct{}

// WithTrace returns a context carrying t: queries run under it record
// their anatomy into t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom extracts the trace from ctx, nil when none was attached.
// The nil result is directly usable — every Trace method accepts a nil
// receiver.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Recorder is the always-on flight recorder: a fixed-size lock-free
// ring of structured events — slow queries with their trace snapshots,
// fsync stalls, checkpoint lifecycle, session churn, protocol errors —
// that survives to the postmortem. Recording never allocates and never
// takes a lock (each slot is a seqlock of atomic words), so the hot
// paths that feed it — the commit path, the query path, the group
// commit leader — are never stalled by a concurrent scrape.
//
// A nil *Recorder is valid and records nothing, the same convention as
// the rest of this package: callers arm it by wiring a recorder in and
// disarm it by leaving it nil.
type Recorder struct {
	slots []recorderSlot
	seq   atomic.Uint64 // next slot claim; monotonic event ordinal + 1

	// notes maps registered note strings to IDs. Registration takes the
	// mutex and may allocate — it happens at wiring time or on cold
	// paths (a protocol error, a deferred durability failure), never on
	// a commit or query path, which pass pre-registered IDs.
	nmu     sync.Mutex
	noteIDs map[string]NoteID
	notes   []string
}

// EventKind identifies what a flight-recorder event describes.
type EventKind uint8

const (
	// EvNone marks an empty slot.
	EvNone EventKind = iota
	// EvSlowQuery: a query exceeded the slow-query threshold. Dur is
	// its latency, the note names the query kind, and the full trace
	// snapshot rides along.
	EvSlowQuery
	// EvProtoError: a connection was closed for a framing or
	// command-shape violation. A is the connection ID.
	EvProtoError
	// EvSessionPark: a named subscription session lost its connection
	// and parked for RESUME. A is the session ID.
	EvSessionPark
	// EvSessionResume: a parked session was resumed. A is the session
	// ID, B the number of events the resume skipped as lost.
	EvSessionResume
	// EvSessionShed: a dropoldest-policy session discarded retained
	// events under backpressure. A is the session ID, B the events shed.
	EvSessionShed
	// EvCheckpointBegin: a checkpoint pin was taken on the commit path.
	// A is the store version pinned.
	EvCheckpointBegin
	// EvCheckpointInstall: a background checkpoint install completed.
	// Dur is the install wall time, A the checkpointed store version.
	EvCheckpointInstall
	// EvCheckpointSupersede: a pinned checkpoint was coalesced away
	// because a newer pin replaced it before its install started.
	EvCheckpointSupersede
	// EvGroupCommit: one group-commit fsync acknowledged a batch of
	// concurrent committers. Dur is the fsync latency, A the batch size.
	EvGroupCommit
	// EvFsyncStall: one fsync exceeded the stall threshold. Dur is the
	// fsync latency.
	EvFsyncStall
	// EvDeferredError: a background durability failure (fsync,
	// checkpoint install, cursor save) was latched for deferred
	// surfacing. The note carries the error text.
	EvDeferredError
)

var eventKindNames = [...]string{
	EvNone:                "none",
	EvSlowQuery:           "slow_query",
	EvProtoError:          "proto_error",
	EvSessionPark:         "session_park",
	EvSessionResume:       "session_resume",
	EvSessionShed:         "session_shed",
	EvCheckpointBegin:     "checkpoint_begin",
	EvCheckpointInstall:   "checkpoint_install",
	EvCheckpointSupersede: "checkpoint_supersede",
	EvGroupCommit:         "group_commit",
	EvFsyncStall:          "fsync_stall",
	EvDeferredError:       "deferred_error",
}

// String returns the kind's wire name (the EVENTS command and the
// debug endpoint serve it verbatim).
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// NoteID is a registered note string (see Recorder.Note). The zero ID
// is the empty note.
type NoteID int32

// maxNotes bounds the note table: a runaway cold path registering
// unbounded distinct strings degrades to one overflow note instead of
// growing without limit.
const maxNotes = 512

// slot payload layout: one version word plus fixed atomic payload
// words, written under an odd version and validated by readers — a
// seqlock per slot, so writers never block and a torn read is detected
// and skipped rather than locked against.
const (
	slotSeq = iota // claim ordinal (monotonic across the ring)
	slotKind
	slotNote
	slotTime // unix nanos
	slotDur  // nanoseconds
	slotA
	slotB
	slotTrace // 11 trace words (see traceWords)
	slotWords = slotTrace + traceWords
)

const traceWords = 11

type recorderSlot struct {
	ver atomic.Uint64 // odd while a writer owns the slot
	w   [slotWords]atomic.Int64
}

// NewRecorder builds a recorder holding the last `size` events
// (minimum 16; sizes are rounded up).
func NewRecorder(size int) *Recorder {
	if size < 16 {
		size = 16
	}
	return &Recorder{
		slots:   make([]recorderSlot, size),
		noteIDs: make(map[string]NoteID),
		notes:   []string{""},
	}
}

// Size returns the ring capacity (0 for a nil recorder).
func (r *Recorder) Size() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Note registers a note string and returns its ID, idempotently. It
// takes a lock and may allocate: call it at wiring time for hot-path
// notes, or from cold paths (error events). Past maxNotes distinct
// strings every new note collapses into a shared overflow ID.
func (r *Recorder) Note(s string) NoteID {
	if r == nil || s == "" {
		return 0
	}
	r.nmu.Lock()
	defer r.nmu.Unlock()
	if id, ok := r.noteIDs[s]; ok {
		return id
	}
	if len(r.notes) >= maxNotes {
		const overflow = "(notes overflow)"
		if id, ok := r.noteIDs[overflow]; ok {
			return id
		}
		id := NoteID(len(r.notes))
		r.noteIDs[overflow] = id
		r.notes = append(r.notes, overflow)
		return id
	}
	id := NoteID(len(r.notes))
	r.noteIDs[s] = id
	r.notes = append(r.notes, s)
	return id
}

// noteString resolves a note ID (empty for 0 or out of range).
func (r *Recorder) noteString(id NoteID) string {
	if id <= 0 {
		return ""
	}
	r.nmu.Lock()
	defer r.nmu.Unlock()
	if int(id) < len(r.notes) {
		return r.notes[id]
	}
	return ""
}

// Record appends one event without a trace. Allocation-free and
// lock-free; safe from any goroutine; a nil recorder drops the event.
func (r *Recorder) Record(kind EventKind, note NoteID, dur time.Duration, a, b int64) {
	if r == nil {
		return
	}
	r.record(kind, note, dur, a, b, false, TraceSnapshot{})
}

// RecordTrace appends one event carrying a full trace snapshot (the
// slow-query capture). Allocation-free and lock-free.
func (r *Recorder) RecordTrace(kind EventKind, note NoteID, dur time.Duration, a, b int64, ts TraceSnapshot) {
	if r == nil {
		return
	}
	r.record(kind, note, dur, a, b, true, ts)
}

// hasTraceBit marks a kind word whose slot carries a trace snapshot.
const hasTraceBit = int64(1) << 32

func (r *Recorder) record(kind EventKind, note NoteID, dur time.Duration, a, b int64, hasTrace bool, ts TraceSnapshot) {
	seq := r.seq.Add(1)
	s := &r.slots[(seq-1)%uint64(len(r.slots))]
	// Seqlock write: flip to odd, fill, flip back to even. Two writers
	// lapping onto the same slot interleave safely — a reader validates
	// the version is even and unchanged across its copy, so a torn slot
	// is skipped, never blocked on.
	s.ver.Add(1)
	kw := int64(kind)
	if hasTrace {
		kw |= hasTraceBit
	}
	s.w[slotSeq].Store(int64(seq))
	s.w[slotKind].Store(kw)
	s.w[slotNote].Store(int64(note))
	s.w[slotTime].Store(time.Now().UnixNano())
	s.w[slotDur].Store(int64(dur))
	s.w[slotA].Store(a)
	s.w[slotB].Store(b)
	s.w[slotTrace+0].Store(int64(ts.Candidates))
	s.w[slotTrace+1].Store(int64(ts.Preselected))
	s.w[slotTrace+2].Store(int64(ts.Refined))
	s.w[slotTrace+3].Store(int64(ts.Undecided))
	s.w[slotTrace+4].Store(int64(ts.Iterations))
	s.w[slotTrace+5].Store(int64(ts.CacheHits))
	s.w[slotTrace+6].Store(int64(ts.CacheMisses))
	s.w[slotTrace+7].Store(int64(ts.Prepare))
	s.w[slotTrace+8].Store(int64(ts.Eval))
	s.w[slotTrace+9].Store(int64(ts.WALWait))
	s.w[slotTrace+10].Store(int64(ts.Queue))
	s.ver.Add(1)
}

// Event is one decoded flight-recorder entry.
type Event struct {
	// Seq is the event's monotonic ordinal since the recorder was
	// built (1-based); gaps mean older events were overwritten.
	Seq int64
	// Kind identifies the event; Note is its registered note string
	// (the query kind for slow queries, the error text for errors).
	Kind EventKind
	Note string
	// Time is when the event was recorded.
	Time time.Time
	// Dur is the event's duration where one applies (query latency,
	// fsync latency, install wall time).
	Dur time.Duration
	// A and B are kind-specific values (batch size, session ID, ...).
	A, B int64
	// Trace is the full trace snapshot of a slow query; HasTrace
	// reports whether one was captured.
	HasTrace bool
	Trace    TraceSnapshot
}

// Snapshot copies the ring's current events, oldest first. Slots a
// writer holds mid-update are skipped (the seqlock detects them), so a
// scrape never blocks recording and vice versa. A nil recorder yields
// nil.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		for attempt := 0; attempt < 3; attempt++ {
			v1 := s.ver.Load()
			if v1 == 0 || v1%2 == 1 {
				break // never written, or a writer owns it right now
			}
			var w [slotWords]int64
			for j := range w {
				w[j] = s.w[j].Load()
			}
			if s.ver.Load() != v1 {
				continue // torn by a concurrent writer; retry
			}
			kw := w[slotKind]
			ev := Event{
				Seq:      w[slotSeq],
				Kind:     EventKind(kw & 0xff),
				Note:     r.noteString(NoteID(w[slotNote])),
				Time:     time.Unix(0, w[slotTime]),
				Dur:      time.Duration(w[slotDur]),
				A:        w[slotA],
				B:        w[slotB],
				HasTrace: kw&hasTraceBit != 0,
			}
			if ev.HasTrace {
				ev.Trace = TraceSnapshot{
					Candidates:  uint64(w[slotTrace+0]),
					Preselected: uint64(w[slotTrace+1]),
					Refined:     uint64(w[slotTrace+2]),
					Undecided:   uint64(w[slotTrace+3]),
					Iterations:  uint64(w[slotTrace+4]),
					CacheHits:   uint64(w[slotTrace+5]),
					CacheMisses: uint64(w[slotTrace+6]),
					Prepare:     time.Duration(w[slotTrace+7]),
					Eval:        time.Duration(w[slotTrace+8]),
					WALWait:     time.Duration(w[slotTrace+9]),
					Queue:       time.Duration(w[slotTrace+10]),
				}
			}
			out = append(out, ev)
			break
		}
	}
	// Oldest first by claim ordinal (the ring index order is rotated).
	sortEventsBySeq(out)
	return out
}

// sortEventsBySeq orders events by ordinal. The slice is nearly two
// sorted runs (the ring rotation point), so a simple insertion-style
// rotation would do; sort keeps it obvious.
func sortEventsBySeq(evs []Event) {
	// Find the rotation point and rotate — O(n), no comparisons sort
	// would need. Events are in ring-index order: seq increases except
	// at one wrap boundary.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq < evs[i-1].Seq {
			rotated := make([]Event, 0, len(evs))
			rotated = append(rotated, evs[i:]...)
			rotated = append(rotated, evs[:i]...)
			copy(evs, rotated)
			return
		}
	}
}

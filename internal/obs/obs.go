// Package obs is the dependency-free observability core of the stack:
// atomic counters, gauges and fixed-bucket latency histograms whose
// record paths never allocate (safe inside the engine's allocation
// ceilings), plus the per-query Trace of trace.go. Every layer — query
// engine, store, WAL, continuous queries, the TCP server — records into
// these primitives; the server flattens them into the STATS command and
// the HTTP debug endpoint.
//
// Allocation discipline: constructing a metric (Registry.Counter etc.)
// may allocate; recording into one (Counter.Add, Gauge.Set,
// Histogram.Observe, every Trace method) never does. The non-race
// allocation tests pin this at 0 allocs/op, the same //go:build !race
// pattern that guards the engine ceilings.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (it can go down).
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (negative n subtracts).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistBuckets is the fixed bucket count of every Histogram: bucket 0
// holds observations under 1µs, bucket i (0 < i < HistBuckets-1) holds
// [2^(i-1)µs, 2^i µs), and the last bucket overflows upward. The
// doubling ladder spans 1µs to ~6 days — every latency this system can
// produce — with ~2x quantile resolution, which is what fixed buckets
// buy: recording is one atomic add, no locks, no allocation.
const HistBuckets = 40

// Histogram is a fixed-bucket latency histogram. Observe is
// allocation-free and safe for concurrent use; quantiles are estimated
// from the bucket counts of a Snapshot.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [HistBuckets]atomic.Uint64
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	idx := bits.Len64(uint64(d) / 1000)
	if idx >= HistBuckets {
		idx = HistBuckets - 1
	}
	return idx
}

// Observe records one duration. Negative durations (clock steps) are
// clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	n := int64(d)
	h.count.Add(1)
	h.sum.Add(n)
	for {
		cur := h.max.Load()
		if n <= cur || h.max.CompareAndSwap(cur, n) {
			break
		}
	}
	h.buckets[bucketIndex(d)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// valueBucketIndex maps a dimensionless value to its bucket: bucket 0
// holds 0, bucket i holds [2^(i-1), 2^i), overflow lands in the last.
func valueBucketIndex(v uint64) int {
	idx := bits.Len64(v)
	if idx >= HistBuckets {
		idx = HistBuckets - 1
	}
	return idx
}

// ObserveValue records one dimensionless value (a batch size, a byte
// count) into the same doubling-ladder buckets, without the microsecond
// scaling of Observe. A histogram must be fed through exactly one of
// Observe and ObserveValue — the bucket boundaries differ — and a
// value-fed one is summarized with QuantileValue/AddHistValue instead
// of Quantile/AddHist.
func (h *Histogram) ObserveValue(v uint64) {
	n := int64(v)
	h.count.Add(1)
	h.sum.Add(n)
	for {
		cur := h.max.Load()
		if n <= cur || h.max.CompareAndSwap(cur, n) {
			break
		}
	}
	h.buckets[valueBucketIndex(v)].Add(1)
}

// Snapshot returns a consistent-enough copy of the histogram state for
// quantile estimation and merging. (Counts are read bucket by bucket;
// concurrent Observes may straddle the reads, skewing a quantile by at
// most the in-flight observations.)
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.SumNanos = h.sum.Load()
	s.MaxNanos = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, mergeable across
// instances (per-shard WAL journals sum into one).
type HistSnapshot struct {
	Count    uint64
	SumNanos int64
	MaxNanos int64
	Buckets  [HistBuckets]uint64
}

// Merge adds o into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.SumNanos += o.SumNanos
	if o.MaxNanos > s.MaxNanos {
		s.MaxNanos = o.MaxNanos
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile estimates the p-quantile (p in [0, 1]) as the upper bound of
// the bucket holding the rank, clamped to the observed maximum. Zero
// observations yield zero.
func (s HistSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= rank {
			if i == HistBuckets-1 {
				return time.Duration(s.MaxNanos)
			}
			ub := time.Duration(uint64(1000) << uint(i))
			if m := time.Duration(s.MaxNanos); m > 0 && ub > m {
				return m
			}
			return ub
		}
	}
	return time.Duration(s.MaxNanos)
}

// QuantileValue estimates the p-quantile of a value-fed histogram (one
// recorded through ObserveValue) as the upper bound of the bucket
// holding the rank, clamped to the observed maximum.
func (s HistSnapshot) QuantileValue(p float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= rank {
			if i == 0 {
				return 0
			}
			if i == HistBuckets-1 {
				return uint64(s.MaxNanos)
			}
			ub := uint64(1) << uint(i)
			if m := uint64(s.MaxNanos); m > 0 && ub > m {
				return m
			}
			return ub
		}
	}
	return uint64(s.MaxNanos)
}

// Mean returns the arithmetic mean of the observations, zero when
// empty.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / int64(s.Count))
}

// Registry is a named metric set. Registration (Counter/Gauge/
// Histogram) is idempotent and may allocate; the returned metric's
// record path never does, so callers register once up front and record
// on the hot path. A name holds at most one metric — registering it
// again under a different type panics, which catches wiring bugs at
// startup rather than producing silently-split metrics.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

func (r *Registry) checkFree(name, as string) {
	if _, ok := r.counters[name]; ok && as != "counter" {
		panic("obs: " + name + " already registered as a counter")
	}
	if _, ok := r.gauges[name]; ok && as != "gauge" {
		panic("obs: " + name + " already registered as a gauge")
	}
	if _, ok := r.hists[name]; ok && as != "histogram" {
		panic("obs: " + name + " already registered as a histogram")
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFree(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFree(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFree(name, "histogram")
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot flattens every metric into name → value. Counters and gauges
// appear verbatim; a histogram h expands to h.count, h.sum_ns,
// h.p50_ns, h.p95_ns, h.p99_ns and h.max_ns. The flat integer map is
// the lingua franca of the surfacing layers: the STATS reply, the debug
// endpoint's JSON and the load report all consume it directly.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges)+6*len(r.hists))
	for name, c := range r.counters {
		out[name] = int64(c.Load())
	}
	for name, g := range r.gauges {
		out[name] = g.Load()
	}
	for name, h := range r.hists {
		AddHist(out, name, h.Snapshot())
	}
	return out
}

// AddHist expands a histogram snapshot into a flat metric map under the
// given name prefix, the same shape Registry.Snapshot produces.
func AddHist(out map[string]int64, name string, s HistSnapshot) {
	out[name+".count"] = int64(s.Count)
	out[name+".sum_ns"] = s.SumNanos
	out[name+".p50_ns"] = int64(s.Quantile(0.50))
	out[name+".p95_ns"] = int64(s.Quantile(0.95))
	out[name+".p99_ns"] = int64(s.Quantile(0.99))
	out[name+".max_ns"] = s.MaxNanos
}

// AddHistValue expands a value-fed histogram snapshot (ObserveValue)
// into a flat metric map: count, sum, mean and value quantiles — no
// nanosecond suffixes, the values are dimensionless.
func AddHistValue(out map[string]int64, name string, s HistSnapshot) {
	out[name+".count"] = int64(s.Count)
	out[name+".sum"] = s.SumNanos
	out[name+".p50"] = int64(s.QuantileValue(0.50))
	out[name+".p95"] = int64(s.QuantileValue(0.95))
	out[name+".p99"] = int64(s.QuantileValue(0.99))
	out[name+".max"] = s.MaxNanos
}

// SortedKeys returns the keys of a flat metric map in lexical order —
// the deterministic iteration order of every surfaced snapshot.
func SortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package obs

import "sort"

// PointKind tags a MetricPoint with how to render it.
type PointKind uint8

const (
	// KindCounter is a monotonically increasing value.
	KindCounter PointKind = iota
	// KindGauge is an instantaneous value.
	KindGauge
	// KindTimeHist is a latency histogram (Observe-fed: bucket i is
	// [2^(i-1), 2^i) microseconds).
	KindTimeHist
	// KindValueHist is a dimensionless histogram (ObserveValue-fed:
	// bucket i is [2^(i-1), 2^i)).
	KindValueHist
)

// MetricPoint is one metric in a typed snapshot: the single sorted
// shape every surfacing layer consumes — STATS flattens it, the debug
// endpoint renders it as JSON, the Prometheus exposition renders it as
// text. One snapshot path, one sort, three formats.
type MetricPoint struct {
	Name string
	Kind PointKind
	// Value holds the counter/gauge value; unused for histograms.
	Value int64
	// Hist holds the histogram snapshot for the histogram kinds.
	Hist HistSnapshot
}

// SortPoints orders points by name — the deterministic order every
// consumer sees.
func SortPoints(pts []MetricPoint) {
	sort.Slice(pts, func(i, j int) bool { return pts[i].Name < pts[j].Name })
}

// Points returns the registry's metrics as a sorted typed snapshot.
// Registry-owned histograms are Observe-fed, so they surface as
// KindTimeHist.
func (r *Registry) Points() []MetricPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	pts := make([]MetricPoint, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		pts = append(pts, MetricPoint{Name: name, Kind: KindCounter, Value: int64(c.Load())})
	}
	for name, g := range r.gauges {
		pts = append(pts, MetricPoint{Name: name, Kind: KindGauge, Value: g.Load()})
	}
	for name, h := range r.hists {
		pts = append(pts, MetricPoint{Name: name, Kind: KindTimeHist, Hist: h.Snapshot()})
	}
	r.mu.Unlock()
	SortPoints(pts)
	return pts
}

// PointsMap flattens a point snapshot into the flat name → value map
// the STATS command serves: counters and gauges verbatim, histograms
// expanded to the .count/.sum_ns/quantile keys of AddHist (AddHistValue
// for value-fed ones).
func PointsMap(pts []MetricPoint) map[string]int64 {
	out := make(map[string]int64, len(pts)*2)
	for _, p := range pts {
		switch p.Kind {
		case KindTimeHist:
			AddHist(out, p.Name, p.Hist)
		case KindValueHist:
			AddHistValue(out, p.Name, p.Hist)
		default:
			out[p.Name] = p.Value
		}
	}
	return out
}

package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	if r.Size() != 0 {
		t.Fatal("nil recorder size")
	}
	if id := r.Note("x"); id != 0 {
		t.Fatalf("nil recorder Note = %d, want 0", id)
	}
	r.Record(EvGroupCommit, 0, time.Millisecond, 4, 0)
	r.RecordTrace(EvSlowQuery, 0, time.Second, 0, 0, TraceSnapshot{Candidates: 9})
	if evs := r.Snapshot(); evs != nil {
		t.Fatalf("nil recorder snapshot = %v, want nil", evs)
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(16)
	note := r.Note("knn")
	r.Record(EvGroupCommit, 0, 3*time.Millisecond, 7, 0)
	ts := TraceSnapshot{
		Candidates: 10, Preselected: 4, Refined: 3, Undecided: 1,
		Iterations: 2, CacheHits: 5, CacheMisses: 1,
		Prepare: time.Microsecond, Eval: 2 * time.Microsecond,
		WALWait: 3 * time.Microsecond, Queue: 4 * time.Microsecond,
	}
	r.RecordTrace(EvSlowQuery, note, 40*time.Millisecond, 0, 0, ts)

	evs := r.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("snapshot has %d events, want 2", len(evs))
	}
	gc, sq := evs[0], evs[1]
	if gc.Kind != EvGroupCommit || gc.Seq != 1 || gc.Dur != 3*time.Millisecond || gc.A != 7 || gc.HasTrace {
		t.Fatalf("group-commit event mangled: %+v", gc)
	}
	if sq.Kind != EvSlowQuery || sq.Seq != 2 || sq.Note != "knn" || sq.Dur != 40*time.Millisecond {
		t.Fatalf("slow-query event mangled: %+v", sq)
	}
	if !sq.HasTrace || sq.Trace != ts {
		t.Fatalf("slow-query trace mangled: has=%v %+v", sq.HasTrace, sq.Trace)
	}
	if sq.Time.IsZero() || time.Since(sq.Time) > time.Minute {
		t.Fatalf("event timestamp implausible: %v", sq.Time)
	}
}

func TestRecorderWraparound(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 40; i++ {
		r.Record(EvSessionShed, 0, 0, int64(i), 0)
	}
	evs := r.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("snapshot has %d events, want ring size 16", len(evs))
	}
	// The ring keeps the newest 16 (seq 25..40), oldest first.
	for i, ev := range evs {
		if want := int64(25 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest-first after wrap)", i, ev.Seq, want)
		}
		if ev.A != ev.Seq-1 {
			t.Fatalf("event %d payload A=%d for seq %d", i, ev.A, ev.Seq)
		}
	}
}

func TestRecorderMinimumSize(t *testing.T) {
	if got := NewRecorder(0).Size(); got != 16 {
		t.Fatalf("NewRecorder(0) size = %d, want 16", got)
	}
	if got := NewRecorder(100).Size(); got != 100 {
		t.Fatalf("NewRecorder(100) size = %d, want 100", got)
	}
}

func TestRecorderNoteRegistry(t *testing.T) {
	r := NewRecorder(16)
	a := r.Note("alpha")
	if r.Note("alpha") != a {
		t.Fatal("Note is not idempotent")
	}
	if r.Note("") != 0 {
		t.Fatal("empty note must be ID 0")
	}
	if got := r.noteString(a); got != "alpha" {
		t.Fatalf("noteString = %q", got)
	}
	// Past maxNotes distinct strings, registration degrades to one
	// shared overflow note instead of growing without bound.
	for i := 0; i < maxNotes+10; i++ {
		r.Note(fmt.Sprintf("note-%d", i))
	}
	over1 := r.Note("fresh-after-overflow-1")
	over2 := r.Note("fresh-after-overflow-2")
	if over1 != over2 {
		t.Fatalf("overflow notes got distinct IDs %d, %d", over1, over2)
	}
	if got := r.noteString(over1); got != "(notes overflow)" {
		t.Fatalf("overflow note resolves to %q", got)
	}
}

func TestEventKindString(t *testing.T) {
	want := map[EventKind]string{
		EvNone:                "none",
		EvSlowQuery:           "slow_query",
		EvProtoError:          "proto_error",
		EvSessionPark:         "session_park",
		EvSessionResume:       "session_resume",
		EvSessionShed:         "session_shed",
		EvCheckpointBegin:     "checkpoint_begin",
		EvCheckpointInstall:   "checkpoint_install",
		EvCheckpointSupersede: "checkpoint_supersede",
		EvGroupCommit:         "group_commit",
		EvFsyncStall:          "fsync_stall",
		EvDeferredError:       "deferred_error",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("EventKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if EventKind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must stringify as unknown")
	}
}

// TestRecorderConcurrency hammers writers and scrapers together; under
// -race this proves the seqlock ring is data-race-free, and in any mode
// it proves a scrape never observes a torn event (a slot mixing two
// writers' payloads would surface as a seq/payload mismatch).
func TestRecorderConcurrency(t *testing.T) {
	r := NewRecorder(32)
	const writers, perWriter = 4, 2000
	var writeWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func() {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(EvGroupCommit, 0, time.Duration(i), int64(i), int64(i)*2)
			}
		}()
	}
	stop := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range r.Snapshot() {
				if ev.Kind != EvGroupCommit || ev.B != ev.A*2 {
					t.Errorf("torn event: %+v", ev)
					return
				}
			}
		}
	}()
	writeWG.Wait()
	close(stop)
	<-scrapeDone
}

package obs

import (
	"bufio"
	"io"
	"strconv"
)

// WriteProm renders a point snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
// `_count`. Metric names are sanitized (dots become underscores); time
// histograms are rendered in seconds, value histograms in their native
// unit. The points should come from one sorted snapshot (the same one
// STATS and the JSON endpoint serve), so scrapes are deterministic.
func WriteProm(w io.Writer, pts []MetricPoint) error {
	bw := bufio.NewWriter(w)
	for _, p := range pts {
		name := PromName(p.Name)
		switch p.Kind {
		case KindCounter:
			bw.WriteString("# TYPE " + name + " counter\n")
			bw.WriteString(name + " " + strconv.FormatInt(p.Value, 10) + "\n")
		case KindGauge:
			bw.WriteString("# TYPE " + name + " gauge\n")
			bw.WriteString(name + " " + strconv.FormatInt(p.Value, 10) + "\n")
		case KindTimeHist:
			writePromHist(bw, name, p.Hist, true)
		case KindValueHist:
			writePromHist(bw, name, p.Hist, false)
		}
	}
	return bw.Flush()
}

// PromName sanitizes a metric name for the exposition format: dots and
// every other character outside [a-zA-Z0-9_:] become underscores.
func PromName(name string) string {
	out := []byte(name)
	for i := 0; i < len(out); i++ {
		c := out[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				out[i] = '_'
			}
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// writePromHist renders one histogram as cumulative buckets. A time
// histogram's bucket i spans [2^(i-1), 2^i) microseconds (bucket 0 is
// under 1µs), rendered with `le` in seconds; a value histogram's bucket
// i spans the same ladder dimensionless, with bucket 0 holding exactly
// zero. The last bucket always overflows upward, so its `le` is +Inf.
func writePromHist(bw *bufio.Writer, name string, s HistSnapshot, isTime bool) {
	bw.WriteString("# TYPE " + name + " histogram\n")
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		cum += s.Buckets[i]
		var le string
		switch {
		case i == HistBuckets-1:
			le = "+Inf"
		case isTime:
			// Upper bound 2^i µs in seconds (bucket 0: 1µs).
			le = strconv.FormatFloat(float64(uint64(1)<<uint(i))/1e6, 'g', -1, 64)
		case i == 0:
			le = "0"
		default:
			// Integer values below 2^i, so the inclusive bound is 2^i-1.
			le = strconv.FormatUint(uint64(1)<<uint(i)-1, 10)
		}
		bw.WriteString(name + `_bucket{le="` + le + `"} ` + strconv.FormatUint(cum, 10) + "\n")
	}
	sum := float64(s.SumNanos)
	if isTime {
		sum /= 1e9
	}
	bw.WriteString(name + "_sum " + strconv.FormatFloat(sum, 'g', -1, 64) + "\n")
	bw.WriteString(name + "_count " + strconv.FormatUint(s.Count, 10) + "\n")
}

package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("fresh counter = %d", c.Load())
	}
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(10)
	if got := g.Load(); got != 11 {
		t.Fatalf("gauge = %d, want 11", got)
	}
	g.Set(-3)
	if got := g.Load(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{999 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{2*time.Microsecond - 1, 1},
		{2 * time.Microsecond, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
		{1000 * time.Hour, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistogramObserveAndQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	if got := h.Snapshot().Mean(); got != 0 {
		t.Fatalf("empty mean = %v", got)
	}
	// 90 fast observations, 10 slow: p50 lands in the fast bucket's
	// range, p99 in the slow one's.
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond)
	}
	h.Observe(-time.Second) // clamps to zero, lands in bucket 0
	s := h.Snapshot()
	if s.Count != 101 {
		t.Fatalf("count = %d, want 101", s.Count)
	}
	if h.Count() != 101 {
		t.Fatalf("Count() = %d", h.Count())
	}
	p50 := s.Quantile(0.50)
	if p50 < 10*time.Microsecond || p50 > 32*time.Microsecond {
		t.Errorf("p50 = %v, want within the 10µs bucket's bound", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 10*time.Millisecond || p99 > 32*time.Millisecond {
		t.Errorf("p99 = %v, want within the 10ms bucket's bound", p99)
	}
	if s.MaxNanos != int64(10*time.Millisecond) {
		t.Errorf("max = %d, want %d", s.MaxNanos, int64(10*time.Millisecond))
	}
	// Quantiles clamp p and never exceed the observed max.
	if q := s.Quantile(2); q != time.Duration(s.MaxNanos) {
		t.Errorf("Quantile(2) = %v, want max %v", q, time.Duration(s.MaxNanos))
	}
	if q := s.Quantile(-1); q <= 0 {
		t.Errorf("Quantile(-1) = %v, want > 0", q)
	}
	if m := s.Mean(); m <= 0 || m > 10*time.Millisecond {
		t.Errorf("mean = %v out of range", m)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(10000 * time.Hour) // beyond the ladder: last bucket
	s := h.Snapshot()
	if s.Buckets[HistBuckets-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Buckets[HistBuckets-1])
	}
	if got := s.Quantile(0.5); got != time.Duration(s.MaxNanos) {
		t.Fatalf("overflow quantile = %v, want max %v", got, time.Duration(s.MaxNanos))
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	a.Observe(2 * time.Millisecond)
	b.Observe(time.Second)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 {
		t.Fatalf("merged count = %d, want 3", sa.Count)
	}
	if sa.MaxNanos != int64(time.Second) {
		t.Fatalf("merged max = %d, want 1s", sa.MaxNanos)
	}
	wantSum := int64(3*time.Millisecond) + int64(time.Second)
	if sa.SumNanos != wantSum {
		t.Fatalf("merged sum = %d, want %d", sa.SumNanos, wantSum)
	}
	if q := sa.Quantile(1); q < time.Second {
		t.Fatalf("merged p100 = %v, want >= 1s", q)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	if r.Counter("a.count") != c {
		t.Fatal("Counter not idempotent")
	}
	g := r.Gauge("a.gauge")
	if r.Gauge("a.gauge") != g {
		t.Fatal("Gauge not idempotent")
	}
	h := r.Histogram("a.lat")
	if r.Histogram("a.lat") != h {
		t.Fatal("Histogram not idempotent")
	}
	c.Add(7)
	g.Set(-2)
	h.Observe(time.Millisecond)
	snap := r.Snapshot()
	if snap["a.count"] != 7 || snap["a.gauge"] != -2 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap["a.lat.count"] != 1 || snap["a.lat.max_ns"] != int64(time.Millisecond) {
		t.Fatalf("histogram snapshot = %v", snap)
	}
	for _, k := range []string{"a.lat.sum_ns", "a.lat.p50_ns", "a.lat.p95_ns", "a.lat.p99_ns"} {
		if _, ok := snap[k]; !ok {
			t.Errorf("missing key %s", k)
		}
	}
	keys := SortedKeys(snap)
	if len(keys) != len(snap) {
		t.Fatalf("SortedKeys lost entries: %d vs %d", len(keys), len(snap))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys not sorted: %q >= %q", keys[i-1], keys[i])
		}
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x")
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.AddCandidates(5)
	tr.CountPreselected()
	tr.CountRefined(3)
	tr.CountUndecided()
	tr.AddCacheStats(1, 2)
	tr.AddPrepare(time.Millisecond)
	tr.AddEval(time.Millisecond)
	if s := tr.Snapshot(); s != (TraceSnapshot{}) {
		t.Fatalf("nil trace snapshot = %+v", s)
	}
}

func TestTraceRecordsAndString(t *testing.T) {
	tr := &Trace{}
	tr.AddCandidates(10)
	tr.AddCandidates(0) // no-op
	tr.CountPreselected()
	tr.CountRefined(4)
	tr.CountRefined(0) // refined with zero iterations still counts the run
	tr.CountUndecided()
	tr.AddCacheStats(3, 2)
	tr.AddPrepare(2 * time.Millisecond)
	tr.AddEval(5 * time.Millisecond)
	tr.AddPrepare(-time.Second) // no-op
	s := tr.Snapshot()
	want := TraceSnapshot{
		Candidates: 10, Preselected: 1, Refined: 2, Undecided: 1,
		Iterations: 4, CacheHits: 3, CacheMisses: 2,
		Prepare: 2 * time.Millisecond, Eval: 5 * time.Millisecond,
	}
	if s != want {
		t.Fatalf("snapshot = %+v, want %+v", s, want)
	}
	str := s.String()
	for _, frag := range []string{"candidates=10", "preselected=1", "refined=2", "iterations=4", "cache_hits=3"} {
		if !strings.Contains(str, frag) {
			t.Errorf("String() = %q missing %q", str, frag)
		}
	}
}

func TestTraceContext(t *testing.T) {
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatalf("TraceFrom(background) = %v, want nil", got)
	}
	tr := &Trace{}
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatalf("TraceFrom = %v, want %v", got, tr)
	}
}

// TestObsConcurrency hammers every primitive from many goroutines; its
// assertions are exact because all record paths are atomic. CI runs it
// under -race as a dedicated step.
func TestObsConcurrency(t *testing.T) {
	const workers, per = 8, 1000
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	tr := &Trace{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
				h.Observe(time.Duration(i) * time.Microsecond)
				tr.AddCandidates(1)
				tr.CountRefined(1)
				tr.AddCacheStats(1, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Load(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Snapshot().Count; got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	s := tr.Snapshot()
	if s.Candidates != workers*per || s.Refined != workers*per || s.CacheHits != workers*per {
		t.Errorf("trace = %+v", s)
	}
}

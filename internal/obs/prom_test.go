package obs

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestSortPointsAndPointsMap(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	pts := []MetricPoint{
		{Name: "z.counter", Kind: KindCounter, Value: 7},
		{Name: "a.gauge", Kind: KindGauge, Value: -2},
		{Name: "m.latency", Kind: KindTimeHist, Hist: h.Snapshot()},
	}
	SortPoints(pts)
	if pts[0].Name != "a.gauge" || pts[1].Name != "m.latency" || pts[2].Name != "z.counter" {
		t.Fatalf("SortPoints order: %v %v %v", pts[0].Name, pts[1].Name, pts[2].Name)
	}
	m := PointsMap(pts)
	if m["z.counter"] != 7 || m["a.gauge"] != -2 {
		t.Fatalf("PointsMap scalars: %v", m)
	}
	if m["m.latency.count"] != 2 {
		t.Fatalf("PointsMap histogram expansion: %v", m)
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"server.cmd.knn.latency": "server_cmd_knn_latency",
		"wal.fsyncs":             "wal_fsyncs",
		"9lives":                 "_lives",
		"ok_name:colon":          "ok_name:colon",
		"sp ace-dash":            "sp_ace_dash",
	} {
		if got := PromName(in); got != want {
			t.Fatalf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// promParse is a minimal exposition-format checker shared in spirit
// with the CI scrape step: every non-comment line must be
// `name[{le="..."}] value`, every # line a TYPE comment, and every
// histogram must close with +Inf/_sum/_count.
func promParse(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.Fields(line)
			if len(parts) != 4 || parts[1] != "TYPE" {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown TYPE %q", ln+1, parts[3])
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no sample value in %q", ln+1, line)
		}
		name, val := line[:sp], line[sp+1:]
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, val, err)
		}
		bare := name
		if i := strings.IndexByte(name, '{'); i >= 0 {
			label := name[i:]
			if !strings.HasPrefix(label, `{le="`) || !strings.HasSuffix(label, `"}`) {
				t.Fatalf("line %d: malformed label %q", ln+1, label)
			}
			bare = name[:i]
		}
		for _, c := range bare {
			if !(c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
				t.Fatalf("line %d: invalid metric name char %q in %q", ln+1, c, name)
			}
		}
		samples[name] = f
	}
	return samples
}

func TestWritePromExposition(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Microsecond)  // bucket index for 3µs
	h.Observe(40 * time.Millisecond) // far bucket
	var vh Histogram
	vh.ObserveValue(0)
	vh.ObserveValue(5)
	pts := []MetricPoint{
		{Name: "server.conns.accepted", Kind: KindCounter, Value: 12},
		{Name: "server.sessions", Kind: KindGauge, Value: 3},
		{Name: "server.cmd.knn.latency", Kind: KindTimeHist, Hist: h.Snapshot()},
		{Name: "cq.batch.size", Kind: KindValueHist, Hist: vh.Snapshot()},
	}
	SortPoints(pts)
	var sb strings.Builder
	if err := WriteProm(&sb, pts); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	samples := promParse(t, text)

	if samples["server_conns_accepted"] != 12 {
		t.Fatalf("counter sample: %v", samples["server_conns_accepted"])
	}
	if samples["server_sessions"] != 3 {
		t.Fatalf("gauge sample: %v", samples["server_sessions"])
	}
	// Histograms close with +Inf == _count, and buckets are cumulative
	// (monotonically nondecreasing along the ladder).
	for _, base := range []string{"server_cmd_knn_latency", "cq_batch_size"} {
		inf := samples[base+`_bucket{le="+Inf"}`]
		if inf != 2 {
			t.Fatalf("%s +Inf bucket = %v, want 2", base, inf)
		}
		if samples[base+"_count"] != 2 {
			t.Fatalf("%s _count = %v, want 2", base, samples[base+"_count"])
		}
		if _, ok := samples[base+"_sum"]; !ok {
			t.Fatalf("%s has no _sum", base)
		}
		n := 0
		for series, v := range samples {
			if strings.HasPrefix(series, base+"_bucket{") {
				n++
				if v > inf {
					t.Fatalf("bucket %s = %v exceeds +Inf %v", series, v, inf)
				}
			}
		}
		if n != HistBuckets {
			t.Fatalf("%s rendered %d buckets, want %d", base, n, HistBuckets)
		}
		// Cumulative monotonicity along the rendered ladder.
		var last float64
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, base+"_bucket{") {
				v, _ := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
				if v < last {
					t.Fatalf("%s buckets not cumulative: %v after %v", base, v, last)
				}
				last = v
			}
		}
	}
	// A time histogram's sum is in seconds; ~40ms + 3µs ≈ 0.04s.
	if s := samples["server_cmd_knn_latency_sum"]; s < 0.01 || s > 1 {
		t.Fatalf("time histogram sum %v not in seconds", s)
	}
	// A value histogram keeps its native unit: sum is 0 + 5.
	if s := samples["cq_batch_size_sum"]; s != 5 {
		t.Fatalf("value histogram sum %v, want 5", s)
	}
	// Value-histogram bucket 0 must carry le="0" (exactly-zero bucket).
	if _, ok := samples[`cq_batch_size_bucket{le="0"}`]; !ok {
		t.Fatal(`value histogram lost its le="0" bucket`)
	}
}

func TestRegistryPoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("c.one").Add(4)
	r.Gauge("g.two").Set(9)
	r.Histogram("h.three").Observe(time.Millisecond)
	pts := r.Points()
	if len(pts) != 3 {
		t.Fatalf("Points returned %d points: %+v", len(pts), pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i-1].Name >= pts[i].Name {
			t.Fatalf("Points not sorted: %q >= %q", pts[i-1].Name, pts[i].Name)
		}
	}
	m := PointsMap(pts)
	if m["c.one"] != 4 || m["g.two"] != 9 || m["h.three.count"] != 1 {
		t.Fatalf("registry points map: %v", m)
	}
	var nilReg *Registry
	if nilReg.Points() != nil {
		t.Fatal("nil registry must yield nil points")
	}
}

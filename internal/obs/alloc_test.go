//go:build !race

package obs

import (
	"context"
	"testing"
	"time"
)

// The metric record paths must stay allocation-free: they run inside
// the engine's audited hot paths (PR 6's EngineKNN/StoreWarmKNN
// ceilings) and on every server command dispatch. Guarded by !race
// because the race detector instruments allocations; CI runs these in
// the plain allocation-ceilings step.

func TestCounterRecordZeroAlloc(t *testing.T) {
	var c Counter
	if n := testing.AllocsPerRun(100, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Fatalf("Counter record path allocates %.1f allocs/op, want 0", n)
	}
}

func TestGaugeRecordZeroAlloc(t *testing.T) {
	var g Gauge
	if n := testing.AllocsPerRun(100, func() { g.Inc(); g.Add(-1); g.Set(5) }); n != 0 {
		t.Fatalf("Gauge record path allocates %.1f allocs/op, want 0", n)
	}
}

func TestHistogramRecordZeroAlloc(t *testing.T) {
	var h Histogram
	d := 37 * time.Microsecond
	if n := testing.AllocsPerRun(100, func() { h.Observe(d) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f allocs/op, want 0", n)
	}
}

func TestTraceRecordZeroAlloc(t *testing.T) {
	tr := &Trace{}
	if n := testing.AllocsPerRun(100, func() {
		tr.AddCandidates(10)
		tr.CountPreselected()
		tr.CountRefined(2)
		tr.CountUndecided()
		tr.AddCacheStats(1, 1)
		tr.AddPrepare(time.Microsecond)
		tr.AddEval(time.Microsecond)
	}); n != 0 {
		t.Fatalf("Trace record path allocates %.1f allocs/op, want 0", n)
	}
}

func TestNilTraceZeroAlloc(t *testing.T) {
	var tr *Trace
	if n := testing.AllocsPerRun(100, func() {
		tr.AddCandidates(10)
		tr.CountRefined(2)
		tr.AddEval(time.Microsecond)
	}); n != 0 {
		t.Fatalf("nil Trace path allocates %.1f allocs/op, want 0", n)
	}
}

// TestTraceFromZeroAlloc pins the trace-disabled query path's context
// lookup at zero allocations: extracting a (missing) trace from a
// context must cost nothing, or every uninstrumented query would pay
// for the instrumentation it did not ask for.
func TestTraceFromZeroAlloc(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		if TraceFrom(ctx) != nil {
			t.Fatal("unexpected trace")
		}
	}); n != 0 {
		t.Fatalf("TraceFrom on a trace-free context allocates %.1f allocs/op, want 0", n)
	}
}

// TestRecorderRecordZeroAlloc pins the flight-recorder write path at
// zero allocations: it runs on the commit path, the group-commit
// leader and every traced query, so a single allocation here would
// show up in the audited EngineKNN/StoreWarmKNN ceilings.
func TestRecorderRecordZeroAlloc(t *testing.T) {
	r := NewRecorder(64)
	note := r.Note("knn") // pre-registered, as hot paths do
	ts := TraceSnapshot{Candidates: 12, Refined: 3, Eval: time.Millisecond}
	if n := testing.AllocsPerRun(100, func() {
		r.Record(EvGroupCommit, 0, time.Millisecond, 8, 0)
		r.RecordTrace(EvSlowQuery, note, 40*time.Millisecond, 0, 0, ts)
	}); n != 0 {
		t.Fatalf("Recorder record path allocates %.1f allocs/op, want 0", n)
	}
}

package gf

import (
	"math/rand"
	"testing"
)

// Property: CDFBounds intervals contain the true probabilities for any
// admissible instantiation.
func TestCDFBoundsContainTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(10)
		ivs := make([]Interval, n)
		ps := make([]float64, n)
		for i := range ivs {
			lb := rng.Float64()
			ub := lb + rng.Float64()*(1-lb)
			ivs[i] = Interval{LB: lb, UB: ub}
			ps[i] = lb + rng.Float64()*(ub-lb)
		}
		cb := NewCDFBounds(ivs)
		truth := PoissonBinomial(ps)
		truthCDF := CDF(truth)
		for k := 0; k <= n; k++ {
			if !cb.Bound(k).Contains(truth[k], 1e-9) {
				t.Fatalf("P(Σ=%d)=%g outside CDF-derived bound %+v", k, truth[k], cb.Bound(k))
			}
			if !cb.CDFBound(k).Contains(truthCDF[k], 1e-9) {
				t.Fatalf("P(Σ<%d)=%g outside tail bound %+v", k, truthCDF[k], cb.CDFBound(k))
			}
		}
	}
}

// Property (the paper's tightness claim, extended version [3]): the UGF
// point-probability bounds are never looser than the two-regular-GF
// bounds, and are strictly tighter in typical instances.
func TestUGFTighterThanCDFBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	strictlyTighter := 0
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(10)
		ivs := make([]Interval, n)
		f := NewUGF()
		for i := range ivs {
			lb := rng.Float64()
			ub := lb + rng.Float64()*(1-lb)
			ivs[i] = Interval{LB: lb, UB: ub}
			f.Multiply(ivs[i])
		}
		cb := NewCDFBounds(ivs)
		for k := 0; k <= n; k++ {
			u, c := f.Bound(k), cb.Bound(k)
			if u.LB < c.LB-1e-9 || u.UB > c.UB+1e-9 {
				t.Fatalf("k=%d: UGF [%g,%g] looser than CDF bounds [%g,%g]",
					k, u.LB, u.UB, c.LB, c.UB)
			}
			if u.Width() < c.Width()-1e-9 {
				strictlyTighter++
			}
		}
	}
	if strictlyTighter == 0 {
		t.Error("UGF was never strictly tighter; ablation claim not exercised")
	}
}

func TestCDFBoundsEdges(t *testing.T) {
	cb := NewCDFBounds([]Interval{{LB: 0.5, UB: 0.5}})
	if got := cb.CDFBound(0); got.LB != 0 || got.UB != 0 {
		t.Errorf("P(Σ<0) = %+v, want [0,0]", got)
	}
	if got := cb.CDFBound(5); !almostEqual(got.LB, 1, 1e-12) || !almostEqual(got.UB, 1, 1e-12) {
		t.Errorf("P(Σ<5) = %+v, want [1,1]", got)
	}
	// Exact intervals collapse point bounds to the exact value.
	if got := cb.Bound(1); !almostEqual(got.LB, 0.5, 1e-12) || !almostEqual(got.UB, 0.5, 1e-12) {
		t.Errorf("Bound(1) = %+v, want [0.5, 0.5]", got)
	}
}

package gf

import (
	"math/rand"
	"testing"
)

// TestUGFPaperExample3 reproduces Example 3 of the paper verbatim:
// PLB(X1)=20%, PUB(X1)=50%, PLB(X2)=60%, PUB(X2)=80% gives
// F² = 0.12x² + 0.34x + 0.1 + 0.22xy + 0.16y + 0.06y², hence
// P(Σ=2) ∈ [12%, 40%], P(Σ=1) ∈ [34%, 78%], P(Σ=0) ∈ [10%, 32%].
func TestUGFPaperExample3(t *testing.T) {
	f := NewUGF()
	f.Multiply(Interval{LB: 0.2, UB: 0.5})
	f.Multiply(Interval{LB: 0.6, UB: 0.8})

	coeffs := []struct {
		i, j int
		want float64
	}{
		{2, 0, 0.12}, {1, 0, 0.34}, {0, 0, 0.10},
		{1, 1, 0.22}, {0, 1, 0.16}, {0, 2, 0.06},
	}
	for _, c := range coeffs {
		if got := f.Coefficient(c.i, c.j); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("c_{%d,%d} = %g, want %g", c.i, c.j, got, c.want)
		}
	}

	bounds := []struct {
		k      int
		lb, ub float64
	}{
		{2, 0.12, 0.40}, {1, 0.34, 0.78}, {0, 0.10, 0.32},
	}
	for _, b := range bounds {
		iv := f.Bound(b.k)
		if !almostEqual(iv.LB, b.lb, 1e-12) || !almostEqual(iv.UB, b.ub, 1e-12) {
			t.Errorf("Bound(%d) = [%g, %g], want [%g, %g]", b.k, iv.LB, iv.UB, b.lb, b.ub)
		}
	}
}

func TestUGFTotalMassInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	f := NewUGF()
	for i := 0; i < 40; i++ {
		lb := rng.Float64()
		ub := lb + rng.Float64()*(1-lb)
		f.Multiply(Interval{LB: lb, UB: ub})
		if !almostEqual(f.TotalMass(), 1, 1e-9) {
			t.Fatalf("after %d factors mass = %g", i+1, f.TotalMass())
		}
	}
}

// Property: for exact intervals (LB == UB) the UGF degenerates to the
// regular Poisson binomial generating function.
func TestUGFDegeneratesToPoissonBinomial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(15)
		ps := make([]float64, n)
		f := NewUGF()
		for i := range ps {
			ps[i] = rng.Float64()
			f.Multiply(Exact(ps[i]))
		}
		want := PoissonBinomial(ps)
		for k := 0; k <= n; k++ {
			iv := f.Bound(k)
			if !almostEqual(iv.LB, want[k], 1e-9) || !almostEqual(iv.UB, want[k], 1e-9) {
				t.Fatalf("k=%d: UGF [%g, %g] vs exact %g", k, iv.LB, iv.UB, want[k])
			}
		}
	}
}

// Property (the central soundness property of Section IV-C): for any
// admissible instantiation p_i ∈ [LB_i, UB_i], the true Poisson
// binomial probability lies within the UGF bounds, for point
// probabilities and for tails.
func TestUGFBoundsContainTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(10)
		ivs := make([]Interval, n)
		ps := make([]float64, n)
		f := NewUGF()
		for i := range ivs {
			lb := rng.Float64()
			ub := lb + rng.Float64()*(1-lb)
			ivs[i] = Interval{LB: lb, UB: ub}
			ps[i] = lb + rng.Float64()*(ub-lb)
			f.Multiply(ivs[i])
		}
		truth := PoissonBinomial(ps)
		truthCDF := CDF(truth)
		for k := 0; k <= n; k++ {
			if !f.Bound(k).Contains(truth[k], 1e-9) {
				t.Fatalf("P(Σ=%d)=%g outside UGF bound %+v", k, truth[k], f.Bound(k))
			}
			if !f.CDFBound(k).Contains(truthCDF[k], 1e-9) {
				t.Fatalf("P(Σ<%d)=%g outside UGF CDF bound %+v", k, truthCDF[k], f.CDFBound(k))
			}
		}
	}
}

// Property: the truncated UGF yields exactly the same bounds as the
// full UGF for every count below kMax (the Section VI merging argument).
func TestTruncatedUGFMatchesFullBelowK(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(25)
		kMax := 1 + rng.Intn(8)
		full := NewUGF()
		trunc := NewTruncatedUGF(kMax)
		for i := 0; i < n; i++ {
			lb := rng.Float64()
			ub := lb + rng.Float64()*(1-lb)
			iv := Interval{LB: lb, UB: ub}
			full.Multiply(iv)
			trunc.Multiply(iv)
		}
		for k := 0; k < kMax && k <= n; k++ {
			fb, tb := full.Bound(k), trunc.Bound(k)
			if !almostEqual(fb.LB, tb.LB, 1e-9) || !almostEqual(fb.UB, tb.UB, 1e-9) {
				t.Fatalf("n=%d kMax=%d k=%d: full [%g,%g] vs trunc [%g,%g]",
					n, kMax, k, fb.LB, fb.UB, tb.LB, tb.UB)
			}
			fc, tc := full.CDFBound(k+1), trunc.CDFBound(k+1)
			if !almostEqual(fc.LB, tc.LB, 1e-9) || !almostEqual(fc.UB, tc.UB, 1e-9) {
				t.Fatalf("n=%d kMax=%d CDF k=%d: full [%g,%g] vs trunc [%g,%g]",
					n, kMax, k+1, fc.LB, fc.UB, tc.LB, tc.UB)
			}
		}
		if !almostEqual(trunc.TotalMass(), 1, 1e-9) {
			t.Fatalf("truncated mass = %g", trunc.TotalMass())
		}
	}
}

func TestUGFBoundsSliceAndAccessors(t *testing.T) {
	f := NewUGF()
	f.Multiply(Interval{LB: 0.2, UB: 0.5})
	f.Multiply(Interval{LB: 0.6, UB: 0.8})
	bs := f.Bounds()
	if len(bs) != 3 {
		t.Fatalf("Bounds len = %d", len(bs))
	}
	if f.N() != 2 {
		t.Errorf("N = %d", f.N())
	}
	if got := f.Coefficient(-1, 0); got != 0 {
		t.Errorf("out-of-range coefficient = %g", got)
	}
	tr := NewTruncatedUGF(2)
	tr.Multiply(Interval{LB: 0.2, UB: 0.5})
	tr.Multiply(Interval{LB: 0.6, UB: 0.8})
	tr.Multiply(Interval{LB: 0.1, UB: 0.9})
	if bs := tr.Bounds(); len(bs) != 2 {
		t.Errorf("truncated Bounds len = %d, want 2", len(bs))
	}
	if lb := tr.LowerBound(5); lb != 0 {
		t.Errorf("LowerBound beyond kMax = %g", lb)
	}
	if ub := tr.UpperBound(5); ub != 1 {
		t.Errorf("UpperBound beyond kMax = %g", ub)
	}
}

func TestNewTruncatedUGFPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for kMax <= 0")
		}
	}()
	NewTruncatedUGF(0)
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{LB: 0.2, UB: 0.5}
	if !almostEqual(iv.Width(), 0.3, 1e-12) {
		t.Errorf("Width = %g", iv.Width())
	}
	if !iv.Contains(0.3, 0) || iv.Contains(0.6, 0) {
		t.Error("Contains misbehaves")
	}
	if e := Exact(0.4); e.LB != 0.4 || e.UB != 0.4 {
		t.Error("Exact misbehaves")
	}
}

func BenchmarkPoissonBinomial(b *testing.B) {
	rng := rand.New(rand.NewSource(90))
	ps := make([]float64, 200)
	for i := range ps {
		ps[i] = rng.Float64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PoissonBinomial(ps)
	}
}

func BenchmarkUGFFull(b *testing.B) {
	rng := rand.New(rand.NewSource(91))
	ivs := make([]Interval, 60)
	for i := range ivs {
		lb := rng.Float64()
		ivs[i] = Interval{LB: lb, UB: lb + rng.Float64()*(1-lb)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := NewUGF()
		f.MultiplyAll(ivs)
	}
}

func BenchmarkUGFTruncatedK5(b *testing.B) {
	rng := rand.New(rand.NewSource(92))
	ivs := make([]Interval, 60)
	for i := range ivs {
		lb := rng.Float64()
		ivs[i] = Interval{LB: lb, UB: lb + rng.Float64()*(1-lb)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := NewTruncatedUGF(5)
		f.MultiplyAll(ivs)
	}
}

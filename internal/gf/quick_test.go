package gf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickProbs converts arbitrary fuzz input into a valid probability
// vector of bounded length.
func quickProbs(raw []float64) []float64 {
	if len(raw) > 24 {
		raw = raw[:24]
	}
	out := make([]float64, len(raw))
	for i, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0.5
		}
		out[i] = math.Abs(math.Mod(v, 1))
	}
	return out
}

// Property: the Poisson binomial expansion has unit mass and its mean
// equals the sum of the success probabilities (linearity of
// expectation) for arbitrary probability vectors.
func TestQuickPoissonBinomialMassAndMean(t *testing.T) {
	f := func(raw []float64) bool {
		ps := quickProbs(raw)
		coef := PoissonBinomial(ps)
		mass, mean, want := 0.0, 0.0, 0.0
		for k, c := range coef {
			mass += c
			mean += float64(k) * c
		}
		for _, p := range ps {
			want += p
		}
		return math.Abs(mass-1) < 1e-9 && math.Abs(mean-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: UGF bounds are always ordered (LB <= UB), have total mass
// one, and the definite masses sum to at most one.
func TestQuickUGFStructure(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Rand:     rand.New(rand.NewSource(77)),
	}
	f := func(raw []float64, seed int64) bool {
		ps := quickProbs(raw)
		rng := rand.New(rand.NewSource(seed))
		u := NewUGF()
		for _, lb := range ps {
			ub := lb + rng.Float64()*(1-lb)
			u.Multiply(Interval{LB: lb, UB: ub})
		}
		if math.Abs(u.TotalMass()-1) > 1e-9 {
			return false
		}
		definite := 0.0
		for k := 0; k <= len(ps); k++ {
			iv := u.Bound(k)
			if iv.LB > iv.UB+1e-12 || iv.LB < -1e-12 || iv.UB > 1+1e-12 {
				return false
			}
			definite += iv.LB
		}
		return definite <= 1+1e-9
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: CDF bounds are monotone in k for both UGF and CDFBounds.
func TestQuickCDFMonotone(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Rand:     rand.New(rand.NewSource(78)),
	}
	f := func(raw []float64, seed int64) bool {
		ps := quickProbs(raw)
		rng := rand.New(rand.NewSource(seed))
		ivs := make([]Interval, len(ps))
		u := NewUGF()
		for i, lb := range ps {
			ub := lb + rng.Float64()*(1-lb)
			ivs[i] = Interval{LB: lb, UB: ub}
			u.Multiply(ivs[i])
		}
		cb := NewCDFBounds(ivs)
		prevU, prevC := Interval{}, Interval{}
		for k := 0; k <= len(ps)+1; k++ {
			cu, cc := u.CDFBound(k), cb.CDFBound(k)
			if cu.LB < prevU.LB-1e-12 || cu.UB < prevU.UB-1e-12 {
				return false
			}
			if cc.LB < prevC.LB-1e-12 || cc.UB < prevC.UB-1e-12 {
				return false
			}
			prevU, prevC = cu, cc
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

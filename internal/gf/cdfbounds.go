package gf

// This file implements the alternative the extended version of the
// paper [3] discusses: bounding the domination count with *two regular*
// generating functions instead of one uncertain generating function.
// P(Σ X_i < k) is non-increasing in every success probability p_i, so
// expanding one Poisson binomial at the interval lower ends and one at
// the upper ends brackets every tail probability. Point probabilities
// P(Σ = k) then follow by differencing the tails. The paper proves these
// bounds are looser than the UGF bounds; the ablation benchmark
// BenchmarkAblation_UGFvsCDFBounds measures by how much.

// CDFBounds holds the two regular generating-function expansions.
type CDFBounds struct {
	lo []float64 // CDF of the Poisson binomial at all interval LBs
	hi []float64 // CDF of the Poisson binomial at all interval UBs
}

// NewCDFBounds expands the two regular generating functions for the
// given probability intervals.
func NewCDFBounds(ivs []Interval) *CDFBounds {
	lbs := make([]float64, len(ivs))
	ubs := make([]float64, len(ivs))
	for i, iv := range ivs {
		validateInterval(iv.LB, iv.UB)
		lbs[i] = iv.LB
		ubs[i] = iv.UB
	}
	return &CDFBounds{
		lo: CDF(PoissonBinomial(lbs)),
		hi: CDF(PoissonBinomial(ubs)),
	}
}

// CDFBound returns bounds on P(Σ < k). P(Σ < k) is largest when all
// probabilities sit at their lower ends and smallest at their upper
// ends.
func (c *CDFBounds) CDFBound(k int) Interval {
	return Interval{LB: c.cdfAt(c.hi, k), UB: c.cdfAt(c.lo, k)}
}

// Bound returns bounds on the point probability P(Σ = k), derived by
// differencing the tail bounds:
//
//	P(Σ = k) = P(Σ < k+1) − P(Σ < k)
//	         ∈ [ max(0, LB_cdf(k+1) − UB_cdf(k)), UB_cdf(k+1) − LB_cdf(k) ].
func (c *CDFBounds) Bound(k int) Interval {
	lo := c.cdfAt(c.hi, k+1) - c.cdfAt(c.lo, k)
	if lo < 0 {
		lo = 0
	}
	hi := c.cdfAt(c.lo, k+1) - c.cdfAt(c.hi, k)
	if hi > 1 {
		hi = 1
	}
	if hi < lo {
		hi = lo
	}
	return Interval{LB: lo, UB: hi}
}

func (c *CDFBounds) cdfAt(cdf []float64, k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= len(cdf) {
		return cdf[len(cdf)-1]
	}
	return cdf[k]
}

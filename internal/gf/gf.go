// Package gf implements the generating-function machinery of Section IV
// of the paper: the classical generating function over independent
// Bernoulli variables (the Poisson binomial distribution, following Li,
// Saha and Deshpande [19]), the paper's novel Uncertain Generating
// Functions (UGFs) that operate on probability *intervals* instead of
// exact probabilities, and the k-truncated variants that reduce the
// complexity from O(N³) to O(k²·N) for kNN-style predicates (Section
// VI).
package gf

import "fmt"

// PoissonBinomial expands the generating function
//
//	F(x) = Π_i (1 − p_i + p_i·x)
//
// and returns its coefficients: out[k] = P(Σ X_i = k) for independent
// Bernoulli variables X_i with P(X_i = 1) = p_i. The expansion costs
// O(N²) time and O(N) space.
func PoissonBinomial(ps []float64) []float64 {
	coef := make([]float64, 1, len(ps)+1)
	coef[0] = 1
	for _, p := range ps {
		validateProb(p)
		coef = append(coef, 0)
		// Multiply by (1-p) + p·x in place, highest degree first.
		for k := len(coef) - 1; k > 0; k-- {
			coef[k] = coef[k]*(1-p) + coef[k-1]*p
		}
		coef[0] *= 1 - p
	}
	return coef
}

// PoissonBinomialTruncated computes only the first kMax coefficients
// P(Σ X_i = k) for k < kMax, dropping higher-degree terms as Section
// IV-C describes ("this cost can be reduced to O(k·N), by simply
// dropping the summands c_j x^j where j ≥ k"). The returned slice has
// min(kMax, N+1) entries; they equal the untruncated prefix exactly.
func PoissonBinomialTruncated(ps []float64, kMax int) []float64 {
	if kMax <= 0 {
		return nil
	}
	coef := make([]float64, 1, kMax)
	coef[0] = 1
	for _, p := range ps {
		validateProb(p)
		if len(coef) < kMax {
			coef = append(coef, 0)
		}
		for k := len(coef) - 1; k > 0; k-- {
			coef[k] = coef[k]*(1-p) + coef[k-1]*p
		}
		coef[0] *= 1 - p
	}
	return coef
}

// CDF accumulates coefficients into P(Σ X_i < k) for each k, i.e.
// out[k] = Σ_{j<k} coef[j]. out has len(coef)+1 entries and out[len]
// is the total mass.
func CDF(coef []float64) []float64 {
	out := make([]float64, len(coef)+1)
	sum := 0.0
	for k, c := range coef {
		out[k] = sum
		sum += c
	}
	out[len(coef)] = sum
	return out
}

func validateProb(p float64) {
	if p < -1e-9 || p > 1+1e-9 {
		panic(fmt.Sprintf("gf: probability %g out of [0,1]", p))
	}
}

// validateInterval checks an [lb, ub] probability interval.
func validateInterval(lb, ub float64) {
	validateProb(lb)
	validateProb(ub)
	if lb > ub+1e-12 {
		panic(fmt.Sprintf("gf: inverted probability interval [%g, %g]", lb, ub))
	}
}

package gf

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// bruteForcePoissonBinomial enumerates all 2^N outcomes; usable for
// small N as the ground truth.
func bruteForcePoissonBinomial(ps []float64) []float64 {
	n := len(ps)
	out := make([]float64, n+1)
	for mask := 0; mask < 1<<n; mask++ {
		p := 1.0
		ones := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				p *= ps[i]
				ones++
			} else {
				p *= 1 - ps[i]
			}
		}
		out[ones] += p
	}
	return out
}

// TestPoissonBinomialPaperExample2 reproduces Example 2 of the paper:
// P(X1)=0.2, P(X2)=0.1, P(X3)=0.3. The paper prints P(Σ=1)=0.418 and
// P(Σ<2)=0.922, which is an arithmetic slip: the x-coefficient of
// F³ = (0.72 + 0.26x)(0.7 + 0.3x) is 0.26·0.7 + 0.72·0.3 = 0.398
// (brute-force enumeration over the 2³ worlds agrees, see
// TestPoissonBinomialMatchesBruteForce). We assert the correct values.
func TestPoissonBinomialPaperExample2(t *testing.T) {
	coef := PoissonBinomial([]float64{0.2, 0.1, 0.3})
	if !almostEqual(coef[0], 0.504, 1e-12) {
		t.Errorf("P(Σ=0) = %g, want 0.504", coef[0])
	}
	if !almostEqual(coef[1], 0.398, 1e-12) {
		t.Errorf("P(Σ=1) = %g, want 0.398", coef[1])
	}
	cdf := CDF(coef)
	if !almostEqual(cdf[2], 0.902, 1e-12) {
		t.Errorf("P(Σ<2) = %g, want 0.902", cdf[2])
	}
	want := bruteForcePoissonBinomial([]float64{0.2, 0.1, 0.3})
	for k := range want {
		if !almostEqual(coef[k], want[k], 1e-12) {
			t.Errorf("P(Σ=%d) = %g, brute force says %g", k, coef[k], want[k])
		}
	}
}

func TestPoissonBinomialMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(11)
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = rng.Float64()
		}
		got := PoissonBinomial(ps)
		want := bruteForcePoissonBinomial(ps)
		for k := range want {
			if !almostEqual(got[k], want[k], 1e-9) {
				t.Fatalf("n=%d k=%d: got %g want %g", n, k, got[k], want[k])
			}
		}
	}
}

func TestPoissonBinomialMassSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = rng.Float64()
		}
		sum := 0.0
		for _, c := range PoissonBinomial(ps) {
			sum += c
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Fatalf("mass = %g", sum)
		}
	}
}

func TestPoissonBinomialEdgeCases(t *testing.T) {
	if got := PoissonBinomial(nil); len(got) != 1 || got[0] != 1 {
		t.Errorf("empty product = %v", got)
	}
	got := PoissonBinomial([]float64{1, 1, 0})
	if !almostEqual(got[2], 1, 1e-12) {
		t.Errorf("deterministic sum: %v", got)
	}
}

func TestPoissonBinomialTruncatedMatchesPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = rng.Float64()
		}
		full := PoissonBinomial(ps)
		for _, k := range []int{1, 2, 5, n, n + 3} {
			tr := PoissonBinomialTruncated(ps, k)
			for j := range tr {
				if !almostEqual(tr[j], full[j], 1e-9) {
					t.Fatalf("truncated[%d] = %g, full = %g", j, tr[j], full[j])
				}
			}
			if want := minInt(k, n+1); len(tr) != want {
				t.Fatalf("truncated len = %d, want %d", len(tr), want)
			}
		}
	}
	if PoissonBinomialTruncated([]float64{0.5}, 0) != nil {
		t.Error("kMax=0 should return nil")
	}
}

func TestValidateProbPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p > 1")
		}
	}()
	PoissonBinomial([]float64{1.5})
}

func TestCDF(t *testing.T) {
	cdf := CDF([]float64{0.5, 0.3, 0.2})
	want := []float64{0, 0.5, 0.8, 1.0}
	for i := range want {
		if !almostEqual(cdf[i], want[i], 1e-12) {
			t.Errorf("cdf[%d] = %g, want %g", i, cdf[i], want[i])
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

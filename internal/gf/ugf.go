package gf

// This file implements Uncertain Generating Functions (Section IV-C of
// the paper).
//
// A UGF tracks the distribution of a sum of independent Bernoulli
// variables whose success probabilities are only known as intervals
// [PLB_i, PUB_i]. Each factor contributes three terms:
//
//	PLB_i · x                    — X_i = 1 for sure (at least)
//	(1 − PUB_i) · 1              — X_i = 0 for sure (at least)
//	(PUB_i − PLB_i) · y          — unknown
//
// so that F^N = Π_i [PLB_i·x + (PUB_i−PLB_i)·y + (1−PUB_i)]
//             = Σ_{i,j} c_{i,j} x^i y^j.
//
// Coefficient c_{i,j} is the probability that the sum is definitely at
// least i and possibly up to i+j. From the expansion,
//
//	lower bound of P(Σ = k):  c_{k,0}
//	upper bound of P(Σ = k):  Σ_{i ≤ k, i+j ≥ k} c_{i,j}
//
// (Lemma 4). The full expansion has O(N²) coefficients and costs O(N³);
// when only P(Σ = x) for x < k is needed (kNN/RkNN predicates), the
// truncated form merges all coefficients that are equivalent below k
// and costs O(k²·N) (Section VI).

// Interval is a conservative/progressive probability bound pair.
type Interval struct {
	// LB <= UB; both in [0, 1].
	LB, UB float64
}

// Width returns UB − LB, the residual uncertainty of the interval. The
// paper's Figure 6(b)/7 "uncertainty" metric is the sum of widths over
// the domination-count PDF.
func (iv Interval) Width() float64 { return iv.UB - iv.LB }

// Contains reports whether p lies within the closed interval, up to eps.
func (iv Interval) Contains(p, eps float64) bool {
	return p >= iv.LB-eps && p <= iv.UB+eps
}

// Exact returns the degenerate interval [p, p].
func Exact(p float64) Interval { return Interval{LB: p, UB: p} }

// UGF is an uncertain generating function under expansion. The zero
// value is not usable; construct with NewUGF or NewTruncatedUGF.
type UGF struct {
	// kMax > 0 caps the tracked state space: exponents of x are capped
	// at kMax and exponents of y at kMax−i, merging overflow mass. The
	// merged representation yields exactly the same bounds for every
	// P(Σ = x) with x < kMax as the full expansion (Section VI).
	// kMax == 0 means no truncation.
	kMax int
	// n is the number of factors multiplied in so far.
	n int
	// c holds the triangular coefficient matrix: c[i][j] is the
	// coefficient of x^i y^j. Row i exists for i <= degX(); row i has
	// entries for j <= degY(i).
	c [][]float64
	// Multiply ping-pongs between two flat backing buffers (rows of c
	// are sub-slices of buf[cur]), so a warmed-up UGF expands factors
	// without allocating. Reset rewinds to the neutral element while
	// keeping the buffers, which is what lets a query session reuse one
	// UGF across every partition pair it expands.
	rows [2][][]float64
	buf  [2][]float64
	cur  int
}

// NewUGF returns the neutral UGF F⁰ = 1 with no truncation.
func NewUGF() *UGF {
	return &UGF{c: [][]float64{{1}}}
}

// NewTruncatedUGF returns the neutral UGF that tracks only the state
// needed to bound P(Σ = x) for x < kMax.
func NewTruncatedUGF(kMax int) *UGF {
	if kMax <= 0 {
		panic("gf: NewTruncatedUGF requires kMax > 0")
	}
	return &UGF{kMax: kMax, c: [][]float64{{1}}}
}

// Reset rewinds the UGF to the neutral element F⁰ = 1 with the given
// truncation bound (kMax <= 0 disables truncation), retaining the
// coefficient storage of previous expansions. A reset-and-reused UGF
// produces bit-identical bounds to a freshly constructed one; after a
// warm-up it multiplies factors without allocating.
func (f *UGF) Reset(kMax int) {
	if kMax < 0 {
		kMax = 0
	}
	f.kMax = kMax
	f.n = 0
	w := 1 - f.cur
	buf := f.buf[w]
	if cap(buf) < 1 {
		buf = make([]float64, 1)
	}
	buf = buf[:1]
	buf[0] = 1
	rows := f.rows[w][:0]
	rows = append(rows, buf[0:1:1])
	f.rows[w], f.buf[w] = rows, buf
	f.c = rows
	f.cur = w
}

// N returns the number of factors multiplied into the UGF so far.
func (f *UGF) N() int { return f.n }

// degX returns the largest tracked exponent of x.
func (f *UGF) degX() int {
	if f.kMax > 0 && f.n > f.kMax {
		return f.kMax
	}
	return f.n
}

// degY returns the largest tracked exponent of y in row i.
func (f *UGF) degY(i int) int {
	if f.kMax > 0 {
		if i >= f.kMax {
			return 0
		}
		if f.n-i > f.kMax-i {
			return f.kMax - i
		}
	}
	return f.n - i
}

// Multiply folds one more Bernoulli factor with probability interval iv
// into the UGF: F ← F · [LB·x + (UB−LB)·y + (1−UB)].
func (f *UGF) Multiply(iv Interval) {
	validateInterval(iv.LB, iv.UB)
	pX := iv.LB         // definite domination mass
	pY := iv.UB - iv.LB // unknown mass
	p0 := 1 - iv.UB     // definite non-domination mass

	f.n++
	nx := f.degX()
	total := 0
	for i := 0; i <= nx; i++ {
		total += f.degY(i) + 1
	}
	// Carve the next triangle out of the idle backing buffer; the old
	// coefficients live in the other one, so reading while scattering is
	// safe. The first few calls grow the buffers; afterwards Multiply is
	// allocation-free.
	w := 1 - f.cur
	buf := f.buf[w]
	if cap(buf) < total {
		buf = make([]float64, total)
	} else {
		buf = buf[:total]
		clear(buf)
	}
	rows := f.rows[w][:0]
	off := 0
	for i := 0; i <= nx; i++ {
		l := f.degY(i) + 1
		rows = append(rows, buf[off:off+l:off+l])
		off += l
	}
	f.rows[w], f.buf[w] = rows, buf
	next := rows
	// Scatter every old coefficient into the three destination cells,
	// clamping indexes into the truncated state space.
	for i, row := range f.c {
		for j, v := range row {
			if v == 0 {
				continue
			}
			if p0 > 0 {
				f.add(next, i, j, v*p0)
			}
			if pX > 0 {
				f.add(next, i+1, j, v*pX)
			}
			if pY > 0 {
				f.add(next, i, j+1, v*pY)
			}
		}
	}
	f.c = next
	f.cur = w
}

// add accumulates mass into cell (i, j) of dst, applying the Section VI
// merge rules when the UGF is truncated: i is capped at kMax with j
// forced to 0, and j is capped at kMax−i.
func (f *UGF) add(dst [][]float64, i, j int, v float64) {
	if f.kMax > 0 {
		if i >= f.kMax {
			i, j = f.kMax, 0
		} else if j > f.kMax-i {
			j = f.kMax - i
		}
	}
	dst[i][j] += v
}

// MultiplyAll folds a sequence of probability intervals into the UGF.
func (f *UGF) MultiplyAll(ivs []Interval) {
	for _, iv := range ivs {
		f.Multiply(iv)
	}
}

// Coefficient returns c_{i,j}; zero for untracked cells.
func (f *UGF) Coefficient(i, j int) float64 {
	if i < 0 || j < 0 || i >= len(f.c) || j >= len(f.c[i]) {
		return 0
	}
	return f.c[i][j]
}

// LowerBound returns the conservative bound c_{k,0} of P(Σ = k). For a
// truncated UGF the value is only meaningful for k < kMax.
func (f *UGF) LowerBound(k int) float64 {
	if f.kMax > 0 && k >= f.kMax {
		return 0
	}
	return f.Coefficient(k, 0)
}

// UpperBound returns the progressive bound Σ_{i≤k, i+j≥k} c_{i,j} of
// P(Σ = k). For a truncated UGF the value is only meaningful for
// k < kMax.
func (f *UGF) UpperBound(k int) float64 {
	if f.kMax > 0 && k >= f.kMax {
		return 1
	}
	sum := 0.0
	for i := 0; i <= k && i < len(f.c); i++ {
		for j := max(0, k-i); j < len(f.c[i]); j++ {
			sum += f.c[i][j]
		}
	}
	return sum
}

// Bound returns the [LB, UB] interval for P(Σ = k).
func (f *UGF) Bound(k int) Interval {
	return Interval{LB: f.LowerBound(k), UB: f.UpperBound(k)}
}

// Bounds returns the bound intervals for all k in [0, n]. For a
// truncated UGF only entries below kMax are meaningful and the slice is
// cut there.
func (f *UGF) Bounds() []Interval {
	hi := f.n
	if f.kMax > 0 && f.kMax < hi+1 {
		hi = f.kMax - 1
	}
	out := make([]Interval, hi+1)
	for k := range out {
		out[k] = f.Bound(k)
	}
	return out
}

// CDFLowerBound returns a conservative bound of P(Σ < k): the summed
// definite mass Σ_{x<k} c_{x,0}.
func (f *UGF) CDFLowerBound(k int) float64 {
	sum := 0.0
	for x := 0; x < k; x++ {
		sum += f.LowerBound(x)
	}
	return sum
}

// CDFUpperBound returns a progressive bound of P(Σ < k): the total mass
// of all coefficients whose definite count is below k, Σ_{i<k, j} c_{i,j}.
func (f *UGF) CDFUpperBound(k int) float64 {
	sum := 0.0
	for i := 0; i < k && i < len(f.c); i++ {
		for _, v := range f.c[i] {
			sum += v
		}
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// CDFBound returns the [LB, UB] interval for P(Σ < k).
func (f *UGF) CDFBound(k int) Interval {
	return Interval{LB: f.CDFLowerBound(k), UB: f.CDFUpperBound(k)}
}

// TotalMass returns the sum of all tracked coefficients; it is 1 up to
// floating-point error after any number of multiplications (useful as a
// sanity invariant).
func (f *UGF) TotalMass() float64 {
	sum := 0.0
	for _, row := range f.c {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

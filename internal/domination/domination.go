// Package domination computes conservative and progressive bounds on
// the probabilistic domination PDom(A, B, R) — the probability that
// uncertain object A is closer to uncertain reference R than uncertain
// object B is (Section III of the paper).
//
// The bounds avoid any PDF integration: given disjunctive
// decompositions of the objects into partitions with exactly known
// probability mass, Lemma 1 accumulates the mass of partition
// combinations for which the geometric domination criterion decides the
// relation, and Lemma 2 derives the upper bound from the reverse
// relation. When only A is decomposed while B and R stay whole, the
// resulting bounds for different candidates A_i are mutually
// independent (Lemma 3) — the property that lets the uncertain
// generating functions of package gf combine them into a domination
// count.
package domination

import (
	"probprune/internal/geom"
	"probprune/internal/gf"
	"probprune/internal/uncertain"
)

// Bounds computes the probability interval [PDomLB, PDomUB] for
// PDom(A, B, R) with A decomposed into aParts and B and R taken whole
// (as the rectangles b and r). This is the Lemma 3 setting: bounds
// computed this way are mutually independent across different
// candidates A_i, because B and R are not decomposed.
//
//	PDomLB = Σ_{A' : Dom(A', B, R)} P(A')
//	PDomUB = 1 − Σ_{A' : Dom(B, A', R)} P(A')
func Bounds(n geom.Norm, crit geom.Criterion, aParts []uncertain.Partition, b, r geom.Rect) gf.Interval {
	return BoundsWithExistence(n, crit, aParts, 1, b, r)
}

// BoundsWithExistence is Bounds for an existentially uncertain
// candidate: A exists with probability exist, and its position
// distribution (the decomposition) is conditional on existence. A
// non-existing object never dominates, so both bounds scale by exist —
// the Section I-A adaptation of the framework to ∫ f < 1.
func BoundsWithExistence(n geom.Norm, crit geom.Criterion, aParts []uncertain.Partition, exist float64, b, r geom.Rect) gf.Interval {
	lb, notUB := 0.0, 0.0
	for _, ap := range aParts {
		if crit.Decide(n, ap.MBR, b, r) {
			lb += ap.Prob
		} else if crit.Decide(n, b, ap.MBR, r) {
			notUB += ap.Prob
		}
	}
	return clampInterval(exist*lb, exist*(1-notUB))
}

// BoundsDecomposed computes the probability interval for PDom(A, B, R)
// with all three objects decomposed (the general Lemma 1 / Lemma 2
// form):
//
//	PDomLB = Σ_{A',B',R' : Dom(A',B',R')} P(A')·P(B')·P(R')
//	PDomUB = 1 − Σ_{A',B',R' : Dom(B',A',R')} P(A')·P(B')·P(R')
//
// Bounds obtained this way are tighter than Bounds but are NOT mutually
// independent across candidates (Section IV-A): they must not be fed
// into a generating function directly. The iterative algorithm instead
// fixes one (B', R') pair at a time and calls Bounds per pair (Lemma
// 5 / Section IV-E).
func BoundsDecomposed(n geom.Norm, crit geom.Criterion, aParts, bParts, rParts []uncertain.Partition) gf.Interval {
	lb, notUB := 0.0, 0.0
	for _, bp := range bParts {
		for _, rp := range rParts {
			w := bp.Prob * rp.Prob
			for _, ap := range aParts {
				if crit.Decide(n, ap.MBR, bp.MBR, rp.MBR) {
					lb += w * ap.Prob
				} else if crit.Decide(n, bp.MBR, ap.MBR, rp.MBR) {
					notUB += w * ap.Prob
				}
			}
		}
	}
	return clampInterval(lb, 1-notUB)
}

// Complete classifies the complete domination relation between a
// candidate A and the target B w.r.t. reference R on whole uncertainty
// regions (the filter step of Algorithm 1).
type CompleteRelation int

const (
	// Unknown: neither direction is decided; A is an influence object.
	Unknown CompleteRelation = iota
	// DominatesTarget: PDom(A, B, R) = 1 — A counts toward the
	// domination count in every possible world.
	DominatesTarget
	// DominatedByTarget: PDom(A, B, R) = 0 — A can never contribute.
	DominatedByTarget
)

// Classify applies the complete-domination filter to whole regions.
func Classify(n geom.Norm, crit geom.Criterion, a, b, r geom.Rect) CompleteRelation {
	if crit.Decide(n, a, b, r) {
		return DominatesTarget
	}
	if crit.Decide(n, b, a, r) {
		return DominatedByTarget
	}
	return Unknown
}

// clampInterval guards against floating-point drift taking the interval
// outside [0, 1] or inverting it.
func clampInterval(lb, ub float64) gf.Interval {
	if lb < 0 {
		lb = 0
	}
	if ub > 1 {
		ub = 1
	}
	if ub < lb {
		ub = lb
	}
	return gf.Interval{LB: lb, UB: ub}
}

package domination

import (
	"math/rand"
	"testing"

	"probprune/internal/geom"
	"probprune/internal/mc"
	"probprune/internal/uncertain"
)

func randObj(rng *rand.Rand, id, n int, cx, cy, ext float64) *uncertain.Object {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{cx + (rng.Float64()-0.5)*ext, cy + (rng.Float64()-0.5)*ext}
	}
	o, err := uncertain.NewObject(id, pts)
	if err != nil {
		panic(err)
	}
	return o
}

// Property: for random uncertain objects, the Lemma 3 bounds at every
// decomposition level contain the exact PDom, and they tighten
// monotonically with the level.
func TestBoundsContainExactPDomAndTighten(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 30; trial++ {
		a := randObj(rng, 0, 64, rng.Float64()*4, rng.Float64()*4, 2)
		b := randObj(rng, 1, 64, rng.Float64()*4, rng.Float64()*4, 2)
		r := randObj(rng, 2, 64, rng.Float64()*4, rng.Float64()*4, 2)
		exact := mc.PDom(geom.L2, a, b, r)
		tree := uncertain.NewDecompTree(a, 0)
		prevWidth := 2.0
		for level := 0; level <= 7; level++ {
			iv := Bounds(geom.L2, geom.Optimal, tree.PartitionsAtLevel(level), b.MBR, r.MBR)
			if !iv.Contains(exact, 1e-9) {
				t.Fatalf("trial %d level %d: exact %g outside [%g, %g]",
					trial, level, exact, iv.LB, iv.UB)
			}
			if iv.Width() > prevWidth+1e-9 {
				t.Fatalf("trial %d level %d: bounds widened %g -> %g",
					trial, level-1, prevWidth, iv.Width())
			}
			prevWidth = iv.Width()
		}
	}
}

// Property: the general triple-decomposition bounds (Lemma 1/2) also
// contain the exact value and are at least as tight as the Lemma 3
// bounds at the same level.
func TestBoundsDecomposedTighterAndSound(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	strictly := 0
	for trial := 0; trial < 20; trial++ {
		a := randObj(rng, 0, 32, rng.Float64()*3, rng.Float64()*3, 2)
		b := randObj(rng, 1, 32, rng.Float64()*3, rng.Float64()*3, 2)
		r := randObj(rng, 2, 32, rng.Float64()*3, rng.Float64()*3, 2)
		exact := mc.PDom(geom.L2, a, b, r)
		ta := uncertain.NewDecompTree(a, 0)
		tb := uncertain.NewDecompTree(b, 0)
		trr := uncertain.NewDecompTree(r, 0)
		for level := 0; level <= 4; level++ {
			ap := ta.PartitionsAtLevel(level)
			single := Bounds(geom.L2, geom.Optimal, ap, b.MBR, r.MBR)
			triple := BoundsDecomposed(geom.L2, geom.Optimal, ap,
				tb.PartitionsAtLevel(level), trr.PartitionsAtLevel(level))
			if !triple.Contains(exact, 1e-9) {
				t.Fatalf("trial %d level %d: exact %g outside triple [%g, %g]",
					trial, level, exact, triple.LB, triple.UB)
			}
			if triple.LB < single.LB-1e-9 || triple.UB > single.UB+1e-9 {
				t.Fatalf("trial %d level %d: triple [%g, %g] looser than single [%g, %g]",
					trial, level, triple.LB, triple.UB, single.LB, single.UB)
			}
			if triple.Width() < single.Width()-1e-9 {
				strictly++
			}
		}
	}
	if strictly == 0 {
		t.Error("triple decomposition was never strictly tighter")
	}
}

func TestBoundsConvergeToExactAtFullDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	// Small sample counts so full depth reaches single-sample leaves;
	// with B and R also fully decomposed the bounds must collapse to
	// the exact probability (up to ties, which we avoid by continuous
	// random coordinates).
	a := randObj(rng, 0, 8, 0, 0, 2)
	b := randObj(rng, 1, 8, 1.5, 0, 2)
	r := randObj(rng, 2, 8, 0.5, 1, 2)
	exact := mc.PDom(geom.L2, a, b, r)
	ta := uncertain.NewDecompTree(a, 0)
	tb := uncertain.NewDecompTree(b, 0)
	trr := uncertain.NewDecompTree(r, 0)
	iv := BoundsDecomposed(geom.L2, geom.Optimal, ta.PartitionsAtLevel(6),
		tb.PartitionsAtLevel(6), trr.PartitionsAtLevel(6))
	if iv.Width() > 1e-9 {
		t.Fatalf("bounds did not collapse at full depth: [%g, %g]", iv.LB, iv.UB)
	}
	if !iv.Contains(exact, 1e-9) {
		t.Fatalf("collapsed bound %g misses exact %g", iv.LB, exact)
	}
}

func TestClassify(t *testing.T) {
	mk := func(x0, x1 float64) geom.Rect {
		r, err := geom.NewRect(geom.Point{x0, 0}, geom.Point{x1, 1})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a := mk(0, 1)
	b := mk(10, 11)
	r := mk(1.5, 2)
	if got := Classify(geom.L2, geom.Optimal, a, b, r); got != DominatesTarget {
		t.Errorf("Classify near = %v, want DominatesTarget", got)
	}
	if got := Classify(geom.L2, geom.Optimal, b, a, r); got != DominatedByTarget {
		t.Errorf("Classify far = %v, want DominatedByTarget", got)
	}
	c := mk(1.4, 2.4) // overlaps the reference's distance range
	if got := Classify(geom.L2, geom.Optimal, c, a, r); got != Unknown {
		t.Errorf("Classify ambiguous = %v, want Unknown", got)
	}
}

func TestBoundsWithMinMaxCriterionAreLooserButSound(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 20; trial++ {
		a := randObj(rng, 0, 32, rng.Float64()*3, rng.Float64()*3, 2)
		b := randObj(rng, 1, 32, rng.Float64()*3, rng.Float64()*3, 2)
		r := randObj(rng, 2, 32, rng.Float64()*3, rng.Float64()*3, 2)
		exact := mc.PDom(geom.L2, a, b, r)
		tree := uncertain.NewDecompTree(a, 0)
		for level := 0; level <= 4; level++ {
			parts := tree.PartitionsAtLevel(level)
			opt := Bounds(geom.L2, geom.Optimal, parts, b.MBR, r.MBR)
			mm := Bounds(geom.L2, geom.MinMax, parts, b.MBR, r.MBR)
			if !mm.Contains(exact, 1e-9) {
				t.Fatalf("min/max bounds unsound at level %d", level)
			}
			if opt.LB < mm.LB-1e-9 || opt.UB > mm.UB+1e-9 {
				t.Fatalf("optimal bounds looser than min/max at level %d", level)
			}
		}
	}
}

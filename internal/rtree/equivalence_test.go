package rtree

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"probprune/internal/geom"
)

// This file pins the flat-node tree to the original pointer-based
// implementation (preserved as refTree in reference_test.go): the same
// Insert/Delete/Bulk/Clone trace must yield bit-identical observable
// behavior — tree bounds, DFS enumeration order, Walk node sequence
// (MBRs, counts AND the effect of Skip/Take verdicts), intersection
// order and the full best-first Nearby stream including exact
// distances. The query layers' determinism guarantees (canonical
// influence sets, oracle-equal sharded merging, bit-identical crash
// recovery) all reduce to this equivalence.

// eqObserve drains every observable traversal of a tree-like into a
// canonical transcript. Both implementations expose the same method
// set, so one generic function observes both.
type eqTree interface {
	Len() int
	Bounds() (geom.Rect, bool)
	CheckInvariants() error
	All(fn func(rect geom.Rect, value int))
	Walk(node func(mbr geom.Rect, count int) WalkAction, leaf func(rect geom.Rect, value int))
	SearchIntersect(query geom.Rect, fn func(rect geom.Rect, value int) bool)
	Nearby(dist DistFunc[int], iter func(rect geom.Rect, value int, d float64) bool)
}

func fmtRect(r geom.Rect) string {
	var sb strings.Builder
	for _, v := range r.Min {
		fmt.Fprintf(&sb, "%x,", math.Float64bits(v))
	}
	sb.WriteByte('|')
	for _, v := range r.Max {
		fmt.Fprintf(&sb, "%x,", math.Float64bits(v))
	}
	return sb.String()
}

// walkVerdict is a pure function of the node callback's inputs, so both
// trees receive identical verdicts at identical traversal positions —
// exercising SkipSubtree and TakeSubtree pruning, not just full
// descent.
func walkVerdict(mbr geom.Rect, count int) WalkAction {
	h := uint64(count)
	for _, v := range mbr.Min {
		h = h*1099511628211 + math.Float64bits(v)
	}
	switch h % 7 {
	case 0:
		return SkipSubtree
	case 1:
		return TakeSubtree
	default:
		return Descend
	}
}

// observe produces the canonical transcript of every read path.
func observe(t *testing.T, tr eqTree, windows []geom.Rect, probes []geom.Rect) string {
	t.Helper()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "len=%d\n", tr.Len())
	if b, ok := tr.Bounds(); ok {
		fmt.Fprintf(&sb, "bounds=%s\n", fmtRect(b))
	} else {
		sb.WriteString("bounds=none\n")
	}
	sb.WriteString("all:")
	tr.All(func(r geom.Rect, v int) { fmt.Fprintf(&sb, " %s=%d", fmtRect(r), v) })
	sb.WriteString("\nwalk:")
	tr.Walk(
		func(mbr geom.Rect, count int) WalkAction {
			a := walkVerdict(mbr, count)
			fmt.Fprintf(&sb, " n(%s,%d,%d)", fmtRect(mbr), count, a)
			return a
		},
		func(r geom.Rect, v int) { fmt.Fprintf(&sb, " l(%s,%d)", fmtRect(r), v) },
	)
	for wi, w := range windows {
		fmt.Fprintf(&sb, "\nsearch%d:", wi)
		tr.SearchIntersect(w, func(r geom.Rect, v int) bool {
			fmt.Fprintf(&sb, " %s=%d", fmtRect(r), v)
			return true
		})
	}
	for pi, p := range probes {
		fmt.Fprintf(&sb, "\nnear%d:", pi)
		// MaxDist values over MinDist node bounds — the asymmetric pair
		// the preselection filters use; ties are frequent with the
		// lattice coordinates the traces generate.
		tr.Nearby(
			func(mbr geom.Rect, _ int, leaf bool) float64 {
				if leaf {
					return mbr.MaxDistRect(geom.L2, p)
				}
				return mbr.MinDistRect(geom.L2, p)
			},
			func(r geom.Rect, v int, d float64) bool {
				fmt.Fprintf(&sb, " %d@%x", v, math.Float64bits(d))
				return true
			},
		)
	}
	return sb.String()
}

// latticeRect draws a rectangle on a coarse lattice so duplicate
// coordinates, zero-area rectangles and exact distance ties are common.
func latticeRect(rng *rand.Rand, dim int) geom.Rect {
	min := make(geom.Point, dim)
	max := make(geom.Point, dim)
	for i := 0; i < dim; i++ {
		a := float64(rng.Intn(40)) / 4
		b := a + float64(rng.Intn(8))/4
		min[i], max[i] = a, b
	}
	return geom.Rect{Min: min, Max: max}
}

type eqEntry struct {
	rect geom.Rect
	val  int
}

// runEquivalenceTrace drives both implementations through one op trace
// and compares transcripts after every mutation.
func runEquivalenceTrace(t *testing.T, seed int64, dim, steps int) {
	rng := rand.New(rand.NewSource(seed))
	flat := New[int]()
	ref := newRefTree[int]()
	var model []eqEntry
	next := 0

	windows := []geom.Rect{latticeRect(rng, dim), latticeRect(rng, dim)}
	probes := []geom.Rect{latticeRect(rng, dim), latticeRect(rng, dim)}

	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 6: // insert (biased: trees must grow)
			r := latticeRect(rng, dim)
			flat.Insert(r, next)
			ref.Insert(r, next)
			model = append(model, eqEntry{rect: r, val: next})
			next++
		case op < 8 && len(model) > 0: // delete random existing entry
			i := rng.Intn(len(model))
			e := model[i]
			if !flat.Delete(e.rect, e.val) || !ref.Delete(e.rect, e.val) {
				t.Fatalf("seed %d step %d: delete of existing entry failed", seed, step)
			}
			model = append(model[:i], model[i+1:]...)
		case op == 8: // rebuild both via STR bulk load
			items := make([]BulkItem[int], len(model))
			for i, e := range model {
				items[i] = BulkItem[int]{Rect: e.rect, Value: e.val}
			}
			flat = Bulk(items)
			ref = refBulk(items)
		default: // clone and continue on the copies
			flat = flat.Clone()
			ref = ref.Clone()
		}
		got := observe(t, flat, windows, probes)
		want := observe(t, ref, windows, probes)
		if got != want {
			t.Fatalf("seed %d step %d: transcripts diverge\nflat: %.400s\nref:  %.400s", seed, step, got, want)
		}
	}
}

// TestFlatTreeEquivalence: seeded randomized traces across dimensions
// and sizes. Each trace interleaves inserts, deletes (exercising
// condense/reinsert), bulk rebuilds and clones.
func TestFlatTreeEquivalence(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			dim := 2 + int(seed%2)
			steps := 120
			if testing.Short() {
				steps = 40
			}
			runEquivalenceTrace(t, seed, dim, steps)
		})
	}
}

// TestFlatTreeEquivalenceLarge: one long 2-D trace deep enough for a
// multi-level tree with root splits, collapses and large reinsertion
// cascades.
func TestFlatTreeEquivalenceLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runEquivalenceTrace(t, 424242, 2, 700)
}

// FuzzFlatTreeEquivalence lets the native fuzzer search for divergent
// traces: the input bytes seed the trace generator.
func FuzzFlatTreeEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(60))
	f.Add(int64(77), uint8(3), uint8(90))
	f.Fuzz(func(t *testing.T, seed int64, dim, steps uint8) {
		d := 2 + int(dim%3)
		n := int(steps)%120 + 5
		runEquivalenceTrace(t, seed, d, n)
	})
}

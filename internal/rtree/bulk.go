package rtree

import (
	"math"
	"sort"

	"probprune/internal/geom"
)

// This file implements Sort-Tile-Recursive (STR) bulk loading
// (Leutenegger et al., ICDE'97) and structural cloning. Bulk builds a
// packed tree in O(n log n) — one multi-key sort plus a linear packing
// pass per level — where n repeated Inserts cost O(n log n) tree
// descents WITH the quadratic split on every overflow. The packed tree
// is also better clustered: tiles are spatially coherent, so the
// domination filter prunes more subtrees at node granularity.

// BulkItem is one (rectangle, value) pair for Bulk.
type BulkItem[T comparable] struct {
	Rect  geom.Rect
	Value T
}

// Bulk builds a tree over items with the STR packing algorithm. The
// result satisfies the same invariants as an incrementally built tree
// (every non-root node holds between minEntries and maxEntries entries)
// and supports all mutations. Items are not retained; rectangles are
// cloned like Insert does.
func Bulk[T comparable](items []BulkItem[T]) *Tree[T] {
	if len(items) == 0 {
		return New[T]()
	}
	entries := make([]entry[T], len(items))
	for i, it := range items {
		entries[i] = entry[T]{rect: it.Rect.Clone(), value: it.Value}
	}
	level := packLevel(entries, true)
	for len(level) > 1 {
		up := make([]entry[T], len(level))
		for i, n := range level {
			up[i] = entry[T]{rect: nodeRect(n), child: n}
		}
		level = packLevel(up, false)
	}
	return &Tree[T]{root: level[0], size: len(items)}
}

// packLevel tiles entries into spatial order and packs them into nodes
// of the given kind. It returns the nodes of the new level (one node
// when len(entries) <= maxEntries).
func packLevel[T comparable](entries []entry[T], leaf bool) []*node[T] {
	dim := entries[0].rect.Dim()
	tile(entries, 0, dim)
	groups := splitEven(len(entries), maxEntries)
	nodes := make([]*node[T], 0, len(groups))
	off := 0
	for _, g := range groups {
		n := &node[T]{leaf: leaf, entries: entries[off : off+g : off+g]}
		n.count = groupCount(leaf, n.entries)
		nodes = append(nodes, n)
		off += g
	}
	return nodes
}

// tile recursively orders entries into STR tiles: sort by the center
// coordinate of the current dimension, slice into slabs sized for an
// even spread of the remaining pages, and recurse on the next
// dimension within each slab.
func tile[T comparable](entries []entry[T], dim, dims int) {
	sort.SliceStable(entries, func(i, j int) bool {
		return rectCenter(entries[i].rect, dim) < rectCenter(entries[j].rect, dim)
	})
	if dim >= dims-1 || len(entries) <= maxEntries {
		return
	}
	pages := (len(entries) + maxEntries - 1) / maxEntries
	slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(dims-dim))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := (len(entries) + slabs - 1) / slabs
	for off := 0; off < len(entries); off += slabSize {
		end := off + slabSize
		if end > len(entries) {
			end = len(entries)
		}
		tile(entries[off:end], dim+1, dims)
	}
}

func rectCenter(r geom.Rect, dim int) float64 {
	return (r.Min[dim] + r.Max[dim]) / 2
}

// splitEven partitions n items into the fewest groups of size <= max,
// sized as evenly as possible. For n > max the groups hold at least
// n/ceil(n/max) >= max/2 >= minEntries items, so packed nodes never
// underflow; a single group may be arbitrarily small only when it
// becomes the root.
func splitEven(n, max int) []int {
	g := (n + max - 1) / max
	base, rem := n/g, n%g
	out := make([]int, g)
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// Clone returns a structurally independent copy of the tree: nodes and
// entry slices are copied, so mutations on either tree never affect the
// other. Rectangle and value data are shared — the tree never mutates a
// stored rectangle in place (Insert clones its input, recomputed MBRs
// are fresh allocations), so sharing is safe. Cost is O(n).
func (t *Tree[T]) Clone() *Tree[T] {
	return &Tree[T]{root: cloneNode(t.root), size: t.size}
}

func cloneNode[T comparable](n *node[T]) *node[T] {
	c := &node[T]{leaf: n.leaf, count: n.count, entries: make([]entry[T], len(n.entries))}
	copy(c.entries, n.entries)
	if !n.leaf {
		for i := range c.entries {
			c.entries[i].child = cloneNode(c.entries[i].child)
		}
	}
	return c
}

package rtree

import (
	"math"
	"sort"

	"probprune/internal/geom"
)

// This file implements Sort-Tile-Recursive (STR) bulk loading
// (Leutenegger et al., ICDE'97) and structural cloning. Bulk builds a
// packed tree in O(n log n) — one multi-key sort plus a linear packing
// pass per level — where n repeated Inserts cost O(n log n) tree
// descents WITH the quadratic split on every overflow. The packed tree
// is also better clustered: tiles are spatially coherent, so the
// domination filter prunes more subtrees at node granularity.

// BulkItem is one (rectangle, value) pair for Bulk.
type BulkItem[T comparable] struct {
	Rect  geom.Rect
	Value T
}

// Bulk builds a tree over items with the STR packing algorithm. The
// result satisfies the same invariants as an incrementally built tree
// (every non-root node holds between minEntries and maxEntries entries)
// and supports all mutations. Items are not retained; rectangles are
// copied into the tree's packed storage.
func Bulk[T comparable](items []BulkItem[T]) *Tree[T] {
	t := New[T]()
	if len(items) == 0 {
		return t
	}
	t.dim = items[0].Rect.Dim()

	// Leaf level: tile a permutation of the items and pack them into
	// leaves. Sorting int32 indices instead of the items themselves keeps
	// the stable sort's swaps pointer-free (no write barriers on
	// BulkItem's rectangle slices and value), which dominates bulk-load
	// time for pointer-valued trees; items are read through the
	// permutation when packing.
	ord := make([]int32, len(items))
	for i := range ord {
		ord[i] = int32(i)
	}
	keys := make([]float64, len(items))
	tileBy(ord, keys, 0, t.dim, func(i int32, d int) float64 {
		return rectCenter(items[i].Rect, d)
	})
	groups := splitEven(len(items), maxEntries)
	level := make([]int32, 0, len(groups))
	off := 0
	for _, g := range groups {
		ni := t.newNode(true)
		base := int(ni) * slotCap
		for k := 0; k < g; k++ {
			it := &items[ord[off+k]]
			t.setRect(ni, k, it.Rect)
			t.vals[base+k] = it.Value
		}
		t.meta[ni].n = int16(g)
		t.meta[ni].count = int32(g)
		level = append(level, ni)
		off += g
	}

	// Upper levels: tile the nodes by their tight MBRs and pack.
	type upEntry struct {
		rect geom.Rect
		ni   int32
	}
	for len(level) > 1 {
		ups := make([]upEntry, len(level))
		for i, ni := range level {
			ups[i] = upEntry{rect: t.nodeRectAlloc(ni), ni: ni}
		}
		ord = ord[:len(ups)]
		for i := range ord {
			ord[i] = int32(i)
		}
		tileBy(ord, keys[:len(ups)], 0, t.dim, func(i int32, d int) float64 {
			return rectCenter(ups[i].rect, d)
		})
		groups := splitEven(len(ups), maxEntries)
		level = level[:0]
		off := 0
		for _, g := range groups {
			ni := t.newNode(false)
			base := int(ni) * slotCap
			count := int32(0)
			for k := 0; k < g; k++ {
				u := ups[ord[off+k]]
				t.setRect(ni, k, u.rect)
				t.child[base+k] = u.ni
				count += t.meta[u.ni].count
			}
			t.meta[ni].n = int16(g)
			t.meta[ni].count = count
			level = append(level, ni)
			off += g
		}
	}
	t.root = level[0]
	t.size = len(items)
	t.refreshRootMBR()
	return t
}

// keyedSorter stable-sorts an index permutation by a precomputed
// parallel key array. Sorting through a concrete sort.Interface keeps
// comparisons and swaps compiled (no reflect-based swapper, no
// per-comparison closure dispatch), and swapping (int32, float64) pairs
// is write-barrier free; a stable sort's output is uniquely determined
// by the keys and the initial order, so the resulting permutation is
// identical to stably sorting the items themselves on the same keys.
type keyedSorter struct {
	keys []float64
	ord  []int32
}

func (k keyedSorter) Len() int           { return len(k.ord) }
func (k keyedSorter) Less(i, j int) bool { return k.keys[i] < k.keys[j] }
func (k keyedSorter) Swap(i, j int) {
	k.keys[i], k.keys[j] = k.keys[j], k.keys[i]
	k.ord[i], k.ord[j] = k.ord[j], k.ord[i]
}

// tileBy recursively orders the permutation ord into STR tiles: sort by
// the center coordinate of the current dimension, slice into slabs
// sized for an even spread of the remaining pages, and recurse on the
// next dimension within each slab. keys is scratch of len(ord) for the
// sort keys — computed once per pass (n calls to center instead of
// n log n from inside a comparison); center maps an original item index
// to its center coordinate.
func tileBy(ord []int32, keys []float64, dim, dims int, center func(i int32, d int) float64) {
	for i, oi := range ord {
		keys[i] = center(oi, dim)
	}
	sort.Stable(keyedSorter{keys: keys, ord: ord})
	if dim >= dims-1 || len(ord) <= maxEntries {
		return
	}
	pages := (len(ord) + maxEntries - 1) / maxEntries
	slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(dims-dim))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := (len(ord) + slabs - 1) / slabs
	for off := 0; off < len(ord); off += slabSize {
		end := off + slabSize
		if end > len(ord) {
			end = len(ord)
		}
		tileBy(ord[off:end], keys[off:end], dim+1, dims, center)
	}
}

func rectCenter(r geom.Rect, dim int) float64 {
	return (r.Min[dim] + r.Max[dim]) / 2
}

// splitEven partitions n items into the fewest groups of size <= max,
// sized as evenly as possible. For n > max the groups hold at least
// n/ceil(n/max) >= max/2 >= minEntries items, so packed nodes never
// underflow; a single group may be arbitrarily small only when it
// becomes the root.
func splitEven(n, max int) []int {
	g := (n + max - 1) / max
	base, rem := n/g, n%g
	out := make([]int, g)
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// Clone returns a structurally independent copy of the tree: the packed
// arrays are copied wholesale (a handful of memcpys — no pointer
// chasing, no per-node allocation), so mutations on either tree never
// affect the other. This is what makes the store's copy-on-write
// snapshot detach cheap.
func (t *Tree[T]) Clone() *Tree[T] {
	return &Tree[T]{
		dim:     t.dim,
		size:    t.size,
		root:    t.root,
		meta:    append([]nodeMeta(nil), t.meta...),
		coords:  append([]float64(nil), t.coords...),
		child:   append([]int32(nil), t.child...),
		vals:    append([]T(nil), t.vals...),
		free:    append([]int32(nil), t.free...),
		rootMBR: append([]float64(nil), t.rootMBR...),
	}
}

package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"probprune/internal/geom"
)

func randRect(rng *rand.Rand, maxExt float64) geom.Rect {
	c := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
	ext := []float64{rng.Float64() * maxExt, rng.Float64() * maxExt}
	return geom.RectAround(c, ext)
}

func TestEmptyTree(t *testing.T) {
	tr := New[int]()
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	tr.SearchIntersect(geom.Rect{Min: geom.Point{0, 0}, Max: geom.Point{1, 1}}, func(geom.Rect, int) bool {
		t.Error("callback on empty tree")
		return true
	})
	tr.Walk(nil, func(geom.Rect, int) { t.Error("walk on empty tree") })
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertAndSearchMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	tr := New[int]()
	rects := make([]geom.Rect, 0, 500)
	for i := 0; i < 500; i++ {
		r := randRect(rng, 5)
		rects = append(rects, r)
		tr.Insert(r, i)
		if i%97 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		q := randRect(rng, 20)
		var got []int
		tr.SearchIntersect(q, func(_ geom.Rect, v int) bool {
			got = append(got, v)
			return true
		})
		var want []int
		for i, r := range rects {
			if r.Intersects(q) {
				want = append(want, i)
			}
		}
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d results, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %v: result mismatch at %d", q, i)
			}
		}
	}
}

func TestSearchEarlyTermination(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	tr := New[int]()
	for i := 0; i < 100; i++ {
		tr.Insert(randRect(rng, 5), i)
	}
	calls := 0
	huge := geom.Rect{Min: geom.Point{-1000, -1000}, Max: geom.Point{1000, 1000}}
	tr.SearchIntersect(huge, func(geom.Rect, int) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Errorf("early termination did not stop the search: %d calls", calls)
	}
}

func TestWalkVisitsAllByDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	tr := New[int]()
	for i := 0; i < 300; i++ {
		tr.Insert(randRect(rng, 2), i)
	}
	seen := make(map[int]bool)
	tr.Walk(nil, func(_ geom.Rect, v int) { seen[v] = true })
	if len(seen) != 300 {
		t.Errorf("Walk reached %d values, want 300", len(seen))
	}
}

func TestWalkTakeSubtreeAndSkip(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	tr := New[int]()
	for i := 0; i < 300; i++ {
		tr.Insert(randRect(rng, 2), i)
	}
	// TakeSubtree at the root must enumerate everything with exactly
	// one node callback.
	nodeCalls, leafCalls := 0, 0
	tr.Walk(
		func(geom.Rect, int) WalkAction { nodeCalls++; return TakeSubtree },
		func(geom.Rect, int) { leafCalls++ },
	)
	if nodeCalls != 1 || leafCalls != 300 {
		t.Errorf("TakeSubtree: %d node calls, %d leaves", nodeCalls, leafCalls)
	}
	// SkipSubtree at the root must reach nothing.
	leafCalls = 0
	tr.Walk(
		func(geom.Rect, int) WalkAction { return SkipSubtree },
		func(geom.Rect, int) { leafCalls++ },
	)
	if leafCalls != 0 {
		t.Errorf("SkipSubtree leaked %d leaves", leafCalls)
	}
}

func TestWalkCountsAreSubtreeSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	tr := New[int]()
	for i := 0; i < 400; i++ {
		tr.Insert(randRect(rng, 2), i)
	}
	tr.Walk(func(mbr geom.Rect, count int) WalkAction {
		// Verify count against an actual enumeration of the subtree by
		// intersecting with its own MBR (superset) and filtering by
		// containment — instead, simpler: root count must be Len.
		if count > tr.Len() || count <= 0 {
			t.Fatalf("implausible subtree count %d", count)
		}
		return Descend
	}, nil)
	rootSeen := false
	tr.Walk(func(_ geom.Rect, count int) WalkAction {
		if !rootSeen {
			rootSeen = true
			if count != tr.Len() {
				t.Fatalf("root count %d != Len %d", count, tr.Len())
			}
		}
		return Descend
	}, nil)
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	tr := New[int]()
	rects := make([]geom.Rect, 400)
	for i := range rects {
		rects[i] = randRect(rng, 3)
		tr.Insert(rects[i], i)
	}
	// Delete half, verifying invariants along the way.
	for i := 0; i < 200; i++ {
		if !tr.Delete(rects[i], i) {
			t.Fatalf("Delete(%d) did not find the entry", i)
		}
		if i%23 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after deleting %d: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 200 {
		t.Fatalf("Len = %d after deletions", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deleted values must be gone, the rest findable.
	found := make(map[int]bool)
	tr.All(func(_ geom.Rect, v int) { found[v] = true })
	for i := 0; i < 400; i++ {
		if i < 200 && found[i] {
			t.Fatalf("deleted value %d still present", i)
		}
		if i >= 200 && !found[i] {
			t.Fatalf("remaining value %d lost", i)
		}
	}
	// Deleting a missing entry reports false.
	if tr.Delete(rects[0], 0) {
		t.Error("Delete of missing entry returned true")
	}
}

func TestDeleteToEmptyAndReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	tr := New[string]()
	type kv struct {
		r geom.Rect
		v string
	}
	var items []kv
	for i := 0; i < 60; i++ {
		it := kv{r: randRect(rng, 2), v: string(rune('a' + i%26))}
		// Make values unique by index suffixing via rect identity; use
		// distinct strings instead.
		it.v = it.v + string(rune('0'+i/26))
		items = append(items, it)
		tr.Insert(it.r, it.v)
	}
	for _, it := range items {
		if !tr.Delete(it.r, it.v) {
			t.Fatalf("lost entry %q", it.v)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after full drain", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The tree must be reusable after draining.
	tr.Insert(randRect(rng, 1), "again")
	if tr.Len() != 1 {
		t.Error("reuse after drain failed")
	}
}

func TestDuplicateRectsAndValues(t *testing.T) {
	tr := New[int]()
	r := geom.Rect{Min: geom.Point{0, 0}, Max: geom.Point{1, 1}}
	for i := 0; i < 40; i++ {
		tr.Insert(r, 7)
	}
	if tr.Len() != 40 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	count := 0
	tr.SearchIntersect(r, func(geom.Rect, int) bool { count++; return true })
	if count != 40 {
		t.Errorf("found %d duplicates, want 40", count)
	}
	if !tr.Delete(r, 7) || tr.Len() != 39 {
		t.Error("deleting one duplicate failed")
	}
}

// Property test: random interleaved inserts and deletes always keep the
// tree consistent with a shadow map.
func TestRandomizedInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tr := New[int]()
	type item struct {
		r geom.Rect
		v int
	}
	var live []item
	next := 0
	for step := 0; step < 3000; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			it := item{r: randRect(rng, 4), v: next}
			next++
			live = append(live, it)
			tr.Insert(it.r, it.v)
		} else {
			i := rng.Intn(len(live))
			it := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if !tr.Delete(it.r, it.v) {
				t.Fatalf("step %d: lost live entry %d", step, it.v)
			}
		}
		if step%251 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if tr.Len() != len(live) {
				t.Fatalf("step %d: Len %d != live %d", step, tr.Len(), len(live))
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	tr.All(func(_ geom.Rect, v int) { seen[v] = true })
	if len(seen) != len(live) {
		t.Fatalf("reachable %d != live %d", len(seen), len(live))
	}
	for _, it := range live {
		if !seen[it.v] {
			t.Fatalf("live entry %d unreachable", it.v)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(78))
	tr := New[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(randRect(rng, 2), i)
	}
}

func BenchmarkSearchIntersect(b *testing.B) {
	rng := rand.New(rand.NewSource(79))
	tr := New[int]()
	for i := 0; i < 10000; i++ {
		tr.Insert(randRect(rng, 1), i)
	}
	q := randRect(rng, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SearchIntersect(q, func(geom.Rect, int) bool { return true })
	}
}

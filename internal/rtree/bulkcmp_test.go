package rtree

import (
	"math/rand"
	"testing"
)

// Comparative benchmarks: the flat-node STR bulk load against the
// preserved pointer-based reference implementation. The flat build
// must not lose ground to the layout it replaced.

func bulkItems(n int) []BulkItem[int] {
	rng := rand.New(rand.NewSource(3))
	items := make([]BulkItem[int], n)
	for i := range items {
		items[i] = BulkItem[int]{Rect: randRect(rng, 2), Value: i}
	}
	return items
}

var (
	bulkFlatSink *Tree[int]
	bulkRefSink  *refTree[int]
)

func BenchmarkBulkFlat(b *testing.B) {
	items := bulkItems(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bulkFlatSink = Bulk(items)
	}
}

func BenchmarkBulkRef(b *testing.B) {
	items := bulkItems(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bulkRefSink = refBulk(items)
	}
}

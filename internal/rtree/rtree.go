// Package rtree implements a classic Guttman R-tree with quadratic
// splits over axis-aligned rectangles. The pruning framework uses it as
// its spatial index substrate: the minimum bounding rectangles of
// uncertain objects are indexed, and the complete-domination filter of
// the paper walks the tree pruning whole subtrees at node granularity —
// the index integration the paper names as future work (Section VIII).
//
// The domination criterion is monotone in the rectangle arguments
// (shrinking the candidate region can only help it dominate, and can
// only help it be dominated), so a verdict established for a node MBR
// transfers to every object stored beneath it. Walk exposes exactly the
// traversal contract this needs.
package rtree

import (
	"fmt"
	"math"

	"probprune/internal/geom"
)

// Degree bounds for nodes: every node except the root holds between
// minEntries and maxEntries entries.
const (
	maxEntries = 16
	minEntries = 6
)

// Tree is an R-tree mapping rectangles to values of type T. The zero
// value is not usable; construct with New.
type Tree[T comparable] struct {
	root *node[T]
	size int
}

type entry[T comparable] struct {
	rect  geom.Rect
	child *node[T] // non-nil for internal entries
	value T        // set for leaf entries
}

type node[T comparable] struct {
	leaf    bool
	entries []entry[T]
	count   int // number of values stored in this subtree
}

// New returns an empty tree.
func New[T comparable]() *Tree[T] {
	return &Tree[T]{root: &node[T]{leaf: true}}
}

// Len returns the number of stored values.
func (t *Tree[T]) Len() int { return t.size }

// Bounds returns the minimum bounding rectangle of every stored value
// and whether the tree is non-empty. A scatter-gather router uses it to
// rule whole shards out of a probe with one distance test instead of a
// traversal.
func (t *Tree[T]) Bounds() (geom.Rect, bool) {
	if t.size == 0 {
		return geom.Rect{}, false
	}
	return nodeRect(t.root), true
}

// Insert adds value under the given bounding rectangle. Duplicate
// rectangles and values are allowed.
func (t *Tree[T]) Insert(rect geom.Rect, value T) {
	t.insertEntry(entry[T]{rect: rect.Clone(), value: value})
	t.size++
}

// insertEntry places a leaf entry without touching t.size — the shared
// path of Insert and orphan reinsertion, which moves values that are
// still accounted for.
func (t *Tree[T]) insertEntry(e entry[T]) {
	split := t.insert(t.root, e)
	if split != nil {
		// Root split: grow the tree by one level.
		old := t.root
		t.root = &node[T]{
			leaf: false,
			entries: []entry[T]{
				{rect: nodeRect(old), child: old},
				{rect: nodeRect(split), child: split},
			},
			count: old.count + split.count,
		}
	}
}

// insert places e into the subtree under n, returning a new sibling if
// n had to split.
func (t *Tree[T]) insert(n *node[T], e entry[T]) *node[T] {
	n.count++
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > maxEntries {
			return t.split(n)
		}
		return nil
	}
	best := chooseSubtree(n, e.rect)
	child := n.entries[best].child
	split := t.insert(child, e)
	if split != nil {
		// The child's entries were redistributed: recompute its MBR
		// tightly instead of unioning in the new rectangle.
		n.entries[best].rect = nodeRect(child)
		n.entries = append(n.entries, entry[T]{rect: nodeRect(split), child: split})
		if len(n.entries) > maxEntries {
			return t.split(n)
		}
	} else {
		n.entries[best].rect = n.entries[best].rect.Union(e.rect)
	}
	return nil
}

// chooseSubtree picks the child whose MBR needs the least enlargement
// to cover r, breaking ties by smaller area (Guttman's ChooseLeaf).
func chooseSubtree[T comparable](n *node[T], r geom.Rect) int {
	best := 0
	bestEnl, bestArea := math.Inf(1), math.Inf(1)
	for i, e := range n.entries {
		area := e.rect.Area()
		enl := e.rect.Union(r).Area() - area
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// split performs Guttman's quadratic split on an overflowing node,
// keeping one group in n and returning the other as a new node.
func (t *Tree[T]) split(n *node[T]) *node[T] {
	entries := n.entries
	// Pick the two seeds wasting the most area if grouped together.
	s1, s2 := pickSeeds(entries)
	g1 := []entry[T]{entries[s1]}
	g2 := []entry[T]{entries[s2]}
	r1, r2 := entries[s1].rect, entries[s2].rect
	rest := make([]entry[T], 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// If one group must take all remaining entries to reach the
		// minimum, assign them wholesale.
		if len(g1)+len(rest) <= minEntries {
			g1 = append(g1, rest...)
			for _, e := range rest {
				r1 = r1.Union(e.rect)
			}
			break
		}
		if len(g2)+len(rest) <= minEntries {
			g2 = append(g2, rest...)
			for _, e := range rest {
				r2 = r2.Union(e.rect)
			}
			break
		}
		// PickNext: the entry with the strongest preference.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range rest {
			d1 := r1.Union(e.rect).Area() - r1.Area()
			d2 := r2.Union(e.rect).Area() - r2.Area()
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		d1 := r1.Union(e.rect).Area() - r1.Area()
		d2 := r2.Union(e.rect).Area() - r2.Area()
		if d1 < d2 || (d1 == d2 && len(g1) <= len(g2)) {
			g1 = append(g1, e)
			r1 = r1.Union(e.rect)
		} else {
			g2 = append(g2, e)
			r2 = r2.Union(e.rect)
		}
	}
	n.entries = g1
	n.count = groupCount(n.leaf, g1)
	sib := &node[T]{leaf: n.leaf, entries: g2, count: groupCount(n.leaf, g2)}
	return sib
}

func groupCount[T comparable](leaf bool, g []entry[T]) int {
	if leaf {
		return len(g)
	}
	c := 0
	for _, e := range g {
		c += e.child.count
	}
	return c
}

func pickSeeds[T comparable](entries []entry[T]) (int, int) {
	s1, s2, worst := 0, 1, -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			u := entries[i].rect.Union(entries[j].rect).Area()
			waste := u - entries[i].rect.Area() - entries[j].rect.Area()
			if waste > worst {
				s1, s2, worst = i, j, waste
			}
		}
	}
	return s1, s2
}

func nodeRect[T comparable](n *node[T]) geom.Rect {
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.Union(e.rect)
	}
	return r
}

// SearchIntersect calls fn for every stored value whose rectangle
// intersects query. Traversal stops early if fn returns false.
func (t *Tree[T]) SearchIntersect(query geom.Rect, fn func(rect geom.Rect, value T) bool) {
	t.searchIntersect(t.root, query, fn)
}

func (t *Tree[T]) searchIntersect(n *node[T], query geom.Rect, fn func(geom.Rect, T) bool) bool {
	for _, e := range n.entries {
		if !e.rect.Intersects(query) {
			continue
		}
		if n.leaf {
			if !fn(e.rect, e.value) {
				return false
			}
		} else if !t.searchIntersect(e.child, query, fn) {
			return false
		}
	}
	return true
}

// WalkAction is the verdict a Walk node callback returns for a subtree.
type WalkAction int

const (
	// Descend continues into the subtree's children.
	Descend WalkAction = iota
	// SkipSubtree prunes the subtree without visiting any value in it.
	SkipSubtree
	// TakeSubtree accepts every value in the subtree: leaf is invoked
	// for each without further node callbacks.
	TakeSubtree
)

// Walk traverses the tree top-down. For every node (including leaf
// nodes), node is called with the node's MBR and the number of values
// beneath it, and its verdict controls descent. leaf is called for
// every value that is reached (via Descend into a leaf node, or via
// TakeSubtree). Either callback may be nil.
//
// This is the primitive the bulk complete-domination filter builds on:
// a node whose MBR is dominated by the target w.r.t. the reference is
// SkipSubtree'd (the count argument discards the subtree wholesale); a
// node whose MBR dominates the target is TakeSubtree'd so each object
// inherits the verdict but still gets its per-object existence check —
// counting dominators wholesale is unsound for existentially uncertain
// objects; everything else descends.
func (t *Tree[T]) Walk(node func(mbr geom.Rect, count int) WalkAction, leaf func(rect geom.Rect, value T)) {
	if t.size == 0 {
		return
	}
	t.walk(t.root, nodeRect(t.root), node, leaf)
}

func (t *Tree[T]) walk(n *node[T], mbr geom.Rect, nodeFn func(geom.Rect, int) WalkAction, leafFn func(geom.Rect, T)) {
	action := Descend
	if nodeFn != nil {
		action = nodeFn(mbr, n.count)
	}
	switch action {
	case SkipSubtree:
		return
	case TakeSubtree:
		t.emitAll(n, leafFn)
	default:
		for _, e := range n.entries {
			if n.leaf {
				if leafFn != nil {
					leafFn(e.rect, e.value)
				}
			} else {
				t.walk(e.child, e.rect, nodeFn, leafFn)
			}
		}
	}
}

func (t *Tree[T]) emitAll(n *node[T], leafFn func(geom.Rect, T)) {
	if leafFn == nil {
		return
	}
	for _, e := range n.entries {
		if n.leaf {
			leafFn(e.rect, e.value)
		} else {
			t.emitAll(e.child, leafFn)
		}
	}
}

// Delete removes one entry with the given rectangle and value, and
// reports whether an entry was found. Underflowing nodes are condensed
// and their remaining entries reinserted (Guttman's CondenseTree).
func (t *Tree[T]) Delete(rect geom.Rect, value T) bool {
	var orphans []entry[T]
	found, _ := t.delete(t.root, rect, value, &orphans)
	if !found {
		return false
	}
	t.size--
	// Collapse a root with a single internal child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node[T]{leaf: true}
	}
	for _, e := range orphans {
		if e.child != nil {
			t.reinsertSubtree(e.child)
		} else {
			// Orphaned values never left t.size — move the entry without
			// re-counting it (and without re-cloning its rectangle).
			t.insertEntry(e)
		}
	}
	return true
}

func (t *Tree[T]) reinsertSubtree(n *node[T]) {
	if n.leaf {
		for _, e := range n.entries {
			t.insertEntry(e)
		}
		return
	}
	for _, e := range n.entries {
		t.reinsertSubtree(e.child)
	}
}

// delete removes the matching value from the subtree under n. It
// returns whether the value was found and how many values left the
// subtree (the deleted one plus any orphaned by condensing, which the
// caller reinserts from the top).
func (t *Tree[T]) delete(n *node[T], rect geom.Rect, value T, orphans *[]entry[T]) (bool, int) {
	if n.leaf {
		for i, e := range n.entries {
			if e.value == value && e.rect.Equal(rect) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				n.count--
				return true, 1
			}
		}
		return false, 0
	}
	for i, e := range n.entries {
		if !e.rect.ContainsRect(rect) {
			continue
		}
		found, removed := t.delete(e.child, rect, value, orphans)
		if !found {
			continue
		}
		if len(e.child.entries) < minEntries {
			// Condense: orphan the underflowing child's remaining
			// entries; their values also leave this subtree until the
			// top-level reinsertion puts them back.
			removed += e.child.count
			*orphans = append(*orphans, e.child.entries...)
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
		} else {
			n.entries[i].rect = nodeRect(e.child)
		}
		n.count -= removed
		return true, removed
	}
	return false, 0
}

// All calls fn for every stored (rect, value) pair.
func (t *Tree[T]) All(fn func(rect geom.Rect, value T)) {
	t.emitAll(t.root, fn)
}

// CheckInvariants validates structural invariants (entry counts, MBR
// containment, subtree counts); it is exported for tests.
func (t *Tree[T]) CheckInvariants() error {
	n, err := t.check(t.root, true)
	if err != nil {
		return err
	}
	if n != t.size {
		return fmt.Errorf("rtree: size %d but %d reachable values", t.size, n)
	}
	return nil
}

func (t *Tree[T]) check(n *node[T], isRoot bool) (int, error) {
	if !isRoot && (len(n.entries) < minEntries || len(n.entries) > maxEntries) {
		return 0, fmt.Errorf("rtree: node with %d entries outside [%d, %d]", len(n.entries), minEntries, maxEntries)
	}
	if n.leaf {
		if n.count != len(n.entries) {
			return 0, fmt.Errorf("rtree: leaf count %d != %d entries", n.count, len(n.entries))
		}
		return len(n.entries), nil
	}
	total := 0
	for _, e := range n.entries {
		sub := nodeRect(e.child)
		if !e.rect.ContainsRect(sub) {
			return 0, fmt.Errorf("rtree: entry MBR %v does not contain child MBR %v", e.rect, sub)
		}
		c, err := t.check(e.child, false)
		if err != nil {
			return 0, err
		}
		if c != e.child.count {
			return 0, fmt.Errorf("rtree: child count %d != %d reachable", e.child.count, c)
		}
		total += c
	}
	if n.count != total {
		return 0, fmt.Errorf("rtree: node count %d != %d reachable", n.count, total)
	}
	return total, nil
}

// Package rtree implements a classic Guttman R-tree with quadratic
// splits over axis-aligned rectangles. The pruning framework uses it as
// its spatial index substrate: the minimum bounding rectangles of
// uncertain objects are indexed, and the complete-domination filter of
// the paper walks the tree pruning whole subtrees at node granularity —
// the index integration the paper names as future work (Section VIII).
//
// The domination criterion is monotone in the rectangle arguments
// (shrinking the candidate region can only help it dominate, and can
// only help it be dominated), so a verdict established for a node MBR
// transfers to every object stored beneath it. Walk exposes exactly the
// traversal contract this needs.
//
// Layout: the tree is flat, not pointer-linked. Nodes live in one
// []nodeMeta slice addressed by int32 indices; each node owns a
// fixed-stride slot range in three packed arrays — entry rectangles in
// coords (2·dim floats per entry), child links in child, stored values
// in vals. Entry rectangles handed to callbacks are sub-slice views
// into coords, so traversals allocate nothing, and Clone is a handful
// of bulk copies instead of a pointer-chasing rebuild. The algorithms
// (ChooseLeaf, quadratic split, CondenseTree, STR packing, best-first
// Nearby) are operation-for-operation those of the original
// pointer-based implementation, so tree shapes, stored rectangle
// values and traversal orders are bit-identical — the equivalence
// fuzzer in rtree_test.go pins exactly that against the retained
// reference implementation.
package rtree

import (
	"fmt"
	"math"

	"probprune/internal/geom"
)

// Degree bounds for nodes: every node except the root holds between
// minEntries and maxEntries entries. slotCap reserves one transient
// overflow slot per node, filled only between an insertion and the
// split it triggers.
const (
	maxEntries = 16
	minEntries = 6
	slotCap    = maxEntries + 1
)

// nodeMeta is the per-node header; entry data lives in the tree's
// packed arrays at the node's slot range.
type nodeMeta struct {
	leaf  bool
	n     int16 // entries in use
	count int32 // values stored in this subtree
}

// Tree is an R-tree mapping rectangles to values of type T. The zero
// value is not usable; construct with New. A Tree may be read
// concurrently, but mutations require exclusive access (the store
// layer guarantees this via copy-on-write snapshots).
type Tree[T comparable] struct {
	dim  int
	size int
	root int32 // node index; -1 until the first insert fixes dim

	meta   []nodeMeta
	coords []float64 // slotCap rects of 2*dim floats per node
	child  []int32   // slotCap child links per node (internal nodes)
	vals   []T       // slotCap values per node (leaf nodes)
	free   []int32   // recycled node slots

	// rootMBR caches the union of the root's entry rectangles (2*dim
	// floats), maintained on every mutation so read paths never compute
	// or allocate it.
	rootMBR []float64

	// Mutation scratch, reused across Inserts/Deletes (mutations are
	// exclusive by contract). scCoords holds slotCap+2 rect slots: the
	// overflowing node's entries plus the two split-group accumulators.
	scCoords     []float64
	orphanCoords []float64
	orphanVals   []T
}

// New returns an empty tree.
func New[T comparable]() *Tree[T] {
	return &Tree[T]{root: -1}
}

// Len returns the number of stored values.
func (t *Tree[T]) Len() int { return t.size }

// Dim returns the dimensionality of stored rectangles (0 before the
// first insert).
func (t *Tree[T]) Dim() int { return t.dim }

// coordOff returns the offset of entry i of node ni in coords.
func (t *Tree[T]) coordOff(ni int32, i int) int {
	return (int(ni)*slotCap + i) * 2 * t.dim
}

// rectAt returns a view of entry i of node ni. The view aliases the
// tree's packed storage: callers must treat it as read-only, and it is
// invalidated by mutations.
func (t *Tree[T]) rectAt(ni int32, i int) geom.Rect {
	o := t.coordOff(ni, i)
	d := t.dim
	return geom.Rect{Min: t.coords[o : o+d : o+d], Max: t.coords[o+d : o+2*d : o+2*d]}
}

func (t *Tree[T]) childAt(ni int32, i int) int32 { return t.child[int(ni)*slotCap+i] }
func (t *Tree[T]) valAt(ni int32, i int) T       { return t.vals[int(ni)*slotCap+i] }

// setRect copies r into entry slot i of node ni.
func (t *Tree[T]) setRect(ni int32, i int, r geom.Rect) {
	o := t.coordOff(ni, i)
	d := t.dim
	copy(t.coords[o:o+d], r.Min)
	copy(t.coords[o+d:o+2*d], r.Max)
}

// writeNodeRect computes the tight MBR of node ci (the union of its
// entry rectangles, accumulated in entry order exactly like the
// reference nodeRect) directly into entry slot i of node ni.
func (t *Tree[T]) writeNodeRect(ni int32, i int, ci int32) {
	d := t.dim
	o := t.coordOff(ni, i)
	co := t.coordOff(ci, 0)
	copy(t.coords[o:o+2*d], t.coords[co:co+2*d])
	for k := 1; k < int(t.meta[ci].n); k++ {
		ck := t.coordOff(ci, k)
		for j := 0; j < d; j++ {
			t.coords[o+j] = math.Min(t.coords[o+j], t.coords[ck+j])
			t.coords[o+d+j] = math.Max(t.coords[o+d+j], t.coords[ck+d+j])
		}
	}
}

// nodeRectAlloc returns a freshly allocated tight MBR of node ni —
// validation/bulk paths only; hot paths use writeNodeRect.
func (t *Tree[T]) nodeRectAlloc(ni int32) geom.Rect {
	r := t.rectAt(ni, 0).Clone()
	d := t.dim
	for k := 1; k < int(t.meta[ni].n); k++ {
		ck := t.coordOff(ni, k)
		for j := 0; j < d; j++ {
			r.Min[j] = math.Min(r.Min[j], t.coords[ck+j])
			r.Max[j] = math.Max(r.Max[j], t.coords[ck+d+j])
		}
	}
	return r
}

// rootRect returns a view of the cached root MBR; valid while size > 0.
func (t *Tree[T]) rootRect() geom.Rect {
	d := t.dim
	return geom.Rect{Min: t.rootMBR[0:d:d], Max: t.rootMBR[d : 2*d : 2*d]}
}

// refreshRootMBR recomputes the cached root MBR after a mutation.
func (t *Tree[T]) refreshRootMBR() {
	if t.size == 0 || t.root < 0 {
		return
	}
	d := t.dim
	if len(t.rootMBR) < 2*d {
		t.rootMBR = make([]float64, 2*d)
	}
	ro := t.coordOff(t.root, 0)
	copy(t.rootMBR[:2*d], t.coords[ro:ro+2*d])
	for k := 1; k < int(t.meta[t.root].n); k++ {
		ck := t.coordOff(t.root, k)
		for j := 0; j < d; j++ {
			t.rootMBR[j] = math.Min(t.rootMBR[j], t.coords[ck+j])
			t.rootMBR[d+j] = math.Max(t.rootMBR[d+j], t.coords[ck+d+j])
		}
	}
}

// Bounds returns the minimum bounding rectangle of every stored value
// and whether the tree is non-empty. A scatter-gather router uses it to
// rule whole shards out of a probe with one distance test instead of a
// traversal. The returned rectangle is caller-owned.
func (t *Tree[T]) Bounds() (geom.Rect, bool) {
	if t.size == 0 {
		return geom.Rect{}, false
	}
	return t.rootRect().Clone(), true
}

// newNode allocates (or recycles) a node slot and returns its index.
func (t *Tree[T]) newNode(leaf bool) int32 {
	if k := len(t.free); k > 0 {
		ni := t.free[k-1]
		t.free = t.free[:k-1]
		t.meta[ni] = nodeMeta{leaf: leaf}
		return ni
	}
	ni := int32(len(t.meta))
	t.meta = append(t.meta, nodeMeta{leaf: leaf})
	t.coords = grown(t.coords, 2*t.dim*slotCap)
	t.child = grown(t.child, slotCap)
	t.vals = grown(t.vals, slotCap)
	return ni
}

// grown extends s by n zeroed elements, reusing capacity when possible.
func grown[E any](s []E, n int) []E {
	l := len(s)
	if cap(s) < l+n {
		ns := make([]E, l+n, 2*cap(s)+n)
		copy(ns, s)
		return ns
	}
	s = s[:l+n]
	clear(s[l:])
	return s
}

// freeNode returns a node slot to the free list, dropping value
// references so the GC can reclaim them.
func (t *Tree[T]) freeNode(ni int32) {
	base := int(ni) * slotCap
	clear(t.vals[base : base+slotCap])
	t.meta[ni] = nodeMeta{}
	t.free = append(t.free, ni)
}

// Insert adds value under the given bounding rectangle. Duplicate
// rectangles and values are allowed. The rectangle is copied into the
// tree's packed storage; the argument is not retained.
func (t *Tree[T]) Insert(rect geom.Rect, value T) {
	if t.root < 0 {
		t.dim = rect.Dim()
		t.root = t.newNode(true)
	}
	t.insertEntry(rect, value)
	t.size++
	t.refreshRootMBR()
}

// insertEntry places a leaf entry without touching t.size — the shared
// path of Insert and orphan reinsertion, which moves values that are
// still accounted for.
func (t *Tree[T]) insertEntry(rect geom.Rect, value T) {
	sib := t.insert(t.root, rect, value)
	if sib >= 0 {
		// Root split: grow the tree by one level.
		old := t.root
		nr := t.newNode(false)
		t.appendInternalEntry(nr, old)
		t.appendInternalEntry(nr, sib)
		t.meta[nr].count = t.meta[old].count + t.meta[sib].count
		t.root = nr
	}
}

// appendLeafEntry appends (rect, value) to leaf node ni.
func (t *Tree[T]) appendLeafEntry(ni int32, rect geom.Rect, value T) {
	i := int(t.meta[ni].n)
	t.setRect(ni, i, rect)
	t.vals[int(ni)*slotCap+i] = value
	t.meta[ni].n++
}

// appendInternalEntry appends child ci (with its tight MBR) to internal
// node ni.
func (t *Tree[T]) appendInternalEntry(ni, ci int32) {
	i := int(t.meta[ni].n)
	t.writeNodeRect(ni, i, ci)
	t.child[int(ni)*slotCap+i] = ci
	t.meta[ni].n++
}

// insert places a leaf entry into the subtree under ni, returning the
// index of a new sibling if ni had to split (-1 otherwise).
func (t *Tree[T]) insert(ni int32, rect geom.Rect, value T) int32 {
	t.meta[ni].count++
	if t.meta[ni].leaf {
		t.appendLeafEntry(ni, rect, value)
		if int(t.meta[ni].n) > maxEntries {
			return t.split(ni)
		}
		return -1
	}
	best := t.chooseSubtree(ni, rect)
	ci := t.childAt(ni, best)
	sib := t.insert(ci, rect, value)
	if sib >= 0 {
		// The child's entries were redistributed: recompute its MBR
		// tightly instead of unioning in the new rectangle.
		t.writeNodeRect(ni, best, ci)
		t.appendInternalEntry(ni, sib)
		if int(t.meta[ni].n) > maxEntries {
			return t.split(ni)
		}
	} else {
		// Union the inserted rectangle into the chosen entry in place.
		o := t.coordOff(ni, best)
		d := t.dim
		for j := 0; j < d; j++ {
			t.coords[o+j] = math.Min(t.coords[o+j], rect.Min[j])
			t.coords[o+d+j] = math.Max(t.coords[o+d+j], rect.Max[j])
		}
	}
	return -1
}

// chooseSubtree picks the child whose MBR needs the least enlargement
// to cover r, breaking ties by smaller area (Guttman's ChooseLeaf).
func (t *Tree[T]) chooseSubtree(ni int32, r geom.Rect) int {
	best := 0
	bestEnl, bestArea := math.Inf(1), math.Inf(1)
	for i := 0; i < int(t.meta[ni].n); i++ {
		er := t.rectAt(ni, i)
		area := er.Area()
		enl := unionArea(er, r) - area
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// unionArea returns Union(a, b).Area() without materializing the union:
// the same per-dimension extents multiplied in the same order.
func unionArea(a, b geom.Rect) float64 {
	p := 1.0
	for i := range a.Min {
		p *= math.Max(a.Max[i], b.Max[i]) - math.Min(a.Min[i], b.Min[i])
	}
	return p
}

// split performs Guttman's quadratic split on an overflowing node,
// keeping one group in ni and returning the other as a new node. The
// seed picking, preference ordering and tie-breaking replicate the
// reference implementation operation for operation.
func (t *Tree[T]) split(ni int32) int32 {
	d := t.dim
	d2 := 2 * d
	n := int(t.meta[ni].n) // slotCap: maxEntries + 1 overflow entry
	leaf := t.meta[ni].leaf

	// Copy the node's entries into scratch: coords may reallocate when
	// the sibling is allocated, and the slots are about to be rewritten.
	if cap(t.scCoords) < (slotCap+2)*d2 {
		t.scCoords = make([]float64, (slotCap+2)*d2)
	}
	sc := t.scCoords[:(slotCap+2)*d2]
	copy(sc[:n*d2], t.coords[t.coordOff(ni, 0):t.coordOff(ni, 0)+n*d2])
	var schild [slotCap]int32
	var svals [slotCap]T
	base := int(ni) * slotCap
	if leaf {
		copy(svals[:n], t.vals[base:base+n])
	} else {
		copy(schild[:n], t.child[base:base+n])
	}
	srect := func(i int) geom.Rect {
		o := i * d2
		return geom.Rect{Min: sc[o : o+d : o+d], Max: sc[o+d : o+d2 : o+d2]}
	}
	// Group accumulator rects live in the two extra scratch slots.
	r1, r2 := srect(slotCap), srect(slotCap+1)
	unionInto := func(r geom.Rect, e geom.Rect) {
		for j := 0; j < d; j++ {
			r.Min[j] = math.Min(r.Min[j], e.Min[j])
			r.Max[j] = math.Max(r.Max[j], e.Max[j])
		}
	}

	// Pick the two seeds wasting the most area if grouped together.
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			u := unionArea(srect(i), srect(j))
			waste := u - srect(i).Area() - srect(j).Area()
			if waste > worst {
				s1, s2, worst = i, j, waste
			}
		}
	}
	var g1, g2, rest [slotCap]int
	n1, n2 := 1, 1
	g1[0], g2[0] = s1, s2
	copy(r1.Min, srect(s1).Min)
	copy(r1.Max, srect(s1).Max)
	copy(r2.Min, srect(s2).Min)
	copy(r2.Max, srect(s2).Max)
	nr := 0
	for i := 0; i < n; i++ {
		if i != s1 && i != s2 {
			rest[nr] = i
			nr++
		}
	}
	for nr > 0 {
		// If one group must take all remaining entries to reach the
		// minimum, assign them wholesale.
		if n1+nr <= minEntries {
			for k := 0; k < nr; k++ {
				g1[n1] = rest[k]
				n1++
				unionInto(r1, srect(rest[k]))
			}
			break
		}
		if n2+nr <= minEntries {
			for k := 0; k < nr; k++ {
				g2[n2] = rest[k]
				n2++
				unionInto(r2, srect(rest[k]))
			}
			break
		}
		// PickNext: the entry with the strongest preference.
		bestIdx, bestDiff := 0, -1.0
		a1, a2 := r1.Area(), r2.Area()
		for k := 0; k < nr; k++ {
			e := srect(rest[k])
			d1 := unionArea(r1, e) - a1
			d2v := unionArea(r2, e) - a2
			diff := d1 - d2v
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff = k, diff
			}
		}
		ei := rest[bestIdx]
		copy(rest[bestIdx:], rest[bestIdx+1:nr])
		nr--
		e := srect(ei)
		d1 := unionArea(r1, e) - r1.Area()
		d2v := unionArea(r2, e) - r2.Area()
		if d1 < d2v || (d1 == d2v && n1 <= n2) {
			g1[n1] = ei
			n1++
			unionInto(r1, e)
		} else {
			g2[n2] = ei
			n2++
			unionInto(r2, e)
		}
	}

	sib := t.newNode(leaf)
	t.writeGroup(ni, leaf, sc, g1[:n1], schild[:], svals[:])
	t.writeGroup(sib, leaf, sc, g2[:n2], schild[:], svals[:])
	return sib
}

// writeGroup rewrites node ni with the given scratch-entry indices.
func (t *Tree[T]) writeGroup(ni int32, leaf bool, sc []float64, g []int, schild []int32, svals []T) {
	d2 := 2 * t.dim
	base := int(ni) * slotCap
	count := int32(0)
	for k, idx := range g {
		o := t.coordOff(ni, k)
		copy(t.coords[o:o+d2], sc[idx*d2:(idx+1)*d2])
		if leaf {
			t.vals[base+k] = svals[idx]
			count++
		} else {
			ci := schild[idx]
			t.child[base+k] = ci
			count += t.meta[ci].count
		}
	}
	// Drop stale value references beyond the group.
	if leaf {
		clear(t.vals[base+len(g) : base+slotCap])
	}
	t.meta[ni].n = int16(len(g))
	t.meta[ni].count = count
}

// removeEntry deletes entry i of node ni, shifting later entries left.
func (t *Tree[T]) removeEntry(ni int32, i int) {
	n := int(t.meta[ni].n)
	d2 := 2 * t.dim
	if i < n-1 {
		o := t.coordOff(ni, i)
		copy(t.coords[o:o+(n-1-i)*d2], t.coords[o+d2:o+(n-i)*d2])
		base := int(ni) * slotCap
		copy(t.child[base+i:base+n-1], t.child[base+i+1:base+n])
		copy(t.vals[base+i:base+n-1], t.vals[base+i+1:base+n])
	}
	var zero T
	t.vals[int(ni)*slotCap+n-1] = zero
	t.meta[ni].n--
}

// SearchIntersect calls fn for every stored value whose rectangle
// intersects query. Traversal stops early if fn returns false.
func (t *Tree[T]) SearchIntersect(query geom.Rect, fn func(rect geom.Rect, value T) bool) {
	if t.root < 0 {
		return
	}
	t.searchIntersect(t.root, query, fn)
}

func (t *Tree[T]) searchIntersect(ni int32, query geom.Rect, fn func(geom.Rect, T) bool) bool {
	leaf := t.meta[ni].leaf
	for i := 0; i < int(t.meta[ni].n); i++ {
		r := t.rectAt(ni, i)
		if !r.Intersects(query) {
			continue
		}
		if leaf {
			if !fn(r, t.valAt(ni, i)) {
				return false
			}
		} else if !t.searchIntersect(t.childAt(ni, i), query, fn) {
			return false
		}
	}
	return true
}

// WalkAction is the verdict a Walk node callback returns for a subtree.
type WalkAction int

const (
	// Descend continues into the subtree's children.
	Descend WalkAction = iota
	// SkipSubtree prunes the subtree without visiting any value in it.
	SkipSubtree
	// TakeSubtree accepts every value in the subtree: leaf is invoked
	// for each without further node callbacks.
	TakeSubtree
)

// Walk traverses the tree top-down. For every node (including leaf
// nodes), node is called with the node's MBR and the number of values
// beneath it, and its verdict controls descent. leaf is called for
// every value that is reached (via Descend into a leaf node, or via
// TakeSubtree). Either callback may be nil. Rectangles passed to the
// callbacks are read-only views into the tree's packed storage.
//
// This is the primitive the bulk complete-domination filter builds on:
// a node whose MBR is dominated by the target w.r.t. the reference is
// SkipSubtree'd (the count argument discards the subtree wholesale); a
// node whose MBR dominates the target is TakeSubtree'd so each object
// inherits the verdict but still gets its per-object existence check —
// counting dominators wholesale is unsound for existentially uncertain
// objects; everything else descends.
func (t *Tree[T]) Walk(node func(mbr geom.Rect, count int) WalkAction, leaf func(rect geom.Rect, value T)) {
	if t.size == 0 {
		return
	}
	t.walk(t.root, t.rootRect(), node, leaf)
}

func (t *Tree[T]) walk(ni int32, mbr geom.Rect, nodeFn func(geom.Rect, int) WalkAction, leafFn func(geom.Rect, T)) {
	action := Descend
	if nodeFn != nil {
		action = nodeFn(mbr, int(t.meta[ni].count))
	}
	switch action {
	case SkipSubtree:
		return
	case TakeSubtree:
		t.emitAll(ni, leafFn)
	default:
		leaf := t.meta[ni].leaf
		for i := 0; i < int(t.meta[ni].n); i++ {
			if leaf {
				if leafFn != nil {
					leafFn(t.rectAt(ni, i), t.valAt(ni, i))
				}
			} else {
				t.walk(t.childAt(ni, i), t.rectAt(ni, i), nodeFn, leafFn)
			}
		}
	}
}

func (t *Tree[T]) emitAll(ni int32, leafFn func(geom.Rect, T)) {
	if leafFn == nil {
		return
	}
	leaf := t.meta[ni].leaf
	for i := 0; i < int(t.meta[ni].n); i++ {
		if leaf {
			leafFn(t.rectAt(ni, i), t.valAt(ni, i))
		} else {
			t.emitAll(t.childAt(ni, i), leafFn)
		}
	}
}

// Delete removes one entry with the given rectangle and value, and
// reports whether an entry was found. Underflowing nodes are condensed
// and their remaining entries reinserted (Guttman's CondenseTree).
func (t *Tree[T]) Delete(rect geom.Rect, value T) bool {
	if t.root < 0 {
		return false
	}
	t.orphanCoords = t.orphanCoords[:0]
	t.orphanVals = t.orphanVals[:0]
	found, _ := t.delete(t.root, rect, value)
	if !found {
		return false
	}
	t.size--
	// Collapse a root with a single internal child.
	for !t.meta[t.root].leaf && t.meta[t.root].n == 1 {
		old := t.root
		t.root = t.childAt(old, 0)
		t.freeNode(old)
	}
	if !t.meta[t.root].leaf && t.meta[t.root].n == 0 {
		t.freeNode(t.root)
		t.root = t.newNode(true)
	}
	// Reinsert orphaned values in collection order — the same sequence
	// the reference implementation's top-level reinsertion produces.
	d2 := 2 * t.dim
	for k := range t.orphanVals {
		o := k * d2
		r := geom.Rect{Min: t.orphanCoords[o : o+t.dim : o+t.dim], Max: t.orphanCoords[o+t.dim : o+d2 : o+d2]}
		t.insertEntry(r, t.orphanVals[k])
	}
	clear(t.orphanVals)
	t.orphanVals = t.orphanVals[:0]
	t.refreshRootMBR()
	return true
}

// delete removes the matching value from the subtree under ni. It
// returns whether the value was found and how many values left the
// subtree (the deleted one plus any orphaned by condensing, which
// Delete reinserts from the top).
func (t *Tree[T]) delete(ni int32, rect geom.Rect, value T) (bool, int32) {
	if t.meta[ni].leaf {
		for i := 0; i < int(t.meta[ni].n); i++ {
			if t.valAt(ni, i) == value && t.rectAt(ni, i).Equal(rect) {
				t.removeEntry(ni, i)
				t.meta[ni].count--
				return true, 1
			}
		}
		return false, 0
	}
	for i := 0; i < int(t.meta[ni].n); i++ {
		if !t.rectAt(ni, i).ContainsRect(rect) {
			continue
		}
		ci := t.childAt(ni, i)
		found, removed := t.delete(ci, rect, value)
		if !found {
			continue
		}
		if int(t.meta[ci].n) < minEntries {
			// Condense: orphan the underflowing child's remaining
			// values; they also leave this subtree until the top-level
			// reinsertion puts them back.
			removed += t.meta[ci].count
			t.collectOrphans(ci)
			t.removeEntry(ni, i)
		} else {
			t.writeNodeRect(ni, i, ci)
		}
		t.meta[ni].count -= removed
		return true, removed
	}
	return false, 0
}

// collectOrphans copies every leaf (rect, value) under ni into the
// orphan scratch in DFS entry order — exactly the order the reference
// implementation reinserts a condensed subtree — and frees its nodes.
// Rect data must be copied out: reinsertion recycles freed slots, which
// would otherwise overwrite it mid-use.
func (t *Tree[T]) collectOrphans(ni int32) {
	d2 := 2 * t.dim
	if t.meta[ni].leaf {
		for i := 0; i < int(t.meta[ni].n); i++ {
			o := t.coordOff(ni, i)
			t.orphanCoords = append(t.orphanCoords, t.coords[o:o+d2]...)
			t.orphanVals = append(t.orphanVals, t.valAt(ni, i))
		}
	} else {
		for i := 0; i < int(t.meta[ni].n); i++ {
			t.collectOrphans(t.childAt(ni, i))
		}
	}
	t.freeNode(ni)
}

// All calls fn for every stored (rect, value) pair.
func (t *Tree[T]) All(fn func(rect geom.Rect, value T)) {
	if t.root < 0 {
		return
	}
	t.emitAll(t.root, fn)
}

// CheckInvariants validates structural invariants (entry counts, MBR
// containment, subtree counts, root-MBR cache coherence); it is
// exported for tests.
func (t *Tree[T]) CheckInvariants() error {
	if t.root < 0 {
		if t.size != 0 {
			return fmt.Errorf("rtree: size %d with no root", t.size)
		}
		return nil
	}
	n, err := t.check(t.root, true)
	if err != nil {
		return err
	}
	if n != t.size {
		return fmt.Errorf("rtree: size %d but %d reachable values", t.size, n)
	}
	if t.size > 0 {
		want := t.nodeRectAlloc(t.root)
		if !t.rootRect().Equal(want) {
			return fmt.Errorf("rtree: cached root MBR %v != computed %v", t.rootRect(), want)
		}
	}
	return nil
}

func (t *Tree[T]) check(ni int32, isRoot bool) (int, error) {
	n := int(t.meta[ni].n)
	if !isRoot && (n < minEntries || n > maxEntries) {
		return 0, fmt.Errorf("rtree: node with %d entries outside [%d, %d]", n, minEntries, maxEntries)
	}
	if t.meta[ni].leaf {
		if int(t.meta[ni].count) != n {
			return 0, fmt.Errorf("rtree: leaf count %d != %d entries", t.meta[ni].count, n)
		}
		return n, nil
	}
	total := 0
	for i := 0; i < n; i++ {
		ci := t.childAt(ni, i)
		sub := t.nodeRectAlloc(ci)
		if !t.rectAt(ni, i).ContainsRect(sub) {
			return 0, fmt.Errorf("rtree: entry MBR %v does not contain child MBR %v", t.rectAt(ni, i), sub)
		}
		c, err := t.check(ci, false)
		if err != nil {
			return 0, err
		}
		if c != int(t.meta[ci].count) {
			return 0, fmt.Errorf("rtree: child count %d != %d reachable", t.meta[ci].count, c)
		}
		total += c
	}
	if int(t.meta[ni].count) != total {
		return 0, fmt.Errorf("rtree: node count %d != %d reachable", t.meta[ni].count, total)
	}
	return total, nil
}

package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"probprune/internal/geom"
)

// TestNearbyVisitsInAscendingMinDistOrder: the full stream is every
// stored value, ordered by MinDist to the query rectangle.
func TestNearbyVisitsInAscendingMinDistOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	tr := New[int]()
	rects := make([]geom.Rect, 0, 400)
	for i := 0; i < 400; i++ {
		r := randRect(rng, 5)
		rects = append(rects, r)
		tr.Insert(r, i)
	}
	query := geom.RectAround(geom.Point{50, 50}, []float64{2, 2})

	var gotIDs []int
	var gotDists []float64
	tr.Nearby(MinDist[int](geom.L2, query), func(rect geom.Rect, v int, d float64) bool {
		if want := rect.MinDistRect(geom.L2, query); d != want {
			t.Fatalf("value %d: reported dist %g, want %g", v, d, want)
		}
		gotIDs = append(gotIDs, v)
		gotDists = append(gotDists, d)
		return true
	})
	if len(gotIDs) != len(rects) {
		t.Fatalf("visited %d values, want %d", len(gotIDs), len(rects))
	}
	for i := 1; i < len(gotDists); i++ {
		if gotDists[i] < gotDists[i-1] {
			t.Fatalf("distances not ascending at %d: %g after %g", i, gotDists[i], gotDists[i-1])
		}
	}
	want := make([]float64, len(rects))
	for i, r := range rects {
		want[i] = r.MinDistRect(geom.L2, query)
	}
	sort.Float64s(want)
	for i := range want {
		if gotDists[i] != want[i] {
			t.Fatalf("dist stream diverges from sorted linear scan at %d: %g vs %g", i, gotDists[i], want[i])
		}
	}
}

// TestNearbyEarlyStop: returning false ends the traversal.
func TestNearbyEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	tr := New[int]()
	for i := 0; i < 300; i++ {
		tr.Insert(randRect(rng, 5), i)
	}
	query := geom.PointRect(geom.Point{10, 10})
	visits := 0
	tr.Nearby(MinDist[int](geom.L2, query), func(geom.Rect, int, float64) bool {
		visits++
		return visits < 7
	})
	if visits != 7 {
		t.Fatalf("visited %d values after early stop, want 7", visits)
	}
}

// TestNearbyAdmissibleCustomDist: ordering by MaxDist with MinDist as
// the node-level lower bound — the reverse-kNN preselection pattern —
// must stream in exact ascending MaxDist order.
func TestNearbyAdmissibleCustomDist(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	tr := New[int]()
	rects := make([]geom.Rect, 0, 250)
	for i := 0; i < 250; i++ {
		r := randRect(rng, 8)
		rects = append(rects, r)
		tr.Insert(r, i)
	}
	query := geom.RectAround(geom.Point{30, 70}, []float64{3, 3})
	dist := func(mbr geom.Rect, _ int, leaf bool) float64 {
		if leaf {
			return mbr.MaxDistRect(geom.L2, query)
		}
		return mbr.MinDistRect(geom.L2, query)
	}
	var got []float64
	tr.Nearby(dist, func(_ geom.Rect, _ int, d float64) bool {
		got = append(got, d)
		return true
	})
	want := make([]float64, len(rects))
	for i, r := range rects {
		want[i] = r.MaxDistRect(geom.L2, query)
	}
	sort.Float64s(want)
	if len(got) != len(want) {
		t.Fatalf("visited %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MaxDist stream diverges at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

// TestNearbyEmptyTree: no callbacks on an empty tree.
func TestNearbyEmptyTree(t *testing.T) {
	tr := New[int]()
	tr.Nearby(MinDist[int](geom.L2, geom.PointRect(geom.Point{0, 0})), func(geom.Rect, int, float64) bool {
		t.Fatal("callback on empty tree")
		return false
	})
}

//go:build !race

// The race detector instruments allocations, so the hard alloc
// ceilings below only hold (and only run) without -race.

package rtree

import (
	"fmt"
	"math/rand"
	"testing"

	"probprune/internal/geom"
)

// TestNearbyWithZeroAlloc: a warm NearbyWith traversal is allocation
// free — the queue lives in the reused buffer, heap items are plain
// values, and the rectangles handed out are views into the tree's
// packed arrays.
func TestNearbyWithZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New[int]()
	for i := 0; i < 500; i++ {
		tr.Insert(randRect(rng, 2), i)
	}
	probe := geom.Rect{Min: geom.Point{50, 50}, Max: geom.Point{50, 50}}
	dist := MinDist[int](geom.L2, probe)
	var buf NearbyBuf
	count := 0
	drain := func() {
		tr.NearbyWith(&buf, dist, func(_ geom.Rect, _ int, _ float64) bool {
			count++
			return count%97 != 0 // mix full drains with early exits
		})
	}
	drain() // warm the buffer to steady-state capacity
	if allocs := testing.AllocsPerRun(20, drain); allocs != 0 {
		t.Fatalf("warm NearbyWith allocated %.1f times per run, want 0", allocs)
	}
}

// TestWalkZeroAlloc: Walk (the filter step's traversal primitive) is
// allocation free — the root MBR is cached and every rectangle passed
// to the callbacks is a view.
func TestWalkZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := New[int]()
	for i := 0; i < 500; i++ {
		tr.Insert(randRect(rng, 2), i)
	}
	sum := 0
	walk := func() {
		tr.Walk(
			func(mbr geom.Rect, count int) WalkAction {
				if count%11 == 0 {
					return TakeSubtree
				}
				return Descend
			},
			func(_ geom.Rect, v int) { sum += v },
		)
	}
	if allocs := testing.AllocsPerRun(20, walk); allocs != 0 {
		t.Fatalf("Walk allocated %.1f times per run, want 0 (sum %d)", allocs, sum)
	}
}

// TestInsertAllocsBounded: steady-state inserts into a grown tree cost
// a bounded handful of allocations (array growth is amortized; split
// scratch is retained on the tree).
func TestInsertAllocsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := New[int]()
	for i := 0; i < 4000; i++ {
		tr.Insert(randRect(rng, 2), i)
	}
	i := 4000
	allocs := testing.AllocsPerRun(200, func() {
		tr.Insert(randRect(rng, 2), i)
		i++
	})
	// Amortized growth of the five packed arrays plus the free list;
	// per-entry allocation (the pointer tree's entry boxes) would blow
	// far past this.
	if allocs > 2 {
		t.Fatalf("steady-state Insert allocated %.1f times per run, want <= 2", allocs)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

var sinkClone *Tree[int]

// TestCloneAllocsConstant: Clone is a constant number of bulk copies,
// independent of tree size — the property the store's copy-on-write
// detach relies on.
func TestCloneAllocsConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tr := New[int]()
	for i := 0; i < 3000; i++ {
		tr.Insert(randRect(rng, 2), i)
	}
	allocs := testing.AllocsPerRun(10, func() { sinkClone = tr.Clone() })
	if allocs > 8 {
		t.Fatalf("Clone allocated %.1f times per run, want <= 8 (got %s)", allocs, fmt.Sprint(sinkClone.Len()))
	}
}

package rtree

import (
	"probprune/internal/geom"
)

// This file adds best-first incremental traversal to the R-tree: values
// are visited in ascending order of a caller-supplied distance, pulled
// from a priority queue of subtrees and values keyed by that distance
// (the classic kNN traversal of Hjaltason & Samet, as popularized by
// tidwall's rtree implementations). The iterator is incremental — the
// caller stops as soon as it has seen enough, and only the visited
// frontier of the tree is ever touched — which is what lets the query
// layer derive kNN prune thresholds and reverse-kNN preselection
// verdicts without full scans.

// DistFunc scores an MBR for best-first traversal. For internal nodes
// (leaf == false, value is the zero value of T) it must return a lower
// bound of the score of every value stored beneath the node; for stored
// values (leaf == true) it returns the value's actual score. MinDist to
// a query rectangle has this property, as does any other monotone
// bound (e.g. MinDist as a lower bound for MaxDist, since
// MaxDist >= MinDist and child MBRs nest inside node MBRs).
type DistFunc[T comparable] func(mbr geom.Rect, value T, leaf bool) float64

// MinDist returns the DistFunc ranking by minimal Lp distance to the
// query rectangle — the standard nearest-neighbor ordering.
func MinDist[T comparable](n geom.Norm, query geom.Rect) DistFunc[T] {
	return func(mbr geom.Rect, _ T, _ bool) float64 {
		return mbr.MinDistRect(n, query)
	}
}

// nearbyItem is one priority-queue entry: a pending subtree (node >= 0)
// or a stored value (node < 0, addressed by its leaf slot). Items are
// plain values — the queue is a flat slice, not a heap of boxed
// pointers — and carry no T, so one buffer type serves every tree
// instantiation.
type nearbyItem struct {
	dist float64
	seq  int32 // insertion sequence; breaks ties deterministically
	node int32
	vn   int32 // value's leaf node (value items)
	ei   int32 // value's entry slot (value items)
}

// NearbyBuf is reusable Nearby traversal state. A zero NearbyBuf is
// ready to use; passing the same buffer to successive NearbyWith calls
// (from one goroutine at a time) reuses the queue's backing array, so
// warm traversals allocate nothing. Buffers are tree-independent and
// safe to pool globally.
type NearbyBuf struct {
	items []nearbyItem
}

func nbLess(a, b nearbyItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.seq < b.seq
}

func nbPush(h []nearbyItem, it nearbyItem) []nearbyItem {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !nbLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

func nbSiftDown(h []nearbyItem) {
	i := 0
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && nbLess(h[r], h[l]) {
			m = r
		}
		if !nbLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// Nearby visits stored values in ascending dist order, calling iter with
// each value and its distance until iter returns false or the tree is
// exhausted. The visit order is deterministic: exact distance ties are
// broken by discovery order. Traversal work is proportional to the
// frontier actually consumed, so early-terminating callers leave most
// of the tree untouched.
func (t *Tree[T]) Nearby(dist DistFunc[T], iter func(rect geom.Rect, value T, d float64) bool) {
	var buf NearbyBuf
	t.NearbyWith(&buf, dist, iter)
}

// NearbyWith is Nearby with caller-supplied traversal state; see
// NearbyBuf. The visit order is identical to Nearby's: the queue pops
// in (dist, seq) order, which is total, so the heap layout cannot
// influence it.
func (t *Tree[T]) NearbyWith(buf *NearbyBuf, dist DistFunc[T], iter func(rect geom.Rect, value T, d float64) bool) {
	if t.size == 0 {
		return
	}
	var zero T
	h := buf.items[:0]
	defer func() { buf.items = h[:0] }()
	seq := int32(1)
	h = nbPush(h, nearbyItem{dist: dist(t.rootRect(), zero, false), node: t.root})
	for len(h) > 0 {
		it := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		nbSiftDown(h)
		if it.node < 0 {
			if !iter(t.rectAt(it.vn, int(it.ei)), t.valAt(it.vn, int(it.ei)), it.dist) {
				return
			}
			continue
		}
		ni := it.node
		leaf := t.meta[ni].leaf
		for i := 0; i < int(t.meta[ni].n); i++ {
			r := t.rectAt(ni, i)
			if leaf {
				h = nbPush(h, nearbyItem{dist: dist(r, t.valAt(ni, i), true), seq: seq, node: -1, vn: ni, ei: int32(i)})
			} else {
				h = nbPush(h, nearbyItem{dist: dist(r, zero, false), seq: seq, node: t.childAt(ni, i)})
			}
			seq++
		}
	}
}

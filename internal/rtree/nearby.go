package rtree

import (
	"container/heap"

	"probprune/internal/geom"
)

// This file adds best-first incremental traversal to the R-tree: values
// are visited in ascending order of a caller-supplied distance, pulled
// from a priority queue of subtrees and values keyed by that distance
// (the classic kNN traversal of Hjaltason & Samet, as popularized by
// tidwall's rtree implementations). The iterator is incremental — the
// caller stops as soon as it has seen enough, and only the visited
// frontier of the tree is ever touched — which is what lets the query
// layer derive kNN prune thresholds and reverse-kNN preselection
// verdicts without full scans.

// DistFunc scores an MBR for best-first traversal. For internal nodes
// (leaf == false, value is the zero value of T) it must return a lower
// bound of the score of every value stored beneath the node; for stored
// values (leaf == true) it returns the value's actual score. MinDist to
// a query rectangle has this property, as does any other monotone
// bound (e.g. MinDist as a lower bound for MaxDist, since
// MaxDist >= MinDist and child MBRs nest inside node MBRs).
type DistFunc[T comparable] func(mbr geom.Rect, value T, leaf bool) float64

// MinDist returns the DistFunc ranking by minimal Lp distance to the
// query rectangle — the standard nearest-neighbor ordering.
func MinDist[T comparable](n geom.Norm, query geom.Rect) DistFunc[T] {
	return func(mbr geom.Rect, _ T, _ bool) float64 {
		return mbr.MinDistRect(n, query)
	}
}

// nearbyItem is one priority-queue entry: either a pending subtree or a
// stored value.
type nearbyItem[T comparable] struct {
	dist  float64
	seq   int // insertion sequence; breaks ties deterministically
	node  *node[T]
	rect  geom.Rect
	value T
}

type nearbyQueue[T comparable] []*nearbyItem[T]

func (q nearbyQueue[T]) Len() int { return len(q) }
func (q nearbyQueue[T]) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].seq < q[j].seq
}
func (q nearbyQueue[T]) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *nearbyQueue[T]) Push(x any)   { *q = append(*q, x.(*nearbyItem[T])) }
func (q *nearbyQueue[T]) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return x
}

// Nearby visits stored values in ascending dist order, calling iter with
// each value and its distance until iter returns false or the tree is
// exhausted. The visit order is deterministic: exact distance ties are
// broken by discovery order. Traversal work is proportional to the
// frontier actually consumed, so early-terminating callers leave most
// of the tree untouched.
func (t *Tree[T]) Nearby(dist DistFunc[T], iter func(rect geom.Rect, value T, d float64) bool) {
	if t.size == 0 {
		return
	}
	var zero T
	seq := 0
	q := make(nearbyQueue[T], 0, maxEntries)
	push := func(it *nearbyItem[T]) {
		it.seq = seq
		seq++
		heap.Push(&q, it)
	}
	push(&nearbyItem[T]{dist: dist(nodeRect(t.root), zero, false), node: t.root})
	for len(q) > 0 {
		it := heap.Pop(&q).(*nearbyItem[T])
		if it.node == nil {
			if !iter(it.rect, it.value, it.dist) {
				return
			}
			continue
		}
		for _, e := range it.node.entries {
			if it.node.leaf {
				push(&nearbyItem[T]{dist: dist(e.rect, e.value, true), rect: e.rect, value: e.value})
			} else {
				push(&nearbyItem[T]{dist: dist(e.rect, zero, false), node: e.child})
			}
		}
	}
}

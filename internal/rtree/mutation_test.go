package rtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"probprune/internal/geom"
)

// This file property-tests the tree under mutation: random interleaved
// Insert / Delete / Bulk sequences must keep CheckInvariants passing and
// SearchIntersect equal to a linear-scan reference at every step.

// refEntry mirrors one stored (rect, value) pair in the linear
// reference model.
type refEntry struct {
	rect geom.Rect
	val  int
}

func randDimRect(rng *rand.Rand, dim int) geom.Rect {
	min := make(geom.Point, dim)
	max := make(geom.Point, dim)
	for i := 0; i < dim; i++ {
		a := rng.Float64() * 100
		b := a + rng.Float64()*10
		min[i], max[i] = a, b
	}
	return geom.Rect{Min: min, Max: max}
}

// checkAgainstReference compares the tree to the linear model: size,
// invariants, full enumeration and a few random intersection queries.
func checkAgainstReference(t *testing.T, rng *rand.Rand, tr *Tree[int], ref []refEntry, step int) {
	t.Helper()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("step %d: invariants violated: %v", step, err)
	}
	if tr.Len() != len(ref) {
		t.Fatalf("step %d: Len() = %d, reference has %d", step, tr.Len(), len(ref))
	}
	// Full enumeration must match as a multiset of values.
	var got []int
	tr.All(func(_ geom.Rect, v int) { got = append(got, v) })
	want := make([]int, 0, len(ref))
	for _, e := range ref {
		want = append(want, e.val)
	}
	sort.Ints(got)
	sort.Ints(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("step %d: All() values = %v, want %v", step, got, want)
	}
	// Random window queries.
	for q := 0; q < 3; q++ {
		window := randRect(rng, 2)
		var hits []int
		tr.SearchIntersect(window, func(_ geom.Rect, v int) bool {
			hits = append(hits, v)
			return true
		})
		var wantHits []int
		for _, e := range ref {
			if e.rect.Intersects(window) {
				wantHits = append(wantHits, e.val)
			}
		}
		sort.Ints(hits)
		sort.Ints(wantHits)
		if fmt.Sprint(hits) != fmt.Sprint(wantHits) {
			t.Fatalf("step %d: SearchIntersect = %v, want %v", step, hits, wantHits)
		}
	}
}

// TestMutationFuzz drives random interleaved Insert/Delete/Bulk
// sequences against the linear reference.
func TestMutationFuzz(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			var ref []refEntry
			nextVal := 0
			tr := New[int]()

			// Occasionally restart from a bulk load of a fresh entry set.
			reload := func(n int) {
				ref = ref[:0]
				items := make([]BulkItem[int], n)
				for i := range items {
					r := randRect(rng, 2)
					items[i] = BulkItem[int]{Rect: r, Value: nextVal}
					ref = append(ref, refEntry{rect: r, val: nextVal})
					nextVal++
				}
				tr = Bulk(items)
			}

			steps := 400
			for step := 0; step < steps; step++ {
				switch op := rng.Intn(10); {
				case op < 5 || len(ref) == 0: // insert
					r := randRect(rng, 2)
					tr.Insert(r, nextVal)
					ref = append(ref, refEntry{rect: r, val: nextVal})
					nextVal++
				case op < 9: // delete a random existing entry
					i := rng.Intn(len(ref))
					e := ref[i]
					if !tr.Delete(e.rect, e.val) {
						t.Fatalf("step %d: Delete(%v, %d) not found", step, e.rect, e.val)
					}
					ref = append(ref[:i], ref[i+1:]...)
					// Deleting a missing entry must be a no-op.
					if tr.Delete(e.rect, e.val) {
						t.Fatalf("step %d: second Delete of %d succeeded", step, e.val)
					}
				default: // bulk reload
					reload(rng.Intn(200))
				}
				if step%20 == 0 || step == steps-1 {
					checkAgainstReference(t, rng, tr, ref, step)
				}
			}
		})
	}
}

// TestDeleteCondenseCascade is the regression test for the Delete
// orphan-reinsertion size accounting: deletions that underflow nodes at
// several levels orphan whole subtrees, and every orphaned value must be
// reinserted exactly once (tree size and reachable values stay
// consistent). A clustered workload with targeted deletions reliably
// produces multi-level condense cascades.
func TestDeleteCondenseCascade(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New[int]()
	type ent struct {
		rect geom.Rect
		val  int
	}
	var all []ent
	// Tight clusters force deep shared subtrees; deleting a cluster
	// wholesale underflows its ancestors.
	for c := 0; c < 12; c++ {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		for i := 0; i < 40; i++ {
			min := geom.Point{cx + rng.Float64(), cy + rng.Float64()}
			max := geom.Point{min[0] + 0.1, min[1] + 0.1}
			r := geom.Rect{Min: min, Max: max}
			v := c*1000 + i
			tr.Insert(r, v)
			all = append(all, ent{rect: r, val: v})
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("after build: %v", err)
	}
	// Delete cluster by cluster, checking size accounting after every
	// deletion.
	for i, e := range all {
		if !tr.Delete(e.rect, e.val) {
			t.Fatalf("delete %d: entry %d not found", i, e.val)
		}
		if got, want := tr.Len(), len(all)-i-1; got != want {
			t.Fatalf("delete %d: Len() = %d, want %d", i, got, want)
		}
		if i%25 == 0 || i == len(all)-1 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("delete %d: %v", i, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("tree not empty after deleting everything: %d", tr.Len())
	}
}

// TestBulkInvariants checks STR bulk loads across sizes, including the
// boundary cases around node capacity.
func TestBulkInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sizes := []int{0, 1, 2, maxEntries - 1, maxEntries, maxEntries + 1,
		2*maxEntries + 3, 100, 257, 1000, 5000}
	for _, n := range sizes {
		items := make([]BulkItem[int], n)
		for i := range items {
			items[i] = BulkItem[int]{Rect: randDimRect(rng, 3), Value: i}
		}
		tr := Bulk(items)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len() = %d", n, tr.Len())
		}
		seen := map[int]bool{}
		tr.All(func(_ geom.Rect, v int) { seen[v] = true })
		if len(seen) != n {
			t.Fatalf("n=%d: %d distinct values reachable", n, len(seen))
		}
		// A bulk-loaded tree must behave identically under subsequent
		// mutation.
		if n > 0 {
			tr.Insert(randDimRect(rng, 3), n)
			if !tr.Delete(items[0].Rect, items[0].Value) {
				t.Fatalf("n=%d: delete of bulk-loaded entry failed", n)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("n=%d after mutation: %v", n, err)
			}
		}
	}
}

// TestClone verifies that a clone is independent: mutations on either
// side do not affect the other.
func TestClone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := make([]BulkItem[int], 300)
	for i := range items {
		items[i] = BulkItem[int]{Rect: randRect(rng, 2), Value: i}
	}
	orig := Bulk(items)
	clone := orig.Clone()

	collect := func(tr *Tree[int]) []int {
		var vs []int
		tr.All(func(_ geom.Rect, v int) { vs = append(vs, v) })
		sort.Ints(vs)
		return vs
	}
	before := collect(orig)

	// Mutate the clone heavily; the original must not change.
	for i := 0; i < 150; i++ {
		clone.Delete(items[i].Rect, items[i].Value)
	}
	for i := 0; i < 100; i++ {
		clone.Insert(randRect(rng, 2), 1000+i)
	}
	if err := clone.CheckInvariants(); err != nil {
		t.Fatalf("clone invariants: %v", err)
	}
	if err := orig.CheckInvariants(); err != nil {
		t.Fatalf("original invariants after clone mutation: %v", err)
	}
	if fmt.Sprint(collect(orig)) != fmt.Sprint(before) {
		t.Fatal("mutating the clone changed the original")
	}

	// And the other direction.
	snap := collect(clone)
	for i := 150; i < 300; i++ {
		orig.Delete(items[i].Rect, items[i].Value)
	}
	if fmt.Sprint(collect(clone)) != fmt.Sprint(snap) {
		t.Fatal("mutating the original changed the clone")
	}
}

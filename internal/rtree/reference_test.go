// This file keeps the original pointer-based R-tree as a reference
// implementation for the equivalence fuzzer: the flat-node tree must
// reproduce its structure and traversal orders bit-for-bit for any
// insert/delete/bulk trace. It is a rename of the pre-flat rtree.go,
// nearby.go and bulk.go with no behavioral edits.
package rtree

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"probprune/internal/geom"
)

// refTree is an R-tree mapping rectangles to values of type T — the
// original pointer-based layout.
type refTree[T comparable] struct {
	root *refNode[T]
	size int
}

type refTreeEntry[T comparable] struct {
	rect  geom.Rect
	child *refNode[T] // non-nil for internal entries
	value T           // set for leaf entries
}

type refNode[T comparable] struct {
	leaf    bool
	entries []refTreeEntry[T]
	count   int // number of values stored in this subtree
}

// New returns an empty tree.
func newRefTree[T comparable]() *refTree[T] {
	return &refTree[T]{root: &refNode[T]{leaf: true}}
}

// Len returns the number of stored values.
func (t *refTree[T]) Len() int { return t.size }

// Bounds returns the minimum bounding rectangle of every stored value
// and whether the tree is non-empty. A scatter-gather router uses it to
// rule whole shards out of a probe with one distance test instead of a
// traversal.
func (t *refTree[T]) Bounds() (geom.Rect, bool) {
	if t.size == 0 {
		return geom.Rect{}, false
	}
	return refNodeRect(t.root), true
}

// Insert adds value under the given bounding rectangle. Duplicate
// rectangles and values are allowed.
func (t *refTree[T]) Insert(rect geom.Rect, value T) {
	t.insertEntry(refTreeEntry[T]{rect: rect.Clone(), value: value})
	t.size++
}

// insertEntry places a leaf entry without touching t.size — the shared
// path of Insert and orphan reinsertion, which moves values that are
// still accounted for.
func (t *refTree[T]) insertEntry(e refTreeEntry[T]) {
	split := t.insert(t.root, e)
	if split != nil {
		// Root split: grow the tree by one level.
		old := t.root
		t.root = &refNode[T]{
			leaf: false,
			entries: []refTreeEntry[T]{
				{rect: refNodeRect(old), child: old},
				{rect: refNodeRect(split), child: split},
			},
			count: old.count + split.count,
		}
	}
}

// insert places e into the subtree under n, returning a new sibling if
// n had to split.
func (t *refTree[T]) insert(n *refNode[T], e refTreeEntry[T]) *refNode[T] {
	n.count++
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > maxEntries {
			return t.split(n)
		}
		return nil
	}
	best := refChooseSubtree(n, e.rect)
	child := n.entries[best].child
	split := t.insert(child, e)
	if split != nil {
		// The child's entries were redistributed: recompute its MBR
		// tightly instead of unioning in the new rectangle.
		n.entries[best].rect = refNodeRect(child)
		n.entries = append(n.entries, refTreeEntry[T]{rect: refNodeRect(split), child: split})
		if len(n.entries) > maxEntries {
			return t.split(n)
		}
	} else {
		n.entries[best].rect = n.entries[best].rect.Union(e.rect)
	}
	return nil
}

// chooseSubtree picks the child whose MBR needs the least enlargement
// to cover r, breaking ties by smaller area (Guttman's ChooseLeaf).
func refChooseSubtree[T comparable](n *refNode[T], r geom.Rect) int {
	best := 0
	bestEnl, bestArea := math.Inf(1), math.Inf(1)
	for i, e := range n.entries {
		area := e.rect.Area()
		enl := e.rect.Union(r).Area() - area
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// split performs Guttman's quadratic split on an overflowing node,
// keeping one group in n and returning the other as a new node.
func (t *refTree[T]) split(n *refNode[T]) *refNode[T] {
	entries := n.entries
	// Pick the two seeds wasting the most area if grouped together.
	s1, s2 := refPickSeeds(entries)
	g1 := []refTreeEntry[T]{entries[s1]}
	g2 := []refTreeEntry[T]{entries[s2]}
	r1, r2 := entries[s1].rect, entries[s2].rect
	rest := make([]refTreeEntry[T], 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// If one group must take all remaining entries to reach the
		// minimum, assign them wholesale.
		if len(g1)+len(rest) <= minEntries {
			g1 = append(g1, rest...)
			for _, e := range rest {
				r1 = r1.Union(e.rect)
			}
			break
		}
		if len(g2)+len(rest) <= minEntries {
			g2 = append(g2, rest...)
			for _, e := range rest {
				r2 = r2.Union(e.rect)
			}
			break
		}
		// PickNext: the entry with the strongest preference.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range rest {
			d1 := r1.Union(e.rect).Area() - r1.Area()
			d2 := r2.Union(e.rect).Area() - r2.Area()
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		d1 := r1.Union(e.rect).Area() - r1.Area()
		d2 := r2.Union(e.rect).Area() - r2.Area()
		if d1 < d2 || (d1 == d2 && len(g1) <= len(g2)) {
			g1 = append(g1, e)
			r1 = r1.Union(e.rect)
		} else {
			g2 = append(g2, e)
			r2 = r2.Union(e.rect)
		}
	}
	n.entries = g1
	n.count = refGroupCount(n.leaf, g1)
	sib := &refNode[T]{leaf: n.leaf, entries: g2, count: refGroupCount(n.leaf, g2)}
	return sib
}

func refGroupCount[T comparable](leaf bool, g []refTreeEntry[T]) int {
	if leaf {
		return len(g)
	}
	c := 0
	for _, e := range g {
		c += e.child.count
	}
	return c
}

func refPickSeeds[T comparable](entries []refTreeEntry[T]) (int, int) {
	s1, s2, worst := 0, 1, -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			u := entries[i].rect.Union(entries[j].rect).Area()
			waste := u - entries[i].rect.Area() - entries[j].rect.Area()
			if waste > worst {
				s1, s2, worst = i, j, waste
			}
		}
	}
	return s1, s2
}

func refNodeRect[T comparable](n *refNode[T]) geom.Rect {
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.Union(e.rect)
	}
	return r
}

// SearchIntersect calls fn for every stored value whose rectangle
// intersects query. Traversal stops early if fn returns false.
func (t *refTree[T]) SearchIntersect(query geom.Rect, fn func(rect geom.Rect, value T) bool) {
	t.searchIntersect(t.root, query, fn)
}

func (t *refTree[T]) searchIntersect(n *refNode[T], query geom.Rect, fn func(geom.Rect, T) bool) bool {
	for _, e := range n.entries {
		if !e.rect.Intersects(query) {
			continue
		}
		if n.leaf {
			if !fn(e.rect, e.value) {
				return false
			}
		} else if !t.searchIntersect(e.child, query, fn) {
			return false
		}
	}
	return true
}

// Walk traverses the tree top-down. For every node (including leaf
// nodes), node is called with the node's MBR and the number of values
// beneath it, and its verdict controls descent. leaf is called for
// every value that is reached (via Descend into a leaf node, or via
// TakeSubtree). Either callback may be nil.
//
// This is the primitive the bulk complete-domination filter builds on:
// a node whose MBR is dominated by the target w.r.t. the reference is
// SkipSubtree'd (the count argument discards the subtree wholesale); a
// node whose MBR dominates the target is TakeSubtree'd so each object
// inherits the verdict but still gets its per-object existence check —
// counting dominators wholesale is unsound for existentially uncertain
// objects; everything else descends.
func (t *refTree[T]) Walk(node func(mbr geom.Rect, count int) WalkAction, leaf func(rect geom.Rect, value T)) {
	if t.size == 0 {
		return
	}
	t.walk(t.root, refNodeRect(t.root), node, leaf)
}

func (t *refTree[T]) walk(n *refNode[T], mbr geom.Rect, nodeFn func(geom.Rect, int) WalkAction, leafFn func(geom.Rect, T)) {
	action := Descend
	if nodeFn != nil {
		action = nodeFn(mbr, n.count)
	}
	switch action {
	case SkipSubtree:
		return
	case TakeSubtree:
		t.emitAll(n, leafFn)
	default:
		for _, e := range n.entries {
			if n.leaf {
				if leafFn != nil {
					leafFn(e.rect, e.value)
				}
			} else {
				t.walk(e.child, e.rect, nodeFn, leafFn)
			}
		}
	}
}

func (t *refTree[T]) emitAll(n *refNode[T], leafFn func(geom.Rect, T)) {
	if leafFn == nil {
		return
	}
	for _, e := range n.entries {
		if n.leaf {
			leafFn(e.rect, e.value)
		} else {
			t.emitAll(e.child, leafFn)
		}
	}
}

// Delete removes one entry with the given rectangle and value, and
// reports whether an entry was found. Underflowing nodes are condensed
// and their remaining entries reinserted (Guttman's CondenseTree).
func (t *refTree[T]) Delete(rect geom.Rect, value T) bool {
	var orphans []refTreeEntry[T]
	found, _ := t.delete(t.root, rect, value, &orphans)
	if !found {
		return false
	}
	t.size--
	// Collapse a root with a single internal child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &refNode[T]{leaf: true}
	}
	for _, e := range orphans {
		if e.child != nil {
			t.reinsertSubtree(e.child)
		} else {
			// Orphaned values never left t.size — move the entry without
			// re-counting it (and without re-cloning its rectangle).
			t.insertEntry(e)
		}
	}
	return true
}

func (t *refTree[T]) reinsertSubtree(n *refNode[T]) {
	if n.leaf {
		for _, e := range n.entries {
			t.insertEntry(e)
		}
		return
	}
	for _, e := range n.entries {
		t.reinsertSubtree(e.child)
	}
}

// delete removes the matching value from the subtree under n. It
// returns whether the value was found and how many values left the
// subtree (the deleted one plus any orphaned by condensing, which the
// caller reinserts from the top).
func (t *refTree[T]) delete(n *refNode[T], rect geom.Rect, value T, orphans *[]refTreeEntry[T]) (bool, int) {
	if n.leaf {
		for i, e := range n.entries {
			if e.value == value && e.rect.Equal(rect) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				n.count--
				return true, 1
			}
		}
		return false, 0
	}
	for i, e := range n.entries {
		if !e.rect.ContainsRect(rect) {
			continue
		}
		found, removed := t.delete(e.child, rect, value, orphans)
		if !found {
			continue
		}
		if len(e.child.entries) < minEntries {
			// Condense: orphan the underflowing child's remaining
			// entries; their values also leave this subtree until the
			// top-level reinsertion puts them back.
			removed += e.child.count
			*orphans = append(*orphans, e.child.entries...)
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
		} else {
			n.entries[i].rect = refNodeRect(e.child)
		}
		n.count -= removed
		return true, removed
	}
	return false, 0
}

// All calls fn for every stored (rect, value) pair.
func (t *refTree[T]) All(fn func(rect geom.Rect, value T)) {
	t.emitAll(t.root, fn)
}

// CheckInvariants validates structural invariants (entry counts, MBR
// containment, subtree counts); it is exported for tests.
func (t *refTree[T]) CheckInvariants() error {
	n, err := t.check(t.root, true)
	if err != nil {
		return err
	}
	if n != t.size {
		return fmt.Errorf("rtree: size %d but %d reachable values", t.size, n)
	}
	return nil
}

func (t *refTree[T]) check(n *refNode[T], isRoot bool) (int, error) {
	if !isRoot && (len(n.entries) < minEntries || len(n.entries) > maxEntries) {
		return 0, fmt.Errorf("rtree: node with %d entries outside [%d, %d]", len(n.entries), minEntries, maxEntries)
	}
	if n.leaf {
		if n.count != len(n.entries) {
			return 0, fmt.Errorf("rtree: leaf count %d != %d entries", n.count, len(n.entries))
		}
		return len(n.entries), nil
	}
	total := 0
	for _, e := range n.entries {
		sub := refNodeRect(e.child)
		if !e.rect.ContainsRect(sub) {
			return 0, fmt.Errorf("rtree: entry MBR %v does not contain child MBR %v", e.rect, sub)
		}
		c, err := t.check(e.child, false)
		if err != nil {
			return 0, err
		}
		if c != e.child.count {
			return 0, fmt.Errorf("rtree: child count %d != %d reachable", e.child.count, c)
		}
		total += c
	}
	if n.count != total {
		return 0, fmt.Errorf("rtree: node count %d != %d reachable", n.count, total)
	}
	return total, nil
}

// This file adds best-first incremental traversal to the R-tree: values
// are visited in ascending order of a caller-supplied distance, pulled
// from a priority queue of subtrees and values keyed by that distance
// (the classic kNN traversal of Hjaltason & Samet, as popularized by
// tidwall's rtree implementations). The iterator is incremental — the
// caller stops as soon as it has seen enough, and only the visited
// frontier of the tree is ever touched — which is what lets the query
// layer derive kNN prune thresholds and reverse-kNN preselection
// verdicts without full scans.

// refNearbyItem is one priority-queue entry: either a pending subtree
// or a stored value.
type refNearbyItem[T comparable] struct {
	dist  float64
	seq   int // insertion sequence; breaks ties deterministically
	node  *refNode[T]
	rect  geom.Rect
	value T
}

type refNearbyQueue[T comparable] []*refNearbyItem[T]

func (q refNearbyQueue[T]) Len() int { return len(q) }
func (q refNearbyQueue[T]) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].seq < q[j].seq
}
func (q refNearbyQueue[T]) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refNearbyQueue[T]) Push(x any)   { *q = append(*q, x.(*refNearbyItem[T])) }
func (q *refNearbyQueue[T]) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return x
}

// Nearby visits stored values in ascending dist order, calling iter with
// each value and its distance until iter returns false or the tree is
// exhausted. The visit order is deterministic: exact distance ties are
// broken by discovery order. Traversal work is proportional to the
// frontier actually consumed, so early-terminating callers leave most
// of the tree untouched.
func (t *refTree[T]) Nearby(dist DistFunc[T], iter func(rect geom.Rect, value T, d float64) bool) {
	if t.size == 0 {
		return
	}
	var zero T
	seq := 0
	q := make(refNearbyQueue[T], 0, maxEntries)
	push := func(it *refNearbyItem[T]) {
		it.seq = seq
		seq++
		heap.Push(&q, it)
	}
	push(&refNearbyItem[T]{dist: dist(refNodeRect(t.root), zero, false), node: t.root})
	for len(q) > 0 {
		it := heap.Pop(&q).(*refNearbyItem[T])
		if it.node == nil {
			if !iter(it.rect, it.value, it.dist) {
				return
			}
			continue
		}
		for _, e := range it.node.entries {
			if it.node.leaf {
				push(&refNearbyItem[T]{dist: dist(e.rect, e.value, true), rect: e.rect, value: e.value})
			} else {
				push(&refNearbyItem[T]{dist: dist(e.rect, zero, false), node: e.child})
			}
		}
	}
}

// This file implements Sort-Tile-Recursive (STR) bulk loading
// (Leutenegger et al., ICDE'97) and structural cloning. Bulk builds a
// packed tree in O(n log n) — one multi-key sort plus a linear packing
// pass per level — where n repeated Inserts cost O(n log n) tree
// descents WITH the quadratic split on every overflow. The packed tree
// is also better clustered: tiles are spatially coherent, so the
// domination filter prunes more subtrees at node granularity.

// refBulk builds a tree over items with the STR packing algorithm,
// mirroring Bulk.
func refBulk[T comparable](items []BulkItem[T]) *refTree[T] {
	if len(items) == 0 {
		return newRefTree[T]()
	}
	entries := make([]refTreeEntry[T], len(items))
	for i, it := range items {
		entries[i] = refTreeEntry[T]{rect: it.Rect.Clone(), value: it.Value}
	}
	level := refPackLevel(entries, true)
	for len(level) > 1 {
		up := make([]refTreeEntry[T], len(level))
		for i, n := range level {
			up[i] = refTreeEntry[T]{rect: refNodeRect(n), child: n}
		}
		level = refPackLevel(up, false)
	}
	return &refTree[T]{root: level[0], size: len(items)}
}

// packLevel tiles entries into spatial order and packs them into nodes
// of the given kind. It returns the nodes of the new level (one node
// when len(entries) <= maxEntries).
func refPackLevel[T comparable](entries []refTreeEntry[T], leaf bool) []*refNode[T] {
	dim := entries[0].rect.Dim()
	refTile(entries, 0, dim)
	groups := refSplitEven(len(entries), maxEntries)
	nodes := make([]*refNode[T], 0, len(groups))
	off := 0
	for _, g := range groups {
		n := &refNode[T]{leaf: leaf, entries: entries[off : off+g : off+g]}
		n.count = refGroupCount(leaf, n.entries)
		nodes = append(nodes, n)
		off += g
	}
	return nodes
}

// tile recursively orders entries into STR tiles: sort by the center
// coordinate of the current dimension, slice into slabs sized for an
// even spread of the remaining pages, and recurse on the next
// dimension within each slab.
func refTile[T comparable](entries []refTreeEntry[T], dim, dims int) {
	sort.SliceStable(entries, func(i, j int) bool {
		return refRectCenter(entries[i].rect, dim) < refRectCenter(entries[j].rect, dim)
	})
	if dim >= dims-1 || len(entries) <= maxEntries {
		return
	}
	pages := (len(entries) + maxEntries - 1) / maxEntries
	slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(dims-dim))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := (len(entries) + slabs - 1) / slabs
	for off := 0; off < len(entries); off += slabSize {
		end := off + slabSize
		if end > len(entries) {
			end = len(entries)
		}
		refTile(entries[off:end], dim+1, dims)
	}
}

func refRectCenter(r geom.Rect, dim int) float64 {
	return (r.Min[dim] + r.Max[dim]) / 2
}

// splitEven partitions n items into the fewest groups of size <= max,
// sized as evenly as possible. For n > max the groups hold at least
// n/ceil(n/max) >= max/2 >= minEntries items, so packed nodes never
// underflow; a single group may be arbitrarily small only when it
// becomes the root.
func refSplitEven(n, max int) []int {
	g := (n + max - 1) / max
	base, rem := n/g, n%g
	out := make([]int, g)
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// Clone returns a structurally independent copy of the tree: nodes and
// entry slices are copied, so mutations on either tree never affect the
// other. Rectangle and value data are shared — the tree never mutates a
// stored rectangle in place (Insert clones its input, recomputed MBRs
// are fresh allocations), so sharing is safe. Cost is O(n).
func (t *refTree[T]) Clone() *refTree[T] {
	return &refTree[T]{root: refCloneNode(t.root), size: t.size}
}

func refCloneNode[T comparable](n *refNode[T]) *refNode[T] {
	c := &refNode[T]{leaf: n.leaf, count: n.count, entries: make([]refTreeEntry[T], len(n.entries))}
	copy(c.entries, n.entries)
	if !n.leaf {
		for i := range c.entries {
			c.entries[i].child = refCloneNode(c.entries[i].child)
		}
	}
	return c
}

// Package benchscen holds the repository's key benchmark scenario
// bodies in ONE place, consumed both by the `go test -bench` wrappers
// (internal/cq) and by cmd/bench, which writes the committed
// machine-readable report (BENCH_PR3.json). Keeping a single copy
// guarantees the published numbers and the in-tree benchmarks measure
// literally the same code — a parameter tweak cannot silently diverge.
//
// Scenarios use the public root API only, on a synthetic database of
// configurable size (1000 objects for the committed report).
package benchscen

import (
	"context"
	"math/rand"
	"testing"

	"probprune"
)

// Shared scenario parameters: the standing-query fleet size and the
// kNN predicate of the continuous-query pair.
const (
	Subs = 8
	K    = 5
	Tau  = 0.3
)

// MustDB builds the benchmark database: n clustered uncertain objects,
// 8 samples each, fixed seed.
func MustDB(n int) probprune.Database {
	db, err := probprune.Synthetic(probprune.SyntheticConfig{N: n, Samples: 8, MaxExtent: 0.02, Seed: 99})
	if err != nil {
		panic(err)
	}
	return db
}

func mustStore(b *testing.B, db probprune.Database) *probprune.Store {
	b.Helper()
	s, err := probprune.NewStore(db, probprune.Options{MaxIterations: 3})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func queryPoints(rng *rand.Rand) []*probprune.Object {
	qs := make([]*probprune.Object, Subs)
	for i := range qs {
		qs[i] = probprune.PointObject(-(i + 1), probprune.Point{rng.Float64(), rng.Float64()})
	}
	return qs
}

func randObject(b *testing.B, rng *rand.Rand, id int) *probprune.Object {
	b.Helper()
	cx, cy := rng.Float64(), rng.Float64()
	pts := make([]probprune.Point, 4)
	for i := range pts {
		pts[i] = probprune.Point{cx + rng.Float64()*0.02, cy + rng.Float64()*0.02}
	}
	o, err := probprune.NewObject(id, pts)
	if err != nil {
		b.Fatal(err)
	}
	return o
}

// EngineKNN: one-shot threshold kNN on a frozen engine.
func EngineKNN(b *testing.B, db probprune.Database) {
	e := probprune.NewEngine(db, probprune.Options{MaxIterations: 3})
	q := probprune.PointObject(-1, probprune.Point{0.5, 0.5})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.KNN(q, K, Tau)
	}
}

// StoreWarmKNN: repeated kNN on a live store with a warm persistent
// decomposition cache.
func StoreWarmKNN(b *testing.B, db probprune.Database) {
	s := mustStore(b, db)
	q := probprune.PointObject(-1, probprune.Point{0.5, 0.5})
	s.KNN(q, K, Tau) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.KNN(q, K, Tau)
	}
}

// StoreBatchKNN16: a 16-request batch pooled on one snapshot.
func StoreBatchKNN16(b *testing.B, db probprune.Database) {
	s := mustStore(b, db)
	rng := rand.New(rand.NewSource(3))
	reqs := make([]probprune.KNNRequest, 16)
	for i := range reqs {
		reqs[i] = probprune.KNNRequest{
			Q:   probprune.PointObject(-(i + 1), probprune.Point{rng.Float64(), rng.Float64()}),
			K:   K,
			Tau: Tau,
		}
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.BatchKNN(ctx, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// ShardedBatchKNN returns the sharded serving scenario at a given
// shard count: a ShardedStore in serving mode (a watcher is attached,
// so every commit publishes a snapshot for the change stream) sustains
// an interleave of WritesPerBatch object updates and one 16-request
// BatchKNN per op. The refinement work is identical at every shard
// count — scatter-gather merging is exact — but each commit's
// copy-on-write detach clones only the mutated shard's R-tree: O(n/N)
// instead of O(n). Comparing shard counts 1 and 8 therefore measures
// the sharding win on the live serving path.
//
// The scenario shards spatially (unit-square stripes) and models a
// fleet-style workload: updates drift objects locally (small jitter
// around their current position) and every op ends with an online
// Rebalance re-homing stripe-crossers — both on the clock. Spatial
// sharding keeps each shard's R-tree nodes tight, so per-shard filter
// walks decide subtrees (often the whole shard) wholesale, exactly like
// the monolithic tree; hash sharding would spread every shard over the
// full extent and tax the scatter phase.
func ShardedBatchKNN(shards int) func(b *testing.B, db probprune.Database) {
	return func(b *testing.B, db probprune.Database) {
		s, err := probprune.NewShardedStore(db,
			probprune.ShardedOptions{Shards: shards, Partition: probprune.StripeShards(0, 0, 1)},
			probprune.Options{MaxIterations: 3})
		if err != nil {
			b.Fatal(err)
		}
		_, stop := s.Watch(func(probprune.Change) {}) // serving mode
		defer stop()
		rng := rand.New(rand.NewSource(3))
		reqs := make([]probprune.KNNRequest, 16)
		for i := range reqs {
			reqs[i] = probprune.KNNRequest{
				Q:   probprune.PointObject(-(i + 1), probprune.Point{rng.Float64(), rng.Float64()}),
				K:   K,
				Tau: Tau,
			}
		}
		ctx := context.Background()
		if _, err := s.BatchKNN(ctx, reqs); err != nil { // warm the caches
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for w := 0; w < WritesPerBatch; w++ {
				victim, _ := s.Get(db[rng.Intn(len(db))].ID)
				if err := s.Update(driftObject(b, rng, victim)); err != nil {
					b.Fatal(err)
				}
			}
			s.Rebalance()
			if _, err := s.BatchKNN(ctx, reqs); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// driftObject moves an object a small step from its current position,
// reflecting at the unit-square borders — the fleet-tracking mutation
// pattern (objects travel inside the city, they do not teleport or
// leave), which keeps the spatial distribution stationary over
// arbitrarily long benchmark runs.
func driftObject(b *testing.B, rng *rand.Rand, o *probprune.Object) *probprune.Object {
	b.Helper()
	reflect := func(c float64) float64 {
		if c < 0 {
			return -c
		}
		if c > 1 {
			return 2 - c
		}
		return c
	}
	cx := reflect((o.MBR.Min[0]+o.MBR.Max[0])/2 + (rng.Float64()-0.5)*0.06)
	cy := reflect((o.MBR.Min[1]+o.MBR.Max[1])/2 + (rng.Float64()-0.5)*0.06)
	pts := make([]probprune.Point, 4)
	for i := range pts {
		pts[i] = probprune.Point{cx + rng.Float64()*0.02, cy + rng.Float64()*0.02}
	}
	n, err := probprune.NewObject(o.ID, pts)
	if err != nil {
		b.Fatal(err)
	}
	return n
}

// WritesPerBatch is the write half of the sharded serving interleave.
const WritesPerBatch = 32

// ShardedBuild returns the ingest scenario: full ShardedStore
// construction (router bookkeeping plus one concurrent STR bulk load
// per shard) at a given shard count.
func ShardedBuild(shards int) func(b *testing.B, db probprune.Database) {
	return func(b *testing.B, db probprune.Database) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := probprune.NewShardedStore(db, probprune.ShardedOptions{Shards: shards}, probprune.Options{MaxIterations: 3}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// WALIngest: journaled update throughput on a durable store — the
// write-ahead-log cost of the serving path. Every commit frames,
// CRC-stamps and writes one record before the copy-on-write publish
// (SyncOS policy: no fsync on the clock); compare with StoreWarmKNN's
// in-memory sibling store to read the durability tax.
func WALIngest(b *testing.B, db probprune.Database) {
	s, err := probprune.BootstrapStore(db,
		probprune.PersistOptions{Dir: b.TempDir()},
		probprune.Options{MaxIterations: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim, _ := s.Get(db[rng.Intn(len(db))].ID)
		if err := s.Update(driftObject(b, rng, victim)); err != nil {
			b.Fatal(err)
		}
	}
}

// recoveryJournal writes the shared recovery fixture: an empty
// bootstrap followed by one journaled insert per object (plus a warm
// query so the decomposition cache has something to checkpoint), then
// optionally a checkpoint absorbing the log.
func recoveryJournal(b *testing.B, db probprune.Database, checkpoint bool) probprune.PersistOptions {
	b.Helper()
	popts := probprune.PersistOptions{Dir: b.TempDir()}
	opts := probprune.Options{MaxIterations: 3}
	s, err := probprune.BootstrapStore(nil, popts, opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, o := range db {
		if err := s.Insert(o); err != nil {
			b.Fatal(err)
		}
	}
	s.KNN(probprune.PointObject(-1, probprune.Point{0.5, 0.5}), K, Tau)
	if checkpoint {
		if err := s.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	return popts
}

// RecoveryCold: reopening a store whose whole database lives in the
// log — checkpoint-free recovery decodes and replays one record per
// object and rebuilds the index from scratch.
func RecoveryCold(b *testing.B, db probprune.Database) {
	popts := recoveryJournal(b, db, false)
	opts := probprune.Options{MaxIterations: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := probprune.OpenStore(popts, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// RecoveryCheckpoint: reopening the same database from a checkpoint
// with an empty log tail — the state (including the materialized
// decomposition cache) loads in one pass, nothing replays. The ratio
// to RecoveryCold is cmd/bench's recovery_checkpoint_speedup.
func RecoveryCheckpoint(b *testing.B, db probprune.Database) {
	popts := recoveryJournal(b, db, true)
	opts := probprune.Options{MaxIterations: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := probprune.OpenStore(popts, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// IndexBulkLoad: STR bulk construction of the R-tree.
func IndexBulkLoad(b *testing.B, db probprune.Database) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probprune.NewIndex(db)
	}
}

// CQMaintain: one mutation against a store with Subs standing KNN
// subscriptions, maintained incrementally by a Monitor. Reports the
// IDCA evaluations maintenance spent per mutation as idca-runs/op.
func CQMaintain(b *testing.B, db probprune.Database) {
	s := mustStore(b, db)
	m := probprune.NewMonitor(s, probprune.MonitorOptions{Buffer: 1 << 12, Policy: probprune.DropOldest})
	defer m.Close()
	rng := rand.New(rand.NewSource(7))
	for _, q := range queryPoints(rng) {
		if _, err := m.SubscribeKNN(q, K, Tau); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	runs0 := m.Stats().Runs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := db[rng.Intn(len(db))].ID
		if err := s.Update(randObject(b, rng, victim)); err != nil {
			b.Fatal(err)
		}
		if err := m.Sync(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(m.Stats().Runs-runs0)/float64(b.N), "idca-runs/op")
}

// CQRequery: the naive way to keep the same standing queries current —
// re-run every query after every mutation. The idca-runs/op metric
// counts the candidates that survived preselection (one IDCA run each);
// the counting pass itself runs off the clock.
func CQRequery(b *testing.B, db probprune.Database) {
	s := mustStore(b, db)
	rng := rand.New(rand.NewSource(7))
	qs := queryPoints(rng)
	var runs uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := db[rng.Intn(len(db))].ID
		if err := s.Update(randObject(b, rng, victim)); err != nil {
			b.Fatal(err)
		}
		for _, q := range qs {
			s.KNN(q, K, Tau)
		}
		// Accounting only — keep it out of the timed section.
		b.StopTimer()
		e := s.Snapshot().Engine()
		for _, q := range qs {
			thresh := e.KNNThreshold(q, K)
			for _, o := range e.DB {
				if o != q && !e.KNNPrunable(q, o, thresh) {
					runs++
				}
			}
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(runs)/float64(b.N), "idca-runs/op")
}

// Package benchscen holds the repository's key benchmark scenario
// bodies in ONE place, consumed both by the `go test -bench` wrappers
// (internal/cq) and by cmd/bench, which writes the committed
// machine-readable report (BENCH_PR3.json). Keeping a single copy
// guarantees the published numbers and the in-tree benchmarks measure
// literally the same code — a parameter tweak cannot silently diverge.
//
// Scenarios use the public root API only, on a synthetic database of
// configurable size (1000 objects for the committed report).
package benchscen

import (
	"context"
	"math/rand"
	"testing"

	"probprune"
)

// Shared scenario parameters: the standing-query fleet size and the
// kNN predicate of the continuous-query pair.
const (
	Subs = 8
	K    = 5
	Tau  = 0.3
)

// MustDB builds the benchmark database: n clustered uncertain objects,
// 8 samples each, fixed seed.
func MustDB(n int) probprune.Database {
	db, err := probprune.Synthetic(probprune.SyntheticConfig{N: n, Samples: 8, MaxExtent: 0.02, Seed: 99})
	if err != nil {
		panic(err)
	}
	return db
}

func mustStore(b *testing.B, db probprune.Database) *probprune.Store {
	b.Helper()
	s, err := probprune.NewStore(db, probprune.Options{MaxIterations: 3})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func queryPoints(rng *rand.Rand) []*probprune.Object {
	qs := make([]*probprune.Object, Subs)
	for i := range qs {
		qs[i] = probprune.PointObject(-(i + 1), probprune.Point{rng.Float64(), rng.Float64()})
	}
	return qs
}

func randObject(b *testing.B, rng *rand.Rand, id int) *probprune.Object {
	b.Helper()
	cx, cy := rng.Float64(), rng.Float64()
	pts := make([]probprune.Point, 4)
	for i := range pts {
		pts[i] = probprune.Point{cx + rng.Float64()*0.02, cy + rng.Float64()*0.02}
	}
	o, err := probprune.NewObject(id, pts)
	if err != nil {
		b.Fatal(err)
	}
	return o
}

// EngineKNN: one-shot threshold kNN on a frozen engine.
func EngineKNN(b *testing.B, db probprune.Database) {
	e := probprune.NewEngine(db, probprune.Options{MaxIterations: 3})
	q := probprune.PointObject(-1, probprune.Point{0.5, 0.5})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.KNN(q, K, Tau)
	}
}

// StoreWarmKNN: repeated kNN on a live store with a warm persistent
// decomposition cache.
func StoreWarmKNN(b *testing.B, db probprune.Database) {
	s := mustStore(b, db)
	q := probprune.PointObject(-1, probprune.Point{0.5, 0.5})
	s.KNN(q, K, Tau) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.KNN(q, K, Tau)
	}
}

// StoreBatchKNN16: a 16-request batch pooled on one snapshot.
func StoreBatchKNN16(b *testing.B, db probprune.Database) {
	s := mustStore(b, db)
	rng := rand.New(rand.NewSource(3))
	reqs := make([]probprune.KNNRequest, 16)
	for i := range reqs {
		reqs[i] = probprune.KNNRequest{
			Q:   probprune.PointObject(-(i + 1), probprune.Point{rng.Float64(), rng.Float64()}),
			K:   K,
			Tau: Tau,
		}
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.BatchKNN(ctx, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// IndexBulkLoad: STR bulk construction of the R-tree.
func IndexBulkLoad(b *testing.B, db probprune.Database) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probprune.NewIndex(db)
	}
}

// CQMaintain: one mutation against a store with Subs standing KNN
// subscriptions, maintained incrementally by a Monitor. Reports the
// IDCA evaluations maintenance spent per mutation as idca-runs/op.
func CQMaintain(b *testing.B, db probprune.Database) {
	s := mustStore(b, db)
	m := probprune.NewMonitor(s, probprune.MonitorOptions{Buffer: 1 << 12, Policy: probprune.DropOldest})
	defer m.Close()
	rng := rand.New(rand.NewSource(7))
	for _, q := range queryPoints(rng) {
		if _, err := m.SubscribeKNN(q, K, Tau); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	runs0 := m.Stats().Runs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := db[rng.Intn(len(db))].ID
		if err := s.Update(randObject(b, rng, victim)); err != nil {
			b.Fatal(err)
		}
		if err := m.Sync(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(m.Stats().Runs-runs0)/float64(b.N), "idca-runs/op")
}

// CQRequery: the naive way to keep the same standing queries current —
// re-run every query after every mutation. The idca-runs/op metric
// counts the candidates that survived preselection (one IDCA run each);
// the counting pass itself runs off the clock.
func CQRequery(b *testing.B, db probprune.Database) {
	s := mustStore(b, db)
	rng := rand.New(rand.NewSource(7))
	qs := queryPoints(rng)
	var runs uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := db[rng.Intn(len(db))].ID
		if err := s.Update(randObject(b, rng, victim)); err != nil {
			b.Fatal(err)
		}
		for _, q := range qs {
			s.KNN(q, K, Tau)
		}
		// Accounting only — keep it out of the timed section.
		b.StopTimer()
		e := s.Snapshot().Engine()
		for _, q := range qs {
			thresh := e.KNNThreshold(q, K)
			for _, o := range e.DB {
				if o != q && !e.KNNPrunable(q, o, thresh) {
					runs++
				}
			}
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(runs)/float64(b.N), "idca-runs/op")
}
